#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <cstdlib>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "batched/batched_blas.hpp"
#include "common/blas.hpp"
#include "common/error.hpp"
#include "common/lapack.hpp"
#include "common/matrix.hpp"
#include "common/random.hpp"
#include "common/trsm_kernel.hpp"
#include "device/backend.hpp"
#include "device/device.hpp"
#include "test_util.hpp"

/// \file test_backend_conformance.cpp
/// The backend contract: the suites here run against EVERY registered
/// backend (backend_names()), and a future CUDA/HIP backend must pass them
/// unchanged. Covered: batched-driver results vs the serial references
/// across the 4 scalar types and edge shapes, stream FIFO ordering,
/// cross-stream ordering via events, event reuse/reset, failure drain
/// semantics, DeviceContext accounting invariants, bit-for-bit equality of
/// the `host` backend with the unbound dispatch path, and a randomized
/// multi-stream DAG stress test checked against a serial replay (the TSan
/// target — see docs/device-backend.md).

namespace hodlrx {
namespace {

using test::rel_error;

/// Set (or clear, with nullptr) an environment variable for one scope and
/// restore the previous value on exit (the test_faults.cpp pattern — the
/// ctest backend legs export HODLRX_BACKEND process-wide, so tests that
/// need a SPECIFIC backend pin it instead of assuming a clean environment).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr)
      ::setenv(name, value, /*overwrite=*/1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_old_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// Run `fn` once per registered backend, with HODLRX_BACKEND pinned and a
/// SCOPED_TRACE naming the backend in any failure.
template <typename Fn>
void for_each_backend(Fn&& fn) {
  for (const std::string& name : backend_names()) {
    SCOPED_TRACE("backend=" + name);
    ScopedEnv env("HODLRX_BACKEND", name.c_str());
    ASSERT_EQ(std::string(backend().name()), name);
    fn();
  }
}

template <typename T>
real_t<T> conf_tol() {
  return std::is_same_v<real_t<T>, float> ? real_t<T>(2e-3)
                                          : real_t<T>(1e-10);
}

/// A contiguous n-element buffer viewed as an n x 1 column for fill_uniform.
template <typename T>
MatrixView<T> flat(std::vector<T>& v) {
  return MatrixView<T>{v.data(), static_cast<index_t>(v.size()), 1,
                       static_cast<index_t>(v.size())};
}

/// Upper-triangular R (k x n) out of a compact geqrf factor array.
template <typename T>
Matrix<T> extract_r(ConstMatrixView<T> f) {
  const index_t k = std::min(f.rows, f.cols);
  Matrix<T> r(k, f.cols);
  for (index_t j = 0; j < f.cols; ++j)
    for (index_t i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = f(i, j);
  return r;
}

template <typename T>
class BackendTyped : public ::testing::Test {};
using BackendTypes = ::testing::Types<float, double, std::complex<float>,
                                      std::complex<double>>;
TYPED_TEST_SUITE(BackendTyped, BackendTypes);

// ---------------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------------

TEST(BackendRegistry, EnvSelectsAndDefaultsToHost) {
  {
    ScopedEnv env("HODLRX_BACKEND", nullptr);
    EXPECT_STREQ(backend().name(), "host");
    EXPECT_FALSE(backend().asynchronous());
    // "host" by name IS the default object, not a twin.
    EXPECT_EQ(find_backend("host"), &backend());
  }
  {
    ScopedEnv env("HODLRX_BACKEND", "host-async");
    EXPECT_STREQ(backend().name(), "host-async");
    EXPECT_TRUE(backend().asynchronous());
  }
  {
    // Unknown names fall back to host (the HODLRX_SCHED convention).
    ScopedEnv env("HODLRX_BACKEND", "cuda-nonexistent");
    EXPECT_STREQ(backend().name(), "host");
  }
  const std::vector<std::string> names = backend_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "host");
  EXPECT_EQ(names[1], "host-async");
  EXPECT_EQ(find_backend("no-such-backend"), nullptr);
  for (const std::string& n : names) {
    Backend* b = find_backend(n);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(std::string(b->name()), n);
  }
}

// ---------------------------------------------------------------------------
// Batched drivers vs serial references, on every backend. Work is issued
// with a stream bound (the dispatch layer under test) and synchronized
// before the results are read — the access pattern a real device imposes.
// ---------------------------------------------------------------------------

TYPED_TEST(BackendTyped, GemmStridedBatchedMatchesReference) {
  using T = TypeParam;
  struct Shape {
    index_t m, n, k, batch;
    bool shared_b;  // stride_b = 0: the shared-operand fast path
  };
  // Edge shapes: degenerate 1x1, a register-tile tail (across-batch SIMD
  // eligible), an uneven mid-size, a stream-mode-eligible larger shape, and
  // the shared-operand stride-0 layout.
  const Shape shapes[] = {{1, 1, 1, 3, false},
                          {3, 2, 4, 9, false},
                          {7, 5, 6, 4, false},
                          {33, 21, 17, 3, false},
                          {6, 4, 5, 8, true}};
  for_each_backend([&] {
    for (const Shape& sh : shapes) {
      SCOPED_TRACE("m=" + std::to_string(sh.m) + " n=" + std::to_string(sh.n) +
                   " k=" + std::to_string(sh.k) +
                   " shared_b=" + std::to_string(sh.shared_b));
      const index_t stride_a = sh.m * sh.k, stride_c = sh.m * sh.n;
      const index_t stride_b = sh.shared_b ? 0 : sh.k * sh.n;
      std::vector<T> a(static_cast<std::size_t>(stride_a) * sh.batch);
      std::vector<T> b(static_cast<std::size_t>(sh.k) * sh.n *
                       (sh.shared_b ? 1 : sh.batch));
      std::vector<T> c(static_cast<std::size_t>(stride_c) * sh.batch);
      Rng rng(17);
      rng.fill_uniform<T>(flat(a));
      rng.fill_uniform<T>(flat(b));
      rng.fill_uniform<T>(flat(c));
      std::vector<T> c_ref = c;
      // Reference: one serial gemm per problem, no stream bound.
      for (index_t i = 0; i < sh.batch; ++i)
        gemm<T>(Op::N, Op::N, T{2},
                ConstMatrixView<T>(a.data() + i * stride_a, sh.m, sh.k, sh.m),
                ConstMatrixView<T>(b.data() + i * stride_b, sh.k, sh.n, sh.k),
                T{1},
                MatrixView<T>{c_ref.data() + i * stride_c, sh.m, sh.n, sh.m});
      {
        Stream s;
        StreamScope bind(s);
        gemm_strided_batched<T>(Op::N, Op::N, sh.m, sh.n, sh.k, T{2},
                                a.data(), sh.m, stride_a, b.data(), sh.k,
                                stride_b, T{1}, c.data(), sh.m, stride_c,
                                sh.batch);
        s.synchronize();
      }
      for (index_t i = 0; i < sh.batch; ++i)
        EXPECT_LE(
            rel_error<T>(
                ConstMatrixView<T>(c.data() + i * stride_c, sh.m, sh.n, sh.m),
                ConstMatrixView<T>(c_ref.data() + i * stride_c, sh.m, sh.n,
                                   sh.m)),
            conf_tol<T>());
    }
  });
}

TYPED_TEST(BackendTyped, GeqrfAndThinQStridedBatchedMatchReference) {
  using T = TypeParam;
  struct Shape {
    index_t m, n, batch;
  };
  const Shape shapes[] = {{1, 1, 2}, {5, 3, 4}, {9, 9, 3}, {24, 7, 5}};
  for_each_backend([&] {
    for (const Shape& sh : shapes) {
      SCOPED_TRACE("m=" + std::to_string(sh.m) + " n=" + std::to_string(sh.n));
      const index_t kq = std::min(sh.m, sh.n);
      const index_t stride_a = sh.m * sh.n, stride_tau = kq;
      std::vector<T> a(static_cast<std::size_t>(stride_a) * sh.batch);
      Rng rng(91);
      rng.fill_uniform<T>(flat(a));
      std::vector<T> a0 = a;  // pristine input
      std::vector<T> tau(static_cast<std::size_t>(stride_tau) * sh.batch);
      {
        Stream s;
        StreamScope bind(s);
        geqrf_strided_batched<T>(a.data(), sh.m, stride_a, sh.m, sh.n,
                                 tau.data(), stride_tau, sh.batch);
        s.synchronize();
      }
      std::vector<T> q = a;  // factored form -> explicit thin Q, in place
      {
        Stream s;
        StreamScope bind(s);
        thin_q_strided_batched<T>(q.data(), sh.m, stride_a, sh.m, sh.n,
                                  tau.data(), stride_tau, sh.batch);
        s.synchronize();
      }
      for (index_t i = 0; i < sh.batch; ++i) {
        const ConstMatrixView<T> fi(a.data() + i * stride_a, sh.m, sh.n,
                                    sh.m);
        const ConstMatrixView<T> qi(q.data() + i * stride_a, sh.m, kq, sh.m);
        const ConstMatrixView<T> ai(a0.data() + i * stride_a, sh.m, sh.n,
                                    sh.m);
        // Q has orthonormal columns...
        Matrix<T> g(kq, kq);
        gemm<T>(Op::C, Op::N, T{1}, qi, qi, T{0}, g.view());
        EXPECT_LE(rel_error<T>(g.view(), Matrix<T>::identity(kq).view()),
                  conf_tol<T>());
        // ...Q * R reproduces the input...
        Matrix<T> rec(sh.m, sh.n);
        gemm<T>(Op::N, Op::N, T{1}, qi, extract_r<T>(fi).view(), T{0},
                rec.view());
        EXPECT_LE(rel_error<T>(rec.view(), ai), conf_tol<T>());
        // ...and matches the serial reference's reconstruction.
        const QRFactors<T> ref = geqrf_reference<T>(ai);
        Matrix<T> rec_ref(sh.m, sh.n);
        gemm<T>(Op::N, Op::N, T{1}, thin_q_reference<T>(ref).view(),
                extract_r<T>(ref.factors.view()).view(), T{0},
                rec_ref.view());
        EXPECT_LE(rel_error<T>(rec.view(), rec_ref.view()),
                  real_t<T>(2) * conf_tol<T>());
      }
    }
  });
}

TYPED_TEST(BackendTyped, TrsmBatchedMatchesReference) {
  using T = TypeParam;
  for_each_backend([&] {
    for (const Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
      for (const Diag diag : {Diag::Unit, Diag::NonUnit}) {
        SCOPED_TRACE(std::string("uplo=") +
                     (uplo == Uplo::Lower ? "L" : "U") +
                     (diag == Diag::Unit ? " unit" : " nonunit"));
        const index_t batch = 6;
        std::vector<Matrix<T>> a, b, b_ref;
        for (index_t i = 0; i < batch; ++i) {
          const index_t n = 1 + 3 * i, nrhs = 1 + i % 4;
          Matrix<T> ai =
              random_matrix<T>(n, n, 40 + static_cast<std::uint64_t>(i));
          for (index_t d = 0; d < n; ++d) ai(d, d) += T{4};  // well-posed
          a.push_back(std::move(ai));
          b.push_back(
              random_matrix<T>(n, nrhs, 70 + static_cast<std::uint64_t>(i)));
          b_ref.push_back(to_matrix(b.back().view()));
          trsm_left_reference<T>(uplo, diag, a.back().view(),
                                 b_ref.back().view());
        }
        std::vector<ConstMatrixView<T>> av(a.begin(), a.end());
        std::vector<MatrixView<T>> bv(b.begin(), b.end());
        {
          Stream s;
          StreamScope bind(s);
          trsm_batched<T>(uplo, diag, av, bv);
          s.synchronize();
        }
        for (index_t i = 0; i < batch; ++i)
          EXPECT_LE(rel_error(b[static_cast<std::size_t>(i)],
                              b_ref[static_cast<std::size_t>(i)]),
                    conf_tol<T>());
      }
    }
  });
}

TYPED_TEST(BackendTyped, JacobiSvdStridedBatchedMatchesReference) {
  using T = TypeParam;
  using R = real_t<T>;
  for_each_backend([&] {
    const index_t m = 10, n = 6, batch = 4;
    const index_t stride_a = m * n, stride_s = n, stride_v = n * n;
    std::vector<T> a(static_cast<std::size_t>(stride_a) * batch);
    Rng rng(123);
    rng.fill_uniform<T>(flat(a));
    std::vector<T> a0 = a;
    std::vector<R> sv(static_cast<std::size_t>(stride_s) * batch);
    std::vector<T> v(static_cast<std::size_t>(stride_v) * batch);
    SvdBatchInfo info;
    {
      // The SVD returns host-readable info, so it must synchronize the
      // bound stream first: queue a GEMM that SCALES the input and assert
      // the SVD observed it — the flush contract, not just the numerics.
      std::vector<T> two(static_cast<std::size_t>(m) * m, T{});
      for (index_t d = 0; d < m; ++d)
        two[static_cast<std::size_t>(d) * (m + 1)] = T{2};  // 2I (m x m)
      std::vector<T> acopy = a;
      Stream s;
      StreamScope bind(s);
      // a <- (2I) * acopy per problem (shared stride-0 left operand).
      gemm_strided_batched<T>(Op::N, Op::N, m, n, m, T{1}, two.data(), m, 0,
                              acopy.data(), m, stride_a, T{0}, a.data(), m,
                              stride_a, batch);
      info = jacobi_svd_strided_batched<T>(a.data(), m, stride_a, m, n,
                                           sv.data(), stride_s, v.data(), n,
                                           stride_v, batch);
      s.synchronize();
    }
    EXPECT_EQ(info.nonconverged, 0);
    for (index_t i = 0; i < batch; ++i) {
      const SVDResult<T> ref = jacobi_svd_reference<T>(
          ConstMatrixView<T>(a0.data() + i * stride_a, m, n, m));
      ASSERT_TRUE(ref.converged);
      for (index_t j = 0; j < n; ++j)
        EXPECT_NEAR(
            static_cast<double>(
                sv[static_cast<std::size_t>(i * stride_s + j)]),
            2.0 * static_cast<double>(ref.s[static_cast<std::size_t>(j)]),
            static_cast<double>(conf_tol<T>()) *
                (1.0 + 2.0 * static_cast<double>(ref.s[0])));
    }
  });
}

// ---------------------------------------------------------------------------
// Stream ordering semantics.
// ---------------------------------------------------------------------------

TEST(BackendStreams, LaunchesOnOneStreamExecuteInFifoOrder) {
  for_each_backend([] {
    constexpr int kN = 64;
    std::vector<int> order;
    order.reserve(kN);
    {
      Stream s;
      for (int i = 0; i < kN; ++i)
        // One stream's bodies never run concurrently (the engine claims a
        // stream exclusively), so the unguarded push_back is race-free; the
        // TSan leg enforces that claim.
        s.launch("fifo", [&order, i] { order.push_back(i); });
      s.synchronize();
    }
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
    for (int i = 0; i < kN; ++i)
      EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  });
}

TEST(BackendStreams, CrossStreamOrderingViaEvents) {
  for_each_backend([] {
    for (int round = 0; round < 8; ++round) {
      std::atomic<int> x{0};
      std::atomic<int> seen{-1};
      Stream a, b;
      a.launch("produce", [&] { x.store(42, std::memory_order_relaxed); });
      Event done;
      a.record(done);
      b.wait(done);
      b.launch("consume",
               [&] { seen.store(x.load(std::memory_order_relaxed)); });
      b.synchronize();
      // The wait edge is the ONLY thing ordering the two queues; the
      // consumer must still observe the producer's write.
      EXPECT_EQ(seen.load(), 42);
      a.synchronize();
    }
  });
}

TEST(BackendStreams, EventReuseAndReset) {
  for_each_backend([] {
    Event ev;
    EXPECT_TRUE(ev.query());  // fresh events are complete
    ev.synchronize();         // and synchronizing one is a no-op
    Stream s;
    std::atomic<int> ran{0};
    s.launch("work", [&] { ran.fetch_add(1); });
    s.record(ev);
    if (backend().asynchronous()) {
      EXPECT_FALSE(ev.query());
    }
    ev.synchronize();
    EXPECT_TRUE(ev.query());
    EXPECT_EQ(ran.load(), 1);
    // Re-record: the same Event goes pending again...
    s.launch("work2", [&] { ran.fetch_add(1); });
    s.record(ev);
    if (backend().asynchronous()) {
      EXPECT_FALSE(ev.query());
    }
    // ...and reset() force-completes it without draining the stream.
    ev.reset();
    EXPECT_TRUE(ev.query());
    s.synchronize();
    EXPECT_EQ(ran.load(), 2);
  });
}

TEST(BackendStreams, FailureDrainsSkipsAndRethrows) {
  for_each_backend([] {
    Stream s;
    if (!backend().asynchronous()) {
      // Synchronous backends fail at the launch itself.
      EXPECT_THROW(
          s.launch("boom", [] { throw std::runtime_error("backend boom"); }),
          std::runtime_error);
      return;
    }
    std::atomic<bool> later_ran{false};
    Event after;
    s.launch("boom", [] { throw std::runtime_error("backend boom"); });
    s.launch("later", [&] { later_ran.store(true); });
    s.record(after);
    // The original exception type surfaces at the synchronization point...
    EXPECT_THROW(s.synchronize(), std::runtime_error);
    // ...subsequent bodies were skipped, but the queue drained fully and
    // downstream events completed (a stuck event would deadlock waiters).
    EXPECT_FALSE(later_ran.load());
    EXPECT_TRUE(after.query());
    EXPECT_EQ(s.pending(), 0u);
    s.synchronize();  // the failure state was consumed by the rethrow
  });
}

TEST(BackendStreams, InterleavedCrossWaitsDrainWithoutDeadlock) {
  // A denser record/wait lattice than the two-stream test: each stream
  // both produces for and consumes from its neighbours, round after round,
  // reusing the same events. Any engine that mishandles wait generations
  // or stream claiming deadlocks or drops work here; the sum pins that
  // every body ran exactly once.
  ScopedEnv env("HODLRX_BACKEND", "host-async");
  constexpr int kStreams = 3, kRounds = 20;
  std::atomic<int> sum{0};
  {
    Stream st[kStreams];
    Event ev[kStreams];
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kStreams; ++i) {
        if (r > 0) st[i].wait(ev[(i + 1) % kStreams]);
        st[i].launch("lattice", [&sum] { sum.fetch_add(1); });
      }
      for (int i = 0; i < kStreams; ++i) st[i].record(ev[i]);
    }
    backend().synchronize();
  }
  EXPECT_EQ(sum.load(), kStreams * kRounds);
}

// ---------------------------------------------------------------------------
// DeviceContext accounting invariants.
// ---------------------------------------------------------------------------

TEST(BackendMemory, AccountingLivePeakInvariants) {
  for_each_backend([] {
    DeviceContext& ctx = DeviceContext::global();
    const std::size_t live0 = ctx.live_bytes();
    constexpr std::size_t kBytes = 1 << 20;
    {
      DeviceBuffer buf(kBytes);
      ASSERT_NE(buf.data(), nullptr);
      EXPECT_EQ(buf.bytes(), kBytes);
      EXPECT_EQ(ctx.live_bytes(), live0 + kBytes);
      EXPECT_GE(ctx.peak_bytes(), ctx.live_bytes());
      // The memory is real and writable end to end.
      auto* p = buf.as<unsigned char>();
      p[0] = 1;
      p[kBytes - 1] = 2;
      DeviceBuffer moved(std::move(buf));
      EXPECT_EQ(moved.bytes(), kBytes);
      EXPECT_EQ(buf.data(), nullptr);
      EXPECT_EQ(ctx.live_bytes(), live0 + kBytes);  // a move is not a copy
    }
    EXPECT_EQ(ctx.live_bytes(), live0);  // fully retired
    EXPECT_GE(ctx.peak_bytes(), live0 + kBytes);
    // Raw Backend::allocate/deallocate round-trips the same accounting.
    Backend& b = backend();
    void* p = b.allocate(4096);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(ctx.live_bytes(), live0 + 4096);
    b.deallocate(p, 4096);
    EXPECT_EQ(ctx.live_bytes(), live0);
  });
}

// ---------------------------------------------------------------------------
// host is bit-for-bit the unbound dispatch path.
// ---------------------------------------------------------------------------

TEST(BackendHost, BindingAStreamChangesNothing) {
  ScopedEnv env("HODLRX_BACKEND", "host");
  const index_t m = 8, n = 6, k = 7, batch = 5;
  const index_t sa = m * k, sb = k * n, sc = m * n;
  std::vector<double> a(static_cast<std::size_t>(sa) * batch);
  std::vector<double> b(static_cast<std::size_t>(sb) * batch);
  Rng rng(7);
  rng.fill_uniform<double>(flat(a));
  rng.fill_uniform<double>(flat(b));
  std::vector<double> c1(static_cast<std::size_t>(sc) * batch, 0.0);
  std::vector<double> c2 = c1;

  const std::uint64_t launches0 = DeviceContext::global().launches();
  gemm_strided_batched<double>(Op::N, Op::N, m, n, k, 1.0, a.data(), m, sa,
                               b.data(), k, sb, 0.0, c1.data(), m, sc, batch);
  const std::uint64_t unbound = DeviceContext::global().launches() - launches0;

  backend_stats::reset();
  {
    Stream s;
    StreamScope bind(s);
    gemm_strided_batched<double>(Op::N, Op::N, m, n, k, 1.0, a.data(), m, sa,
                                 b.data(), k, sb, 0.0, c2.data(), m, sc,
                                 batch);
    s.synchronize();
  }
  const std::uint64_t bound =
      DeviceContext::global().launches() - launches0 - unbound;
  // Same launch count (the counter-asserted bit-for-bit contract) ...
  EXPECT_EQ(bound, unbound);
  EXPECT_EQ(unbound, 1u);
  // ... nothing deferred ...
  EXPECT_EQ(backend_stats::deferred(), 0u);
  EXPECT_EQ(backend_stats::drains(), 0u);
  // ... and bit-identical results.
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i], c2[i]);
}

// ---------------------------------------------------------------------------
// Randomized multi-stream DAG stress vs serial replay (the TSan target).
// ---------------------------------------------------------------------------

TEST(BackendStress, RandomMultiStreamDagMatchesSerialReplay) {
  ScopedEnv env("HODLRX_BACKEND", "host-async");
  constexpr index_t kDim = 4;  // 4x4 GEMMs
  constexpr int kBuffers = 6;
  constexpr int kStreams = 4;
  constexpr int kOps = 160;
  for (const std::uint64_t seed : {1ull, 99ull, 2026ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    // Async and replay copies of the buffer set start identical. Entries in
    // [-0.5, 0.5] plus the contractive update below (c = 0.25 a b + 0.5 c,
    // k = 4) keep every entry bounded by 0.5 forever — 160 accumulations
    // stay finite, so the bit-for-bit comparison never meets NaN != NaN.
    std::vector<Matrix<double>> buf, ref;
    for (int i = 0; i < kBuffers; ++i) {
      Matrix<double> m = random_matrix<double>(
          kDim, kDim, seed * 100 + static_cast<std::uint64_t>(i));
      for (index_t col = 0; col < kDim; ++col)
        for (index_t row = 0; row < kDim; ++row) m(row, col) *= 0.5;
      buf.push_back(to_matrix(m.view()));
      ref.push_back(std::move(m));
    }
    struct OpSpec {
      int a, b, c;  // c <- 0.25 a b + 0.5 c
    };
    std::vector<OpSpec> ops;
    ops.reserve(kOps);
    for (int i = 0; i < kOps; ++i) {
      OpSpec op{};
      op.a = static_cast<int>(rng() % kBuffers);
      op.b = static_cast<int>(rng() % kBuffers);
      do {
        op.c = static_cast<int>(rng() % kBuffers);
      } while (op.c == op.a || op.c == op.b);
      ops.push_back(op);
    }
    {
      std::vector<std::unique_ptr<Stream>> streams;
      for (int s = 0; s < kStreams; ++s)
        streams.push_back(std::make_unique<Stream>());
      // Per-op completion events; per-buffer conflict tracking builds the
      // event edges: a read waits on the buffer's last writer, a write
      // waits on the last writer AND every reader since (RAW, WAW, WAR).
      std::vector<Event> ev(ops.size());
      std::vector<int> op_stream(ops.size());
      std::vector<int> last_writer(kBuffers, -1);
      std::vector<std::vector<int>> readers_since(
          static_cast<std::size_t>(kBuffers));
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const OpSpec op = ops[i];
        const int si = static_cast<int>(rng() % kStreams);
        op_stream[i] = si;
        Stream& s = *streams[static_cast<std::size_t>(si)];
        auto wait_on = [&](int dep) {
          if (dep >= 0 && op_stream[static_cast<std::size_t>(dep)] != si)
            s.wait(ev[static_cast<std::size_t>(dep)]);
        };
        wait_on(last_writer[static_cast<std::size_t>(op.a)]);
        wait_on(last_writer[static_cast<std::size_t>(op.b)]);
        wait_on(last_writer[static_cast<std::size_t>(op.c)]);
        for (const int r : readers_since[static_cast<std::size_t>(op.c)])
          wait_on(r);
        {
          StreamScope bind(s);
          gemm_strided_batched<double>(
              Op::N, Op::N, kDim, kDim, kDim, 0.25,
              buf[static_cast<std::size_t>(op.a)].data(), kDim, 0,
              buf[static_cast<std::size_t>(op.b)].data(), kDim, 0, 0.5,
              buf[static_cast<std::size_t>(op.c)].data(), kDim, 0, 1);
        }
        s.record(ev[i]);
        readers_since[static_cast<std::size_t>(op.a)].push_back(
            static_cast<int>(i));
        readers_since[static_cast<std::size_t>(op.b)].push_back(
            static_cast<int>(i));
        readers_since[static_cast<std::size_t>(op.c)].clear();
        last_writer[static_cast<std::size_t>(op.c)] = static_cast<int>(i);
        // Occasional mid-build drains vary the interleaving patterns.
        if (rng() % 16 == 0) s.synchronize();
      }
      backend().synchronize();
    }
    // Serial replay through the SAME driver (unbound -> inline), in program
    // order. The event edges above encode exactly the per-buffer program
    // order, so the async result must be bit-identical — not just close.
    for (const OpSpec op : ops)
      gemm_strided_batched<double>(
          Op::N, Op::N, kDim, kDim, kDim, 0.25,
          ref[static_cast<std::size_t>(op.a)].data(), kDim, 0,
          ref[static_cast<std::size_t>(op.b)].data(), kDim, 0, 0.5,
          ref[static_cast<std::size_t>(op.c)].data(), kDim, 0, 1);
    for (int i = 0; i < kBuffers; ++i)
      for (index_t col = 0; col < kDim; ++col)
        for (index_t row = 0; row < kDim; ++row)
          EXPECT_EQ(buf[static_cast<std::size_t>(i)](row, col),
                    ref[static_cast<std::size_t>(i)](row, col))
              << "buffer " << i << " (" << row << "," << col << ")";
  }
}

// The queue/dispatch counters the bench backend_compare record reports.
TEST(BackendStats, CountersTrackDeferralAndDrains) {
  ScopedEnv env("HODLRX_BACKEND", "host-async");
  backend_stats::reset();
  std::vector<double> a(16, 1.0), b(16, 1.0), c(16, 0.0);
  {
    Stream s;
    StreamScope bind(s);
    for (int i = 0; i < 3; ++i)
      gemm_strided_batched<double>(Op::N, Op::N, 4, 4, 4, 1.0, a.data(), 4, 0,
                                   b.data(), 4, 0, 1.0, c.data(), 4, 0, 1);
    Event ev;
    s.record(ev);
    EXPECT_EQ(backend_stats::deferred(), 3u);
    EXPECT_EQ(backend_stats::events_recorded(), 1u);
    EXPECT_GE(backend_stats::max_queue_depth(), 3u);
    EXPECT_EQ(backend_stats::drained(), 0u);
    s.synchronize();
  }
  EXPECT_EQ(backend_stats::drained(), 3u);
  EXPECT_GE(backend_stats::drains(), 1u);
  EXPECT_EQ(c[0], 3.0 * 4.0);  // three accumulated rank-4 inner products
}

}  // namespace
}  // namespace hodlrx
