#include <gtest/gtest.h>

#include "core/packed.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using test::rel_error;

template <typename T>
PackedHodlr<T> make_packed(index_t n, index_t leaf, double tol = 1e-10,
                           std::uint64_t seed = 7) {
  Matrix<T> a = test::smooth_test_matrix<T>(n, seed);
  ClusterTree tree = ClusterTree::uniform(n, leaf);
  BuildOptions opt;
  opt.tol = tol;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, opt);
  return PackedHodlr<T>::pack(h);
}

TEST(Packed, PanelOffsetsAreConsistent) {
  auto p = make_packed<double>(256, 16);
  const index_t L = p.depth();
  EXPECT_EQ(p.col_offset[1], 0);
  for (index_t l = 1; l <= L; ++l)
    EXPECT_EQ(p.col_offset[l + 1], p.col_offset[l] + p.level_rank[l]);
  EXPECT_EQ(p.total_cols, p.col_offset[L + 1]);
  EXPECT_EQ(p.ubig.rows(), 256);
  EXPECT_EQ(p.ubig.cols(), p.total_cols);
}

TEST(Packed, PanelsContainNodeBases) {
  const index_t n = 200, leaf = 25;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 11);
  ClusterTree tree = ClusterTree::uniform(n, leaf);
  BuildOptions opt;
  opt.tol = 1e-10;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, opt);
  PackedHodlr<double> p = PackedHodlr<double>::pack(h);

  for (index_t nu = 1; nu < tree.num_nodes(); ++nu) {
    const index_t level = ClusterTree::level_of(nu);
    const ClusterNode& c = tree.node(nu);
    const Matrix<double>& u = h.u(nu);
    // The first rank(nu) panel columns hold U_nu; the rest are zero padding.
    auto panel = p.ubig.view().block(c.begin, p.col_offset[level], c.size(),
                                     p.level_rank[level]);
    for (index_t j = 0; j < u.cols(); ++j)
      for (index_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(panel(i, j), u(i, j));
    for (index_t j = u.cols(); j < p.level_rank[level]; ++j)
      for (index_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(panel(i, j), 0.0);
  }
}

TEST(Packed, ReconstructionFromPanels) {
  // Rebuild the dense matrix from the packed representation alone and
  // compare with HodlrMatrix::to_dense (they must agree exactly).
  const index_t n = 128, leaf = 16;
  Matrix<std::complex<double>> a =
      test::smooth_test_matrix<std::complex<double>>(n, 13);
  ClusterTree tree = ClusterTree::uniform(n, leaf);
  BuildOptions opt;
  opt.tol = 1e-9;
  auto h = HodlrMatrix<std::complex<double>>::build_from_dense(a, tree, opt);
  auto p = PackedHodlr<std::complex<double>>::pack(h);

  Matrix<std::complex<double>> rec(n, n);
  for (index_t j = 0; j < tree.num_leaves(); ++j) {
    const ClusterNode& c = tree.node(tree.leaf(j));
    copy(p.leaf_view(p.dbig, j),
         rec.view().block(c.begin, c.begin, c.size(), c.size()));
  }
  using C = std::complex<double>;
  for (index_t nu = 1; nu < tree.num_nodes(); ++nu) {
    const index_t level = ClusterTree::level_of(nu);
    const index_t sib = ClusterTree::sibling(nu);
    const ClusterNode& rc = tree.node(nu);
    const ClusterNode& cc = tree.node(sib);
    const index_t r = p.level_rank[level];
    if (r == 0) continue;
    // Padded blocks multiply to the same product as the exact ones.
    gemm<C>(Op::N, Op::C, C{1},
            p.ubig.view().block(rc.begin, p.col_offset[level], rc.size(), r),
            p.vbig.view().block(cc.begin, p.col_offset[level], cc.size(), r),
            C{0}, rec.view().block(rc.begin, cc.begin, rc.size(), cc.size()));
  }
  EXPECT_LE(rel_error(rec, h.to_dense()), 1e-14);
}

TEST(Packed, UniformityFlags) {
  auto p1 = make_packed<double>(256, 16);  // power of two: uniform everywhere
  for (index_t l = 0; l <= p1.depth(); ++l) EXPECT_TRUE(p1.level_uniform[l]);
  EXPECT_TRUE(p1.leaves_uniform);

  auto p2 = make_packed<double>(100, 16);  // odd splits: not uniform
  bool any_nonuniform = false;
  for (index_t l = 0; l <= p2.depth(); ++l)
    if (!p2.level_uniform[l]) any_nonuniform = true;
  EXPECT_TRUE(any_nonuniform);
}

TEST(Packed, NodeRankMetadata) {
  const index_t n = 160;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 17);
  ClusterTree tree = ClusterTree::uniform(n, 20);
  BuildOptions opt;
  opt.tol = 1e-9;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, opt);
  PackedHodlr<double> p = PackedHodlr<double>::pack(h);
  for (index_t nu = 1; nu < tree.num_nodes(); ++nu)
    EXPECT_EQ(p.node_rank[nu], h.rank(nu));
}

TEST(Packed, DbigOffsets) {
  auto p = make_packed<double>(250, 30);
  const index_t leaves = p.tree.num_leaves();
  index_t acc = 0;
  for (index_t j = 0; j < leaves; ++j) {
    EXPECT_EQ(p.d_offset[j], acc);
    const index_t sz = p.tree.node(p.tree.leaf(j)).size();
    acc += sz * sz;
  }
  EXPECT_EQ(p.d_offset[leaves], acc);
  EXPECT_EQ(static_cast<index_t>(p.dbig.size()), acc);
}

}  // namespace
}  // namespace hodlrx
