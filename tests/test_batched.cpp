#include <gtest/gtest.h>

#include "batched/batched_blas.hpp"
#include "device/device.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using test::rel_error;

template <typename T>
class BatchedTyped : public ::testing::Test {};
using BatchedTypes = ::testing::Types<float, double, std::complex<float>,
                                      std::complex<double>>;
TYPED_TEST_SUITE(BatchedTyped, BatchedTypes);

TYPED_TEST(BatchedTyped, GemmBatchedMatchesLoop) {
  using T = TypeParam;
  const index_t batch = 37;  // larger than thread count -> batched mode
  std::vector<Matrix<T>> a, b, c_batched, c_ref;
  for (index_t i = 0; i < batch; ++i) {
    const index_t m = 5 + i % 7, n = 3 + i % 5, k = 4 + i % 6;
    a.push_back(random_matrix<T>(m, k, 100 + i));
    b.push_back(random_matrix<T>(k, n, 200 + i));
    c_batched.push_back(random_matrix<T>(m, n, 300 + i));
    c_ref.push_back(to_matrix(c_batched.back().view()));
  }
  std::vector<ConstMatrixView<T>> av, bv;
  std::vector<MatrixView<T>> cv;
  for (index_t i = 0; i < batch; ++i) {
    av.push_back(a[i]);
    bv.push_back(b[i]);
    cv.push_back(c_batched[i]);
    gemm<T>(Op::N, Op::N, T{2}, a[i], b[i], T{1}, c_ref[i].view());
  }
  gemm_batched<T>(Op::N, Op::N, T{2}, av, bv, T{1}, cv);
  for (index_t i = 0; i < batch; ++i)
    EXPECT_LE(rel_error(c_batched[i], c_ref[i]), real_t<T>(1e-5));
}

TYPED_TEST(BatchedTyped, GemmBatchedStreamModeMatches) {
  using T = TypeParam;
  const index_t batch = 3;  // fewer than threads -> stream mode under kAuto
  std::vector<Matrix<T>> a, b, c1, c2;
  for (index_t i = 0; i < batch; ++i) {
    a.push_back(random_matrix<T>(50, 40, 10 + i));
    b.push_back(random_matrix<T>(40, 30, 20 + i));
    c1.push_back(Matrix<T>(50, 30));
    c2.push_back(Matrix<T>(50, 30));
  }
  std::vector<ConstMatrixView<T>> av(a.begin(), a.end()),
      bv(b.begin(), b.end());
  std::vector<MatrixView<T>> cv1(c1.begin(), c1.end()),
      cv2(c2.begin(), c2.end());
  gemm_batched<T>(Op::N, Op::N, T{1}, av, bv, T{0}, cv1,
                  BatchPolicy::kForceStream);
  gemm_batched<T>(Op::N, Op::N, T{1}, av, bv, T{0}, cv2,
                  BatchPolicy::kForceBatched);
  for (index_t i = 0; i < batch; ++i)
    EXPECT_LE(rel_error(c1[i], c2[i]), real_t<T>(1e-5));
}

TYPED_TEST(BatchedTyped, GemmStridedBatched) {
  using T = TypeParam;
  const index_t m = 6, n = 4, k = 5, batch = 10;
  std::vector<T> a(m * k * batch), b(k * n * batch), c(m * n * batch);
  Rng rng(33);
  rng.fill_uniform<T>(MatrixView<T>{a.data(), static_cast<index_t>(a.size()), 1,
                                    static_cast<index_t>(a.size())});
  rng.fill_uniform<T>(MatrixView<T>{b.data(), static_cast<index_t>(b.size()), 1,
                                    static_cast<index_t>(b.size())});
  std::vector<T> c_ref = c;
  gemm_strided_batched<T>(Op::N, Op::N, m, n, k, T{1}, a.data(), m, m * k,
                          b.data(), k, k * n, T{0}, c.data(), m, m * n, batch);
  for (index_t i = 0; i < batch; ++i) {
    ConstMatrixView<T> ai(a.data() + i * m * k, m, k, m);
    ConstMatrixView<T> bi(b.data() + i * k * n, k, n, k);
    MatrixView<T> ci{c_ref.data() + i * m * n, m, n, m};
    gemm<T>(Op::N, Op::N, T{1}, ai, bi, T{0}, ci);
  }
  ConstMatrixView<T> cc(c.data(), static_cast<index_t>(c.size()), 1,
                        static_cast<index_t>(c.size()));
  ConstMatrixView<T> cr(c_ref.data(), static_cast<index_t>(c_ref.size()), 1,
                        static_cast<index_t>(c_ref.size()));
  EXPECT_LE(rel_error<T>(cc, cr), real_t<T>(1e-5));
}

TYPED_TEST(BatchedTyped, GetrfGetrsBatched) {
  using T = TypeParam;
  using R = real_t<T>;
  const index_t batch = 25;
  std::vector<Matrix<T>> a0, lu, b, x;
  std::vector<std::vector<index_t>> piv(batch);
  for (index_t i = 0; i < batch; ++i) {
    const index_t n = 8 + i % 9;
    a0.push_back(random_matrix<T>(n, n, 40 + i));
    for (index_t d = 0; d < n; ++d) a0.back()(d, d) += T{5};
    lu.push_back(to_matrix(a0.back().view()));
    b.push_back(random_matrix<T>(n, 3, 50 + i));
    x.push_back(to_matrix(b.back().view()));
    piv[i].assign(n, 0);
  }
  std::vector<MatrixView<T>> luv(lu.begin(), lu.end());
  std::vector<index_t*> pv;
  for (auto& p : piv) pv.push_back(p.data());
  getrf_batched<T>(luv, pv);

  std::vector<ConstMatrixView<T>> luc(lu.begin(), lu.end());
  std::vector<const index_t*> pvc(pv.begin(), pv.end());
  std::vector<MatrixView<T>> xv(x.begin(), x.end());
  getrs_batched<T>(luc, pvc, xv);
  for (index_t i = 0; i < batch; ++i)
    EXPECT_LE(test::dense_relres<T>(a0[i], x[i], b[i]),
              R(std::is_same_v<R, float> ? 1e-4 : 1e-12));
}

TYPED_TEST(BatchedTyped, GetrfNopivotBatched) {
  using T = TypeParam;
  using R = real_t<T>;
  const index_t batch = 9, n = 12;
  std::vector<Matrix<T>> a0, lu, b;
  for (index_t i = 0; i < batch; ++i) {
    a0.push_back(random_matrix<T>(n, n, 60 + i));
    for (index_t d = 0; d < n; ++d) a0.back()(d, d) += T{30};
    lu.push_back(to_matrix(a0.back().view()));
    b.push_back(random_matrix<T>(n, 2, 70 + i));
  }
  std::vector<MatrixView<T>> luv(lu.begin(), lu.end());
  getrf_nopivot_batched<T>(luv);
  std::vector<Matrix<T>> x;
  for (index_t i = 0; i < batch; ++i) x.push_back(to_matrix(b[i].view()));
  std::vector<ConstMatrixView<T>> luc(lu.begin(), lu.end());
  std::vector<MatrixView<T>> xv(x.begin(), x.end());
  getrs_nopivot_batched<T>(luc, xv);
  for (index_t i = 0; i < batch; ++i)
    EXPECT_LE(test::dense_relres<T>(a0[i], x[i], b[i]),
              R(std::is_same_v<R, float> ? 1e-4 : 1e-12));
}

TEST(Batched, EmptyBatchIsNoop) {
  std::vector<ConstMatrixView<double>> a, b;
  std::vector<MatrixView<double>> c;
  gemm_batched<double>(Op::N, Op::N, 1.0, a, b, 0.0, c);  // must not crash
  std::vector<MatrixView<double>> lu;
  std::vector<index_t*> piv;
  getrf_batched<double>(lu, piv);
}

TEST(Batched, LaunchCounterCountsCalls) {
  DeviceContext::global().reset_counters();
  Matrix<double> a = random_matrix<double>(4, 4, 1);
  Matrix<double> b = random_matrix<double>(4, 4, 2);
  Matrix<double> c(4, 4);
  std::vector<ConstMatrixView<double>> av = {a, a, a}, bv = {b, b, b};
  std::vector<Matrix<double>> cs(3, Matrix<double>(4, 4));
  std::vector<MatrixView<double>> cv(cs.begin(), cs.end());
  gemm_batched<double>(Op::N, Op::N, 1.0, av, bv, 0.0, cv);
  EXPECT_EQ(DeviceContext::global().launches(), 1u);
  gemm_batched<double>(Op::N, Op::N, 1.0, av, bv, 0.0, cv);
  EXPECT_EQ(DeviceContext::global().launches(), 2u);
}

}  // namespace
}  // namespace hodlrx
