#include <gtest/gtest.h>

#include "core/factorization.hpp"
#include "precond/gmres.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

template <typename T>
LinearOp<T> dense_op(const Matrix<T>& a) {
  return [&a](const T* x, T* y) {
    gemv<T>(Op::N, T{1}, a, x, T{0}, y);
  };
}

TEST(Gmres, SolvesWellConditionedSystem) {
  using T = double;
  const index_t n = 120;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 501);
  Matrix<T> b = random_matrix<T>(n, 1, 503);
  std::vector<T> x(n, 0.0);
  GmresOptions opt;
  opt.tol = 1e-12;
  auto res = gmres<T>(n, dense_op(a), {}, b.data(), x.data(), opt);
  EXPECT_TRUE(res.converged);
  ConstMatrixView<T> xv(x.data(), n, 1, n);
  EXPECT_LE(test::dense_relres<T>(a, xv, b), 1e-10);
}

TEST(Gmres, ComplexSystem) {
  using T = std::complex<double>;
  const index_t n = 90;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 511);
  Matrix<T> b = random_matrix<T>(n, 1, 513);
  std::vector<T> x(n, T{});
  GmresOptions opt;
  opt.tol = 1e-11;
  auto res = gmres<T>(n, dense_op(a), {}, b.data(), x.data(), opt);
  EXPECT_TRUE(res.converged);
  ConstMatrixView<T> xv(x.data(), n, 1, n);
  EXPECT_LE(test::dense_relres<T>(a, xv, b), 1e-9);
}

TEST(Gmres, HodlrPreconditionerAccelerates) {
  // The paper's preconditioner scenario: a low-accuracy HODLR factorization
  // turns a slowly converging iteration into a few-step one.
  using T = double;
  const index_t n = 400;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 521);
  // Make the system harder: boost the off-diagonal coupling.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      if (i != j) a(i, j) *= 3.0;
  Matrix<T> b = random_matrix<T>(n, 1, 523);

  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-4;  // low-accuracy compression = cheap preconditioner
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  auto f = HodlrFactorization<T>::factor(PackedHodlr<T>::pack(h), {});
  LinearOp<T> precond = [&f, n](const T* in, T* out) {
    std::copy_n(in, n, out);
    MatrixView<T> v{out, n, 1, n};
    f.solve_inplace(v);
  };

  GmresOptions opt;
  opt.tol = 1e-12;
  opt.max_iterations = 200;
  std::vector<T> x0(n, 0.0), x1(n, 0.0);
  auto plain = gmres<T>(n, dense_op(a), {}, b.data(), x0.data(), opt);
  auto pre = gmres<T>(n, dense_op(a), precond, b.data(), x1.data(), opt);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, 15);
  EXPECT_LT(pre.iterations, plain.iterations);
  ConstMatrixView<T> xv(x1.data(), n, 1, n);
  EXPECT_LE(test::dense_relres<T>(a, xv, b), 1e-10);
}

TEST(Gmres, ZeroRhsShortCircuits) {
  using T = double;
  const index_t n = 10;
  Matrix<T> a = Matrix<T>::identity(n);
  std::vector<T> b(n, 0.0), x(n, 1.0);
  auto res = gmres<T>(n, dense_op(a), {}, b.data(), x.data(), {});
  EXPECT_TRUE(res.converged);
  for (T v : x) EXPECT_EQ(v, 0.0);
}

TEST(Gmres, RestartStillConverges) {
  using T = double;
  const index_t n = 150;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 531);
  Matrix<T> b = random_matrix<T>(n, 1, 533);
  std::vector<T> x(n, 0.0);
  GmresOptions opt;
  opt.restart = 8;  // force several restart cycles
  opt.tol = 1e-10;
  opt.max_iterations = 400;
  auto res = gmres<T>(n, dense_op(a), {}, b.data(), x.data(), opt);
  EXPECT_TRUE(res.converged);
  ConstMatrixView<T> xv(x.data(), n, 1, n);
  EXPECT_LE(test::dense_relres<T>(a, xv, b), 1e-8);
}

TEST(Gmres, ResidualHistoryMonotonicWithinCycle) {
  using T = double;
  const index_t n = 80;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 541);
  Matrix<T> b = random_matrix<T>(n, 1, 543);
  std::vector<T> x(n, 0.0);
  GmresOptions opt;
  opt.tol = 1e-13;
  auto res = gmres<T>(n, dense_op(a), {}, b.data(), x.data(), opt);
  for (std::size_t i = 2; i < res.history.size(); ++i)
    EXPECT_LE(res.history[i], res.history[i - 1] * (1 + 1e-12));
}

}  // namespace
}  // namespace hodlrx
