#include <gtest/gtest.h>

#include "kernels/kernels.hpp"
#include "tree/cluster_tree.hpp"

namespace hodlrx {
namespace {

TEST(ClusterTree, Definition1Invariants) {
  for (index_t n : {16, 17, 100, 1000}) {
    for (index_t depth : {0, 1, 3}) {
      if (n < (index_t{1} << depth)) continue;
      ClusterTree t = ClusterTree::with_depth(n, depth);
      t.validate();
      EXPECT_EQ(t.n(), n);
      EXPECT_EQ(t.depth(), depth);
      EXPECT_EQ(t.num_nodes(), (index_t{2} << depth) - 1);
      EXPECT_EQ(t.num_leaves(), index_t{1} << depth);
      // Nodes at each level partition [0, n).
      for (index_t l = 0; l <= depth; ++l) {
        index_t covered = 0;
        for (index_t i = ClusterTree::level_begin(l);
             i < ClusterTree::level_begin(l + 1); ++i)
          covered += t.node(i).size();
        EXPECT_EQ(covered, n);
      }
    }
  }
}

TEST(ClusterTree, PaperFigure1Example) {
  // Fig. 1: N = 400, two levels; node 2's children are 4 and 5.
  ClusterTree t = ClusterTree::with_depth(400, 2);
  // Paper numbering is 1-based (root=1); ours is 0-based (root=0).
  EXPECT_EQ(t.node(0).size(), 400);          // root: I = 1:400
  EXPECT_EQ(t.node(1).begin, 0);             // node "2": 1:200
  EXPECT_EQ(t.node(1).end, 200);
  EXPECT_EQ(t.node(2).begin, 200);           // node "3": 201:400
  EXPECT_EQ(t.node(3).end, 100);             // node "4": 1:100
  EXPECT_EQ(t.node(4).begin, 100);           // node "5": 101:200
  EXPECT_EQ(ClusterTree::parent(4), 1);
  EXPECT_EQ(ClusterTree::sibling(3), 4);
  EXPECT_EQ(ClusterTree::sibling(4), 3);
  EXPECT_EQ(ClusterTree::left_child(1), 3);
}

TEST(ClusterTree, UniformLeafSizing) {
  ClusterTree t = ClusterTree::uniform(1000, 64);
  EXPECT_LE(t.max_leaf_size(), 64);
  EXPECT_GE(t.min_leaf_size(), 1);
  ClusterTree t2 = ClusterTree::uniform(64, 64);
  EXPECT_EQ(t2.depth(), 0);
  ClusterTree t3 = ClusterTree::uniform(65, 64);
  EXPECT_EQ(t3.depth(), 1);
}

TEST(ClusterTree, TinyNDoesNotOverSplit) {
  ClusterTree t = ClusterTree::uniform(3, 1);
  EXPECT_LE(t.depth(), 1);  // cannot make 4 nonempty leaves from 3 indices
  t.validate();
}

TEST(ClusterTree, LevelOf) {
  EXPECT_EQ(ClusterTree::level_of(0), 0);
  EXPECT_EQ(ClusterTree::level_of(1), 1);
  EXPECT_EQ(ClusterTree::level_of(2), 1);
  EXPECT_EQ(ClusterTree::level_of(3), 2);
  EXPECT_EQ(ClusterTree::level_of(6), 2);
  EXPECT_EQ(ClusterTree::level_of(7), 3);
}

TEST(ClusterTree, WithDepthTooDeepThrows) {
  EXPECT_THROW(ClusterTree::with_depth(3, 2), Error);
}

TEST(ClusterTree, FromRangesValidates) {
  std::vector<ClusterNode> bad = {{0, 10}, {0, 6}, {5, 10}};  // overlap
  EXPECT_THROW(ClusterTree::from_ranges(std::move(bad), 1), Error);
  std::vector<ClusterNode> good = {{0, 10}, {0, 6}, {6, 10}};
  ClusterTree t = ClusterTree::from_ranges(std::move(good), 1);
  EXPECT_EQ(t.n(), 10);
}

TEST(KdTree, PermutationIsValid) {
  PointSet pts = uniform_random_points(257, 2, -1, 1, 5);
  GeometricTree g = build_kd_tree(pts, 32);
  g.tree.validate();
  std::vector<char> seen(pts.size(), 0);
  for (index_t i : g.perm) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, pts.size());
    EXPECT_FALSE(seen[i]);
    seen[i] = 1;
  }
  // Permuted points match the permutation.
  for (index_t i = 0; i < pts.size(); ++i)
    for (index_t d = 0; d < 2; ++d)
      EXPECT_EQ(g.points.coord(i, d), pts.coord(g.perm[i], d));
}

TEST(KdTree, SplitsSeparateSpace) {
  // 1-D points: after the kd build, each node's points form an interval.
  PointSet pts = uniform_random_points(256, 1, -1, 1, 6);
  GeometricTree g = build_kd_tree(pts, 16);
  for (index_t nu = 1; nu < g.tree.num_nodes() - 1; nu += 2) {
    const ClusterNode& a = g.tree.node(nu);
    const ClusterNode& b = g.tree.node(nu + 1);
    double amax = -2, bmin = 2;
    for (index_t i = a.begin; i < a.end; ++i)
      amax = std::max(amax, g.points.coord(i, 0));
    for (index_t i = b.begin; i < b.end; ++i)
      bmin = std::min(bmin, g.points.coord(i, 0));
    EXPECT_LE(amax, bmin + 1e-12);
  }
}

TEST(Points, DistanceAndPermute) {
  PointSet p(2, 2);
  p.coord(0, 0) = 0;
  p.coord(0, 1) = 0;
  p.coord(1, 0) = 3;
  p.coord(1, 1) = 4;
  EXPECT_DOUBLE_EQ(p.dist2(0, 1), 25.0);
  PointSet q = p.permuted({1, 0});
  EXPECT_DOUBLE_EQ(q.coord(0, 0), 3.0);
}

TEST(Points, MinPairwiseDistance1D) {
  PointSet p(1, 4);
  p.coord(0, 0) = 0.0;
  p.coord(1, 0) = 0.5;
  p.coord(2, 0) = 0.65;
  p.coord(3, 0) = 2.0;
  EXPECT_NEAR(min_pairwise_distance(p), 0.15, 1e-14);
}

}  // namespace
}  // namespace hodlrx
