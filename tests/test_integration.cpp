#include <gtest/gtest.h>

#include "baseline/recursive_solver.hpp"
#include "bie/helmholtz.hpp"
#include "bie/laplace.hpp"
#include "core/factorization.hpp"
#include "kernels/rpy.hpp"
#include "precond/gmres.hpp"
#include "sparse/block_lu.hpp"
#include "test_util.hpp"

/// End-to-end miniatures of the paper's three experiments (Secs. IV-A/B/C),
/// at test scale: same pipelines as the benches, validated against exact
/// operators or known solutions.

namespace hodlrx {
namespace {

TEST(Integration, RpyPipelineMiniTable3) {
  // Sec. IV-A at N = 2^11: build from the RPY kernel, factor with both the
  // HODLRlib-style baseline and the batched engine, compare solutions and
  // check the relative residual against the exact kernel matvec.
  const index_t n = 2048;
  PointSet pts = uniform_random_points(n, 1, -1, 1, 601);
  GeometricTree g = build_kd_tree(pts, 64);
  RpyKernel1D<double> kernel(std::move(g.points), {});
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<double> h = HodlrMatrix<double>::build(kernel, g.tree, bopt);

  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  RecursiveSolver<double> baseline = RecursiveSolver<double>::factor(h);

  Matrix<double> b = random_matrix<double>(n, 1, 607);
  Matrix<double> x = f.solve(b);
  Matrix<double> xb = baseline.solve(b);
  EXPECT_LE(test::rel_error(x, xb), 1e-9);

  // relres against the EXACT kernel matrix (direct summation).
  Matrix<double> r = to_matrix(b.view());
  for (index_t i = 0; i < n; ++i) {
    double acc = 0;
    for (index_t j = 0; j < n; ++j) acc += kernel.entry(i, j) * x(j, 0);
    r(i, 0) -= acc;
  }
  EXPECT_LE(norm_fro(r) / norm_fro(b), 1e-9);
}

TEST(Integration, LaplacePipelineMiniTable4) {
  // Sec. IV-B in miniature: BIE solve through all four solver columns.
  bie::BlobContour contour;
  bie::ContourDiscretization d = bie::discretize(contour, 2048);
  bie::LaplaceExteriorBIE<double> gen(d, {0.0, 0.0});
  ClusterTree tree = ClusterTree::uniform(d.n, 64);
  BuildOptions bopt;
  bopt.tol = 1e-10;
  HodlrMatrix<double> h = HodlrMatrix<double>::build(gen, tree, bopt);

  const bie::Point2 x0{0.3, 0.2};
  Matrix<double> f(d.n, 1);
  for (index_t i = 0; i < d.n; ++i)
    f(i, 0) = bie::laplace_greens(d.x[i], x0);

  // Serial HODLR (packed serial), GPU-style batched, block-sparse seq/par.
  FactorOptions serial_opt;
  serial_opt.mode = ExecMode::kSerial;
  auto packed = PackedHodlr<double>::pack(h);
  auto fs = HodlrFactorization<double>::factor(packed, serial_opt);
  auto fb = HodlrFactorization<double>::factor(packed, {});
  auto ls = BlockSparseLU<double>::factor(build_extended_system(h), {});
  BlockSparseLU<double>::Options po;
  po.parallel = true;
  auto lp = BlockSparseLU<double>::factor(build_extended_system(h), po);

  Matrix<double> sig1 = fs.solve(f);
  Matrix<double> sig2 = fb.solve(f);
  Matrix<double> sig3 = ls.solve(f);
  Matrix<double> sig4 = lp.solve(f);
  EXPECT_LE(test::rel_error(sig1, sig2), 1e-10);
  EXPECT_LE(test::rel_error(sig1, sig3), 1e-6);
  EXPECT_LE(test::rel_error(sig3, sig4), 1e-10);

  // All must reproduce the exact exterior field.
  const std::vector<bie::Point2> targets = {{4.0, 1.0}, {0.5, -4.5}};
  auto u = bie::laplace_exterior_potential<double>(d, {0.0, 0.0},
                                                   sig2.data(), targets);
  for (std::size_t t = 0; t < targets.size(); ++t)
    EXPECT_NEAR(u[t], bie::laplace_greens(targets[t], x0), 1e-7);
}

TEST(Integration, HelmholtzPipelineMiniTable5) {
  using C = std::complex<double>;
  const double kappa = 25.0, eta = 25.0;
  bie::BlobContour contour;
  bie::ContourDiscretization d = bie::discretize(contour, 2048);
  bie::HelmholtzCombinedBIE<C> gen(d, kappa, eta, 6);
  ClusterTree tree = ClusterTree::uniform(d.n, 64);
  BuildOptions bopt;
  bopt.tol = 1e-10;
  HodlrMatrix<C> h = HodlrMatrix<C>::build(gen, tree, bopt);
  auto f = HodlrFactorization<C>::factor(PackedHodlr<C>::pack(h), {});

  const bie::Point2 x0{-0.2, 0.1};
  Matrix<C> rhs(d.n, 1);
  for (index_t i = 0; i < d.n; ++i)
    rhs(i, 0) = bie::helmholtz_fundamental(kappa, d.x[i], x0);
  Matrix<C> sigma = f.solve(rhs);

  const std::vector<bie::Point2> targets = {{5.0, 0.0}, {-3.0, 3.0}};
  auto u = bie::helmholtz_potential<C>(d, kappa, eta, sigma.data(), targets);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const C exact = bie::helmholtz_fundamental(kappa, targets[t], x0);
    EXPECT_LE(std::abs(u[t] - exact), 1e-4 * std::abs(exact) + 1e-8);
  }
}

TEST(Integration, LowAccuracyPreconditionerScenario) {
  // Table V(b) scenario in miniature: a 1e-4 factorization used as a
  // preconditioner reaches 1e-12 in a few iterations.
  using C = std::complex<double>;
  const double kappa = 25.0, eta = 25.0;
  bie::BlobContour contour;
  bie::ContourDiscretization d = bie::discretize(contour, 1024);
  bie::HelmholtzCombinedBIE<C> gen(d, kappa, eta, 6);
  ClusterTree tree = ClusterTree::uniform(d.n, 64);
  BuildOptions lo;
  lo.tol = 1e-4;
  HodlrMatrix<C> h = HodlrMatrix<C>::build(gen, tree, lo);
  auto f = HodlrFactorization<C>::factor(PackedHodlr<C>::pack(h), {});

  Matrix<C> a = materialize(gen);
  Matrix<C> b = random_matrix<C>(d.n, 1, 613);
  LinearOp<C> op = [&a](const C* x, C* y) {
    gemv<C>(Op::N, C{1}, a, x, C{0}, y);
  };
  LinearOp<C> pre = [&f, &d](const C* in, C* out) {
    std::copy_n(in, d.n, out);
    MatrixView<C> v{out, d.n, 1, d.n};
    f.solve_inplace(v);
  };
  std::vector<C> x(d.n, C{});
  GmresOptions gopt;
  gopt.tol = 1e-12;
  gopt.max_iterations = 100;
  auto res = gmres<C>(d.n, op, pre, b.data(), x.data(), gopt);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 20);
}

TEST(Integration, Rpy3DTensorSolve) {
  // The full 3x3 RPY tensor in 3-D (beyond the paper's 1-D benchmark but
  // part of the kernel family it motivates).
  const index_t particles = 256;
  PointSet pts = uniform_random_points(particles, 3, -1, 1, 617);
  Rpy3DTree t = build_rpy3d_tree(pts, 16);
  RpyKernel3D<double> kernel(std::move(t.points), {});
  BuildOptions bopt;
  bopt.tol = 1e-8;
  HodlrMatrix<double> h = HodlrMatrix<double>::build(kernel, t.tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  const index_t n = 3 * particles;
  Matrix<double> b = random_matrix<double>(n, 1, 619);
  Matrix<double> x = f.solve(b);
  Matrix<double> a = materialize(kernel);
  EXPECT_LE(test::dense_relres<double>(a, x, b), 1e-5);
}

}  // namespace
}  // namespace hodlrx
