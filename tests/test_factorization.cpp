#include <gtest/gtest.h>

#include "core/factorization.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using test::rel_error;

struct FactorCase {
  index_t n;
  index_t leaf;
  ExecMode mode;
  KForm kform;
};

std::string case_name(const ::testing::TestParamInfo<FactorCase>& info) {
  const FactorCase& c = info.param;
  std::string s = "n" + std::to_string(c.n) + "_leaf" + std::to_string(c.leaf);
  s += c.mode == ExecMode::kSerial ? "_serial" : "_batched";
  s += c.kform == KForm::kPivoted ? "_piv" : "_nopiv";
  return s;
}

class FactorizationSweep : public ::testing::TestWithParam<FactorCase> {};

TEST_P(FactorizationSweep, SolveMatchesDense) {
  const FactorCase& c = GetParam();
  using T = double;
  Matrix<T> a = test::smooth_test_matrix<T>(c.n, 7 + c.n);
  ClusterTree tree = ClusterTree::uniform(c.n, c.leaf);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  PackedHodlr<T> p = PackedHodlr<T>::pack(h);

  FactorOptions fopt;
  fopt.mode = c.mode;
  fopt.kform = c.kform;
  HodlrFactorization<T> f = HodlrFactorization<T>::factor(p, fopt);

  Matrix<T> b = random_matrix<T>(c.n, 4, 17 + c.n);
  Matrix<T> x = f.solve(b);
  // Residual against the dense matrix (compression 1e-12 dominates).
  EXPECT_LE(test::dense_relres<T>(a, x, b), 1e-8) << case_name({GetParam(), 0});
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, FactorizationSweep,
    ::testing::Values(
        FactorCase{64, 16, ExecMode::kSerial, KForm::kPivoted},
        FactorCase{64, 16, ExecMode::kSerial, KForm::kIdentityDiagonal},
        FactorCase{64, 16, ExecMode::kBatched, KForm::kPivoted},
        FactorCase{64, 16, ExecMode::kBatched, KForm::kIdentityDiagonal},
        FactorCase{100, 12, ExecMode::kSerial, KForm::kPivoted},
        FactorCase{100, 12, ExecMode::kBatched, KForm::kPivoted},
        FactorCase{100, 12, ExecMode::kBatched, KForm::kIdentityDiagonal},
        FactorCase{256, 16, ExecMode::kSerial, KForm::kPivoted},
        FactorCase{256, 16, ExecMode::kBatched, KForm::kPivoted},
        FactorCase{256, 32, ExecMode::kBatched, KForm::kPivoted},
        FactorCase{255, 20, ExecMode::kSerial, KForm::kPivoted},
        FactorCase{255, 20, ExecMode::kBatched, KForm::kPivoted},
        FactorCase{512, 64, ExecMode::kBatched, KForm::kPivoted},
        FactorCase{512, 16, ExecMode::kBatched, KForm::kIdentityDiagonal}),
    case_name);

template <typename T>
class FactorTyped : public ::testing::Test {};
using FactorTypes = ::testing::Types<float, double, std::complex<float>,
                                     std::complex<double>>;
TYPED_TEST_SUITE(FactorTyped, FactorTypes);

TYPED_TEST(FactorTyped, AllScalarTypes) {
  using T = TypeParam;
  using R = real_t<T>;
  const index_t n = 192;
  const double tol = std::is_same_v<R, float> ? 1e-5 : 1e-11;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 23);
  ClusterTree tree = ClusterTree::uniform(n, 24);
  BuildOptions bopt;
  bopt.tol = tol;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  PackedHodlr<T> p = PackedHodlr<T>::pack(h);
  for (ExecMode mode : {ExecMode::kSerial, ExecMode::kBatched}) {
    FactorOptions fopt;
    fopt.mode = mode;
    HodlrFactorization<T> f = HodlrFactorization<T>::factor(p, fopt);
    Matrix<T> b = random_matrix<T>(n, 2, 29);
    Matrix<T> x = f.solve(b);
    EXPECT_LE(test::dense_relres<T>(a, x, b),
              R(std::is_same_v<R, float> ? 2e-3 : 1e-8));
  }
}

TEST(Factorization, SerialAndBatchedProduceSameSolution) {
  using T = double;
  const index_t n = 300;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 31);
  ClusterTree tree = ClusterTree::uniform(n, 25);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  PackedHodlr<T> p = PackedHodlr<T>::pack(h);

  FactorOptions so;
  so.mode = ExecMode::kSerial;
  FactorOptions bo;
  bo.mode = ExecMode::kBatched;
  HodlrFactorization<T> fs = HodlrFactorization<T>::factor(p, so);
  HodlrFactorization<T> fb = HodlrFactorization<T>::factor(p, bo);
  Matrix<T> b = random_matrix<T>(n, 3, 37);
  Matrix<T> xs = fs.solve(b);
  Matrix<T> xb = fb.solve(b);
  // Same algorithm, same data, different execution engines: results agree
  // to roundoff accumulation.
  EXPECT_LE(rel_error(xs, xb), 1e-12);
}

TEST(Factorization, MultiRhsMatchesSingleRhs) {
  using T = double;
  const index_t n = 160, nrhs = 7;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 41);
  ClusterTree tree = ClusterTree::uniform(n, 16);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  HodlrFactorization<T> f =
      HodlrFactorization<T>::factor(PackedHodlr<T>::pack(h), {});
  Matrix<T> b = random_matrix<T>(n, nrhs, 43);
  Matrix<T> x_all = f.solve(b);
  for (index_t j = 0; j < nrhs; ++j) {
    Matrix<T> xj = f.solve(b.view().block(0, j, n, 1));
    EXPECT_LE(rel_error<T>(xj.view(), x_all.view().block(0, j, n, 1)), 1e-13);
  }
}

TEST(Factorization, DepthZeroDegeneratesToDenseLU) {
  using T = double;
  const index_t n = 48;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 51);
  ClusterTree tree = ClusterTree::with_depth(n, 0);
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, {});
  for (ExecMode mode : {ExecMode::kSerial, ExecMode::kBatched}) {
    FactorOptions fopt;
    fopt.mode = mode;
    HodlrFactorization<T> f =
        HodlrFactorization<T>::factor(PackedHodlr<T>::pack(h), fopt);
    Matrix<T> b = random_matrix<T>(n, 2, 53);
    Matrix<T> x = f.solve(b);
    EXPECT_LE(test::dense_relres<T>(a, x, b), 1e-12);
  }
}

TEST(Factorization, BlockDiagonalRankZeroLevels) {
  using T = double;
  const index_t n = 128;
  Matrix<T> a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = 3.0 + 0.01 * i;
  // Add dense diagonal leaf blocks so leaves are nontrivial.
  ClusterTree tree = ClusterTree::uniform(n, 16);
  for (index_t j = 0; j < tree.num_leaves(); ++j) {
    const ClusterNode& c = tree.node(tree.leaf(j));
    for (index_t jj = c.begin; jj < c.end; ++jj)
      for (index_t ii = c.begin; ii < c.end; ++ii)
        a(ii, jj) += 0.1 / (1.0 + std::abs(ii - jj));
  }
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, {});
  EXPECT_EQ(h.max_rank(), 0);
  for (ExecMode mode : {ExecMode::kSerial, ExecMode::kBatched}) {
    FactorOptions fopt;
    fopt.mode = mode;
    HodlrFactorization<T> f =
        HodlrFactorization<T>::factor(PackedHodlr<T>::pack(h), fopt);
    Matrix<T> b = random_matrix<T>(n, 1, 59);
    Matrix<T> x = f.solve(b);
    EXPECT_LE(test::dense_relres<T>(a, x, b), 1e-13);
  }
}

TEST(Factorization, StreamPolicyMatchesBatchedPolicy) {
  using T = double;
  const index_t n = 256;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 61);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  PackedHodlr<T> p = PackedHodlr<T>::pack(h);
  Matrix<T> b = random_matrix<T>(n, 2, 67);
  Matrix<T> x[3];
  int idx = 0;
  for (BatchPolicy pol : {BatchPolicy::kAuto, BatchPolicy::kForceBatched,
                          BatchPolicy::kForceStream}) {
    FactorOptions fopt;
    fopt.policy = pol;
    HodlrFactorization<T> f = HodlrFactorization<T>::factor(p, fopt);
    x[idx++] = f.solve(b);
  }
  EXPECT_LE(rel_error(x[0], x[1]), 1e-13);
  EXPECT_LE(rel_error(x[0], x[2]), 1e-13);
}

TEST(Factorization, MemoryBytesTracked) {
  using T = double;
  const index_t n = 256;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 71);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, {});
  PackedHodlr<T> p = PackedHodlr<T>::pack(h);
  DeviceContext::global().reset_counters();
  {
    HodlrFactorization<T> f = HodlrFactorization<T>::factor(p, {});
    EXPECT_GT(f.bytes(), 0u);
    EXPECT_EQ(DeviceContext::global().live_bytes(), f.bytes());
    EXPECT_GE(DeviceContext::global().h2d_bytes(), p.bytes());
  }
  EXPECT_EQ(DeviceContext::global().live_bytes(), 0u);
}

/// Regression for the ld-aware uniform fast path of run_solve_batched: a
/// submatrix RHS view (x.ld > x.rows) must produce the same solution as a
/// contiguous RHS AND stay on the uniform strided launches. Before the fix
/// the `x.ld == x.rows` condition silently dropped such views to the
/// per-block gemm_batched fallback — observable here because the
/// identity-diagonal K form issues a different launch count on each path.
TEST(Factorization, StridedRhsViewStaysOnUniformFastPath) {
  using T = double;
  const index_t n = 256, nrhs = 3;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 83);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  FactorOptions fopt;
  fopt.kform = KForm::kIdentityDiagonal;
  HodlrFactorization<T> f =
      HodlrFactorization<T>::factor(PackedHodlr<T>::pack(h), fopt);
  Matrix<T> b = random_matrix<T>(n, nrhs, 89);

  Matrix<T> xc = to_matrix(b.view());
  const std::uint64_t l0 = DeviceContext::global().launches();
  f.solve_inplace(xc.view());
  const std::uint64_t contiguous_launches =
      DeviceContext::global().launches() - l0;

  // The same RHS inside a larger buffer: n rows at offset 5, ld = n + 13.
  Matrix<T> big(n + 13, nrhs + 2);
  MatrixView<T> xs = big.block(5, 1, n, nrhs);
  copy<T>(b.view(), xs);
  const std::uint64_t l1 = DeviceContext::global().launches();
  f.solve_inplace(xs);
  const std::uint64_t strided_launches =
      DeviceContext::global().launches() - l1;

  EXPECT_LE(rel_error<T>(ConstMatrixView<T>(xs), xc.view()), 1e-13);
  EXPECT_EQ(strided_launches, contiguous_launches)
      << "a submatrix RHS view must stay on the uniform strided fast path";
}

TEST(Factorization, WrongRhsSizeThrows) {
  using T = double;
  const index_t n = 64;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 73);
  ClusterTree tree = ClusterTree::uniform(n, 16);
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, {});
  HodlrFactorization<T> f =
      HodlrFactorization<T>::factor(PackedHodlr<T>::pack(h), {});
  Matrix<T> b(n + 1, 1);
  EXPECT_THROW(f.solve_inplace(b.view()), Error);
}

}  // namespace
}  // namespace hodlrx
