#include <gtest/gtest.h>

#include <chrono>

#include "common/error.hpp"
#include "device/device.hpp"

namespace hodlrx {
namespace {

TEST(Device, MemoryAccounting) {
  DeviceContext& dev = DeviceContext::global();
  dev.reset_counters();
  {
    DeviceAllocation a(1000);
    EXPECT_EQ(dev.live_bytes(), 1000u);
    {
      DeviceAllocation b(500);
      EXPECT_EQ(dev.live_bytes(), 1500u);
      EXPECT_EQ(dev.peak_bytes(), 1500u);
    }
    EXPECT_EQ(dev.live_bytes(), 1000u);
  }
  EXPECT_EQ(dev.live_bytes(), 0u);
  EXPECT_EQ(dev.peak_bytes(), 1500u);
}

TEST(Device, MoveSemantics) {
  DeviceContext& dev = DeviceContext::global();
  dev.reset_counters();
  DeviceAllocation a(100);
  DeviceAllocation b = std::move(a);
  EXPECT_EQ(dev.live_bytes(), 100u);
  a = DeviceAllocation(50);
  EXPECT_EQ(dev.live_bytes(), 150u);
}

TEST(Device, OutOfMemoryThrows) {
  DeviceContext& dev = DeviceContext::global();
  dev.reset_counters();
  const std::size_t cap = dev.capacity_bytes();
  dev.set_capacity_bytes(1024);
  EXPECT_THROW({ DeviceAllocation big(4096); }, Error);
  dev.set_capacity_bytes(cap);
  dev.reset_counters();
}

/// Regression: a rejected over-capacity allocation must not count toward
/// live_bytes. The old alloc_bytes added first and threw after, leaking the
/// charge — repeated failed allocations then poisoned every later capacity
/// check and the reported `mem` column.
TEST(Device, FailedAllocLeavesLiveBytesUntouched) {
  DeviceContext& dev = DeviceContext::global();
  dev.reset_counters();
  const std::size_t cap = dev.capacity_bytes();
  dev.set_capacity_bytes(4096);
  DeviceAllocation base(1000);
  const std::size_t live0 = dev.live_bytes();
  ASSERT_EQ(live0, 1000u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_THROW({ DeviceAllocation big(1u << 20); }, Error);
    EXPECT_EQ(dev.live_bytes(), live0)
        << "failed allocation " << i << " leaked into live_bytes";
  }
  // The capacity headroom is really still available after the failures.
  EXPECT_NO_THROW({ DeviceAllocation fits(3000); });
  EXPECT_EQ(dev.live_bytes(), live0);
  dev.set_capacity_bytes(cap);
  dev.reset_counters();
}

/// Regression: reset_counters() with allocations outstanding must keep
/// live_bytes owned by the live handles (their destructors free it later)
/// and rebase the peak to the current live level instead of zero.
TEST(Device, ResetWithOutstandingAllocationsDoesNotUnderflow) {
  DeviceContext& dev = DeviceContext::global();
  dev.reset_counters();
  {
    DeviceAllocation a(2000);
    {
      DeviceAllocation b(500);
      EXPECT_EQ(dev.peak_bytes(), 2500u);
    }
    dev.reset_counters();
    EXPECT_EQ(dev.live_bytes(), 2000u)
        << "reset must not zero bytes owned by live handles";
    EXPECT_EQ(dev.peak_bytes(), 2000u) << "peak rebases to the live level";
    EXPECT_EQ(dev.h2d_bytes(), 0u);
    EXPECT_EQ(dev.launches(), 0u);
  }  // a's destructor frees against the preserved live count
  EXPECT_EQ(dev.live_bytes(), 0u) << "release after reset underflowed";
  EXPECT_EQ(dev.peak_bytes(), 2000u);
  dev.reset_counters();
}

TEST(Device, TransferModel) {
  DeviceContext& dev = DeviceContext::global();
  dev.reset_counters();
  dev.record_h2d(12ull << 30);  // 12 GiB at 12 GB/s ~ a bit over 1 s
  EXPECT_EQ(dev.h2d_bytes(), 12ull << 30);
  const double t = dev.modeled_transfer_seconds(dev.h2d_bytes());
  EXPECT_GT(t, 1.0);
  EXPECT_LT(t, 1.2);
  dev.reset_counters();
}

/// Regression: set_bandwidth_gbs(0) (benches use it to disable the model)
/// used to divide by zero in modeled_transfer_seconds — NaN/inf leaked into
/// the modeled `t_h2d` bench column. Zero bandwidth now means "model off":
/// the modeled time is exactly 0.
TEST(Device, ZeroBandwidthDisablesTransferModel) {
  DeviceContext& dev = DeviceContext::global();
  const double gbs = dev.bandwidth_gbs();
  dev.set_bandwidth_gbs(0.0);
  EXPECT_EQ(dev.modeled_transfer_seconds(0), 0.0);
  EXPECT_EQ(dev.modeled_transfer_seconds(1u << 20), 0.0);
  EXPECT_EQ(dev.modeled_transfer_seconds(12ull << 30), 0.0);
  dev.set_bandwidth_gbs(-1.0);  // nonsense input clamps the same way
  EXPECT_EQ(dev.modeled_transfer_seconds(1u << 20), 0.0);
  dev.set_bandwidth_gbs(gbs);
  EXPECT_GT(dev.modeled_transfer_seconds(1u << 20), 0.0);
}

TEST(Device, LaunchLatencyInjection) {
  DeviceContext& dev = DeviceContext::global();
  dev.reset_counters();
  dev.set_launch_latency_us(50.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) dev.record_launch();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  dev.set_launch_latency_us(0.0);
  EXPECT_GE(elapsed, 450e-6);  // 10 x 50 us, with slack
  EXPECT_EQ(dev.launches(), 10u);
  dev.reset_counters();
}

}  // namespace
}  // namespace hodlrx
