#include <gtest/gtest.h>

#include "core/factorization.hpp"
#include "kernels/kernels.hpp"
#include "test_util.hpp"

/// Failure injection and hostile-input coverage: the library must either
/// work or throw a typed error — never corrupt silently.

namespace hodlrx {
namespace {

TEST(Stress, SingularLeafBlockThrows) {
  // Zero out one leaf diagonal block: the leaf LU must throw.
  const index_t n = 64;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 801);
  ClusterTree tree = ClusterTree::uniform(n, 16);
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, {});
  h.leaf_block(1).set_zero();
  PackedHodlr<double> p = PackedHodlr<double>::pack(h);
  for (ExecMode mode : {ExecMode::kSerial, ExecMode::kBatched}) {
    FactorOptions opt;
    opt.mode = mode;
    EXPECT_THROW(HodlrFactorization<double>::factor(p, opt), Error);
  }
}

TEST(Stress, NearSingularStillSolves) {
  // A nearly rank-deficient (but invertible) matrix: pivoted LU must cope.
  const index_t n = 96;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 803);
  for (index_t j = 0; j < n; ++j) a(n - 1, j) = a(0, j) + 1e-8 * a(1, j);
  a(n - 1, n - 1) += 1.0;  // keep invertible
  ClusterTree tree = ClusterTree::uniform(n, 16);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  Matrix<double> b = random_matrix<double>(n, 1, 805);
  Matrix<double> x = f.solve(b);
  EXPECT_LE(test::dense_relres<double>(a, x, b), 1e-6);
}

TEST(Stress, HighlyNonUniformTree) {
  // Hand-built tree with very skewed splits (sizes 1 vs large).
  const index_t n = 100;
  std::vector<ClusterNode> nodes = {
      {0, 100},           // root
      {0, 3},  {3, 100},  // level 1: tiny/huge
      {0, 1},  {1, 3}, {3, 50}, {50, 100}};  // level 2
  ClusterTree tree = ClusterTree::from_ranges(std::move(nodes), 2);
  Matrix<double> a = test::smooth_test_matrix<double>(n, 807);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  for (ExecMode mode : {ExecMode::kSerial, ExecMode::kBatched}) {
    FactorOptions opt;
    opt.mode = mode;
    auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h),
                                                opt);
    Matrix<double> b = random_matrix<double>(n, 2, 809);
    Matrix<double> x = f.solve(b);
    EXPECT_LE(test::dense_relres<double>(a, x, b), 1e-8);
  }
}

TEST(Stress, SingleIndexLeaves) {
  // Depth chosen so every leaf has exactly one index (1x1 leaf LUs).
  const index_t n = 32;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 811);
  ClusterTree tree = ClusterTree::with_depth(n, 5);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  Matrix<double> b = random_matrix<double>(n, 1, 813);
  EXPECT_LE(test::dense_relres<double>(a, f.solve(b), b), 1e-9);
}

TEST(Stress, ManySolvesReuseFactorization) {
  const index_t n = 128;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 815);
  ClusterTree tree = ClusterTree::uniform(n, 16);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  for (int i = 0; i < 10; ++i) {
    Matrix<double> b = random_matrix<double>(n, 1, 900 + i);
    EXPECT_LE(test::dense_relres<double>(a, f.solve(b), b), 1e-8);
  }
}

TEST(Stress, WideMultiRhsBlock) {
  // nrhs much larger than N exercises the column-chunked solve paths.
  const index_t n = 64, nrhs = 300;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 821);
  ClusterTree tree = ClusterTree::uniform(n, 16);
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, {});
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  Matrix<double> b = random_matrix<double>(n, nrhs, 823);
  Matrix<double> x = f.solve(b);
  EXPECT_LE(test::dense_relres<double>(a, x, b), 1e-9);
}

TEST(Stress, ZeroColumnSolveIsNoop) {
  const index_t n = 64;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 825);
  ClusterTree tree = ClusterTree::uniform(n, 16);
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, {});
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  Matrix<double> b(n, 0);
  f.solve_inplace(b.view());  // must not crash
}

TEST(Stress, StridedRhsViews) {
  // Solve into a column slice of a larger array (non-contiguous ld).
  const index_t n = 128;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 827);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  Matrix<double> big = random_matrix<double>(n + 40, 3, 829);
  MatrixView<double> rhs = big.view().block(11, 1, n, 2);
  Matrix<double> b_copy = to_matrix(ConstMatrixView<double>(rhs));
  f.solve_inplace(rhs);
  EXPECT_LE(test::dense_relres<double>(a, ConstMatrixView<double>(rhs),
                                       b_copy),
            1e-8);
}

TEST(Stress, IllConditionedDiagonalScaling) {
  // Wildly scaled rows/cols: pivoted LU keeps the residual small.
  const index_t n = 96;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 831);
  for (index_t i = 0; i < n; ++i) {
    const double s = std::pow(10.0, double(i % 7) - 3);
    for (index_t j = 0; j < n; ++j) a(i, j) *= s;
  }
  ClusterTree tree = ClusterTree::uniform(n, 16);
  BuildOptions bopt;
  bopt.tol = 1e-13;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  Matrix<double> b = random_matrix<double>(n, 1, 833);
  Matrix<double> x = f.solve(b);
  // Residual measured against the compressed operator is the right metric
  // under row scaling.
  Matrix<double> r(n, 1);
  h.apply(x, r.view());
  axpy(-1.0, ConstMatrixView<double>(b), r.view());
  EXPECT_LE(norm_fro<double>(r) / norm_fro<double>(b), 1e-9);
}

TEST(Stress, RecompressionDisabledStillCorrect) {
  const index_t n = 200;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 835);
  ClusterTree tree = ClusterTree::uniform(n, 25);
  BuildOptions bopt;
  bopt.tol = 1e-10;
  bopt.recompress = false;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  Matrix<double> b = random_matrix<double>(n, 1, 837);
  EXPECT_LE(test::dense_relres<double>(a, f.solve(b), b), 1e-7);
}

TEST(Stress, MaxRankCapThrowsWhenInsufficient) {
  // A full-rank random matrix cannot be compressed at rank 3: under the
  // kThrow breakdown policy build must surface the ACA failure rather than
  // silently truncate. (The default kRecover policy instead keeps a
  // best-effort rank-3 approximation and records the stall in the
  // FactorReport — covered by test_faults.cpp.)
  const index_t n = 64;
  Matrix<double> a = random_matrix<double>(n, n, 839);
  for (index_t i = 0; i < n; ++i) a(i, i) += 8.0;
  ClusterTree tree = ClusterTree::uniform(n, 16);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  bopt.max_rank = 3;
  bopt.on_breakdown = OnBreakdown::kThrow;
  EXPECT_THROW(HodlrMatrix<double>::build_from_dense(a, tree, bopt), Error);
}

}  // namespace
}  // namespace hodlrx
