#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "batched/batched_blas.hpp"
#include "common/blocking.hpp"
#include "common/gemm_kernel.hpp"
#include "common/parallel.hpp"
#include "common/trsm_kernel.hpp"
#include "common/workspace.hpp"
#include "test_util.hpp"

/// Cross-checks of the blocked TRSM/GETRS engine against the seed reference
/// kernels over all uplo/diag combinations x 4 scalar types x edge shapes,
/// plus the persistent thread pool's invariants (no per-launch thread
/// re-creation, exception propagation, nested inlining) and the
/// runtime-blocking environment overrides.
///
/// This binary pins its environment BEFORE any engine state is initialized:
/// a small diagonal-block size so modest shapes exercise multiple blocks, a
/// non-default GEMM MC so the override path is proven functional, and a pool
/// of 4 threads so the parallel paths run even on single-core machines.

namespace hodlrx {
namespace {

using test::rel_error;

const bool g_env_ready = [] {
  setenv("HODLRX_TRSM_NB", "24", 1);
  setenv("HODLRX_GEMM_MC", "160", 1);
  setenv("HODLRX_NUM_THREADS", "4", 1);
  // Pin the static rung: this binary asserts exact compiled defaults for
  // the knobs it does NOT override, which the probed model would replace.
  // The adaptive resolver has its own suite (test_blocking.cpp).
  setenv("HODLRX_AUTOTUNE", "off", 1);
  return true;
}();

template <typename T>
real_t<T> tol() {
  return std::is_same_v<real_t<T>, float> ? real_t<T>(2e-3) : real_t<T>(1e-11);
}

/// The shared well-conditioned generator, keyed by Uplo.
template <typename T>
Matrix<T> triangular_matrix(index_t n, Uplo uplo, std::uint64_t seed) {
  return random_triangular_matrix<T>(n, uplo == Uplo::Lower, seed);
}

template <typename T>
class TrsmKernelTyped : public ::testing::Test {};
using TrsmTypes = ::testing::Types<float, double, std::complex<float>,
                                   std::complex<double>>;
TYPED_TEST_SUITE(TrsmKernelTyped, TrsmTypes);

/// Blocked vs reference over every uplo/diag pair and shapes below, at, and
/// well above the (env-shrunk) diagonal-block size, including n = 0/1 and
/// RHS widths around the 4-column register tile.
TYPED_TEST(TrsmKernelTyped, BlockedMatchesReferenceAllUploDiag) {
  using T = TypeParam;
  ASSERT_TRUE(g_env_ready);
  ASSERT_EQ(resolved_blocking<T>().trsm_nb, 24)
      << "HODLRX_TRSM_NB override not seen";
  const index_t shapes[] = {0, 1, 5, 23, 24, 25, 64, 150};
  const index_t widths[] = {1, 3, 4, 9, 33};
  std::uint64_t seed = 1000;
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    for (Diag diag : {Diag::Unit, Diag::NonUnit}) {
      for (index_t n : shapes) {
        for (index_t nrhs : widths) {
          Matrix<T> a = triangular_matrix<T>(n, uplo, ++seed);
          Matrix<T> b = random_matrix<T>(n, nrhs, ++seed);
          Matrix<T> expect = to_matrix(b.view());
          trsm_left_reference<T>(uplo, diag, a, expect.view());
          trsm_left_blocked<T>(uplo, diag, a, b.view());
          EXPECT_LE(rel_error(b, expect), tol<T>())
              << "uplo=" << static_cast<char>(uplo)
              << " diag=" << static_cast<char>(diag) << " n=" << n
              << " nrhs=" << nrhs;
        }
      }
    }
  }
}

/// The pool-parallel solve (RHS columns split across threads) must agree
/// with the reference kernel.
TYPED_TEST(TrsmKernelTyped, ParallelMatchesReference) {
  using T = TypeParam;
  const index_t n = 130, nrhs = 37;
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    Matrix<T> a = triangular_matrix<T>(n, uplo, 77);
    Matrix<T> b = random_matrix<T>(n, nrhs, 78);
    Matrix<T> expect = to_matrix(b.view());
    trsm_left_reference<T>(uplo, Diag::NonUnit, a, expect.view());
    trsm_left_parallel<T>(uplo, Diag::NonUnit, a, b.view());
    EXPECT_LE(rel_error(b, expect), tol<T>());
  }
}

/// Blocked solves on strided sub-views (ld > rows) — the layout every
/// factorization-internal panel solve uses.
TYPED_TEST(TrsmKernelTyped, SubmatrixViews) {
  using T = TypeParam;
  const index_t n = 70, nrhs = 11;
  Matrix<T> abig(150, 150);
  Rng rng(5);
  rng.fill_uniform<T>(abig.view());
  MatrixView<T> asub = abig.view().block(9, 13, n, n);
  const T scale = T{static_cast<real_t<T>>(1.0 / n)};
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      if (i == j)
        asub(i, j) += T{2};
      else
        asub(i, j) *= scale;
    }
  Matrix<T> bbig = random_matrix<T>(100, 60, 6);
  MatrixView<T> b = bbig.view().block(17, 3, n, nrhs);
  Matrix<T> expect = to_matrix(ConstMatrixView<T>(b));
  trsm_left_reference<T>(Uplo::Lower, Diag::NonUnit, ConstMatrixView<T>(asub),
                         expect.view());
  trsm_left_blocked<T>(Uplo::Lower, Diag::NonUnit, ConstMatrixView<T>(asub),
                       b);
  EXPECT_LE(rel_error<T>(ConstMatrixView<T>(b), expect.view()), tol<T>());
}

/// getrs / getrs_parallel (blocked, pivots applied once) against a manual
/// reference solve built from laswp + the seed kernels.
TYPED_TEST(TrsmKernelTyped, GetrsMatchesReferenceSolve) {
  using T = TypeParam;
  const index_t n = 150, nrhs = 9;
  Matrix<T> a = random_matrix<T>(n, n, 91);
  for (index_t i = 0; i < n; ++i) a(i, i) += T{4};
  Matrix<T> lu = to_matrix(a.view());
  std::vector<index_t> ipiv(n);
  getrf<T>(lu.view(), ipiv.data());

  Matrix<T> b = random_matrix<T>(n, nrhs, 92);
  Matrix<T> expect = to_matrix(b.view());
  laswp<T>(expect.view(), ipiv.data(), n, /*forward=*/true);
  trsm_left_reference<T>(Uplo::Lower, Diag::Unit, lu, expect.view());
  trsm_left_reference<T>(Uplo::Upper, Diag::NonUnit, lu, expect.view());

  Matrix<T> x1 = to_matrix(b.view());
  getrs<T>(lu, ipiv.data(), x1.view());
  EXPECT_LE(rel_error(x1, expect), tol<T>());

  Matrix<T> x2 = to_matrix(b.view());
  getrs_parallel<T>(lu, ipiv.data(), x2.view());
  EXPECT_LE(rel_error(x2, expect), tol<T>());

  // And the actual residual: A x = b.
  Matrix<T> r = to_matrix(b.view());
  gemm<T>(Op::N, Op::N, T{-1}, a, x1, T{1}, r.view());
  EXPECT_LE(norm_fro(r) / norm_fro(b), 100 * eps_v<T>* n);
}

/// Batched TRSM in both execution modes against per-problem reference runs.
TYPED_TEST(TrsmKernelTyped, TrsmBatchedBothModes) {
  using T = TypeParam;
  const index_t batch = 6;
  std::vector<Matrix<T>> a0;
  std::vector<Matrix<T>> expect;
  const index_t sizes[] = {5, 24, 40, 40, 64, 100};
  for (index_t i = 0; i < batch; ++i) {
    a0.push_back(triangular_matrix<T>(sizes[i], Uplo::Lower, 300 + i));
    Matrix<T> b = random_matrix<T>(sizes[i], 13, 400 + i);
    expect.push_back(to_matrix(b.view()));
    trsm_left_reference<T>(Uplo::Lower, Diag::Unit, a0.back(),
                           expect.back().view());
  }
  for (BatchPolicy policy :
       {BatchPolicy::kForceBatched, BatchPolicy::kForceStream}) {
    std::vector<Matrix<T>> b;
    std::vector<ConstMatrixView<T>> av;
    std::vector<MatrixView<T>> bv;
    for (index_t i = 0; i < batch; ++i) {
      b.push_back(random_matrix<T>(sizes[i], 13, 400 + i));
      av.push_back(a0[i]);
      bv.push_back(b.back());
    }
    trsm_batched<T>(Uplo::Lower, Diag::Unit, av, bv, policy);
    for (index_t i = 0; i < batch; ++i)
      EXPECT_LE(rel_error(b[i], expect[i]), tol<T>()) << "problem " << i;
  }
}

/// Batched LU solve in stream mode (getrs_parallel per problem) against the
/// plain batched mode.
TYPED_TEST(TrsmKernelTyped, GetrsBatchedStreamMatchesBatched) {
  using T = TypeParam;
  const index_t batch = 3, n = 96, nrhs = 17;
  std::vector<Matrix<T>> lu(batch);
  std::vector<std::vector<index_t>> piv(batch, std::vector<index_t>(n));
  for (index_t i = 0; i < batch; ++i) {
    lu[i] = random_matrix<T>(n, n, 500 + i);
    for (index_t d = 0; d < n; ++d) lu[i](d, d) += T{4};
    getrf<T>(lu[i].view(), piv[i].data());
  }
  std::vector<Matrix<T>> b1(batch), b2(batch);
  std::vector<ConstMatrixView<T>> luv;
  std::vector<const index_t*> pv;
  std::vector<MatrixView<T>> bv1, bv2;
  for (index_t i = 0; i < batch; ++i) {
    b1[i] = random_matrix<T>(n, nrhs, 600 + i);
    b2[i] = to_matrix(b1[i].view());
    luv.push_back(lu[i]);
    pv.push_back(piv[i].data());
    bv1.push_back(b1[i]);
    bv2.push_back(b2[i]);
  }
  getrs_batched<T>(luv, pv, bv1, BatchPolicy::kForceBatched);
  getrs_batched<T>(luv, pv, bv2, BatchPolicy::kForceStream);
  for (index_t i = 0; i < batch; ++i)
    EXPECT_LE(rel_error(b1[i], b2[i]), tol<T>());
}

/// --- persistent pool invariants ------------------------------------------

TEST(ThreadPool, EnvControlsSizeAndNoPerLaunchThreadCreation) {
  ASSERT_TRUE(g_env_ready);
  ThreadPool& pool = ThreadPool::instance();
  EXPECT_EQ(pool.threads(), 4) << "HODLRX_NUM_THREADS override not seen";
  EXPECT_EQ(max_threads(), 4);

  // Warm up, then hammer launches: the worker count must never change.
  std::atomic<index_t> sum{0};
  parallel_for(16, [&](index_t i) { sum += i; });
  const std::uint64_t created = pool.threads_created();
  EXPECT_EQ(created, 3u);  // 4 participants = 3 workers + the caller
  const std::uint64_t launches0 = pool.launches();
  for (int rep = 0; rep < 100; ++rep) {
    parallel_for_static(8, [&](index_t i) { sum += i; });
  }
  EXPECT_EQ(pool.threads_created(), created)
      << "launches must reuse the persistent workers, not spawn threads";
  EXPECT_GE(pool.launches(), launches0 + 100);
  EXPECT_EQ(sum.load(), 16 * 15 / 2 + 100 * (8 * 7 / 2));
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(64,
                   [&](index_t i) {
                     if (i == 33) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  std::atomic<int> count{0};
  parallel_for(4, [&](index_t) {
    EXPECT_TRUE(in_parallel() || max_threads() == 1);
    parallel_for(4, [&](index_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16);
}

/// Per-thread packing arenas persist across launches: repeated blocked
/// solves must stop growing the calling thread's arena after the first.
TEST(ThreadPool, WorkspaceArenaSteadyStateAcrossSolves) {
  Matrix<double> a = triangular_matrix<double>(200, Uplo::Lower, 7);
  Matrix<double> b = random_matrix<double>(200, 64, 8);
  trsm_left_blocked<double>(Uplo::Lower, Diag::NonUnit, a, b.view());
  const std::size_t grown = WorkspaceArena::local().grow_events();
  for (int rep = 0; rep < 5; ++rep)
    trsm_left_blocked<double>(Uplo::Lower, Diag::NonUnit, a, b.view());
  EXPECT_EQ(WorkspaceArena::local().grow_events(), grown);
}

/// --- gemm_parallel's pool-shared A-pack ----------------------------------

TEST(GemmParallelSharedA, PacksAOncePerLaunch) {
  const index_t n = 512;
  Matrix<double> a = random_matrix<double>(n, n, 11);
  Matrix<double> b = random_matrix<double>(n, n, 12);
  Matrix<double> c1(n, n), c2(n, n);
  gemm<double>(Op::N, Op::N, 1.0, a, b, 0.0, c1.view());
  gemm_stats::reset();
  gemm_parallel<double>(Op::N, Op::N, 1.0, a, b, 0.0, c2.view());
  EXPECT_EQ(gemm_stats::pool_packs(), 1u)
      << "gemm_parallel must pack A once into the pool-shared slot";
  EXPECT_EQ(gemm_stats::a_packs(), 0u)
      << "column chunks must reuse the shared A-pack, not re-pack";
  EXPECT_EQ(gemm_stats::shared_packs(), 0u)
      << "pool-slot packs must not masquerade as batch shared packs";
  EXPECT_LE(rel_error(c2, c1), 1e-11);
}

/// The GEMM cache-blocking override must be live and must not perturb
/// numerics (tile offsets and consumers agree on the runtime values).
TEST(RuntimeBlocking, GemmMcOverrideSeenAndCorrect) {
  ASSERT_TRUE(g_env_ready);
  EXPECT_EQ(resolved_blocking<double>().mc, 160);
  EXPECT_EQ(resolved_blocking<float>().mc, 160);
  EXPECT_EQ(resolved_blocking<double>().kc, GemmBlocking<double>::KC)
      << "unset vars must keep their compiled defaults";
  const index_t m = 200, n = 50, k = 333;  // m spans two 160-wide MC tiles
  Matrix<double> a = random_matrix<double>(m, k, 21);
  Matrix<double> b = random_matrix<double>(k, n, 22);
  Matrix<double> c1(m, n), c2(m, n);
  gemm_packed<double>(Op::N, Op::N, 1.0, a, b, 0.0, c1.view());
  // Element-accessor reference.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      double s = 0;
      for (index_t l = 0; l < k; ++l) s += a(i, l) * b(l, j);
      c2(i, j) = s;
    }
  EXPECT_LE(rel_error(c1, c2), 1e-11);
}

}  // namespace
}  // namespace hodlrx
