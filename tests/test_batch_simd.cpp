#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <vector>

#include "batched/batch_kernels.hpp"
#include "batched/batched_blas.hpp"
#include "batched/interleave.hpp"
#include "common/blocking.hpp"
#include "common/hwinfo.hpp"
#include "common/lapack.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "common/thread_pool.hpp"
#include "test_util.hpp"

/// Property tests of the across-batch SIMD layer (interleave.hpp +
/// batch_kernels.hpp) and its dispatch inside the batched drivers:
///   - the problem-major <-> lane-major transpose pair round-trips exactly,
///     zero-fills dead lanes, absorbs op()/conj during the gather and fuses
///     alpha/beta into the scatter,
///   - the across-batch QR panel, Jacobi sweep and small-GEMM kernels agree
///     with their per-problem scalar references for all four scalar types,
///   - HODLRX_BATCH_SIMD=1 keeps every across-batch counter at zero (the
///     drivers run the untouched per-problem code path) and the strided
///     drivers produce the same results under both widths,
///   - vectorized launches keep the engine's launch-shape invariants: same
///     panel-launch count as the scalar path, no pool thread churn.
///
/// This binary owns its environment: tests that touch the resolver start
/// from a clean slate (all blocking variables unset) and re-resolve through
/// the test-only refresh hook.

namespace hodlrx {
namespace {

using test::rel_error;

const bool g_env_ready = [] {
  // Four pool threads so the batched paths fork even on 1-CPU CI.
  setenv("HODLRX_NUM_THREADS", "4", 1);
  return true;
}();

constexpr const char* kBlockingVars[] = {
    "HODLRX_AUTOTUNE", "HODLRX_GEMM_TILE",  "HODLRX_GEMM_MC",
    "HODLRX_GEMM_KC",  "HODLRX_GEMM_NC",    "HODLRX_TRSM_NB",
    "HODLRX_QR_NB",    "HODLRX_BATCH_SIMD"};

/// Clean-slate guard (the test_blocking idiom): clears every blocking
/// variable on entry AND exit and re-resolves, so tests cannot leak state.
class ScopedBatchEnv {
 public:
  ScopedBatchEnv() {
    clear();
    refresh();
  }
  ~ScopedBatchEnv() {
    clear();
    refresh();
  }
  void set(const char* name, const std::string& value) {
    setenv(name, value.c_str(), 1);
  }
  void refresh() { blocking_detail::refresh_for_testing(); }
  static void clear() {
    for (const char* v : kBlockingVars) unsetenv(v);
  }
};

template <typename T>
real_t<T> tol() {
  return std::is_same_v<real_t<T>, float> ? real_t<T>(5e-4) : real_t<T>(1e-11);
}

/// Mixed batch covering the degenerate structures the compressor feeds the
/// engine (the test_qr_batched recipe): dense random, rank-deficient, zero.
template <typename T>
std::vector<Matrix<T>> make_blocks(index_t m, index_t n, index_t batch,
                                   std::uint64_t seed) {
  std::vector<Matrix<T>> blocks;
  for (index_t i = 0; i < batch; ++i) {
    if (i % 4 == 3) {
      blocks.emplace_back(m, n);  // zero block
    } else {
      Matrix<T> a = random_matrix<T>(m, n, seed + i);
      if (i % 4 == 2 && n >= 2) {
        for (index_t j = 1; j < n; j += 2)
          copy<T>(a.view().block(0, j - 1, m, 1), a.view().block(0, j, m, 1));
      }
      blocks.push_back(std::move(a));
    }
  }
  return blocks;
}

template <typename T>
class BatchSimdTyped : public ::testing::Test {};
using AllTypes = ::testing::Types<float, double, std::complex<float>,
                                  std::complex<double>>;
TYPED_TEST_SUITE(BatchSimdTyped, AllTypes);

/// --- interleave / deinterleave -------------------------------------------

/// Round trip through the lane-major layout is exact, including a partial
/// last group (nlanes < w), a column stride larger than rows, and sentinel
/// padding that must survive untouched.
TYPED_TEST(BatchSimdTyped, InterleaveRoundTripExact) {
  using T = TypeParam;
  const index_t rows = 13, cols = 5, ld = 17;
  for (index_t w : {index_t{2}, index_t{4}, index_t{8}}) {
    for (index_t nlanes : {w, w - 1, index_t{1}}) {
      std::vector<Matrix<T>> src;
      std::vector<const T*> sp;
      for (index_t l = 0; l < nlanes; ++l) {
        Matrix<T> a(ld, cols);  // extra rows = in-band padding
        Rng rng(900 + 10 * static_cast<std::uint64_t>(w) + l);
        rng.fill_uniform(a.view());
        src.push_back(std::move(a));
        sp.push_back(src.back().view().data);
      }
      std::vector<T> buf(static_cast<std::size_t>(rows * cols * w),
                         T{real_t<T>(-77)});
      batch_interleave<T>(rows, cols, sp.data(), ld, nlanes, w, buf.data());
      // Spot-check the addressing law and the zero-fill of dead lanes.
      for (index_t j = 0; j < cols; ++j)
        for (index_t i = 0; i < rows; ++i)
          for (index_t l = 0; l < w; ++l) {
            const T want = l < nlanes ? src[l](i, j) : T{};
            EXPECT_EQ(buf[static_cast<std::size_t>((i + j * rows) * w + l)],
                      want)
                << "w=" << w << " lane " << l << " (" << i << "," << j << ")";
          }
      // Scatter back into sentinel-filled destinations: values restored
      // exactly, padding rows untouched.
      std::vector<Matrix<T>> dst;
      std::vector<T*> dp;
      for (index_t l = 0; l < nlanes; ++l) {
        Matrix<T> d(ld, cols);
        for (index_t j = 0; j < cols; ++j)
          for (index_t i = 0; i < ld; ++i) d(i, j) = T{real_t<T>(42)};
        dst.push_back(std::move(d));
        dp.push_back(dst.back().view().data);
      }
      batch_deinterleave<T>(rows, cols, buf.data(), w, nlanes, dp.data(), ld);
      for (index_t l = 0; l < nlanes; ++l)
        for (index_t j = 0; j < cols; ++j)
          for (index_t i = 0; i < ld; ++i) {
            const T want = i < rows ? src[l](i, j) : T{real_t<T>(42)};
            EXPECT_EQ(dst[l](i, j), want) << "lane " << l;
          }
    }
  }
}

/// batch_interleave_op absorbs transpose/conjugation during the gather, the
/// way the GEMM packing routines do.
TYPED_TEST(BatchSimdTyped, InterleaveOpAbsorbsTransposeAndConjugation) {
  using T = TypeParam;
  const index_t m = 6, n = 9, w = 4, nlanes = 3;
  std::vector<Matrix<T>> src;
  std::vector<const T*> sp;
  for (index_t l = 0; l < nlanes; ++l) {
    src.push_back(random_matrix<T>(m, n, 1200 + l));
    sp.push_back(src.back().view().data);
  }
  for (Op op : {Op::N, Op::T, Op::C}) {
    const index_t rows = op == Op::N ? m : n;
    const index_t cols = op == Op::N ? n : m;
    std::vector<T> buf(static_cast<std::size_t>(rows * cols * w), T{});
    batch_interleave_op<T>(op, rows, cols, sp.data(), m, nlanes, w,
                           buf.data());
    for (index_t l = 0; l < nlanes; ++l)
      for (index_t j = 0; j < cols; ++j)
        for (index_t i = 0; i < rows; ++i) {
          T want = op == Op::N ? src[l](i, j) : src[l](j, i);
          if (op == Op::C) want = conj_s(want);
          EXPECT_EQ(buf[static_cast<std::size_t>((i + j * rows) * w + l)],
                    want)
              << "op=" << static_cast<int>(op) << " lane " << l;
        }
  }
}

/// The fused scatter applies dst = alpha * lane + beta * dst, and beta == 0
/// overwrites without reading (gemm's beta semantics).
TYPED_TEST(BatchSimdTyped, DeinterleaveAxpbyFusesTheUpdate) {
  using T = TypeParam;
  const index_t rows = 7, cols = 4, w = 4, nlanes = 2;
  std::vector<Matrix<T>> lanes;
  std::vector<const T*> sp;
  for (index_t l = 0; l < nlanes; ++l) {
    lanes.push_back(random_matrix<T>(rows, cols, 1300 + l));
    sp.push_back(lanes.back().view().data);
  }
  std::vector<T> buf(static_cast<std::size_t>(rows * cols * w), T{});
  batch_interleave<T>(rows, cols, sp.data(), rows, nlanes, w, buf.data());
  const T alpha = T{real_t<T>(2.5)}, beta = T{real_t<T>(-1.5)};
  for (int overwrite = 0; overwrite < 2; ++overwrite) {
    std::vector<Matrix<T>> dst, want;
    std::vector<T*> dp;
    for (index_t l = 0; l < nlanes; ++l) {
      Matrix<T> d = random_matrix<T>(rows, cols, 1400 + l);
      Matrix<T> e(rows, cols);
      for (index_t j = 0; j < cols; ++j)
        for (index_t i = 0; i < rows; ++i)
          e(i, j) = overwrite ? alpha * lanes[l](i, j)
                              : alpha * lanes[l](i, j) + beta * d(i, j);
      dst.push_back(std::move(d));
      want.push_back(std::move(e));
      dp.push_back(dst.back().view().data);
    }
    batch_deinterleave_axpby<T>(alpha, rows, cols, buf.data(), w, nlanes,
                                overwrite ? T{} : beta, dp.data(), rows);
    for (index_t l = 0; l < nlanes; ++l)
      EXPECT_LE(rel_error<T>(dst[l].view(), want[l].view()),
                8 * eps_v<real_t<T>>)
          << "lane " << l << " overwrite=" << overwrite;
  }
}

/// --- across-batch kernels vs their scalar references ---------------------

/// Rank-deficient blocks (make_blocks index 2 mod 4) exhaust columns down to
/// roundoff noise, so their reflector directions legitimately depend on the
/// summation order — factor equality against the scalar reference is only
/// well-posed for the other blocks (the test_qr_batched convention).
inline bool factor_comparable(index_t block_index) {
  return block_index % 4 != 2;
}

/// ||Q^H Q - I|| relative deviation from orthonormality.
template <typename T>
real_t<T> ortho_error(ConstMatrixView<T> q) {
  Matrix<T> g(q.cols, q.cols);
  gemm<T>(Op::C, Op::N, T{1}, q, q, T{0}, g.view());
  return rel_error<T>(g.view(), Matrix<T>::identity(q.cols).view());
}

/// Upper-triangular R (k x n) out of a compact factor array.
template <typename T>
Matrix<T> extract_r(ConstMatrixView<T> f) {
  const index_t k = std::min(f.rows, f.cols);
  Matrix<T> r(k, f.cols);
  for (index_t j = 0; j < f.cols; ++j)
    for (index_t i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = f(i, j);
  return r;
}

/// The lane-major Householder panel factors every lane exactly like the
/// scalar geqrf_panel reference — same factors, same taus — including a
/// partial group with zero-filled dead lanes (which must yield tau = 0).
/// Rank-deficient lanes are asserted through the well-posed properties
/// instead: orthonormal Q, and Q R reconstructs the block.
TYPED_TEST(BatchSimdTyped, GeqrfPanelBatchMatchesScalarPanel) {
  using T = TypeParam;
  const index_t shapes[][2] = {{37, 11}, {8, 8}, {20, 1}, {6, 5}};
  std::uint64_t seed = 2000;
  for (auto& [m, n] : shapes) {
    for (index_t w : {index_t{2}, index_t{4}, index_t{8}}) {
      const index_t nlanes = std::max<index_t>(1, w - 1);
      std::vector<Matrix<T>> blocks = make_blocks<T>(m, n, nlanes, seed += 7);
      // Scalar reference, per problem.
      std::vector<Matrix<T>> ref;
      std::vector<std::vector<T>> rtau;
      for (const Matrix<T>& a : blocks) {
        ref.push_back(to_matrix(a.view()));
        rtau.emplace_back(std::min(m, n));
        geqrf_panel<T>(ref.back().view(), rtau.back().data());
      }
      // Across-batch path through the lane-major layout.
      std::vector<const T*> sp;
      for (const Matrix<T>& a : blocks) sp.push_back(a.view().data);
      const index_t k = std::min(m, n);
      std::vector<T> panel(static_cast<std::size_t>(m * n * w), T{});
      std::vector<T> tau(static_cast<std::size_t>(k * w), T{real_t<T>(9)});
      batch_interleave<T>(m, n, sp.data(), m, nlanes, w, panel.data());
      geqrf_panel_batch<T>(m, n, panel.data(), tau.data(), w);
      std::vector<Matrix<T>> got(nlanes, Matrix<T>(m, n));
      std::vector<T*> dp;
      for (Matrix<T>& g : got) dp.push_back(g.view().data);
      batch_deinterleave<T>(m, n, panel.data(), w, nlanes, dp.data(), m);
      for (index_t l = 0; l < nlanes; ++l) {
        if (factor_comparable(l)) {
          EXPECT_LE(rel_error<T>(got[l].view(), ref[l].view()), tol<T>())
              << m << "x" << n << " w=" << w << " lane " << l;
          for (index_t j = 0; j < k; ++j)
            EXPECT_LE(abs_s(tau[static_cast<std::size_t>(j * w + l)] -
                            rtau[l][j]),
                      tol<T>())
                << m << "x" << n << " w=" << w << " tau[" << j << "] lane "
                << l;
        }
        // Well-posed for every lane: Q is orthonormal and Q R = A.
        std::vector<T> ltau(static_cast<std::size_t>(k));
        for (index_t j = 0; j < k; ++j)
          ltau[static_cast<std::size_t>(j)] =
              tau[static_cast<std::size_t>(j * w + l)];
        Matrix<T> q = to_matrix(got[l].view().block(0, 0, m, k));
        thin_q_panel<T>(q.view(), ltau.data());
        EXPECT_LE(ortho_error<T>(q.view()), 10 * tol<T>())
            << m << "x" << n << " w=" << w << " lane " << l;
        Matrix<T> rec(m, n);
        gemm<T>(Op::N, Op::N, T{1}, q.view(), extract_r<T>(got[l].view()),
                T{0}, rec.view());
        EXPECT_LE(rel_error<T>(rec.view(), blocks[l].view()), 10 * tol<T>())
            << m << "x" << n << " w=" << w << " lane " << l;
      }
      // Dead (zero-filled) lanes must come out as exact no-ops.
      for (index_t l = nlanes; l < w; ++l)
        for (index_t j = 0; j < k; ++j)
          EXPECT_EQ(tau[static_cast<std::size_t>(j * w + l)], T{})
              << "dead lane " << l;
    }
  }
}

/// One lane-major accumulated-rotation Jacobi sweep matches the scalar
/// jacobi_sweep_gram reference per lane: same rotated flags, same swept Gram
/// matrix, and applying the accumulated rotation (w0*R, v0*R — what the
/// driver does once per sweep as batched GEMMs) reproduces the sequentially
/// rotated factors.
TYPED_TEST(BatchSimdTyped, JacobiSweepBatchMatchesScalarSweep) {
  using T = TypeParam;
  using R = real_t<T>;
  const index_t m = 24, n = 8, w = 4, nlanes = 3;
  const R jtol = R{8} * eps_v<R>;
  std::vector<Matrix<T>> wm = make_blocks<T>(m, n, nlanes, 3100);
  std::vector<Matrix<T>> vm, gm;
  for (const Matrix<T>& b : wm) {
    vm.push_back(Matrix<T>::identity(n));
    Matrix<T> g(n, n);
    gemm<T>(Op::C, Op::N, T{1}, b.view(), b.view(), T{0}, g.view());
    gm.push_back(std::move(g));
  }
  // Scalar reference sweep, per problem.
  std::vector<Matrix<T>> rw, rv, rg;
  std::vector<bool> rrot;
  for (index_t l = 0; l < nlanes; ++l) {
    rw.push_back(to_matrix(wm[l].view()));
    rv.push_back(to_matrix(vm[l].view()));
    rg.push_back(to_matrix(gm[l].view()));
    rrot.push_back(
        jacobi_sweep_gram<T>(rw.back().view(), rv.back().view(),
                             rg.back().view(), jtol));
  }
  // Across-batch sweep: only the Gram matrix goes through the lane-major
  // layout; the factors pick the sweep up through the accumulated R.
  std::vector<T> gb(static_cast<std::size_t>(n * n * w), T{});
  std::vector<T> rb(static_cast<std::size_t>(n * n * w), T{});
  std::vector<const T*> gp;
  for (index_t l = 0; l < nlanes; ++l) gp.push_back(gm[l].view().data);
  batch_interleave<T>(n, n, gp.data(), n, nlanes, w, gb.data());
  bool rot[8] = {};
  jacobi_sweep_batch<T>(n, gb.data(), rb.data(), jtol, w, rot);
  std::vector<Matrix<T>> gg(nlanes, Matrix<T>(n, n));
  std::vector<Matrix<T>> gr(nlanes, Matrix<T>(n, n));
  std::vector<T*> ggp, grp;
  for (index_t l = 0; l < nlanes; ++l) {
    ggp.push_back(gg[l].view().data);
    grp.push_back(gr[l].view().data);
  }
  batch_deinterleave<T>(n, n, gb.data(), w, nlanes, ggp.data(), n);
  batch_deinterleave<T>(n, n, rb.data(), w, nlanes, grp.data(), n);
  for (index_t l = 0; l < nlanes; ++l) {
    EXPECT_EQ(rot[l], rrot[l]) << "lane " << l;
    // The batch sweep maintains G's UPPER triangle only (the scan never
    // reads below the diagonal and the drivers refresh G from the factor);
    // splice the reference lower triangle in before comparing.
    for (index_t j = 0; j < n; ++j)
      for (index_t i = j + 1; i < n; ++i) gg[l](i, j) = rg[l](i, j);
    EXPECT_LE(rel_error<T>(gg[l].view(), rg[l].view()), tol<T>())
        << "G lane " << l;
    Matrix<T> wr(m, n), vr(n, n);
    gemm<T>(Op::N, Op::N, T{1}, wm[l].view(), gr[l].view(), T{0}, wr.view());
    gemm<T>(Op::N, Op::N, T{1}, vm[l].view(), gr[l].view(), T{0}, vr.view());
    EXPECT_LE(rel_error<T>(wr.view(), rw[l].view()), tol<T>())
        << "W lane " << l;
    EXPECT_LE(rel_error<T>(vr.view(), rv[l].view()), tol<T>())
        << "V lane " << l;
  }
  // Dead lanes (zero Gram): no rotations, and R stays the exact identity.
  for (index_t l = nlanes; l < w; ++l) {
    EXPECT_FALSE(rot[l]);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i)
        EXPECT_EQ(rb[static_cast<std::size_t>((j * n + i) * w + l)],
                  i == j ? T{1} : T{})
            << "dead lane " << l;
  }
}

/// The lane-major small-GEMM kernel plus the fused alpha/beta scatter equals
/// per-problem gemm for every op combination the dispatcher can feed it.
TYPED_TEST(BatchSimdTyped, SmallGemmBatchMatchesGemm) {
  using T = TypeParam;
  const index_t m = 3, n = 2, k = 7, w = 4, nlanes = 3;
  const T alpha = T{real_t<T>(1.25)}, beta = T{real_t<T>(0.5)};
  const Op ops[][2] = {{Op::N, Op::N}, {Op::T, Op::N}, {Op::N, Op::C},
                       {Op::C, Op::T}};
  std::uint64_t seed = 4000;
  for (auto& [opa, opb] : ops) {
    const index_t am = opa == Op::N ? m : k, an = opa == Op::N ? k : m;
    const index_t bm = opb == Op::N ? k : n, bn = opb == Op::N ? n : k;
    std::vector<Matrix<T>> av, bv, cv, want;
    std::vector<const T*> ap, bp;
    std::vector<T*> cp;
    for (index_t l = 0; l < nlanes; ++l) {
      av.push_back(random_matrix<T>(am, an, seed += 3));
      bv.push_back(random_matrix<T>(bm, bn, seed += 3));
      cv.push_back(random_matrix<T>(m, n, seed += 3));
      want.push_back(to_matrix(cv.back().view()));
      gemm<T>(opa, opb, alpha, av.back().view(), bv.back().view(), beta,
              want.back().view());
      ap.push_back(av.back().view().data);
      bp.push_back(bv.back().view().data);
      cp.push_back(cv.back().view().data);
    }
    std::vector<T> ab(static_cast<std::size_t>(m * k * w), T{});
    std::vector<T> bb(static_cast<std::size_t>(k * n * w), T{});
    std::vector<T> cb(static_cast<std::size_t>(m * n * w), T{});
    batch_interleave_op<T>(opa, m, k, ap.data(), am, nlanes, w, ab.data());
    batch_interleave_op<T>(opb, k, n, bp.data(), bm, nlanes, w, bb.data());
    small_gemm_batch<T>(m, n, k, ab.data(), bb.data(), cb.data(), w);
    batch_deinterleave_axpby<T>(alpha, m, n, cb.data(), w, nlanes, beta,
                                cp.data(), m);
    for (index_t l = 0; l < nlanes; ++l)
      EXPECT_LE(rel_error<T>(cv[l].view(), want[l].view()), tol<T>())
          << "ops " << static_cast<int>(opa) << "," << static_cast<int>(opb)
          << " lane " << l;
  }
}

/// The in-place narrow right product (the Jacobi driver's accumulated-
/// rotation apply) matches out-of-place gemm, including ragged row counts
/// (partial staging chunks) and single-column edge shapes.
TYPED_TEST(BatchSimdTyped, GemmRightInplaceMatchesGemm) {
  using T = TypeParam;
  const std::pair<index_t, index_t> shapes[] = {
      {33, 7}, {16, 8}, {5, 3}, {70, 20}, {1, 1}, {48, 16}};
  std::uint64_t seed = 6100;
  for (const auto& [m, n] : shapes) {
    Matrix<T> a = random_matrix<T>(m, n, seed += 11);
    Matrix<T> r = random_matrix<T>(n, n, seed += 11);
    Matrix<T> want(m, n);
    gemm<T>(Op::N, Op::N, T{1}, a.view(), r.view(), T{0}, want.view());
    gemm_right_inplace<T>(m, n, a.view().data, m, r.view().data, n);
    EXPECT_LE(rel_error<T>(a.view(), want.view()), tol<T>())
        << m << "x" << n;
  }
}

/// --- width resolution ------------------------------------------------------

/// HODLRX_BATCH_SIMD override > hwinfo probe > 1, with rounding to the
/// supported widths (powers of two up to 16).
TEST(BatchSimdWidth, ResolutionPrecedenceAndRounding) {
  ScopedBatchEnv env;
  // Probe rung: width follows the hardware vector register width.
  const ResolvedBlocking& rb = resolved_blocking<double>();
  const std::size_t sb = hwinfo().simd_bytes;
  if (sb == 0) {
    EXPECT_EQ(rb.batch_simd_width, 1);
  } else {
    index_t expect = 1;
    while (expect * 2 <= static_cast<index_t>(sb / sizeof(double)) &&
           expect * 2 <= 16)
      expect *= 2;
    EXPECT_EQ(rb.batch_simd_width, expect);
  }
  // Wider element type -> narrower batch width from the same registers.
  if (sb >= 2 * sizeof(double)) {
    EXPECT_EQ(resolved_blocking<float>().batch_simd_width,
              2 * resolved_blocking<double>().batch_simd_width);
  }
  // Env override is absolute and rounds down to a supported width.
  env.set("HODLRX_BATCH_SIMD", "8");
  env.refresh();
  EXPECT_EQ(resolved_blocking<double>().batch_simd_width, 8);
  EXPECT_EQ(resolved_blocking<double>().batch_src, BlockingSource::kEnv);
  env.set("HODLRX_BATCH_SIMD", "5");
  env.refresh();
  EXPECT_EQ(resolved_blocking<double>().batch_simd_width, 4) << "5 -> 4";
  env.set("HODLRX_BATCH_SIMD", "100");
  env.refresh();
  EXPECT_EQ(resolved_blocking<double>().batch_simd_width, 16)
      << "clamped to the widest supported lane count";
  env.set("HODLRX_BATCH_SIMD", "1");
  env.refresh();
  EXPECT_EQ(resolved_blocking<double>().batch_simd_width, 1);
  ScopedBatchEnv::clear();
  // Static rung (autotune off): scalar width.
  env.set("HODLRX_AUTOTUNE", "off");
  env.refresh();
  EXPECT_EQ(resolved_blocking<double>().batch_simd_width, 1);
  EXPECT_EQ(resolved_blocking<double>().batch_src, BlockingSource::kStatic);
}

/// --- driver dispatch under both widths -------------------------------------

/// HODLRX_BATCH_SIMD=1 is the bit-for-bit scalar fallback: every across-batch
/// counter stays at zero (the drivers run the untouched per-problem path) and
/// repeated runs are bitwise identical.
TYPED_TEST(BatchSimdTyped, ForcedWidthOneRunsTheScalarPathExactly) {
  using T = TypeParam;
  ScopedBatchEnv env;
  env.set("HODLRX_BATCH_SIMD", "1");
  env.refresh();
  const index_t m = 24, n = 6, batch = 9;
  std::vector<Matrix<T>> blocks = make_blocks<T>(m, n, batch, 5100);
  const index_t stride_a = m * n, k = std::min(m, n);
  std::vector<T> a1(static_cast<std::size_t>(stride_a * batch));
  for (index_t i = 0; i < batch; ++i)
    copy<T>(blocks[i].view(),
            MatrixView<T>{a1.data() + i * stride_a, m, n, m});
  std::vector<T> a2 = a1;
  std::vector<T> tau1(static_cast<std::size_t>(k * batch), T{});
  std::vector<T> tau2 = tau1;
  batch_simd_stats::reset();
  geqrf_strided_batched<T>(a1.data(), m, stride_a, m, n, tau1.data(), k,
                           batch);
  EXPECT_EQ(batch_simd_stats::qr_panel_groups(), 0u);
  geqrf_strided_batched<T>(a2.data(), m, stride_a, m, n, tau2.data(), k,
                           batch);
  EXPECT_EQ(std::memcmp(a1.data(), a2.data(), a1.size() * sizeof(T)), 0)
      << "scalar fallback must be deterministic";
  EXPECT_EQ(std::memcmp(tau1.data(), tau2.data(), tau1.size() * sizeof(T)),
            0);
  // The tiny-GEMM and Jacobi dispatchers also stay scalar at width 1.
  std::vector<T> c(static_cast<std::size_t>(4 * batch), T{});
  std::vector<T> g(static_cast<std::size_t>(2 * n), T{real_t<T>(1)});
  gemm_strided_batched<T>(Op::N, Op::N, 2, 2, n, T{1}, a1.data(), m,
                          stride_a, g.data(), n, 0, T{0}, c.data(), 2, 4,
                          batch);
  EXPECT_EQ(batch_simd_stats::gemm_groups(), 0u);
  std::vector<T> sva = a1;
  std::vector<real_t<T>> s(static_cast<std::size_t>(n * batch));
  std::vector<T> v(static_cast<std::size_t>(n * n * batch));
  jacobi_svd_strided_batched<T>(sva.data(), m, stride_a, m, n, s.data(), n,
                                v.data(), n, n * n, batch);
  EXPECT_EQ(batch_simd_stats::jacobi_sweep_groups(), 0u);
}

/// The across-batch QR path produces the same factorization as the forced
/// scalar path (to tolerance), actually runs vectorized lane groups, keeps
/// the panel-launch count identical and never grows the pool.
TYPED_TEST(BatchSimdTyped, GeqrfStridedBatchedAgreesAcrossWidths) {
  using T = TypeParam;
  const index_t m = 48, n = 12, batch = 19;
  std::vector<Matrix<T>> blocks = make_blocks<T>(m, n, batch, 5200);
  const index_t stride_a = m * n, k = std::min(m, n);
  std::vector<T> a0(static_cast<std::size_t>(stride_a * batch));
  for (index_t i = 0; i < batch; ++i)
    copy<T>(blocks[i].view(),
            MatrixView<T>{a0.data() + i * stride_a, m, n, m});
  ScopedBatchEnv env;
  auto run = [&](const char* width, std::vector<T>& a, std::vector<T>& tau) {
    ScopedBatchEnv::clear();
    if (width) env.set("HODLRX_BATCH_SIMD", width);
    env.refresh();
    qr_stats::reset();
    geqrf_strided_batched<T>(a.data(), m, stride_a, m, n, tau.data(), k,
                             batch);
    return qr_stats::panel_launches();
  };
  std::vector<T> as = a0, av = a0;
  std::vector<T> taus(static_cast<std::size_t>(k * batch), T{});
  std::vector<T> tauv = taus;
  // The scalar run warms the pool, so threads_created is stable after it.
  const std::uint64_t launches_scalar = run("1", as, taus);
  batch_simd_stats::reset();
  const std::uint64_t threads_before = ThreadPool::instance().threads_created();
  const std::uint64_t launches_simd = run(nullptr, av, tauv);
  EXPECT_EQ(launches_scalar, launches_simd)
      << "interleaving lives INSIDE the existing launches";
  EXPECT_EQ(ThreadPool::instance().threads_created(), threads_before)
      << "no pool churn from the across-batch path";
  const index_t width = resolved_blocking<T>().batch_simd_width;
  if (width > 1 && batch >= width) {
    EXPECT_GT(batch_simd_stats::qr_panel_groups(), 0u);
  }
  for (index_t i = 0; i < batch; ++i) {
    ConstMatrixView<T> fs{as.data() + i * stride_a, m, n, m};
    ConstMatrixView<T> fv{av.data() + i * stride_a, m, n, m};
    if (factor_comparable(i)) {
      EXPECT_LE(rel_error<T>(fv, fs), tol<T>()) << "problem " << i;
      for (index_t j = 0; j < k; ++j)
        EXPECT_LE(abs_s(tauv[static_cast<std::size_t>(i * k + j)] -
                        taus[static_cast<std::size_t>(i * k + j)]),
                  tol<T>())
            << "problem " << i << " tau[" << j << "]";
    }
    // Well-posed for every problem (including rank-deficient ones, where
    // the reflector directions may differ between the two paths): the
    // vectorized factorization still gives an orthonormal Q with Q R = A.
    Matrix<T> q = to_matrix(ConstMatrixView<T>{av.data() + i * stride_a, m,
                                               k, m});
    thin_q_panel<T>(q.view(), tauv.data() + i * k);
    EXPECT_LE(ortho_error<T>(q.view()), 10 * tol<T>()) << "problem " << i;
    Matrix<T> rec(m, n);
    gemm<T>(Op::N, Op::N, T{1}, q.view(), extract_r<T>(fv), T{0},
            rec.view());
    EXPECT_LE(rel_error<T>(rec.view(), blocks[i].view()), 10 * tol<T>())
        << "problem " << i;
  }
}

/// The across-batch Jacobi sweep converges to the same SVD as the forced
/// scalar path: same singular values, orthonormal factors, reconstruction.
TYPED_TEST(BatchSimdTyped, JacobiSvdStridedBatchedAgreesAcrossWidths) {
  using T = TypeParam;
  using R = real_t<T>;
  const index_t m = 32, n = 8, batch = 18;
  std::vector<Matrix<T>> blocks = make_blocks<T>(m, n, batch, 5300);
  const index_t stride_a = m * n, stride_v = n * n;
  std::vector<T> a0(static_cast<std::size_t>(stride_a * batch));
  for (index_t i = 0; i < batch; ++i)
    copy<T>(blocks[i].view(),
            MatrixView<T>{a0.data() + i * stride_a, m, n, m});
  ScopedBatchEnv env;
  auto run = [&](const char* width, std::vector<T>& a, std::vector<R>& s,
                 std::vector<T>& v) {
    ScopedBatchEnv::clear();
    if (width) env.set("HODLRX_BATCH_SIMD", width);
    env.refresh();
    return jacobi_svd_strided_batched<T>(a.data(), m, stride_a, m, n,
                                         s.data(), n, v.data(), n, stride_v,
                                         batch);
  };
  std::vector<T> as = a0, av = a0;
  std::vector<R> ss(static_cast<std::size_t>(n * batch)), sv = ss;
  std::vector<T> vs(static_cast<std::size_t>(stride_v * batch)), vv = vs;
  const SvdBatchInfo is = run("1", as, ss, vs);
  batch_simd_stats::reset();
  const SvdBatchInfo iv = run(nullptr, av, sv, vv);
  EXPECT_EQ(is.nonconverged, 0);
  EXPECT_EQ(iv.nonconverged, 0);
  if (resolved_blocking<T>().batch_simd_width > 1 &&
      batch >= resolved_blocking<T>().batch_simd_width) {
    EXPECT_GT(batch_simd_stats::jacobi_sweep_groups(), 0u);
  }
  const R stol = 20 * tol<T>();
  for (index_t i = 0; i < batch; ++i) {
    const R scale = std::max<R>(ss[static_cast<std::size_t>(i * n)], R{1});
    for (index_t j = 0; j < n; ++j)
      EXPECT_NEAR(sv[static_cast<std::size_t>(i * n + j)],
                  ss[static_cast<std::size_t>(i * n + j)], stol * scale)
          << "problem " << i << " s[" << j << "]";
    // U diag(s) V^H reconstructs the block under both widths.
    ConstMatrixView<T> u{av.data() + i * stride_a, m, n, m};
    Matrix<T> us = to_matrix(u);
    for (index_t j = 0; j < n; ++j)
      scale_inplace(T{sv[static_cast<std::size_t>(i * n + j)]},
                    us.view().block(0, j, m, 1));
    Matrix<T> rec(m, n);
    ConstMatrixView<T> vvi{vv.data() + i * stride_v, n, n, n};
    gemm<T>(Op::N, Op::C, T{1}, us.view(), vvi, T{0}, rec.view());
    EXPECT_LE(rel_error<T>(rec.view(), blocks[i].view()), stol)
        << "problem " << i;
  }
}

/// The uniform-tiny-shape rung of gemm_strided_batched routes through the
/// across-batch kernel and agrees with per-problem gemm, including the
/// stride-0 shared-operand broadcast.
TYPED_TEST(BatchSimdTyped, GemmStridedBatchedTinyShapesAcrossWidths) {
  using T = TypeParam;
  const index_t m = 2, n = 3, k = 16, batch = 21;
  const T alpha = T{real_t<T>(1.5)}, beta = T{real_t<T>(-0.5)};
  std::vector<T> a(static_cast<std::size_t>(m * k * batch));
  std::vector<T> b(static_cast<std::size_t>(k * n));  // shared, stride 0
  std::vector<T> c0(static_cast<std::size_t>(m * n * batch));
  Rng rng(5400);
  auto fill = [&](std::vector<T>& x) {
    rng.fill_uniform(MatrixView<T>{x.data(), static_cast<index_t>(x.size()),
                                   1, static_cast<index_t>(x.size())});
  };
  fill(a);
  fill(b);
  fill(c0);
  // Reference: per-problem gemm on the scalar path.
  std::vector<T> want = c0;
  for (index_t i = 0; i < batch; ++i) {
    ConstMatrixView<T> ai{a.data() + i * m * k, m, k, m};
    ConstMatrixView<T> bi{b.data(), k, n, k};
    MatrixView<T> ci{want.data() + i * m * n, m, n, m};
    gemm<T>(Op::N, Op::N, alpha, ai, bi, beta, ci);
  }
  ScopedBatchEnv env;
  std::vector<T> got = c0;
  batch_simd_stats::reset();
  gemm_strided_batched<T>(Op::N, Op::N, m, n, k, alpha, a.data(), m, m * k,
                          b.data(), k, 0, beta, got.data(), m, m * n, batch);
  if (resolved_blocking<T>().batch_simd_width > 1 &&
      batch >= resolved_blocking<T>().batch_simd_width) {
    EXPECT_GT(batch_simd_stats::gemm_groups(), 0u);
  }
  for (index_t i = 0; i < batch; ++i) {
    ConstMatrixView<T> gi{got.data() + i * m * n, m, n, m};
    ConstMatrixView<T> wi{want.data() + i * m * n, m, n, m};
    EXPECT_LE(rel_error<T>(gi, wi), tol<T>()) << "problem " << i;
  }
}

}  // namespace
}  // namespace hodlrx
