#include <gtest/gtest.h>

#include "core/factorization.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

/// Reference log|det| and phase from a dense LU.
template <typename T>
std::pair<real_t<T>, T> dense_logdet(const Matrix<T>& a) {
  Matrix<T> lu = to_matrix(a.view());
  std::vector<index_t> ipiv(a.rows());
  getrf(lu.view(), ipiv.data());
  real_t<T> log_abs = 0;
  T phase = T{1};
  for (index_t k = 0; k < a.rows(); ++k) {
    const T u = lu(k, k);
    log_abs += std::log(abs_s(u));
    phase *= u / T{abs_s(u)};
    if (ipiv[k] != k) phase = -phase;
  }
  return {log_abs, phase};
}

template <typename T>
void check_logdet(index_t n, index_t leaf, KForm kform, ExecMode mode,
                  double tol) {
  Matrix<T> a = test::smooth_test_matrix<T>(n, 101 + n);
  ClusterTree tree = ClusterTree::uniform(n, leaf);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  // Compare against the determinant of the COMPRESSED matrix (exact match
  // modulo roundoff), not the original.
  Matrix<T> ad = h.to_dense();
  auto [ref_log, ref_phase] = dense_logdet(ad);

  FactorOptions fopt;
  fopt.kform = kform;
  fopt.mode = mode;
  auto f = HodlrFactorization<T>::factor(PackedHodlr<T>::pack(h), fopt);
  auto ld = f.logdet();
  EXPECT_NEAR(ld.log_abs, ref_log, tol * std::abs(ref_log) + tol);
  EXPECT_LE(abs_s(ld.phase - ref_phase), 1e-6);
}

TEST(LogDet, MatchesDensePivoted) {
  check_logdet<double>(96, 12, KForm::kPivoted, ExecMode::kSerial, 1e-10);
  check_logdet<double>(200, 25, KForm::kPivoted, ExecMode::kBatched, 1e-10);
  check_logdet<double>(256, 16, KForm::kPivoted, ExecMode::kBatched, 1e-10);
}

TEST(LogDet, MatchesDenseIdentityDiagonal) {
  check_logdet<double>(96, 12, KForm::kIdentityDiagonal, ExecMode::kSerial,
                       1e-10);
  check_logdet<double>(128, 16, KForm::kIdentityDiagonal, ExecMode::kBatched,
                       1e-10);
}

TEST(LogDet, ComplexPhase) {
  check_logdet<std::complex<double>>(128, 16, KForm::kPivoted,
                                     ExecMode::kBatched, 1e-9);
  check_logdet<std::complex<double>>(100, 14, KForm::kIdentityDiagonal,
                                     ExecMode::kSerial, 1e-9);
}

TEST(LogDet, NegativeDeterminantSign) {
  // Force a negative determinant: flip the sign of one row of a smooth
  // SPD-ish matrix (odd permutation-like change).
  const index_t n = 64;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 131);
  for (index_t j = 0; j < n; ++j) a(3, j) = -a(3, j);
  ClusterTree tree = ClusterTree::uniform(n, 16);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  auto [ref_log, ref_phase] = dense_logdet(h.to_dense());
  EXPECT_LT(ref_phase, 0);  // sanity: determinant really is negative
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  auto ld = f.logdet();
  EXPECT_NEAR(ld.phase, ref_phase, 1e-9);
  EXPECT_NEAR(ld.log_abs, ref_log, 1e-8);
}

TEST(LogDet, GaussianProcessScale) {
  // logdet of a GP covariance: positive-definite, so phase must be +1.
  const index_t n = 256;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 137);
  // Symmetrize to make it a plausible covariance.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) a(i, j) = a(j, i);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  auto ld = f.logdet();
  auto [ref_log, ref_phase] = dense_logdet(h.to_dense());
  EXPECT_NEAR(ld.phase, 1.0, 1e-9);
  EXPECT_NEAR(ref_phase, 1.0, 1e-9);
  EXPECT_NEAR(ld.log_abs, ref_log, 1e-8 * std::abs(ref_log));
}

}  // namespace
}  // namespace hodlrx
