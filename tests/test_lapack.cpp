#include <gtest/gtest.h>

#include "common/lapack.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using test::rel_error;

template <typename T>
class LapackTyped : public ::testing::Test {};
using LapackTypes = ::testing::Types<float, double, std::complex<float>,
                                     std::complex<double>>;
TYPED_TEST_SUITE(LapackTyped, LapackTypes);

/// Reconstruct P*L*U from getrf output and compare with the original.
template <typename T>
void check_lu_reconstruction(const Matrix<T>& a0, const Matrix<T>& lu,
                             const std::vector<index_t>& ipiv) {
  const index_t n = a0.rows();
  Matrix<T> l = Matrix<T>::identity(n);
  Matrix<T> u(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) l(i, j) = lu(i, j);
    for (index_t i = 0; i <= j; ++i) u(i, j) = lu(i, j);
  }
  Matrix<T> pa = to_matrix(a0.view());
  laswp(pa.view(), ipiv.data(), n, /*forward=*/true);
  Matrix<T> rec(n, n);
  gemm<T>(Op::N, Op::N, T{1}, l, u, T{0}, rec.view());
  EXPECT_LE(rel_error(rec, pa),
            real_t<T>(std::is_same_v<real_t<T>, float> ? 1e-4 : 1e-12));
}

TYPED_TEST(LapackTyped, GetrfReconstruction) {
  using T = TypeParam;
  for (index_t n : {1, 2, 7, 33, 64, 100, 200}) {
    Matrix<T> a = random_matrix<T>(n, n, 100 + n);
    for (index_t i = 0; i < n; ++i) a(i, i) += T{4};
    Matrix<T> lu = to_matrix(a.view());
    std::vector<index_t> ipiv(n);
    getrf(lu.view(), ipiv.data());
    check_lu_reconstruction(a, lu, ipiv);
  }
}

TYPED_TEST(LapackTyped, GetrsSolves) {
  using T = TypeParam;
  using R = real_t<T>;
  const index_t n = 80, nrhs = 5;
  Matrix<T> a = random_matrix<T>(n, n, 17);
  for (index_t i = 0; i < n; ++i) a(i, i) += T{6};
  Matrix<T> b = random_matrix<T>(n, nrhs, 18);
  Matrix<T> x = dense_solve<T>(a, b);
  EXPECT_LE(test::dense_relres<T>(a, x, b),
            R(std::is_same_v<R, float> ? 1e-4 : 1e-12));
}

TYPED_TEST(LapackTyped, GetrfNoPivotOnDominantMatrix) {
  using T = TypeParam;
  const index_t n = 40;
  Matrix<T> a = random_matrix<T>(n, n, 19);
  for (index_t i = 0; i < n; ++i) a(i, i) += T{50};
  Matrix<T> a0 = to_matrix(a.view());
  getrf_nopivot(a.view());
  Matrix<T> b = random_matrix<T>(n, 3, 20);
  Matrix<T> x = to_matrix(b.view());
  getrs_nopivot<T>(a, x.view());
  EXPECT_LE(test::dense_relres<T>(a0, x, b),
            real_t<T>(std::is_same_v<real_t<T>, float> ? 1e-4 : 1e-12));
}

TEST(Lapack, GetrfSingularThrows) {
  Matrix<double> a(3, 3);  // exactly zero matrix
  std::vector<index_t> ipiv(3);
  EXPECT_THROW(getrf(a.view(), ipiv.data()), Error);
}

TEST(Lapack, PivotingHandlesZeroDiagonal) {
  // [[0, 1], [1, 0]] is singular without pivoting, fine with it.
  Matrix<double> a(2, 2);
  a(0, 1) = 1;
  a(1, 0) = 1;
  Matrix<double> b(2, 1);
  b(0, 0) = 3;
  b(1, 0) = 4;
  Matrix<double> x = dense_solve<double>(a, b);
  EXPECT_NEAR(x(0, 0), 4.0, 1e-14);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-14);
}

TYPED_TEST(LapackTyped, TrsmLowerUpper) {
  using T = TypeParam;
  using R = real_t<T>;
  const index_t n = 30;
  Matrix<T> a = random_matrix<T>(n, n, 23);
  for (index_t i = 0; i < n; ++i) a(i, i) += T{8};
  Matrix<T> b = random_matrix<T>(n, 4, 24);

  // Lower unit solve.
  Matrix<T> l = Matrix<T>::identity(n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) l(i, j) = a(i, j);
  Matrix<T> x = to_matrix(b.view());
  trsm_left<T>(Uplo::Lower, Diag::Unit, l, x.view());
  EXPECT_LE(test::dense_relres<T>(l, x, b),
            R(std::is_same_v<R, float> ? 1e-4 : 1e-12));

  // Upper non-unit solve.
  Matrix<T> u(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) u(i, j) = a(i, j);
  Matrix<T> y = to_matrix(b.view());
  trsm_left<T>(Uplo::Upper, Diag::NonUnit, u, y.view());
  EXPECT_LE(test::dense_relres<T>(u, y, b),
            R(std::is_same_v<R, float> ? 1e-3 : 1e-11));
}

TYPED_TEST(LapackTyped, QrOrthonormalAndReconstructs) {
  using T = TypeParam;
  using R = real_t<T>;
  const R tol = std::is_same_v<R, float> ? R(1e-4) : R(1e-12);
  for (auto [m, n] : {std::pair<index_t, index_t>{40, 12},
                      {12, 12},
                      {15, 40}}) {
    Matrix<T> a = random_matrix<T>(m, n, 31 + m);
    QRFactors<T> qr = geqrf<T>(a);
    Matrix<T> q = thin_q(qr);
    Matrix<T> r = r_factor(qr);
    const index_t k = std::min(m, n);
    // Q^H Q = I.
    Matrix<T> qtq(k, k);
    gemm<T>(Op::C, Op::N, T{1}, q, q, T{0}, qtq.view());
    EXPECT_LE(rel_error(qtq, Matrix<T>::identity(k)), tol);
    // Q R = A.
    Matrix<T> rec(m, n);
    gemm<T>(Op::N, Op::N, T{1}, q, r, T{0}, rec.view());
    EXPECT_LE(rel_error(rec, a), tol);
  }
}

TYPED_TEST(LapackTyped, Geqp3RevealsRank) {
  using T = TypeParam;
  using R = real_t<T>;
  // Build an exactly rank-5 matrix.
  const index_t m = 30, n = 25, r = 5;
  Matrix<T> u = random_matrix<T>(m, r, 41);
  Matrix<T> v = random_matrix<T>(n, r, 42);
  Matrix<T> a(m, n);
  gemm<T>(Op::N, Op::C, T{1}, u, v, T{0}, a.view());
  CPQRFactors<T> qp = geqp3<T>(a, R(1e-5), -1);
  EXPECT_EQ(qp.rank, r);
}

TYPED_TEST(LapackTyped, JacobiSvdReconstructs) {
  using T = TypeParam;
  using R = real_t<T>;
  const R tol = std::is_same_v<R, float> ? R(2e-4) : R(1e-12);
  for (auto [m, n] : {std::pair<index_t, index_t>{20, 10},
                      {10, 20},
                      {12, 12}}) {
    Matrix<T> a = random_matrix<T>(m, n, 51 + m);
    SVDResult<T> svd = jacobi_svd<T>(a);
    const index_t k = std::min(m, n);
    // Descending singular values.
    for (index_t i = 1; i < k; ++i) EXPECT_GE(svd.s[i - 1], svd.s[i]);
    // U S V^H = A.
    Matrix<T> us = to_matrix(svd.u.view());
    for (index_t j = 0; j < k; ++j)
      scale_inplace(T{svd.s[j]}, us.view().block(0, j, m, 1));
    Matrix<T> rec(m, n);
    gemm<T>(Op::N, Op::C, T{1}, us, svd.v, T{0}, rec.view());
    EXPECT_LE(rel_error(rec, a), tol);
  }
}

TEST(Lapack, JacobiSvdMatchesFrobenius) {
  Matrix<double> a = random_matrix<double>(15, 8, 61);
  SVDResult<double> svd = jacobi_svd<double>(a);
  double s2 = 0;
  for (double s : svd.s) s2 += s * s;
  EXPECT_NEAR(std::sqrt(s2), norm_fro(a), 1e-12);
}

TEST(Lapack, LaswpRoundTrip) {
  Matrix<double> a = random_matrix<double>(6, 3, 71);
  Matrix<double> b = to_matrix(a.view());
  std::vector<index_t> ipiv = {3, 4, 2, 5, 4, 5};
  laswp(b.view(), ipiv.data(), 6, true);
  laswp(b.view(), ipiv.data(), 6, false);
  EXPECT_LE(rel_error(a, b), 1e-15);
}

}  // namespace
}  // namespace hodlrx
