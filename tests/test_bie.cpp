#include <gtest/gtest.h>

#include "bie/helmholtz.hpp"
#include "bie/laplace.hpp"
#include "core/factorization.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using bie::BlobContour;
using bie::CircleContour;
using bie::ContourDiscretization;
using bie::Point2;
using test::rel_error;

TEST(Contour, CircleGeometry) {
  CircleContour c(2.0);
  ContourDiscretization d = bie::discretize(c, 64);
  for (index_t i = 0; i < d.n; ++i) {
    EXPECT_NEAR(std::hypot(d.x[i].x, d.x[i].y), 2.0, 1e-13);
    EXPECT_NEAR(d.speed[i], 2.0, 1e-13);
    EXPECT_NEAR(d.kappa[i], 0.5, 1e-13);
    // Outward normal: parallel to the position vector.
    EXPECT_NEAR(d.nrm[i].x * d.x[i].y - d.nrm[i].y * d.x[i].x, 0.0, 1e-12);
    EXPECT_GT(d.nrm[i].x * d.x[i].x + d.nrm[i].y * d.x[i].y, 0.0);
  }
  // Total arc length = 4 pi.
  double len = 0;
  for (double w : d.weight) len += w;
  EXPECT_NEAR(len, 4 * 3.14159265358979323846, 1e-12);
}

TEST(Contour, BlobIsSmoothAndClosed) {
  BlobContour c;
  // Derivative consistency: finite differences match analytic derivatives.
  for (double t : {0.1, 1.0, 2.5, 4.0, 6.0}) {
    const double h = 1e-6;
    auto p0 = c.point(t - h), p1 = c.point(t + h);
    auto d = c.dpoint(t);
    EXPECT_NEAR((p1.x - p0.x) / (2 * h), d.x, 1e-6);
    EXPECT_NEAR((p1.y - p0.y) / (2 * h), d.y, 1e-6);
    auto d0 = c.dpoint(t - h), d1 = c.dpoint(t + h);
    auto dd = c.ddpoint(t);
    EXPECT_NEAR((d1.x - d0.x) / (2 * h), dd.x, 1e-5);
    EXPECT_NEAR((d1.y - d0.y) / (2 * h), dd.y, 1e-5);
  }
  // Spans roughly [-2.3, 2.3] x [-1.7, 1.7] like the paper's Fig. 6.
  ContourDiscretization d = bie::discretize(c, 512);
  double xmax = 0, ymax = 0;
  for (auto& p : d.x) {
    xmax = std::max(xmax, std::abs(p.x));
    ymax = std::max(ymax, std::abs(p.y));
  }
  EXPECT_NEAR(xmax, 2.3, 0.1);
  EXPECT_NEAR(ymax, 1.7, 0.2);
}

TEST(Special, WronskianIdentity) {
  // J1(x) Y0(x) - J0(x) Y1(x) = 2 / (pi x): an independent accuracy check.
  const double pi = 3.14159265358979323846;
  for (double x : {0.1, 0.5, 1.0, 5.0, 11.9, 12.1, 35.0, 100.0, 460.0}) {
    const double w = bie::bessel_j1(x) * bie::bessel_y0(x) -
                     bie::bessel_j0(x) * bie::bessel_y1(x);
    EXPECT_NEAR(w, 2 / (pi * x), 1e-11 * std::abs(2 / (pi * x)) + 1e-14)
        << "x=" << x;
  }
}

TEST(Special, SmallArgumentSeries) {
  // J0(x) = 1 - x^2/4 + x^4/64 - ... for small x.
  for (double x : {1e-3, 1e-2, 0.1}) {
    const double series = 1 - x * x / 4 + x * x * x * x / 64;
    EXPECT_NEAR(bie::bessel_j0(x), series, 1e-8 * std::abs(series));
  }
  EXPECT_NEAR(bie::bessel_j1(0.0), 0.0, 1e-15);
}

TEST(Special, DenseGridAgainstLibstdcxx) {
  // The fast three-regime implementation must agree with libstdc++ across
  // all regime boundaries (series / Chebyshev / asymptotic).
  double max_rel = 0;
  for (double x = 0.05; x < 500.0; x *= 1.013) {
    const double refs[4] = {std::cyl_bessel_j(0.0, x),
                            std::cyl_bessel_j(1.0, x),
                            std::cyl_neumann(0.0, x),
                            std::cyl_neumann(1.0, x)};
    const double ours[4] = {bie::bessel_j0(x), bie::bessel_j1(x),
                            bie::bessel_y0(x), bie::bessel_y1(x)};
    for (int f = 0; f < 4; ++f) {
      // Relative where the function is O(1), absolute near the zeros.
      const double denom = std::max(std::abs(refs[f]), 0.1);
      max_rel = std::max(max_rel, std::abs(ours[f] - refs[f]) / denom);
    }
  }
  // ~1e-12 at x ~ 400: both codes sit on asymptotic expansions there and
  // the reduced phase x - (2n+1)pi/4 itself carries ~x*eps absolute error.
  EXPECT_LE(max_rel, 5e-12);
}

TEST(Special, HankelCombination) {
  const auto h0 = bie::hankel1_0(2.5);
  EXPECT_NEAR(h0.real(), bie::bessel_j0(2.5), 1e-15);
  EXPECT_NEAR(h0.imag(), bie::bessel_y0(2.5), 1e-15);
}

TEST(Quadrature, KapurRokhlinWeightTables) {
  EXPECT_EQ(bie::kapur_rokhlin_weights(2).size(), 2u);
  EXPECT_EQ(bie::kapur_rokhlin_weights(6).size(), 6u);
  EXPECT_EQ(bie::kapur_rokhlin_weights(10).size(), 10u);
  EXPECT_THROW(bie::kapur_rokhlin_weights(4), Error);
  // Each correction sums to ~0.5 - gamma-ish constants; sanity: order-2
  // weights sum to 0.5.
  const auto& g2 = bie::kapur_rokhlin_weights(2);
  EXPECT_NEAR(g2[0] + g2[1], 0.5, 1e-12);
}

TEST(Quadrature, RuleMultipliers) {
  bie::KapurRokhlinRule rule(6, 100);
  EXPECT_EQ(rule.multiplier(10, 10), 0.0);  // singular node excluded
  EXPECT_NEAR(rule.multiplier(10, 11),
              1.0 + bie::kapur_rokhlin_weights(6)[0], 1e-15);
  EXPECT_NEAR(rule.multiplier(10, 4),
              1.0 + bie::kapur_rokhlin_weights(6)[5], 1e-15);
  EXPECT_EQ(rule.multiplier(10, 40), 1.0);
  // Periodic wrap: nodes 0 and 99 are neighbors.
  EXPECT_NEAR(rule.multiplier(0, 99),
              1.0 + bie::kapur_rokhlin_weights(6)[0], 1e-15);
}

TEST(Quadrature, KapurRokhlinIntegratesLogSingularity) {
  // int_0^{2pi} log|2 sin(t/2)| f(t) dt with f = 1 equals 0; test the rule
  // against a known value with f(t) = cos t: integral = -pi.
  const double pi = 3.14159265358979323846;
  auto integrand = [&](double t) {
    return std::log(std::abs(2 * std::sin(t / 2)));
  };
  for (int order : {2, 6, 10}) {
    double prev_err = 1e9;
    for (index_t n : {64, 128, 256}) {
      bie::KapurRokhlinRule rule(order, n);
      const double h = 2 * pi / n;
      double acc = 0;
      for (index_t j = 1; j < n; ++j)  // singular node t=0 excluded
        acc += h * rule.multiplier(0, j) * integrand(h * j) * std::cos(h * j);
      const double err = std::abs(acc - (-pi));
      EXPECT_LT(err, prev_err * 0.9) << "order " << order << " n " << n;
      prev_err = err;
    }
    // Order-10 and order-6 rules should be far more accurate at n=256.
    if (order >= 6) {
      EXPECT_LT(prev_err, 1e-7);
    }
  }
}

TEST(LaplaceBie, ExactSolutionOnBlob) {
  // Charge inside the contour; the completed double-layer rep must recover
  // its field in the exterior.
  BlobContour contour;
  ContourDiscretization d = bie::discretize(contour, 800);
  const Point2 x0{0.2, -0.1};  // inside
  bie::LaplaceExteriorBIE<double> gen(d, {0.0, 0.0});

  Matrix<double> a = materialize(gen);
  Matrix<double> f(d.n, 1);
  for (index_t i = 0; i < d.n; ++i)
    f(i, 0) = bie::laplace_greens(d.x[i], x0);
  Matrix<double> sigma = dense_solve<double>(a, f);

  const std::vector<Point2> targets = {{4.0, 0.5}, {-3.5, 2.0}, {0.0, 5.0}};
  auto u = bie::laplace_exterior_potential<double>(d, {0.0, 0.0},
                                                   sigma.data(), targets);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const double exact = bie::laplace_greens(targets[t], x0);
    EXPECT_NEAR(u[t], exact, 1e-8) << "target " << t;
  }
}

TEST(LaplaceBie, HodlrSolveMatchesDense) {
  BlobContour contour;
  ContourDiscretization d = bie::discretize(contour, 1024);
  bie::LaplaceExteriorBIE<double> gen(d, {0.0, 0.0});
  ClusterTree tree = ClusterTree::uniform(d.n, 64);
  BuildOptions bopt;
  bopt.tol = 1e-10;
  HodlrMatrix<double> h = HodlrMatrix<double>::build(gen, tree, bopt);
  auto fct = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  Matrix<double> b = random_matrix<double>(d.n, 1, 401);
  Matrix<double> x = fct.solve(b);
  // Residual vs the true (uncompressed) operator.
  Matrix<double> a = materialize(gen);
  EXPECT_LE(test::dense_relres<double>(a, x, b), 1e-7);
}

TEST(HelmholtzBie, ExactSolutionModerateFrequency) {
  // kappa = 20 keeps the test fast; the bench uses the paper's kappa = 100.
  const double kappa = 20.0, eta = 20.0;
  BlobContour contour;
  ContourDiscretization d = bie::discretize(contour, 1200);
  using C = std::complex<double>;
  bie::HelmholtzCombinedBIE<C> gen(d, kappa, eta, 6);
  const Point2 x0{-0.3, 0.15};

  Matrix<C> a = materialize(gen);
  Matrix<C> f(d.n, 1);
  for (index_t i = 0; i < d.n; ++i)
    f(i, 0) = bie::helmholtz_fundamental(kappa, d.x[i], x0);
  Matrix<C> sigma = dense_solve<C>(a, f);

  const std::vector<Point2> targets = {{4.5, 1.0}, {-4.0, -2.0}, {1.0, 6.0}};
  auto u = bie::helmholtz_potential<C>(d, kappa, eta, sigma.data(), targets);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const C exact = bie::helmholtz_fundamental(kappa, targets[t], x0);
    // The 6th-order Kapur-Rokhlin rule carries large correction constants;
    // a few-1e-6 ABSOLUTE field accuracy at this resolution is the expected
    // regime (the convergence-order test below checks the rate). The
    // absolute term dominates for distant targets where the field decays.
    EXPECT_LE(std::abs(u[t] - exact), 1e-4 * std::abs(exact) + 5e-6)
        << "target " << t;
  }
}

TEST(HelmholtzBie, FieldErrorConvergesWithN) {
  const double kappa = 20.0, eta = 20.0;
  BlobContour contour;
  const Point2 x0{-0.3, 0.15};
  const std::vector<Point2> target = {{4.5, 1.0}};
  using C = std::complex<double>;
  double prev = 1e9;
  for (index_t n : {600, 1200}) {
    ContourDiscretization d = bie::discretize(contour, n);
    bie::HelmholtzCombinedBIE<C> gen(d, kappa, eta, 6);
    Matrix<C> a = materialize(gen);
    Matrix<C> f(d.n, 1);
    for (index_t i = 0; i < d.n; ++i)
      f(i, 0) = bie::helmholtz_fundamental(kappa, d.x[i], x0);
    Matrix<C> sigma = dense_solve<C>(a, f);
    auto u = bie::helmholtz_potential<C>(d, kappa, eta, sigma.data(), target);
    const double err =
        std::abs(u[0] - bie::helmholtz_fundamental(kappa, target[0], x0));
    EXPECT_LT(err, prev / 8) << "n=" << n;  // at least ~3rd-order observed
    prev = err;
  }
}

TEST(HelmholtzBie, KapurRokhlinBeatsPuncturedTrapezoid) {
  // Same solve with the 2nd-order rule must be clearly less accurate than
  // the 6th-order rule at equal N (the reason the paper uses order 6).
  const double kappa = 15.0, eta = 15.0;
  CircleContour contour(1.0);
  const Point2 x0{0.1, 0.2};
  const std::vector<Point2> target = {{3.0, 1.5}};
  using C = std::complex<double>;
  double errs[2];
  int idx = 0;
  for (int order : {2, 6}) {
    ContourDiscretization d = bie::discretize(contour, 600);
    bie::HelmholtzCombinedBIE<C> gen(d, kappa, eta, order);
    Matrix<C> a = materialize(gen);
    Matrix<C> f(d.n, 1);
    for (index_t i = 0; i < d.n; ++i)
      f(i, 0) = bie::helmholtz_fundamental(kappa, d.x[i], x0);
    Matrix<C> sigma = dense_solve<C>(a, f);
    auto u = bie::helmholtz_potential<C>(d, kappa, eta, sigma.data(), target);
    errs[idx++] =
        std::abs(u[0] - bie::helmholtz_fundamental(kappa, target[0], x0));
  }
  EXPECT_LT(errs[1], errs[0] * 1e-2);
}

}  // namespace
}  // namespace hodlrx
