#include <gtest/gtest.h>

#include "kernels/kernels.hpp"
#include "kernels/rpy.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

TEST(Kernels, GaussianBasics) {
  PointSet pts(1, 3);
  pts.coord(0, 0) = 0;
  pts.coord(1, 0) = 1;
  pts.coord(2, 0) = 2;
  GaussianKernel<double> k(std::move(pts), 1.0, 0.5);
  EXPECT_NEAR(k.entry(0, 0), 1.5, 1e-15);              // diag shift
  EXPECT_NEAR(k.entry(0, 1), std::exp(-0.5), 1e-15);
  EXPECT_NEAR(k.entry(0, 2), std::exp(-2.0), 1e-15);
  EXPECT_EQ(k.entry(0, 1), k.entry(1, 0));             // symmetry
}

TEST(Kernels, FillRowMatchesEntry) {
  PointSet pts = uniform_random_points(50, 2, -1, 1, 7);
  Matern32Kernel<double> k(std::move(pts), 0.7);
  std::vector<double> row(50);
  k.fill_row(13, 0, 50, row.data());
  for (index_t j = 0; j < 50; ++j) EXPECT_EQ(row[j], k.entry(13, j));
  std::vector<double> col(20);
  k.fill_col(31, 10, 30, col.data());
  for (index_t i = 0; i < 20; ++i) EXPECT_EQ(col[i], k.entry(10 + i, 31));
}

TEST(Kernels, MaternLimits) {
  PointSet pts(1, 2);
  pts.coord(0, 0) = 0;
  pts.coord(1, 0) = 0.3;
  Matern52Kernel<double> k52(pts, 1.0);
  Matern32Kernel<double> k32(pts, 1.0);
  ExponentialKernel<double> ke(pts, 1.0);
  InverseMultiquadricKernel<double> kimq(std::move(pts), 1.0);
  // All are 1 on the diagonal and decreasing in distance.
  EXPECT_NEAR(k52.entry(0, 0), 1.0, 1e-15);
  EXPECT_NEAR(k32.entry(0, 0), 1.0, 1e-15);
  EXPECT_NEAR(ke.entry(0, 0), 1.0, 1e-15);
  EXPECT_NEAR(kimq.entry(0, 0), 1.0, 1e-15);
  EXPECT_LT(k52.entry(0, 1), 1.0);
  EXPECT_GT(k52.entry(0, 1), 0.0);
}

TEST(Rpy1D, PaperConfiguration) {
  // Sec. IV-A: uniform points in [-1, 1], k = T = eta = 1, a = |r|_min / 2.
  PointSet pts = uniform_random_points(200, 1, -1, 1, 11);
  const double rmin = min_pairwise_distance(pts);
  RpyKernel1D<double> k(std::move(pts), {});
  EXPECT_NEAR(k.params().a, rmin / 2, 1e-15);
  // Diagonal: kT / (6 pi eta a).
  const double pi = 3.14159265358979323846;
  EXPECT_NEAR(k.entry(7, 7), 1.0 / (6 * pi * k.params().a), 1e-12);
  // Symmetry.
  EXPECT_NEAR(k.entry(3, 90), k.entry(90, 3), 1e-15);
}

TEST(Rpy1D, FarFieldFormula) {
  PointSet pts(1, 2);
  pts.coord(0, 0) = 0;
  pts.coord(1, 0) = 1.0;
  RpyParams prm;
  prm.a = 0.1;
  RpyKernel1D<double> k(std::move(pts), prm);
  const double pi = 3.14159265358979323846;
  // r = 1 >= 2a: kT/(8 pi eta r) (2 - 4a^2/(3r^2)).
  const double expect = 1.0 / (8 * pi) * (2.0 - 4 * 0.01 / 3.0);
  EXPECT_NEAR(k.entry(0, 1), expect, 1e-14);
}

TEST(Rpy1D, NearFieldContinuity) {
  // The RPY kernel is continuous at r = 2a.
  PointSet pts(1, 3);
  RpyParams prm;
  prm.a = 0.25;
  pts.coord(0, 0) = 0;
  pts.coord(1, 0) = 0.5 - 1e-9;  // just inside
  pts.coord(2, 0) = 0.5 + 1e-9;  // just outside
  RpyKernel1D<double> k(std::move(pts), prm);
  EXPECT_NEAR(k.entry(0, 1), k.entry(0, 2), 1e-7);
}

TEST(Rpy3D, TensorSymmetries) {
  PointSet pts = uniform_random_points(20, 3, -1, 1, 13);
  RpyKernel3D<double> k(std::move(pts), {});
  EXPECT_EQ(k.rows(), 60);
  // Global symmetry A(i,j) = A(j,i) (RPY tensor is symmetric).
  for (index_t i : {0, 5, 17, 43}) {
    for (index_t j : {2, 11, 30, 59}) {
      EXPECT_NEAR(k.entry(i, j), k.entry(j, i), 1e-14);
    }
  }
  // Self block is (kT/(6 pi eta a)) I.
  EXPECT_GT(k.entry(0, 0), 0);
  EXPECT_EQ(k.entry(0, 1), 0.0);
  EXPECT_EQ(k.entry(0, 2), 0.0);
}

TEST(Rpy3D, TreeRespectsParticleBoundaries) {
  PointSet pts = uniform_random_points(64, 3, -1, 1, 17);
  Rpy3DTree t = build_rpy3d_tree(pts, 8);
  t.tree.validate();
  EXPECT_EQ(t.tree.n(), 3 * 64);
  for (index_t nu = 0; nu < t.tree.num_nodes(); ++nu) {
    EXPECT_EQ(t.tree.node(nu).begin % 3, 0);
    EXPECT_EQ(t.tree.node(nu).end % 3, 0);
  }
}

TEST(Kernels, UniformPointsInRange) {
  PointSet pts = uniform_random_points(1000, 2, -3, 5, 19);
  EXPECT_EQ(pts.size(), 1000);
  for (index_t i = 0; i < pts.size(); ++i)
    for (index_t d = 0; d < 2; ++d) {
      EXPECT_GE(pts.coord(i, d), -3.0);
      EXPECT_LE(pts.coord(i, d), 5.0);
    }
}

TEST(Kernels, MaterializeMatchesEntries) {
  PointSet pts = uniform_random_points(30, 1, -1, 1, 23);
  GaussianKernel<double> k(std::move(pts), 0.4);
  Matrix<double> a = materialize(k);
  for (index_t j = 0; j < 30; ++j)
    for (index_t i = 0; i < 30; ++i) EXPECT_EQ(a(i, j), k.entry(i, j));
}

}  // namespace
}  // namespace hodlrx
