#include <gtest/gtest.h>

#include "core/hodlr.hpp"
#include "kernels/kernels.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using test::rel_error;

template <typename T>
class HodlrTyped : public ::testing::Test {};
using HodlrTypes = ::testing::Types<double, std::complex<double>>;
TYPED_TEST_SUITE(HodlrTyped, HodlrTypes);

TYPED_TEST(HodlrTyped, BuildApproximatesDense) {
  using T = TypeParam;
  for (index_t n : {64, 100, 256}) {
    Matrix<T> a = test::smooth_test_matrix<T>(n, 70 + n);
    ClusterTree tree = ClusterTree::uniform(n, 16);
    BuildOptions opt;
    opt.tol = 1e-10;
    HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, opt);
    EXPECT_LE(rel_error(h.to_dense(), a), 1e-8) << "n=" << n;
  }
}

TYPED_TEST(HodlrTyped, ApplyMatchesDense) {
  using T = TypeParam;
  const index_t n = 200, nrhs = 3;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 77);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions opt;
  opt.tol = 1e-10;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, opt);
  Matrix<T> x = random_matrix<T>(n, nrhs, 78);
  Matrix<T> y(n, nrhs), y_ref(n, nrhs);
  h.apply(x, y.view());
  gemm<T>(Op::N, Op::N, T{1}, a, x, T{0}, y_ref.view());
  EXPECT_LE(rel_error(y, y_ref), 1e-8);
}

TEST(Hodlr, GaussianKernelRanksAreSmall) {
  const index_t n = 512;
  PointSet pts = uniform_random_points(n, 1, -1, 1, 5);
  GeometricTree g = build_kd_tree(pts, 64);
  GaussianKernel<double> k(std::move(g.points), 0.5, 1e-2);
  BuildOptions opt;
  opt.tol = 1e-10;
  HodlrMatrix<double> h = HodlrMatrix<double>::build(k, g.tree, opt);
  // 1-D Gaussian kernel blocks have tiny numerical rank.
  EXPECT_LE(h.max_rank(), 30);
  const auto ladder = h.rank_ladder();
  EXPECT_EQ(static_cast<index_t>(ladder.size()), g.tree.depth());
}

TEST(Hodlr, DepthZeroIsDense) {
  const index_t n = 24;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 80);
  ClusterTree tree = ClusterTree::with_depth(n, 0);
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, {});
  EXPECT_LE(rel_error(h.to_dense(), a), 1e-14);
  EXPECT_EQ(h.max_rank(), 0);
}

TEST(Hodlr, BlockDiagonalHasRankZero) {
  const index_t n = 64;
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = 2.0 + i;
  ClusterTree tree = ClusterTree::uniform(n, 16);
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, {});
  EXPECT_EQ(h.max_rank(), 0);
  EXPECT_LE(rel_error(h.to_dense(), a), 1e-15);
}

TEST(Hodlr, NonPowerOfTwoSizes) {
  for (index_t n : {97, 130, 255}) {
    Matrix<double> a = test::smooth_test_matrix<double>(n, 90 + n);
    ClusterTree tree = ClusterTree::uniform(n, 20);
    BuildOptions opt;
    opt.tol = 1e-10;
    HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, opt);
    EXPECT_LE(rel_error(h.to_dense(), a), 1e-8) << n;
  }
}

TEST(Hodlr, BytesIsPlausible) {
  const index_t n = 256;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 99);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions opt;
  opt.tol = 1e-8;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, opt);
  EXPECT_GT(h.bytes(), 0u);
  EXPECT_LT(h.bytes(), a.bytes());  // compression actually compresses
}

TEST(Hodlr, MismatchedTreeThrows) {
  Matrix<double> a = test::smooth_test_matrix<double>(32, 1);
  ClusterTree tree = ClusterTree::uniform(64, 16);
  EXPECT_THROW(HodlrMatrix<double>::build_from_dense(a, tree, {}), Error);
}

}  // namespace
}  // namespace hodlrx
