#include <gtest/gtest.h>

#include "batched/batched_blas.hpp"
#include "bie/laplace.hpp"
#include "core/factorization.hpp"
#include "core/hodlr.hpp"
#include "core/packed.hpp"
#include "kernels/kernels.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using test::rel_error;

template <typename T>
class HodlrTyped : public ::testing::Test {};
using HodlrTypes = ::testing::Types<double, std::complex<double>>;
TYPED_TEST_SUITE(HodlrTyped, HodlrTypes);

TYPED_TEST(HodlrTyped, BuildApproximatesDense) {
  using T = TypeParam;
  for (index_t n : {64, 100, 256}) {
    Matrix<T> a = test::smooth_test_matrix<T>(n, 70 + n);
    ClusterTree tree = ClusterTree::uniform(n, 16);
    BuildOptions opt;
    opt.tol = 1e-10;
    HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, opt);
    EXPECT_LE(rel_error(h.to_dense(), a), 1e-8) << "n=" << n;
  }
}

TYPED_TEST(HodlrTyped, ApplyMatchesDense) {
  using T = TypeParam;
  const index_t n = 200, nrhs = 3;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 77);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions opt;
  opt.tol = 1e-10;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, opt);
  Matrix<T> x = random_matrix<T>(n, nrhs, 78);
  Matrix<T> y(n, nrhs), y_ref(n, nrhs);
  h.apply(x, y.view());
  gemm<T>(Op::N, Op::N, T{1}, a, x, T{0}, y_ref.view());
  EXPECT_LE(rel_error(y, y_ref), 1e-8);
}

TEST(Hodlr, GaussianKernelRanksAreSmall) {
  const index_t n = 512;
  PointSet pts = uniform_random_points(n, 1, -1, 1, 5);
  GeometricTree g = build_kd_tree(pts, 64);
  GaussianKernel<double> k(std::move(g.points), 0.5, 1e-2);
  BuildOptions opt;
  opt.tol = 1e-10;
  HodlrMatrix<double> h = HodlrMatrix<double>::build(k, g.tree, opt);
  // 1-D Gaussian kernel blocks have tiny numerical rank.
  EXPECT_LE(h.max_rank(), 30);
  const auto ladder = h.rank_ladder();
  EXPECT_EQ(static_cast<index_t>(ladder.size()), g.tree.depth());
}

TEST(Hodlr, DepthZeroIsDense) {
  const index_t n = 24;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 80);
  ClusterTree tree = ClusterTree::with_depth(n, 0);
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, {});
  EXPECT_LE(rel_error(h.to_dense(), a), 1e-14);
  EXPECT_EQ(h.max_rank(), 0);
}

TEST(Hodlr, BlockDiagonalHasRankZero) {
  const index_t n = 64;
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = 2.0 + i;
  ClusterTree tree = ClusterTree::uniform(n, 16);
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, {});
  EXPECT_EQ(h.max_rank(), 0);
  EXPECT_LE(rel_error(h.to_dense(), a), 1e-15);
}

TEST(Hodlr, NonPowerOfTwoSizes) {
  for (index_t n : {97, 130, 255}) {
    Matrix<double> a = test::smooth_test_matrix<double>(n, 90 + n);
    ClusterTree tree = ClusterTree::uniform(n, 20);
    BuildOptions opt;
    opt.tol = 1e-10;
    HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, opt);
    EXPECT_LE(rel_error(h.to_dense(), a), 1e-8) << n;
  }
}

TEST(Hodlr, BytesIsPlausible) {
  const index_t n = 256;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 99);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions opt;
  opt.tol = 1e-8;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, opt);
  EXPECT_GT(h.bytes(), 0u);
  EXPECT_LT(h.bytes(), a.bytes());  // compression actually compresses
}

/// The generator-backed batched build: a kernel-defined BIE problem (paper
/// Tables 3-5 class) compressed with Compressor::kRsvdBatched straight from
/// the MatrixGenerator must (a) never materialize the full dense matrix —
/// blocks are pulled tile-by-tile — (b) actually run the batched QR tail,
/// and (c) produce the same factors (and hence the same solve residual) as
/// the dense-view build, which uses identical sketch seeds.
TEST(Hodlr, GeneratorRsvdBatchedMatchesDenseViewBuild) {
  const index_t n = 512;
  bie::BlobContour contour;
  bie::ContourDiscretization d = bie::discretize(contour, n);
  bie::LaplaceExteriorBIE<double> gen(d, {0.0, 0.0});
  ClusterTree tree = ClusterTree::uniform(n, 64);
  BuildOptions opt;
  opt.compressor = Compressor::kRsvdBatched;
  opt.max_rank = 48;
  opt.tol = 1e-10;
  opt.rsvd_power_iterations = 2;

  generator_stats::reset();
  qr_stats::reset();
  HodlrMatrix<double> h = HodlrMatrix<double>::build(gen, tree, opt);
  EXPECT_EQ(generator_stats::full_materializations(), 0u)
      << "generator-backed batched build must never form the dense matrix";
  EXPECT_GE(qr_stats::geqrf_batched_sweeps(), 1u)
      << "the compression tail must run through the batched QR engine";
  EXPECT_EQ(qr_stats::geqrf_batched_sweeps(), qr_stats::thin_q_batched_sweeps());

  // The dense-view build sees identical block entries and sketch seeds, so
  // the compressed operators must agree to roundoff.
  Matrix<double> a = materialize(gen);
  HodlrMatrix<double> hd = HodlrMatrix<double>::build_from_dense(a, tree, opt);
  EXPECT_LE(rel_error(h.to_dense(), hd.to_dense()), 1e-9);

  // And so must the solve residuals against the true (uncompressed) operator.
  auto fg =
      HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  auto fd =
      HodlrFactorization<double>::factor(PackedHodlr<double>::pack(hd), {});
  Matrix<double> b = random_matrix<double>(n, 1, 4242);
  Matrix<double> xg = fg.solve(b);
  Matrix<double> xd = fd.solve(b);
  const double rg = test::dense_relres<double>(a, xg, b);
  const double rd = test::dense_relres<double>(a, xd, b);
  EXPECT_LE(rg, 1e-7);
  EXPECT_NEAR(rg, rd, 1e-9);
}

/// Non-power-of-two problems hit the non-uniform fallback of the generator
/// path: still no dense materialization, and the compressed operator must
/// approximate the kernel matrix.
TEST(Hodlr, GeneratorRsvdBatchedNonUniformLevels) {
  const index_t n = 300;
  bie::BlobContour contour;
  bie::ContourDiscretization d = bie::discretize(contour, n);
  bie::LaplaceExteriorBIE<double> gen(d, {0.0, 0.0});
  ClusterTree tree = ClusterTree::uniform(n, 40);
  BuildOptions opt;
  opt.compressor = Compressor::kRsvdBatched;
  opt.max_rank = 48;
  opt.tol = 1e-10;
  opt.rsvd_power_iterations = 2;
  generator_stats::reset();
  HodlrMatrix<double> h = HodlrMatrix<double>::build(gen, tree, opt);
  EXPECT_EQ(generator_stats::full_materializations(), 0u);
  Matrix<double> a = materialize(gen);
  EXPECT_LE(rel_error(h.to_dense(), a), 1e-7);
}

TEST(Hodlr, MismatchedTreeThrows) {
  Matrix<double> a = test::smooth_test_matrix<double>(32, 1);
  ClusterTree tree = ClusterTree::uniform(64, 16);
  EXPECT_THROW(HodlrMatrix<double>::build_from_dense(a, tree, {}), Error);
}

}  // namespace
}  // namespace hodlrx
