#include <gtest/gtest.h>

#include "baseline/dense_solver.hpp"
#include "baseline/recursive_solver.hpp"
#include "core/factorization.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using test::rel_error;

template <typename T>
class BaselineTyped : public ::testing::Test {};
using BaselineTypes = ::testing::Types<double, std::complex<double>>;
TYPED_TEST_SUITE(BaselineTyped, BaselineTypes);

TYPED_TEST(BaselineTyped, RecursiveSolverMatchesDense) {
  using T = TypeParam;
  for (index_t n : {64, 150, 256}) {
    Matrix<T> a = test::smooth_test_matrix<T>(n, 201 + n);
    ClusterTree tree = ClusterTree::uniform(n, 20);
    BuildOptions bopt;
    bopt.tol = 1e-11;
    HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
    RecursiveSolver<T> s = RecursiveSolver<T>::factor(h);
    Matrix<T> b = random_matrix<T>(n, 3, 211 + n);
    Matrix<T> x = s.solve(b);
    EXPECT_LE(test::dense_relres<T>(a, x, b), 1e-8) << "n=" << n;
  }
}

TEST(Baseline, RecursiveParallelMatchesSerialExecution) {
  using T = double;
  const index_t n = 400;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 221);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  RecursiveSolver<T>::Options par, ser;
  ser.parallel = false;
  RecursiveSolver<T> sp = RecursiveSolver<T>::factor(h, par);
  RecursiveSolver<T> ss = RecursiveSolver<T>::factor(h, ser);
  Matrix<T> b = random_matrix<T>(n, 2, 223);
  EXPECT_LE(rel_error(sp.solve(b), ss.solve(b)), 1e-12);
}

TEST(Baseline, ThreeImplementationsAgree) {
  // Recursive per-node solver, serial packed engine, batched packed engine:
  // three independent code paths, one factorization problem.
  using T = double;
  const index_t n = 320;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 231);
  ClusterTree tree = ClusterTree::uniform(n, 24);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  PackedHodlr<T> p = PackedHodlr<T>::pack(h);
  Matrix<T> b = random_matrix<T>(n, 2, 233);

  RecursiveSolver<T> rec = RecursiveSolver<T>::factor(h);
  FactorOptions so;
  so.mode = ExecMode::kSerial;
  auto fs = HodlrFactorization<T>::factor(p, so);
  auto fb = HodlrFactorization<T>::factor(p, {});

  Matrix<T> x1 = rec.solve(b);
  Matrix<T> x2 = fs.solve(b);
  Matrix<T> x3 = fb.solve(b);
  EXPECT_LE(rel_error(x1, x2), 1e-10);
  EXPECT_LE(rel_error(x2, x3), 1e-12);
}

TEST(Baseline, DenseSolverResidual) {
  using T = double;
  const index_t n = 120;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 241);
  DenseSolver<T> s = DenseSolver<T>::factor(a);
  Matrix<T> b = random_matrix<T>(n, 2, 243);
  Matrix<T> x = s.solve(b);
  EXPECT_LE(test::dense_relres<T>(a, x, b), 1e-12);
  EXPECT_EQ(s.n(), n);
  EXPECT_GT(s.bytes(), static_cast<std::size_t>(n * n * 8));
}

TEST(Baseline, DenseSolverFromGenerator) {
  using T = double;
  Matrix<T> a = test::smooth_test_matrix<T>(60, 251);
  DenseGenerator<T> g(to_matrix(a.view()));
  DenseSolver<T> s = DenseSolver<T>::factor_generator(g);
  Matrix<T> b = random_matrix<T>(60, 1, 253);
  EXPECT_LE(test::dense_relres<T>(a, s.solve(b), b), 1e-12);
}

}  // namespace
}  // namespace hodlrx
