#include <gtest/gtest.h>

#include "batched/batched_blas.hpp"
#include "common/gemm_kernel.hpp"
#include "core/hodlr.hpp"
#include "lowrank/aca.hpp"
#include "lowrank/id.hpp"
#include "lowrank/recompress.hpp"
#include "lowrank/rsvd.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using test::rel_error;

template <typename T>
class LowrankTyped : public ::testing::Test {};
using LowrankTypes = ::testing::Types<double, std::complex<double>>;
TYPED_TEST_SUITE(LowrankTyped, LowrankTypes);

TYPED_TEST(LowrankTyped, AcaReachesTolerance) {
  using T = TypeParam;
  // Off-diagonal block of a smooth kernel: numerically low rank.
  Matrix<T> full = test::smooth_test_matrix<T>(200, 9);
  DenseGenerator<T> g(to_matrix(full.view()));
  AcaOptions opt;
  opt.tol = 1e-10;
  AcaResult<T> res = aca<T>(g, 0, 100, 100, 100, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.factor.rank(), 60);
  Matrix<T> rec = res.factor.reconstruct();
  Matrix<T> blk = to_matrix(full.view().block(0, 100, 100, 100));
  EXPECT_LE(rel_error(rec, blk), 1e-8);
}

TYPED_TEST(LowrankTyped, AcaExactRankMatrix) {
  using T = TypeParam;
  const index_t m = 50, n = 40, r = 4;
  Matrix<T> u = random_matrix<T>(m, r, 1);
  Matrix<T> v = random_matrix<T>(n, r, 2);
  Matrix<T> a(m, n);
  gemm<T>(Op::N, Op::C, T{1}, u, v, T{0}, a.view());
  DenseGenerator<T> g(to_matrix(a.view()));
  AcaOptions opt;
  opt.tol = 1e-12;
  AcaResult<T> res = aca<T>(g, 0, 0, m, n, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.factor.rank(), r + 2);
  EXPECT_LE(rel_error(res.factor.reconstruct(), a), 1e-10);
}

TEST(Aca, ZeroBlockGivesRankZero) {
  Matrix<double> a(30, 20);
  DenseGenerator<double> g(std::move(a));
  AcaOptions opt;
  AcaResult<double> res = aca<double>(g, 0, 0, 30, 20, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.factor.rank(), 0);
}

TEST(Aca, MaxRankCapReported) {
  // A well-conditioned random matrix is NOT low rank; the cap must trip.
  Matrix<double> a = random_matrix<double>(40, 40, 3);
  DenseGenerator<double> g(std::move(a));
  AcaOptions opt;
  opt.tol = 1e-14;
  opt.max_rank = 5;
  AcaResult<double> res = aca<double>(g, 0, 0, 40, 40, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.factor.rank(), 5);
}

TEST(Aca, SingleRowColumn) {
  Matrix<double> a = random_matrix<double>(1, 17, 4);
  DenseGenerator<double> g(to_matrix(a.view()));
  AcaOptions opt;
  AcaResult<double> res = aca<double>(g, 0, 0, 1, 17, opt);
  EXPECT_LE(rel_error(res.factor.reconstruct(), a), 1e-13);
}

TYPED_TEST(LowrankTyped, RsvdMatchesTruncatedSvd) {
  using T = TypeParam;
  using R = real_t<T>;
  // Compare against the OPTIMAL rank-k truncation from a full SVD: the
  // randomized sketch with power iterations must come within a small factor.
  const index_t n = 60, k = 12;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 13);
  SVDResult<T> svd = jacobi_svd<T>(a);
  Matrix<T> uk = to_matrix(svd.u.view().block(0, 0, n, k));
  for (index_t j = 0; j < k; ++j)
    scale_inplace(T{svd.s[j]}, uk.view().block(0, j, n, 1));
  Matrix<T> best(n, n);
  gemm<T>(Op::N, Op::C, T{1}, uk, svd.v.view().block(0, 0, n, k), T{0},
          best.view());
  const R best_err = rel_error(best, a);

  RsvdOptions opt;
  opt.rank = k;
  opt.power_iterations = 2;
  LowRankFactor<T> lr = rsvd<T>(a, opt);
  EXPECT_EQ(lr.rank(), k);
  EXPECT_LE(rel_error(lr.reconstruct(), a), 3 * best_err + R(1e-12));
}

TYPED_TEST(LowrankTyped, RsvdTolTruncation) {
  using T = TypeParam;
  const index_t m = 50, r = 6;
  Matrix<T> u = random_matrix<T>(m, r, 21);
  Matrix<T> v = random_matrix<T>(m, r, 22);
  Matrix<T> a(m, m);
  gemm<T>(Op::N, Op::C, T{1}, u, v, T{0}, a.view());
  RsvdOptions opt;
  opt.rank = 20;
  opt.tol = 1e-10;
  opt.power_iterations = 2;
  LowRankFactor<T> lr = rsvd<T>(a, opt);
  EXPECT_EQ(lr.rank(), r);
}

TYPED_TEST(LowrankTyped, RsvdStridedBatchedSharedSketchPackOnce) {
  using T = TypeParam;
  // Five m x n rank-r blocks laid out side by side (stride m*n, lda = m).
  const index_t m = 60, n = 60, r = 6, batch = 5;
  Matrix<T> big(m, n * batch);
  for (index_t i = 0; i < batch; ++i) {
    Matrix<T> u = random_matrix<T>(m, r, 700 + i);
    Matrix<T> v = random_matrix<T>(n, r, 800 + i);
    gemm<T>(Op::N, Op::C, T{1}, u, v, T{0},
            big.view().block(0, i * n, m, n));
  }
  RsvdOptions opt;
  opt.rank = 10;
  opt.tol = 1e-10;
  opt.power_iterations = 2;
  gemm_stats::reset();
  qr_stats::reset();
  svd_stats::reset();
  auto factors =
      rsvd_strided_batched<T>(big.data(), m, m * n, m, n, batch, opt);
  // The WHOLE sweep sketches against ONE shared Gaussian matrix: exactly one
  // full pack for the launch, zero per-problem packs of the shared operand.
  EXPECT_EQ(gemm_stats::shared_packs(), 1u)
      << "batched rsvd must hit the stride-0 pack-once fast path";
  // And the QR tail is batched, not per-block pool tasks: one orthonormalize
  // after the sketch plus two per power iteration, each one geqrf sweep and
  // one thin-Q sweep.
  const auto sweeps = static_cast<std::uint64_t>(1 + 2 * opt.power_iterations);
  EXPECT_EQ(qr_stats::geqrf_batched_sweeps(), sweeps)
      << "the rsvd QR tail must issue batched geqrf launches";
  EXPECT_EQ(qr_stats::thin_q_batched_sweeps(), sweeps);
  // PR 4: the SVD/truncation tail is batched too — ZERO per-block pool
  // tasks anywhere in the sweep.
  EXPECT_EQ(svd_stats::batched_sweeps(), 1u)
      << "the truncation tail must run through the batched Jacobi engine";
  EXPECT_EQ(svd_stats::serial_svds(), 0u)
      << "the batched rsvd sweep must perform zero per-block SVD tasks";
  ASSERT_EQ(factors.size(), static_cast<std::size_t>(batch));
  for (index_t i = 0; i < batch; ++i) {
    EXPECT_EQ(factors[i].rank(), r) << "problem " << i;
    EXPECT_LE(rel_error<T>(factors[i].reconstruct().view(),
                           big.block(0, i * n, m, n)),
              1e-8)
        << "problem " << i;
  }
}

TYPED_TEST(LowrankTyped, HodlrBuildFromDenseRsvdBatched) {
  using T = TypeParam;
  const index_t n = 256, depth = 3;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 17);
  ClusterTree tree = ClusterTree::with_depth(n, depth);
  BuildOptions opt;
  opt.compressor = Compressor::kRsvdBatched;
  opt.max_rank = 64;
  opt.tol = 1e-10;
  opt.rsvd_power_iterations = 2;
  gemm_stats::reset();
  svd_stats::reset();
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a.view(), tree, opt);
  // Levels 2 and 3 have >= 2 sibling pairs, so each of their two sweeps
  // (upper/lower blocks) packs the shared Gaussian exactly once; level 1 is
  // a batch of one and takes the ordinary path. 2 levels x 2 sweeps = 4.
  EXPECT_EQ(gemm_stats::shared_packs(), 4u)
      << "uniform-level sweeps must each pack their shared sketch once";
  // End-to-end contract of the batched compressor: every sweep's SVD tail
  // is a batched launch sequence and NO block ever falls back to a serial
  // per-block jacobi_svd pool task. 3 levels x 2 sweeps = 6.
  EXPECT_EQ(svd_stats::batched_sweeps(), 6u);
  EXPECT_EQ(svd_stats::serial_svds(), 0u)
      << "kRsvdBatched must perform zero per-block SVD pool tasks";
  EXPECT_LE(rel_error<T>(h.to_dense().view(), a.view()), 1e-7);
}

TEST(RsvdStridedBatched, DegenerateShapes) {
  RsvdOptions opt;
  opt.rank = 4;
  auto empty = rsvd_strided_batched<double>(nullptr, 0, 0, 0, 0, 3, opt);
  ASSERT_EQ(empty.size(), 3u);
  for (const auto& f : empty) EXPECT_EQ(f.rank(), 0);
  EXPECT_TRUE(rsvd_strided_batched<double>(nullptr, 0, 0, 0, 0, 0, opt)
                  .empty());
}

TYPED_TEST(LowrankTyped, RecompressReducesRankKeepsProduct) {
  using T = TypeParam;
  const index_t m = 64, n = 48, true_r = 5, padded_r = 20;
  Matrix<T> u0 = random_matrix<T>(m, true_r, 31);
  Matrix<T> v0 = random_matrix<T>(n, true_r, 32);
  // Inflate to rank 20 with redundant columns.
  LowRankFactor<T> lr;
  lr.u = Matrix<T>(m, padded_r);
  lr.v = Matrix<T>(n, padded_r);
  // Duplicate columns: U = [u0 u0 u0 u0], V = [v0 v0 v0 v0] / 4 keeps the
  // product equal to u0 v0^H while inflating the stored rank.
  for (index_t c = 0; c < padded_r; ++c) {
    const index_t src = c % true_r;
    copy<T>(u0.view().block(0, src, m, 1), lr.u.view().block(0, c, m, 1));
    copy<T>(v0.view().block(0, src, n, 1), lr.v.view().block(0, c, n, 1));
  }
  const T scale = T{1} / T{static_cast<real_t<T>>(padded_r / true_r)};
  scale_inplace(scale, lr.v.view());
  Matrix<T> before = lr.reconstruct();
  const index_t new_rank = recompress(lr, real_t<T>(1e-12));
  EXPECT_EQ(new_rank, true_r);
  EXPECT_LE(rel_error(lr.reconstruct(), before), 1e-10);
}

TEST(Recompress, RankZeroPassthrough) {
  LowRankFactor<double> lr;
  lr.u = Matrix<double>(10, 0);
  lr.v = Matrix<double>(8, 0);
  EXPECT_EQ(recompress(lr, 1e-10), 0);
}

TYPED_TEST(LowrankTyped, ColumnIdReconstructs) {
  using T = TypeParam;
  const index_t m = 40, n = 30, r = 6;
  Matrix<T> u = random_matrix<T>(m, r, 41);
  Matrix<T> v = random_matrix<T>(n, r, 42);
  Matrix<T> a(m, n);
  gemm<T>(Op::N, Op::C, T{1}, u, v, T{0}, a.view());
  ColumnID<T> cid = column_id<T>(a, real_t<T>(1e-10), -1);
  EXPECT_EQ(static_cast<index_t>(cid.skeleton.size()), r);
  // A ~= A(:, skel) * interp.
  Matrix<T> askel(m, r);
  for (index_t c = 0; c < r; ++c)
    copy<T>(a.view().block(0, cid.skeleton[c], m, 1),
            askel.view().block(0, c, m, 1));
  Matrix<T> rec(m, n);
  gemm<T>(Op::N, Op::N, T{1}, askel, cid.interp, T{0}, rec.view());
  EXPECT_LE(rel_error(rec, a), 1e-9);
}

TYPED_TEST(LowrankTyped, RowIdReconstructs) {
  using T = TypeParam;
  const index_t m = 35, n = 45, r = 5;
  Matrix<T> u = random_matrix<T>(m, r, 51);
  Matrix<T> v = random_matrix<T>(n, r, 52);
  Matrix<T> a(m, n);
  gemm<T>(Op::N, Op::C, T{1}, u, v, T{0}, a.view());
  RowID<T> rid = row_id<T>(a, real_t<T>(1e-10), -1);
  EXPECT_EQ(static_cast<index_t>(rid.skeleton.size()), r);
  Matrix<T> askel(r, n);
  for (index_t c = 0; c < r; ++c)
    for (index_t j = 0; j < n; ++j) askel(c, j) = a(rid.skeleton[c], j);
  Matrix<T> rec(m, n);
  gemm<T>(Op::N, Op::N, T{1}, rid.interp, askel, T{0}, rec.view());
  EXPECT_LE(rel_error(rec, a), 1e-9);
}

}  // namespace
}  // namespace hodlrx
