#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "batched/batched_blas.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "device/device.hpp"
#include "test_util.hpp"

/// Property tests of the batched QR engine: the blocked in-place drivers
/// (geqrf_inplace / thin_q_inplace) and the panel-synchronized strided-
/// batched drivers must agree with the seed's unblocked reference QR over
/// randomized shapes — tall, square, wide, one column, rank-deficient and
/// exactly zero blocks — for all four scalar types, and every produced Q
/// must be orthonormal. Also asserts the engine's launch-shape invariants:
/// batched sweeps are counted, and the persistent pool never creates
/// threads mid-sweep.

namespace hodlrx {
namespace {

using test::rel_error;

template <typename T>
real_t<T> tol() {
  return std::is_same_v<real_t<T>, float> ? real_t<T>(5e-4) : real_t<T>(1e-11);
}

/// A batch of deterministic test blocks covering the degenerate structures
/// the compressor feeds the engine: dense random, rank-deficient (duplicated
/// columns), and exactly zero. For the rank-deficient blocks the exhausted
/// trailing columns are roundoff noise, so the reflector directions (and
/// with them the signs of R) legitimately depend on the summation order —
/// only reconstruction and orthonormality are asserted for those; R-equality
/// against the reference is asserted where it is well-posed (full-rank and
/// exactly-zero blocks).
inline bool r_comparable(index_t block_index) { return block_index % 4 != 2; }
template <typename T>
std::vector<Matrix<T>> make_blocks(index_t m, index_t n, index_t batch,
                                   std::uint64_t seed) {
  std::vector<Matrix<T>> blocks;
  for (index_t i = 0; i < batch; ++i) {
    if (i % 4 == 3) {
      blocks.emplace_back(m, n);  // zero block
    } else {
      Matrix<T> a = random_matrix<T>(m, n, seed + i);
      if (i % 4 == 2 && n >= 2) {
        // Rank-deficient: every odd column duplicates its left neighbor.
        for (index_t j = 1; j < n; j += 2)
          copy<T>(a.view().block(0, j - 1, m, 1), a.view().block(0, j, m, 1));
      }
      blocks.push_back(std::move(a));
    }
  }
  return blocks;
}

/// ||Q^H Q - I|| relative deviation from orthonormality.
template <typename T>
real_t<T> ortho_error(ConstMatrixView<T> q) {
  Matrix<T> g(q.cols, q.cols);
  gemm<T>(Op::C, Op::N, T{1}, q, q, T{0}, g.view());
  return rel_error<T>(g.view(), Matrix<T>::identity(q.cols).view());
}

/// Upper-triangular R (k x n) out of a compact factor array.
template <typename T>
Matrix<T> extract_r(ConstMatrixView<T> f) {
  const index_t k = std::min(f.rows, f.cols);
  Matrix<T> r(k, f.cols);
  for (index_t j = 0; j < f.cols; ++j)
    for (index_t i = 0; i <= std::min(j, k - 1); ++i) r(i, j) = f(i, j);
  return r;
}

template <typename T>
class QrBatchedTyped : public ::testing::Test {};
using QrTypes = ::testing::Types<float, double, std::complex<float>,
                                 std::complex<double>>;
TYPED_TEST_SUITE(QrBatchedTyped, QrTypes);

/// Blocked single-problem drivers vs the unblocked reference, across shapes
/// that straddle the panel width (m < n, m = n, tall, one column).
TYPED_TEST(QrBatchedTyped, InplaceBlockedMatchesReference) {
  using T = TypeParam;
  const index_t shapes[][2] = {{96, 33}, {48, 48}, {24, 40}, {50, 1},
                               {1, 7},   {17, 16}, {5, 5}};
  std::uint64_t seed = 100;
  for (auto& [m, n] : shapes) {
    std::vector<Matrix<T>> blocks = make_blocks<T>(m, n, 4, seed += 10);
    for (index_t bi = 0; bi < static_cast<index_t>(blocks.size()); ++bi) {
      const Matrix<T>& a = blocks[bi];
      QRFactors<T> ref = geqrf_reference<T>(a.view());
      Matrix<T> f = to_matrix(a.view());
      std::vector<T> tau(std::min(m, n));
      geqrf_inplace<T>(f.view(), tau.data());
      if (r_comparable(bi))
        EXPECT_LE(rel_error<T>(extract_r<T>(f.view()).view(),
                               extract_r<T>(ref.factors.view()).view()),
                  tol<T>())
            << m << "x" << n;
      // Q from the blocked path reproduces the block and is orthonormal.
      const index_t k = std::min(m, n);
      Matrix<T> q = to_matrix(f.view().block(0, 0, m, k));
      thin_q_inplace<T>(q.view(), tau.data());
      EXPECT_LE(ortho_error<T>(q.view()), tol<T>()) << m << "x" << n;
      Matrix<T> rec(m, n);
      gemm<T>(Op::N, Op::N, T{1}, q, extract_r<T>(f.view()), T{0},
              rec.view());
      EXPECT_LE(rel_error<T>(rec.view(), a.view()), tol<T>())
          << m << "x" << n;
      // And the blocked thin Q agrees with the reference per-reflector one.
      if (r_comparable(bi))
        EXPECT_LE(rel_error<T>(q.view(), thin_q_reference<T>(ref).view()),
                  tol<T>())
            << m << "x" << n;
    }
  }
}

/// The panel-synchronized strided-batched driver must match per-block
/// reference geqrf to tolerance on every problem of a mixed batch, and the
/// batched thin Q must be orthonormal and reconstruct each block.
TYPED_TEST(QrBatchedTyped, StridedBatchedMatchesPerBlockReference) {
  using T = TypeParam;
  const index_t shapes[][2] = {{64, 24}, {32, 32}, {16, 28}, {40, 1},
                               {33, 17}};
  std::uint64_t seed = 4000;
  for (auto& [m, n] : shapes) {
    const index_t k = std::min(m, n);
    const index_t batch = 9, stride = m * n + 7;  // padded, non-contiguous
    std::vector<Matrix<T>> blocks = make_blocks<T>(m, n, batch, seed += 50);
    std::vector<T> buf(static_cast<std::size_t>(stride) * batch, T{});
    for (index_t i = 0; i < batch; ++i)
      copy<T>(blocks[i].view(), MatrixView<T>{buf.data() + i * stride, m, n,
                                              m});
    std::vector<T> tau(static_cast<std::size_t>(k) * batch, T{});
    qr_stats::reset();
    geqrf_strided_batched<T>(buf.data(), m, stride, m, n, tau.data(), k,
                             batch, BatchPolicy::kForceBatched);
    EXPECT_EQ(qr_stats::geqrf_batched_sweeps(), 1u);
    EXPECT_GE(qr_stats::panel_launches(), 1u);
    for (index_t i = 0; i < batch; ++i) {
      if (!r_comparable(i)) continue;
      ConstMatrixView<T> fi(buf.data() + i * stride, m, n, m);
      QRFactors<T> ref = geqrf_reference<T>(blocks[i].view());
      EXPECT_LE(rel_error<T>(extract_r<T>(fi).view(),
                             extract_r<T>(ref.factors.view()).view()),
                tol<T>())
          << "problem " << i << " of " << m << "x" << n;
    }
    // Keep R, then orthonormalize the batch in place.
    std::vector<Matrix<T>> r;
    for (index_t i = 0; i < batch; ++i)
      r.push_back(extract_r<T>(
          ConstMatrixView<T>(buf.data() + i * stride, m, n, m)));
    thin_q_strided_batched<T>(buf.data(), m, stride, m, n, tau.data(), k,
                              batch, BatchPolicy::kForceBatched);
    EXPECT_EQ(qr_stats::thin_q_batched_sweeps(), 1u);
    for (index_t i = 0; i < batch; ++i) {
      ConstMatrixView<T> qi(buf.data() + i * stride, m, k, m);
      EXPECT_LE(ortho_error<T>(qi), tol<T>()) << "problem " << i;
      Matrix<T> rec(m, n);
      gemm<T>(Op::N, Op::N, T{1}, qi, ConstMatrixView<T>(r[i]), T{0},
              rec.view());
      EXPECT_LE(rel_error<T>(rec.view(), blocks[i].view()), tol<T>())
          << "problem " << i << " of " << m << "x" << n;
    }
  }
}

/// Stream mode (sequential blocked problems) and batched mode must produce
/// the same factors.
TYPED_TEST(QrBatchedTyped, StreamModeAgreesWithBatched) {
  using T = TypeParam;
  const index_t m = 72, n = 40, k = 40, batch = 3;
  std::vector<Matrix<T>> blocks;  // full-rank only: Q comparison is exact
  for (index_t i = 0; i < batch; ++i)
    blocks.push_back(random_matrix<T>(m, n, 9000 + i));
  std::vector<T> b1(static_cast<std::size_t>(m) * n * batch);
  std::vector<T> b2(b1.size());
  for (index_t i = 0; i < batch; ++i) {
    copy<T>(blocks[i].view(), MatrixView<T>{b1.data() + i * m * n, m, n, m});
    copy<T>(blocks[i].view(), MatrixView<T>{b2.data() + i * m * n, m, n, m});
  }
  std::vector<T> tau1(static_cast<std::size_t>(k) * batch),
      tau2(static_cast<std::size_t>(k) * batch);
  geqrf_strided_batched<T>(b1.data(), m, m * n, m, n, tau1.data(), k, batch,
                           BatchPolicy::kForceBatched);
  geqrf_strided_batched<T>(b2.data(), m, m * n, m, n, tau2.data(), k, batch,
                           BatchPolicy::kForceStream);
  thin_q_strided_batched<T>(b1.data(), m, m * n, m, n, tau1.data(), k, batch,
                            BatchPolicy::kForceBatched);
  thin_q_strided_batched<T>(b2.data(), m, m * n, m, n, tau2.data(), k, batch,
                            BatchPolicy::kForceStream);
  for (index_t i = 0; i < batch; ++i)
    EXPECT_LE(rel_error<T>(ConstMatrixView<T>(b1.data() + i * m * n, m, k, m),
                           ConstMatrixView<T>(b2.data() + i * m * n, m, k,
                                              m)),
              tol<T>())
        << "problem " << i;
}

TEST(QrBatched, DegenerateShapesAreNoOps) {
  std::vector<double> tau(4);
  geqrf_strided_batched<double>(nullptr, 1, 0, 0, 4, tau.data(), 4, 3);
  geqrf_strided_batched<double>(nullptr, 1, 0, 5, 0, tau.data(), 1, 3);
  thin_q_strided_batched<double>(nullptr, 1, 0, 0, 4, tau.data(), 4, 3);
  std::vector<double> a(12);
  geqrf_strided_batched<double>(a.data(), 4, 12, 4, 3, tau.data(), 3, 0);
  EXPECT_THROW(geqrf_strided_batched<double>(a.data(), 2, 12, 4, 3,
                                             tau.data(), 3, 1),
               Error);  // lda < m
}

/// The batched sweep must issue device launches (the "everything is a
/// batched kernel" contract) and must NOT create pool threads mid-sweep —
/// the PR 2 pool invariant extended to the QR engine.
TEST(QrBatched, SweepLaunchesBatchedKernelsWithoutThreadChurn) {
  ThreadPool& pool = ThreadPool::instance();
  const index_t m = 128, n = 24, batch = 32;
  std::vector<double> buf(static_cast<std::size_t>(m) * n * batch);
  for (index_t i = 0; i < batch; ++i) {
    Matrix<double> a = random_matrix<double>(m, n, 77 + i);
    copy<double>(a.view(), MatrixView<double>{buf.data() + i * m * n, m, n,
                                              m});
  }
  std::vector<double> tau(static_cast<std::size_t>(n) * batch);
  const std::uint64_t created = pool.threads_created();
  const std::uint64_t launches0 = DeviceContext::global().launches();
  geqrf_strided_batched<double>(buf.data(), m, m * n, m, n, tau.data(), n,
                                batch, BatchPolicy::kForceBatched);
  thin_q_strided_batched<double>(buf.data(), m, m * n, m, n, tau.data(), n,
                                 batch, BatchPolicy::kForceBatched);
  EXPECT_GT(DeviceContext::global().launches(), launches0 + 2)
      << "panel + trailing updates must be recorded as batched launches";
  EXPECT_EQ(pool.threads_created(), created)
      << "a batched-QR sweep must not create threads";
}

}  // namespace
}  // namespace hodlrx
