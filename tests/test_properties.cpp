#include <gtest/gtest.h>

#include "core/factorization.hpp"
#include "kernels/kernels.hpp"
#include "test_util.hpp"

/// Property-style parameterized sweeps: the factor-then-solve residual
/// bound must hold across a grid of sizes, leaf sizes, tolerances and
/// kernels — each combination exercises different padding/rank/level
/// geometry in the packed layout.

namespace hodlrx {
namespace {

struct PropertyCase {
  index_t n;
  index_t leaf;
  double tol;
  int kernel;  // 0 gaussian, 1 exponential, 2 matern32, 3 imq
};

std::string prop_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  const char* kn[] = {"gauss", "exp", "mat32", "imq"};
  std::string tol = c.tol == 1e-6 ? "tol6" : (c.tol == 1e-10 ? "tol10" : "tolX");
  return "n" + std::to_string(c.n) + "_leaf" + std::to_string(c.leaf) + "_" +
         tol + "_" + kn[c.kernel];
}

class HodlrPropertySweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(HodlrPropertySweep, FactorSolveResidualBound) {
  const PropertyCase& c = GetParam();
  PointSet pts = uniform_random_points(c.n, 1, -1, 1, 700 + c.n);
  GeometricTree g = build_kd_tree(pts, c.leaf);
  std::unique_ptr<MatrixGenerator<double>> k;
  switch (c.kernel) {
    case 0:
      k = std::make_unique<GaussianKernel<double>>(std::move(g.points), 0.5,
                                                   1e-2);
      break;
    case 1:
      k = std::make_unique<ExponentialKernel<double>>(std::move(g.points), 1.0,
                                                      1e-2);
      break;
    case 2:
      k = std::make_unique<Matern32Kernel<double>>(std::move(g.points), 0.8,
                                                   1e-2);
      break;
    default:
      k = std::make_unique<InverseMultiquadricKernel<double>>(
          std::move(g.points), 1.0, 1e-2);
  }
  BuildOptions bopt;
  bopt.tol = c.tol;
  HodlrMatrix<double> h = HodlrMatrix<double>::build(*k, g.tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  Matrix<double> b = random_matrix<double>(c.n, 1, 710);
  Matrix<double> x = f.solve(b);

  // Residual vs the HODLR operator must be near machine precision; residual
  // vs the exact operator is bounded by the compression tolerance times a
  // modest growth factor.
  Matrix<double> ax(c.n, 1);
  h.apply(x, ax.view());
  axpy<double>(-1.0, b, ax.view());
  EXPECT_LE(norm_fro(ax) / norm_fro(b), 1e-11);

  Matrix<double> r = to_matrix(b.view());
  std::vector<double> row(c.n);
  for (index_t i = 0; i < c.n; ++i) {
    k->fill_row(i, 0, c.n, row.data());
    double acc = 0;
    for (index_t j = 0; j < c.n; ++j) acc += row[j] * x(j, 0);
    r(i, 0) -= acc;
  }
  EXPECT_LE(norm_fro(r) / norm_fro(b), 1e3 * c.tol + 1e-11);
}

std::vector<PropertyCase> property_grid() {
  std::vector<PropertyCase> cases;
  for (index_t n : {128, 300, 512, 777}) {
    for (index_t leaf : {16, 48}) {
      for (double tol : {1e-6, 1e-10}) {
        for (int kernel : {0, 1, 2, 3}) {
          cases.push_back({n, leaf, tol, kernel});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, HodlrPropertySweep,
                         ::testing::ValuesIn(property_grid()), prop_name);

/// Rank ladders must be monotone-ish and bounded for smooth 1-D kernels:
/// Remark 1 in the paper (1-D problems: ranks independent of N).
TEST(Properties, RanksIndependentOfProblemSize1D) {
  index_t prev_max_rank = 0;
  for (index_t n : {256, 512, 1024, 2048}) {
    PointSet pts = uniform_random_points(n, 1, -1, 1, 42);
    GeometricTree g = build_kd_tree(pts, 32);
    ExponentialKernel<double> k(std::move(g.points), 1.0, 1e-2);
    BuildOptions bopt;
    bopt.tol = 1e-8;
    HodlrMatrix<double> h = HodlrMatrix<double>::build(k, g.tree, bopt);
    const index_t mr = h.max_rank();
    if (prev_max_rank > 0) {
      EXPECT_LE(mr, prev_max_rank + 6) << "ranks should not grow with N";
    }
    prev_max_rank = std::max(prev_max_rank, mr);
  }
  EXPECT_LE(prev_max_rank, 40);
}

/// Theorem 2: storage scales like O(r N log N) — doubling N should roughly
/// double the footprint plus a log factor, nowhere near the 4x of dense.
TEST(Properties, StorageScalesNearLinearly) {
  std::vector<std::size_t> bytes;
  for (index_t n : {512, 1024, 2048}) {
    PointSet pts = uniform_random_points(n, 1, -1, 1, 43);
    GeometricTree g = build_kd_tree(pts, 32);
    ExponentialKernel<double> k(std::move(g.points), 1.0, 1e-2);
    BuildOptions bopt;
    bopt.tol = 1e-8;
    HodlrMatrix<double> h = HodlrMatrix<double>::build(k, g.tree, bopt);
    bytes.push_back(h.bytes());
  }
  EXPECT_LT(static_cast<double>(bytes[1]) / bytes[0], 3.0);
  EXPECT_LT(static_cast<double>(bytes[2]) / bytes[1], 3.0);
}

/// Solving with the transpose-free two-stage scheme must be deterministic:
/// factoring the same packed data twice gives bit-identical solutions.
TEST(Properties, FactorizationIsDeterministic) {
  const index_t n = 384;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 51);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-10;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  PackedHodlr<double> p = PackedHodlr<double>::pack(h);
  Matrix<double> b = random_matrix<double>(n, 1, 53);
  FactorOptions serial;
  serial.mode = ExecMode::kSerial;
  auto f1 = HodlrFactorization<double>::factor(p, serial);
  auto f2 = HodlrFactorization<double>::factor(p, serial);
  Matrix<double> x1 = f1.solve(b);
  Matrix<double> x2 = f2.solve(b);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(x1(i, 0), x2(i, 0));
}

}  // namespace
}  // namespace hodlrx
