#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "batched/interleave.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "common/workspace.hpp"
#include "core/factorization.hpp"
#include "device/backend.hpp"
#include "device/device.hpp"
#include "precond/gmres.hpp"
#include "test_util.hpp"

/// \file test_faults.cpp
/// The fault-injection harness: every HODLRX_FAULT site is armed in turn and
/// the recovery ladder is asserted to (a) fire exactly where injected,
/// (b) heal the run back to tolerance under OnBreakdown::kRecover, and
/// (c) reproduce the pre-resilience exception behavior under kThrow. The
/// fault_stats invariant injected == recovered is counter-asserted
/// throughout.

namespace hodlrx {
namespace {

using fault::Site;

/// Set (or clear, with nullptr) an environment variable for one test scope
/// and restore the previous value on exit. The CI fault legs export
/// HODLRX_FAULT process-wide, so every test here pins its own value instead
/// of assuming a clean environment.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr)
      ::setenv(name, value, /*overwrite=*/1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_old_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(FaultSpec, SiteNames) {
  EXPECT_STREQ(fault::site_name(Site::kGetrfPivot), "getrf.pivot");
  EXPECT_STREQ(fault::site_name(Site::kSvdSweeps), "svd.sweeps");
  EXPECT_STREQ(fault::site_name(Site::kAcaStall), "aca.stall");
  EXPECT_STREQ(fault::site_name(Site::kWorkspaceAlloc), "workspace.alloc");
  EXPECT_STREQ(fault::site_name(Site::kDeviceAlloc), "device.alloc");
}

TEST(FaultSpec, UnarmedSitesNeverFire) {
  ScopedEnv env("HODLRX_FAULT", nullptr);
  fault_stats::reset();
  for (int s = 0; s < static_cast<int>(Site::kNumSites); ++s)
    EXPECT_FALSE(fault::should_fire(static_cast<Site>(s)));
  EXPECT_EQ(fault_stats::injected(), 0u);
}

TEST(FaultSpec, FiresOnNthOccurrenceOnly) {
  ScopedEnv env("HODLRX_FAULT", "aca.stall:3");
  fault_stats::reset();
  EXPECT_FALSE(fault::should_fire(Site::kAcaStall));
  EXPECT_FALSE(fault::should_fire(Site::kAcaStall));
  EXPECT_TRUE(fault::should_fire(Site::kAcaStall));
  EXPECT_FALSE(fault::should_fire(Site::kAcaStall));
  EXPECT_EQ(fault_stats::injected(Site::kAcaStall), 1u);
  EXPECT_EQ(fault_stats::injected(), 1u);
  // Other sites stay unarmed.
  EXPECT_FALSE(fault::should_fire(Site::kGetrfPivot));
  // reset() re-arms the spec.
  fault_stats::reset();
  EXPECT_FALSE(fault::should_fire(Site::kAcaStall));
  EXPECT_FALSE(fault::should_fire(Site::kAcaStall));
  EXPECT_TRUE(fault::should_fire(Site::kAcaStall));
}

TEST(FaultSpec, CommaSeparatedListArmsSeveralSites) {
  ScopedEnv env("HODLRX_FAULT", "getrf.pivot,svd.sweeps:2");
  fault_stats::reset();
  EXPECT_TRUE(fault::should_fire(Site::kGetrfPivot));  // default nth = 1
  EXPECT_FALSE(fault::should_fire(Site::kSvdSweeps));
  EXPECT_TRUE(fault::should_fire(Site::kSvdSweeps));
  EXPECT_FALSE(fault::should_fire(Site::kAcaStall));
  EXPECT_EQ(fault_stats::injected(), 2u);
}

// ---------------------------------------------------------------------------
// workspace.alloc: arena growth failure -> drop every slot and retry once.
// ---------------------------------------------------------------------------

TEST(WorkspaceFault, AllocFailureDropsSlotsAndRetries) {
  ScopedEnv env("HODLRX_FAULT", "workspace.alloc");
  fault_stats::reset();
  WorkspaceArena& arena = WorkspaceArena::local();
  // Force a growth: ask for more than the arena currently holds in total.
  const std::size_t count = arena.bytes() / sizeof(double) + 4096;
  double* p = arena.get<double>(count, WorkspaceArena::kScratch);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0;
  p[count - 1] = 2.0;  // the retried buffer is really usable
  EXPECT_EQ(fault_stats::injected(Site::kWorkspaceAlloc), 1u);
  EXPECT_EQ(fault_stats::recovered(Site::kWorkspaceAlloc), 1u);
  // Steady state afterwards: same request, no growth, no second firing.
  double* q = arena.get<double>(count, WorkspaceArena::kScratch);
  EXPECT_EQ(p, q);
  EXPECT_EQ(fault_stats::injected(Site::kWorkspaceAlloc), 1u);
}

// The across-batch SIMD staging slot (interleave_workspace -> kInterleave)
// grows through the SAME fault-covered path: an injected allocation failure
// drops every slot and the retry succeeds, with injected == recovered.
TEST(WorkspaceFault, InterleaveSlotGrowthIsFaultCovered) {
  ScopedEnv env("HODLRX_FAULT", "workspace.alloc");
  fault_stats::reset();
  WorkspaceArena& arena = WorkspaceArena::local();
  const std::size_t count = arena.bytes() / sizeof(double) + 2048;
  double* p = interleave_workspace<double>(count);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0;
  p[count - 1] = 2.0;
  EXPECT_EQ(fault_stats::injected(Site::kWorkspaceAlloc), 1u);
  EXPECT_EQ(fault_stats::recovered(Site::kWorkspaceAlloc), 1u);
  EXPECT_EQ(fault_stats::injected(), fault_stats::recovered());
  // Steady state: the grown slot is reused without a second growth/firing.
  double* q = interleave_workspace<double>(count);
  EXPECT_EQ(p, q);
  EXPECT_EQ(fault_stats::injected(Site::kWorkspaceAlloc), 1u);
}

// ---------------------------------------------------------------------------
// device.alloc: Backend::allocate failure -> drain all streams, retry once.
// ---------------------------------------------------------------------------

TEST(DeviceAllocFault, BufferConstructionRecoversOnSyncBackend) {
  ScopedEnv backend_env("HODLRX_BACKEND", "host");
  ScopedEnv env("HODLRX_FAULT", "device.alloc");
  fault_stats::reset();
  DeviceContext& dev = DeviceContext::global();
  const std::size_t live0 = dev.live_bytes();
  {
    DeviceBuffer buf(1 << 16);
    ASSERT_NE(buf.data(), nullptr);
    // The retried buffer is really usable and correctly accounted.
    auto* p = buf.as<unsigned char>();
    p[0] = 1;
    p[(1 << 16) - 1] = 2;
    EXPECT_EQ(dev.live_bytes(), live0 + (1 << 16));
  }
  EXPECT_EQ(dev.live_bytes(), live0);
  EXPECT_EQ(fault_stats::injected(Site::kDeviceAlloc), 1u);
  EXPECT_EQ(fault_stats::recovered(Site::kDeviceAlloc), 1u);
  EXPECT_EQ(fault_stats::injected(), fault_stats::recovered());
  // Steady state: the next allocation goes through without a second firing.
  DeviceBuffer again(4096);
  EXPECT_EQ(fault_stats::injected(Site::kDeviceAlloc), 1u);
}

TEST(DeviceAllocFault, RecoveryDrainsQueuedAsyncWorkBeforeRetry) {
  // The rung mirrors what a real device must do: an allocation failure
  // means queued frees have not landed yet, so drain every stream and
  // retry synchronously. Queued async work must be COMPLETE by the time
  // the constructor returns.
  ScopedEnv backend_env("HODLRX_BACKEND", "host-async");
  ScopedEnv env("HODLRX_FAULT", "device.alloc");
  fault_stats::reset();
  std::atomic<int> drained_work{0};
  Stream s;
  for (int i = 0; i < 5; ++i)
    s.launch("queued", [&drained_work] { drained_work.fetch_add(1); });
  EXPECT_EQ(drained_work.load(), 0);  // still queued, not executed
  DeviceBuffer buf(1 << 16);
  ASSERT_NE(buf.data(), nullptr);
  // The failed first attempt forced the synchronize: the queue is empty.
  EXPECT_EQ(drained_work.load(), 5);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(fault_stats::injected(Site::kDeviceAlloc), 1u);
  EXPECT_EQ(fault_stats::recovered(Site::kDeviceAlloc), 1u);
  EXPECT_EQ(fault_stats::injected(), fault_stats::recovered());
}

TEST(DeviceAllocFault, LaterOccurrenceFiresWhereArmed) {
  // device.alloc:3 — the third Backend::allocate in the process fires, the
  // first two pass untouched. Pins that the site threads through the
  // shared occurrence-counting spec machinery.
  ScopedEnv backend_env("HODLRX_BACKEND", "host");
  ScopedEnv env("HODLRX_FAULT", "device.alloc:3");
  fault_stats::reset();
  DeviceBuffer a(1024);
  DeviceBuffer b(1024);
  EXPECT_EQ(fault_stats::injected(Site::kDeviceAlloc), 0u);
  DeviceBuffer c(1024);  // occurrence 3: fires, recovery heals it
  ASSERT_NE(c.data(), nullptr);
  EXPECT_EQ(fault_stats::injected(Site::kDeviceAlloc), 1u);
  EXPECT_EQ(fault_stats::recovered(Site::kDeviceAlloc), 1u);
}

// ---------------------------------------------------------------------------
// aca.stall: compression stall -> batched rsvd retry of the block.
// ---------------------------------------------------------------------------

TEST(AcaStallFault, ThrowPolicyReproducesLegacyError) {
  ScopedEnv env("HODLRX_FAULT", "aca.stall");
  fault_stats::reset();
  const index_t n = 128;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 601);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-10;
  bopt.on_breakdown = OnBreakdown::kThrow;
  EXPECT_THROW(HodlrMatrix<double>::build_from_dense(a, tree, bopt), Error);
  EXPECT_EQ(fault_stats::injected(Site::kAcaStall), 1u);
  EXPECT_EQ(fault_stats::recovered(Site::kAcaStall), 0u);
}

TEST(AcaStallFault, RecoverRetriesThroughRsvd) {
  ScopedEnv env("HODLRX_FAULT", "aca.stall");
  fault_stats::reset();
  const index_t n = 128;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 607);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-10;
  FactorReport rep;
  HodlrMatrix<double> h =
      HodlrMatrix<double>::build_from_dense(a, tree, bopt, &rep);
  EXPECT_GE(rep.aca_stalls, 1);
  EXPECT_EQ(rep.aca_retries, rep.aca_stalls);
  EXPECT_FALSE(rep.clean());
  EXPECT_FALSE(rep.events.empty());
  // The injected stall was healed and the approximation is full quality.
  EXPECT_EQ(fault_stats::injected(), fault_stats::recovered());
  EXPECT_EQ(fault_stats::injected(Site::kAcaStall), 1u);
  EXPECT_LE(test::rel_error<double>(h.to_dense(), a), 1e-8);
}

TEST(AcaStallFault, ReportPolicyKeepsAchievedRank) {
  ScopedEnv env("HODLRX_FAULT", "aca.stall");
  fault_stats::reset();
  const index_t n = 128;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 613);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-10;
  bopt.on_breakdown = OnBreakdown::kReport;
  FactorReport rep;
  HodlrMatrix<double> h =
      HodlrMatrix<double>::build_from_dense(a, tree, bopt, &rep);
  EXPECT_GE(rep.aca_stalls, 1);
  EXPECT_EQ(rep.aca_retries, 0);  // recorded, NOT retried
  EXPECT_EQ(fault_stats::recovered(Site::kAcaStall), 0u);
  // The stalled block keeps its achieved-rank factor: the representation is
  // degraded but usable (a crude approximation, not garbage).
  EXPECT_LE(test::rel_error<double>(h.to_dense(), a), 0.5);
}

// ---------------------------------------------------------------------------
// svd.sweeps: batched Jacobi budget exhaustion -> serial re-run at 4x.
// ---------------------------------------------------------------------------

TEST(SvdSweepsFault, BatchedBuildRecoversThroughSerialRerun) {
  ScopedEnv env("HODLRX_FAULT", "svd.sweeps");
  fault_stats::reset();
  const index_t n = 128;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 617);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-10;
  bopt.max_rank = 32;
  bopt.compressor = Compressor::kRsvdBatched;
  FactorReport rep;
  HodlrMatrix<double> h =
      HodlrMatrix<double>::build_from_dense(a, tree, bopt, &rep);
  EXPECT_GT(rep.svd_nonconverged, 0);
  EXPECT_EQ(rep.svd_recovered, rep.svd_nonconverged);
  EXPECT_EQ(fault_stats::injected(Site::kSvdSweeps), 1u);
  EXPECT_EQ(fault_stats::injected(), fault_stats::recovered());
  EXPECT_LE(test::rel_error<double>(h.to_dense(), a), 1e-8);
}

// ---------------------------------------------------------------------------
// getrf.pivot: zero pivot in the pivot-free K form -> pivoted refactor.
// ---------------------------------------------------------------------------

class GetrfPivotFault : public ::testing::TestWithParam<ExecMode> {};

TEST_P(GetrfPivotFault, RecoverRefactorsWithPivoting) {
  ScopedEnv env("HODLRX_FAULT", "getrf.pivot");
  fault_stats::reset();
  const index_t n = 128;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 619);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  PackedHodlr<double> p = PackedHodlr<double>::pack(h);
  DeviceContext::global().reset_counters();
  FactorOptions fopt;
  fopt.mode = GetParam();
  fopt.kform = KForm::kIdentityDiagonal;
  FactorReport rep;
  auto f = HodlrFactorization<double>::factor(p, fopt, &rep);
  EXPECT_GE(rep.lu_breakdowns, 1);
  EXPECT_GE(rep.lu_pivot_retries, 1);
  EXPECT_GT(rep.max_pivot_growth, 0.0);  // tracking was on
  EXPECT_EQ(fault_stats::injected(Site::kGetrfPivot), 1u);
  EXPECT_EQ(fault_stats::injected(), fault_stats::recovered());
  // The recovered factorization solves to full accuracy, and the device
  // accounting tracked the pivot storage the recovery allocated.
  EXPECT_EQ(DeviceContext::global().live_bytes(), f.bytes());
  Matrix<double> b = random_matrix<double>(n, 2, 641);
  EXPECT_LE(test::dense_relres<double>(a, f.solve(b), b), 1e-8);
}

TEST_P(GetrfPivotFault, ThrowPolicyReproducesLegacyError) {
  ScopedEnv env("HODLRX_FAULT", "getrf.pivot");
  fault_stats::reset();
  const index_t n = 128;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 619);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, {});
  FactorOptions fopt;
  fopt.mode = GetParam();
  fopt.kform = KForm::kIdentityDiagonal;
  fopt.on_breakdown = OnBreakdown::kThrow;
  EXPECT_THROW(
      HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), fopt),
      Error);
  EXPECT_EQ(fault_stats::recovered(Site::kGetrfPivot), 0u);
}

TEST_P(GetrfPivotFault, ReportPolicyRecordsAndRethrows) {
  // A half-factored LU leaves no usable state: kReport records the
  // breakdown in the report but must still throw.
  ScopedEnv env("HODLRX_FAULT", "getrf.pivot");
  fault_stats::reset();
  const index_t n = 128;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 619);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, {});
  FactorOptions fopt;
  fopt.mode = GetParam();
  fopt.kform = KForm::kIdentityDiagonal;
  fopt.on_breakdown = OnBreakdown::kReport;
  FactorReport rep;
  EXPECT_THROW(HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h),
                                                  fopt, &rep),
               Error);
  EXPECT_GE(rep.lu_breakdowns, 1);
  EXPECT_EQ(rep.lu_pivot_retries, 0);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, GetrfPivotFault,
                         ::testing::Values(ExecMode::kSerial,
                                           ExecMode::kBatched),
                         [](const ::testing::TestParamInfo<ExecMode>& info) {
                           return info.param == ExecMode::kSerial
                                      ? std::string("serial")
                                      : std::string("batched");
                         });

// ---------------------------------------------------------------------------
// Post-solve residual check -> HODLR-preconditioned GMRES refinement.
// ---------------------------------------------------------------------------

TEST(SolveChecked, AccurateFactorizationNeedsNoRefinement) {
  ScopedEnv env("HODLRX_FAULT", nullptr);
  const index_t n = 192;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 653);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h), {});
  Matrix<double> b = random_matrix<double>(n, 2, 659);
  SolveReport rep = f.solve_checked(h, b.view(), 1e-10);
  EXPECT_TRUE(rep.residual_ok);
  EXPECT_FALSE(rep.refined);
  EXPECT_EQ(rep.gmres_iterations, 0);
  EXPECT_GE(rep.relres, 0.0);
  EXPECT_LE(rep.relres, 1e-10);
}

TEST(SolveChecked, CrudeFactorizationIsRefinedByGmres) {
  ScopedEnv env("HODLRX_FAULT", nullptr);
  const index_t n = 256;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 661);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  // An accurate compressed operator...
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  // ...but a factorization of a CRUDE compression of the same matrix: the
  // direct solve leaves a large residual against `h`, which is exactly the
  // paper's low-accuracy-preconditioner scenario.
  BuildOptions crude;
  crude.tol = 1e-2;
  crude.max_rank = 3;
  HodlrMatrix<double> hc =
      HodlrMatrix<double>::build_from_dense(a, tree, crude);
  auto f =
      HodlrFactorization<double>::factor(PackedHodlr<double>::pack(hc), {});
  Matrix<double> b = random_matrix<double>(n, 2, 673);
  Matrix<double> x = to_matrix(b.view());
  SolveReport rep = f.solve_checked(h, x.view(), 1e-10);
  EXPECT_TRUE(rep.refined);
  EXPECT_TRUE(rep.residual_ok);
  EXPECT_GT(rep.gmres_iterations, 0);
  EXPECT_LE(rep.relres, 1e-10);
  EXPECT_FALSE(rep.events.empty());
  // And against the original dense matrix the refined solution is as good
  // as the 1e-12 compression allows.
  EXPECT_LE(test::dense_relres<double>(a, ConstMatrixView<double>(x), b),
            1e-8);
}

TEST(SolveChecked, ThrowAndReportPolicies) {
  ScopedEnv env("HODLRX_FAULT", nullptr);
  const index_t n = 192;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 677);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<double> h = HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  BuildOptions crude;
  crude.tol = 1e-2;
  crude.max_rank = 3;
  HodlrMatrix<double> hc =
      HodlrMatrix<double>::build_from_dense(a, tree, crude);
  Matrix<double> b = random_matrix<double>(n, 1, 683);

  FactorOptions tf;
  tf.on_breakdown = OnBreakdown::kThrow;
  auto fthrow =
      HodlrFactorization<double>::factor(PackedHodlr<double>::pack(hc), tf);
  Matrix<double> x0 = to_matrix(b.view());
  EXPECT_THROW(fthrow.solve_checked(h, x0.view(), 1e-10), Error);

  FactorOptions rf;
  rf.on_breakdown = OnBreakdown::kReport;
  auto freport =
      HodlrFactorization<double>::factor(PackedHodlr<double>::pack(hc), rf);
  Matrix<double> x1 = to_matrix(b.view());
  SolveReport rep = freport.solve_checked(h, x1.view(), 1e-10);
  EXPECT_FALSE(rep.residual_ok);
  EXPECT_FALSE(rep.refined);
  EXPECT_GT(rep.relres, 1e-10);
  EXPECT_FALSE(rep.events.empty());
}

// ---------------------------------------------------------------------------
// GMRES stagnation + happy breakdown (satellite).
// ---------------------------------------------------------------------------

TEST(GmresFlags, StagnationDetectedAndReturnsEarly) {
  // The classic no-progress example: a cyclic shift matrix. Restarted
  // GMRES(4) on n = 32 repeats identical cycles forever; the stagnation
  // guard must bail out instead of burning max_iterations.
  using T = double;
  const index_t n = 32;
  Matrix<T> a(n, n);
  for (index_t j = 0; j < n; ++j) a((j + 1) % n, j) = 1.0;
  std::vector<T> b(n, 0.0), x(n, 0.0);
  b[0] = 1.0;
  const LinearOp<T> op = [&](const T* xin, T* y) {
    gemv<T>(Op::N, T{1}, a, xin, T{0}, y);
  };
  GmresOptions opt;
  opt.restart = 4;
  opt.max_iterations = 100;
  opt.tol = 1e-12;
  const auto res = gmres<T>(n, op, {}, b.data(), x.data(), opt);
  EXPECT_TRUE(res.stagnated);
  EXPECT_FALSE(res.converged);
  EXPECT_LT(res.iterations, 100);
}

TEST(GmresFlags, HappyBreakdownFlagged) {
  using T = double;
  const index_t n = 24;
  Matrix<T> a = Matrix<T>::identity(n);
  Matrix<T> b = random_matrix<T>(n, 1, 691);
  std::vector<T> x(n, 0.0);
  const LinearOp<T> op = [&](const T* xin, T* y) {
    gemv<T>(Op::N, T{1}, a, xin, T{0}, y);
  };
  const auto res = gmres<T>(n, op, {}, b.data(), x.data(), {});
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.breakdown);  // A = I: the Krylov space is invariant at 1
  EXPECT_FALSE(res.stagnated);
}

// ---------------------------------------------------------------------------
// Thread-pool exception propagation (satellite regression test).
// ---------------------------------------------------------------------------

TEST(ThreadPoolFault, WorkerExceptionPropagatesAndPoolSurvives) {
  ThreadPool& pool = ThreadPool::instance();
  const std::uint64_t created_before = pool.threads_created();
  EXPECT_THROW(parallel_for(64,
                            [](index_t i) {
                              if (i == 13)
                                throw std::runtime_error("injected task fault");
                            }),
               std::runtime_error);
  // The pool is immediately reusable — no worker died, none respawned.
  std::atomic<int> count{0};
  parallel_for(64, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
  EXPECT_EQ(pool.threads_created(), created_before);
}

// ---------------------------------------------------------------------------
// HODLRX_CHECK_FINITE stage-boundary scans.
// ---------------------------------------------------------------------------

/// A smooth generator with one NaN planted inside the first leaf's diagonal
/// block (the compressed representation stores it verbatim).
class NanLeafGenerator final : public MatrixGenerator<double> {
 public:
  explicit NanLeafGenerator(Matrix<double> a) : a_(std::move(a)) {
    a_(1, 2) = std::numeric_limits<double>::quiet_NaN();
  }
  index_t rows() const override { return a_.rows(); }
  index_t cols() const override { return a_.cols(); }
  double entry(index_t i, index_t j) const override { return a_(i, j); }

 private:
  Matrix<double> a_;
};

TEST(CheckFinite, BuildScanFindsPlantedNan) {
  ScopedEnv fault_env("HODLRX_FAULT", nullptr);
  ScopedEnv env("HODLRX_CHECK_FINITE", "1");
  const index_t n = 128;
  NanLeafGenerator g(test::smooth_test_matrix<double>(n, 701));
  ClusterTree tree = ClusterTree::uniform(n, 32);

  BuildOptions rec;  // default kRecover: record, keep going
  FactorReport rep;
  HodlrMatrix<double> h = HodlrMatrix<double>::build(g, tree, rec, &rep);
  EXPECT_GE(rep.nonfinite_values, 1);
  EXPECT_FALSE(rep.clean());
  EXPECT_FALSE(rep.events.empty());

  BuildOptions thr;
  thr.on_breakdown = OnBreakdown::kThrow;
  EXPECT_THROW(HodlrMatrix<double>::build(g, tree, thr), Error);
}

TEST(CheckFinite, DisabledScanIsSilent) {
  ScopedEnv fault_env("HODLRX_FAULT", nullptr);
  ScopedEnv env("HODLRX_CHECK_FINITE", "0");
  const index_t n = 64;
  NanLeafGenerator g(test::smooth_test_matrix<double>(n, 703));
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions thr;
  thr.on_breakdown = OnBreakdown::kThrow;
  FactorReport rep;
  // Without the scan the NaN passes through silently even under kThrow
  // (compression never looks at the leaf diagonal entries).
  HodlrMatrix<double> h = HodlrMatrix<double>::build(g, tree, thr, &rep);
  EXPECT_EQ(rep.nonfinite_values, 0);
}

// ---------------------------------------------------------------------------
// Acceptance: all sites armed, one batched build + factor + checked solve.
// ---------------------------------------------------------------------------

TEST(Acceptance, FullLadderHealsOneBatchedRun) {
  ScopedEnv env("HODLRX_FAULT", "svd.sweeps,getrf.pivot,aca.stall");
  fault_stats::reset();
  const index_t n = 256;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 709);
  ClusterTree tree = ClusterTree::uniform(n, 32);

  // ONE kRsvdBatched build + identity-diagonal batched factor + checked
  // solve, with the SVD-sweep and zero-pivot faults armed. Everything is
  // healed in-flight: the run reaches tolerance and every injected fault
  // has a matching recovery.
  BuildOptions bopt;
  bopt.tol = 1e-10;
  bopt.max_rank = 32;
  bopt.compressor = Compressor::kRsvdBatched;
  FactorReport rep;
  HodlrMatrix<double> h =
      HodlrMatrix<double>::build_from_dense(a, tree, bopt, &rep);
  EXPECT_GT(rep.svd_recovered, 0);

  FactorOptions fopt;
  fopt.mode = ExecMode::kBatched;
  fopt.kform = KForm::kIdentityDiagonal;
  auto f = HodlrFactorization<double>::factor(PackedHodlr<double>::pack(h),
                                              fopt, &rep);
  EXPECT_GE(rep.lu_breakdowns, 1);
  EXPECT_GE(rep.lu_pivot_retries, 1);

  Matrix<double> b = random_matrix<double>(n, 2, 719);
  Matrix<double> x = to_matrix(b.view());
  SolveReport srep = f.solve_checked(h, x.view(), 1e-8);
  EXPECT_TRUE(srep.residual_ok);
  EXPECT_LE(srep.relres, 1e-8);
  EXPECT_LE(test::dense_relres<double>(a, ConstMatrixView<double>(x), b),
            1e-7);

  // The rsvd path never runs ACA, so aca.stall stays armed but silent; a
  // follow-up ACA build trips it and recovers too.
  BuildOptions aca;
  aca.tol = 1e-10;
  HodlrMatrix<double> h2 =
      HodlrMatrix<double>::build_from_dense(a, tree, aca, &rep);
  EXPECT_GE(rep.aca_retries, 1);
  EXPECT_LE(test::rel_error<double>(h2.to_dense(), a), 1e-8);

  // The harness invariant: every injected fault was recovered, nothing
  // recovered that was not injected.
  EXPECT_EQ(fault_stats::injected(Site::kSvdSweeps), 1u);
  EXPECT_EQ(fault_stats::injected(Site::kGetrfPivot), 1u);
  EXPECT_EQ(fault_stats::injected(Site::kAcaStall), 1u);
  EXPECT_EQ(fault_stats::injected(), 3u);
  EXPECT_EQ(fault_stats::injected(), fault_stats::recovered());
}

}  // namespace
}  // namespace hodlrx
