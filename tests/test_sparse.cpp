#include <gtest/gtest.h>

#include "sparse/block_lu.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using test::rel_error;

TEST(BlockSparseMatrix, BasicStorage) {
  BlockSparseMatrix<double> m({2, 3, 1});
  EXPECT_EQ(m.n(), 6);
  EXPECT_EQ(m.block_offset(1), 2);
  EXPECT_FALSE(m.has(0, 1));
  m.block(0, 1)(1, 2) = 5.0;
  EXPECT_TRUE(m.has(0, 1));
  EXPECT_EQ(m.num_stored_blocks(), 1u);
  auto row = m.row_pattern(0);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], 1);
  auto col = m.col_pattern(1);
  ASSERT_EQ(col.size(), 1u);
  EXPECT_EQ(col[0], 0);
  Matrix<double> d = m.to_dense();
  EXPECT_EQ(d(1, 2 + 2), 5.0);
}

template <typename T>
void check_extended_equivalence(index_t n, index_t leaf) {
  // The extended system must be EXACTLY equivalent to the compressed HODLR
  // matrix: eliminating the w unknowns recovers tilde-A x = b.
  Matrix<T> a = test::smooth_test_matrix<T>(n, 301 + n);
  ClusterTree tree = ClusterTree::uniform(n, leaf);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  Matrix<T> ad = h.to_dense();

  ExtendedSystem<T> sys = build_extended_system(h);
  // Dense check of the embedding: solve the extended system densely and
  // compare with the dense solve of tilde-A.
  Matrix<T> be(sys.matrix.n(), 2);
  Matrix<T> b = random_matrix<T>(n, 2, 307);
  copy<T>(b.view(), be.view().block(0, 0, n, 2));
  Matrix<T> ext = sys.matrix.to_dense();
  Matrix<T> xe = dense_solve<T>(ext, be);
  Matrix<T> x_ref = dense_solve<T>(ad, b);
  EXPECT_LE(rel_error<T>(xe.view().block(0, 0, n, 2), x_ref.view()), 1e-9);
}

TEST(Extended, EmbeddingIsEquivalentDouble) {
  check_extended_equivalence<double>(96, 12);
  check_extended_equivalence<double>(128, 16);
}

TEST(Extended, EmbeddingIsEquivalentComplex) {
  check_extended_equivalence<std::complex<double>>(100, 13);
}

template <typename T>
void check_block_lu(index_t n, index_t leaf, bool parallel) {
  Matrix<T> a = test::smooth_test_matrix<T>(n, 311 + n);
  ClusterTree tree = ClusterTree::uniform(n, leaf);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  typename BlockSparseLU<T>::Options opt;
  opt.parallel = parallel;
  BlockSparseLU<T> lu = BlockSparseLU<T>::factor(build_extended_system(h), opt);
  Matrix<T> b = random_matrix<T>(n, 3, 313);
  Matrix<T> x = lu.solve(b);
  EXPECT_LE(test::dense_relres<T>(a, x, b), 1e-8);
}

TEST(BlockLU, SequentialSolve) {
  check_block_lu<double>(128, 16, false);
  check_block_lu<double>(200, 25, false);
  check_block_lu<std::complex<double>>(96, 12, false);
}

TEST(BlockLU, ParallelSolveMatches) {
  check_block_lu<double>(256, 32, true);
  check_block_lu<std::complex<double>>(128, 16, true);
}

TEST(BlockLU, ParallelAndSequentialIdentical) {
  using T = double;
  const index_t n = 160;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 331);
  ClusterTree tree = ClusterTree::uniform(n, 20);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  typename BlockSparseLU<T>::Options po;
  po.parallel = true;
  BlockSparseLU<T> ls = BlockSparseLU<T>::factor(build_extended_system(h), {});
  BlockSparseLU<T> lp = BlockSparseLU<T>::factor(build_extended_system(h), po);
  Matrix<T> b = random_matrix<T>(n, 1, 337);
  EXPECT_LE(rel_error(ls.solve(b), lp.solve(b)), 1e-12);
}

TEST(BlockLU, FillStaysInPathCliques) {
  // The natural order must produce bounded fill: every fill block connects
  // two nodes whose paths share a leaf, so the count is O(leaves * L^2).
  using T = double;
  const index_t n = 512;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 341);
  ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-9;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  BlockSparseLU<T> lu = BlockSparseLU<T>::factor(build_extended_system(h), {});
  const index_t leaves = tree.num_leaves();
  const index_t L = tree.depth();
  // Generous bound: a few L^2 blocks per leaf.
  EXPECT_LE(lu.num_fill_blocks(),
            static_cast<std::size_t>(8 * leaves * (L + 1) * (L + 1)));
}

TEST(Extended, RhsExtendRestrictRoundTrip) {
  using T = double;
  const index_t n = 64;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 351);
  ClusterTree tree = ClusterTree::uniform(n, 16);
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, {});
  ExtendedSystem<T> sys = build_extended_system(h);
  Matrix<T> b = random_matrix<T>(n, 2, 353);
  Matrix<T> be = sys.extend_rhs(b);
  EXPECT_GE(be.rows(), n);
  Matrix<T> back = sys.restrict_solution(be);
  EXPECT_LE(rel_error(back, b), 1e-15);
}

}  // namespace
}  // namespace hodlrx
