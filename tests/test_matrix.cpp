#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hodlrx {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix<double> a(3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  EXPECT_EQ(a.size(), 12);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(a(i, j), 0.0);
  a(2, 3) = 7.5;
  EXPECT_EQ(a(2, 3), 7.5);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix<double> a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(a.data()[1], 2);
  EXPECT_EQ(a.data()[2], 3);
  EXPECT_EQ(a.data()[3], 4);
}

TEST(Matrix, BlockViewAddressing) {
  Matrix<double> a(6, 6);
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i < 6; ++i) a(i, j) = 10.0 * i + j;
  MatrixView<double> blk = a.view().block(2, 3, 3, 2);
  EXPECT_EQ(blk.rows, 3);
  EXPECT_EQ(blk.cols, 2);
  EXPECT_EQ(blk(0, 0), 23.0);
  EXPECT_EQ(blk(2, 1), 44.0);
  blk(1, 0) = -1;
  EXPECT_EQ(a(3, 3), -1.0);
}

TEST(Matrix, NestedBlocks) {
  Matrix<double> a(8, 8);
  a(5, 6) = 42;
  auto outer = a.view().block(4, 4, 4, 4);
  auto inner = outer.block(1, 2, 2, 2);
  EXPECT_EQ(inner(0, 0), 42.0);
}

TEST(Matrix, Identity) {
  Matrix<std::complex<double>> eye = Matrix<std::complex<double>>::identity(4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i)
      EXPECT_EQ(eye(i, j), std::complex<double>(i == j ? 1.0 : 0.0));
}

TEST(Matrix, CopyStridedViews) {
  Matrix<double> a(5, 5), b(3, 2);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 5; ++i) a(i, j) = i + 10.0 * j;
  copy<double>(a.view().block(1, 2, 3, 2), b.view());
  EXPECT_EQ(b(0, 0), 21.0);
  EXPECT_EQ(b(2, 1), 33.0);
}

TEST(Matrix, TransposeAndConjugate) {
  using C = std::complex<double>;
  Matrix<C> a(2, 3);
  a(0, 1) = C(1, 2);
  a(1, 2) = C(-3, 4);
  Matrix<C> at = transpose(a);
  Matrix<C> ah = transpose(a, /*conjugate=*/true);
  EXPECT_EQ(at.rows(), 3);
  EXPECT_EQ(at(1, 0), C(1, 2));
  EXPECT_EQ(ah(1, 0), C(1, -2));
  EXPECT_EQ(ah(2, 1), C(-3, -4));
}

TEST(Matrix, ToMatrixDeepCopies) {
  Matrix<double> a(2, 2);
  a(0, 0) = 5;
  Matrix<double> b = to_matrix(a.view());
  b(0, 0) = 9;
  EXPECT_EQ(a(0, 0), 5.0);
}

TEST(Matrix, ResizeZeroes) {
  Matrix<double> a(2, 2);
  a(1, 1) = 3;
  a.resize(4, 4);
  EXPECT_EQ(a(1, 1), 0.0);
  EXPECT_EQ(a.rows(), 4);
}

TEST(Matrix, EmptyMatrix) {
  Matrix<double> a(0, 5);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0);
  Matrix<double> b(5, 0);
  EXPECT_TRUE(b.empty());
}

TEST(Matrix, NegativeDimensionThrows) {
  EXPECT_THROW(Matrix<double>(-1, 2), Error);
}

TEST(Matrix, CopyShapeMismatchThrows) {
  Matrix<double> a(2, 2), b(3, 2);
  EXPECT_THROW(copy<double>(a.view(), b.view()), Error);
}

TEST(Matrix, BytesAccounting) {
  Matrix<double> a(10, 10);
  EXPECT_EQ(a.bytes(), 100 * sizeof(double));
}

TEST(Matrix, ContiguityFlag) {
  Matrix<double> a(6, 6);
  EXPECT_TRUE(a.view().contiguous());
  EXPECT_FALSE(a.view().block(0, 0, 3, 2).contiguous());
  EXPECT_TRUE(a.view().block(0, 2, 6, 2).contiguous());
}

}  // namespace
}  // namespace hodlrx
