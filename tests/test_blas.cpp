#include <gtest/gtest.h>

#include "common/flops.hpp"
#include "test_util.hpp"

namespace hodlrx {
namespace {

using test::rel_error;

/// Reference gemm: straightforward triple loop with accessor semantics.
template <typename T>
Matrix<T> gemm_ref(Op opa, Op opb, T alpha, const Matrix<T>& a,
                   const Matrix<T>& b, T beta, const Matrix<T>& c0) {
  auto at = [&](index_t i, index_t l) {
    return opa == Op::N ? a(i, l) : (opa == Op::T ? a(l, i) : conj_s(a(l, i)));
  };
  auto bt = [&](index_t l, index_t j) {
    return opb == Op::N ? b(l, j) : (opb == Op::T ? b(j, l) : conj_s(b(j, l)));
  };
  const index_t m = op_rows(opa, a.view()), n = op_cols(opb, b.view());
  const index_t k = op_cols(opa, a.view());
  Matrix<T> c = to_matrix(c0.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T s{};
      for (index_t l = 0; l < k; ++l) s += at(i, l) * bt(l, j);
      c(i, j) = alpha * s + beta * c(i, j);
    }
  return c;
}

template <typename T>
class BlasTyped : public ::testing::Test {};
using BlasTypes = ::testing::Types<float, double, std::complex<float>,
                                   std::complex<double>>;
TYPED_TEST_SUITE(BlasTyped, BlasTypes);

TYPED_TEST(BlasTyped, GemmAllOpCombos) {
  using T = TypeParam;
  using R = real_t<T>;
  const R tol = std::is_same_v<R, float> ? R(1e-4) : R(1e-12);
  Rng rng(5);
  for (Op opa : {Op::N, Op::T, Op::C}) {
    for (Op opb : {Op::N, Op::T, Op::C}) {
      const index_t m = 17, n = 13, k = 21;
      Matrix<T> a(opa == Op::N ? m : k, opa == Op::N ? k : m);
      Matrix<T> b(opb == Op::N ? k : n, opb == Op::N ? n : k);
      Matrix<T> c(m, n);
      rng.fill_uniform<T>(a);
      rng.fill_uniform<T>(b);
      rng.fill_uniform<T>(c);
      Matrix<T> expect = gemm_ref<T>(opa, opb, T{2}, a, b, T{-1}, c);
      gemm<T>(opa, opb, T{2}, a, b, T{-1}, c.view());
      EXPECT_LE(rel_error(c, expect), tol)
          << "opa=" << static_cast<char>(opa)
          << " opb=" << static_cast<char>(opb);
    }
  }
}

TYPED_TEST(BlasTyped, GemmBetaZeroIgnoresGarbage) {
  using T = TypeParam;
  Matrix<T> a(4, 4), b(4, 4), c(4, 4);
  Rng rng(6);
  rng.fill_uniform<T>(a);
  rng.fill_uniform<T>(b);
  // Poison C with NaN-free garbage; beta = 0 must overwrite it.
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) c(i, j) = T{1e30f};
  Matrix<T> expect = gemm_ref<T>(Op::N, Op::N, T{1}, a, b, T{0},
                                 Matrix<T>(4, 4));
  gemm<T>(Op::N, Op::N, T{1}, a, b, T{0}, c.view());
  EXPECT_LE(rel_error(c, expect), real_t<T>(1e-5));
}

TYPED_TEST(BlasTyped, GemmParallelMatchesSerial) {
  using T = TypeParam;
  const index_t m = 64, n = 96, k = 33;
  Matrix<T> a = random_matrix<T>(m, k, 7);
  Matrix<T> b = random_matrix<T>(k, n, 8);
  Matrix<T> c1 = random_matrix<T>(m, n, 9);
  Matrix<T> c2 = to_matrix(c1.view());
  gemm<T>(Op::N, Op::N, T{1}, a, b, T{1}, c1.view());
  gemm_parallel<T>(Op::N, Op::N, T{1}, a, b, T{1}, c2.view());
  EXPECT_LE(rel_error(c1, c2), real_t<T>(1e-5));
}

TYPED_TEST(BlasTyped, GemmOnStridedViews) {
  using T = TypeParam;
  Matrix<T> big = random_matrix<T>(20, 20, 10);
  Matrix<T> c(5, 5);
  // Multiply two interior sub-blocks.
  auto a = big.view().block(2, 3, 5, 7);
  auto b = big.view().block(9, 11, 7, 5);
  gemm<T>(Op::N, Op::N, T{1}, a, b, T{0}, c.view());
  Matrix<T> ad = to_matrix(ConstMatrixView<T>(a));
  Matrix<T> bd = to_matrix(ConstMatrixView<T>(b));
  Matrix<T> expect = gemm_ref<T>(Op::N, Op::N, T{1}, ad, bd, T{0},
                                 Matrix<T>(5, 5));
  EXPECT_LE(rel_error(c, expect), real_t<T>(1e-5));
}

TEST(Blas, GemmShapeMismatchThrows) {
  Matrix<double> a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(gemm<double>(Op::N, Op::N, 1.0, a, b, 0.0, c.view()), Error);
}

TEST(Blas, GemmEmptyKIsScale) {
  Matrix<double> a(3, 0), b(0, 2), c(3, 2);
  c(0, 0) = 2.0;
  gemm<double>(Op::N, Op::N, 1.0, a, b, 3.0, c.view());
  EXPECT_EQ(c(0, 0), 6.0);
  gemm<double>(Op::N, Op::N, 1.0, a, b, 0.0, c.view());
  EXPECT_EQ(c(0, 0), 0.0);
}

TEST(Blas, Gemv) {
  Matrix<double> a = random_matrix<double>(6, 4, 11);
  std::vector<double> x = {1, -2, 3, 0.5}, y(6, 1.0);
  gemv<double>(Op::N, 2.0, a, x.data(), -1.0, y.data());
  for (index_t i = 0; i < 6; ++i) {
    double s = 0;
    for (index_t l = 0; l < 4; ++l) s += a(i, l) * x[l];
    EXPECT_NEAR(y[i], 2 * s - 1.0, 1e-13);
  }
}

TEST(Blas, NormsAndAxpy) {
  Matrix<double> a(2, 2);
  a(0, 0) = 3;
  a(1, 1) = 4;
  EXPECT_DOUBLE_EQ(norm_fro(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_max(a), 4.0);
  Matrix<double> b(2, 2);
  axpy<double>(2.0, a, b.view());
  EXPECT_DOUBLE_EQ(b(0, 0), 6.0);
  scale_inplace(0.5, b.view());
  EXPECT_DOUBLE_EQ(b(0, 0), 3.0);
}

TEST(Blas, DotcConjugatesFirstArg) {
  using C = std::complex<double>;
  std::vector<C> x = {C(1, 2)}, y = {C(3, -1)};
  const C d = dotc(x.data(), y.data(), 1);
  EXPECT_NEAR(std::abs(d - C(1, -2) * C(3, -1)), 0.0, 1e-15);
}

TEST(Blas, FlopCounting) {
  FlopCounter::instance().reset();
  Matrix<double> a = random_matrix<double>(10, 10, 1);
  Matrix<double> b = random_matrix<double>(10, 10, 2);
  Matrix<double> c(10, 10);
  gemm<double>(Op::N, Op::N, 1.0, a, b, 0.0, c.view());
  EXPECT_EQ(FlopCounter::instance().get(FlopCounter::kGemm), 2000u);
  FlopCounter::instance().reset();
  EXPECT_EQ(FlopCounter::instance().total(), 0u);
}

}  // namespace
}  // namespace hodlrx
