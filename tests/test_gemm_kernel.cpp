#include <gtest/gtest.h>

#include "batched/batched_blas.hpp"
#include "common/gemm_kernel.hpp"
#include "common/workspace.hpp"
#include "test_util.hpp"

/// Cross-checks of the packed, register-tiled GEMM engine against a plain
/// element-accessor reference, over every op pair, all four scalar types,
/// odd/edge shapes, degenerate alpha/beta, submatrix views with ld > rows,
/// and the batch layer's shared-operand (stride 0) fast path.

namespace hodlrx {
namespace {

using test::rel_error;

template <typename T>
Matrix<T> gemm_ref(Op opa, Op opb, T alpha, ConstMatrixView<T> a,
                   ConstMatrixView<T> b, T beta, ConstMatrixView<T> c0) {
  auto at = [&](index_t i, index_t l) {
    return opa == Op::N ? a(i, l) : (opa == Op::T ? a(l, i) : conj_s(a(l, i)));
  };
  auto bt = [&](index_t l, index_t j) {
    return opb == Op::N ? b(l, j) : (opb == Op::T ? b(j, l) : conj_s(b(j, l)));
  };
  const index_t m = op_rows(opa, a), n = op_cols(opb, b);
  const index_t k = op_cols(opa, a);
  Matrix<T> c = to_matrix(c0);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T s{};
      for (index_t l = 0; l < k; ++l) s += at(i, l) * bt(l, j);
      c(i, j) = alpha * s + beta * c(i, j);
    }
  return c;
}

template <typename T>
real_t<T> tol() {
  return std::is_same_v<real_t<T>, float> ? real_t<T>(2e-3) : real_t<T>(1e-11);
}

template <typename T>
class GemmKernelTyped : public ::testing::Test {};
using GemmTypes = ::testing::Types<float, double, std::complex<float>,
                                   std::complex<double>>;
TYPED_TEST_SUITE(GemmKernelTyped, GemmTypes);

/// The engine itself (bypassing the size-cutoff dispatch) for every op pair
/// and a sweep of odd/edge shapes, including dimensions of 1 and shapes that
/// straddle the MR/NR register-tile boundaries.
TYPED_TEST(GemmKernelTyped, AllOpPairsEdgeShapes) {
  using T = TypeParam;
  Rng rng(42);
  // Shapes drawn from {1, 7, 8, 63, 64, 129}: below/at/above the MR/NR
  // register tiles and the 64-wide cache lines, plus degenerate dims of 1.
  const struct { index_t m, n, k; } shapes[] = {
      {1, 1, 1},    {7, 8, 63},   {8, 7, 64},  {63, 129, 7},
      {64, 64, 64}, {129, 63, 8}, {1, 129, 64}, {129, 1, 63}, {63, 64, 129}};
  for (Op opa : {Op::N, Op::T, Op::C}) {
    for (Op opb : {Op::N, Op::T, Op::C}) {
      for (const auto& s : shapes) {
        Matrix<T> a(opa == Op::N ? s.m : s.k, opa == Op::N ? s.k : s.m);
        Matrix<T> b(opb == Op::N ? s.k : s.n, opb == Op::N ? s.n : s.k);
        Matrix<T> c(s.m, s.n);
        rng.fill_uniform<T>(a);
        rng.fill_uniform<T>(b);
        rng.fill_uniform<T>(c);
        Matrix<T> expect = gemm_ref<T>(opa, opb, T{2}, a, b, T{-1}, c);
        gemm_packed<T>(opa, opb, T{2}, a, b, T{-1}, c.view());
        EXPECT_LE(rel_error(c, expect), tol<T>())
            << "opa=" << static_cast<char>(opa)
            << " opb=" << static_cast<char>(opb) << " m=" << s.m
            << " n=" << s.n << " k=" << s.k;
      }
    }
  }
}

/// alpha in {0, 1, -2} x beta in {0, 1, -2}; beta = 0 must overwrite
/// whatever is in C (including huge garbage values).
TYPED_TEST(GemmKernelTyped, AlphaBetaCombos) {
  using T = TypeParam;
  Rng rng(7);
  const index_t m = 64, n = 63, k = 65;
  Matrix<T> a(m, k), b(n, k);  // exercised as (N, C)
  rng.fill_uniform<T>(a);
  rng.fill_uniform<T>(b);
  for (T alpha : {T{0}, T{1}, T{-2}}) {
    for (T beta : {T{0}, T{1}, T{-2}}) {
      Matrix<T> c(m, n);
      rng.fill_uniform<T>(c);
      if (beta == T{}) {
        for (index_t j = 0; j < n; ++j)
          for (index_t i = 0; i < m; ++i) c(i, j) = T{1e30f};
      }
      Matrix<T> c0 = to_matrix(c.view());
      if (beta == T{}) c0.set_zero();
      Matrix<T> expect = gemm_ref<T>(Op::N, Op::C, alpha, a, b, beta, c0);
      gemm_packed<T>(Op::N, Op::C, alpha, a, b, beta, c.view());
      EXPECT_LE(rel_error(c, expect), tol<T>());
    }
  }
}

/// Operands and C as interior sub-blocks of larger matrices (ld > rows).
TYPED_TEST(GemmKernelTyped, SubmatrixViews) {
  using T = TypeParam;
  Matrix<T> abig = random_matrix<T>(150, 150, 3);
  Matrix<T> bbig = random_matrix<T>(150, 150, 4);
  Matrix<T> cbig = random_matrix<T>(150, 150, 5);
  // C(70x40) = op(A)(70x90) * op(B)(90x40) on interior blocks.
  auto a = ConstMatrixView<T>(abig.view().block(3, 5, 90, 70));   // used as C
  auto b = ConstMatrixView<T>(bbig.view().block(11, 2, 90, 40));  // used as N
  MatrixView<T> c = cbig.view().block(40, 60, 70, 40);
  Matrix<T> expect = gemm_ref<T>(Op::C, Op::N, T{1}, a, b, T{2},
                                 ConstMatrixView<T>(c));
  gemm_packed<T>(Op::C, Op::N, T{1}, a, b, T{2}, c);
  EXPECT_LE(rel_error(to_matrix(ConstMatrixView<T>(c)), expect), tol<T>());
}

/// The dispatch in gemm() must agree with the engine above the cutoff,
/// including the transposed combos that used to run the generic loop.
TYPED_TEST(GemmKernelTyped, DispatchedGemmMatchesReference) {
  using T = TypeParam;
  Rng rng(21);
  for (Op opa : {Op::N, Op::C}) {
    for (Op opb : {Op::T, Op::C}) {
      const index_t m = 140, n = 73, k = 97;
      Matrix<T> a(opa == Op::N ? m : k, opa == Op::N ? k : m);
      Matrix<T> b(opb == Op::N ? k : n, opb == Op::N ? n : k);
      Matrix<T> c(m, n);
      rng.fill_uniform<T>(a);
      rng.fill_uniform<T>(b);
      rng.fill_uniform<T>(c);
      Matrix<T> expect = gemm_ref<T>(opa, opb, T{-1}, a, b, T{2}, c);
      gemm<T>(opa, opb, T{-1}, a, b, T{2}, c.view());
      EXPECT_LE(rel_error(c, expect), tol<T>());
    }
  }
}

/// Prepacked whole-operand multiplies, with k and n crossing the KC/NC
/// cache-block boundaries so multiple tiles are exercised.
TYPED_TEST(GemmKernelTyped, PrepackedMatchesReference) {
  using T = TypeParam;
  constexpr index_t KC = GemmBlocking<T>::KC;
  const index_t m = 65, n = 70, k = KC + 44;  // 2 k-tiles
  Matrix<T> a = random_matrix<T>(k, m, 31);  // used as op C -> m x k
  Matrix<T> b = random_matrix<T>(k, n, 32);
  Matrix<T> c1 = random_matrix<T>(m, n, 33);
  Matrix<T> c2 = to_matrix(c1.view());
  Matrix<T> expect = gemm_ref<T>(Op::C, Op::N, T{2}, a, b, T{-1}, c1);

  PackedMatrix<T> bp = pack_b_full<T>(Op::N, b);
  EXPECT_EQ(bp.rows(), k);
  EXPECT_EQ(bp.cols(), n);
  gemm_prepacked_b<T>(Op::C, T{2}, a, bp, T{-1}, c1.view());
  EXPECT_LE(rel_error(c1, expect), tol<T>());

  PackedMatrix<T> ap = pack_a_full<T>(Op::C, a);
  EXPECT_EQ(ap.rows(), m);
  EXPECT_EQ(ap.cols(), k);
  gemm_prepacked_a<T>(ap, T{2}, Op::N, b, T{-1}, c2.view());
  EXPECT_LE(rel_error(c2, expect), tol<T>());
}

/// Strided-batched with stride_b == 0: every problem multiplies the same B.
/// Numerics must match per-problem reference gemms AND the shared operand
/// must be packed exactly once for the whole launch.
TYPED_TEST(GemmKernelTyped, StridedBatchedSharedB) {
  using T = TypeParam;
  const index_t m = 48, n = 40, k = 56, batch = 5;
  Matrix<T> a = random_matrix<T>(m, k * batch, 51);  // problems side by side
  Matrix<T> b = random_matrix<T>(k, n, 52);
  Matrix<T> c(m, n * batch);
  Rng rng(53);
  rng.fill_uniform<T>(c.view());
  Matrix<T> c0 = to_matrix(c.view());

  gemm_stats::reset();
  gemm_strided_batched<T>(Op::N, Op::N, m, n, k, T{1}, a.data(), m, m * k,
                          b.data(), k, 0, T{-1}, c.data(), m, m * n, batch);
  EXPECT_EQ(gemm_stats::shared_packs(), 1u)
      << "batch-shared B must be packed exactly once per launch";
  EXPECT_EQ(gemm_stats::b_packs(), 0u)
      << "no per-problem B packs should happen when B is shared";
  EXPECT_GE(gemm_stats::a_packs(), static_cast<std::uint64_t>(batch));

  for (index_t i = 0; i < batch; ++i) {
    Matrix<T> expect = gemm_ref<T>(
        Op::N, Op::N, T{1}, a.view().block(0, i * k, m, k), b, T{-1},
        c0.view().block(0, i * n, m, n));
    EXPECT_LE(rel_error<T>(ConstMatrixView<T>(c.block(0, i * n, m, n)),
                           expect.view()),
              tol<T>())
        << "problem " << i;
  }
}

/// Strided-batched with stride_a == 0 (shared left operand), transposed.
TYPED_TEST(GemmKernelTyped, StridedBatchedSharedA) {
  using T = TypeParam;
  const index_t m = 32, n = 36, k = 44, batch = 4;
  Matrix<T> a = random_matrix<T>(k, m, 61);  // op C -> m x k, shared
  Matrix<T> b = random_matrix<T>(k, n * batch, 62);
  Matrix<T> c(m, n * batch);

  gemm_stats::reset();
  gemm_strided_batched<T>(Op::C, Op::N, m, n, k, T{1}, a.data(), k, 0,
                          b.data(), k, k * n, T{0}, c.data(), m, m * n,
                          batch);
  EXPECT_EQ(gemm_stats::shared_packs(), 1u);
  EXPECT_EQ(gemm_stats::a_packs(), 0u);

  for (index_t i = 0; i < batch; ++i) {
    Matrix<T> expect =
        gemm_ref<T>(Op::C, Op::N, T{1}, a, b.view().block(0, i * n, k, n),
                    T{0}, Matrix<T>(m, n));
    EXPECT_LE(rel_error<T>(ConstMatrixView<T>(c.block(0, i * n, m, n)),
                           expect.view()),
              tol<T>());
  }
}

/// The workspace arena must stop growing once the engine reaches steady
/// state: repeated multiplies reuse the same per-thread buffers.
TEST(GemmKernel, WorkspaceReusedAcrossCalls) {
  Matrix<double> a = random_matrix<double>(100, 100, 71);
  Matrix<double> b = random_matrix<double>(100, 100, 72);
  Matrix<double> c(100, 100);
  gemm_packed<double>(Op::N, Op::N, 1.0, a, b, 0.0, c.view());
  const std::size_t grown = WorkspaceArena::local().grow_events();
  for (int rep = 0; rep < 5; ++rep)
    gemm_packed<double>(Op::T, Op::C, 1.0, a, b, 0.5, c.view());
  EXPECT_EQ(WorkspaceArena::local().grow_events(), grown)
      << "packing buffers must be reused, not reallocated per call";
}

/// Empty-k and zero-sized problems through the engine's degenerate paths.
TEST(GemmKernel, DegenerateShapes) {
  Matrix<double> a(5, 0), b(0, 4), c(5, 4);
  c(0, 0) = 3.0;
  gemm_packed<double>(Op::N, Op::N, 1.0, a, b, 2.0, c.view());
  EXPECT_EQ(c(0, 0), 6.0);
  gemm_packed<double>(Op::N, Op::N, 1.0, a, b, 0.0, c.view());
  EXPECT_EQ(c(0, 0), 0.0);
  Matrix<double> e(0, 0);
  gemm_packed<double>(Op::N, Op::N, 1.0, e, e, 0.0, e.view());  // no crash
}

}  // namespace
}  // namespace hodlrx
