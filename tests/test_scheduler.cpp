#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "bie/laplace.hpp"
#include "common/access_audit.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/lapack.hpp"
#include "common/task_graph.hpp"
#include "common/thread_pool.hpp"
#include "core/factorization.hpp"
#include "core/hodlr.hpp"
#include "test_util.hpp"

/// \file test_scheduler.cpp
/// The dependency-graph scheduler suite (docs/runtime-scheduler.md):
///
///   - TaskGraph unit semantics: dependency ordering, exception capture +
///     drain, cycle detection at quiescence, the sched_stats counters, and
///     the "graphs reuse the warm pool" invariant (no thread re-creation,
///     one pool launch per run),
///   - the HODLRX_SCHED switch itself (reread per call, "graph" vs default),
///   - end-to-end agreement: the graph-scheduled build + factorization of a
///     Laplace BIE operator must match the level-synchronous path — the
///     per-problem kernels are identical, only the interleaving changes,
///   - and fault recovery inside a graph run: an injected svd.sweeps budget
///     exhaustion in a graph-scheduled batched build must heal under the
///     default OnBreakdown::kRecover with injected() == recovered().
///
/// The binary pins HODLRX_NUM_THREADS=4 before the pool spawns so graph runs
/// really fork on 1-CPU CI; HODLRX_SCHED itself is flipped per test with
/// setenv (the mode is reread on every query, like HODLRX_FAULT).

namespace hodlrx {
namespace {

using fault::Site;
using test::rel_error;

const bool g_env_ready = [] {
  setenv("HODLRX_NUM_THREADS", "4", 1);
  return true;
}();

/// Scope guard for one environment variable (same shape as test_faults's;
/// the sched legs export HODLRX_SCHED process-wide, so tests pin their own).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr)
      ::setenv(name, value, /*overwrite=*/1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_old_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// ---------------------------------------------------------------------------
// HODLRX_SCHED resolution
// ---------------------------------------------------------------------------

TEST(SchedModeSwitch, RereadPerCall) {
  ScopedEnv env("HODLRX_SCHED", nullptr);
  EXPECT_EQ(sched_mode(), SchedMode::kLevels) << "unset -> levels";
  setenv("HODLRX_SCHED", "graph", 1);
  EXPECT_EQ(sched_mode(), SchedMode::kGraph);
  setenv("HODLRX_SCHED", "levels", 1);
  EXPECT_EQ(sched_mode(), SchedMode::kLevels);
  setenv("HODLRX_SCHED", "banana", 1);
  EXPECT_EQ(sched_mode(), SchedMode::kLevels) << "unknown -> levels";
  EXPECT_STREQ(sched_mode_name(SchedMode::kGraph), "graph");
  EXPECT_STREQ(sched_mode_name(SchedMode::kLevels), "levels");
}

// ---------------------------------------------------------------------------
// TaskGraph unit semantics
// ---------------------------------------------------------------------------

TEST(TaskGraph, EmptyGraphRuns) {
  TaskGraph g;
  EXPECT_EQ(g.size(), 0);
  g.run();  // no nodes, no workers dispatched, no throw
}

/// Diamond + wide fan: every node asserts its predecessors completed before
/// it started, under real pool concurrency.
TEST(TaskGraph, DependenciesAreRespected) {
  ASSERT_TRUE(g_env_ready);
  constexpr index_t kFan = 64;
  TaskGraph g;
  std::atomic<int> a_done{0}, mids_done{0};
  bool join_saw_all = false;
  const TaskGraph::NodeId a = g.add([&] { a_done.store(1); });
  std::vector<TaskGraph::NodeId> mids;
  for (index_t i = 0; i < kFan; ++i) {
    mids.push_back(g.add([&] {
      EXPECT_EQ(a_done.load(), 1) << "mid node ran before its predecessor";
      mids_done.fetch_add(1);
    }));
    g.add_edge(a, mids.back());
  }
  const TaskGraph::NodeId join =
      g.add([&] { join_saw_all = mids_done.load() == kFan; });
  for (const TaskGraph::NodeId m : mids) g.add_edge(m, join);
  EXPECT_EQ(g.size(), kFan + 2);
  EXPECT_EQ(g.num_edges(), 2 * kFan);
  g.run();
  EXPECT_TRUE(join_saw_all) << "join ran before all mid nodes completed";
}

TEST(TaskGraph, StatsCountersAccumulate) {
  sched_stats::reset();
  EXPECT_EQ(sched_stats::graphs_run(), 0u);
  TaskGraph g;
  const TaskGraph::NodeId a = g.add([] {});
  const TaskGraph::NodeId b = g.add([] {});
  const TaskGraph::NodeId c = g.add([] {});
  const TaskGraph::NodeId d = g.add([] {});
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.run();
  EXPECT_EQ(sched_stats::graphs_run(), 1u);
  EXPECT_EQ(sched_stats::nodes(), 4u);
  EXPECT_EQ(sched_stats::edges(), 4u);
  EXPECT_GE(sched_stats::max_ready_depth(), 1u);
  sched_stats::reset();
  EXPECT_EQ(sched_stats::nodes(), 0u);
}

TEST(TaskGraph, SingleNodeGraphRuns) {
  TaskGraph g;
  bool ran = false;
  g.add([&] { ran = true; });
  EXPECT_EQ(g.size(), 1);
  EXPECT_EQ(g.num_edges(), 0);
  g.run();
  EXPECT_TRUE(ran);
}

/// The same edge added twice is counted twice (the builder does not dedup —
/// sites rely on that being cheap) but must not change execution: the
/// successor still runs exactly once, after its predecessor.
TEST(TaskGraph, DuplicateEdgeRunsSuccessorOnce) {
  TaskGraph g;
  std::atomic<int> a_runs{0}, b_runs{0};
  const TaskGraph::NodeId a = g.add([&] { a_runs.fetch_add(1); });
  const TaskGraph::NodeId b = g.add([&] {
    EXPECT_EQ(a_runs.load(), 1) << "b ran before a despite the edges";
    b_runs.fetch_add(1);
  });
  g.add_edge(a, b);
  g.add_edge(a, b);  // duplicate
  EXPECT_EQ(g.num_edges(), 2);
  g.run();
  EXPECT_EQ(a_runs.load(), 1);
  EXPECT_EQ(b_runs.load(), 1) << "duplicate edge double-released the node";
}

/// An exception from the very first node (the only source): nothing else can
/// ever become ready, and run() must still drain and rethrow rather than
/// deadlock waiting for successors.
TEST(TaskGraph, ExceptionFromFirstNode) {
  TaskGraph g;
  std::atomic<bool> any_successor_ran{false};
  const TaskGraph::NodeId root =
      g.add([] { throw std::runtime_error("first node failure"); });
  for (int i = 0; i < 4; ++i) {
    const TaskGraph::NodeId s =
        g.add([&] { any_successor_ran.store(true); });
    g.add_edge(root, s);
  }
  EXPECT_THROW(g.run(), std::runtime_error);
  EXPECT_FALSE(any_successor_ran.load());
}

/// A cycle in one connected component must be detected even while a fully
/// independent component executes normally (quiescence, not per-component
/// progress, triggers the check).
TEST(TaskGraph, CycleInDisconnectedComponentDetected) {
  TaskGraph g;
  std::atomic<int> healthy_runs{0};
  const TaskGraph::NodeId h1 = g.add([&] { healthy_runs.fetch_add(1); });
  const TaskGraph::NodeId h2 = g.add([&] { healthy_runs.fetch_add(1); });
  g.add_edge(h1, h2);
  const TaskGraph::NodeId c1 = g.add([] {});  // component 2: pure 2-cycle
  const TaskGraph::NodeId c2 = g.add([] {});
  g.add_edge(c1, c2);
  g.add_edge(c2, c1);
  EXPECT_THROW(g.run(), Error);
  EXPECT_EQ(healthy_runs.load(), 2)
      << "the healthy component must finish before the cycle is reported";
}

/// A throwing node fails the run with ITS exception; successors of the
/// failed node are never issued (their in-degree never drops).
TEST(TaskGraph, ExceptionPropagatesAndSuccessorsDoNotRun) {
  TaskGraph g;
  std::atomic<bool> successor_ran{false};
  const TaskGraph::NodeId pre = g.add([] {});
  const TaskGraph::NodeId bad =
      g.add([] { throw std::runtime_error("node failure"); });
  const TaskGraph::NodeId post = g.add([&] { successor_ran.store(true); });
  g.add_edge(pre, bad);
  g.add_edge(bad, post);
  EXPECT_THROW(g.run(), std::runtime_error);
  EXPECT_FALSE(successor_ran.load())
      << "successor of a failed node must not execute";
}

TEST(TaskGraph, PureCycleIsRejected) {
  TaskGraph g;
  const TaskGraph::NodeId a = g.add([] {});
  const TaskGraph::NodeId b = g.add([] {});
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.run(), Error) << "no source nodes -> cycle";
}

TEST(TaskGraph, MidGraphCycleDetectedAtQuiescence) {
  TaskGraph g;
  std::atomic<bool> seed_ran{false};
  const TaskGraph::NodeId seed = g.add([&] { seed_ran.store(true); });
  const TaskGraph::NodeId a = g.add([] {});
  const TaskGraph::NodeId b = g.add([] {});
  g.add_edge(seed, a);
  g.add_edge(a, b);
  g.add_edge(b, a);  // a <-> b can never start
  EXPECT_THROW(g.run(), Error);
  EXPECT_TRUE(seed_ran.load()) << "reachable work still executes";
}

/// Graph runs ride the persistent pool: no thread creation after warm-up and
/// exactly one pool launch per run() (the workers loop inside one launch).
TEST(TaskGraph, RunsReuseTheWarmPool) {
  ASSERT_TRUE(g_env_ready);
  ThreadPool& pool = ThreadPool::instance();
  {
    TaskGraph warm;  // spin up the pool before sampling the counters
    warm.add([] {});
    warm.add([] {});
    warm.run();
  }
  const std::uint64_t threads0 = pool.threads_created();
  const std::uint64_t launches0 = pool.launches();
  constexpr int kRuns = 5;
  for (int r = 0; r < kRuns; ++r) {
    TaskGraph g;
    std::vector<TaskGraph::NodeId> ids;
    for (index_t i = 0; i < 8; ++i) ids.push_back(g.add([] {}));
    for (index_t i = 1; i < 8; ++i) g.add_edge(ids[i - 1], ids[i]);
    g.run();
  }
  EXPECT_EQ(pool.threads_created(), threads0)
      << "graph runs must not re-create pool threads";
  if (pool.threads() > 1) {
    EXPECT_EQ(pool.launches(), launches0 + kRuns)
        << "each run() must cost exactly one pool launch";
  }
}

// ---------------------------------------------------------------------------
// Declared-access audit (HODLRX_AUDIT, docs/static-analysis.md)
// ---------------------------------------------------------------------------

/// Audit off (the default): no auditor is allocated, declarations are a null
/// check, and every audit counter stays at zero — the counter-assert that
/// HODLRX_AUDIT=off costs nothing on the graph-build path.
TEST(AccessAudit, OffByDefaultWithZeroOverhead) {
  ScopedEnv audit_env("HODLRX_AUDIT", nullptr);
  audit_stats::reset();
  int buf[8] = {};
  TaskGraph g;
  EXPECT_FALSE(g.audited());
  const TaskGraph::NodeId a = g.add([] {}, "writer", 0);
  const TaskGraph::NodeId b = g.add([] {}, "writer", 1);
  g.writes(a, buf, 0, 8);
  g.writes(b, buf, 0, 8);  // unordered conflict — must NOT be seen when off
  g.run();
  EXPECT_EQ(audit_stats::accesses(), 0u);
  EXPECT_EQ(audit_stats::checks(), 0u);
  EXPECT_EQ(audit_stats::graphs_audited(), 0u);
  EXPECT_EQ(audit_stats::violations(), 0u);
}

TEST(AccessAudit, UnorderedConflictIsReportedBeforeExecution) {
  ScopedEnv audit_env("HODLRX_AUDIT", "on");
  audit_stats::reset();
  int buf[8] = {};
  TaskGraph g;
  EXPECT_TRUE(g.audited());
  std::atomic<bool> executed{false};
  const TaskGraph::NodeId a = g.add([&] { executed.store(true); }, "fill", 0);
  const TaskGraph::NodeId b = g.add([&] { executed.store(true); }, "drain", 1);
  g.writes(a, buf, 0, 8);
  g.reads(b, buf, 4, 12);  // overlaps [4,8), no edge
  try {
    g.run();
    FAIL() << "unordered write/read pair must throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("access audit"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fill(0)"), std::string::npos)
        << "report must name the writing node: " << msg;
    EXPECT_NE(msg.find("drain(1)"), std::string::npos)
        << "report must name the reading node: " << msg;
    EXPECT_NE(msg.find("edge is missing"), std::string::npos) << msg;
  }
  EXPECT_FALSE(executed.load())
      << "verification must reject the graph before any node runs";
  EXPECT_EQ(audit_stats::violations(), 1u);
}

TEST(AccessAudit, DeclaredEdgeOrdersTheConflict) {
  ScopedEnv audit_env("HODLRX_AUDIT", "on");
  audit_stats::reset();
  int buf[8] = {};
  TaskGraph g;
  const TaskGraph::NodeId a = g.add([] {}, "fill", 0);
  const TaskGraph::NodeId b = g.add([] {}, "drain", 1);
  g.writes(a, buf, 0, 8);
  g.reads(b, buf, 4, 12);
  g.add_edge(a, b);
  g.run();  // ordered -> clean
  EXPECT_EQ(audit_stats::graphs_audited(), 1u);
  EXPECT_GE(audit_stats::checks(), 1u);
  EXPECT_EQ(audit_stats::violations(), 0u);
}

/// Happens-before is the transitive closure of the edges, not edge adjacency:
/// a -> m -> b orders a's write against b's read with no direct a -> b edge.
TEST(AccessAudit, TransitivePathSuffices) {
  ScopedEnv audit_env("HODLRX_AUDIT", "on");
  audit_stats::reset();
  int buf[4] = {};
  TaskGraph g;
  const TaskGraph::NodeId a = g.add([] {}, "produce");
  const TaskGraph::NodeId m = g.add([] {}, "relay");
  const TaskGraph::NodeId b = g.add([] {}, "consume");
  g.writes(a, buf, 0, 4);
  g.reads(b, buf, 0, 4);
  g.add_edge(a, m);
  g.add_edge(m, b);
  g.run();
  EXPECT_EQ(audit_stats::violations(), 0u);
  EXPECT_GE(audit_stats::checks(), 1u);
}

/// kGuardedWrite models mutations serialized by a site mutex (the pivot-
/// storage ensure path): guarded-vs-guarded needs no edge, but a guarded
/// write against a plain read still does.
TEST(AccessAudit, GuardedWritesOnlyConflictWithPlainAccesses) {
  ScopedEnv audit_env("HODLRX_AUDIT", "on");
  int buf[4] = {};
  {
    TaskGraph g;
    const TaskGraph::NodeId a = g.add([] {}, "ensure", 0);
    const TaskGraph::NodeId b = g.add([] {}, "ensure", 1);
    g.writes_guarded(a, buf, 0, 4);
    g.writes_guarded(b, buf, 0, 4);
    g.run();  // both under the site mutex: no edge required
  }
  {
    TaskGraph g;
    const TaskGraph::NodeId a = g.add([] {}, "ensure", 0);
    const TaskGraph::NodeId b = g.add([] {}, "reader", 1);
    g.writes_guarded(a, buf, 0, 4);
    g.reads(b, buf, 0, 4);  // mutex does not order the unguarded reader
    EXPECT_THROW(g.run(), Error);
  }
}

TEST(AccessAudit, DistinctSpacesNeverConflict) {
  ScopedEnv audit_env("HODLRX_AUDIT", "on");
  audit_stats::reset();
  int buf_a[4] = {}, buf_b[4] = {};
  TaskGraph g;
  const TaskGraph::NodeId a = g.add([] {}, "writerA");
  const TaskGraph::NodeId b = g.add([] {}, "writerB");
  g.writes(a, buf_a, 0, 4);
  g.writes(b, buf_b, 0, 4);  // same rectangle, different space
  g.run();
  EXPECT_EQ(audit_stats::checks(), 0u);
  EXPECT_EQ(audit_stats::violations(), 0u);
  EXPECT_EQ(audit_stats::graphs_audited(), 1u);
}

/// THE mutation test: delete exactly one cross-level prefix -> T edge from
/// the batched factorization DAG (the "xlevel" tag, one-shot) and the
/// auditor must reject the graph with a structured Error naming both nodes.
/// The deleted pair has no alternative ordering path — prefix chunks of
/// level l+1 are the ONLY writers of the Y panel columns level l's T stage
/// reads — so detection is deterministic, not schedule-dependent.
TEST(AccessAudit, MissingCrossLevelEdgeIsDetected) {
  ASSERT_TRUE(g_env_ready);
  ScopedEnv fault_env("HODLRX_FAULT", nullptr);
  ScopedEnv sched_env("HODLRX_SCHED", "graph");
  ScopedEnv audit_env("HODLRX_AUDIT", "on");
  const index_t n = 256;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 911);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;  // well-conditioned LU
  const ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.compressor = Compressor::kRsvdBatched;
  bopt.max_rank = 24;
  bopt.tol = 1e-10;
  const HodlrMatrix<double> h =
      HodlrMatrix<double>::build_from_dense(a, tree, bopt);
  const PackedHodlr<double> p = PackedHodlr<double>::pack(h);

  audit_stats::reset();
  sched_testing::drop_next_tagged_edge("xlevel");
  try {
    const HodlrFactorization<double> f = HodlrFactorization<double>::factor(p, {});
    sched_testing::drop_next_tagged_edge(nullptr);
    FAIL() << "factorization with a deleted cross-level edge must be "
              "rejected by the access audit";
  } catch (const Error& e) {
    sched_testing::drop_next_tagged_edge(nullptr);  // belt and braces
    const std::string msg = e.what();
    EXPECT_NE(msg.find("access audit"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'prefix("), std::string::npos)
        << "report must name the missing edge's writer: " << msg;
    EXPECT_NE(msg.find("'T("), std::string::npos)
        << "report must name the missing edge's reader: " << msg;
  }
  EXPECT_GE(audit_stats::violations(), 1u);

  // Undropped, the same factorization passes the audit clean.
  audit_stats::reset();
  const HodlrFactorization<double> f = HodlrFactorization<double>::factor(p, {});
  EXPECT_GE(audit_stats::graphs_audited(), 1u);
  EXPECT_GT(audit_stats::checks(), 0u);
  EXPECT_EQ(audit_stats::violations(), 0u);
  (void)f;
}

/// The getrf lookahead DAG (P/U/S nodes incl. the U-reader vs left-swap
/// fan-in edges) audits clean at a size that exercises several panels.
TEST(AccessAudit, GetrfLookaheadAuditsClean) {
  ASSERT_TRUE(g_env_ready);
  ScopedEnv sched_env("HODLRX_SCHED", "graph");
  ScopedEnv audit_env("HODLRX_AUDIT", "on");
  const index_t n = 256;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 313);
  for (index_t i = 0; i < n; ++i) a(i, i) += 4.0;
  Matrix<double> ref = a;
  std::vector<index_t> ipiv(static_cast<std::size_t>(n));
  std::vector<index_t> ipiv_ref(static_cast<std::size_t>(n));
  audit_stats::reset();
  getrf_parallel(a.view(), ipiv.data());
  EXPECT_GE(audit_stats::graphs_audited(), 1u)
      << "n=256 graph-mode LU must take the audited lookahead DAG";
  EXPECT_GT(audit_stats::checks(), 0u);
  EXPECT_EQ(audit_stats::violations(), 0u);
  // And it is still the same factorization the levels path computes.
  {
    ScopedEnv levels_env("HODLRX_SCHED", "levels");
    getrf_parallel(ref.view(), ipiv_ref.data());
  }
  EXPECT_EQ(ipiv, ipiv_ref);
  EXPECT_LE(rel_error<double>(a, ref), 1e-14)
      << "lookahead DAG diverged from the blocked LU";
}

// ---------------------------------------------------------------------------
// End-to-end: graph scheduling matches the level-synchronous path
// ---------------------------------------------------------------------------

/// The Laplace BIE pipeline of bench_table4: batched rsvd build, batched
/// factorization, solve. The graph scheduler reorders work across levels but
/// every per-problem kernel is the level path's serial code, so the results
/// must agree to roundoff-free identity.
TEST(SchedAgreement, LaplaceBieBuildFactorSolve) {
  ASSERT_TRUE(g_env_ready);
  ScopedEnv fault_env("HODLRX_FAULT", nullptr);
  ScopedEnv sched_env("HODLRX_SCHED", "levels");
  const index_t n = 512;
  bie::BlobContour contour;
  const bie::ContourDiscretization d = bie::discretize(contour, n);
  bie::LaplaceExteriorBIE<double> gen(d, {0.0, 0.0});
  const ClusterTree tree = ClusterTree::uniform(n, 64);
  BuildOptions bopt;
  bopt.compressor = Compressor::kRsvdBatched;
  bopt.max_rank = 48;
  bopt.tol = 1e-10;
  bopt.rsvd_power_iterations = 2;
  Matrix<double> b(n, 1);
  for (index_t i = 0; i < n; ++i) b(i, 0) = std::sin(0.1 * i);

  // Levels-mode reference.
  const HodlrMatrix<double> hl = HodlrMatrix<double>::build(gen, tree, bopt);
  const PackedHodlr<double> pl = PackedHodlr<double>::pack(hl);
  const HodlrFactorization<double> fl =
      HodlrFactorization<double>::factor(pl, {});
  const Matrix<double> xl = fl.solve(b);

  // Graph mode: same generator, same options; sched_stats must prove the
  // graph path actually ran for both the build and the factorization.
  setenv("HODLRX_SCHED", "graph", 1);
  sched_stats::reset();
  const HodlrMatrix<double> hg = HodlrMatrix<double>::build(gen, tree, bopt);
  const std::uint64_t build_graphs = sched_stats::graphs_run();
  EXPECT_GE(build_graphs, 1u) << "graph build did not use the scheduler";
  const PackedHodlr<double> pg = PackedHodlr<double>::pack(hg);
  const HodlrFactorization<double> fg =
      HodlrFactorization<double>::factor(pg, {});
  EXPECT_GT(sched_stats::graphs_run(), build_graphs)
      << "graph factorization did not use the scheduler";
  EXPECT_GT(sched_stats::nodes(), 0u);
  const Matrix<double> xg = fg.solve(b);

  EXPECT_LE(rel_error<double>(hg.to_dense(), hl.to_dense()), 1e-14)
      << "graph-scheduled build diverged from the level-synchronous build";
  EXPECT_LE(rel_error(xg, xl), 1e-13)
      << "graph-scheduled factorization solves a different system";

  // And both solve the actual operator.
  Matrix<double> r(n, 1);
  hl.apply(ConstMatrixView<double>(xg.view()), r.view());
  axpy(-1.0, ConstMatrixView<double>(b.view()), r.view());
  EXPECT_LE(norm_fro<double>(r) / norm_fro<double>(b.view()), 1e-7);
}

// ---------------------------------------------------------------------------
// Fault recovery inside a graph run
// ---------------------------------------------------------------------------

/// svd.sweeps injected into a graph-scheduled batched build: the per-node
/// recovery (serial Jacobi re-run at 4x budget) must heal transparently even
/// though the firing node runs concurrently with other graph nodes.
TEST(SchedFault, SvdSweepsHealsInsideGraphBuild) {
  ASSERT_TRUE(g_env_ready);
  ScopedEnv fault_env("HODLRX_FAULT", "svd.sweeps");
  ScopedEnv sched_env("HODLRX_SCHED", "graph");
  fault_stats::reset();
  const index_t n = 128;
  Matrix<double> a = test::smooth_test_matrix<double>(n, 617);
  const ClusterTree tree = ClusterTree::uniform(n, 32);
  BuildOptions bopt;
  bopt.tol = 1e-10;
  bopt.max_rank = 32;
  bopt.compressor = Compressor::kRsvdBatched;
  FactorReport rep;
  const HodlrMatrix<double> h =
      HodlrMatrix<double>::build_from_dense(a, tree, bopt, &rep);
  EXPECT_GT(rep.svd_nonconverged, 0);
  EXPECT_EQ(rep.svd_recovered, rep.svd_nonconverged);
  EXPECT_EQ(fault_stats::injected(Site::kSvdSweeps), 1u);
  EXPECT_EQ(fault_stats::injected(), fault_stats::recovered())
      << "every injected fault must be healed by the recovery ladder";
  EXPECT_LE(rel_error<double>(h.to_dense(), a), 1e-8);
}

}  // namespace
}  // namespace hodlrx
