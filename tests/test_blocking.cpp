#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "batched/batched_blas.hpp"
#include "common/blocking.hpp"
#include "common/env.hpp"
#include "common/gemm_kernel.hpp"
#include "common/hwinfo.hpp"
#include "common/lapack.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "common/trsm_kernel.hpp"
#include "common/workspace.hpp"
#include "test_util.hpp"

/// The blocking-parameter property/stress suite guarding the
/// hardware-adaptive resolver (hwinfo.hpp + blocking.hpp) and the MR/NR
/// micro-kernel dispatch:
///
///   - the shared env parser and the per-knob fallback behavior (invalid /
///     zero / non-numeric overrides must be indistinguishable from unset),
///   - HODLRX_AUTOTUNE=off reproducing the pre-adaptive static defaults
///     bit-for-bit,
///   - sanity of the probed topology and of the analytical model derived
///     from it (packed panels must fit the cache levels they target),
///   - stability of the micro-kernel dispatch (no re-resolution, no thread
///     re-creation across launches; serial/batched/stream paths all bind
///     the same variant),
///   - and the core property: under RANDOMIZED blocking overrides —
///     including pathological ones (register-tile-sized, prime, huge) —
///     gemm/trsm/geqrf agree with the reference paths for all four scalar
///     types, with autotune both on and off.
///
/// This binary owns its environment: every test starts from a clean slate
/// (all HODLRX blocking variables unset) and re-resolves through the
/// test-only refresh hook.

namespace hodlrx {
namespace {

using test::rel_error;

const bool g_env_ready = [] {
  // Four pool threads so the stream/parallel paths fork even on 1-CPU CI.
  setenv("HODLRX_NUM_THREADS", "4", 1);
  return true;
}();

constexpr const char* kBlockingVars[] = {
    "HODLRX_AUTOTUNE", "HODLRX_GEMM_TILE", "HODLRX_GEMM_MC",
    "HODLRX_GEMM_KC",  "HODLRX_GEMM_NC",   "HODLRX_TRSM_NB",
    "HODLRX_QR_NB",    "HODLRX_BATCH_SIMD"};

/// Clean-slate guard: clears every blocking variable on entry AND exit, and
/// re-resolves, so tests cannot leak state into each other (or inherit the
/// degenerate-blocking environments the extra CTest legs set globally).
class ScopedBlockingEnv {
 public:
  ScopedBlockingEnv() {
    clear();
    refresh();
  }
  ~ScopedBlockingEnv() {
    clear();
    refresh();
  }
  void set(const char* name, const std::string& value) {
    setenv(name, value.c_str(), 1);
  }
  void set(const char* name, index_t value) {
    set(name, std::to_string(static_cast<long long>(value)));
  }
  void refresh() { blocking_detail::refresh_for_testing(); }
  static void clear() {
    for (const char* v : kBlockingVars) unsetenv(v);
  }
};

template <typename T>
real_t<T> tol() {
  return std::is_same_v<real_t<T>, float> ? real_t<T>(2e-3) : real_t<T>(1e-10);
}

template <typename T>
class BlockingTyped : public ::testing::Test {};
using AllTypes = ::testing::Types<float, double, std::complex<float>,
                                  std::complex<double>>;
TYPED_TEST_SUITE(BlockingTyped, AllTypes);

/// --- env parser -----------------------------------------------------------

TEST(EnvParser, FallbacksAndClamps) {
  ScopedBlockingEnv env;
  unsetenv("HODLRX_TEST_KNOB");
  EXPECT_EQ(env_positive("HODLRX_TEST_KNOB", 37), 37) << "unset -> fallback";
  setenv("HODLRX_TEST_KNOB", "", 1);
  EXPECT_EQ(env_positive("HODLRX_TEST_KNOB", 37), 37) << "empty -> fallback";
  setenv("HODLRX_TEST_KNOB", "banana", 1);
  EXPECT_EQ(env_positive("HODLRX_TEST_KNOB", 37), 37)
      << "non-numeric -> fallback";
  setenv("HODLRX_TEST_KNOB", "0", 1);
  EXPECT_EQ(env_positive("HODLRX_TEST_KNOB", 37), 37) << "zero -> fallback";
  setenv("HODLRX_TEST_KNOB", "-12", 1);
  EXPECT_EQ(env_positive("HODLRX_TEST_KNOB", 37), 37)
      << "negative -> fallback";
  setenv("HODLRX_TEST_KNOB", "24", 1);
  EXPECT_EQ(env_positive("HODLRX_TEST_KNOB", 37), 24);
  EXPECT_EQ(env_positive("HODLRX_TEST_KNOB", 37, 32), 32) << "min clamp";
  setenv("HODLRX_TEST_KNOB", "17trailing", 1);
  EXPECT_EQ(env_positive("HODLRX_TEST_KNOB", 37), 17)
      << "leading number wins, text after digits ignored";
  setenv("HODLRX_TEST_KNOB", "4,2", 1);
  EXPECT_EQ(env_positive("HODLRX_TEST_KNOB", 37), 4)
      << "OMP-style lists read their first entry";
  unsetenv("HODLRX_TEST_KNOB");
}

/// Invalid blocking overrides must resolve exactly as if the variable were
/// unset — same values, same sources.
TEST(EnvParser, InvalidOverridesFallBackCleanly) {
  ScopedBlockingEnv env;
  const ResolvedBlocking base = resolved_blocking<double>();
  env.set("HODLRX_GEMM_MC", "banana");
  env.set("HODLRX_GEMM_KC", "0");
  env.set("HODLRX_GEMM_NC", "-7");
  env.set("HODLRX_TRSM_NB", "");
  env.set("HODLRX_QR_NB", "threeve");
  env.set("HODLRX_GEMM_TILE", "sideways");  // unknown tile names ignored too
  env.refresh();
  const ResolvedBlocking& rb = resolved_blocking<double>();
  EXPECT_EQ(rb.mc, base.mc);
  EXPECT_EQ(rb.kc, base.kc);
  EXPECT_EQ(rb.nc, base.nc);
  EXPECT_EQ(rb.trsm_nb, base.trsm_nb);
  EXPECT_EQ(rb.qr_nb, base.qr_nb);
  EXPECT_EQ(rb.mr, base.mr);
  EXPECT_EQ(rb.nr, base.nr);
  EXPECT_EQ(static_cast<int>(rb.mc_src), static_cast<int>(base.mc_src));
  EXPECT_EQ(static_cast<int>(rb.tile_src), static_cast<int>(base.tile_src));
}

TEST(EnvParser, ValidOverridesWinAndAreTaggedEnv) {
  ScopedBlockingEnv env;
  env.set("HODLRX_GEMM_MC", index_t{160});
  env.set("HODLRX_GEMM_KC", index_t{96});
  env.set("HODLRX_GEMM_NC", index_t{512});
  env.set("HODLRX_TRSM_NB", index_t{40});
  env.set("HODLRX_QR_NB", index_t{8});
  env.refresh();
  const ResolvedBlocking& rb = resolved_blocking<float>();
  EXPECT_EQ(rb.mc, 160);
  EXPECT_EQ(rb.kc, 96);
  EXPECT_EQ(rb.nc, 512);
  EXPECT_EQ(rb.trsm_nb, 40);
  EXPECT_EQ(rb.qr_nb, 8);
  EXPECT_EQ(rb.mc_src, BlockingSource::kEnv);
  EXPECT_EQ(rb.kc_src, BlockingSource::kEnv);
  EXPECT_EQ(rb.nc_src, BlockingSource::kEnv);
  EXPECT_EQ(rb.trsm_src, BlockingSource::kEnv);
  EXPECT_EQ(rb.qr_src, BlockingSource::kEnv);
}

/// --- HODLRX_AUTOTUNE=off: the static rung, bit-for-bit -------------------

TYPED_TEST(BlockingTyped, AutotuneOffReproducesStaticDefaults) {
  using T = TypeParam;
  ScopedBlockingEnv env;
  env.set("HODLRX_AUTOTUNE", "off");
  env.refresh();
  const ResolvedBlocking& rb = resolved_blocking<T>();
  EXPECT_EQ(rb.mr, GemmBlocking<T>::MR);
  EXPECT_EQ(rb.nr, GemmBlocking<T>::NR);
  EXPECT_EQ(rb.mc, GemmBlocking<T>::MC);
  EXPECT_EQ(rb.kc, GemmBlocking<T>::KC);
  EXPECT_EQ(rb.nc, GemmBlocking<T>::NC);
  EXPECT_EQ(rb.trsm_nb, 64) << "pre-adaptive HODLRX_TRSM_NB default";
  EXPECT_EQ(rb.qr_nb, 16) << "pre-adaptive HODLRX_QR_NB default";
  EXPECT_EQ(rb.mc_src, BlockingSource::kStatic);
  EXPECT_EQ(rb.kc_src, BlockingSource::kStatic);
  EXPECT_EQ(rb.nc_src, BlockingSource::kStatic);
  EXPECT_EQ(rb.trsm_src, BlockingSource::kStatic);
  EXPECT_EQ(rb.qr_src, BlockingSource::kStatic);
  EXPECT_EQ(rb.tile_src, BlockingSource::kStatic);
  // The static_blocking() helper must agree with itself across calls.
  const ResolvedBlocking s = static_blocking<T>();
  EXPECT_EQ(s.mc, rb.mc);
  EXPECT_EQ(s.kc, rb.kc);
  EXPECT_EQ(s.nc, rb.nc);
  // And "off" spellings are case-insensitive.
  env.set("HODLRX_AUTOTUNE", "FALSE");
  EXPECT_FALSE(autotune_enabled());
  env.set("HODLRX_AUTOTUNE", "0");
  EXPECT_FALSE(autotune_enabled());
  env.set("HODLRX_AUTOTUNE", "on");
  EXPECT_TRUE(autotune_enabled());
}

/// --- probe + model sanity -------------------------------------------------

TEST(Probe, TopologyIsSane) {
  const HwInfo& hw = hwinfo();
  EXPECT_GE(hw.l1d_bytes, std::size_t{4} << 10);
  EXPECT_LE(hw.l1d_bytes, std::size_t{1} << 20);
  EXPECT_GE(hw.l2_bytes, hw.l1d_bytes);
  if (hw.l3_bytes > 0) {
    EXPECT_GE(hw.l3_bytes, hw.l2_bytes);
  }
  EXPECT_GE(hw.line_bytes, std::size_t{16});
  EXPECT_LE(hw.line_bytes, std::size_t{512});
  EXPECT_GE(hw.logical_cpus, 1);
  EXPECT_STRNE(hw.family, "");
  // Probing again yields the same topology (the probe is deterministic).
  const HwInfo again = probe_hwinfo();
  EXPECT_EQ(again.l1d_bytes, hw.l1d_bytes);
  EXPECT_EQ(again.l2_bytes, hw.l2_bytes);
  EXPECT_EQ(again.l3_bytes, hw.l3_bytes);
  EXPECT_STREQ(again.source, hw.source);
  EXPECT_STREQ(again.family, hw.family);
}

/// The resolved (probe-rung) values must respect the capacity constraints
/// the model claims to enforce on THIS machine.
TYPED_TEST(BlockingTyped, ResolvedModelFitsProbedCaches) {
  using T = TypeParam;
  ScopedBlockingEnv env;  // autotune on, no overrides
  const ResolvedBlocking& rb = resolved_blocking<T>();
  const HwInfo& hw = hwinfo();
  const index_t szT = static_cast<index_t>(sizeof(T));
  // Packing invariants hold unconditionally.
  EXPECT_GE(rb.mc, rb.mr);
  EXPECT_GE(rb.nc, rb.nr);
  EXPECT_GE(rb.kc, 1);
  EXPECT_GE(rb.trsm_nb, 8);
  EXPECT_GE(rb.qr_nb, 1);
  if (std::string(hw.source) == "default" || !autotune_enabled())
    GTEST_SKIP() << "no probe on this host; static rung already covered";
  // One KC x MR packed A micro-panel fits (many times over) in L2, and the
  // full MC x KC packed A block fits in L2 — the level it is blocked for.
  EXPECT_LE(rb.kc * rb.mr * szT, static_cast<index_t>(hw.l2_bytes))
      << "KC*MR panel must fit the modeled L2";
  EXPECT_LE(rb.mc * rb.kc * szT, static_cast<index_t>(hw.l2_bytes))
      << "MC*KC A block must fit the modeled L2";
  // The L1 streaming constraint that sized KC.
  EXPECT_LE((rb.mr + rb.nr) * rb.kc * szT,
            static_cast<index_t>(hw.l1d_bytes))
      << "A+B micro-panels must stream from L1";
  // Model-derived cache levels are panel-aligned.
  if (rb.mc_src == BlockingSource::kProbe) {
    EXPECT_EQ(rb.mc % rb.mr, 0);
  }
  if (rb.nc_src == BlockingSource::kProbe) {
    EXPECT_EQ(rb.nc % rb.nr, 0);
  }
  // The TRSM diagonal triangle targets half of L1.
  if (rb.trsm_src == BlockingSource::kProbe) {
    EXPECT_LE(rb.trsm_nb * rb.trsm_nb * szT * 2,
              static_cast<index_t>(hw.l1d_bytes) + 64 * 64 * szT * 2);
  }
}

/// The pure model over synthetic topologies: family drives the tile, cache
/// sizes drive the levels, and degenerate topologies stay clamped.
TYPED_TEST(BlockingTyped, ModelOverSyntheticTopologies) {
  using T = TypeParam;
  HwInfo hw;
  hw.l1d_bytes = std::size_t{32} << 10;
  hw.l2_bytes = std::size_t{512} << 10;
  hw.l3_bytes = std::size_t{8} << 20;
  hw.line_bytes = 64;
  hw.source = "cpuid";
  hw.sse2 = hw.avx = hw.fma = hw.avx2 = true;
  hw.family = "x86-avx2";
  const ResolvedBlocking avx2 = model_blocking<T>(hw);
  EXPECT_EQ(avx2.mr, GemmTiles<T>::kWide.mr) << "AVX2 host picks wide tile";
  EXPECT_EQ(avx2.nr, GemmTiles<T>::kWide.nr);
  EXPECT_LE((avx2.mr + avx2.nr) * avx2.kc * static_cast<index_t>(sizeof(T)),
            static_cast<index_t>(hw.l1d_bytes));
  EXPECT_LE(avx2.mc * avx2.kc * static_cast<index_t>(sizeof(T)),
            static_cast<index_t>(hw.l2_bytes));
  EXPECT_EQ(avx2.mc % avx2.mr, 0);
  EXPECT_EQ(avx2.nc % avx2.nr, 0);

  hw.avx2 = hw.fma = hw.avx = false;
  hw.family = "x86-sse";
  const ResolvedBlocking sse = model_blocking<T>(hw);
  EXPECT_EQ(sse.mr, GemmTiles<T>::kCompact.mr) << "SSE host picks compact";
  EXPECT_EQ(sse.nr, GemmTiles<T>::kCompact.nr);

  HwInfo tiny;  // pathological: 4 KiB L1, no L3, unknown family
  tiny.l1d_bytes = std::size_t{4} << 10;
  tiny.l2_bytes = std::size_t{32} << 10;
  tiny.l3_bytes = 0;
  tiny.line_bytes = 32;
  tiny.source = "sysfs";
  const ResolvedBlocking small = model_blocking<T>(tiny);
  EXPECT_GE(small.kc, 32) << "KC floor";
  EXPECT_GE(small.mc, small.mr);
  EXPECT_GE(small.nc, small.nr);
  EXPECT_EQ(small.nc, GemmBlocking<T>::NC) << "no L3 probed -> static NC";
  EXPECT_GE(small.trsm_nb, 24);
  EXPECT_LE(small.trsm_nb, 128);
}

/// --- micro-kernel dispatch ------------------------------------------------

/// Element-accessor reference (mirrors test_gemm_kernel's oracle).
template <typename T>
Matrix<T> gemm_ref(Op opa, Op opb, T alpha, ConstMatrixView<T> a,
                   ConstMatrixView<T> b, T beta, ConstMatrixView<T> c0) {
  auto at = [&](index_t i, index_t l) {
    return opa == Op::N ? a(i, l) : (opa == Op::T ? a(l, i) : conj_s(a(l, i)));
  };
  auto bt = [&](index_t l, index_t j) {
    return opb == Op::N ? b(l, j) : (opb == Op::T ? b(j, l) : conj_s(b(j, l)));
  };
  const index_t m = op_rows(opa, a), n = op_cols(opb, b);
  const index_t k = op_cols(opa, a);
  Matrix<T> c = to_matrix(c0);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T s{};
      for (index_t l = 0; l < k; ++l) s += at(i, l) * bt(l, j);
      c(i, j) = alpha * s + beta * c(i, j);
    }
  return c;
}

/// Both compiled register-tile variants must be selectable by name and must
/// produce correct products (including through the prepacked batch paths,
/// whose tile offsets depend on MR/NR).
TYPED_TEST(BlockingTyped, BothTileVariantsCorrect) {
  using T = TypeParam;
  for (const char* tile : {"wide", "compact"}) {
    ScopedBlockingEnv env;
    env.set("HODLRX_GEMM_TILE", tile);
    env.refresh();
    const TileDims expect = std::string(tile) == "wide"
                                ? GemmTiles<T>::kWide
                                : GemmTiles<T>::kCompact;
    ASSERT_EQ(gemm_selected_tile<T>().mr, expect.mr) << tile;
    ASSERT_EQ(gemm_selected_tile<T>().nr, expect.nr) << tile;
    ASSERT_STREQ(gemm_selected_tile_name<T>(), tile);
    EXPECT_EQ(resolved_blocking<T>().tile_src, BlockingSource::kEnv);
    const index_t m = 2 * expect.mr + 3, n = 2 * expect.nr + 5, k = 67;
    Matrix<T> a = random_matrix<T>(m, k, 31);
    Matrix<T> b = random_matrix<T>(k, n, 32);
    Matrix<T> c0 = random_matrix<T>(m, n, 33);
    Matrix<T> c = to_matrix(c0.view());
    gemm_packed<T>(Op::N, Op::N, T{2}, a, b, T{1}, c.view());
    Matrix<T> want = gemm_ref<T>(Op::N, Op::N, T{2}, a, b, T{1}, c0.view());
    EXPECT_LE(rel_error(c, want), tol<T>()) << tile << " direct";
    // Prepacked (batch fast-path) layout under this tile.
    PackedMatrix<T> bp = pack_b_full<T>(Op::N, b.view());
    Matrix<T> c2 = to_matrix(c0.view());
    gemm_prepacked_b<T>(Op::N, T{2}, a, bp, T{1}, c2.view());
    EXPECT_LE(rel_error(c2, want), tol<T>()) << tile << " prepacked";
  }
}

/// Dispatch is stable: repeated serial, batched and stream launches do not
/// re-resolve the blocking, do not switch the tile, and do not create pool
/// threads beyond the first launch — so every path runs the SAME variant.
TEST(Dispatch, StableAcrossRepeatedLaunches) {
  ASSERT_TRUE(g_env_ready);
  ScopedBlockingEnv env;
  const index_t n = 160, batch = 8;
  Matrix<double> a = random_matrix<double>(n, n, 41);
  Matrix<double> b = random_matrix<double>(n, n * batch, 42);
  Matrix<double> c(n, n * batch);
  // Warm up: resolve, select the variant, spin up the pool.
  gemm_parallel<double>(Op::N, Op::N, 1.0, a, b.view().block(0, 0, n, n), 0.0,
                        c.view().block(0, 0, n, n));
  gemm_strided_batched<double>(Op::N, Op::N, n, n, n, 1.0, a.data(), n, 0,
                               b.data(), n, n * n, 0.0, c.data(), n, n * n,
                               batch);
  const TileDims tile0 = gemm_selected_tile<double>();
  const std::uint64_t resolved0 = blocking_stats::resolutions();
  const std::uint64_t threads0 = ThreadPool::instance().threads_created();
  for (int rep = 0; rep < 5; ++rep) {
    // Serial engine, pool-parallel stream path, strided-batched path.
    gemm_packed<double>(Op::N, Op::N, 1.0, a, b.view().block(0, 0, n, n),
                        0.0, c.view().block(0, 0, n, n));
    gemm_parallel<double>(Op::N, Op::N, 1.0, a, b.view().block(0, 0, n, n),
                          0.0, c.view().block(0, 0, n, n));
    gemm_strided_batched<double>(Op::N, Op::N, n, n, n, 1.0, a.data(), n, 0,
                                 b.data(), n, n * n, 0.0, c.data(), n, n * n,
                                 batch);
    const TileDims t = gemm_selected_tile<double>();
    EXPECT_EQ(t.mr, tile0.mr) << "variant switched mid-process";
    EXPECT_EQ(t.nr, tile0.nr);
  }
  EXPECT_EQ(blocking_stats::resolutions(), resolved0)
      << "repeated launches must not re-resolve the blocking";
  EXPECT_EQ(ThreadPool::instance().threads_created(), threads0)
      << "repeated launches must not re-create pool threads";
  // All four types resolve at most once per process refresh.
  gemm_packed<float>(Op::N, Op::N, 1.0f,
                     random_matrix<float>(40, 40, 1).view(),
                     random_matrix<float>(40, 40, 2).view(), 0.0f,
                     Matrix<float>(40, 40).view());
  const std::uint64_t resolved1 = blocking_stats::resolutions();
  gemm_packed<float>(Op::N, Op::N, 1.0f,
                     random_matrix<float>(40, 40, 1).view(),
                     random_matrix<float>(40, 40, 2).view(), 0.0f,
                     Matrix<float>(40, 40).view());
  EXPECT_EQ(blocking_stats::resolutions(), resolved1);
}

/// Launch accounting: trivial launches must stay inline. A one-iteration
/// parallel_for, an empty one, and a parallel_chunks over zero work have a
/// single participant — waking the whole pool for them (the old behavior)
/// burned a broadcast per K-block in the deep HODLR levels. Only launches
/// that actually reach the workers may count.
TEST(Dispatch, TrivialLaunchesStayInline) {
  ASSERT_TRUE(g_env_ready);
  ThreadPool& pool = ThreadPool::instance();
  // Warm up: make sure the pool exists and has served a real launch.
  parallel_for(2 * pool.threads(), [](index_t) {});
  const std::uint64_t launches0 = pool.launches();
  const std::uint64_t threads0 = pool.threads_created();
  parallel_for(index_t{1}, [](index_t) {});
  parallel_for(index_t{0}, [](index_t) {});
  parallel_for_static(index_t{1}, [](index_t) {});
  parallel_chunks(index_t{0}, [](index_t, index_t) {});
  EXPECT_EQ(pool.launches(), launches0)
      << "single-participant launches must not wake the pool";
  if (pool.threads() > 1) {
    // A real launch still counts exactly once, and a nested construct inside
    // it runs inline (no launch-from-worker storm).
    parallel_for_static(index_t{2}, [](index_t) {
      parallel_for_static(index_t{4}, [](index_t) {});
    });
    EXPECT_EQ(pool.launches(), launches0 + 1)
        << "nested constructs must run inline, not launch";
  }
  EXPECT_EQ(pool.threads_created(), threads0);
}

/// --- the randomized override property suite ------------------------------

/// One sampled override set. Pathological values on purpose: register-tile
/// sized, primes, huge; the resolver must clamp and every engine must stay
/// correct.
struct OverrideSet {
  index_t mc, kc, nc, trsm_nb, qr_nb;
};

OverrideSet sample_overrides(Rng& rng) {
  static constexpr index_t pool[] = {1,  2,   3,    5,    7,   8,    13,
                                     16, 24,  31,   61,   97,  101,  160,
                                     256, 509, 1009, 4096, 65536};
  constexpr index_t n_pool = static_cast<index_t>(std::size(pool));
  auto pick = [&] { return pool[rng.uniform_int(0, n_pool - 1)]; };
  OverrideSet s{pick(), pick(), pick(), pick(), pick()};
  // Bound the pack workspaces (KC*NC and MC*KC elements): a huge value is
  // allowed in one factor, not the product.
  const index_t cap = index_t{1} << 21;
  if (s.kc * s.nc > cap) s.nc = std::max<index_t>(1, cap / s.kc);
  if (s.mc * s.kc > cap) s.mc = std::max<index_t>(1, cap / s.kc);
  s.trsm_nb = std::min<index_t>(s.trsm_nb, 512);
  s.qr_nb = std::min<index_t>(s.qr_nb, 128);
  return s;
}

/// QR correctness oracle: factor a copy with the blocked driver under the
/// current (possibly pathological) panel width, reconstruct Q R, and compare
/// with the seed reference factorization of the same matrix.
template <typename T>
void check_qr(const Matrix<T>& a0) {
  const index_t m = a0.rows(), n = a0.cols();
  Matrix<T> fac = to_matrix(a0.view());
  std::vector<T> tau(std::min(m, n));
  geqrf_inplace<T>(fac.view(), tau.data());
  // R from the upper triangle, Q via the blocked thin-Q driver.
  Matrix<T> r(std::min(m, n), n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < r.rows(); ++i) r(i, j) = i <= j ? fac(i, j) : T{};
  Matrix<T> q = to_matrix(fac.view().block(0, 0, m, std::min(m, n)));
  thin_q_inplace<T>(q.view(), tau.data());
  Matrix<T> qr(m, n);
  gemm_packed<T>(Op::N, Op::N, T{1}, q, r, T{0}, qr.view());
  EXPECT_LE(rel_error<T>(qr.view(), a0.view()), 20 * tol<T>())
      << "Q R must reconstruct A";
  // Q^H Q = I.
  Matrix<T> g(q.cols(), q.cols());
  gemm_packed<T>(Op::C, Op::N, T{1}, q, q, T{0}, g.view());
  for (index_t i = 0; i < g.rows(); ++i) g(i, i) -= T{1};
  EXPECT_LE(norm_fro<T>(g), 20 * tol<T>()) << "Q must stay orthonormal";
}

template <typename T>
void run_property_sample(const OverrideSet& s, bool autotune_off,
                         std::uint64_t seed) {
  ScopedBlockingEnv env;
  if (autotune_off) env.set("HODLRX_AUTOTUNE", "off");
  env.set("HODLRX_GEMM_MC", s.mc);
  env.set("HODLRX_GEMM_KC", s.kc);
  env.set("HODLRX_GEMM_NC", s.nc);
  env.set("HODLRX_TRSM_NB", s.trsm_nb);
  env.set("HODLRX_QR_NB", s.qr_nb);
  env.refresh();
  const ResolvedBlocking& rb = resolved_blocking<T>();
  // Resolver clamps: overrides land verbatim except for well-formedness.
  ASSERT_EQ(rb.mc, std::max(s.mc, rb.mr));
  ASSERT_EQ(rb.kc, std::max<index_t>(s.kc, 1));
  ASSERT_EQ(rb.nc, std::max(s.nc, rb.nr));
  ASSERT_EQ(rb.trsm_nb, std::max<index_t>(s.trsm_nb, 8));
  ASSERT_EQ(rb.qr_nb, s.qr_nb);
  // GEMM: the packed engine against the element oracle on shapes that
  // straddle the (overridden) cache-block boundaries.
  {
    const index_t m = 2 * rb.mr + 5, n = 2 * rb.nr + 3;
    Matrix<T> a = random_matrix<T>(m, 73, seed);
    Matrix<T> b = random_matrix<T>(73, n, seed + 1);
    Matrix<T> c0 = random_matrix<T>(m, n, seed + 2);
    Matrix<T> c = to_matrix(c0.view());
    gemm_packed<T>(Op::N, Op::N, T{1}, a, b, T{-1}, c.view());
    EXPECT_LE(
        rel_error(c, gemm_ref<T>(Op::N, Op::N, T{1}, a, b, T{-1}, c0.view())),
        tol<T>());
    Matrix<T> at = random_matrix<T>(73, m, seed + 3);
    Matrix<T> bb = random_matrix<T>(n, 73, seed + 4);
    Matrix<T> c2 = to_matrix(c0.view());
    gemm_packed<T>(Op::C, Op::T, T{1}, at, bb, T{0}, c2.view());
    EXPECT_LE(
        rel_error(c2, gemm_ref<T>(Op::C, Op::T, T{1}, at, bb, T{0}, c0.view())),
        tol<T>());
  }
  // TRSM: blocked vs seed reference, both triangles.
  {
    const index_t n = 97, nrhs = 13;
    for (bool lower : {true, false}) {
      Matrix<T> a = random_triangular_matrix<T>(n, lower, seed + 5);
      Matrix<T> b = random_matrix<T>(n, nrhs, seed + 6);
      Matrix<T> x1 = to_matrix(b.view());
      Matrix<T> x2 = to_matrix(b.view());
      const Uplo uplo = lower ? Uplo::Lower : Uplo::Upper;
      trsm_left_blocked<T>(uplo, Diag::NonUnit, a, x1.view());
      trsm_left_reference<T>(uplo, Diag::NonUnit, a, x2.view());
      EXPECT_LE(rel_error(x1, x2), 50 * tol<T>());
    }
  }
  // QR: blocked driver under the overridden panel width.
  check_qr<T>(random_matrix<T>(83, 37, seed + 7));
}

TYPED_TEST(BlockingTyped, RandomizedOverrideProperty) {
  using T = TypeParam;
  Rng rng(2026 + sizeof(T));
  constexpr int kSamples = 20;  // per scalar type, autotune on AND off
  for (int i = 0; i < kSamples; ++i) {
    const OverrideSet s = sample_overrides(rng);
    SCOPED_TRACE(::testing::Message()
                 << "sample " << i << ": mc=" << s.mc << " kc=" << s.kc
                 << " nc=" << s.nc << " trsm_nb=" << s.trsm_nb
                 << " qr_nb=" << s.qr_nb);
    run_property_sample<T>(s, /*autotune_off=*/false, 1000 + 10 * i);
    run_property_sample<T>(s, /*autotune_off=*/true, 2000 + 10 * i);
  }
}

}  // namespace
}  // namespace hodlrx
