#include <gtest/gtest.h>

#include "core/factorization.hpp"
#include "test_util.hpp"

/// Algorithm-level invariants of the paper's data structure, checked
/// directly against dense linear algebra on small problems. These pin the
/// SEMANTICS of the factorization, not just end-to-end residuals:
///
///  - after Algorithm 1/3, panel l of Ybig restricted to node nu's rows is
///    exactly Y_nu = (A_nu)^{-1} U_nu, where A_nu is the diagonal sub-block
///    of the compressed matrix (the paper's key in-place claim: every
///    panel is fully solved by the time its level is swept);
///  - the telescoping factorization of Theorem 5 holds: applying
///    A^(L) ... A^(1) to the identity rebuilds the compressed matrix.

namespace hodlrx {
namespace {

using test::rel_error;

class YbigInvariant : public ::testing::TestWithParam<ExecMode> {};

TEST_P(YbigInvariant, PanelsHoldSubblockSolves) {
  using T = double;
  const index_t n = 160, leaf = 20;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 901);
  ClusterTree tree = ClusterTree::uniform(n, leaf);
  BuildOptions bopt;
  bopt.tol = 1e-11;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  PackedHodlr<T> p = PackedHodlr<T>::pack(h);
  Matrix<T> ad = h.to_dense();  // the compressed operator, exactly

  FactorOptions fopt;
  fopt.mode = GetParam();
  auto f = HodlrFactorization<T>::factor(p, fopt);

  // Reconstruct Ybig from first principles: solve each node's diagonal
  // sub-block against its padded U panel.
  for (index_t nu = 1; nu < tree.num_nodes(); ++nu) {
    const index_t level = ClusterTree::level_of(nu);
    const index_t r = p.level_rank[level];
    if (r == 0) continue;
    const ClusterNode& c = tree.node(nu);
    Matrix<T> a_sub = to_matrix(
        ConstMatrixView<T>(ad).block(c.begin, c.begin, c.size(), c.size()));
    Matrix<T> u_pad = to_matrix(p.ubig.view().block(
        c.begin, p.col_offset[level], c.size(), r));
    Matrix<T> y_ref = dense_solve<T>(a_sub, u_pad);

    // The factorization's Ybig is private; recover it through a solve of
    // U_nu extended by zeros: A^{-1} restricted checks the same content.
    // Instead we verify the public contract it implies: for any rhs
    // supported on I_nu, applying the factorization's inverse matches the
    // dense inverse of the FULL matrix — and the per-node Y enters that
    // through eq. (8). Here we check the direct sub-block identity:
    // x = A_nu^{-1} u must satisfy A_nu x = u.
    Matrix<T> check(c.size(), r);
    gemm<T>(Op::N, Op::N, T{1}, a_sub, y_ref, T{0}, check.view());
    EXPECT_LE(rel_error(check, u_pad), 1e-10);
  }

  // And the end-to-end inverse agrees with the dense inverse.
  Matrix<T> b = random_matrix<T>(n, 3, 907);
  Matrix<T> x_f = f.solve(b);
  Matrix<T> x_d = dense_solve<T>(ad, b);
  EXPECT_LE(rel_error(x_f, x_d), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, YbigInvariant,
                         ::testing::Values(ExecMode::kSerial,
                                           ExecMode::kBatched),
                         [](const ::testing::TestParamInfo<ExecMode>& info) {
                           return info.param == ExecMode::kSerial ? "serial"
                                                                  : "batched";
                         });

TEST(Telescoping, Theorem5FactorizationIdentity) {
  // A = A^(L) * A^(L-1) * ... * A^(1) where A^(L) is block-diagonal with
  // the leaf blocks and each A^(l) is block-diagonal with
  // [[I, Y_a V_b^H], [Y_b V_a^H, I]] per level-(l-1) parent (Example 2).
  using T = double;
  const index_t n = 96, leaf = 12;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 911);
  ClusterTree tree = ClusterTree::uniform(n, leaf);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  Matrix<T> ad = h.to_dense();
  const index_t L = tree.depth();

  // Compute per-node Y = A_nu^{-1} U_nu densely (exact ranks).
  std::vector<Matrix<T>> y(tree.num_nodes());
  for (index_t nu = 1; nu < tree.num_nodes(); ++nu) {
    const ClusterNode& c = tree.node(nu);
    if (h.rank(nu) == 0) {
      y[nu] = Matrix<T>(c.size(), 0);
      continue;
    }
    Matrix<T> a_sub = to_matrix(
        ConstMatrixView<T>(ad).block(c.begin, c.begin, c.size(), c.size()));
    y[nu] = dense_solve<T>(a_sub, h.u(nu));
  }

  // Product of the telescoping factors, leaf level outward.
  Matrix<T> product(n, n);
  for (index_t j = 0; j < tree.num_leaves(); ++j) {
    const ClusterNode& c = tree.node(tree.leaf(j));
    copy(ConstMatrixView<T>(h.leaf_block(j)),
         product.view().block(c.begin, c.begin, c.size(), c.size()));
  }
  for (index_t l = L - 1; l >= 0; --l) {
    Matrix<T> factor = Matrix<T>::identity(n);
    for (index_t k = 0; k < ClusterTree::nodes_at_level(l); ++k) {
      const index_t gamma = ClusterTree::level_begin(l) + k;
      const index_t na = ClusterTree::left_child(gamma);
      const index_t nb = ClusterTree::right_child(gamma);
      const ClusterNode& ca = tree.node(na);
      const ClusterNode& cb = tree.node(nb);
      if (h.rank(na) > 0)
        gemm<T>(Op::N, Op::C, T{1}, y[na], h.v(ClusterTree::sibling(na)),
                T{0},
                factor.view().block(ca.begin, cb.begin, ca.size(), cb.size()));
      if (h.rank(nb) > 0)
        gemm<T>(Op::N, Op::C, T{1}, y[nb], h.v(ClusterTree::sibling(nb)),
                T{0},
                factor.view().block(cb.begin, ca.begin, cb.size(), ca.size()));
    }
    Matrix<T> next(n, n);
    gemm<T>(Op::N, Op::N, T{1}, product, factor, T{0}, next.view());
    product = std::move(next);
  }
  EXPECT_LE(rel_error(product, ad), 1e-10);
}

TEST(Telescoping, LogdetMatchesTelescopedProduct) {
  // Theorem 5's determinant corollary on a matrix with mixed-sign diagonal.
  using T = double;
  const index_t n = 64;
  Matrix<T> a = test::smooth_test_matrix<T>(n, 917);
  for (index_t j = 0; j < n; ++j) a(7, j) = -a(7, j);
  for (index_t j = 0; j < n; ++j) a(21, j) = -a(21, j);
  ClusterTree tree = ClusterTree::uniform(n, 16);
  BuildOptions bopt;
  bopt.tol = 1e-12;
  HodlrMatrix<T> h = HodlrMatrix<T>::build_from_dense(a, tree, bopt);
  auto f = HodlrFactorization<T>::factor(PackedHodlr<T>::pack(h), {});
  auto ld = f.logdet();

  Matrix<T> lu = h.to_dense();
  std::vector<index_t> ipiv(n);
  getrf(lu.view(), ipiv.data());
  double ref_log = 0, ref_sign = 1;
  for (index_t k = 0; k < n; ++k) {
    ref_log += std::log(std::abs(lu(k, k)));
    if (lu(k, k) < 0) ref_sign = -ref_sign;
    if (ipiv[k] != k) ref_sign = -ref_sign;
  }
  EXPECT_NEAR(ld.log_abs, ref_log, 1e-9 * std::abs(ref_log));
  EXPECT_EQ(ld.phase, ref_sign);
}

}  // namespace
}  // namespace hodlrx
