#pragma once

#include <gtest/gtest.h>

#include <complex>

#include "common/blas.hpp"
#include "common/matrix.hpp"
#include "common/random.hpp"
#include "lowrank/generator.hpp"

/// Shared helpers for the test suite.

namespace hodlrx::test {

/// ||a - b||_F / max(||b||_F, 1).
template <typename T>
real_t<T> rel_error(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.cols, b.cols);
  Matrix<T> d = to_matrix(a);
  axpy(T{-1}, b, d.view());
  const real_t<T> denom = std::max<real_t<T>>(norm_fro(b), real_t<T>{1});
  return norm_fro(d) / denom;
}

template <typename T>
real_t<T> rel_error(const Matrix<T>& a, const Matrix<T>& b) {
  return rel_error<T>(a.view(), b.view());
}

/// A well-conditioned dense test matrix with HODLR structure: smooth
/// off-diagonal decay plus a strong diagonal.
template <typename T>
Matrix<T> smooth_test_matrix(index_t n, std::uint64_t seed = 3) {
  Matrix<T> a(n, n);
  Rng rng(seed);
  std::vector<double> pts(n);
  for (index_t i = 0; i < n; ++i) pts[i] = rng.uniform<double>(0.0, 1.0);
  std::sort(pts.begin(), pts.end());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const double d = std::abs(pts[i] - pts[j]);
      const double v = 1.0 / (1.0 + 25.0 * d);
      if constexpr (is_complex_v<T>) {
        a(i, j) = T(v, 0.3 * v * std::sin(7 * (pts[i] + pts[j])));
      } else {
        a(i, j) = static_cast<T>(v);
      }
    }
  for (index_t i = 0; i < n; ++i) a(i, i) += T{2};
  return a;
}

/// relres ||b - A x|| / ||b|| for dense A.
template <typename T>
real_t<T> dense_relres(ConstMatrixView<T> a, ConstMatrixView<T> x,
                       ConstMatrixView<T> b) {
  Matrix<T> r = to_matrix(b);
  gemm(Op::N, Op::N, T{-1}, a, x, T{1}, r.view());
  return norm_fro(r) / norm_fro(b);
}

}  // namespace hodlrx::test
