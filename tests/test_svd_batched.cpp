#include <gtest/gtest.h>

#include <complex>
#include <cstdlib>
#include <vector>

#include "batched/batched_blas.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "device/device.hpp"
#include "lowrank/lowrank.hpp"
#include "lowrank/recompress.hpp"
#include "test_util.hpp"

/// Property tests of the Jacobi SVD machinery: the blocked serial driver
/// (jacobi_svd / jacobi_svd_inplace, Gram-per-sweep) and the
/// sweep-synchronized strided-batched driver must agree with the seed's
/// reference one-sided Jacobi over randomized shapes — tall, square, wide
/// (the flip path), one column, rank-deficient and exactly zero blocks —
/// for all four scalar types. Also asserts the engine's launch-shape
/// invariants (batched sweeps counted, zero pool thread churn), the
/// HODLRX_SVD_SWEEPS budget/non-convergence reporting, the shared
/// truncate_rank rule, and batched-vs-serial recompression agreement.

namespace hodlrx {
namespace {

using test::rel_error;

template <typename T>
real_t<T> tol() {
  return std::is_same_v<real_t<T>, float> ? real_t<T>(5e-4) : real_t<T>(1e-11);
}

/// Deterministic blocks covering the degenerate structures the compressor
/// feeds the engine: dense random, rank-deficient (duplicated columns), and
/// exactly zero.
template <typename T>
std::vector<Matrix<T>> make_blocks(index_t m, index_t n, index_t batch,
                                   std::uint64_t seed) {
  std::vector<Matrix<T>> blocks;
  for (index_t i = 0; i < batch; ++i) {
    if (i % 4 == 3) {
      blocks.emplace_back(m, n);  // zero block
    } else {
      Matrix<T> a = random_matrix<T>(m, n, seed + i);
      if (i % 4 == 2 && n >= 2) {
        for (index_t j = 1; j < n; j += 2)
          copy<T>(a.view().block(0, j - 1, m, 1), a.view().block(0, j, m, 1));
      }
      blocks.push_back(std::move(a));
    }
  }
  return blocks;
}

/// ||Q^H Q - I|| over the columns with nonzero singular values (zero
/// singular values leave zero columns by contract).
template <typename T>
real_t<T> ortho_error(ConstMatrixView<T> q, index_t k) {
  if (k == 0) return real_t<T>{0};
  ConstMatrixView<T> qk = q.block(0, 0, q.rows, k);
  Matrix<T> g(k, k);
  gemm<T>(Op::C, Op::N, T{1}, qk, qk, T{0}, g.view());
  return rel_error<T>(g.view(), Matrix<T>::identity(k).view());
}

/// Reconstruct U diag(s) V^H.
template <typename T>
Matrix<T> reconstruct(ConstMatrixView<T> u, const real_t<T>* s,
                      ConstMatrixView<T> v) {
  Matrix<T> us = to_matrix(u);
  for (index_t j = 0; j < us.cols(); ++j)
    scale_inplace(T{s[j]}, us.view().block(0, j, us.rows(), 1));
  Matrix<T> rec(u.rows, v.rows);
  gemm<T>(Op::N, Op::C, T{1}, ConstMatrixView<T>(us), v, T{0}, rec.view());
  return rec;
}

template <typename T>
index_t positive_count(const std::vector<real_t<T>>& s, real_t<T> floor) {
  index_t k = 0;
  while (k < static_cast<index_t>(s.size()) && s[k] > floor) ++k;
  return k;
}

template <typename T>
class SvdBatchedTyped : public ::testing::Test {};
using SvdTypes = ::testing::Types<float, double, std::complex<float>,
                                  std::complex<double>>;
TYPED_TEST_SUITE(SvdBatchedTyped, SvdTypes);

/// The blocked serial driver vs the seed reference across shapes — in
/// particular the WIDE flip path (rows < cols), which factors a^H and swaps
/// U <-> V. Singular values must agree; U/V must be orthonormal on the
/// numerically nonzero part and reconstruct the block.
TYPED_TEST(SvdBatchedTyped, SerialMatchesReferenceIncludingWideFlip) {
  using T = TypeParam;
  using R = real_t<T>;
  const index_t shapes[][2] = {{24, 24}, {40, 12}, {12, 40}, {8, 20},
                               {1, 9},   {9, 1},   {5, 5}};
  std::uint64_t seed = 300;
  for (auto& [m, n] : shapes) {
    std::vector<Matrix<T>> blocks = make_blocks<T>(m, n, 4, seed += 20);
    for (const Matrix<T>& a : blocks) {
      SVDResult<T> got = jacobi_svd<T>(a);
      SVDResult<T> ref = jacobi_svd_reference<T>(a.view());
      EXPECT_TRUE(got.converged) << m << "x" << n;
      ASSERT_EQ(got.s.size(), ref.s.size());
      const R scale = std::max<R>(ref.s.empty() ? R{0} : ref.s[0], R{1});
      for (std::size_t j = 0; j < got.s.size(); ++j)
        EXPECT_NEAR(got.s[j], ref.s[j], tol<T>() * scale)
            << m << "x" << n << " s[" << j << "]";
      const index_t k = positive_count<T>(got.s, tol<T>() * scale);
      EXPECT_LE(ortho_error<T>(got.u.view(), k), 10 * tol<T>())
          << m << "x" << n;
      EXPECT_LE(ortho_error<T>(got.v.view(), k), 10 * tol<T>())
          << m << "x" << n;
      EXPECT_LE(rel_error<T>(reconstruct<T>(got.u, got.s.data(), got.v).view(),
                             a.view()),
                10 * tol<T>())
          << m << "x" << n;
    }
  }
}

/// The sweep-synchronized batched driver must match the per-block reference
/// on every problem of a mixed batch (padded, non-contiguous stride), for
/// all four scalar types.
TYPED_TEST(SvdBatchedTyped, StridedBatchedMatchesPerBlockReference) {
  using T = TypeParam;
  using R = real_t<T>;
  const index_t shapes[][2] = {{48, 16}, {32, 32}, {20, 1}, {7, 5}};
  std::uint64_t seed = 5000;
  for (auto& [m, n] : shapes) {
    const index_t batch = 9, stride = m * n + 5;  // padded, non-contiguous
    std::vector<Matrix<T>> blocks = make_blocks<T>(m, n, batch, seed += 40);
    std::vector<T> buf(static_cast<std::size_t>(stride) * batch, T{});
    for (index_t i = 0; i < batch; ++i)
      copy<T>(blocks[i].view(),
              MatrixView<T>{buf.data() + i * stride, m, n, m});
    std::vector<R> sig(static_cast<std::size_t>(n) * batch);
    std::vector<T> v(static_cast<std::size_t>(n) * n * batch);
    svd_stats::reset();
    const SvdBatchInfo info = jacobi_svd_strided_batched<T>(
        buf.data(), m, stride, m, n, sig.data(), n, v.data(), n, n * n,
        batch, BatchPolicy::kForceBatched);
    EXPECT_EQ(info.nonconverged, 0);
    EXPECT_EQ(svd_stats::batched_sweeps(), 1u);
    EXPECT_GE(svd_stats::sweep_launches(), n > 1 ? 1u : 0u);
    EXPECT_EQ(svd_stats::serial_svds(), 0u)
        << "the batched path must not fall back to per-block jacobi_svd";
    for (index_t i = 0; i < batch; ++i) {
      SVDResult<T> ref = jacobi_svd_reference<T>(blocks[i].view());
      const R scale = std::max<R>(ref.s.empty() ? R{0} : ref.s[0], R{1});
      for (index_t j = 0; j < n; ++j)
        EXPECT_NEAR(sig[i * n + j], ref.s[j], tol<T>() * scale)
            << "problem " << i << " s[" << j << "] of " << m << "x" << n;
      ConstMatrixView<T> ui(buf.data() + i * stride, m, n, m);
      ConstMatrixView<T> vi(v.data() + i * n * n, n, n, n);
      EXPECT_LE(rel_error<T>(
                    reconstruct<T>(ui, sig.data() + i * n, vi).view(),
                    blocks[i].view()),
                10 * tol<T>())
          << "problem " << i << " of " << m << "x" << n;
    }
  }
}

/// Stream mode (sequential blocked serial problems) and batched mode agree.
TYPED_TEST(SvdBatchedTyped, StreamModeAgreesWithBatched) {
  using T = TypeParam;
  using R = real_t<T>;
  const index_t m = 48, n = 20, batch = 4;
  std::vector<T> b1(static_cast<std::size_t>(m) * n * batch);
  std::vector<T> b2(b1.size());
  for (index_t i = 0; i < batch; ++i) {
    Matrix<T> a = random_matrix<T>(m, n, 7100 + i);
    copy<T>(a.view(), MatrixView<T>{b1.data() + i * m * n, m, n, m});
    copy<T>(a.view(), MatrixView<T>{b2.data() + i * m * n, m, n, m});
  }
  std::vector<R> s1(static_cast<std::size_t>(n) * batch), s2(s1.size());
  std::vector<T> v1(static_cast<std::size_t>(n) * n * batch), v2(v1.size());
  jacobi_svd_strided_batched<T>(b1.data(), m, m * n, m, n, s1.data(), n,
                                v1.data(), n, n * n, batch,
                                BatchPolicy::kForceBatched);
  jacobi_svd_strided_batched<T>(b2.data(), m, m * n, m, n, s2.data(), n,
                                v2.data(), n, n * n, batch,
                                BatchPolicy::kForceStream);
  for (std::size_t j = 0; j < s1.size(); ++j)
    EXPECT_NEAR(s1[j], s2[j], tol<T>() * std::max<R>(s1[0], R{1}));
  for (index_t i = 0; i < batch; ++i) {
    // Both modes run the same Gram-sweep kernel in the same order, so the
    // factors — not just the values — agree to roundoff.
    EXPECT_LE(rel_error<T>(ConstMatrixView<T>(b1.data() + i * m * n, m, n, m),
                           ConstMatrixView<T>(b2.data() + i * m * n, m, n,
                                              m)),
              tol<T>())
        << "problem " << i;
    EXPECT_LE(rel_error<T>(ConstMatrixView<T>(v1.data() + i * n * n, n, n, n),
                           ConstMatrixView<T>(v2.data() + i * n * n, n, n,
                                              n)),
              tol<T>())
        << "problem " << i;
  }
}

/// Zero-rank and empty-block edges: an all-zero batch converges in one
/// sweep with s = 0 everywhere (and zero U columns by contract); degenerate
/// shapes are no-ops; layout misuse throws.
TEST(SvdBatched, ZeroRankAndEmptyEdges) {
  using T = double;
  const index_t m = 12, n = 6, batch = 3;
  std::vector<T> buf(static_cast<std::size_t>(m) * n * batch, T{});
  std::vector<double> sig(static_cast<std::size_t>(n) * batch, -1.0);
  std::vector<T> v(static_cast<std::size_t>(n) * n * batch);
  const SvdBatchInfo info = jacobi_svd_strided_batched<T>(
      buf.data(), m, m * n, m, n, sig.data(), n, v.data(), n, n * n, batch,
      BatchPolicy::kForceBatched);
  EXPECT_EQ(info.nonconverged, 0);
  for (double s : sig) EXPECT_EQ(s, 0.0);
  for (T x : buf) EXPECT_EQ(x, 0.0);  // zero U columns for zero s
  for (index_t i = 0; i < batch; ++i)  // V is still a (permuted) identity
    EXPECT_LE(test::rel_error<T>(
                  ConstMatrixView<T>(v.data() + i * n * n, n, n, n),
                  Matrix<T>::identity(n).view()),
              1e-14);

  // Degenerate shapes: no-ops, not crashes.
  std::vector<double> s1(4);
  jacobi_svd_strided_batched<double>(nullptr, 1, 0, 0, 0, s1.data(), 4,
                                     nullptr, 1, 0, 3);
  jacobi_svd_strided_batched<double>(nullptr, 1, 0, 5, 0, s1.data(), 1,
                                     nullptr, 1, 0, 3);
  std::vector<T> a(12), vv(9);
  jacobi_svd_strided_batched<double>(a.data(), 4, 12, 4, 3, s1.data(), 3,
                                     vv.data(), 3, 9, 0);
  // lda < m and wide (m < n) inputs are layout misuse.
  EXPECT_THROW(jacobi_svd_strided_batched<double>(a.data(), 2, 12, 4, 3,
                                                  s1.data(), 3, vv.data(), 3,
                                                  9, 1),
               Error);
  EXPECT_THROW(jacobi_svd_strided_batched<double>(a.data(), 3, 12, 3, 4,
                                                  s1.data(), 4, vv.data(), 4,
                                                  16, 1),
               Error);
}

/// The sweep budget comes from HODLRX_SVD_SWEEPS through the shared env
/// parser (reread per call), and exhausting it is never silent: the result
/// reports converged = false, svd_stats counts it, and debug builds throw.
TEST(SvdBatched, SweepBudgetEnvOverrideAndNonConvergenceReporting) {
  unsetenv("HODLRX_SVD_SWEEPS");    // hermetic against the caller's env
  ASSERT_EQ(svd_max_sweeps(), 42);  // default
  setenv("HODLRX_SVD_SWEEPS", "1", /*overwrite=*/1);
  EXPECT_EQ(svd_max_sweeps(), 1);
  Matrix<double> a = random_matrix<double>(16, 12, 999);
  svd_stats::reset();
#ifndef NDEBUG
  EXPECT_THROW(jacobi_svd<double>(a), Error);
#else
  SVDResult<double> r = jacobi_svd<double>(a);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.sweeps, 1);
#endif
  EXPECT_EQ(svd_stats::nonconverged(), 1u);
  unsetenv("HODLRX_SVD_SWEEPS");
  EXPECT_EQ(svd_max_sweeps(), 42);
  // With the default budget the same block converges and reports it.
  SVDResult<double> ok = jacobi_svd<double>(a);
  EXPECT_TRUE(ok.converged);
  EXPECT_GT(ok.sweeps, 1);
}

/// The ONE truncation rule shared by rsvd and recompress.
TEST(SvdBatched, TruncateRankRule) {
  const double s[] = {10.0, 5.0, 1.0, 1e-9, 0.0};
  EXPECT_EQ(truncate_rank<double>(s, 5, -1, 0.0), 5);     // no cap, no tol
  EXPECT_EQ(truncate_rank<double>(s, 5, 3, 0.0), 3);      // cap only
  EXPECT_EQ(truncate_rank<double>(s, 5, -1, 1e-6), 3);    // tol only
  EXPECT_EQ(truncate_rank<double>(s, 5, 2, 1e-6), 2);     // cap wins
  EXPECT_EQ(truncate_rank<double>(s, 5, -1, 0.2), 2);     // s[k] > tol*s[0]
  EXPECT_EQ(truncate_rank<double>(s, 5, 0, 1e-6), 0);     // zero cap
  EXPECT_EQ(truncate_rank<double>(s, 0, -1, 1e-6), 0);    // empty
  const double z[] = {0.0, 0.0};
  EXPECT_EQ(truncate_rank<double>(z, 2, -1, 1e-6), 0);    // zero block
  EXPECT_EQ(truncate_rank<double>(z, 2, -1, 0.0), 2);     // tol off keeps cap
}

/// Batched recompression must agree with the serial one on a batch of
/// uniform-shape factors with differing (inflated) ranks: same new ranks,
/// same reconstructions.
TYPED_TEST(SvdBatchedTyped, RecompressBatchedMatchesSerial) {
  using T = TypeParam;
  using R = real_t<T>;
  const R rtol = std::is_same_v<R, float> ? R(2e-3) : R(1e-10);
  const index_t m = 40, n = 32, batch = 6;
  std::vector<LowRankFactor<T>> fs(batch), serial(batch);
  for (index_t i = 0; i < batch; ++i) {
    const index_t true_r = 1 + i % 4;       // varying true ranks
    const index_t padded_r = true_r + 2 * (i % 3);  // varying inflation
    Matrix<T> u0 = random_matrix<T>(m, true_r, 60 + i);
    Matrix<T> v0 = random_matrix<T>(n, true_r, 90 + i);
    LowRankFactor<T>& f = fs[static_cast<std::size_t>(i)];
    f.u = Matrix<T>(m, padded_r);
    f.v = Matrix<T>(n, padded_r);
    for (index_t c = 0; c < padded_r; ++c) {
      // Redundant trailing columns with a zero partner keep the product
      // equal to u0 v0^H while inflating the stored rank.
      const index_t src = c % true_r;
      copy<T>(u0.view().block(0, src, m, 1), f.u.view().block(0, c, m, 1));
      if (c < true_r)
        copy<T>(v0.view().block(0, src, n, 1), f.v.view().block(0, c, n, 1));
    }
    serial[static_cast<std::size_t>(i)].u = to_matrix(f.u.view());
    serial[static_cast<std::size_t>(i)].v = to_matrix(f.v.view());
  }
  std::vector<Matrix<T>> before(batch);
  for (index_t i = 0; i < batch; ++i)
    before[static_cast<std::size_t>(i)] =
        fs[static_cast<std::size_t>(i)].reconstruct();

  recompress_batched<T>(fs, std::is_same_v<R, float> ? R(1e-5) : R(1e-12));
  for (index_t i = 0; i < batch; ++i) {
    LowRankFactor<T>& s = serial[static_cast<std::size_t>(i)];
    const index_t k =
        recompress<T>(s, std::is_same_v<R, float> ? R(1e-5) : R(1e-12));
    EXPECT_EQ(fs[static_cast<std::size_t>(i)].rank(), k) << "problem " << i;
    EXPECT_LE(rel_error<T>(fs[static_cast<std::size_t>(i)].reconstruct(),
                           before[static_cast<std::size_t>(i)]),
              rtol)
        << "problem " << i;
  }
  // The max_rank cap applies in both (the pre-PR-4 recompress ignored it).
  LowRankFactor<T> capped;
  capped.u = random_matrix<T>(m, 8, 777);
  capped.v = random_matrix<T>(n, 8, 778);
  std::vector<LowRankFactor<T>> one(1);
  one[0].u = to_matrix(capped.u.view());
  one[0].v = to_matrix(capped.v.view());
  EXPECT_EQ(recompress<T>(capped, R{0}, 3), 3);
  recompress_batched<T>(one, R{0}, 3);
  EXPECT_EQ(one[0].rank(), 3);
}

/// The batched sweep must issue device launches and must NOT create pool
/// threads mid-sweep — the PR 2 pool invariant extended to the SVD engine.
TEST(SvdBatched, SweepLaunchesBatchedKernelsWithoutThreadChurn) {
  ThreadPool& pool = ThreadPool::instance();
  const index_t m = 96, n = 16, batch = 24;
  std::vector<double> buf(static_cast<std::size_t>(m) * n * batch);
  for (index_t i = 0; i < batch; ++i) {
    Matrix<double> a = random_matrix<double>(m, n, 177 + i);
    copy<double>(a.view(),
                 MatrixView<double>{buf.data() + i * m * n, m, n, m});
  }
  std::vector<double> sig(static_cast<std::size_t>(n) * batch);
  std::vector<double> v(static_cast<std::size_t>(n) * n * batch);
  const std::uint64_t created = pool.threads_created();
  const std::uint64_t launches0 = DeviceContext::global().launches();
  jacobi_svd_strided_batched<double>(buf.data(), m, m * n, m, n, sig.data(),
                                     n, v.data(), n, n * n, batch,
                                     BatchPolicy::kForceBatched);
  EXPECT_GT(DeviceContext::global().launches(), launches0 + 3)
      << "init + per-sweep Gram/rotation + finalize must be recorded as "
         "batched launches";
  EXPECT_EQ(pool.threads_created(), created)
      << "a batched-SVD sweep must not create threads";
}

}  // namespace
}  // namespace hodlrx
