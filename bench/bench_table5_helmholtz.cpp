/// Reproduces paper Table V and Fig. 8 (Sec. IV-C): the combined-field BIE
/// for the exterior Helmholtz problem (eq. 24) with eta = kappa = 100,
/// discretized with the 6th-order Kapur-Rokhlin rule; complex double
/// arithmetic throughout. Solver columns as in Table IV.
/// (a) high accuracy: tol 1e-12 (fast direct solver);
/// (b) --low: tol 1e-4 (robust preconditioner regime).
/// Default sweep N = 2^12 .. 2^14 (Hankel evaluations dominate the
/// construction, which — as in the paper — is not part of t_f);
/// --full extends to 2^16.

#include "bench_util.hpp"
#include "bie/helmholtz.hpp"

using namespace hodlrx;
using C = std::complex<double>;

void run_sweep(const bench::Args& args, double tol, char variant);

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv);
  if (!args.low_accuracy) {
    run_sweep(args, 1e-12, 'a');
    std::printf("\n");
  }
  run_sweep(args, 1e-4, 'b');
  std::printf(
      "\nShape checks vs the paper: ranks (and so costs) are higher than "
      "the\nLaplace case at equal N due to the oscillatory kernel; the GPU "
      "solver\nwins both stages; low accuracy is much cheaper than high.\n");
  return 0;
}

void run_sweep(const bench::Args& args, double tol, char variant) {
  const double kappa = 100.0, eta = 100.0;
  const index_t n_lo = 1 << 12;
  index_t n_hi = args.full ? (1 << 16) : (1 << 14);
  if (args.max_n > 0) n_hi = args.max_n;

  std::printf("== Table V(%c) / Fig. 8: Helmholtz BIE, kappa=eta=100, "
              "Kapur-Rokhlin order 6, tol %.0e ==\n", variant, tol);
  std::printf("%10s  %20s  %20s  %20s  %20s  %9s\n", "N",
              "SerialHODLR tf    ts", "SerBlkSprs tf     ts",
              "ParBlkSprs tf     ts", "GPU HODLR tf      ts", "relres");

  for (index_t n = n_lo; n <= n_hi; n *= 2) {
    bie::BlobContour contour;
    bie::ContourDiscretization d = bie::discretize(contour, n);
    bie::HelmholtzCombinedBIE<C> gen(d, kappa, eta, 6);
    ClusterTree tree = ClusterTree::uniform(n, 64);
    BuildOptions bopt;
    bopt.tol = tol;
    HodlrMatrix<C> h = HodlrMatrix<C>::build(gen, tree, bopt);
    PackedHodlr<C> p = PackedHodlr<C>::pack(h);
    Matrix<C> b = random_matrix<C>(n, 1, 13);

    bench::SolverStats sh = bench::bench_packed(h, p, ExecMode::kSerial,
                                                ConstMatrixView<C>(b),
                                                args.repeats);
    bench::SolverStats bs = bench::bench_block_sparse(
        h, ConstMatrixView<C>(b), args.repeats, /*parallel=*/false);
    bench::SolverStats bp = bench::bench_block_sparse(
        h, ConstMatrixView<C>(b), args.repeats, /*parallel=*/true);
    bench::SolverStats gpu = bench::bench_packed(
        h, p, ExecMode::kBatched, ConstMatrixView<C>(b), args.repeats);

    std::printf(
        "%10lld  %9.3e %9.3e  %9.3e %9.3e  %9.3e %9.3e  %9.3e %9.3e  %9.2e\n",
        static_cast<long long>(n), sh.tf, sh.ts, bs.tf, bs.ts, bp.tf, bp.ts,
        gpu.tf, gpu.ts, gpu.relres);
    std::printf("      mem[GB]: serialH %.4f  serBS %.4f  parBS %.4f  "
                "gpuH %.4f   max rank %lld\n",
                sh.mem_gb, bs.mem_gb, bp.mem_gb, gpu.mem_gb,
                static_cast<long long>(h.max_rank()));
  }
}
