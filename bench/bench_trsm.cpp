/// Microbenchmark of the blocked TRSM/GETRS engine against the seed's
/// unblocked reference kernels (kept in trsm_kernel.cpp as
/// `trsm_left_reference`), per scalar type, plus the batched dispatcher in
/// both execution modes. Emits BENCH_trsm.json so the solve-stage perf
/// trajectory is tracked across PRs alongside BENCH_gemm.json.
///
/// Flags: --repeats N (default 3), --max-n N (cap the large dimension).

#include "bench_util.hpp"

#include "batched/batched_blas.hpp"
#include "common/trsm_kernel.hpp"

using namespace hodlrx;

namespace {

using bench::time_best;

double gflops(index_t n, index_t nrhs, double seconds,
              bool complex_scalar = false) {
  // n^2 * nrhs multiply-adds per triangular solve (FlopCounter convention).
  const double mul = complex_scalar ? 4.0 : 1.0;
  return mul * static_cast<double>(n) * n * nrhs / seconds / 1e9;
}

/// Well-conditioned triangular test matrix (random_triangular_matrix, shared
/// with the tests so bench and suite exercise the same problem class).
template <typename T>
Matrix<T> triangular_matrix(index_t n, Uplo uplo, std::uint64_t seed) {
  return random_triangular_matrix<T>(n, uplo == Uplo::Lower, seed);
}

template <typename T>
void run_trsm_case(const char* name, Uplo uplo, index_t n, index_t nrhs,
                   int repeats, bench::JsonArrayWriter& out) {
  Matrix<T> a = triangular_matrix<T>(n, uplo, 11);
  Matrix<T> b0 = random_matrix<T>(n, nrhs, 12);
  Matrix<T> b(n, nrhs);
  auto restore = [&] { copy<T>(b0.view(), b.view()); };
  const double t_seed = bench::time_best_with_setup(repeats, restore, [&] {
    trsm_left_reference<T>(uplo, Diag::NonUnit, a, b.view());
  });
  const double t_blocked = bench::time_best_with_setup(repeats, restore, [&] {
    trsm_left_blocked<T>(uplo, Diag::NonUnit, a, b.view());
  });
  const double g_seed = gflops(n, nrhs, t_seed, is_complex_v<T>);
  const double g_blocked = gflops(n, nrhs, t_blocked, is_complex_v<T>);
  std::printf("%-22s %s %c %5lldx%5lld  seed %8.2f GF/s  blocked %8.2f GF/s"
              "  speedup %5.2fx\n",
              name, scalar_name<T>(), uplo == Uplo::Lower ? 'L' : 'U',
              static_cast<long long>(n), static_cast<long long>(nrhs), g_seed,
              g_blocked, t_seed / t_blocked);
  out.begin_record();
  out.field("case", name);
  out.field("type", scalar_name<T>());
  out.field("uplo", uplo == Uplo::Lower ? "L" : "U");
  out.field("n", n);
  out.field("nrhs", nrhs);
  out.field("seed_gflops", g_seed);
  out.field("blocked_gflops", g_blocked);
  out.field("speedup", t_seed / t_blocked);
  out.end_record();
}

template <typename T>
void run_getrs_case(index_t n, index_t nrhs, int repeats,
                    bench::JsonArrayWriter& out) {
  Matrix<T> a = random_matrix<T>(n, n, 21);
  for (index_t i = 0; i < n; ++i) a(i, i) += T{4};
  std::vector<index_t> ipiv(n);
  getrf<T>(a.view(), ipiv.data());
  Matrix<T> b0 = random_matrix<T>(n, nrhs, 22);
  Matrix<T> b(n, nrhs);
  auto restore = [&] { copy<T>(b0.view(), b.view()); };
  const double t_seed = bench::time_best_with_setup(repeats, restore, [&] {
    laswp<T>(b.view(), ipiv.data(), n, true);
    trsm_left_reference<T>(Uplo::Lower, Diag::Unit, a, b.view());
    trsm_left_reference<T>(Uplo::Upper, Diag::NonUnit, a, b.view());
  });
  const double t_blocked = bench::time_best_with_setup(
      repeats, restore, [&] { getrs<T>(a, ipiv.data(), b.view()); });
  const double g_seed = gflops(n, 2 * nrhs, t_seed, is_complex_v<T>);
  const double g_blocked = gflops(n, 2 * nrhs, t_blocked, is_complex_v<T>);
  std::printf("%-22s %s   %5lldx%5lld  seed %8.2f GF/s  blocked %8.2f GF/s"
              "  speedup %5.2fx\n",
              "getrs", scalar_name<T>(), static_cast<long long>(n),
              static_cast<long long>(nrhs), g_seed, g_blocked,
              t_seed / t_blocked);
  out.begin_record();
  out.field("case", "getrs");
  out.field("type", scalar_name<T>());
  out.field("n", n);
  out.field("nrhs", nrhs);
  out.field("seed_gflops", g_seed);
  out.field("blocked_gflops", g_blocked);
  out.field("speedup", t_seed / t_blocked);
  out.end_record();
}

void run_batched_case(index_t batch, index_t n, index_t nrhs, int repeats,
                      bench::JsonArrayWriter& out) {
  std::vector<Matrix<double>> a;
  std::vector<Matrix<double>> b0;
  for (index_t i = 0; i < batch; ++i) {
    a.push_back(triangular_matrix<double>(n, Uplo::Lower, 100 + i));
    b0.push_back(random_matrix<double>(n, nrhs, 200 + i));
  }
  std::vector<Matrix<double>> b = b0;
  std::vector<ConstMatrixView<double>> av(a.begin(), a.end());
  std::vector<MatrixView<double>> bv(b.begin(), b.end());
  auto restore = [&] {
    for (index_t i = 0; i < batch; ++i) copy<double>(b0[i].view(), bv[i]);
  };
  const double t_seed = bench::time_best_with_setup(repeats, restore, [&] {
    for (index_t i = 0; i < batch; ++i)
      trsm_left_reference<double>(Uplo::Lower, Diag::NonUnit, av[i], bv[i]);
  });
  const double t_batched = bench::time_best_with_setup(repeats, restore, [&] {
    trsm_batched<double>(Uplo::Lower, Diag::NonUnit, av, bv,
                         BatchPolicy::kForceBatched);
  });
  const double work = static_cast<double>(batch) * n * n * nrhs;
  std::printf("trsm_batched          d   batch=%lld n=%lld  loop-of-seed "
              "%8.2f GF/s  batched %8.2f GF/s\n",
              static_cast<long long>(batch), static_cast<long long>(n),
              work / t_seed / 1e9, work / t_batched / 1e9);
  out.begin_record();
  out.field("case", "trsm_batched");
  out.field("type", "d");
  out.field("batch", batch);
  out.field("n", n);
  out.field("nrhs", nrhs);
  out.field("seed_gflops", work / t_seed / 1e9);
  out.field("blocked_gflops", work / t_batched / 1e9);
  out.field("speedup", t_seed / t_batched);
  out.end_record();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv);
  index_t big = 1024, mid = 512;
  if (args.max_n > 0) {
    big = std::min(big, args.max_n);
    mid = std::min(mid, args.max_n);
  }
  std::printf("== bench_trsm: blocked solve engine vs seed kernels "
              "(single thread for like-for-like) ==\n");
  bench::JsonArrayWriter out("BENCH_trsm.json");
  bench::emit_blocking_records(out);

  run_trsm_case<double>("trsm", Uplo::Lower, big, big, args.repeats, out);
  run_trsm_case<double>("trsm", Uplo::Upper, big, big, args.repeats, out);
  run_trsm_case<float>("trsm", Uplo::Lower, big, big, args.repeats, out);
  run_trsm_case<std::complex<float>>("trsm", Uplo::Lower, mid, mid,
                                     args.repeats, out);
  run_trsm_case<std::complex<double>>("trsm", Uplo::Lower, mid, mid,
                                      args.repeats, out);
  run_getrs_case<double>(big, big, args.repeats, out);
  run_batched_case(/*batch=*/256, /*n=*/64, /*nrhs=*/64, args.repeats, out);
  out.close();
  std::printf("wrote BENCH_trsm.json\n");
  return 0;
}
