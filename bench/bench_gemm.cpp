/// Microbenchmark of the packed, register-tiled GEMM engine against the
/// seed's naive kernels (replicated here verbatim as the baseline), plus the
/// batch layer's shared-operand fast path. Emits BENCH_gemm.json so the perf
/// trajectory is tracked across PRs.
///
/// Flags: --repeats N (default 3), --max-n N (cap the large dimension).

#include "bench_util.hpp"

#include "batched/batched_blas.hpp"
#include "common/gemm_kernel.hpp"

using namespace hodlrx;

namespace {

/// The seed's gemm_nn: row-blocked axpy loops, no packing, no register tile.
template <typename T>
void seed_gemm_nn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                  MatrixView<T> c) {
  const index_t m = c.rows, n = c.cols, k = a.cols;
  constexpr index_t kRowBlock = 768;
  for (index_t ii = 0; ii < m; ii += kRowBlock) {
    const index_t mb = std::min(kRowBlock, m - ii);
    for (index_t j = 0; j < n; ++j) {
      T* __restrict__ cj = c.data + ii + j * c.ld;
      if (beta == T{}) {
        for (index_t i = 0; i < mb; ++i) cj[i] = T{};
      } else if (beta != T{1}) {
        for (index_t i = 0; i < mb; ++i) cj[i] *= beta;
      }
      for (index_t l = 0; l < k; ++l) {
        const T blj = alpha * b.data[l + j * b.ld];
        if (blj == T{}) continue;
        const T* __restrict__ al = a.data + ii + l * a.ld;
        for (index_t i = 0; i < mb; ++i) cj[i] += al[i] * blj;
      }
    }
  }
}

/// The seed's generic fallback (element accessors), which served every
/// combination with opb != N.
template <typename T>
void seed_gemm_generic(Op opa, Op opb, T alpha, ConstMatrixView<T> a,
                       ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  const index_t m = c.rows, n = c.cols, k = op_cols(opa, a);
  auto at = [&](index_t i, index_t l) -> T {
    switch (opa) {
      case Op::N: return a(i, l);
      case Op::T: return a(l, i);
      default: return conj_s(a(l, i));
    }
  };
  auto bt = [&](index_t l, index_t j) -> T {
    switch (opb) {
      case Op::N: return b(l, j);
      case Op::T: return b(j, l);
      default: return conj_s(b(j, l));
    }
  };
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T s{};
      for (index_t l = 0; l < k; ++l) s += at(i, l) * bt(l, j);
      T& cij = c(i, j);
      cij = (beta == T{}) ? alpha * s : alpha * s + beta * cij;
    }
}

using bench::time_best;

double gflops(index_t m, index_t n, index_t k, double seconds,
              bool complex_scalar = false) {
  const double mul = complex_scalar ? 8.0 : 2.0;
  return mul * static_cast<double>(m) * n * k / seconds / 1e9;
}

struct Case {
  const char* name;
  Op opa, opb;
  index_t m, n, k;
};

template <typename T>
void run_case(const Case& cs, int repeats, bench::JsonArrayWriter& out) {
  Matrix<T> a = random_matrix<T>(cs.opa == Op::N ? cs.m : cs.k,
                                 cs.opa == Op::N ? cs.k : cs.m, 11);
  Matrix<T> b = random_matrix<T>(cs.opb == Op::N ? cs.k : cs.n,
                                 cs.opb == Op::N ? cs.n : cs.k, 12);
  Matrix<T> c(cs.m, cs.n);
  const bool nn = cs.opa == Op::N && cs.opb == Op::N;
  const double t_seed = time_best(repeats, [&] {
    if (nn)
      seed_gemm_nn<T>(T{1}, a, b, T{0}, c.view());
    else
      seed_gemm_generic<T>(cs.opa, cs.opb, T{1}, a, b, T{0}, c.view());
  });
  const double t_packed = time_best(repeats, [&] {
    gemm_packed<T>(cs.opa, cs.opb, T{1}, a, b, T{0}, c.view());
  });
  const double g_seed = gflops(cs.m, cs.n, cs.k, t_seed, is_complex_v<T>);
  const double g_packed = gflops(cs.m, cs.n, cs.k, t_packed, is_complex_v<T>);
  std::printf("%-24s %c%c %5lldx%5lldx%5lld  seed %8.2f GF/s  packed %8.2f"
              " GF/s  speedup %5.2fx\n",
              cs.name, static_cast<char>(cs.opa), static_cast<char>(cs.opb),
              static_cast<long long>(cs.m), static_cast<long long>(cs.n),
              static_cast<long long>(cs.k), g_seed, g_packed,
              t_seed / t_packed);
  out.begin_record();
  out.field("case", cs.name);
  out.field("type", scalar_name<T>());
  out.field("opa", std::string(1, static_cast<char>(cs.opa)));
  out.field("opb", std::string(1, static_cast<char>(cs.opb)));
  out.field("m", cs.m);
  out.field("n", cs.n);
  out.field("k", cs.k);
  out.field("seed_gflops", g_seed);
  out.field("packed_gflops", g_packed);
  out.field("speedup", t_seed / t_packed);
  out.end_record();
}

void run_shared_batch(index_t batch, index_t m, index_t n, index_t k,
                      int repeats, bench::JsonArrayWriter& out) {
  Matrix<double> a = random_matrix<double>(m, k * batch, 21);
  Matrix<double> b = random_matrix<double>(k, n, 22);
  Matrix<double> c(m, n * batch);
  // Shared B via stride 0 (one pack per launch) vs the same batch with a
  // per-problem stride pointing at identical data (packed per problem).
  const double t_shared = time_best(repeats, [&] {
    gemm_strided_batched<double>(Op::N, Op::N, m, n, k, 1.0, a.data(), m,
                                 m * k, b.data(), k, 0, 0.0, c.data(), m,
                                 m * n, batch);
  });
  Matrix<double> breps(k, n * batch);
  for (index_t i = 0; i < batch; ++i)
    copy<double>(b.view(), breps.view().block(0, i * n, k, n));
  const double t_unshared = time_best(repeats, [&] {
    gemm_strided_batched<double>(Op::N, Op::N, m, n, k, 1.0, a.data(), m,
                                 m * k, breps.data(), k, k * n, 0.0, c.data(),
                                 m, m * n, batch);
  });
  const double work = 2.0 * batch * m * n * k;
  std::printf("shared-B batch=%lld %lldx%lldx%lld  shared %8.2f GF/s  "
              "unshared %8.2f GF/s\n",
              static_cast<long long>(batch), static_cast<long long>(m),
              static_cast<long long>(n), static_cast<long long>(k),
              work / t_shared / 1e9, work / t_unshared / 1e9);
  out.begin_record();
  out.field("case", "strided_batched_shared_b");
  out.field("type", "d");
  out.field("batch", batch);
  out.field("m", m);
  out.field("n", n);
  out.field("k", k);
  out.field("shared_gflops", work / t_shared / 1e9);
  out.field("unshared_gflops", work / t_unshared / 1e9);
  out.field("speedup", t_unshared / t_shared);
  out.end_record();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv);
  index_t big = 1024, mid = 512;
  if (args.max_n > 0) {
    big = std::min(big, args.max_n);
    mid = std::min(mid, args.max_n);
  }
  std::printf("== bench_gemm: packed engine vs seed kernels "
              "(single thread for like-for-like) ==\n");
  bench::JsonArrayWriter out("BENCH_gemm.json");
  bench::emit_blocking_records(out);

  run_case<double>({"d_nn_large", Op::N, Op::N, big, big, big}, args.repeats,
                   out);
  run_case<double>({"d_nc_generic", Op::N, Op::C, mid, mid, mid},
                   args.repeats, out);
  run_case<double>({"d_cc_generic", Op::C, Op::C, mid, mid, mid},
                   args.repeats, out);
  run_case<float>({"s_nn_large", Op::N, Op::N, big, big, big}, args.repeats,
                  out);
  run_case<std::complex<double>>({"z_cn", Op::C, Op::N, mid / 2, mid / 2,
                                  mid / 2},
                                 args.repeats, out);
  run_shared_batch(/*batch=*/32, /*m=*/64, /*n=*/64, /*k=*/64, args.repeats,
                   out);
  out.close();
  std::printf("wrote BENCH_gemm.json\n");
  return 0;
}
