/// Ablations for the design choices the paper calls out in Sec. III-C:
///   1. Batched level sweeps vs per-node launches under injected kernel
///      launch latency (the launch-amortization argument for the big-matrix
///      data structure): we count launches and model GPU-like latencies.
///   2. Pivoted K (eq. 9) vs the identity-diagonal pivot-free variant.
///   3. Stream mode vs pure batched mode for the top levels.
///   4. Single vs double precision (the ~2x claim of Sec. IV-B).
///   5. Dense LU crossover at small N (the O(N^3) baseline of Sec. I-A).

#include "baseline/dense_solver.hpp"
#include "bench_util.hpp"
#include "kernels/kernels.hpp"

using namespace hodlrx;

namespace {

template <typename T>
std::pair<HodlrMatrix<T>, PackedHodlr<T>> setup(index_t n, double tol) {
  PointSet pts = uniform_random_points(n, 1, -1, 1, 29);
  GeometricTree g = build_kd_tree(pts, 64);
  ExponentialKernel<T> kernel(std::move(g.points), 1.0, 1e-2);
  BuildOptions opt;
  opt.tol = tol;
  HodlrMatrix<T> h = HodlrMatrix<T>::build(kernel, g.tree, opt);
  PackedHodlr<T> p = PackedHodlr<T>::pack(h);
  return {std::move(h), std::move(p)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv);
  const index_t n = args.full ? (1 << 17) : (1 << 15);

  std::printf("== Ablations (exponential kernel, N=%lld, tol 1e-10) ==\n\n",
              static_cast<long long>(n));
  auto [h, p] = setup<double>(n, 1e-10);
  Matrix<double> b = random_matrix<double>(n, 1, 31);

  // --- 1. launch counting: batched sweep vs per-node recursive ------------
  {
    DeviceContext::global().reset_counters();
    auto f = HodlrFactorization<double>::factor(p, {});
    const auto batched_launches = DeviceContext::global().launches();
    std::printf("[1] device launches, batched factorization: %llu\n",
                static_cast<unsigned long long>(batched_launches));
    // Per-node execution would launch ~4 kernels per node:
    const unsigned long long per_node =
        4ull * static_cast<unsigned long long>(h.tree().num_nodes());
    std::printf("    per-node execution would need ~%llu launches "
                "(%.0fx more)\n",
                per_node, double(per_node) / double(batched_launches));
    for (double latency_us : {0.0, 5.0, 20.0}) {
      DeviceContext::global().set_launch_latency_us(latency_us);
      WallTimer t;
      auto f2 = HodlrFactorization<double>::factor(p, {});
      const double tf = t.seconds();
      std::printf("    tf with %4.0f us/launch latency: %.4f s  "
                  "(per-node at same latency would add ~%.3f s)\n",
                  latency_us, tf, per_node * latency_us * 1e-6);
    }
    DeviceContext::global().set_launch_latency_us(0.0);
  }

  // --- 2. pivoted vs identity-diagonal K ----------------------------------
  {
    std::printf("\n[2] K-matrix formulation (eq. 9 vs reordered variant):\n");
    for (KForm kform : {KForm::kPivoted, KForm::kIdentityDiagonal}) {
      FactorOptions opt;
      opt.kform = kform;
      double tf = 0, ts = 0;
      Matrix<double> x;
      for (int rep = 0; rep < args.repeats; ++rep) {
        WallTimer t;
        auto f = HodlrFactorization<double>::factor(p, opt);
        tf += t.seconds();
        x = to_matrix(b.view());
        t.reset();
        f.solve_inplace(x);
        ts += t.seconds();
      }
      std::printf("    %-18s tf %.4f s   ts %.5f s   relres %.2e\n",
                  kform == KForm::kPivoted ? "pivoted" : "identity-diagonal",
                  tf / args.repeats, ts / args.repeats,
                  bench::hodlr_relres(h, ConstMatrixView<double>(x),
                                      ConstMatrixView<double>(b)));
    }
  }

  // --- 3. stream mode vs batched mode -------------------------------------
  {
    std::printf("\n[3] batch policy (paper: streams win on the top levels):\n");
    for (BatchPolicy pol : {BatchPolicy::kAuto, BatchPolicy::kForceBatched,
                            BatchPolicy::kForceStream}) {
      FactorOptions opt;
      opt.policy = pol;
      double tf = 0;
      for (int rep = 0; rep < args.repeats; ++rep) {
        WallTimer t;
        auto f = HodlrFactorization<double>::factor(p, opt);
        tf += t.seconds();
      }
      const char* name = pol == BatchPolicy::kAuto
                             ? "auto (hybrid)"
                             : (pol == BatchPolicy::kForceBatched
                                    ? "force batched"
                                    : "force stream");
      std::printf("    %-14s tf %.4f s\n", name, tf / args.repeats);
    }
  }

  // --- 4. float vs double -------------------------------------------------
  {
    std::printf("\n[4] precision (paper Sec. IV-B: ~2x from single):\n");
    auto [hf, pf] = setup<float>(n, 1e-5);
    auto [hd, pd] = setup<double>(n, 1e-5);
    Matrix<float> bf = random_matrix<float>(n, 1, 31);
    bench::SolverStats sf = bench::bench_packed(
        hf, pf, ExecMode::kBatched, ConstMatrixView<float>(bf), args.repeats);
    bench::SolverStats sd = bench::bench_packed(
        hd, pd, ExecMode::kBatched, ConstMatrixView<double>(b), args.repeats);
    std::printf("    double: tf %.4f s  ts %.5f s  mem %.4f GB\n", sd.tf,
                sd.ts, sd.mem_gb);
    std::printf("    float : tf %.4f s  ts %.5f s  mem %.4f GB  "
                "(speedup %.2fx, mem %.2fx)\n",
                sf.tf, sf.ts, sf.mem_gb, sd.tf / sf.tf,
                sd.mem_gb / sf.mem_gb);
  }

  // --- 5. dense crossover --------------------------------------------------
  {
    std::printf("\n[5] dense LU baseline crossover:\n");
    for (index_t nn : {512, 2048, 8192}) {
      auto [hs, ps] = setup<double>(nn, 1e-10);
      Matrix<double> bs = random_matrix<double>(nn, 1, 37);
      bench::SolverStats fast = bench::bench_packed(
          hs, ps, ExecMode::kBatched, ConstMatrixView<double>(bs), 1);
      Matrix<double> dense = hs.to_dense();
      WallTimer t;
      DenseSolver<double> ds = DenseSolver<double>::factor(dense);
      const double dense_tf = t.seconds();
      std::printf("    N=%6lld  hodlr tf %.4f s   dense tf %.4f s   "
                  "ratio %.1fx\n",
                  static_cast<long long>(nn), fast.tf, dense_tf,
                  dense_tf / fast.tf);
    }
  }
  return 0;
}
