/// Microbenchmarks of the batched device engine — the substrate claims of
/// Sec. III-C: batching many small operations into one call, the strided
/// fast path, the stream-mode crossover for small batches of large problems,
/// and the batched factor/solve kernels on the persistent thread pool.
///
/// Self-contained driver (no google-benchmark dependency) that emits
/// BENCH_micro_batched.json like the other benches, so batched throughput is
/// tracked across PRs. The batched-QR section additionally emits
/// BENCH_qr_batched.json: the panel-synchronized batched QR engine against
/// the seed's per-block unblocked tail (the PR 2 rsvd orthonormalization
/// path) at the compression sweep's canonical shape.
///
/// Flags: --repeats N (default 3), --max-n N (cap problem sizes),
/// --qr-only / --svd-only (run ONLY the QR / SVD section; either pins the
/// pool to one thread unless HODLRX_NUM_THREADS is set, so the recorded
/// speedup is the single-thread algorithmic win, not parallelism). The SVD
/// section emits BENCH_svd_batched.json: the sweep-synchronized batched
/// Jacobi truncation tail against the per-block serial tail (the PR 3 rsvd
/// truncation path) at the compression sweep's canonical shape.
/// --interleave-only (also single-thread by default) runs ONLY the
/// across-batch SIMD stage benches — lane-major QR panel, Jacobi sweep and
/// small-GEMM tail vs their per-problem scalar kernels, plus the full
/// drivers at the resolved width vs HODLRX_BATCH_SIMD=1 — and emits
/// BENCH_batch_simd.json.

#include <cstdlib>

#include "bench_util.hpp"

#include "batched/batch_kernels.hpp"
#include "batched/batched_blas.hpp"
#include "batched/interleave.hpp"
#include "common/lapack.hpp"
#include "common/parallel.hpp"
#include "common/trsm_kernel.hpp"
#include "lowrank/lowrank.hpp"

using namespace hodlrx;

namespace {

struct GemmBatchFixture {
  std::vector<Matrix<double>> a, b, c;
  std::vector<ConstMatrixView<double>> av, bv;
  std::vector<MatrixView<double>> cv;

  GemmBatchFixture(index_t batch, index_t m, index_t n, index_t k) {
    for (index_t i = 0; i < batch; ++i) {
      a.push_back(random_matrix<double>(m, k, 100 + i));
      b.push_back(random_matrix<double>(k, n, 200 + i));
      c.push_back(Matrix<double>(m, n));
      av.push_back(a.back());
      bv.push_back(b.back());
      cv.push_back(c.back());
    }
  }
};

using bench::time_best;
using bench::time_best_with_setup;

void emit(bench::JsonArrayWriter& out, const char* name, index_t batch,
          index_t s, double seconds, double work_flops) {
  const double gf = work_flops / seconds / 1e9;
  const double items = static_cast<double>(batch) / seconds;
  std::printf("%-28s batch=%5lld s=%4lld  %10.2f GF/s  %12.0f problems/s\n",
              name, static_cast<long long>(batch), static_cast<long long>(s),
              gf, items);
  out.begin_record();
  out.field("case", name);
  out.field("batch", batch);
  out.field("s", s);
  out.field("gflops", gf);
  out.field("problems_per_sec", items);
  out.end_record();
}

void bench_gemm_small(index_t batch, index_t s, int repeats,
                      bench::JsonArrayWriter& out) {
  GemmBatchFixture f(batch, s, s, s);
  const double work = 2.0 * batch * s * s * s;
  emit(out, "gemm_loop_of_small", batch, s, time_best(repeats, [&] {
         for (index_t i = 0; i < batch; ++i)
           gemm<double>(Op::N, Op::N, 1.0, f.av[i], f.bv[i], 0.0, f.cv[i]);
       }),
       work);
  emit(out, "gemm_batched", batch, s, time_best(repeats, [&] {
         gemm_batched<double>(Op::N, Op::N, 1.0, f.av, f.bv, 0.0, f.cv);
       }),
       work);
  Matrix<double> a = random_matrix<double>(s, s * batch, 1);
  Matrix<double> b = random_matrix<double>(s, s * batch, 2);
  Matrix<double> c(s, s * batch);
  emit(out, "gemm_strided_batched", batch, s, time_best(repeats, [&] {
         gemm_strided_batched<double>(Op::N, Op::N, s, s, s, 1.0, a.data(), s,
                                      s * s, b.data(), s, s * s, 0.0,
                                      c.data(), s, s * s, batch);
       }),
       work);
}

void bench_gemm_stream(index_t batch, index_t s, int repeats,
                       bench::JsonArrayWriter& out) {
  GemmBatchFixture f(batch, s, s, s);
  const double work = 2.0 * batch * s * s * s;
  emit(out, "gemm_batched_large", batch, s, time_best(repeats, [&] {
         gemm_batched<double>(Op::N, Op::N, 1.0, f.av, f.bv, 0.0, f.cv,
                              BatchPolicy::kForceBatched);
       }),
       work);
  emit(out, "gemm_stream_large", batch, s, time_best(repeats, [&] {
         gemm_batched<double>(Op::N, Op::N, 1.0, f.av, f.bv, 0.0, f.cv,
                              BatchPolicy::kForceStream);
       }),
       work);
}

void bench_getrf(index_t batch, index_t s, int repeats,
                 bench::JsonArrayWriter& out) {
  std::vector<Matrix<double>> a0;
  for (index_t i = 0; i < batch; ++i) {
    a0.push_back(random_matrix<double>(s, s, 300 + i));
    for (index_t d = 0; d < s; ++d) a0.back()(d, d) += 4.0;
  }
  std::vector<std::vector<index_t>> piv(batch, std::vector<index_t>(s));
  std::vector<Matrix<double>> a(batch);
  std::vector<MatrixView<double>> av(batch);
  std::vector<index_t*> pv(batch);
  const double work = 2.0 / 3.0 * batch * s * s * s;
  // The matrix restore runs outside the timed section (getrf consumes its
  // input in place), matching the old PauseTiming/ResumeTiming protocol.
  emit(out, "getrf_batched", batch, s,
       time_best_with_setup(
           repeats,
           [&] {
             for (index_t i = 0; i < batch; ++i) {
               a[i] = to_matrix(a0[i].view());
               av[i] = a[i];
               pv[i] = piv[i].data();
             }
           },
           [&] { getrf_batched<double>(av, pv); }),
       work);
}

void bench_solves(index_t batch, index_t s, index_t nrhs, int repeats,
                  bench::JsonArrayWriter& out) {
  std::vector<Matrix<double>> lu;
  std::vector<std::vector<index_t>> piv(batch, std::vector<index_t>(s));
  for (index_t i = 0; i < batch; ++i) {
    lu.push_back(random_matrix<double>(s, s, 500 + i));
    for (index_t d = 0; d < s; ++d) lu.back()(d, d) += 4.0;
    getrf<double>(lu.back().view(), piv[i].data());
  }
  std::vector<Matrix<double>> b0;
  for (index_t i = 0; i < batch; ++i)
    b0.push_back(random_matrix<double>(s, nrhs, 600 + i));
  std::vector<Matrix<double>> b = b0;
  std::vector<ConstMatrixView<double>> luv(lu.begin(), lu.end());
  std::vector<const index_t*> pv;
  for (auto& p : piv) pv.push_back(p.data());
  std::vector<MatrixView<double>> bv(b.begin(), b.end());
  auto restore = [&] {
    for (index_t i = 0; i < batch; ++i) copy<double>(b0[i].view(), bv[i]);
  };
  emit(out, "getrs_batched", batch, s,
       time_best_with_setup(repeats, restore,
                            [&] { getrs_batched<double>(luv, pv, bv); }),
       2.0 * batch * s * s * nrhs);
  emit(out, "trsm_batched", batch, s,
       time_best_with_setup(
           repeats, restore,
           [&] { trsm_batched<double>(Uplo::Lower, Diag::Unit, luv, bv); }),
       static_cast<double>(batch) * s * s * nrhs);
}

/// The batched QR engine vs the seed's per-block tail, at the compression
/// sweep's canonical shape (`batch` sketches of m x n). Three contenders,
/// all producing the explicit thin Q of every block:
///   - qr_tail_reference_loop: per-block unblocked geqrf + per-reflector
///     thin Q (what the rsvd tail ran before the engine existed);
///   - qr_tail_blocked_loop: per-block blocked in-place drivers;
///   - qr_tail_batched: the panel-synchronized strided-batched engine.
void bench_qr(index_t batch, index_t m, index_t n, int repeats,
              bench::JsonArrayWriter& out) {
  Matrix<double> a0 = random_matrix<double>(m, n * batch, 42);
  Matrix<double> work(m, n * batch);
  std::vector<double> tau(static_cast<std::size_t>(n) * batch);
  auto restore = [&] { copy<double>(a0.view(), work.view()); };
  // Householder QR + explicit thin Q work per block (real flavor).
  const double nn = static_cast<double>(n), mm = static_cast<double>(m);
  const double work_flops =
      static_cast<double>(batch) * 4.0 * (mm * nn * nn - nn * nn * nn / 3.0);

  const double t_ref = time_best_with_setup(repeats, restore, [&] {
    for (index_t i = 0; i < batch; ++i) {
      QRFactors<double> qr =
          geqrf_reference<double>(work.view().block(0, i * n, m, n));
      Matrix<double> q = thin_q_reference<double>(qr);
      work(0, i * n) = q(0, 0);  // keep the result alive
    }
  });
  emit(out, "qr_tail_reference_loop", batch, n, t_ref, work_flops);

  const double t_blocked = time_best_with_setup(repeats, restore, [&] {
    for (index_t i = 0; i < batch; ++i) {
      MatrixView<double> bi = work.view().block(0, i * n, m, n);
      geqrf_inplace<double>(bi, tau.data() + i * n);
      thin_q_inplace<double>(work.view().block(0, i * n, m, std::min(m, n)),
                             tau.data() + i * n);
    }
  });
  emit(out, "qr_tail_blocked_loop", batch, n, t_blocked, work_flops);

  const double t_batched = time_best_with_setup(repeats, restore, [&] {
    geqrf_strided_batched<double>(work.data(), m, m * n, m, n, tau.data(), n,
                                  batch, BatchPolicy::kForceBatched);
    thin_q_strided_batched<double>(work.data(), m, m * n, m, n, tau.data(), n,
                                   batch, BatchPolicy::kForceBatched);
  });
  emit(out, "qr_tail_batched", batch, n, t_batched, work_flops);

  std::printf("%-28s batch=%5lld s=%4lld  %10.2fx vs reference "
              "(blocked loop %.2fx) on %d threads\n",
              "qr_tail_speedup", static_cast<long long>(batch),
              static_cast<long long>(n), t_ref / t_batched, t_ref / t_blocked,
              max_threads());
  out.begin_record();
  out.field("case", "qr_tail_speedup");
  out.field("batch", batch);
  out.field("m", m);
  out.field("n", n);
  out.field("threads", static_cast<index_t>(max_threads()));
  out.field("speedup_batched_vs_reference", t_ref / t_batched);
  out.field("speedup_blocked_vs_reference", t_ref / t_blocked);
  out.end_record();
}

/// Sink keeping bench results alive across the timed lambdas.
volatile double g_sink = 0.0;

/// The batched SVD/truncation tail vs the per-block serial tail, at the
/// compression sweep's canonical shape: `batch` small problems B_i = Q_i^H
/// A_i of l x n (wide: l = sketch width) plus the orthonormal range bases
/// Q_i (m x l) the truncated factors multiply. Three contenders, all
/// producing the truncated factors U_i = Q_i W_ik S_ik, V_i = Uh_ik:
///   - svd_tail_reference_loop: per-block seed Jacobi (scalar pair dot
///     products) + per-block truncation gemm — what rsvd_truncate ran
///     before the batched engine existed;
///   - svd_tail_blocked_loop: per-block blocked serial driver (one Gram
///     GEMM per sweep) + per-block gemm;
///   - svd_tail_batched: sweep-synchronized jacobi_svd_strided_batched on
///     the transposed problems + ONE strided truncation-GEMM launch (the
///     rsvd_strided_batched tail).
void bench_svd(index_t batch, index_t l, index_t n, index_t m, int repeats,
               bench::JsonArrayWriter& out) {
  const double tol = 1e-10;
  // The B blocks (l x n wide) and their tall transposes Bh = B^H; in the
  // real sweep Bh comes straight out of a strided GEMM, so forming it here
  // is setup, not timed work.
  Matrix<double> b0(l, n * batch);
  Matrix<double> bh0(n, l * batch);
  for (index_t i = 0; i < batch; ++i) {
    Matrix<double> bi = random_matrix<double>(l, n, 4200 + i);
    copy<double>(bi.view(), b0.view().block(0, i * n, l, n));
    copy<double>(transpose(bi.view(), /*conjugate=*/true).view(),
                 bh0.view().block(0, i * l, n, l));
  }
  // Orthonormal bases Q_i (m x l).
  Matrix<double> q = random_matrix<double>(m, l * batch, 4299);
  {
    std::vector<double> tau(static_cast<std::size_t>(l) * batch);
    geqrf_strided_batched<double>(q.data(), m, m * l, m, l, tau.data(), l,
                                  batch);
    thin_q_strided_batched<double>(q.data(), m, m * l, m, l, tau.data(), l,
                                   batch);
  }
  // Nominal flop count: one Jacobi sweep's rotations plus the truncation
  // product (the GF/s column is for trend-tracking; the speedup is exact).
  const double work_flops = static_cast<double>(batch) *
                            (6.0 * n * l * l + 2.0 * m * l * l);

  const auto serial_tail = [&](auto svd_fn) {
    for (index_t i = 0; i < batch; ++i) {
      SVDResult<double> svd =
          svd_fn(ConstMatrixView<double>(b0.data() + i * l * n, l, n, l));
      const index_t k = truncate_rank<double>(
          svd.s.data(), static_cast<index_t>(svd.s.size()), -1, tol);
      Matrix<double> wk = to_matrix(svd.u.block(0, 0, svd.u.rows(), k));
      for (index_t j = 0; j < k; ++j)
        scale_inplace(svd.s[j], wk.block(0, j, wk.rows(), 1));
      Matrix<double> u(m, k);
      if (k > 0)
        gemm<double>(Op::N, Op::N, 1.0,
                     ConstMatrixView<double>(q.data() + i * m * l, m, l, m),
                     ConstMatrixView<double>(wk), 0.0, u.view());
      g_sink = g_sink + (k > 0 ? u(0, 0) : 0.0);
    }
  };
  const double t_ref = time_best(repeats, [&] {
    serial_tail([](ConstMatrixView<double> b) {
      return jacobi_svd_reference<double>(b);
    });
  });
  emit(out, "svd_tail_reference_loop", batch, l, t_ref, work_flops);
  const double t_blocked = time_best(repeats, [&] {
    serial_tail(
        [](ConstMatrixView<double> b) { return jacobi_svd<double>(b); });
  });
  emit(out, "svd_tail_blocked_loop", batch, l, t_blocked, work_flops);

  Matrix<double> bh(n, l * batch);  // work copy: the batched SVD is in-place
  auto restore = [&] { copy<double>(bh0.view(), bh.view()); };
  const double t_batched = time_best_with_setup(repeats, restore, [&] {
    std::vector<double> sig(static_cast<std::size_t>(l) * batch);
    Matrix<double> w(l, l * batch);
    jacobi_svd_strided_batched<double>(bh.data(), n, n * l, n, l, sig.data(),
                                       l, w.data(), l, l * l, batch,
                                       BatchPolicy::kForceBatched);
    std::vector<index_t> ks(static_cast<std::size_t>(batch));
    for (index_t i = 0; i < batch; ++i)
      ks[static_cast<std::size_t>(i)] =
          truncate_rank<double>(sig.data() + i * l, l, -1, tol);
    parallel_for_static(batch, [&](index_t i) {
      for (index_t j = 0; j < ks[static_cast<std::size_t>(i)]; ++j)
        scale_inplace(sig[static_cast<std::size_t>(i * l + j)],
                      MatrixView<double>{w.data() + i * l * l + j * l, l, 1,
                                         l});
    });
    Matrix<double> uf(m, l * batch);
    gemm_strided_batched<double>(Op::N, Op::N, m, l, l, 1.0, q.data(), m,
                                 m * l, w.data(), l, l * l, 0.0, uf.data(),
                                 m, m * l, batch);
    g_sink = g_sink + uf(0, 0);
  });
  emit(out, "svd_tail_batched", batch, l, t_batched, work_flops);

  std::printf("%-28s batch=%5lld l=%4lld  %10.2fx vs reference "
              "(blocked loop %.2fx) on %d threads\n",
              "svd_tail_speedup", static_cast<long long>(batch),
              static_cast<long long>(l), t_ref / t_batched, t_ref / t_blocked,
              max_threads());
  out.begin_record();
  out.field("case", "svd_tail_speedup");
  out.field("batch", batch);
  out.field("l", l);
  out.field("n", n);
  out.field("m", m);
  out.field("threads", static_cast<index_t>(max_threads()));
  out.field("speedup_batched_vs_reference", t_ref / t_batched);
  out.field("speedup_blocked_vs_reference", t_ref / t_blocked);
  out.end_record();
}

void emit_stage(bench::JsonArrayWriter& out, const char* name, index_t batch,
                index_t m, index_t n, index_t width, double t_scalar,
                double t_batch) {
  std::printf("%-28s batch=%5lld %4lldx%-4lld w=%2lld  %8.2fx vs per-problem "
              "(%.3g ms -> %.3g ms)\n",
              name, static_cast<long long>(batch), static_cast<long long>(m),
              static_cast<long long>(n), static_cast<long long>(width),
              t_scalar / t_batch, t_scalar * 1e3, t_batch * 1e3);
  out.begin_record();
  out.field("case", name);
  out.field("batch", batch);
  out.field("m", m);
  out.field("n", n);
  out.field("width", width);
  out.field("t_scalar_s", t_scalar);
  out.field("t_batch_s", t_batch);
  out.field("speedup", t_scalar / t_batch);
  out.end_record();
}

/// Stage-level across-batch SIMD kernels against the per-problem scalar
/// kernels they replace, on ONE thread: the lane-major Householder panel vs
/// a geqrf_panel loop, the lane-major Jacobi sweep vs a jacobi_sweep_gram
/// loop, and the lane-major small-GEMM tail vs a gemm loop. The interleave /
/// deinterleave staging transposes are INSIDE the timed region — the
/// reported speedup is what the batched drivers actually gain. Shapes follow
/// the compression sweep's canonical tail: `batch` sketch panels of m x n
/// (QR) and the transposed truncation problems of m x n (Jacobi).
void bench_interleave_stages(index_t batch, index_t m, index_t n, int repeats,
                             bench::JsonArrayWriter& out) {
  const index_t w = resolved_blocking<double>().batch_simd_width;
  if (w < 2 || w > 16) {
    std::printf("resolved batch width %lld: across-batch kernels disabled; "
                "skipping stage benches\n", static_cast<long long>(w));
    return;
  }

  // --- QR panel stage -----------------------------------------------------
  {
    Matrix<double> a0 = random_matrix<double>(m, n * batch, 7100);
    Matrix<double> a(m, n * batch);
    std::vector<double> tau(static_cast<std::size_t>(n) * batch);
    auto restore = [&] { copy<double>(a0.view(), a.view()); };
    const double t_scalar = time_best_with_setup(repeats, restore, [&] {
      for (index_t i = 0; i < batch; ++i)
        geqrf_panel<double>(a.view().block(0, i * n, m, n),
                            tau.data() + i * n);
    });
    const double t_batch = time_best_with_setup(repeats, restore, [&] {
      for (index_t g0 = 0; g0 < batch; g0 += w) {
        const index_t nlanes = std::min(w, batch - g0);
        double* buf = interleave_workspace<double>(
            static_cast<std::size_t>(m * n + n) * w);
        double* taub = buf + m * n * w;
        const double* src[16];
        double* dst[16];
        for (index_t l = 0; l < nlanes; ++l) {
          dst[l] = a.data() + (g0 + l) * m * n;
          src[l] = dst[l];
        }
        batch_interleave<double>(m, n, src, m, nlanes, w, buf);
        geqrf_panel_batch<double>(m, n, buf, taub, w);
        batch_deinterleave<double>(m, n, buf, w, nlanes, dst, m);
        for (index_t l = 0; l < nlanes; ++l)
          for (index_t k = 0; k < n; ++k)
            tau[static_cast<std::size_t>((g0 + l) * n + k)] = taub[k * w + l];
      }
    });
    emit_stage(out, "qr_panel_stage", batch, m, n, w, t_scalar, t_batch);
  }

  // --- Jacobi sweep stage -------------------------------------------------
  {
    const double jtol = 32 * eps_v<double>;
    Matrix<double> w0 = random_matrix<double>(m, n * batch, 7200);
    Matrix<double> v0(n, n * batch), g0(n, n * batch);
    for (index_t i = 0; i < batch; ++i) {
      for (index_t d = 0; d < n; ++d) v0(d, i * n + d) = 1.0;
      gemm<double>(Op::C, Op::N, 1.0,
                   ConstMatrixView<double>(w0.view().block(0, i * n, m, n)),
                   ConstMatrixView<double>(w0.view().block(0, i * n, m, n)),
                   0.0, g0.view().block(0, i * n, n, n));
    }
    Matrix<double> wm(m, n * batch), vm(n, n * batch), gm(n, n * batch);
    // Accumulated-rotation scratch of the batch leg: one R per problem.
    Matrix<double> rm(n, n * batch);
    auto restore = [&] {
      copy<double>(w0.view(), wm.view());
      copy<double>(v0.view(), vm.view());
      copy<double>(g0.view(), gm.view());
    };
    const double t_scalar = time_best_with_setup(repeats, restore, [&] {
      for (index_t i = 0; i < batch; ++i)
        jacobi_sweep_gram<double>(wm.view().block(0, i * n, m, n),
                                  vm.view().block(0, i * n, n, n),
                                  gm.view().block(0, i * n, n, n), jtol);
    });
    const double t_batch = time_best_with_setup(repeats, restore, [&] {
      // The driver's sequence: interleave the Gram matrices, run the
      // accumulated-rotation pair scan lane-major, scatter each lane's R,
      // then apply w <- w*R and v <- v*R with the in-place narrow-product
      // kernel.
      for (index_t g = 0; g < batch; g += w) {
        const index_t nlanes = std::min(w, batch - g);
        double* buf = interleave_workspace<double>(
            static_cast<std::size_t>(2 * n * n) * w);
        double* gb = buf;
        double* rb = gb + n * n * w;
        const double* gsrc[16];
        double* rdst[16];
        for (index_t l = 0; l < nlanes; ++l) {
          gsrc[l] = gm.data() + (g + l) * n * n;
          rdst[l] = rm.data() + (g + l) * n * n;
        }
        batch_interleave<double>(n, n, gsrc, n, nlanes, w, gb);
        bool rotated[16] = {};
        jacobi_sweep_batch<double>(n, gb, rb, jtol, w, rotated);
        batch_deinterleave<double>(n, n, rb, w, nlanes, rdst, n);
      }
      for (index_t i = 0; i < batch; ++i) {
        const double* ri = rm.data() + i * n * n;
        gemm_right_inplace<double>(m, n, wm.data() + i * m * n, m, ri, n);
        gemm_right_inplace<double>(n, n, vm.data() + i * n * n, n, ri, n);
      }
    });
    emit_stage(out, "jacobi_sweep_stage", batch, m, n, w, t_scalar, t_batch);
  }

  // --- small-GEMM tail stage ----------------------------------------------
  {
    const index_t sm = 4, sn = 4, sk = 32;
    Matrix<double> a = random_matrix<double>(sm, sk * batch, 7300);
    Matrix<double> b = random_matrix<double>(sk, sn * batch, 7301);
    Matrix<double> c(sm, sn * batch);
    const double t_scalar = time_best(repeats, [&] {
      for (index_t i = 0; i < batch; ++i)
        gemm<double>(Op::N, Op::N, 1.0,
                     ConstMatrixView<double>(a.view().block(0, i * sk, sm, sk)),
                     ConstMatrixView<double>(b.view().block(0, i * sn, sk, sn)),
                     0.0, c.view().block(0, i * sn, sm, sn));
    });
    const double t_batch = time_best(repeats, [&] {
      for (index_t g = 0; g < batch; g += w) {
        const index_t nlanes = std::min(w, batch - g);
        double* buf = interleave_workspace<double>(
            static_cast<std::size_t>(sm * sk + sk * sn + sm * sn) * w);
        double* ab = buf;
        double* bb = ab + sm * sk * w;
        double* cb = bb + sk * sn * w;
        const double* asrc[16];
        const double* bsrc[16];
        double* cdst[16];
        for (index_t l = 0; l < nlanes; ++l) {
          asrc[l] = a.data() + (g + l) * sm * sk;
          bsrc[l] = b.data() + (g + l) * sk * sn;
          cdst[l] = c.data() + (g + l) * sm * sn;
        }
        batch_interleave<double>(sm, sk, asrc, sm, nlanes, w, ab);
        batch_interleave<double>(sk, sn, bsrc, sk, nlanes, w, bb);
        small_gemm_batch<double>(sm, sn, sk, ab, bb, cb, w);
        batch_deinterleave_axpby<double>(1.0, sm, sn, cb, w, nlanes, 0.0,
                                         cdst, sm);
      }
    });
    g_sink = g_sink + c(0, 0);
    emit_stage(out, "small_gemm_stage", batch, sm, sn, w, t_scalar, t_batch);
  }
}

/// Driver-level cross-check of the same win: the full strided-batched QR and
/// Jacobi drivers under the RESOLVED batch width vs HODLRX_BATCH_SIMD=1 (the
/// bit-for-bit scalar fallback), so BENCH_batch_simd.json records both the
/// isolated stage speedup and what survives end-to-end dispatch.
void bench_interleave_drivers(index_t batch, index_t m, index_t n,
                              int repeats, bench::JsonArrayWriter& out) {
  const index_t w = resolved_blocking<double>().batch_simd_width;
  Matrix<double> a0 = random_matrix<double>(m, n * batch, 7400);
  Matrix<double> a(m, n * batch);
  std::vector<double> tau(static_cast<std::size_t>(n) * batch);
  auto restore = [&] { copy<double>(a0.view(), a.view()); };
  auto qr_leg = [&] {
    return time_best_with_setup(repeats, restore, [&] {
      geqrf_strided_batched<double>(a.data(), m, m * n, m, n, tau.data(), n,
                                    batch, BatchPolicy::kForceBatched);
    });
  };
  std::vector<double> sig(static_cast<std::size_t>(n) * batch);
  Matrix<double> v(n, n * batch);
  auto svd_leg = [&] {
    return time_best_with_setup(repeats, restore, [&] {
      jacobi_svd_strided_batched<double>(a.data(), m, m * n, m, n, sig.data(),
                                         n, v.data(), n, n * n, batch,
                                         BatchPolicy::kForceBatched);
    });
  };
  const double t_qr = qr_leg();
  const double t_svd = svd_leg();
  setenv("HODLRX_BATCH_SIMD", "1", /*overwrite=*/1);
  blocking_detail::refresh_for_testing();
  const double t_qr1 = qr_leg();
  const double t_svd1 = svd_leg();
  unsetenv("HODLRX_BATCH_SIMD");
  blocking_detail::refresh_for_testing();
  emit_stage(out, "geqrf_driver_vs_width1", batch, m, n, w, t_qr1, t_qr);
  emit_stage(out, "jacobi_driver_vs_width1", batch, m, n, w, t_svd1, t_svd);
}

}  // namespace

int main(int argc, char** argv) {
  // --qr-only / --svd-only run just that section; either pins the pool to
  // ONE thread (unless the caller overrides) BEFORE first pool use, so the
  // emitted speedup isolates the engine's algorithmic win from parallelism.
  bool qr_only = false, svd_only = false, interleave_only = false;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && !std::strcmp(argv[i], "--qr-only"))
      qr_only = true;
    else if (i > 0 && !std::strcmp(argv[i], "--svd-only"))
      svd_only = true;
    else if (i > 0 && !std::strcmp(argv[i], "--interleave-only"))
      interleave_only = true;
    else
      rest.push_back(argv[i]);
  }
  if (qr_only || svd_only || interleave_only)
    setenv("HODLRX_NUM_THREADS", "1", /*overwrite=*/0);
  bench::Args args = bench::Args::parse(static_cast<int>(rest.size()),
                                        rest.data());
  if (interleave_only) {
    // Across-batch SIMD kernels vs the per-problem scalar tails, one thread:
    // the PR acceptance numbers (BENCH_batch_simd.json) at the compression
    // sweep's canonical shape — 64 problems, 256x32 panels / 32x256
    // truncation problems (benched via their 256x32 tall transposes, which
    // is what the driver feeds the sweep).
    bench::JsonArrayWriter il_out("BENCH_batch_simd.json");
    bench::emit_blocking_records(il_out);
    std::printf("== across-batch SIMD stages vs per-problem tails "
                "(%d threads) ==\n", max_threads());
    bench_interleave_stages(64, 256, 32, args.repeats, il_out);
    bench_interleave_drivers(64, 256, 32, args.repeats, il_out);
    std::printf("wrote BENCH_batch_simd.json\n");
    return 0;
  }
  // Both flags together mean "run both engine sections, skip the rest".
  if (!svd_only || qr_only) {
    bench::JsonArrayWriter qr_out("BENCH_qr_batched.json");
    bench::emit_blocking_records(qr_out);
    std::printf("== batched QR engine vs per-block tail (%d threads) ==\n",
                max_threads());
    // The acceptance shape of the compression sweep: 64 sketches of 256x32.
    bench_qr(64, 256, 32, args.repeats, qr_out);
    bench_qr(256, 128, 16, args.repeats, qr_out);
    std::printf("wrote BENCH_qr_batched.json\n");
  }
  if (!qr_only || svd_only) {
    bench::JsonArrayWriter svd_out("BENCH_svd_batched.json");
    bench::emit_blocking_records(svd_out);
    std::printf("== batched SVD engine vs per-block tail (%d threads) ==\n",
                max_threads());
    // The truncation tail of the acceptance shape: 64 small problems of
    // 32x256 plus their 256x32 range bases.
    bench_svd(64, 32, 256, 256, args.repeats, svd_out);
    bench_svd(256, 16, 128, 128, args.repeats, svd_out);
    std::printf("wrote BENCH_svd_batched.json\n");
  }
  if (qr_only || svd_only) return 0;
  index_t small = 24, big = 512, lu_s = 64;
  if (args.max_n > 0) {
    big = std::min(big, args.max_n);
    lu_s = std::min(lu_s, args.max_n);
    small = std::min(small, args.max_n);
  }
  std::printf("== bench_micro_batched: batched engine on the persistent "
              "pool (%d threads) ==\n", max_threads());
  bench::JsonArrayWriter out("BENCH_micro_batched.json");
  bench::emit_blocking_records(out);
  // Many small problems: batching wins by avoiding per-call overhead.
  bench_gemm_small(256, small, args.repeats, out);
  bench_gemm_small(1024, small, args.repeats, out);
  // Few large problems: stream mode (intra-op threads) wins.
  bench_gemm_stream(2, big, args.repeats, out);
  bench_getrf(256, lu_s, args.repeats, out);
  bench_solves(256, lu_s, lu_s, args.repeats, out);
  out.close();
  std::printf("wrote BENCH_micro_batched.json\n");
  return 0;
}
