/// Microbenchmarks of the batched device engine — the substrate claims of
/// Sec. III-C: batching many small operations into one call, the strided
/// fast path, the stream-mode crossover for small batches of large problems,
/// and the batched factor/solve kernels on the persistent thread pool.
///
/// Self-contained driver (no google-benchmark dependency) that emits
/// BENCH_micro_batched.json like the other benches, so batched throughput is
/// tracked across PRs. The batched-QR section additionally emits
/// BENCH_qr_batched.json: the panel-synchronized batched QR engine against
/// the seed's per-block unblocked tail (the PR 2 rsvd orthonormalization
/// path) at the compression sweep's canonical shape.
///
/// Flags: --repeats N (default 3), --max-n N (cap problem sizes),
/// --qr-only (run ONLY the QR section; pins the pool to one thread unless
/// HODLRX_NUM_THREADS is set, so the recorded speedup is the single-thread
/// algorithmic win, not parallelism).

#include <cstdlib>

#include "bench_util.hpp"

#include "batched/batched_blas.hpp"
#include "common/parallel.hpp"
#include "common/trsm_kernel.hpp"

using namespace hodlrx;

namespace {

struct GemmBatchFixture {
  std::vector<Matrix<double>> a, b, c;
  std::vector<ConstMatrixView<double>> av, bv;
  std::vector<MatrixView<double>> cv;

  GemmBatchFixture(index_t batch, index_t m, index_t n, index_t k) {
    for (index_t i = 0; i < batch; ++i) {
      a.push_back(random_matrix<double>(m, k, 100 + i));
      b.push_back(random_matrix<double>(k, n, 200 + i));
      c.push_back(Matrix<double>(m, n));
      av.push_back(a.back());
      bv.push_back(b.back());
      cv.push_back(c.back());
    }
  }
};

using bench::time_best;
using bench::time_best_with_setup;

void emit(bench::JsonArrayWriter& out, const char* name, index_t batch,
          index_t s, double seconds, double work_flops) {
  const double gf = work_flops / seconds / 1e9;
  const double items = static_cast<double>(batch) / seconds;
  std::printf("%-28s batch=%5lld s=%4lld  %10.2f GF/s  %12.0f problems/s\n",
              name, static_cast<long long>(batch), static_cast<long long>(s),
              gf, items);
  out.begin_record();
  out.field("case", name);
  out.field("batch", batch);
  out.field("s", s);
  out.field("gflops", gf);
  out.field("problems_per_sec", items);
  out.end_record();
}

void bench_gemm_small(index_t batch, index_t s, int repeats,
                      bench::JsonArrayWriter& out) {
  GemmBatchFixture f(batch, s, s, s);
  const double work = 2.0 * batch * s * s * s;
  emit(out, "gemm_loop_of_small", batch, s, time_best(repeats, [&] {
         for (index_t i = 0; i < batch; ++i)
           gemm<double>(Op::N, Op::N, 1.0, f.av[i], f.bv[i], 0.0, f.cv[i]);
       }),
       work);
  emit(out, "gemm_batched", batch, s, time_best(repeats, [&] {
         gemm_batched<double>(Op::N, Op::N, 1.0, f.av, f.bv, 0.0, f.cv);
       }),
       work);
  Matrix<double> a = random_matrix<double>(s, s * batch, 1);
  Matrix<double> b = random_matrix<double>(s, s * batch, 2);
  Matrix<double> c(s, s * batch);
  emit(out, "gemm_strided_batched", batch, s, time_best(repeats, [&] {
         gemm_strided_batched<double>(Op::N, Op::N, s, s, s, 1.0, a.data(), s,
                                      s * s, b.data(), s, s * s, 0.0,
                                      c.data(), s, s * s, batch);
       }),
       work);
}

void bench_gemm_stream(index_t batch, index_t s, int repeats,
                       bench::JsonArrayWriter& out) {
  GemmBatchFixture f(batch, s, s, s);
  const double work = 2.0 * batch * s * s * s;
  emit(out, "gemm_batched_large", batch, s, time_best(repeats, [&] {
         gemm_batched<double>(Op::N, Op::N, 1.0, f.av, f.bv, 0.0, f.cv,
                              BatchPolicy::kForceBatched);
       }),
       work);
  emit(out, "gemm_stream_large", batch, s, time_best(repeats, [&] {
         gemm_batched<double>(Op::N, Op::N, 1.0, f.av, f.bv, 0.0, f.cv,
                              BatchPolicy::kForceStream);
       }),
       work);
}

void bench_getrf(index_t batch, index_t s, int repeats,
                 bench::JsonArrayWriter& out) {
  std::vector<Matrix<double>> a0;
  for (index_t i = 0; i < batch; ++i) {
    a0.push_back(random_matrix<double>(s, s, 300 + i));
    for (index_t d = 0; d < s; ++d) a0.back()(d, d) += 4.0;
  }
  std::vector<std::vector<index_t>> piv(batch, std::vector<index_t>(s));
  std::vector<Matrix<double>> a(batch);
  std::vector<MatrixView<double>> av(batch);
  std::vector<index_t*> pv(batch);
  const double work = 2.0 / 3.0 * batch * s * s * s;
  // The matrix restore runs outside the timed section (getrf consumes its
  // input in place), matching the old PauseTiming/ResumeTiming protocol.
  emit(out, "getrf_batched", batch, s,
       time_best_with_setup(
           repeats,
           [&] {
             for (index_t i = 0; i < batch; ++i) {
               a[i] = to_matrix(a0[i].view());
               av[i] = a[i];
               pv[i] = piv[i].data();
             }
           },
           [&] { getrf_batched<double>(av, pv); }),
       work);
}

void bench_solves(index_t batch, index_t s, index_t nrhs, int repeats,
                  bench::JsonArrayWriter& out) {
  std::vector<Matrix<double>> lu;
  std::vector<std::vector<index_t>> piv(batch, std::vector<index_t>(s));
  for (index_t i = 0; i < batch; ++i) {
    lu.push_back(random_matrix<double>(s, s, 500 + i));
    for (index_t d = 0; d < s; ++d) lu.back()(d, d) += 4.0;
    getrf<double>(lu.back().view(), piv[i].data());
  }
  std::vector<Matrix<double>> b0;
  for (index_t i = 0; i < batch; ++i)
    b0.push_back(random_matrix<double>(s, nrhs, 600 + i));
  std::vector<Matrix<double>> b = b0;
  std::vector<ConstMatrixView<double>> luv(lu.begin(), lu.end());
  std::vector<const index_t*> pv;
  for (auto& p : piv) pv.push_back(p.data());
  std::vector<MatrixView<double>> bv(b.begin(), b.end());
  auto restore = [&] {
    for (index_t i = 0; i < batch; ++i) copy<double>(b0[i].view(), bv[i]);
  };
  emit(out, "getrs_batched", batch, s,
       time_best_with_setup(repeats, restore,
                            [&] { getrs_batched<double>(luv, pv, bv); }),
       2.0 * batch * s * s * nrhs);
  emit(out, "trsm_batched", batch, s,
       time_best_with_setup(
           repeats, restore,
           [&] { trsm_batched<double>(Uplo::Lower, Diag::Unit, luv, bv); }),
       static_cast<double>(batch) * s * s * nrhs);
}

/// The batched QR engine vs the seed's per-block tail, at the compression
/// sweep's canonical shape (`batch` sketches of m x n). Three contenders,
/// all producing the explicit thin Q of every block:
///   - qr_tail_reference_loop: per-block unblocked geqrf + per-reflector
///     thin Q (what the rsvd tail ran before the engine existed);
///   - qr_tail_blocked_loop: per-block blocked in-place drivers;
///   - qr_tail_batched: the panel-synchronized strided-batched engine.
void bench_qr(index_t batch, index_t m, index_t n, int repeats,
              bench::JsonArrayWriter& out) {
  Matrix<double> a0 = random_matrix<double>(m, n * batch, 42);
  Matrix<double> work(m, n * batch);
  std::vector<double> tau(static_cast<std::size_t>(n) * batch);
  auto restore = [&] { copy<double>(a0.view(), work.view()); };
  // Householder QR + explicit thin Q work per block (real flavor).
  const double nn = static_cast<double>(n), mm = static_cast<double>(m);
  const double work_flops =
      static_cast<double>(batch) * 4.0 * (mm * nn * nn - nn * nn * nn / 3.0);

  const double t_ref = time_best_with_setup(repeats, restore, [&] {
    for (index_t i = 0; i < batch; ++i) {
      QRFactors<double> qr =
          geqrf_reference<double>(work.view().block(0, i * n, m, n));
      Matrix<double> q = thin_q_reference<double>(qr);
      work(0, i * n) = q(0, 0);  // keep the result alive
    }
  });
  emit(out, "qr_tail_reference_loop", batch, n, t_ref, work_flops);

  const double t_blocked = time_best_with_setup(repeats, restore, [&] {
    for (index_t i = 0; i < batch; ++i) {
      MatrixView<double> bi = work.view().block(0, i * n, m, n);
      geqrf_inplace<double>(bi, tau.data() + i * n);
      thin_q_inplace<double>(work.view().block(0, i * n, m, std::min(m, n)),
                             tau.data() + i * n);
    }
  });
  emit(out, "qr_tail_blocked_loop", batch, n, t_blocked, work_flops);

  const double t_batched = time_best_with_setup(repeats, restore, [&] {
    geqrf_strided_batched<double>(work.data(), m, m * n, m, n, tau.data(), n,
                                  batch, BatchPolicy::kForceBatched);
    thin_q_strided_batched<double>(work.data(), m, m * n, m, n, tau.data(), n,
                                   batch, BatchPolicy::kForceBatched);
  });
  emit(out, "qr_tail_batched", batch, n, t_batched, work_flops);

  std::printf("%-28s batch=%5lld s=%4lld  %10.2fx vs reference "
              "(blocked loop %.2fx) on %d threads\n",
              "qr_tail_speedup", static_cast<long long>(batch),
              static_cast<long long>(n), t_ref / t_batched, t_ref / t_blocked,
              max_threads());
  out.begin_record();
  out.field("case", "qr_tail_speedup");
  out.field("batch", batch);
  out.field("m", m);
  out.field("n", n);
  out.field("threads", static_cast<index_t>(max_threads()));
  out.field("speedup_batched_vs_reference", t_ref / t_batched);
  out.field("speedup_blocked_vs_reference", t_ref / t_blocked);
  out.end_record();
}

}  // namespace

int main(int argc, char** argv) {
  // --qr-only runs just the QR section; it pins the pool to ONE thread
  // (unless the caller overrides) BEFORE first pool use, so the emitted
  // speedup isolates the engine's algorithmic win from parallelism.
  bool qr_only = false;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && !std::strcmp(argv[i], "--qr-only"))
      qr_only = true;
    else
      rest.push_back(argv[i]);
  }
  if (qr_only) setenv("HODLRX_NUM_THREADS", "1", /*overwrite=*/0);
  bench::Args args = bench::Args::parse(static_cast<int>(rest.size()),
                                        rest.data());
  {
    bench::JsonArrayWriter qr_out("BENCH_qr_batched.json");
    std::printf("== batched QR engine vs per-block tail (%d threads) ==\n",
                max_threads());
    // The acceptance shape of the compression sweep: 64 sketches of 256x32.
    bench_qr(64, 256, 32, args.repeats, qr_out);
    bench_qr(256, 128, 16, args.repeats, qr_out);
  }
  std::printf("wrote BENCH_qr_batched.json\n");
  if (qr_only) return 0;
  index_t small = 24, big = 512, lu_s = 64;
  if (args.max_n > 0) {
    big = std::min(big, args.max_n);
    lu_s = std::min(lu_s, args.max_n);
    small = std::min(small, args.max_n);
  }
  std::printf("== bench_micro_batched: batched engine on the persistent "
              "pool (%d threads) ==\n", max_threads());
  bench::JsonArrayWriter out("BENCH_micro_batched.json");
  // Many small problems: batching wins by avoiding per-call overhead.
  bench_gemm_small(256, small, args.repeats, out);
  bench_gemm_small(1024, small, args.repeats, out);
  // Few large problems: stream mode (intra-op threads) wins.
  bench_gemm_stream(2, big, args.repeats, out);
  bench_getrf(256, lu_s, args.repeats, out);
  bench_solves(256, lu_s, lu_s, args.repeats, out);
  out.close();
  std::printf("wrote BENCH_micro_batched.json\n");
  return 0;
}
