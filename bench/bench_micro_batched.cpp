/// Microbenchmarks (google-benchmark) of the batched device engine — the
/// substrate claims of Sec. III-C: batching many small operations into one
/// call, the strided fast path, and the stream-mode crossover for small
/// batches of large problems.

#include <benchmark/benchmark.h>

#include "batched/batched_blas.hpp"
#include "common/random.hpp"

using namespace hodlrx;

namespace {

struct GemmBatchFixture {
  std::vector<Matrix<double>> a, b, c;
  std::vector<ConstMatrixView<double>> av, bv;
  std::vector<MatrixView<double>> cv;

  GemmBatchFixture(index_t batch, index_t m, index_t n, index_t k) {
    for (index_t i = 0; i < batch; ++i) {
      a.push_back(random_matrix<double>(m, k, 100 + i));
      b.push_back(random_matrix<double>(k, n, 200 + i));
      c.push_back(Matrix<double>(m, n));
      av.push_back(a.back());
      bv.push_back(b.back());
      cv.push_back(c.back());
    }
  }
};

void BM_GemmLoopOfSmall(benchmark::State& state) {
  const index_t batch = state.range(0), s = state.range(1);
  GemmBatchFixture f(batch, s, s, s);
  for (auto _ : state) {
    for (index_t i = 0; i < batch; ++i)
      gemm<double>(Op::N, Op::N, 1.0, f.av[i], f.bv[i], 0.0, f.cv[i]);
    benchmark::DoNotOptimize(f.c[0].data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_GemmBatched(benchmark::State& state) {
  const index_t batch = state.range(0), s = state.range(1);
  GemmBatchFixture f(batch, s, s, s);
  for (auto _ : state) {
    gemm_batched<double>(Op::N, Op::N, 1.0, f.av, f.bv, 0.0, f.cv);
    benchmark::DoNotOptimize(f.c[0].data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_GemmBatchedStream(benchmark::State& state) {
  const index_t batch = state.range(0), s = state.range(1);
  GemmBatchFixture f(batch, s, s, s);
  for (auto _ : state) {
    gemm_batched<double>(Op::N, Op::N, 1.0, f.av, f.bv, 0.0, f.cv,
                         BatchPolicy::kForceStream);
    benchmark::DoNotOptimize(f.c[0].data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_GemmStridedBatched(benchmark::State& state) {
  const index_t batch = state.range(0), s = state.range(1);
  Matrix<double> a = random_matrix<double>(s, s * batch, 1);
  Matrix<double> b = random_matrix<double>(s, s * batch, 2);
  Matrix<double> c(s, s * batch);
  for (auto _ : state) {
    gemm_strided_batched<double>(Op::N, Op::N, s, s, s, 1.0, a.data(), s,
                                 s * s, b.data(), s, s * s, 0.0, c.data(), s,
                                 s * s, batch);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_GetrfBatched(benchmark::State& state) {
  const index_t batch = state.range(0), s = state.range(1);
  std::vector<Matrix<double>> a0;
  for (index_t i = 0; i < batch; ++i) {
    a0.push_back(random_matrix<double>(s, s, 300 + i));
    for (index_t d = 0; d < s; ++d) a0.back()(d, d) += 4.0;
  }
  std::vector<std::vector<index_t>> piv(batch, std::vector<index_t>(s));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Matrix<double>> a = a0;
    std::vector<MatrixView<double>> av(a.begin(), a.end());
    std::vector<index_t*> pv;
    for (auto& pp : piv) pv.push_back(pp.data());
    state.ResumeTiming();
    getrf_batched<double>(av, pv);
    benchmark::DoNotOptimize(a[0].data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

}  // namespace

// Many small problems: batching wins by avoiding per-call overhead.
BENCHMARK(BM_GemmLoopOfSmall)->Args({256, 24})->Args({1024, 24});
BENCHMARK(BM_GemmBatched)->Args({256, 24})->Args({1024, 24});
BENCHMARK(BM_GemmStridedBatched)->Args({256, 24})->Args({1024, 24});
// Few large problems: stream mode (intra-op threads) wins.
BENCHMARK(BM_GemmBatched)->Args({2, 512});
BENCHMARK(BM_GemmBatchedStream)->Args({2, 512});
BENCHMARK(BM_GetrfBatched)->Args({256, 64});

BENCHMARK_MAIN();
