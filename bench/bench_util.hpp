#pragma once

#include "common/random.hpp"
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/recursive_solver.hpp"
#include "common/blocking.hpp"
#include "common/gemm_kernel.hpp"
#include "common/hwinfo.hpp"
#include "common/task_graph.hpp"
#include "common/timer.hpp"
#include "core/factorization.hpp"
#include "device/device.hpp"
#include "sparse/block_lu.hpp"

/// Shared helpers for the paper-table benchmark drivers. Timings follow the
/// paper's protocol: construction (compression) is NOT included in t_f; the
/// reported factorization and solution times are averaged over `repeats`
/// runs; `mem` is the factorization footprint in GB; `relres` is
/// ||b - A x|| / ||b|| against the HODLR operator.

namespace hodlrx::bench {

struct Args {
  bool full = false;       ///< paper-scale sweep instead of the default
  bool low_accuracy = false;
  index_t max_n = -1;
  int repeats = 3;

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--full")) a.full = true;
      else if (!std::strcmp(argv[i], "--low")) a.low_accuracy = true;
      else if (!std::strcmp(argv[i], "--max-n") && i + 1 < argc)
        a.max_n = std::atoll(argv[++i]);
      else if (!std::strcmp(argv[i], "--repeats") && i + 1 < argc)
        a.repeats = std::atoi(argv[++i]);
      else
        std::fprintf(stderr, "unknown flag %s\n", argv[i]);
    }
    return a;
  }
};

struct SolverStats {
  double tf = 0;       ///< factorization seconds (averaged)
  double ts = 0;       ///< single-RHS solution seconds (averaged)
  double mem_gb = 0;   ///< factorization bytes / 1e9
  double relres = 0;   ///< ||b - A x|| / ||b|| vs the HODLR operator
};

inline double gb(std::size_t bytes) { return static_cast<double>(bytes) / 1e9; }

/// Best-of-N wall time of `f()` — the shared timing methodology of every
/// micro-bench, so the BENCH_*.json series all measure the same thing.
template <typename F>
double time_best(int repeats, F&& f) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer t;
    f();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// As time_best, but runs `setup()` outside the timed section before each
/// repeat (for in-place kernels that consume their input, e.g. getrf).
template <typename Setup, typename F>
double time_best_with_setup(int repeats, Setup&& setup, F&& f) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    setup();
    WallTimer t;
    f();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// relres of x against the HODLR operator.
template <typename T>
double hodlr_relres(const HodlrMatrix<T>& h, ConstMatrixView<T> x,
                    ConstMatrixView<T> b) {
  Matrix<T> r(h.n(), x.cols);
  h.apply(x, r.view());
  axpy(T{-1}, b, r.view());
  return static_cast<double>(norm_fro<T>(r) / norm_fro<T>(b));
}

/// Benchmark the packed factorization (serial or batched engine).
template <typename T>
SolverStats bench_packed(const HodlrMatrix<T>& h, const PackedHodlr<T>& p,
                         ExecMode mode, ConstMatrixView<T> b, int repeats) {
  SolverStats out;
  FactorOptions opt;
  opt.mode = mode;
  Matrix<T> x;
  for (int rep = 0; rep < repeats; ++rep) {
    WallTimer t;
    HodlrFactorization<T> f = HodlrFactorization<T>::factor(p, opt);
    out.tf += t.seconds();
    x = to_matrix(b);
    t.reset();
    f.solve_inplace(x);
    out.ts += t.seconds();
    if (rep == repeats - 1) {
      out.mem_gb = gb(f.bytes());
      out.relres = hodlr_relres(h, ConstMatrixView<T>(x), b);
    }
  }
  out.tf /= repeats;
  out.ts /= repeats;
  return out;
}

/// Benchmark the HODLRlib-style recursive solver.
template <typename T>
SolverStats bench_recursive(const HodlrMatrix<T>& h, ConstMatrixView<T> b,
                            int repeats, bool parallel) {
  SolverStats out;
  typename RecursiveSolver<T>::Options opt;
  opt.parallel = parallel;
  Matrix<T> x;
  for (int rep = 0; rep < repeats; ++rep) {
    WallTimer t;
    RecursiveSolver<T> s = RecursiveSolver<T>::factor(h, opt);
    out.tf += t.seconds();
    x = to_matrix(b);
    t.reset();
    s.solve_inplace(x);
    out.ts += t.seconds();
    if (rep == repeats - 1) {
      out.mem_gb = gb(s.bytes());
      out.relres = hodlr_relres(h, ConstMatrixView<T>(x), b);
    }
  }
  out.tf /= repeats;
  out.ts /= repeats;
  return out;
}

/// Benchmark the Ho-Greengard block-sparse solver.
template <typename T>
SolverStats bench_block_sparse(const HodlrMatrix<T>& h, ConstMatrixView<T> b,
                               int repeats, bool parallel) {
  SolverStats out;
  typename BlockSparseLU<T>::Options opt;
  opt.parallel = parallel;
  Matrix<T> x;
  for (int rep = 0; rep < repeats; ++rep) {
    ExtendedSystem<T> sys = build_extended_system(h);
    WallTimer t;
    BlockSparseLU<T> lu = BlockSparseLU<T>::factor(std::move(sys), opt);
    out.tf += t.seconds();
    t.reset();
    x = lu.solve(b);
    out.ts += t.seconds();
    if (rep == repeats - 1) {
      out.mem_gb = gb(lu.bytes());
      out.relres = hodlr_relres(h, ConstMatrixView<T>(x), b);
    }
  }
  out.tf /= repeats;
  out.ts /= repeats;
  return out;
}

inline void print_rank_ladder(const std::vector<index_t>& ladder) {
  std::printf("    ranks (level 1..leaf):");
  for (index_t r : ladder) std::printf(" %lld", static_cast<long long>(r));
  std::printf("\n");
}

/// Minimal machine-readable output: one JSON file per bench holding an array
/// of flat records, so the perf trajectory can be tracked across PRs
/// (`BENCH_gemm.json`, `BENCH_fig9_flops.json`, ...). Usage:
///   JsonArrayWriter out("BENCH_gemm.json");
///   out.begin_record();
///   out.field("case", "nn"); out.field("gflops", 12.3);
///   out.end_record();
class JsonArrayWriter {
 public:
  explicit JsonArrayWriter(const std::string& path)
      : f_(std::fopen(path.c_str(), "w")) {
    if (f_)
      std::fprintf(f_, "[");
    else
      std::fprintf(stderr, "warning: cannot open %s for writing; JSON output disabled\n",
                   path.c_str());
  }
  ~JsonArrayWriter() { close(); }
  JsonArrayWriter(const JsonArrayWriter&) = delete;
  JsonArrayWriter& operator=(const JsonArrayWriter&) = delete;

  bool ok() const { return f_ != nullptr; }

  void begin_record() {
    if (!f_) return;
    std::fprintf(f_, "%s\n  {", first_record_ ? "" : ",");
    first_record_ = false;
    first_field_ = true;
  }
  void field(const char* name, const char* value) {
    if (!f_) return;
    sep();
    std::fprintf(f_, "\"%s\": \"%s\"", name, value);
  }
  void field(const char* name, const std::string& value) {
    field(name, value.c_str());
  }
  void field(const char* name, double value) {
    if (!f_) return;
    sep();
    std::fprintf(f_, "\"%s\": %.6g", name, value);
  }
  void field(const char* name, index_t value) {
    if (!f_) return;
    sep();
    std::fprintf(f_, "\"%s\": %lld", name, static_cast<long long>(value));
  }
  void end_record() {
    if (f_) std::fprintf(f_, "}");
  }
  void close() {
    if (f_) {
      std::fprintf(f_, "\n]\n");
      std::fclose(f_);
      f_ = nullptr;
    }
  }

 private:
  void sep() {
    if (!f_) return;
    if (!first_field_) std::fprintf(f_, ", ");
    first_field_ = false;
  }
  std::FILE* f_ = nullptr;
  bool first_record_ = true;
  bool first_field_ = true;
};

namespace detail {
template <typename T>
void emit_blocking_record(JsonArrayWriter& out) {
  const ResolvedBlocking& rb = resolved_blocking<T>();
  out.begin_record();
  out.field("case", "blocking");
  out.field("type", scalar_name<T>());
  out.field("tile", gemm_selected_tile_name<T>());
  out.field("mr", rb.mr);
  out.field("nr", rb.nr);
  out.field("mc", rb.mc);
  out.field("kc", rb.kc);
  out.field("nc", rb.nc);
  out.field("trsm_nb", rb.trsm_nb);
  out.field("qr_nb", rb.qr_nb);
  out.field("batch_simd_width", rb.batch_simd_width);
  out.field("tile_src", blocking_source_name(rb.tile_src));
  out.field("mc_src", blocking_source_name(rb.mc_src));
  out.field("kc_src", blocking_source_name(rb.kc_src));
  out.field("nc_src", blocking_source_name(rb.nc_src));
  out.field("trsm_src", blocking_source_name(rb.trsm_src));
  out.field("qr_src", blocking_source_name(rb.qr_src));
  out.field("batch_src", blocking_source_name(rb.batch_src));
  // The register-tile tie-breaker's inputs, as the resolver measured them
  // (0 when the tile came from an override or the static rung) — so the
  // JSON records WHY a tile was picked on this host.
  out.field("tile_bench_wide_s", rb.tile_bench_wide_s);
  out.field("tile_bench_compact_s", rb.tile_bench_compact_s);
  out.end_record();
}
}  // namespace detail

/// Prepend the RESOLVED blocking configuration (post-probe, post-override —
/// not the compile-time constants) plus the probed topology to a bench JSON,
/// so every BENCH_*.json records exactly what blocking the run used. Call
/// right after constructing the writer.
inline void emit_blocking_records(JsonArrayWriter& out) {
  const HwInfo& hw = hwinfo();
  out.begin_record();
  out.field("case", "hwinfo");
  out.field("l1d_bytes", static_cast<index_t>(hw.l1d_bytes));
  out.field("l2_bytes", static_cast<index_t>(hw.l2_bytes));
  out.field("l3_bytes", static_cast<index_t>(hw.l3_bytes));
  out.field("line_bytes", static_cast<index_t>(hw.line_bytes));
  out.field("simd_bytes", static_cast<index_t>(hw.simd_bytes));
  out.field("cpus", static_cast<index_t>(hw.logical_cpus));
  out.field("family", hw.family);
  out.field("probe_source", hw.source);
  out.field("autotune", autotune_enabled() ? "on" : "off");
  // The resolved scheduler mode (HODLRX_SCHED): which path the ported sweep
  // sites — compression, batched factorization, stream-mode LU — took.
  out.field("sched", sched_mode_name(sched_mode()));
  out.end_record();
  detail::emit_blocking_record<float>(out);
  detail::emit_blocking_record<double>(out);
  detail::emit_blocking_record<std::complex<float>>(out);
  detail::emit_blocking_record<std::complex<double>>(out);
}

}  // namespace hodlrx::bench
