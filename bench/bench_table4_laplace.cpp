/// Reproduces paper Table IV and Fig. 7 (Sec. IV-B): the completed
/// double-layer BIE for the exterior Laplace problem (eq. 21) on the smooth
/// contour, 2nd-order (trapezoidal) discretization. Four solver columns:
///   serial HODLR (Alg. 1/2, one thread) | serial block-sparse |
///   parallel block-sparse | GPU HODLR (Alg. 3/4, batched).
/// (a) high accuracy: tol 1e-12, double precision;
/// (b) --low: tol 1e-5, single precision (the paper's Table IV b).
/// Default sweep N = 2^12 .. 2^15; --full extends to 2^18 (block-sparse
/// dominates the runtime there).

#include <cstdlib>

#include "bench_util.hpp"
#include "bie/laplace.hpp"
#include "common/parallel.hpp"
#include "device/backend.hpp"

using namespace hodlrx;

/// Levels-vs-graph scheduler comparison (docs/runtime-scheduler.md) on the
/// batched engine at one representative size: the same packed operator is
/// built, factored and solved under HODLRX_SCHED=levels and =graph (the mode
/// is reread per call, so an in-process setenv flips it). Records land in
/// BENCH_table4_laplace.json with the sched_stats counters, so the graph
/// scheduler's overlap win at >= 4 threads is tracked across PRs.
template <typename T>
void sched_compare(bench::JsonArrayWriter& out, const bench::Args& args,
                   index_t n, double tol) {
  const char* old = std::getenv("HODLRX_SCHED");
  const std::string saved = old != nullptr ? old : "";
  bie::BlobContour contour;
  bie::ContourDiscretization d = bie::discretize(contour, n);
  bie::LaplaceExteriorBIE<T> gen(d, {0.0, 0.0});
  ClusterTree tree = ClusterTree::uniform(n, 64);
  BuildOptions bopt;
  bopt.tol = tol;
  Matrix<T> b = random_matrix<T>(n, 1, 11);

  std::printf("\n== scheduler compare: Laplace BIE N=%lld, batched engine, "
              "%d threads ==\n",
              static_cast<long long>(n), max_threads());
  double tf_levels = 0;
  for (const char* mode : {"levels", "graph"}) {
    setenv("HODLRX_SCHED", mode, 1);
    sched_stats::reset();
    const double tb = bench::time_best(args.repeats, [&] {
      HodlrMatrix<T> hm = HodlrMatrix<T>::build(gen, tree, bopt);
    });
    HodlrMatrix<T> h = HodlrMatrix<T>::build(gen, tree, bopt);
    PackedHodlr<T> p = PackedHodlr<T>::pack(h);
    bench::SolverStats s = bench::bench_packed(
        h, p, ExecMode::kBatched, ConstMatrixView<T>(b), args.repeats);
    out.begin_record();
    out.field("case", "sched_compare");
    out.field("sched", mode);
    out.field("n", n);
    out.field("threads", static_cast<index_t>(max_threads()));
    out.field("tb", tb);
    out.field("tf", s.tf);
    out.field("ts", s.ts);
    out.field("relres", s.relres);
    out.field("graphs_run", static_cast<index_t>(sched_stats::graphs_run()));
    out.field("graph_nodes", static_cast<index_t>(sched_stats::nodes()));
    out.field("graph_edges", static_cast<index_t>(sched_stats::edges()));
    out.field("graph_steals", static_cast<index_t>(sched_stats::steals()));
    out.field("max_ready_depth",
              static_cast<index_t>(sched_stats::max_ready_depth()));
    out.end_record();
    std::printf("  %-6s  tb %9.3e  tf %9.3e  ts %9.3e  relres %9.2e"
                "  (graphs %llu, nodes %llu, steals %llu)\n",
                mode, tb, s.tf, s.ts, s.relres,
                static_cast<unsigned long long>(sched_stats::graphs_run()),
                static_cast<unsigned long long>(sched_stats::nodes()),
                static_cast<unsigned long long>(sched_stats::steals()));
    if (std::string(mode) == "levels")
      tf_levels = s.tf;
    else if (tf_levels > 0)
      std::printf("  graph/levels tf speedup: %.2fx\n", tf_levels / s.tf);
  }
  if (old != nullptr)
    setenv("HODLRX_SCHED", saved.c_str(), 1);
  else
    unsetenv("HODLRX_SCHED");
}

/// Sync-vs-async backend comparison (docs/device-backend.md) on the batched
/// engine at one representative size: the same operator is built, factored
/// and solved under HODLRX_BACKEND=host (inline launches) and =host-async
/// (stream-deferred launches; for the factorization also with the DAG
/// lowered onto streams via HODLRX_SCHED=graph). The backend_stats queue
/// counters land in the record — deferred/drained launches and the maximum
/// queue depth are the evidence that compression of one level really
/// overlapped the drain of the previous one.
template <typename T>
void backend_compare(bench::JsonArrayWriter& out, const bench::Args& args,
                     index_t n, double tol) {
  const char* old_backend = std::getenv("HODLRX_BACKEND");
  const std::string saved_backend = old_backend != nullptr ? old_backend : "";
  const char* old_sched = std::getenv("HODLRX_SCHED");
  const std::string saved_sched = old_sched != nullptr ? old_sched : "";
  bie::BlobContour contour;
  bie::ContourDiscretization d = bie::discretize(contour, n);
  bie::LaplaceExteriorBIE<T> gen(d, {0.0, 0.0});
  ClusterTree tree = ClusterTree::uniform(n, 64);
  BuildOptions bopt;
  bopt.tol = tol;
  // The batched rsvd compression sweep is the path that issues onto backend
  // streams (double-buffered across levels); ACA would build identically on
  // every backend and show an empty queue.
  bopt.compressor = Compressor::kRsvdBatched;
  bopt.max_rank = 64;
  Matrix<T> b = random_matrix<T>(n, 1, 11);

  std::printf("\n== backend compare: Laplace BIE N=%lld, batched engine, "
              "%d threads ==\n",
              static_cast<long long>(n), max_threads());
  struct Leg {
    const char* backend;
    const char* sched;
  };
  const Leg legs[] = {{"host", "levels"},
                      {"host-async", "levels"},
                      {"host-async", "graph"}};
  double tf_host = 0;
  for (const Leg& leg : legs) {
    setenv("HODLRX_BACKEND", leg.backend, 1);
    setenv("HODLRX_SCHED", leg.sched, 1);
    backend_stats::reset();
    const double tb = bench::time_best(args.repeats, [&] {
      HodlrMatrix<T> hm = HodlrMatrix<T>::build(gen, tree, bopt);
    });
    HodlrMatrix<T> h = HodlrMatrix<T>::build(gen, tree, bopt);
    PackedHodlr<T> p = PackedHodlr<T>::pack(h);
    bench::SolverStats s = bench::bench_packed(
        h, p, ExecMode::kBatched, ConstMatrixView<T>(b), args.repeats);
    out.begin_record();
    out.field("case", "backend_compare");
    out.field("backend", leg.backend);
    out.field("sched", leg.sched);
    out.field("n", n);
    out.field("threads", static_cast<index_t>(max_threads()));
    out.field("tb", tb);
    out.field("tf", s.tf);
    out.field("ts", s.ts);
    out.field("relres", s.relres);
    out.field("deferred_launches",
              static_cast<index_t>(backend_stats::deferred()));
    out.field("drained_launches",
              static_cast<index_t>(backend_stats::drained()));
    out.field("events_recorded",
              static_cast<index_t>(backend_stats::events_recorded()));
    out.field("drains", static_cast<index_t>(backend_stats::drains()));
    out.field("max_queue_depth",
              static_cast<index_t>(backend_stats::max_queue_depth()));
    out.end_record();
    std::printf("  %-10s %-6s  tb %9.3e  tf %9.3e  ts %9.3e  relres %9.2e"
                "  (deferred %llu, drains %llu, max depth %llu)\n",
                leg.backend, leg.sched, tb, s.tf, s.ts, s.relres,
                static_cast<unsigned long long>(backend_stats::deferred()),
                static_cast<unsigned long long>(backend_stats::drains()),
                static_cast<unsigned long long>(
                    backend_stats::max_queue_depth()));
    if (std::string(leg.backend) == "host")
      tf_host = s.tf;
    else if (tf_host > 0)
      std::printf("  async/sync tf speedup (%s): %.2fx\n", leg.sched,
                  tf_host / s.tf);
  }
  if (old_backend != nullptr)
    setenv("HODLRX_BACKEND", saved_backend.c_str(), 1);
  else
    unsetenv("HODLRX_BACKEND");
  if (old_sched != nullptr)
    setenv("HODLRX_SCHED", saved_sched.c_str(), 1);
  else
    unsetenv("HODLRX_SCHED");
}

template <typename T>
void run(const bench::Args& args, double tol) {
  const index_t n_lo = 1 << 12;
  index_t n_hi = args.full ? (1 << 18) : (1 << 15);
  if (args.max_n > 0) n_hi = args.max_n;

  std::printf("%10s  %20s  %20s  %20s  %20s  %9s\n", "N",
              "SerialHODLR tf    ts", "SerBlkSprs tf     ts",
              "ParBlkSprs tf     ts", "GPU HODLR tf      ts", "relres");
  for (index_t n = n_lo; n <= n_hi; n *= 2) {
    bie::BlobContour contour;
    bie::ContourDiscretization d = bie::discretize(contour, n);
    bie::LaplaceExteriorBIE<T> gen(d, {0.0, 0.0});
    ClusterTree tree = ClusterTree::uniform(n, 64);
    BuildOptions bopt;
    bopt.tol = tol;
    HodlrMatrix<T> h = HodlrMatrix<T>::build(gen, tree, bopt);
    PackedHodlr<T> p = PackedHodlr<T>::pack(h);
    Matrix<T> b = random_matrix<T>(n, 1, 11);

    bench::SolverStats sh = bench::bench_packed(h, p, ExecMode::kSerial,
                                                ConstMatrixView<T>(b),
                                                args.repeats);
    bench::SolverStats bs = bench::bench_block_sparse(
        h, ConstMatrixView<T>(b), args.repeats, /*parallel=*/false);
    bench::SolverStats bp = bench::bench_block_sparse(
        h, ConstMatrixView<T>(b), args.repeats, /*parallel=*/true);
    bench::SolverStats gpu = bench::bench_packed(
        h, p, ExecMode::kBatched, ConstMatrixView<T>(b), args.repeats);

    std::printf(
        "%10lld  %9.3e %9.3e  %9.3e %9.3e  %9.3e %9.3e  %9.3e %9.3e  %9.2e\n",
        static_cast<long long>(n), sh.tf, sh.ts, bs.tf, bs.ts, bp.tf, bp.ts,
        gpu.tf, gpu.ts, gpu.relres);
    std::printf("      mem[GB]: serialH %.4f  serBS %.4f  parBS %.4f  "
                "gpuH %.4f\n",
                sh.mem_gb, bs.mem_gb, bp.mem_gb, gpu.mem_gb);
  }
}

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv);
  bench::JsonArrayWriter out("BENCH_table4_laplace.json");
  bench::emit_blocking_records(out);
  if (!args.low_accuracy) {
    std::printf(
        "== Table IV(a) / Fig. 7(a,b): Laplace BIE, tol 1e-12, double ==\n");
    run<double>(args, 1e-12);
    std::printf("\n");
  }
  std::printf(
      "== Table IV(b) / Fig. 7(c,d): Laplace BIE, tol 1e-5, SINGLE "
      "precision ==\n");
  run<float>(args, 1e-5);
  std::printf(
      "\nShape checks vs the paper: GPU HODLR fastest on both stages; the\n"
      "serial block-sparse solver beats the serial HODLR solver in tf; all\n"
      "columns scale near-linearly; --low runs ~2x faster in float.\n");
  // Scheduler comparison at one representative size (tol 1e-12, double —
  // the Table IV(a) setting). --max-n caps it like the table sweep.
  index_t sched_n = 1 << 13;
  if (args.max_n > 0 && args.max_n < sched_n) sched_n = args.max_n;
  sched_compare<double>(out, args, sched_n, 1e-12);
  // Sync-vs-async device backend at the same size: tf parity plus the
  // stream queue-depth evidence (docs/device-backend.md).
  backend_compare<double>(out, args, sched_n, 1e-12);
  return 0;
}
