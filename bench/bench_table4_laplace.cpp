/// Reproduces paper Table IV and Fig. 7 (Sec. IV-B): the completed
/// double-layer BIE for the exterior Laplace problem (eq. 21) on the smooth
/// contour, 2nd-order (trapezoidal) discretization. Four solver columns:
///   serial HODLR (Alg. 1/2, one thread) | serial block-sparse |
///   parallel block-sparse | GPU HODLR (Alg. 3/4, batched).
/// (a) high accuracy: tol 1e-12, double precision;
/// (b) --low: tol 1e-5, single precision (the paper's Table IV b).
/// Default sweep N = 2^12 .. 2^15; --full extends to 2^18 (block-sparse
/// dominates the runtime there).

#include "bench_util.hpp"
#include "bie/laplace.hpp"

using namespace hodlrx;

template <typename T>
void run(const bench::Args& args, double tol) {
  const index_t n_lo = 1 << 12;
  index_t n_hi = args.full ? (1 << 18) : (1 << 15);
  if (args.max_n > 0) n_hi = args.max_n;

  std::printf("%10s  %20s  %20s  %20s  %20s  %9s\n", "N",
              "SerialHODLR tf    ts", "SerBlkSprs tf     ts",
              "ParBlkSprs tf     ts", "GPU HODLR tf      ts", "relres");
  for (index_t n = n_lo; n <= n_hi; n *= 2) {
    bie::BlobContour contour;
    bie::ContourDiscretization d = bie::discretize(contour, n);
    bie::LaplaceExteriorBIE<T> gen(d, {0.0, 0.0});
    ClusterTree tree = ClusterTree::uniform(n, 64);
    BuildOptions bopt;
    bopt.tol = tol;
    HodlrMatrix<T> h = HodlrMatrix<T>::build(gen, tree, bopt);
    PackedHodlr<T> p = PackedHodlr<T>::pack(h);
    Matrix<T> b = random_matrix<T>(n, 1, 11);

    bench::SolverStats sh = bench::bench_packed(h, p, ExecMode::kSerial,
                                                ConstMatrixView<T>(b),
                                                args.repeats);
    bench::SolverStats bs = bench::bench_block_sparse(
        h, ConstMatrixView<T>(b), args.repeats, /*parallel=*/false);
    bench::SolverStats bp = bench::bench_block_sparse(
        h, ConstMatrixView<T>(b), args.repeats, /*parallel=*/true);
    bench::SolverStats gpu = bench::bench_packed(
        h, p, ExecMode::kBatched, ConstMatrixView<T>(b), args.repeats);

    std::printf(
        "%10lld  %9.3e %9.3e  %9.3e %9.3e  %9.3e %9.3e  %9.3e %9.3e  %9.2e\n",
        static_cast<long long>(n), sh.tf, sh.ts, bs.tf, bs.ts, bp.tf, bp.ts,
        gpu.tf, gpu.ts, gpu.relres);
    std::printf("      mem[GB]: serialH %.4f  serBS %.4f  parBS %.4f  "
                "gpuH %.4f\n",
                sh.mem_gb, bs.mem_gb, bp.mem_gb, gpu.mem_gb);
  }
}

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv);
  if (!args.low_accuracy) {
    std::printf(
        "== Table IV(a) / Fig. 7(a,b): Laplace BIE, tol 1e-12, double ==\n");
    run<double>(args, 1e-12);
    std::printf("\n");
  }
  std::printf(
      "== Table IV(b) / Fig. 7(c,d): Laplace BIE, tol 1e-5, SINGLE "
      "precision ==\n");
  run<float>(args, 1e-5);
  std::printf(
      "\nShape checks vs the paper: GPU HODLR fastest on both stages; the\n"
      "serial block-sparse solver beats the serial HODLR solver in tf; all\n"
      "columns scale near-linearly; --low runs ~2x faster in float.\n");
  return 0;
}
