/// Reproduces paper Fig. 9 (Sec. IV-C): floating-point throughput (GFlop/s)
/// of the factorization and solution stages for the Helmholtz problem, for
/// the serial HODLR / GPU HODLR / serial block-sparse / parallel
/// block-sparse solvers. Flops are counted by the kernels themselves
/// (complex ops scaled by 4, as is conventional).

#include "bench_util.hpp"
#include "bie/helmholtz.hpp"
#include "common/flops.hpp"

using namespace hodlrx;
using C = std::complex<double>;

namespace {

struct FlopStats {
  double factor_gflops = 0, solve_gflops = 0;
};

template <typename Factor, typename Solve>
FlopStats measure(Factor&& factor, Solve&& solve) {
  FlopStats out;
  FlopCounter::instance().reset();
  WallTimer t;
  auto fct = factor();
  const double tf = t.seconds();
  const double fflops = static_cast<double>(FlopCounter::instance().total());
  FlopCounter::instance().reset();
  t.reset();
  solve(fct);
  const double ts = t.seconds();
  const double sflops = static_cast<double>(FlopCounter::instance().total());
  out.factor_gflops = fflops / tf / 1e9;
  out.solve_gflops = sflops / ts / 1e9;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv);
  const double kappa = 100.0, eta = 100.0, tol = 1e-8;
  index_t n_hi = args.full ? (1 << 15) : (1 << 14);
  if (args.max_n > 0) n_hi = args.max_n;

  std::printf("== Fig. 9: GFlop/s, Helmholtz BIE (kappa=eta=100) ==\n");
  std::printf("%9s  %23s  %23s  %23s  %23s\n", "N", "SerialHODLR fact/solve",
              "GPU HODLR  fact/solve", "SerBlkSprs fact/solve",
              "ParBlkSprs fact/solve");
  bench::JsonArrayWriter json("BENCH_fig9_flops.json");
  auto emit = [&json](index_t n, const char* solver, const FlopStats& s) {
    json.begin_record();
    json.field("n", n);
    json.field("solver", solver);
    json.field("factor_gflops", s.factor_gflops);
    json.field("solve_gflops", s.solve_gflops);
    json.end_record();
  };

  for (index_t n = 1 << 12; n <= n_hi; n *= 2) {
    bie::BlobContour contour;
    bie::ContourDiscretization d = bie::discretize(contour, n);
    bie::HelmholtzCombinedBIE<C> gen(d, kappa, eta, 6);
    ClusterTree tree = ClusterTree::uniform(n, 64);
    BuildOptions bopt;
    bopt.tol = tol;
    HodlrMatrix<C> h = HodlrMatrix<C>::build(gen, tree, bopt);
    PackedHodlr<C> p = PackedHodlr<C>::pack(h);
    Matrix<C> b = random_matrix<C>(n, 1, 17);

    FactorOptions serial;
    serial.mode = ExecMode::kSerial;
    FlopStats s1 = measure(
        [&] { return HodlrFactorization<C>::factor(p, serial); },
        [&](HodlrFactorization<C>& f) {
          Matrix<C> x = to_matrix(b.view());
          f.solve_inplace(x);
        });
    FlopStats s2 = measure(
        [&] { return HodlrFactorization<C>::factor(p, {}); },
        [&](HodlrFactorization<C>& f) {
          Matrix<C> x = to_matrix(b.view());
          f.solve_inplace(x);
        });
    FlopStats s3 = measure(
        [&] { return BlockSparseLU<C>::factor(build_extended_system(h), {}); },
        [&](BlockSparseLU<C>& f) { f.solve(b); });
    typename BlockSparseLU<C>::Options par;
    par.parallel = true;
    FlopStats s4 = measure(
        [&] { return BlockSparseLU<C>::factor(build_extended_system(h), par); },
        [&](BlockSparseLU<C>& f) { f.solve(b); });

    std::printf(
        "%9lld  %11.2f %11.2f  %11.2f %11.2f  %11.2f %11.2f  %11.2f %11.2f\n",
        static_cast<long long>(n), s1.factor_gflops, s1.solve_gflops,
        s2.factor_gflops, s2.solve_gflops, s3.factor_gflops, s3.solve_gflops,
        s4.factor_gflops, s4.solve_gflops);
    emit(n, "serial_hodlr", s1);
    emit(n, "gpu_hodlr", s2);
    emit(n, "serial_block_sparse", s3);
    emit(n, "parallel_block_sparse", s4);
  }
  json.close();
  std::printf("wrote BENCH_fig9_flops.json\n");
  std::printf(
      "\nShape check vs the paper: the batched (GPU-style) solver sustains\n"
      "the highest rate and its utilization grows with N; the solve stage is\n"
      "memory-bound (much lower rate than the factorization) everywhere.\n");
  return 0;
}
