/// Reproduces the paper's appendix: per-level off-diagonal ranks of the
/// HODLR approximations for the five experiment configurations. The paper
/// lists ranks from level 1 (largest blocks) down to the leaf level; the
/// qualitative shapes to match are
///   - RPY, tol 1e-12: ranks decay from ~56 toward ~18;
///   - Laplace high accuracy: mild hump, ~24 -> ~13 -> ~18;
///   - Laplace low accuracy: ranks grow from 1 to ~11 toward the leaves;
///   - Helmholtz high accuracy: steep decay from ~225 to ~29;
///   - Helmholtz low accuracy: decay from ~166 to a ~17 plateau.
/// Absolute values depend on N and the compressor; shapes should hold.

#include "bench_util.hpp"
#include "bie/helmholtz.hpp"
#include "bie/laplace.hpp"
#include "kernels/rpy.hpp"

using namespace hodlrx;
using C = std::complex<double>;

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv);
  const index_t n_rpy = args.full ? (1 << 18) : (1 << 15);
  const index_t n_bie = args.full ? (1 << 16) : (1 << 13);

  std::printf("== Appendix: off-diagonal ranks per level (level 1 first) ==\n");

  {
    PointSet pts = uniform_random_points(n_rpy, 1, -1, 1, 23);
    GeometricTree g = build_kd_tree(pts, 64);
    RpyKernel1D<double> kernel(std::move(g.points), {});
    BuildOptions opt;
    opt.tol = 1e-12;
    HodlrMatrix<double> h = HodlrMatrix<double>::build(kernel, g.tree, opt);
    std::printf("  RPY, N=%lld, tol 1e-12 (paper: 56 ... 18):\n",
                static_cast<long long>(n_rpy));
    bench::print_rank_ladder(h.rank_ladder());
  }

  bie::BlobContour contour;
  for (double tol : {1e-12, 1e-5}) {
    bie::ContourDiscretization d = bie::discretize(contour, n_bie);
    bie::LaplaceExteriorBIE<double> gen(d, {0.0, 0.0});
    ClusterTree tree = ClusterTree::uniform(n_bie, 64);
    BuildOptions opt;
    opt.tol = tol;
    HodlrMatrix<double> h = HodlrMatrix<double>::build(gen, tree, opt);
    std::printf("  Laplace BIE, N=%lld, tol %.0e (paper hi: 24..18, lo: "
                "1..11):\n",
                static_cast<long long>(n_bie), tol);
    bench::print_rank_ladder(h.rank_ladder());
  }

  for (double tol : {1e-12, 1e-4}) {
    bie::ContourDiscretization d = bie::discretize(contour, n_bie);
    bie::HelmholtzCombinedBIE<C> gen(d, 100.0, 100.0, 6);
    ClusterTree tree = ClusterTree::uniform(n_bie, 64);
    BuildOptions opt;
    opt.tol = tol;
    HodlrMatrix<C> h = HodlrMatrix<C>::build(gen, tree, opt);
    std::printf("  Helmholtz BIE kappa=100, N=%lld, tol %.0e (paper hi: "
                "225..29, lo: 166..17):\n",
                static_cast<long long>(n_bie), tol);
    bench::print_rank_ladder(h.rank_ladder());
  }
  return 0;
}
