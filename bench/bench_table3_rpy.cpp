/// Reproduces paper Table III and Fig. 5 (Sec. IV-A): the RPY kernel matrix
/// over uniform random 1-D points in [-1, 1], compression tolerance 1e-12,
/// leaf blocks 64 x 64. Two solvers:
///   - "HODLRLIB":  the HODLRlib-style per-node recursive factorization,
///                  OpenMP-parallel across same-level nodes only;
///   - "GPU Solver": Algorithms 3/4 on the batched device engine.
/// Default sweep: N = 2^13 .. 2^17 (this is a CPU box); pass --full for the
/// paper's N = 2^17 .. 2^20 range (2^21 needs more RAM than this machine).

#include <cinttypes>

#include "bench_util.hpp"
#include "kernels/rpy.hpp"

using namespace hodlrx;

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv);
  const index_t n_lo = args.full ? (1 << 17) : (1 << 13);
  index_t n_hi = args.full ? (1 << 20) : (1 << 17);
  if (args.max_n > 0) n_hi = args.max_n;

  std::printf("== Table III / Fig. 5: RPY kernel, tol 1e-12, leaf 64 ==\n");
  std::printf("%10s  %22s  %22s  %8s  %9s  | speedup tf, ts\n", "N",
              "HODLRLIB  tf       ts", "GPU Solver tf      ts", "mem[GB]",
              "relres");

  for (index_t n = n_lo; n <= n_hi; n *= 2) {
    PointSet pts = uniform_random_points(n, 1, -1.0, 1.0, 20220811);
    GeometricTree g = build_kd_tree(pts, 64);
    RpyKernel1D<double> kernel(std::move(g.points), {});  // k=T=eta=1, a=rmin/2
    BuildOptions bopt;
    bopt.tol = 1e-12;
    HodlrMatrix<double> h = HodlrMatrix<double>::build(kernel, g.tree, bopt);
    PackedHodlr<double> p = PackedHodlr<double>::pack(h);
    Matrix<double> b = random_matrix<double>(n, 1, 7);

    bench::SolverStats lib =
        bench::bench_recursive(h, ConstMatrixView<double>(b), args.repeats,
                               /*parallel=*/true);
    bench::SolverStats gpu = bench::bench_packed(
        h, p, ExecMode::kBatched, ConstMatrixView<double>(b), args.repeats);

    std::printf(
        "%10lld  %9.3e  %9.3e   %9.3e  %9.3e  %8.3f  %9.2e  | %5.1fx %5.1fx\n",
        static_cast<long long>(n), lib.tf, lib.ts, gpu.tf, gpu.ts, gpu.mem_gb,
        gpu.relres, lib.tf / gpu.tf, lib.ts / gpu.ts);
  }
  std::printf(
      "\nFig. 5 series: the two tf columns vs N (expect ~N log^2 N), the two\n"
      "ts columns vs N (expect ~N); speedups grow with N as in the paper.\n");
  return 0;
}
