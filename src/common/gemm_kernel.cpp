#include "common/gemm_kernel.hpp"

#include <atomic>
#include <complex>
#include <mutex>

#include "common/blocking.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/workspace.hpp"

namespace hodlrx {

namespace gemm_stats {

namespace {
std::atomic<std::uint64_t> g_a_packs{0}, g_b_packs{0}, g_shared_packs{0},
    g_pool_packs{0};
}  // namespace

std::uint64_t a_packs() { return g_a_packs.load(std::memory_order_relaxed); }
std::uint64_t b_packs() { return g_b_packs.load(std::memory_order_relaxed); }
std::uint64_t shared_packs() {
  return g_shared_packs.load(std::memory_order_relaxed);
}
std::uint64_t pool_packs() {
  return g_pool_packs.load(std::memory_order_relaxed);
}
void reset() {
  g_a_packs.store(0, std::memory_order_relaxed);
  g_b_packs.store(0, std::memory_order_relaxed);
  g_shared_packs.store(0, std::memory_order_relaxed);
  g_pool_packs.store(0, std::memory_order_relaxed);
}

}  // namespace gemm_stats

bool use_packed_gemm(Op opa, Op opb, index_t m, index_t n, index_t k) {
  (void)opa;
  if (m <= 0 || n <= 0 || k <= 0) return false;
  const index_t work = m * n * k;
  // N/N and {T,C}/N have tuned naive kernels in blas.cpp that win while the
  // packing overhead is not amortized; every other combination previously
  // fell into the element-accessor generic loop, so the packed engine takes
  // over almost immediately.
  const bool has_fast_fallback = (opb == Op::N);
  return work >= (has_fast_fallback ? index_t{16384} : index_t{4096});
}

namespace {

inline index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

/// `v` rounded up to whole register-tile panels. The packers zero-pad the
/// last MR-row (NR-column) panel to full width, so every pack buffer must
/// be sized to the PADDED extent: resolved MC/NC need not be tile multiples
/// once an environment override is in play.
inline index_t padded(index_t v, index_t tile) {
  return ceil_div(v, tile) * tile;
}

/// Pack the cache block op(A)(i0:i0+mc, p0:p0+kc) into MR-row panels:
/// dst[(ip*kc + l)*MR + i] = op(A)(i0 + ip*MR + i, p0 + l), zero-padded to a
/// full MR in the last panel. Transposition/conjugation is absorbed here, so
/// the micro-kernel always streams dst with unit stride. MR is a template
/// parameter: one instantiation per register-tile variant, selected through
/// the GemmKernels dispatch table below.
template <typename T, index_t MR>
void pack_a_block(Op opa, ConstMatrixView<T> a, index_t i0, index_t p0,
                  index_t mc, index_t kc, T* __restrict__ dst) {
  const index_t panels = ceil_div(mc, MR);
  for (index_t ip = 0; ip < panels; ++ip) {
    const index_t ib = i0 + ip * MR;
    const index_t mr = std::min(MR, i0 + mc - ib);
    T* __restrict__ d = dst + ip * kc * MR;
    if (opa == Op::N) {
      for (index_t l = 0; l < kc; ++l) {
        const T* __restrict__ src = a.data + ib + (p0 + l) * a.ld;
        for (index_t i = 0; i < mr; ++i) d[l * MR + i] = src[i];
        for (index_t i = mr; i < MR; ++i) d[l * MR + i] = T{};
      }
    } else {
      // op(A)(i, l) = (conj) a(l, i): the l run is contiguous down column
      // ib + i of a; writes stride by MR.
      const bool conjugate = (opa == Op::C) && is_complex_v<T>;
      for (index_t i = 0; i < mr; ++i) {
        const T* __restrict__ src = a.data + p0 + (ib + i) * a.ld;
        if (conjugate) {
          for (index_t l = 0; l < kc; ++l) d[l * MR + i] = conj_s(src[l]);
        } else {
          for (index_t l = 0; l < kc; ++l) d[l * MR + i] = src[l];
        }
      }
      for (index_t i = mr; i < MR; ++i)
        for (index_t l = 0; l < kc; ++l) d[l * MR + i] = T{};
    }
  }
}

/// Pack the cache block op(B)(p0:p0+kc, j0:j0+nc) into NR-column panels:
/// dst[(jp*kc + l)*NR + j] = op(B)(p0 + l, j0 + jp*NR + j), zero-padded to a
/// full NR in the last panel.
template <typename T, index_t NR>
void pack_b_block(Op opb, ConstMatrixView<T> b, index_t p0, index_t j0,
                  index_t kc, index_t nc, T* __restrict__ dst) {
  const index_t panels = ceil_div(nc, NR);
  for (index_t jp = 0; jp < panels; ++jp) {
    const index_t jb = j0 + jp * NR;
    const index_t nr = std::min(NR, j0 + nc - jb);
    T* __restrict__ d = dst + jp * kc * NR;
    if (opb == Op::N) {
      for (index_t j = 0; j < nr; ++j) {
        const T* __restrict__ src = b.data + p0 + (jb + j) * b.ld;
        for (index_t l = 0; l < kc; ++l) d[l * NR + j] = src[l];
      }
      for (index_t j = nr; j < NR; ++j)
        for (index_t l = 0; l < kc; ++l) d[l * NR + j] = T{};
    } else {
      // op(B)(l, j) = (conj) b(j, l): the j run is contiguous down column
      // p0 + l of b; reads coalesce, writes are unit stride.
      const bool conjugate = (opb == Op::C) && is_complex_v<T>;
      for (index_t l = 0; l < kc; ++l) {
        const T* __restrict__ src = b.data + jb + (p0 + l) * b.ld;
        if (conjugate) {
          for (index_t j = 0; j < nr; ++j) d[l * NR + j] = conj_s(src[j]);
        } else {
          for (index_t j = 0; j < nr; ++j) d[l * NR + j] = src[j];
        }
        for (index_t j = nr; j < NR; ++j) d[l * NR + j] = T{};
      }
    }
  }
}

/// MR x NR register tile: acc += Ap_panel * Bp_panel over kc. Both panels
/// are unit-stride; MR and NR are compile-time so the compiler fully unrolls
/// and keeps acc in registers (12 vector accumulators for the wide double
/// tile on AVX2).
template <typename T, index_t MR, index_t NR>
inline void micro_kernel(index_t kc, const T* __restrict__ ap,
                         const T* __restrict__ bp, T* __restrict__ acc) {
  for (index_t l = 0; l < kc; ++l) {
    const T* __restrict__ al = ap + l * MR;
    const T* __restrict__ bl = bp + l * NR;
    for (int j = 0; j < NR; ++j) {
      const T blj = bl[j];
#pragma omp simd
      for (int i = 0; i < MR; ++i) acc[j * MR + i] += al[i] * blj;
    }
  }
}

/// One (mc x nc) block of C against packed panels Ap (mc x kc) and Bp
/// (kc x nc). `beta` here is the effective beta for this k-slice (the
/// caller passes the user beta for the first slice, 1 afterwards).
template <typename T, index_t MR, index_t NR>
void macro_kernel(index_t mc, index_t nc, index_t kc, T alpha,
                  const T* __restrict__ ap_all, const T* __restrict__ bp_all,
                  T beta, MatrixView<T> cblk) {
  for (index_t jr = 0; jr < nc; jr += NR) {
    const index_t nr = std::min(NR, nc - jr);
    const T* bp = bp_all + (jr / NR) * kc * NR;
    for (index_t ir = 0; ir < mc; ir += MR) {
      const index_t mr = std::min(MR, mc - ir);
      const T* ap = ap_all + (ir / MR) * kc * MR;
      T acc[MR * NR] = {};
      micro_kernel<T, MR, NR>(kc, ap, bp, acc);
      for (index_t j = 0; j < nr; ++j) {
        T* __restrict__ cj = cblk.data + ir + (jr + j) * cblk.ld;
        const T* __restrict__ accj = acc + j * MR;
        if (beta == T{}) {
          for (index_t i = 0; i < mr; ++i) cj[i] = alpha * accj[i];
        } else if (beta == T{1}) {
          for (index_t i = 0; i < mr; ++i) cj[i] += alpha * accj[i];
        } else {
          for (index_t i = 0; i < mr; ++i)
            cj[i] = alpha * accj[i] + beta * cj[i];
        }
      }
    }
  }
}

/// The per-variant entry points the engine drivers call through. One table
/// row per compiled register-tile shape; the row is picked at first use to
/// match resolved_blocking<T>().mr/nr (function-pointer dispatch, so adding
/// a third shape is one more make_kernels line).
template <typename T>
struct GemmKernels {
  index_t mr, nr;
  const char* name;
  void (*pack_a)(Op, ConstMatrixView<T>, index_t, index_t, index_t, index_t,
                 T*);
  void (*pack_b)(Op, ConstMatrixView<T>, index_t, index_t, index_t, index_t,
                 T*);
  void (*macro)(index_t, index_t, index_t, T, const T*, const T*, T,
                MatrixView<T>);
};

template <typename T, index_t MR, index_t NR>
constexpr GemmKernels<T> make_kernels(const char* name) {
  return {MR,
          NR,
          name,
          &pack_a_block<T, MR>,
          &pack_b_block<T, NR>,
          &macro_kernel<T, MR, NR>};
}

/// The selected variant for T. The blocking resolver owns the CHOICE (its
/// mr/nr come from the tile-selection rule + HODLRX_GEMM_TILE); this lookup
/// merely binds it to compiled code. Falls back to the wide row if the
/// resolver ever emitted a shape that was not compiled — unreachable today,
/// but cheap insurance against a future resolver bug.
template <typename T>
const GemmKernels<T>& gemm_kernels() {
  static const GemmKernels<T> table[] = {
      make_kernels<T, GemmTiles<T>::kWide.mr, GemmTiles<T>::kWide.nr>("wide"),
      make_kernels<T, GemmTiles<T>::kCompact.mr, GemmTiles<T>::kCompact.nr>(
          "compact"),
  };
  const ResolvedBlocking& rb = resolved_blocking<T>();
  for (const GemmKernels<T>& k : table)
    if (k.mr == rb.mr && k.nr == rb.nr) return k;
  return table[0];
}

/// beta-only epilogue for degenerate calls (k == 0 or alpha == 0).
template <typename T>
void scale_c(T beta, MatrixView<T> c) {
  for (index_t j = 0; j < c.cols; ++j) {
    T* __restrict__ cj = c.data + j * c.ld;
    if (beta == T{}) {
      for (index_t i = 0; i < c.rows; ++i) cj[i] = T{};
    } else if (beta != T{1}) {
      for (index_t i = 0; i < c.rows; ++i) cj[i] *= beta;
    }
  }
}

/// One timed synthetic macro-tile multiply for the MR x NR variant: pack a
/// constant-filled A/B pair once, then best-of-5 macro-kernel runs. The work
/// (mc x nc x kc) is identical for every variant, so the times compare
/// directly. Local buffers, not the arena: this runs once per type per
/// process, and must not disturb any live workspace.
template <typename T, index_t MR, index_t NR>
double time_tile_variant() {
  // 96 is a common multiple of every compiled MR (16/8/4/2) and 24 of every
  // NR (6/8/4), so neither variant pays padding the other does not.
  constexpr index_t mc = 96, nc = 24, kc = 128;
  std::vector<T, AlignedAllocator<T>> ap(static_cast<std::size_t>(mc) * kc);
  std::vector<T, AlignedAllocator<T>> bp(static_cast<std::size_t>(kc) * nc);
  Matrix<T> c(mc, nc);
  Matrix<T> a(mc, kc), b(kc, nc);
  for (index_t i = 0; i < mc * kc; ++i)
    a.data()[i] = T{static_cast<real_t<T>>((i % 13) - 6) / real_t<T>{8}};
  for (index_t i = 0; i < kc * nc; ++i)
    b.data()[i] = T{static_cast<real_t<T>>((i % 11) - 5) / real_t<T>{8}};
  pack_a_block<T, MR>(Op::N, ConstMatrixView<T>(a), 0, 0, mc, kc, ap.data());
  pack_b_block<T, NR>(Op::N, ConstMatrixView<T>(b), 0, 0, kc, nc, bp.data());
  double best = 1e300;
  for (int r = 0; r < 5; ++r) {
    WallTimer t;
    macro_kernel<T, MR, NR>(mc, nc, kc, T{1}, ap.data(), bp.data(),
                            T{r == 0 ? 0 : 1}, c.view());
    best = std::min(best, t.seconds());
  }
  return best;
}

template <typename T>
TileBench run_tile_microbench() {
  TileBench tb;
  // Warm both code paths once (instruction fetch, page faults) before the
  // timed runs so the first variant measured is not penalized.
  time_tile_variant<T, GemmTiles<T>::kWide.mr, GemmTiles<T>::kWide.nr>();
  time_tile_variant<T, GemmTiles<T>::kCompact.mr, GemmTiles<T>::kCompact.nr>();
  tb.wide_s =
      time_tile_variant<T, GemmTiles<T>::kWide.mr, GemmTiles<T>::kWide.nr>();
  tb.compact_s = time_tile_variant<T, GemmTiles<T>::kCompact.mr,
                                   GemmTiles<T>::kCompact.nr>();
  return tb;
}

}  // namespace

template <typename T>
TileBench tile_microbench() {
  // Measured once per process: repeated resolutions (refresh_for_testing)
  // must keep picking the same winner, and the ~100 microsecond cost stays
  // off every re-resolve.
  static const TileBench tb = run_tile_microbench<T>();
  return tb;
}

template <typename T>
TileDims gemm_selected_tile() {
  const GemmKernels<T>& k = gemm_kernels<T>();
  return {k.mr, k.nr};
}

template <typename T>
const char* gemm_selected_tile_name() {
  return gemm_kernels<T>().name;
}

template <typename T>
void gemm_packed(Op opa, Op opb, T alpha, NoDeduce<ConstMatrixView<T>> a,
                 NoDeduce<ConstMatrixView<T>> b, T beta, MatrixView<T> c) {
  const ResolvedBlocking& blk = resolved_blocking<T>();
  const GemmKernels<T>& kern = gemm_kernels<T>();
  const index_t MC = blk.mc, KC = blk.kc, NC = blk.nc;
  const index_t m = c.rows, n = c.cols, k = op_cols(opa, a);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == T{}) {
    scale_c(beta, c);
    return;
  }
  WorkspaceArena& ws = WorkspaceArena::local();
  T* ap = ws.get<T>(padded(MC, kern.mr) * KC, WorkspaceArena::kPackA);
  T* bp = ws.get<T>(KC * padded(NC, kern.nr), WorkspaceArena::kPackB);
  for (index_t jc = 0; jc < n; jc += NC) {
    const index_t nc = std::min(NC, n - jc);
    for (index_t pc = 0; pc < k; pc += KC) {
      const index_t kc = std::min(KC, k - pc);
      kern.pack_b(opb, b, pc, jc, kc, nc, bp);
      gemm_stats::g_b_packs.fetch_add(1, std::memory_order_relaxed);
      const T beta_eff = (pc == 0) ? beta : T{1};
      for (index_t ic = 0; ic < m; ic += MC) {
        const index_t mc = std::min(MC, m - ic);
        kern.pack_a(opa, a, ic, pc, mc, kc, ap);
        gemm_stats::g_a_packs.fetch_add(1, std::memory_order_relaxed);
        kern.macro(mc, nc, kc, alpha, ap, bp, beta_eff,
                   c.block(ic, jc, mc, nc));
      }
    }
  }
}

template <typename T>
void pack_a_full_into(Op opa, ConstMatrixView<T> a, PackedMatrix<T>& p) {
  const ResolvedBlocking& blk = resolved_blocking<T>();
  const GemmKernels<T>& kern = gemm_kernels<T>();
  const index_t MR = kern.mr;
  const index_t MC = blk.mc, KC = blk.kc;
  p.kind_ = PackedMatrix<T>::Kind::kA;
  p.rows_ = op_rows(opa, a);
  p.cols_ = op_cols(opa, a);
  p.grid_rows_ = ceil_div(p.rows_, MC);
  p.grid_cols_ = ceil_div(p.cols_, KC);
  if (p.empty()) return;
  p.offsets_.resize(static_cast<std::size_t>(p.grid_rows_ * p.grid_cols_));
  index_t total = 0;
  for (index_t it = 0; it < p.grid_rows_; ++it) {
    const index_t mc = std::min(MC, p.rows_ - it * MC);
    for (index_t pt = 0; pt < p.grid_cols_; ++pt) {
      const index_t kc = std::min(KC, p.cols_ - pt * KC);
      p.offsets_[it * p.grid_cols_ + pt] = total;
      total += ceil_div(mc, MR) * MR * kc;
    }
  }
  if (p.buf_.size() < static_cast<std::size_t>(total))
    p.buf_.clear();  // don't copy a stale pack when the slot grows
  p.buf_.resize(static_cast<std::size_t>(total));
  for (index_t it = 0; it < p.grid_rows_; ++it) {
    const index_t mc = std::min(MC, p.rows_ - it * MC);
    for (index_t pt = 0; pt < p.grid_cols_; ++pt) {
      const index_t kc = std::min(KC, p.cols_ - pt * KC);
      kern.pack_a(opa, a, it * MC, pt * KC, mc, kc,
                  p.buf_.data() + p.offsets_[it * p.grid_cols_ + pt]);
    }
  }
}

template <typename T>
PackedMatrix<T> pack_a_full(Op opa, ConstMatrixView<T> a) {
  PackedMatrix<T> p;
  pack_a_full_into(opa, a, p);
  gemm_stats::g_shared_packs.fetch_add(1, std::memory_order_relaxed);
  return p;
}

template <typename T>
PackedMatrix<T> pack_b_full(Op opb, ConstMatrixView<T> b) {
  const ResolvedBlocking& blk = resolved_blocking<T>();
  const GemmKernels<T>& kern = gemm_kernels<T>();
  const index_t NR = kern.nr;
  const index_t KC = blk.kc, NC = blk.nc;
  PackedMatrix<T> p;
  p.kind_ = PackedMatrix<T>::Kind::kB;
  p.rows_ = op_rows(opb, b);
  p.cols_ = op_cols(opb, b);
  p.grid_rows_ = ceil_div(p.rows_, KC);
  p.grid_cols_ = ceil_div(p.cols_, NC);
  if (p.empty()) return p;
  p.offsets_.resize(static_cast<std::size_t>(p.grid_rows_ * p.grid_cols_));
  index_t total = 0;
  for (index_t pt = 0; pt < p.grid_rows_; ++pt) {
    const index_t kc = std::min(KC, p.rows_ - pt * KC);
    for (index_t jt = 0; jt < p.grid_cols_; ++jt) {
      const index_t nc = std::min(NC, p.cols_ - jt * NC);
      p.offsets_[pt * p.grid_cols_ + jt] = total;
      total += ceil_div(nc, NR) * NR * kc;
    }
  }
  p.buf_.resize(static_cast<std::size_t>(total));
  for (index_t pt = 0; pt < p.grid_rows_; ++pt) {
    const index_t kc = std::min(KC, p.rows_ - pt * KC);
    for (index_t jt = 0; jt < p.grid_cols_; ++jt) {
      const index_t nc = std::min(NC, p.cols_ - jt * NC);
      kern.pack_b(opb, b, pt * KC, jt * NC, kc, nc,
                  p.buf_.data() + p.offsets_[pt * p.grid_cols_ + jt]);
    }
  }
  gemm_stats::g_shared_packs.fetch_add(1, std::memory_order_relaxed);
  return p;
}

template <typename T>
void gemm_prepacked_a(const PackedMatrix<T>& ap, T alpha, Op opb,
                      NoDeduce<ConstMatrixView<T>> b, T beta,
                      MatrixView<T> c) {
  const ResolvedBlocking& blk = resolved_blocking<T>();
  const GemmKernels<T>& kern = gemm_kernels<T>();
  const index_t MC = blk.mc, KC = blk.kc, NC = blk.nc;
  HODLRX_REQUIRE(ap.kind() == PackedMatrix<T>::Kind::kA,
                 "gemm_prepacked_a: operand was packed as B");
  const index_t m = c.rows, n = c.cols, k = ap.cols();
  HODLRX_REQUIRE(ap.rows() == m && op_rows(opb, b) == k &&
                     op_cols(opb, b) == n,
                 "gemm_prepacked_a: shape mismatch");
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == T{}) {
    scale_c(beta, c);
    return;
  }
  WorkspaceArena& ws = WorkspaceArena::local();
  T* bp = ws.get<T>(KC * padded(NC, kern.nr), WorkspaceArena::kPackB);
  for (index_t jc = 0; jc < n; jc += NC) {
    const index_t nc = std::min(NC, n - jc);
    for (index_t pc = 0; pc < k; pc += KC) {
      const index_t kc = std::min(KC, k - pc);
      kern.pack_b(opb, b, pc, jc, kc, nc, bp);
      gemm_stats::g_b_packs.fetch_add(1, std::memory_order_relaxed);
      const T beta_eff = (pc == 0) ? beta : T{1};
      for (index_t ic = 0; ic < m; ic += MC) {
        const index_t mc = std::min(MC, m - ic);
        kern.macro(mc, nc, kc, alpha, ap.tile(ic / MC, pc / KC), bp, beta_eff,
                   c.block(ic, jc, mc, nc));
      }
    }
  }
}

template <typename T>
void gemm_prepacked_b(Op opa, T alpha, NoDeduce<ConstMatrixView<T>> a,
                      const PackedMatrix<T>& bp, T beta, MatrixView<T> c) {
  const ResolvedBlocking& blk = resolved_blocking<T>();
  const GemmKernels<T>& kern = gemm_kernels<T>();
  const index_t MC = blk.mc, KC = blk.kc, NC = blk.nc;
  HODLRX_REQUIRE(bp.kind() == PackedMatrix<T>::Kind::kB,
                 "gemm_prepacked_b: operand was packed as A");
  const index_t m = c.rows, n = c.cols, k = bp.rows();
  HODLRX_REQUIRE(bp.cols() == n && op_rows(opa, a) == m &&
                     op_cols(opa, a) == k,
                 "gemm_prepacked_b: shape mismatch");
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == T{}) {
    scale_c(beta, c);
    return;
  }
  WorkspaceArena& ws = WorkspaceArena::local();
  T* ap = ws.get<T>(padded(MC, kern.mr) * KC, WorkspaceArena::kPackA);
  for (index_t jc = 0; jc < n; jc += NC) {
    const index_t nc = std::min(NC, n - jc);
    for (index_t pc = 0; pc < k; pc += KC) {
      const index_t kc = std::min(KC, k - pc);
      const T beta_eff = (pc == 0) ? beta : T{1};
      for (index_t ic = 0; ic < m; ic += MC) {
        const index_t mc = std::min(MC, m - ic);
        kern.pack_a(opa, a, ic, pc, mc, kc, ap);
        gemm_stats::g_a_packs.fetch_add(1, std::memory_order_relaxed);
        kern.macro(mc, nc, kc, alpha, ap, bp.tile(pc / KC, jc / NC), beta_eff,
                   c.block(ic, jc, mc, nc));
      }
    }
  }
}

/// Upper bound on the pool's persistent shared A-pack slot. Stream-mode
/// trailing updates (tall-skinny A) fit comfortably; a huge square multiply
/// falls back to the column-split path rather than holding a giant pack.
constexpr std::size_t kSharedAPackBudget = std::size_t{64} << 20;  // 64 MB

template <typename T>
bool gemm_parallel_shared_a(Op opa, Op opb, T alpha,
                            NoDeduce<ConstMatrixView<T>> a,
                            NoDeduce<ConstMatrixView<T>> b, T beta,
                            MatrixView<T> c) {
  const index_t m = c.rows, n = c.cols, k = op_cols(opa, a);
  if (!use_packed_gemm(opa, opb, m, n, k)) return false;
  if (static_cast<std::size_t>(m) * static_cast<std::size_t>(k) * sizeof(T) >
      kSharedAPackBudget)
    return false;
  // One persistent slot per scalar type: the pack buffer reaches steady-state
  // size once and is reused by every subsequent launch. try_lock so a second
  // concurrent launch degrades to the fallback instead of serializing.
  static std::mutex slot_mu;
  static PackedMatrix<T> slot;
  std::unique_lock<std::mutex> lk(slot_mu, std::try_to_lock);
  if (!lk.owns_lock()) return false;
  pack_a_full_into<T>(opa, a, slot);
  gemm_stats::g_pool_packs.fetch_add(1, std::memory_order_relaxed);
  parallel_chunks(n, [&](index_t j0, index_t nc) {
    ConstMatrixView<T> bs =
        (opb == Op::N) ? b.cols_range(j0, nc) : b.rows_range(j0, nc);
    gemm_prepacked_a<T>(slot, alpha, opb, bs, beta, c.cols_range(j0, nc));
  });
  return true;
}

#define HODLRX_INSTANTIATE_GEMM_KERNEL(T)                                     \
  template class PackedMatrix<T>;                                            \
  template void gemm_packed<T>(Op, Op, T, NoDeduce<ConstMatrixView<T>>,       \
                               NoDeduce<ConstMatrixView<T>>, T,               \
                               MatrixView<T>);                                \
  template TileDims gemm_selected_tile<T>();                                  \
  template const char* gemm_selected_tile_name<T>();                          \
  template TileBench tile_microbench<T>();                                    \
  template PackedMatrix<T> pack_a_full<T>(Op, ConstMatrixView<T>);            \
  template void pack_a_full_into<T>(Op, ConstMatrixView<T>,                   \
                                    PackedMatrix<T>&);                        \
  template PackedMatrix<T> pack_b_full<T>(Op, ConstMatrixView<T>);            \
  template void gemm_prepacked_a<T>(const PackedMatrix<T>&, T, Op,            \
                                    NoDeduce<ConstMatrixView<T>>, T,          \
                                    MatrixView<T>);                           \
  template void gemm_prepacked_b<T>(Op, T, NoDeduce<ConstMatrixView<T>>,      \
                                    const PackedMatrix<T>&, T, MatrixView<T>);\
  template bool gemm_parallel_shared_a<T>(Op, Op, T,                          \
                                          NoDeduce<ConstMatrixView<T>>,       \
                                          NoDeduce<ConstMatrixView<T>>, T,    \
                                          MatrixView<T>);

HODLRX_INSTANTIATE_GEMM_KERNEL(float)
HODLRX_INSTANTIATE_GEMM_KERNEL(double)
HODLRX_INSTANTIATE_GEMM_KERNEL(std::complex<float>)
HODLRX_INSTANTIATE_GEMM_KERNEL(std::complex<double>)

#undef HODLRX_INSTANTIATE_GEMM_KERNEL

}  // namespace hodlrx
