#include "common/task_graph.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "device/backend.hpp"

namespace hodlrx {

SchedMode sched_mode() {
  const char* s = std::getenv("HODLRX_SCHED");
  if (s != nullptr && std::strcmp(s, "graph") == 0) return SchedMode::kGraph;
  return SchedMode::kLevels;
}

const char* sched_mode_name(SchedMode m) {
  return m == SchedMode::kGraph ? "graph" : "levels";
}

namespace sched_stats {
namespace {
std::atomic<std::uint64_t> g_graphs{0}, g_nodes{0}, g_edges{0}, g_steals{0},
    g_max_ready{0};
}  // namespace
std::uint64_t graphs_run() { return g_graphs.load(std::memory_order_relaxed); }
std::uint64_t nodes() { return g_nodes.load(std::memory_order_relaxed); }
std::uint64_t edges() { return g_edges.load(std::memory_order_relaxed); }
std::uint64_t steals() { return g_steals.load(std::memory_order_relaxed); }
std::uint64_t max_ready_depth() {
  return g_max_ready.load(std::memory_order_relaxed);
}
void reset() {
  g_graphs.store(0, std::memory_order_relaxed);
  g_nodes.store(0, std::memory_order_relaxed);
  g_edges.store(0, std::memory_order_relaxed);
  g_steals.store(0, std::memory_order_relaxed);
  g_max_ready.store(0, std::memory_order_relaxed);
}
namespace {
void record_max_ready(std::uint64_t depth) {
  std::uint64_t prev = g_max_ready.load(std::memory_order_relaxed);
  while (prev < depth && !g_max_ready.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }
}
}  // namespace
}  // namespace sched_stats

namespace sched_testing {
namespace {
/// Armed tag of the one-shot edge trap; graphs build single-threaded so a
/// plain pointer suffices. Only tests touch this.
const char* g_drop_tag = nullptr;
}  // namespace
void drop_next_tagged_edge(const char* tag) { g_drop_tag = tag; }
}  // namespace sched_testing

TaskGraph::TaskGraph() {
  // Capture audit mode per graph: declarations made while building this
  // graph are recorded (or not) consistently even if a test flips the
  // environment mid-build.
  if (audit_enabled()) auditor_ = std::make_unique<AccessAuditor>();
}

TaskGraph::~TaskGraph() = default;

TaskGraph::NodeId TaskGraph::add(std::function<void()> fn, const char* stage,
                                 index_t i, index_t j) {
  HODLRX_REQUIRE(!ran_, "TaskGraph: add() after run()");
  nodes_.push_back(Node{std::move(fn), {}, 0});
  const NodeId id = static_cast<NodeId>(nodes_.size()) - 1;
  if (auditor_) auditor_->add_node(id, stage, i, j);
  return id;
}

void TaskGraph::add_edge(NodeId before, NodeId after, const char* tag) {
  HODLRX_REQUIRE(!ran_, "TaskGraph: add_edge() after run()");
  HODLRX_REQUIRE(before >= 0 && before < size() && after >= 0 &&
                     after < size() && before != after,
                 "TaskGraph: bad edge " << before << " -> " << after);
  if (tag != nullptr && sched_testing::g_drop_tag != nullptr &&
      std::strcmp(tag, sched_testing::g_drop_tag) == 0) {
    sched_testing::g_drop_tag = nullptr;  // one-shot: drop exactly this edge
    return;
  }
  nodes_[static_cast<std::size_t>(before)].out.push_back(after);
  ++nodes_[static_cast<std::size_t>(after)].indegree;
  ++num_edges_;
  if (auditor_) auditor_->add_edge(before, after);
}

void TaskGraph::declare(NodeId node, const void* space, index_t row0,
                        index_t row1, index_t col0, index_t col1,
                        AuditAccess::Mode mode) {
  HODLRX_REQUIRE(!ran_, "TaskGraph: access declared after run()");
  auditor_->declare(node, AuditAccess{space, row0, row1, col0, col1, mode});
}

namespace {

/// Shared execution state of one run(): ready stack + completion tracking
/// under one mutex, remaining in-degrees as atomics (the acq_rel RMW chain
/// makes every predecessor's writes visible to the node it releases).
struct GraphRun {
  struct Ready {
    TaskGraph::NodeId id;
    int pusher;  ///< worker slot that made it ready; -1 for seeds
  };
  Mutex mu;
  CondVar cv;
  std::vector<Ready> ready HODLRX_GUARDED_BY(mu);  ///< LIFO
  index_t done HODLRX_GUARDED_BY(mu) = 0;
  index_t inflight HODLRX_GUARDED_BY(mu) = 0;
  bool failed HODLRX_GUARDED_BY(mu) = false;
  std::exception_ptr error HODLRX_GUARDED_BY(mu);
  std::uint64_t steals HODLRX_GUARDED_BY(mu) = 0;
  std::uint64_t max_ready HODLRX_GUARDED_BY(mu) = 0;
  std::unique_ptr<std::atomic<index_t>[]> indeg;  ///< self-synchronizing

  bool finished(index_t n) const HODLRX_REQUIRES(mu) {
    return failed ? inflight == 0 : done == n;
  }
};

}  // namespace

void TaskGraph::run() {
  HODLRX_REQUIRE(!ran_, "TaskGraph: run() called twice");
  ran_ = true;
  const index_t n = size();
  if (n == 0) return;
  // Audit before execution: a missing edge is reported as a structured
  // Error while the data is still untouched, not after a racy run.
  if (auditor_) auditor_->verify();

  // Asynchronous backend: issue the DAG onto streams with event edges and
  // drain once. Falls through on cycles (so the pool path below keeps the
  // canonical cycle diagnostics) and inside parallel regions (a nested
  // drain would run inline anyway — the direct path is simpler there).
  if (backend().asynchronous() && !in_parallel() && run_on_streams()) return;

  GraphRun st;
  st.indeg.reset(new std::atomic<index_t>[static_cast<std::size_t>(n)]);
  for (index_t i = 0; i < n; ++i)
    st.indeg[static_cast<std::size_t>(i)].store(
        nodes_[static_cast<std::size_t>(i)].indegree,
        std::memory_order_relaxed);
  {
    // Workers exist only after this scope, but the guarded fields still want
    // the lock held for the analysis (and the acquire pairs with theirs).
    MutexLock lk(st.mu);
    st.ready.reserve(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i)
      if (nodes_[static_cast<std::size_t>(i)].indegree == 0)
        st.ready.push_back({i, -1});
    HODLRX_REQUIRE(!st.ready.empty(), "TaskGraph: no source nodes (cycle)");
    st.max_ready = st.ready.size();
  }

  const index_t workers = std::min<index_t>(max_threads(), n);
  const auto worker = [&](index_t slot) {
    MutexLock lk(st.mu);
    for (;;) {
      // Wait for work, completion, or quiescence (ready empty + nothing in
      // flight — with unfinished nodes that is an unsatisfiable dependency).
      while (st.ready.empty() && !st.finished(n) && st.inflight != 0)
        st.cv.wait(st.mu);
      if (st.finished(n) || st.failed) break;
      if (st.ready.empty()) {
        if (st.inflight == 0) {
          if (!st.error)
            st.error = std::make_exception_ptr(
                Error("hodlrx: TaskGraph dependency cycle — " +
                      std::to_string(n - st.done) + " of " +
                      std::to_string(n) + " node(s) unreachable"));
          st.failed = true;
          st.cv.notify_all();
          break;
        }
        continue;  // spurious: someone is in flight, wait again
      }
      const GraphRun::Ready r = st.ready.back();
      st.ready.pop_back();
      if (r.pusher >= 0 && r.pusher != static_cast<int>(slot)) ++st.steals;
      ++st.inflight;
      lk.unlock();

      Node& node = nodes_[static_cast<std::size_t>(r.id)];
      bool ok = true;
      try {
        node.fn();
      } catch (...) {
        ok = false;
        lk.lock();
        if (!st.error) st.error = std::current_exception();
        st.failed = true;
        lk.unlock();
      }
      // Release successors; acq_rel so the final decrementer observes every
      // predecessor's writes (RMWs on one atomic form a release sequence).
      std::vector<NodeId> newly;
      if (ok)
        for (const NodeId s : node.out)
          if (st.indeg[static_cast<std::size_t>(s)].fetch_sub(
                  1, std::memory_order_acq_rel) == 1)
            newly.push_back(s);

      lk.lock();
      --st.inflight;
      ++st.done;
      if (!st.failed)
        for (const NodeId s : newly)
          st.ready.push_back({s, static_cast<int>(slot)});
      if (st.ready.size() > st.max_ready) st.max_ready = st.ready.size();
      st.cv.notify_all();
    }
  };

  // One persistent worker per launch slot; each loops until the graph
  // drains. A single-participant launch (1-thread pool or a nested region)
  // executes the graph serially on the caller.
  ThreadPool::instance().parallel_for(workers, /*dynamic=*/false, worker);

  index_t done;
  std::uint64_t steals, max_ready;
  std::exception_ptr error;
  {
    // The launch joined all workers; the lock satisfies the analysis and
    // costs one uncontended acquire.
    MutexLock lk(st.mu);
    done = st.done;
    steals = st.steals;
    max_ready = st.max_ready;
    error = st.error;
  }
  sched_stats::g_graphs.fetch_add(1, std::memory_order_relaxed);
  sched_stats::g_nodes.fetch_add(static_cast<std::uint64_t>(done),
                                 std::memory_order_relaxed);
  sched_stats::g_edges.fetch_add(static_cast<std::uint64_t>(num_edges_),
                                 std::memory_order_relaxed);
  sched_stats::g_steals.fetch_add(steals, std::memory_order_relaxed);
  sched_stats::record_max_ready(max_ready);
  if (error) std::rethrow_exception(error);
}

bool TaskGraph::run_on_streams() {
  const index_t n = size();
  // Kahn topological order. Incomplete order = cycle: FIFO queues cannot
  // express it, so decline and let the pool path handle (and report) it.
  std::vector<index_t> indeg(static_cast<std::size_t>(n));
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    indeg[static_cast<std::size_t>(i)] =
        nodes_[static_cast<std::size_t>(i)].indegree;
    if (indeg[static_cast<std::size_t>(i)] == 0) order.push_back(i);
  }
  const std::uint64_t sources = static_cast<std::uint64_t>(order.size());
  for (std::size_t qi = 0; qi < order.size(); ++qi)
    for (const NodeId s : nodes_[static_cast<std::size_t>(order[qi])].out)
      if (--indeg[static_cast<std::size_t>(s)] == 0) order.push_back(s);
  if (static_cast<index_t>(order.size()) != n) return false;

  Backend& b = backend();
  const index_t nstreams = std::min<index_t>(max_threads(), n);
  // Predecessor lists (built from the stored successor lists) drive the
  // wait edges; stream slots round-robin over topological position, so
  // independent nodes land on different queues and chains tend to share one.
  std::vector<std::vector<NodeId>> preds(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    for (const NodeId s : nodes_[static_cast<std::size_t>(i)].out)
      preds[static_cast<std::size_t>(s)].push_back(i);
  std::vector<index_t> sid(static_cast<std::size_t>(n));
  for (std::size_t pos = 0; pos < order.size(); ++pos)
    sid[static_cast<std::size_t>(order[pos])] =
        static_cast<index_t>(pos) % nstreams;

  std::atomic<index_t> done{0};
  std::exception_ptr error;
  {
    std::vector<std::unique_ptr<Stream>> streams;
    streams.reserve(static_cast<std::size_t>(nstreams));
    for (index_t s = 0; s < nstreams; ++s)
      streams.push_back(std::make_unique<Stream>(b));
    std::vector<Event> ev(static_cast<std::size_t>(n));
    for (const NodeId id : order) {
      Stream& st = *streams[static_cast<std::size_t>(sid[
          static_cast<std::size_t>(id)])];
      // Same-stream predecessors are ordered by the FIFO queue itself (they
      // were enqueued earlier in topological order); only cross-stream
      // dependencies need an event edge.
      for (const NodeId p : preds[static_cast<std::size_t>(id)])
        if (sid[static_cast<std::size_t>(p)] !=
            sid[static_cast<std::size_t>(id)])
          st.wait(ev[static_cast<std::size_t>(p)]);
      st.launch("task-graph-node", [this, id, &done] {
        nodes_[static_cast<std::size_t>(id)].fn();
        done.fetch_add(1, std::memory_order_relaxed);
      });
      bool crosses = false;
      for (const NodeId s : nodes_[static_cast<std::size_t>(id)].out)
        if (sid[static_cast<std::size_t>(s)] !=
            sid[static_cast<std::size_t>(id)]) {
          crosses = true;
          break;
        }
      if (crosses) st.record(ev[static_cast<std::size_t>(id)]);
    }
    try {
      b.synchronize();  // ONE drain: the launch the warm-pool tests count
    } catch (...) {
      error = std::current_exception();
    }
  }  // stream destructors find empty queues — no second drain
  sched_stats::g_graphs.fetch_add(1, std::memory_order_relaxed);
  sched_stats::g_nodes.fetch_add(
      static_cast<std::uint64_t>(done.load(std::memory_order_relaxed)),
      std::memory_order_relaxed);
  sched_stats::g_edges.fetch_add(static_cast<std::uint64_t>(num_edges_),
                                 std::memory_order_relaxed);
  sched_stats::record_max_ready(sources);
  if (error) std::rethrow_exception(error);
  return true;
}

}  // namespace hodlrx
