#include "common/task_graph.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace hodlrx {

SchedMode sched_mode() {
  const char* s = std::getenv("HODLRX_SCHED");
  if (s != nullptr && std::strcmp(s, "graph") == 0) return SchedMode::kGraph;
  return SchedMode::kLevels;
}

const char* sched_mode_name(SchedMode m) {
  return m == SchedMode::kGraph ? "graph" : "levels";
}

namespace sched_stats {
namespace {
std::atomic<std::uint64_t> g_graphs{0}, g_nodes{0}, g_edges{0}, g_steals{0},
    g_max_ready{0};
}  // namespace
std::uint64_t graphs_run() { return g_graphs.load(std::memory_order_relaxed); }
std::uint64_t nodes() { return g_nodes.load(std::memory_order_relaxed); }
std::uint64_t edges() { return g_edges.load(std::memory_order_relaxed); }
std::uint64_t steals() { return g_steals.load(std::memory_order_relaxed); }
std::uint64_t max_ready_depth() {
  return g_max_ready.load(std::memory_order_relaxed);
}
void reset() {
  g_graphs.store(0, std::memory_order_relaxed);
  g_nodes.store(0, std::memory_order_relaxed);
  g_edges.store(0, std::memory_order_relaxed);
  g_steals.store(0, std::memory_order_relaxed);
  g_max_ready.store(0, std::memory_order_relaxed);
}
namespace {
void record_max_ready(std::uint64_t depth) {
  std::uint64_t prev = g_max_ready.load(std::memory_order_relaxed);
  while (prev < depth && !g_max_ready.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }
}
}  // namespace
}  // namespace sched_stats

TaskGraph::NodeId TaskGraph::add(std::function<void()> fn) {
  HODLRX_REQUIRE(!ran_, "TaskGraph: add() after run()");
  nodes_.push_back(Node{std::move(fn), {}, 0});
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void TaskGraph::add_edge(NodeId before, NodeId after) {
  HODLRX_REQUIRE(!ran_, "TaskGraph: add_edge() after run()");
  HODLRX_REQUIRE(before >= 0 && before < size() && after >= 0 &&
                     after < size() && before != after,
                 "TaskGraph: bad edge " << before << " -> " << after);
  nodes_[static_cast<std::size_t>(before)].out.push_back(after);
  ++nodes_[static_cast<std::size_t>(after)].indegree;
  ++num_edges_;
}

namespace {

/// Shared execution state of one run(): ready stack + completion tracking
/// under one mutex, remaining in-degrees as atomics (the acq_rel RMW chain
/// makes every predecessor's writes visible to the node it releases).
struct GraphRun {
  struct Ready {
    TaskGraph::NodeId id;
    int pusher;  ///< worker slot that made it ready; -1 for seeds
  };
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Ready> ready;  ///< LIFO
  index_t done = 0;
  index_t inflight = 0;
  bool failed = false;
  std::exception_ptr error;
  std::uint64_t steals = 0;
  std::uint64_t max_ready = 0;
  std::unique_ptr<std::atomic<index_t>[]> indeg;
};

}  // namespace

void TaskGraph::run() {
  HODLRX_REQUIRE(!ran_, "TaskGraph: run() called twice");
  ran_ = true;
  const index_t n = size();
  if (n == 0) return;

  GraphRun st;
  st.indeg.reset(new std::atomic<index_t>[static_cast<std::size_t>(n)]);
  for (index_t i = 0; i < n; ++i)
    st.indeg[static_cast<std::size_t>(i)].store(
        nodes_[static_cast<std::size_t>(i)].indegree,
        std::memory_order_relaxed);
  st.ready.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    if (nodes_[static_cast<std::size_t>(i)].indegree == 0)
      st.ready.push_back({i, -1});
  HODLRX_REQUIRE(!st.ready.empty(), "TaskGraph: no source nodes (cycle)");
  st.max_ready = st.ready.size();

  const auto finished = [&st, n] {
    return st.failed ? st.inflight == 0 : st.done == n;
  };

  const index_t workers = std::min<index_t>(max_threads(), n);
  const auto worker = [&](index_t slot) {
    std::unique_lock<std::mutex> lk(st.mu);
    for (;;) {
      // Wait for work, completion, or quiescence (ready empty + nothing in
      // flight — with unfinished nodes that is an unsatisfiable dependency).
      st.cv.wait(lk, [&] {
        return !st.ready.empty() || finished() || st.inflight == 0;
      });
      if (finished() || st.failed) break;
      if (st.ready.empty()) {
        if (st.inflight == 0) {
          if (!st.error)
            st.error = std::make_exception_ptr(
                Error("hodlrx: TaskGraph dependency cycle — " +
                      std::to_string(n - st.done) + " of " +
                      std::to_string(n) + " node(s) unreachable"));
          st.failed = true;
          st.cv.notify_all();
          break;
        }
        continue;  // spurious: someone is in flight, wait again
      }
      const GraphRun::Ready r = st.ready.back();
      st.ready.pop_back();
      if (r.pusher >= 0 && r.pusher != static_cast<int>(slot)) ++st.steals;
      ++st.inflight;
      lk.unlock();

      Node& node = nodes_[static_cast<std::size_t>(r.id)];
      bool ok = true;
      try {
        node.fn();
      } catch (...) {
        ok = false;
        lk.lock();
        if (!st.error) st.error = std::current_exception();
        st.failed = true;
        lk.unlock();
      }
      // Release successors; acq_rel so the final decrementer observes every
      // predecessor's writes (RMWs on one atomic form a release sequence).
      std::vector<NodeId> newly;
      if (ok)
        for (const NodeId s : node.out)
          if (st.indeg[static_cast<std::size_t>(s)].fetch_sub(
                  1, std::memory_order_acq_rel) == 1)
            newly.push_back(s);

      lk.lock();
      --st.inflight;
      ++st.done;
      if (!st.failed)
        for (const NodeId s : newly)
          st.ready.push_back({s, static_cast<int>(slot)});
      if (st.ready.size() > st.max_ready) st.max_ready = st.ready.size();
      st.cv.notify_all();
    }
  };

  // One persistent worker per launch slot; each loops until the graph
  // drains. A single-participant launch (1-thread pool or a nested region)
  // executes the graph serially on the caller.
  ThreadPool::instance().parallel_for(workers, /*dynamic=*/false, worker);

  sched_stats::g_graphs.fetch_add(1, std::memory_order_relaxed);
  sched_stats::g_nodes.fetch_add(static_cast<std::uint64_t>(st.done),
                                 std::memory_order_relaxed);
  sched_stats::g_edges.fetch_add(static_cast<std::uint64_t>(num_edges_),
                                 std::memory_order_relaxed);
  sched_stats::g_steals.fetch_add(st.steals, std::memory_order_relaxed);
  sched_stats::record_max_ready(st.max_ready);
  if (st.error) std::rethrow_exception(st.error);
}

}  // namespace hodlrx
