#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/access_audit.hpp"
#include "common/config.hpp"

/// \file task_graph.hpp
/// Dependency-graph task scheduler on the persistent thread pool.
///
/// Every sweep in the library used to be level-synchronous: one
/// `parallel_for` per stage with a full barrier between stages (compress
/// level L -> barrier -> factor level L -> barrier -> next level), which
/// leaves pool workers idle at every level edge. This scheduler replaces the
/// barriers with an explicit DAG: nodes are tile-stage tasks (materialize a
/// tile, compress a level side, factor a panel, update a trailing block,
/// solve a K system), edges are data dependencies, and a node becomes
/// runnable the moment its remaining in-degree drops to zero — the
/// "inherently parallel" reorganization the H2-ULV line of work argues is
/// the key to keeping an accelerator's queues full.
///
/// Execution model: `run()` dispatches min(pool threads, nodes) persistent
/// workers through the pool's existing launch path. Ready nodes live on one
/// shared LIFO stack; a worker that pops a node pushed by a different worker
/// records a steal. Node bodies run with the pool's in-region flag set, so
/// nested parallel constructs inside a node execute inline (exactly like
/// nested `parallel_for` today). Exceptions thrown by a node are captured,
/// the graph drains (no new nodes are issued, in-flight nodes finish), and
/// the first exception is rethrown from `run()` — the same contract
/// `parallel_for` has. A graph whose dependencies can never complete (a
/// cycle) is detected at quiescence and reported as an Error instead of
/// deadlocking.
///
/// The `HODLRX_SCHED` environment variable selects which path the ported
/// call sites take: `levels` (default) preserves the historical
/// level-synchronous sweeps bit-for-bit; `graph` routes them through this
/// scheduler. The variable is reread on every query — the same convention as
/// HODLRX_FAULT / HODLRX_SVD_SWEEPS — so tests can flip modes at runtime.

namespace hodlrx {

/// Which scheduler the ported sweep sites use.
enum class SchedMode {
  kLevels,  ///< historical level-synchronous barriers (default)
  kGraph,   ///< dependency-graph execution on the pool
};

/// Resolve HODLRX_SCHED (reread per call): "graph" selects the DAG
/// scheduler, anything else (including unset) the level-synchronous path.
SchedMode sched_mode();
const char* sched_mode_name(SchedMode m);

/// Process-wide scheduler counters (relaxed atomics, same pattern as
/// qr_stats / fault_stats). Tests and bench JSON use these to assert which
/// scheduling path actually ran.
namespace sched_stats {
/// Completed TaskGraph::run() executions.
std::uint64_t graphs_run();
/// Nodes executed across all graph runs.
std::uint64_t nodes();
/// Edges of all graphs run.
std::uint64_t edges();
/// Ready-stack pops where the popping worker differs from the worker that
/// made the node ready (work migrated between workers).
std::uint64_t steals();
/// Maximum ready-stack depth observed in any run since reset().
std::uint64_t max_ready_depth();
void reset();
}  // namespace sched_stats

/// Test-only hooks (tests/test_scheduler.cpp). drop_next_tagged_edge arms a
/// one-shot trap: the next add_edge() carrying a matching tag is silently
/// skipped — the mutation that proves the access auditor detects a missing
/// cross-level edge. Pass nullptr to disarm.
namespace sched_testing {
void drop_next_tagged_edge(const char* tag);
}  // namespace sched_testing

/// A one-shot dependency graph of type-erased tasks. Build it single-
/// threaded (add / add_edge), execute it once with run(). Not reusable and
/// not thread-safe during construction; run() itself is internally
/// synchronized.
class TaskGraph {
 public:
  using NodeId = index_t;

  TaskGraph();
  ~TaskGraph();
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Add a node; returns its id. Nodes with no incoming edges are seeded
  /// ready at run(). `stage` (a static-storage string) plus the optional
  /// indices label the node in access-audit reports — "stage(i,j)"; when the
  /// graph is not audited they are discarded without formatting.
  NodeId add(std::function<void()> fn, const char* stage = nullptr,
             index_t i = -1, index_t j = -1);

  /// `after` cannot start until `before` has completed. Successors become
  /// ready in reverse add_edge order (LIFO stack), so add the critical-path
  /// edge of a node LAST to have its successor scheduled first. `tag` names
  /// the edge class for the sched_testing mutation hook; it has no effect on
  /// execution.
  void add_edge(NodeId before, NodeId after, const char* tag = nullptr);

  /// Declared-access audit surface (docs/static-analysis.md). All three are
  /// null-auditor no-ops unless HODLRX_AUDIT was on when the graph was
  /// constructed; rectangles are half-open, `space` is identity only.
  void reads(NodeId node, const void* space, index_t row0, index_t row1,
             index_t col0 = 0, index_t col1 = 1) {
    if (auditor_)
      declare(node, space, row0, row1, col0, col1, AuditAccess::Mode::kRead);
  }
  void writes(NodeId node, const void* space, index_t row0, index_t row1,
              index_t col0 = 0, index_t col1 = 1) {
    if (auditor_)
      declare(node, space, row0, row1, col0, col1, AuditAccess::Mode::kWrite);
  }
  /// A write serialized by a site-level mutex: never conflicts with other
  /// guarded writes to the same space, still conflicts with plain accesses.
  void writes_guarded(NodeId node, const void* space, index_t row0,
                      index_t row1, index_t col0 = 0, index_t col1 = 1) {
    if (auditor_)
      declare(node, space, row0, row1, col0, col1,
              AuditAccess::Mode::kGuardedWrite);
  }

  /// True when this graph captured HODLRX_AUDIT=on at construction.
  bool audited() const { return auditor_ != nullptr; }

  index_t size() const { return static_cast<index_t>(nodes_.size()); }
  index_t num_edges() const { return num_edges_; }

  /// Execute the graph on the thread pool and wait for completion; rethrows
  /// the first node exception. Callable exactly once.
  ///
  /// When the active device backend is asynchronous (HODLRX_BACKEND=
  /// host-async), acyclic graphs are lowered onto backend streams instead:
  /// nodes issue as stream launches in topological order, each dependency
  /// crossing streams becomes a record/wait event edge, and one synchronize
  /// drains everything through a single pool launch — the same
  /// one-launch-per-run warm-pool cost as the direct path. Semantics
  /// (ordering, failure drain + rethrow, cycle Error, sched_stats) are
  /// identical either way.
  void run();

 private:
  /// The stream lowering behind run(); false when the graph cannot be
  /// topologically ordered (a cycle), in which case run() falls back to the
  /// pool path, which executes the reachable work and raises the canonical
  /// cycle Error.
  bool run_on_streams();
  struct Node {
    std::function<void()> fn;
    std::vector<NodeId> out;  ///< successors
    index_t indegree = 0;
  };
  void declare(NodeId node, const void* space, index_t row0, index_t row1,
               index_t col0, index_t col1, AuditAccess::Mode mode);

  std::vector<Node> nodes_;
  index_t num_edges_ = 0;
  bool ran_ = false;
  std::unique_ptr<AccessAuditor> auditor_;  ///< null unless HODLRX_AUDIT=on
};

}  // namespace hodlrx
