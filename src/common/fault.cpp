#include "common/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hodlrx {

namespace fault {

namespace {

constexpr int kNumSites = static_cast<int>(Site::kNumSites);

const char* const kSiteNames[kNumSites] = {"getrf.pivot", "svd.sweeps",
                                           "aca.stall", "workspace.alloc",
                                           "device.alloc"};

std::atomic<std::uint64_t> g_occurrence[kNumSites];
std::atomic<std::uint64_t> g_injected[kNumSites];
std::atomic<std::uint64_t> g_recovered[kNumSites];

/// The spec for `site` in HODLRX_FAULT ("site[:nth]" tokens, comma
/// separated): 0 when the site is not armed, otherwise the 1-based
/// occurrence to fire on (a missing or non-positive :nth means 1).
std::uint64_t armed_nth(Site site) {
  const char* env = std::getenv("HODLRX_FAULT");
  if (env == nullptr || *env == '\0') return 0;
  const char* name = kSiteNames[static_cast<int>(site)];
  const std::size_t len = std::strlen(name);
  const char* p = env;
  while (*p != '\0') {
    while (*p == ',' || *p == ' ') ++p;
    if (*p == '\0') break;
    const char* end = p;
    while (*end != '\0' && *end != ',') ++end;
    if (std::strncmp(p, name, len) == 0) {
      const char* rest = p + len;
      while (rest < end && *rest == ' ') ++rest;
      if (rest == end) return 1;
      if (*rest == ':') {
        char* num_end = nullptr;
        const long long v = std::strtoll(rest + 1, &num_end, 10);
        return v > 0 ? static_cast<std::uint64_t>(v) : 1;
      }
      // Prefix of a longer token: not this site, keep scanning.
    }
    p = end;
  }
  return 0;
}

}  // namespace

const char* site_name(Site site) {
  return kSiteNames[static_cast<int>(site)];
}

bool should_fire(Site site) {
  const std::uint64_t nth = armed_nth(site);
  if (nth == 0) return false;
  const int i = static_cast<int>(site);
  const std::uint64_t occurrence =
      g_occurrence[i].fetch_add(1, std::memory_order_relaxed) + 1;
  if (occurrence != nth) return false;
  g_injected[i].fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace fault

namespace fault_stats {

std::uint64_t injected() {
  std::uint64_t total = 0;
  for (const auto& c : fault::g_injected)
    total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t recovered() {
  std::uint64_t total = 0;
  for (const auto& c : fault::g_recovered)
    total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t injected(fault::Site site) {
  return fault::g_injected[static_cast<int>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t recovered(fault::Site site) {
  return fault::g_recovered[static_cast<int>(site)].load(
      std::memory_order_relaxed);
}

void reset() {
  for (int i = 0; i < fault::kNumSites; ++i) {
    fault::g_occurrence[i].store(0, std::memory_order_relaxed);
    fault::g_injected[i].store(0, std::memory_order_relaxed);
    fault::g_recovered[i].store(0, std::memory_order_relaxed);
  }
}

namespace detail {
void add_recovered(fault::Site site) {
  fault::g_recovered[static_cast<int>(site)].fetch_add(
      1, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace fault_stats

bool check_finite_enabled() {
  const char* env = std::getenv("HODLRX_CHECK_FINITE");
  if (env == nullptr || *env == '\0') return false;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "OFF") != 0;
}

}  // namespace hodlrx
