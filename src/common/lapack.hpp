#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/blas.hpp"
#include "common/matrix.hpp"
#include "common/scalar.hpp"

/// \file lapack.hpp
/// LAPACK-like dense factorizations on column-major views: partially pivoted
/// LU (blocked), triangular solves, Householder QR, column-pivoted QR, and a
/// one-sided Jacobi SVD for small matrices. These are the primitives behind
/// both the serial solvers and the batched device engine.

namespace hodlrx {

enum class Uplo : char { Lower = 'L', Upper = 'U' };
enum class Diag : char { Unit = 'U', NonUnit = 'N' };

/// In-place LU with partial pivoting: A = P * L * U. `ipiv[k]` is the row
/// swapped with row k at step k (LAPACK convention, 0-based). Throws
/// hodlrx::Error on an exactly zero pivot.
template <typename T>
void getrf(MatrixView<T> a, index_t* ipiv);

/// getrf with intra-problem parallelism: the right-looking blocked driver
/// runs its trailing GEMM update through gemm_parallel. This is the batched
/// engine's "stream mode" LU for few, large problems (Sec. III-C).
template <typename T>
void getrf_parallel(MatrixView<T> a, index_t* ipiv);

/// In-place LU without pivoting; throws on a zero pivot. Used by the
/// identity-diagonal K-matrix variant (paper Sec. III-C, last paragraph).
template <typename T>
void getrf_nopivot(MatrixView<T> a);

/// getrf_nopivot with a gemm_parallel trailing update (stream-mode LU).
template <typename T>
void getrf_nopivot_parallel(MatrixView<T> a);

/// Apply the row interchanges recorded in `ipiv[0..npiv)` to B
/// (forward=true: same order as factorization; false: inverse order).
template <typename T>
void laswp(MatrixView<T> b, const index_t* ipiv, index_t npiv, bool forward);

/// Solve A X = B in place given getrf output (B overwritten with X): the
/// row interchanges are applied ONCE, then the L and U solves run through
/// the blocked TRSM engine (trsm_kernel.hpp).
template <typename T>
void getrs(NoDeduce<ConstMatrixView<T>> lu, const index_t* ipiv,
           MatrixView<T> b);

/// Solve A X = B in place given getrf_nopivot output.
template <typename T>
void getrs_nopivot(NoDeduce<ConstMatrixView<T>> lu, MatrixView<T> b);

/// getrs with intra-problem parallelism: pivots applied once, then the
/// blocked L/U solves run with the RHS columns split across the persistent
/// pool. The batched engine's "stream mode" solve for few, large problems.
template <typename T>
void getrs_parallel(NoDeduce<ConstMatrixView<T>> lu, const index_t* ipiv,
                    MatrixView<T> b);

/// getrs_nopivot with pool-parallel blocked solves (stream-mode solve).
template <typename T>
void getrs_nopivot_parallel(NoDeduce<ConstMatrixView<T>> lu, MatrixView<T> b);

/// Triangular solve (left side, no transpose): B <- op(A)^{-1} B. Dispatches
/// into the blocked TRSM engine above the diagonal-block size (see
/// trsm_kernel.hpp); small problems keep the reference kernel.
template <typename T>
void trsm_left(Uplo uplo, Diag diag, NoDeduce<ConstMatrixView<T>> a,
               MatrixView<T> b);

/// Householder QR factorization in compact form (reflectors below R, taus).
template <typename T>
struct QRFactors {
  Matrix<T> factors;    ///< m x n; R in the upper triangle, reflectors below
  std::vector<T> tau;   ///< min(m, n) Householder scalars
};

/// The panel width of the blocked Householder drivers (geqrf_inplace,
/// thin_q_inplace and the strided-batched QR engine) comes from the shared
/// blocking resolver: resolved_blocking<T>().qr_nb (blocking.hpp), i.e.
/// HODLRX_QR_NB override > probed cache model > the static 16.

/// Unblocked Householder QR, in place: R in the upper triangle, reflectors
/// below the diagonal, `tau[0..min(m,n))` scalars. This is the panel kernel
/// of the blocked drivers and the batched engine; it is also the seed
/// reference path the benches compare against.
template <typename T>
void geqrf_panel(MatrixView<T> a, T* tau);

/// In-place thin Q of an UNBLOCKED panel (LAPACK org2r): `a` holds geqrf
/// reflectors in all of its `a.cols <= a.rows` columns and is overwritten
/// with the orthonormal Q columns.
template <typename T>
void thin_q_panel(MatrixView<T> a, const T* tau);

/// Copy the unit-lower-trapezoid reflectors of a factored panel into `v`
/// (same shape) with an explicit unit diagonal and zeros above — the layout
/// the compact-WY block-reflector GEMMs consume.
template <typename T>
void copy_reflectors(NoDeduce<ConstMatrixView<T>> panel, MatrixView<T> v);

/// Forward columnwise compact-WY triangular factor (LAPACK larft): given the
/// explicit reflectors `v` (from copy_reflectors) and their taus, fill the
/// upper-triangular `t` (ib x ib, ib = v.cols) so that
///   H_0 H_1 ... H_{ib-1} = I - V T V^H.
/// The inner products are batched into one Gram GEMM (G = V^H V) so the
/// dominant work runs at engine speed instead of as latency-bound dots.
template <typename T>
void larft_forward(NoDeduce<ConstMatrixView<T>> v, const T* tau,
                   MatrixView<T> t);

/// Blocked Householder QR, in place (same output layout as geqrf_panel):
/// panels of resolved_blocking<T>().qr_nb columns are factored unblocked,
/// then the trailing
/// matrix is updated with the compact-WY block reflector — three GEMMs that
/// run through the packed engine instead of per-reflector strided loops.
template <typename T>
void geqrf_inplace(MatrixView<T> a, T* tau);

/// geqrf_inplace with intra-problem parallelism: the flop-carrying trailing
/// multiply of every block reflector runs through gemm_parallel. The batched
/// engine's stream-mode QR for few, large problems (mirrors getrf_parallel).
template <typename T>
void geqrf_inplace_parallel(MatrixView<T> a, T* tau);

/// Overwrite `a` (m x k, k <= m, holding geqrf reflectors in ALL of its
/// columns) with the explicit thin Q, blocked: block reflectors are applied
/// back-to-front through the packed GEMM engine (LAPACK orgqr).
template <typename T>
void thin_q_inplace(MatrixView<T> a, const T* tau);

/// thin_q_inplace with the trailing multiplies through gemm_parallel
/// (stream-mode thin Q).
template <typename T>
void thin_q_inplace_parallel(MatrixView<T> a, const T* tau);

template <typename T>
QRFactors<T> geqrf(ConstMatrixView<T> a);
template <typename T>
QRFactors<T> geqrf(MatrixView<T> a) {
  return geqrf(ConstMatrixView<T>(a));
}
template <typename T>
QRFactors<T> geqrf(const Matrix<T>& a) {
  return geqrf(a.view());
}

/// Explicit thin Q (m x min(m,n)) from geqrf output.
template <typename T>
Matrix<T> thin_q(const QRFactors<T>& qr);

/// Flops the blocked QR/thin-Q drivers' internal GEMM calls book under kGemm
/// on their own (the Gram product of larft_forward plus the three
/// block-reflector multiplies per panel) — mirrors the panel loops exactly.
/// `kmax` is the number of reflector columns and `ntotal` the column count
/// the trailing window is measured against (n for geqrf, min(m,n) for
/// thin_q). Shared by the single-problem and strided-batched drivers so the
/// kOther remainder subtraction cannot drift between them.
template <typename T>
std::uint64_t blocked_qr_internal_flops(index_t m, index_t kmax,
                                        index_t ntotal, index_t nb);

/// The seed's unblocked QR + per-reflector thin Q, kept callable so tests
/// and benches can cross-check the blocked engine against it (the same role
/// trsm_left_reference plays for the TRSM engine).
template <typename T>
QRFactors<T> geqrf_reference(ConstMatrixView<T> a);
template <typename T>
Matrix<T> thin_q_reference(const QRFactors<T>& qr);

/// Explicit R factor (min(m,n) x n upper triangular) from geqrf output.
template <typename T>
Matrix<T> r_factor(const QRFactors<T>& qr);

/// Column-pivoted QR, truncated at `tol` (relative to the largest initial
/// column norm) or at `max_rank` columns, whichever comes first.
template <typename T>
struct CPQRFactors {
  Matrix<T> factors;          ///< as geqrf, but only `rank` reflectors valid
  std::vector<T> tau;
  std::vector<index_t> jpvt;  ///< column permutation: A(:, jpvt) = Q R
  index_t rank = 0;
};

template <typename T>
CPQRFactors<T> geqp3(ConstMatrixView<T> a, NoDeduce<real_t<T>> tol,
                     index_t max_rank);
template <typename T>
CPQRFactors<T> geqp3(MatrixView<T> a, NoDeduce<real_t<T>> tol,
                     index_t max_rank) {
  return geqp3(ConstMatrixView<T>(a), tol, max_rank);
}
template <typename T>
CPQRFactors<T> geqp3(const Matrix<T>& a, NoDeduce<real_t<T>> tol,
                     index_t max_rank) {
  return geqp3(a.view(), tol, max_rank);
}

/// Thin SVD A = U diag(s) V^H via one-sided Jacobi. Intended for small
/// matrices (recompression cores, validation); singular values descending.
template <typename T>
struct SVDResult {
  Matrix<T> u;               ///< m x min(m,n)
  std::vector<real_t<T>> s;  ///< min(m,n), descending
  Matrix<T> v;               ///< n x min(m,n)
  int sweeps = 0;            ///< cyclic Jacobi sweeps executed
  bool converged = true;     ///< false: sweep budget exhausted (see svd_stats)
};

/// Counters of the Jacobi SVD machinery (relaxed atomics, process-wide).
/// Tests use them to assert (a) that the batched compression sweep performs
/// ZERO per-block SVD pool tasks and (b) that non-convergence never passes
/// silently — the pre-PR-4 jacobi_svd returned garbage without a trace when
/// it exhausted its sweep budget.
namespace svd_stats {
/// Serial single-problem jacobi_svd calls (the per-block path the batched
/// compression sweep must NOT take).
std::uint64_t serial_svds();
/// Problems (serial or batched) that exhausted the sweep budget.
std::uint64_t nonconverged();
/// jacobi_svd_strided_batched calls that took the sweep-synchronized path.
std::uint64_t batched_sweeps();
/// Cross-batch rotation launches (one pool dispatch rotating every
/// not-yet-converged problem once, fed by one strided Gram GEMM launch).
std::uint64_t sweep_launches();
void reset();
namespace detail {  // increment hooks for the drivers (lapack + batched)
void add_serial();
void add_nonconverged(std::uint64_t n);
void add_batched_sweep();
void add_sweep_launch();
}  // namespace detail
}  // namespace svd_stats

/// Pivot-growth tracking for the LU drivers (relaxed atomics, process-wide;
/// the FactorReport's max_pivot_growth column). Tracking is OFF by default —
/// the growth scan adds a full pass over every factored block — and is
/// enabled ref-counted while a factorization collects a report.
namespace lu_stats {
/// Largest max|LU| / max|A| entry-growth ratio recorded since reset().
double max_pivot_growth();
void reset();
/// RAII ref-counted enable; pass false for a no-op guard.
class ScopedTracking {
 public:
  explicit ScopedTracking(bool enable);
  ~ScopedTracking();
  ScopedTracking(const ScopedTracking&) = delete;
  ScopedTracking& operator=(const ScopedTracking&) = delete;

 private:
  bool enabled_;
};
namespace detail {  // hooks for the getrf drivers
bool tracking();
void record_growth(double ratio);
}  // namespace detail
}  // namespace lu_stats

/// Sweep budget of every one-sided Jacobi driver. Read from
/// HODLRX_SVD_SWEEPS through the shared env parser on EVERY call (not
/// cached), so tests and long-running jobs can retune it; default 42.
int svd_max_sweeps();

/// Convergence report of an in-place one-sided Jacobi run.
struct SvdInfo {
  int sweeps = 0;
  bool converged = true;
};

namespace detail {
/// Robust reciprocal. For complex types this is Smith's algorithm written
/// out in REAL arithmetic: the parameter helpers below are inline templates
/// instantiated both in lapack.cpp (full Annex-G complex arithmetic) and in
/// the batch-kernel TU, which is compiled with -fcx-limited-range — the
/// linker keeps ONE copy, so a complex/complex division here would silently
/// take the limited-range form (naive conj(z)/|z|^2, whose |z|^2 under- or
/// overflows) whenever that TU's instantiation wins. Component-wise real
/// ops make the helpers independent of which instantiation is kept.
template <typename T>
T recip_smith(T z) {
  if constexpr (is_complex_v<T>) {
    using R = real_t<T>;
    const R c = z.real(), d = z.imag();
    if (std::abs(c) >= std::abs(d)) {
      const R ratio = d / c;
      const R denom = c + d * ratio;
      return T{R{1} / denom, -ratio / denom};
    }
    const R ratio = c / d;
    const R denom = c * ratio + d;
    return T{ratio / denom, R{-1} / denom};
  } else {
    return T{1} / z;
  }
}
}  // namespace detail

/// The branchy scalar parameter step of one Householder reflector,
/// factored out so the scalar kernel (make_householder) and the
/// across-batch SIMD panel (geqrf_panel_batch) compute EXACTLY the same
/// tau/scale/beta from the same (alpha, xnorm) — the formulas cannot drift
/// apart. `apply == false` reproduces the scalar early-outs (zero tail on a
/// real column, beta == 0): tau = 0, scale = 1 and beta = alpha are exact
/// no-ops when folded into vectorized column updates.
/// Divisions are by REAL scalars or via detail::recip_smith only — see the
/// note there on -fcx-limited-range.
template <typename T>
struct HouseholderParams {
  T tau{};        ///< reflector scalar (0 = identity)
  T scale{T{1}};  ///< multiplier for x[1..n) (1 = identity)
  T beta{};       ///< new diagonal entry (alpha when !apply)
  bool apply = false;
};
template <typename T>
HouseholderParams<T> householder_params(T alpha, real_t<T> xnorm) {
  using R = real_t<T>;
  HouseholderParams<T> p;
  p.beta = alpha;
  if (xnorm == R{0} && !is_complex_v<T>) return p;
  R beta = std::hypot(abs_s(alpha), xnorm);
  // Choose sign to avoid cancellation: beta has opposite sign of Re(alpha).
  if (ScalarTraits<T>::real(alpha) > R{0}) beta = -beta;
  if (beta == R{0}) return p;
  const T betaT = T{beta};
  p.tau = (betaT - alpha) / beta;  // real divisor: component-wise division
  p.scale = detail::recip_smith(alpha - betaT);
  p.beta = betaT;
  p.apply = true;
  return p;
}

/// The per-pair parameter step of one one-sided Jacobi rotation, shared by
/// jacobi_sweep_gram and the across-batch sweep (jacobi_sweep_batch) for
/// the same reason as householder_params. `alpha`/`beta` are the (already
/// non-negative-clamped) diagonal Gram entries, `gamma` the off-diagonal
/// one and `gmax` the LARGEST Gram diagonal of the problem (sampled at
/// sweep start — the scale reference of the deflation test below);
/// `rotate == false` means the pair passed the convergence or deflation
/// test and (c, s) = (1, 0) is the identity rotation. Divisions and the
/// phase product are by REAL scalars only — see detail::recip_smith on why.
template <typename T>
struct JacobiRotation {
  real_t<T> c{1};
  T s{};
  bool rotate = false;
};
template <typename T>
JacobiRotation<T> jacobi_rotation_params(real_t<T> alpha, real_t<T> beta,
                                         T gamma, real_t<T> tol,
                                         real_t<T> gmax) {
  using R = real_t<T>;
  JacobiRotation<T> r;
  const R gabs = abs_s(gamma);
  if (gabs <= tol * std::sqrt(alpha * beta) || gabs == R{0}) return r;
  // Deflation (the gesvj idea): a column whose Gram diagonal sits below
  // (64 eps)^2 * gmax — column norm below 64 eps times the largest column —
  // is numerically ZERO: its entries are rounding noise left behind by
  // earlier rotations (a rotation against a big column deposits
  // O(eps * ||big||) into the small one), and its correlations are pure
  // roundoff. Rotating such a pair only swaps fresh noise around, and
  // because the RELATIVE convergence test above cannot tell noise from
  // signal, noise pairs can re-correlate every sweep and stagnate the
  // driver — observed both as a permanent cycle (float, an exhausted
  // duplicate column re-correlating with its dense neighbor) and as ~30
  // extra sweeps of linear-rate decorrelation among a clique of dead
  // columns (complex<double>, rank-deficient 32x32). The reference scale
  // must be the problem's LARGEST diagonal, not the pair's: dead-column
  // pairs have similar tiny norms, so a pairwise ratio test never fires.
  // Skipping them is exact to working accuracy — each contributes a
  // singular value below 64 eps * ||A||, beneath the SVD's own backward
  // error.
  constexpr R kDeflateEps = R{64} * eps_v<R>;
  if (std::min(alpha, beta) <= kDeflateEps * kDeflateEps * gmax) return r;
  // Phase so that the rotated off-diagonal is real, then a real Jacobi
  // rotation (c, t). gamma / gabs is a division by a REAL scalar
  // (component-wise for complex T), identical in value to the full complex
  // division by T{gabs} but immune to -fcx-limited-range.
  const T phase = gamma / gabs;
  const R zeta = (beta - alpha) / (R{2} * gabs);
  const R t = (zeta >= R{0} ? R{1} : R{-1}) /
              (std::abs(zeta) + std::sqrt(R{1} + zeta * zeta));
  r.c = R{1} / std::sqrt(R{1} + t * t);
  r.s = phase * (r.c * t);
  r.rotate = true;
  return r;
}

/// One cyclic sweep of one-sided Jacobi rotations over all column pairs of
/// the TALL factor `w` (m x n, m >= n), accumulating the right rotations
/// into `v` (n x n) and reading the rotation angles from the Gram matrix
/// `g = w^H w` (n x n, computed by the caller at sweep start — ONE GEMM at
/// engine speed instead of O(n^2) latency-bound length-m dot products).
/// Every rotation is applied to w, v AND g, so g tracks w exactly within
/// the sweep; callers refresh it per sweep so roundoff cannot accumulate
/// across sweeps. Returns true when any rotation fired. This is the shared
/// kernel of the blocked serial driver and of the batched engine's
/// per-sweep pool launch.
template <typename T>
bool jacobi_sweep_gram(MatrixView<T> w, MatrixView<T> v, MatrixView<T> g,
                       NoDeduce<real_t<T>> tol);

/// Sort the rotated factor by descending column norm and normalize: on
/// entry `w` (m x n) holds U * diag(s) column-scrambled and `v` the
/// accumulated rotations; on return `w` holds U (zero columns where s = 0),
/// `v` is permuted to match and `s[0..n)` is descending. Shared epilogue of
/// the serial and batched drivers.
template <typename T>
void jacobi_finalize(MatrixView<T> w, MatrixView<T> v, real_t<T>* s);

/// Blocked serial one-sided Jacobi, in place: `w` (m x n, m >= n — callers
/// pass A^H for wide blocks) is overwritten with U, `v` (n x n) with V and
/// `s` with the descending singular values, so A = U diag(s) V^H. "Blocked"
/// = each sweep's pair dot products come from one Gram GEMM
/// (jacobi_sweep_gram) instead of scalar loops. Non-convergence within
/// svd_max_sweeps() is counted in svd_stats, reported in the result, and
/// HODLRX_REQUIREd in debug builds.
template <typename T>
SvdInfo jacobi_svd_inplace(MatrixView<T> w, MatrixView<T> v, real_t<T>* s);

template <typename T>
SVDResult<T> jacobi_svd(ConstMatrixView<T> a);
template <typename T>
SVDResult<T> jacobi_svd(MatrixView<T> a) {
  return jacobi_svd(ConstMatrixView<T>(a));
}
template <typename T>
SVDResult<T> jacobi_svd(const Matrix<T>& a) {
  return jacobi_svd(a.view());
}

/// The seed's one-sided Jacobi (per-pair scalar dot products), kept
/// callable as fallback, test oracle and bench baseline — the same role
/// geqrf_reference plays for the QR engine. Unlike the seed it reports
/// sweeps/converged instead of silently returning garbage on sweep
/// exhaustion.
template <typename T>
SVDResult<T> jacobi_svd_reference(ConstMatrixView<T> a);

/// Dense solve helper: X = A^{-1} B (A copied, LU-factorized internally).
template <typename T>
Matrix<T> dense_solve(ConstMatrixView<T> a, NoDeduce<ConstMatrixView<T>> b);
template <typename T>
Matrix<T> dense_solve(const Matrix<T>& a, NoDeduce<ConstMatrixView<T>> b) {
  return dense_solve(a.view(), b);
}

}  // namespace hodlrx
