#pragma once

#include <vector>

#include "common/blas.hpp"
#include "common/matrix.hpp"

/// \file lapack.hpp
/// LAPACK-like dense factorizations on column-major views: partially pivoted
/// LU (blocked), triangular solves, Householder QR, column-pivoted QR, and a
/// one-sided Jacobi SVD for small matrices. These are the primitives behind
/// both the serial solvers and the batched device engine.

namespace hodlrx {

enum class Uplo : char { Lower = 'L', Upper = 'U' };
enum class Diag : char { Unit = 'U', NonUnit = 'N' };

/// In-place LU with partial pivoting: A = P * L * U. `ipiv[k]` is the row
/// swapped with row k at step k (LAPACK convention, 0-based). Throws
/// hodlrx::Error on an exactly zero pivot.
template <typename T>
void getrf(MatrixView<T> a, index_t* ipiv);

/// getrf with intra-problem parallelism: the right-looking blocked driver
/// runs its trailing GEMM update through gemm_parallel. This is the batched
/// engine's "stream mode" LU for few, large problems (Sec. III-C).
template <typename T>
void getrf_parallel(MatrixView<T> a, index_t* ipiv);

/// In-place LU without pivoting; throws on a zero pivot. Used by the
/// identity-diagonal K-matrix variant (paper Sec. III-C, last paragraph).
template <typename T>
void getrf_nopivot(MatrixView<T> a);

/// getrf_nopivot with a gemm_parallel trailing update (stream-mode LU).
template <typename T>
void getrf_nopivot_parallel(MatrixView<T> a);

/// Apply the row interchanges recorded in `ipiv[0..npiv)` to B
/// (forward=true: same order as factorization; false: inverse order).
template <typename T>
void laswp(MatrixView<T> b, const index_t* ipiv, index_t npiv, bool forward);

/// Solve A X = B in place given getrf output (B overwritten with X): the
/// row interchanges are applied ONCE, then the L and U solves run through
/// the blocked TRSM engine (trsm_kernel.hpp).
template <typename T>
void getrs(NoDeduce<ConstMatrixView<T>> lu, const index_t* ipiv,
           MatrixView<T> b);

/// Solve A X = B in place given getrf_nopivot output.
template <typename T>
void getrs_nopivot(NoDeduce<ConstMatrixView<T>> lu, MatrixView<T> b);

/// getrs with intra-problem parallelism: pivots applied once, then the
/// blocked L/U solves run with the RHS columns split across the persistent
/// pool. The batched engine's "stream mode" solve for few, large problems.
template <typename T>
void getrs_parallel(NoDeduce<ConstMatrixView<T>> lu, const index_t* ipiv,
                    MatrixView<T> b);

/// getrs_nopivot with pool-parallel blocked solves (stream-mode solve).
template <typename T>
void getrs_nopivot_parallel(NoDeduce<ConstMatrixView<T>> lu, MatrixView<T> b);

/// Triangular solve (left side, no transpose): B <- op(A)^{-1} B. Dispatches
/// into the blocked TRSM engine above the diagonal-block size (see
/// trsm_kernel.hpp); small problems keep the reference kernel.
template <typename T>
void trsm_left(Uplo uplo, Diag diag, NoDeduce<ConstMatrixView<T>> a,
               MatrixView<T> b);

/// Householder QR factorization in compact form (reflectors below R, taus).
template <typename T>
struct QRFactors {
  Matrix<T> factors;    ///< m x n; R in the upper triangle, reflectors below
  std::vector<T> tau;   ///< min(m, n) Householder scalars
};

template <typename T>
QRFactors<T> geqrf(ConstMatrixView<T> a);
template <typename T>
QRFactors<T> geqrf(MatrixView<T> a) {
  return geqrf(ConstMatrixView<T>(a));
}
template <typename T>
QRFactors<T> geqrf(const Matrix<T>& a) {
  return geqrf(a.view());
}

/// Explicit thin Q (m x min(m,n)) from geqrf output.
template <typename T>
Matrix<T> thin_q(const QRFactors<T>& qr);

/// Explicit R factor (min(m,n) x n upper triangular) from geqrf output.
template <typename T>
Matrix<T> r_factor(const QRFactors<T>& qr);

/// Column-pivoted QR, truncated at `tol` (relative to the largest initial
/// column norm) or at `max_rank` columns, whichever comes first.
template <typename T>
struct CPQRFactors {
  Matrix<T> factors;          ///< as geqrf, but only `rank` reflectors valid
  std::vector<T> tau;
  std::vector<index_t> jpvt;  ///< column permutation: A(:, jpvt) = Q R
  index_t rank = 0;
};

template <typename T>
CPQRFactors<T> geqp3(ConstMatrixView<T> a, NoDeduce<real_t<T>> tol,
                     index_t max_rank);
template <typename T>
CPQRFactors<T> geqp3(MatrixView<T> a, NoDeduce<real_t<T>> tol,
                     index_t max_rank) {
  return geqp3(ConstMatrixView<T>(a), tol, max_rank);
}
template <typename T>
CPQRFactors<T> geqp3(const Matrix<T>& a, NoDeduce<real_t<T>> tol,
                     index_t max_rank) {
  return geqp3(a.view(), tol, max_rank);
}

/// Thin SVD A = U diag(s) V^H via one-sided Jacobi. Intended for small
/// matrices (recompression cores, validation); singular values descending.
template <typename T>
struct SVDResult {
  Matrix<T> u;               ///< m x min(m,n)
  std::vector<real_t<T>> s;  ///< min(m,n), descending
  Matrix<T> v;               ///< n x min(m,n)
};

template <typename T>
SVDResult<T> jacobi_svd(ConstMatrixView<T> a);
template <typename T>
SVDResult<T> jacobi_svd(MatrixView<T> a) {
  return jacobi_svd(ConstMatrixView<T>(a));
}
template <typename T>
SVDResult<T> jacobi_svd(const Matrix<T>& a) {
  return jacobi_svd(a.view());
}

/// Dense solve helper: X = A^{-1} B (A copied, LU-factorized internally).
template <typename T>
Matrix<T> dense_solve(ConstMatrixView<T> a, NoDeduce<ConstMatrixView<T>> b);
template <typename T>
Matrix<T> dense_solve(const Matrix<T>& a, NoDeduce<ConstMatrixView<T>> b) {
  return dense_solve(a.view(), b);
}

}  // namespace hodlrx
