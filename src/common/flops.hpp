#pragma once

#include <atomic>
#include <cstdint>

#include "common/config.hpp"

/// \file flops.hpp
/// Thread-safe floating-point-operation accounting, used to report GFlop/s
/// as in the paper's Fig. 9. Counters use relaxed atomics: exactness of the
/// total matters, ordering does not.

namespace hodlrx {

/// Global flop counters, one per operation family.
class FlopCounter {
 public:
  enum Category { kGemm = 0, kLu = 1, kTrsm = 2, kOther = 3, kNumCategories };

  static FlopCounter& instance();

  void add(Category c, std::uint64_t flops) {
    counters_[c].fetch_add(flops, std::memory_order_relaxed);
  }
  std::uint64_t get(Category c) const {
    return counters_[c].load(std::memory_order_relaxed);
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (int c = 0; c < kNumCategories; ++c) t += get(Category(c));
    return t;
  }
  void reset() {
    for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  }

  /// Flop formulas (real-arithmetic counts; complex ops are scaled by 4 for
  /// multiplies+adds, matching common practice).
  template <typename T>
  static std::uint64_t gemm_flops(index_t m, index_t n, index_t k);
  template <typename T>
  static std::uint64_t getrf_flops(index_t n);
  template <typename T>
  static std::uint64_t getrs_flops(index_t n, index_t nrhs);

 private:
  std::atomic<std::uint64_t> counters_[kNumCategories] = {};
};

/// RAII helper: snapshot on construction, `delta()` gives flops since then.
class FlopRegion {
 public:
  FlopRegion() : start_(FlopCounter::instance().total()) {}
  std::uint64_t delta() const {
    return FlopCounter::instance().total() - start_;
  }

 private:
  std::uint64_t start_;
};

}  // namespace hodlrx
