#pragma once

#include <cstddef>

/// \file hwinfo.hpp
/// Startup probe of the cache topology and SIMD capability the blocking
/// model (blocking.hpp) derives its per-machine defaults from.
///
/// Probe order (first source that yields a plausible L1d wins, recorded in
/// `source` so benches can report where the numbers came from):
///   1. CPUID — leaf 4 (Intel deterministic cache parameters) or leaf
///      0x8000001D (AMD) for per-level size/line/associativity, leaves 1/7
///      for SSE2/AVX/FMA/AVX2/AVX-512F. x86 only.
///   2. sysconf(_SC_LEVEL*_*CACHE_SIZE) — glibc's view of the same data.
///   3. /sys/devices/system/cpu/cpu0/cache/index*/ — sysfs, for libcs whose
///      sysconf does not forward the kernel's cacheinfo.
///   4. Conservative defaults (32 KiB / 512 KiB / 8 MiB, 64-byte lines) so
///      the model never sees zeros on exotic hosts.
///
/// The probe runs once per process (hwinfo()); probe_hwinfo() performs a
/// fresh uncached probe for tests.

namespace hodlrx {

struct HwInfo {
  std::size_t l1d_bytes = 0;   ///< per-core L1 data cache
  std::size_t l2_bytes = 0;    ///< per-core (or per-CCX) unified L2
  std::size_t l3_bytes = 0;    ///< last-level cache, 0 when absent/unknown
  std::size_t line_bytes = 0;  ///< cache line (coherency granule)
  int l1d_assoc = 0;           ///< L1d ways, 0 when unknown
  int l2_assoc = 0;            ///< L2 ways, 0 when unknown
  int logical_cpus = 1;        ///< online logical CPUs visible to us
  bool sse2 = false;
  bool avx = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;
  /// Widest usable SIMD register in bytes (64 = AVX-512, 32 = AVX/AVX2,
  /// 16 = SSE2, 0 = unknown/scalar). Derived from the feature bits, so it is
  /// valid even when the cache probe fell back to defaults.
  std::size_t simd_bytes = 0;
  char vendor[13] = {0};       ///< CPUID vendor string, "" off x86
  /// Coarse machine family the tile/blocking model keys on:
  /// "x86-avx512" | "x86-avx2" | "x86-sse" | "generic".
  const char* family = "generic";
  /// Which rung of the probe ladder produced the cache numbers:
  /// "cpuid" | "sysconf" | "sysfs" | "default".
  const char* source = "default";
};

/// The process-wide probe result (probed once, on first use; thread-safe).
const HwInfo& hwinfo();

/// Run the full probe ladder afresh (no caching). Tests use this to check
/// the probe is deterministic; production code should call hwinfo().
HwInfo probe_hwinfo();

}  // namespace hodlrx
