#pragma once

#include <condition_variable>
#include <mutex>

/// \file annotations.hpp
/// Clang thread-safety annotations (no-ops elsewhere) and the annotated
/// locking vocabulary the runtime uses.
///
/// The concurrency invariants of the pool/scheduler layer — which fields a
/// mutex guards, which functions require it held — used to live only in
/// comments. These macros turn them into declarations clang's
/// -Wthread-safety analysis can check at compile time: a CI job builds the
/// tree with clang and -Werror=thread-safety, so "forgot to take the lock"
/// and "read a guarded field after unlocking" become build failures instead
/// of TSan lottery tickets (docs/static-analysis.md). Under gcc (the default
/// toolchain here) every macro expands to nothing and the wrappers compile
/// down to the std primitives they hold.
///
/// Conventions:
///  - Shared state guarded by a lock is declared `T field HODLRX_GUARDED_BY(mu);`.
///  - Functions that must be called with the lock held are annotated
///    `HODLRX_REQUIRES(mu)`; the analysis checks every call site.
///  - Condition-variable waits use `CondVar` + an explicit
///    `while (!pred) cv.wait(mu);` loop inside a locked scope. Lambda
///    predicates passed to std::condition_variable::wait are analyzed at the
///    lambda's definition (without the caller's lock set) and would warn, so
///    the runtime spells the loops out.
///  - Atomics are self-synchronizing and stay unannotated (fault_stats,
///    sched_stats, audit_stats, in-degree arrays, device counters).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HODLRX_TSA(x) __attribute__((x))
#endif
#endif
#ifndef HODLRX_TSA
#define HODLRX_TSA(x)  // no-op off clang
#endif

#define HODLRX_CAPABILITY(x) HODLRX_TSA(capability(x))
#define HODLRX_SCOPED_CAPABILITY HODLRX_TSA(scoped_lockable)
#define HODLRX_GUARDED_BY(x) HODLRX_TSA(guarded_by(x))
#define HODLRX_PT_GUARDED_BY(x) HODLRX_TSA(pt_guarded_by(x))
#define HODLRX_ACQUIRE(...) HODLRX_TSA(acquire_capability(__VA_ARGS__))
#define HODLRX_RELEASE(...) HODLRX_TSA(release_capability(__VA_ARGS__))
#define HODLRX_TRY_ACQUIRE(...) HODLRX_TSA(try_acquire_capability(__VA_ARGS__))
#define HODLRX_REQUIRES(...) HODLRX_TSA(requires_capability(__VA_ARGS__))
#define HODLRX_EXCLUDES(...) HODLRX_TSA(locks_excluded(__VA_ARGS__))
#define HODLRX_RETURN_CAPABILITY(x) HODLRX_TSA(lock_returned(x))
#define HODLRX_NO_THREAD_SAFETY_ANALYSIS HODLRX_TSA(no_thread_safety_analysis)

namespace hodlrx {

/// std::mutex with the capability attribute, so fields can be declared
/// HODLRX_GUARDED_BY(mu) and functions HODLRX_REQUIRES(mu).
class HODLRX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HODLRX_ACQUIRE() { mu_.lock(); }
  void unlock() HODLRX_RELEASE() { mu_.unlock(); }
  bool try_lock() HODLRX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock for Mutex. Supports mid-scope unlock()/lock() (the TaskGraph
/// worker loop drops the lock around node bodies); the destructor releases
/// only if still held.
class HODLRX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HODLRX_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HODLRX_RELEASE() {
    if (held_) mu_.unlock();
  }
  void unlock() HODLRX_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() HODLRX_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable that waits on a Mutex directly (condition_variable_any
/// accepts any BasicLockable), keeping the wait inside the annotated
/// capability instead of smuggling a std::unique_lock past the analysis.
/// Use as:  while (!pred) cv.wait(mu);   // with mu held
class CondVar {
 public:
  /// Atomically release `mu`, block, and reacquire before returning. Caller
  /// must hold `mu` (checked by the analysis).
  void wait(Mutex& mu) HODLRX_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hodlrx
