#pragma once

#include <cstddef>
#include <cstdint>

/// \file config.hpp
/// Project-wide fundamental types and constants.

namespace hodlrx {

/// Signed index type used for all matrix/vector dimensions (BLAS-style).
/// Signed so that reverse loops and differences are safe.
using index_t = std::int64_t;

/// Version string of the library.
inline constexpr const char* version() { return "1.0.0"; }

/// Cache-line/SIMD alignment (bytes) used for matrix storage.
inline constexpr std::size_t kAlignment = 64;

}  // namespace hodlrx
