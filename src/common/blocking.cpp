#include "common/blocking.hpp"

#include <atomic>
#include <cctype>
#include <complex>
#include <cstring>
#include <mutex>

#include "common/env.hpp"
#include "common/gemm_kernel.hpp"

namespace hodlrx {

const char* blocking_source_name(BlockingSource s) {
  switch (s) {
    case BlockingSource::kStatic: return "static";
    case BlockingSource::kProbe: return "probe";
    case BlockingSource::kEnv: return "env";
    case BlockingSource::kMicrobench: return "microbench";
  }
  return "?";
}

namespace blocking_stats {
namespace {
std::atomic<std::uint64_t> g_resolutions{0};
}
std::uint64_t resolutions() {
  return g_resolutions.load(std::memory_order_relaxed);
}
}  // namespace blocking_stats

namespace {

/// Round `v` down to a positive multiple of `step`.
index_t round_down(index_t v, index_t step) {
  return std::max(step, (v / step) * step);
}

index_t clamp(index_t v, index_t lo, index_t hi) {
  return std::min(hi, std::max(lo, v));
}

/// Case-insensitive match against a small word.
bool env_is(const char* s, const char* word) {
  for (; *s && *word; ++s, ++word)
    if (std::tolower(static_cast<unsigned char>(*s)) != *word) return false;
  return *s == '\0' && *word == '\0';
}

bool parse_autotune() {
  const char* s = std::getenv("HODLRX_AUTOTUNE");
  if (!s || !*s) return true;
  return !(env_is(s, "off") || env_is(s, "0") || env_is(s, "false") ||
           env_is(s, "no"));
}

/// Environment override for one field: leaves `value`/`src` alone when the
/// variable is unset or unparsable, otherwise installs the clamped override
/// and tags the field kEnv. Same parsing as every other knob (env.hpp).
void apply_env(const char* name, index_t min_v, index_t& value,
               BlockingSource& src) {
  const char* s = std::getenv(name);
  if (!s || !*s) return;
  const index_t sentinel = -1;
  const index_t v = env_positive(name, sentinel, min_v);
  if (v == sentinel) return;  // present but invalid/non-positive: fall back
  value = v;
  src = BlockingSource::kEnv;
}

/// Tile selection (rungs 2/3): wide on 256-bit+ SIMD or when the probe gave
/// us nothing to go on (wide IS the static default), compact on SSE-class
/// x86 where the wide tile's accumulators spill the 8/16 xmm registers.
template <typename T>
TileDims model_tile(const HwInfo& hw) {
  if (std::strcmp(hw.source, "default") == 0) return GemmTiles<T>::kWide;
  if (hw.avx2 || hw.avx512f) return GemmTiles<T>::kWide;
  if (std::strncmp(hw.family, "x86", 3) == 0) return GemmTiles<T>::kCompact;
  return GemmTiles<T>::kWide;
}

/// Round a requested across-batch lane count down to a compiled width: the
/// batch kernels (batch_kernels.cpp) instantiate one fully unrolled body per
/// power-of-two width up to 16 (the widest possible lane count: 64-byte
/// AVX-512 registers over 4-byte floats).
index_t supported_batch_width(index_t w) {
  index_t s = 1;
  while (s * 2 <= w && s < 16) s *= 2;
  return s;
}

}  // namespace

template <typename T>
ResolvedBlocking static_blocking() {
  ResolvedBlocking rb;
  rb.mr = GemmBlocking<T>::MR;
  rb.nr = GemmBlocking<T>::NR;
  rb.mc = GemmBlocking<T>::MC;
  rb.kc = GemmBlocking<T>::KC;
  rb.nc = GemmBlocking<T>::NC;
  rb.trsm_nb = 64;  // pre-adaptive HODLRX_TRSM_NB default (trsm_kernel)
  rb.qr_nb = 16;    // pre-adaptive HODLRX_QR_NB default (lapack)
  return rb;        // every src field is kStatic
}

namespace {

/// The cache/panel derivations of the model for an EXPLICIT register tile.
/// Factored out of model_blocking so the first-use tie-breaker (resolve()
/// below) can re-derive KC/MC/NC for the measured winner: KC is sized from
/// mr + nr, so a tile switched after the derivation could overrun the L1
/// streaming budget.
template <typename T>
ResolvedBlocking model_blocking_for_tile(const HwInfo& hw, TileDims tile) {
  ResolvedBlocking rb = static_blocking<T>();
  rb.mr = tile.mr;
  rb.nr = tile.nr;
  rb.tile_src = BlockingSource::kProbe;
  // Across-batch SIMD width: one problem per lane of the widest register the
  // feature bits promise (hwinfo().simd_bytes; 0 means scalar-only). A lane
  // is one full element — complex types get correspondingly fewer lanes.
  rb.batch_simd_width = supported_batch_width(
      static_cast<index_t>(hw.simd_bytes / sizeof(T)));
  rb.batch_src = BlockingSource::kProbe;
  const index_t szT = static_cast<index_t>(sizeof(T));
  const index_t l1 = static_cast<index_t>(hw.l1d_bytes);
  const index_t l2 = static_cast<index_t>(hw.l2_bytes);
  const index_t l3 = static_cast<index_t>(hw.l3_bytes);
  // KC: one MR x KC A micro-panel and one KC x NR B micro-panel stream
  // through L1 together; fill ~80% of it, leaving room for the C tile and
  // the stack. Rounded to 8 so k-remainders stay rare.
  rb.kc = clamp(round_down((l1 * 4) / (5 * (rb.mr + rb.nr) * szT), 8), 32,
                1024);
  rb.kc_src = BlockingSource::kProbe;
  // MC: the packed MC x KC A block owns half of L2 (the other half streams
  // B panels and C). Multiple of MR so every macro-row is a full panel.
  rb.mc = clamp(round_down(l2 / (2 * rb.kc * szT), rb.mr), rb.mr, 2048);
  rb.mc_src = BlockingSource::kProbe;
  // NC: the packed KC x NC B block targets half of L3. Capped at 4096: a
  // server-class shared L3 (hundreds of MB) must not balloon the per-thread
  // pack buffer, and beyond a few thousand columns reuse is already fully
  // amortized. No L3 probed: keep the static default.
  if (l3 > 0) {
    rb.nc = round_down(std::min<index_t>(l3 / (2 * rb.kc * szT), 4096),
                       rb.nr);
    rb.nc_src = BlockingSource::kProbe;
  }
  // TRSM NB: the NB x NB diagonal triangle plus a 4-column RHS strip should
  // sit in half of L1 while the register kernel re-streams it.
  index_t nb = 8;
  while ((nb + 8) * (nb + 8) * szT * 2 <= l1) nb += 8;
  rb.trsm_nb = clamp(nb, 24, 128);
  rb.trsm_src = BlockingSource::kProbe;
  // QR panel width trades unblocked panel work against trailing-GEMM
  // efficiency; it is latency- not capacity-bound, so the model only nudges
  // it up on big-L1 parts (Ice Lake+/Zen 4 class and beyond).
  rb.qr_nb = (hw.l1d_bytes >= (std::size_t{48} << 10)) ? 24 : 16;
  rb.qr_src = BlockingSource::kProbe;
  return rb;
}

}  // namespace

template <typename T>
ResolvedBlocking model_blocking(const HwInfo& hw) {
  return model_blocking_for_tile<T>(hw, model_tile<T>(hw));
}

namespace {

/// Full resolution ladder for one scalar type.
template <typename T>
ResolvedBlocking resolve() {
  const bool autotune = parse_autotune();
  const HwInfo& hw = hwinfo();
  const bool probed = std::strcmp(hw.source, "default") != 0;
  const char* tile_env = std::getenv("HODLRX_GEMM_TILE");
  const bool tile_forced = tile_env && *tile_env &&
                           (env_is(tile_env, "wide") ||
                            env_is(tile_env, "compact"));
  ResolvedBlocking rb;
  if (autotune && probed) {
    // Adaptive rung. The register tile is decided by MEASUREMENT when
    // nothing forces it: both compiled variants run the same synthetic
    // macro tile once per process (tile_microbench, cached) and the faster
    // one wins, with the model's feature-bit choice as the tie-break seed.
    // The cache fields are then derived FOR the winning tile — KC's L1
    // streaming budget depends on mr + nr.
    TileDims tile = model_tile<T>(hw);
    TileBench tb;
    bool benched = false;
    if (!tile_forced) {
      tb = tile_microbench<T>();
      if (tb.wide_s > 0 && tb.compact_s > 0) {
        tile = (tb.compact_s < tb.wide_s) ? GemmTiles<T>::kCompact
                                          : GemmTiles<T>::kWide;
        benched = true;
      }
    }
    rb = model_blocking_for_tile<T>(hw, tile);
    if (benched) {
      rb.tile_src = BlockingSource::kMicrobench;
      rb.tile_bench_wide_s = tb.wide_s;
      rb.tile_bench_compact_s = tb.compact_s;
    }
  } else {
    // With autotune on but a failed probe we sit on the static rung — the
    // model would only be re-deriving its own fallback constants.
    rb = static_blocking<T>();
  }
  // Tile override: wide/compact by name (anything else falls through).
  if (tile_env && *tile_env) {
    if (env_is(tile_env, "wide")) {
      rb.mr = GemmTiles<T>::kWide.mr;
      rb.nr = GemmTiles<T>::kWide.nr;
      rb.tile_src = BlockingSource::kEnv;
    } else if (env_is(tile_env, "compact")) {
      rb.mr = GemmTiles<T>::kCompact.mr;
      rb.nr = GemmTiles<T>::kCompact.nr;
      rb.tile_src = BlockingSource::kEnv;
    }
  }
  // Cache-level overrides (clamped so packing stays well formed against the
  // SELECTED tile: mc >= mr, nc >= nr).
  apply_env("HODLRX_GEMM_MC", rb.mr, rb.mc, rb.mc_src);
  apply_env("HODLRX_GEMM_KC", 1, rb.kc, rb.kc_src);
  apply_env("HODLRX_GEMM_NC", rb.nr, rb.nc, rb.nc_src);
  apply_env("HODLRX_TRSM_NB", 8, rb.trsm_nb, rb.trsm_src);
  apply_env("HODLRX_QR_NB", 1, rb.qr_nb, rb.qr_src);
  // Across-batch lane count: the override is rounded down to a compiled
  // width, so any positive value is safe to request (1 = scalar fallback).
  apply_env("HODLRX_BATCH_SIMD", 1, rb.batch_simd_width, rb.batch_src);
  rb.batch_simd_width = supported_batch_width(rb.batch_simd_width);
  // A tile switched after a cache override was applied cannot undercut the
  // packing invariants: re-clamp unconditionally.
  rb.mc = std::max(rb.mc, rb.mr);
  rb.nc = std::max(rb.nc, rb.nr);
  rb.kc = std::max<index_t>(rb.kc, 1);
  blocking_stats::g_resolutions.fetch_add(1, std::memory_order_relaxed);
  return rb;
}

/// Per-type cached resolution with a test-only reset. The fast path is one
/// acquire load; (re)resolution is serialized by the mutex.
template <typename T>
struct Slot {
  static std::atomic<bool> ready;
  static std::mutex mu;
  static ResolvedBlocking rb;

  static const ResolvedBlocking& get() {
    if (!ready.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lk(mu);
      if (!ready.load(std::memory_order_relaxed)) {
        rb = resolve<T>();
        ready.store(true, std::memory_order_release);
      }
    }
    return rb;
  }

  static void reset() { ready.store(false, std::memory_order_release); }
};
template <typename T>
std::atomic<bool> Slot<T>::ready{false};
template <typename T>
std::mutex Slot<T>::mu;
template <typename T>
ResolvedBlocking Slot<T>::rb;

}  // namespace

template <typename T>
const ResolvedBlocking& resolved_blocking() {
  return Slot<T>::get();
}

bool autotune_enabled() { return parse_autotune(); }

namespace blocking_detail {
void refresh_for_testing() {
  Slot<float>::reset();
  Slot<double>::reset();
  Slot<std::complex<float>>::reset();
  Slot<std::complex<double>>::reset();
}
}  // namespace blocking_detail

#define HODLRX_INSTANTIATE_BLOCKING(T)                    \
  template const ResolvedBlocking& resolved_blocking<T>(); \
  template ResolvedBlocking static_blocking<T>();          \
  template ResolvedBlocking model_blocking<T>(const HwInfo&);

HODLRX_INSTANTIATE_BLOCKING(float)
HODLRX_INSTANTIATE_BLOCKING(double)
HODLRX_INSTANTIATE_BLOCKING(std::complex<float>)
HODLRX_INSTANTIATE_BLOCKING(std::complex<double>)

#undef HODLRX_INSTANTIATE_BLOCKING

}  // namespace hodlrx
