#include "common/hwinfo.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define HODLRX_HAVE_CPUID 1
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define HODLRX_HAVE_SYSCONF 1
#endif

namespace hodlrx {

namespace {

/// A cache level is plausible when it is a power-of-two-ish size in
/// [4 KiB, 4 GiB); virtualized CPUID leaves occasionally report zeros.
bool plausible(std::size_t bytes) {
  return bytes >= (std::size_t{4} << 10) && bytes < (std::size_t{4} << 30);
}

#ifdef HODLRX_HAVE_CPUID

/// Decode one subleaf of CPUID leaf 4 / 0x8000001D (identical layouts) into
/// the matching HwInfo slot. Returns false on the terminating null type.
bool decode_cache_subleaf(unsigned eax, unsigned ebx, unsigned ecx,
                          HwInfo& hw) {
  const unsigned type = eax & 0x1f;  // 0 = none, 1 = data, 2 = instr, 3 = uni
  if (type == 0) return false;
  const unsigned level = (eax >> 5) & 0x7;
  const std::size_t ways = ((ebx >> 22) & 0x3ff) + 1;
  const std::size_t partitions = ((ebx >> 12) & 0x3ff) + 1;
  const std::size_t line = (ebx & 0xfff) + 1;
  const std::size_t sets = static_cast<std::size_t>(ecx) + 1;
  const std::size_t size = ways * partitions * line * sets;
  if (type == 2) return true;  // instruction caches don't block GEMM tiles
  if (hw.line_bytes == 0) hw.line_bytes = line;
  if (level == 1) {
    hw.l1d_bytes = size;
    hw.l1d_assoc = static_cast<int>(ways);
  } else if (level == 2) {
    hw.l2_bytes = size;
    hw.l2_assoc = static_cast<int>(ways);
  } else if (level == 3) {
    hw.l3_bytes = size;
  }
  return true;
}

/// CPUID rung: vendor + feature bits always, cache topology when leaf 4
/// (or AMD's 0x8000001D mirror) is implemented. Returns true when the cache
/// sizes were filled in.
bool probe_cpuid(HwInfo& hw) {
  unsigned eax, ebx, ecx, edx;
  const unsigned max_leaf = __get_cpuid_max(0, nullptr);
  if (max_leaf == 0) return false;
  __cpuid(0, eax, ebx, ecx, edx);
  std::memcpy(hw.vendor + 0, &ebx, 4);
  std::memcpy(hw.vendor + 4, &edx, 4);
  std::memcpy(hw.vendor + 8, &ecx, 4);
  hw.vendor[12] = '\0';
  if (max_leaf >= 1) {
    __cpuid(1, eax, ebx, ecx, edx);
    hw.sse2 = (edx >> 26) & 1;
    hw.avx = (ecx >> 28) & 1;
    hw.fma = (ecx >> 12) & 1;
  }
  if (max_leaf >= 7) {
    __cpuid_count(7, 0, eax, ebx, ecx, edx);
    hw.avx2 = (ebx >> 5) & 1;
    hw.avx512f = (ebx >> 16) & 1;
  }
  bool got_caches = false;
  if (max_leaf >= 4) {
    for (unsigned sub = 0; sub < 64; ++sub) {
      __cpuid_count(4, sub, eax, ebx, ecx, edx);
      if (!decode_cache_subleaf(eax, ebx, ecx, hw)) break;
      got_caches = true;
    }
  }
  if (!plausible(hw.l1d_bytes)) {
    // AMD parts leave leaf 4 empty; 0x8000001D has the same layout.
    const unsigned max_ext = __get_cpuid_max(0x80000000, nullptr);
    if (max_ext >= 0x8000001d) {
      got_caches = false;
      for (unsigned sub = 0; sub < 64; ++sub) {
        __cpuid_count(0x8000001d, sub, eax, ebx, ecx, edx);
        if (!decode_cache_subleaf(eax, ebx, ecx, hw)) break;
        got_caches = true;
      }
    }
  }
  return got_caches && plausible(hw.l1d_bytes);
}

#endif  // HODLRX_HAVE_CPUID

#ifdef HODLRX_HAVE_SYSCONF

std::size_t sysconf_size(int name) {
  const long v = sysconf(name);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

bool probe_sysconf(HwInfo& hw) {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  hw.l1d_bytes = sysconf_size(_SC_LEVEL1_DCACHE_SIZE);
  hw.l2_bytes = sysconf_size(_SC_LEVEL2_CACHE_SIZE);
  hw.l3_bytes = sysconf_size(_SC_LEVEL3_CACHE_SIZE);
  if (hw.line_bytes == 0)
    hw.line_bytes = sysconf_size(_SC_LEVEL1_DCACHE_LINESIZE);
  {
    const long a = sysconf(_SC_LEVEL1_DCACHE_ASSOC);
    if (a > 0) hw.l1d_assoc = static_cast<int>(a);
    const long a2 = sysconf(_SC_LEVEL2_CACHE_ASSOC);
    if (a2 > 0) hw.l2_assoc = static_cast<int>(a2);
  }
  return plausible(hw.l1d_bytes);
#else
  (void)hw;
  return false;
#endif
}

#endif  // HODLRX_HAVE_SYSCONF

/// Read a sysfs cache attribute ("32K", "2048K", "64", ...) as bytes.
std::size_t read_sysfs_size(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return 0;
  char buf[64] = {0};
  const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (got == 0) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf, &end, 10);
  if (end == buf) return 0;
  std::size_t mul = 1;
  if (end && (*end == 'K' || *end == 'k')) mul = 1024;
  if (end && (*end == 'M' || *end == 'm')) mul = 1024 * 1024;
  return static_cast<std::size_t>(v) * mul;
}

bool probe_sysfs(HwInfo& hw) {
  bool any = false;
  for (int idx = 0; idx < 8; ++idx) {
    char path[128];
    auto attr = [&](const char* name) {
      std::snprintf(path, sizeof(path),
                    "/sys/devices/system/cpu/cpu0/cache/index%d/%s", idx,
                    name);
      return path;
    };
    const std::size_t level = read_sysfs_size(attr("level"));
    if (level == 0) break;
    std::FILE* tf = std::fopen(attr("type"), "r");
    char type[32] = {0};
    if (tf) {
      if (!std::fgets(type, sizeof(type), tf)) type[0] = '\0';
      std::fclose(tf);
    }
    if (std::strncmp(type, "Instruction", 11) == 0) continue;
    const std::size_t size = read_sysfs_size(attr("size"));
    if (size == 0) continue;
    any = true;
    if (hw.line_bytes == 0)
      hw.line_bytes = read_sysfs_size(attr("coherency_line_size"));
    const std::size_t ways = read_sysfs_size(attr("ways_of_associativity"));
    if (level == 1) {
      hw.l1d_bytes = size;
      hw.l1d_assoc = static_cast<int>(ways);
    } else if (level == 2) {
      hw.l2_bytes = size;
      hw.l2_assoc = static_cast<int>(ways);
    } else if (level == 3) {
      hw.l3_bytes = size;
    }
  }
  return any && plausible(hw.l1d_bytes);
}

const char* classify_family(const HwInfo& hw) {
  if (hw.avx512f) return "x86-avx512";
  if (hw.avx2 && hw.fma) return "x86-avx2";
  if (hw.sse2) return "x86-sse";
  return "generic";
}

/// Numeric counterpart of the family string: the widest register the
/// feature bits promise. 0 when nothing was detected (non-x86 or pre-SSE2),
/// so consumers must treat 0 as "scalar only".
std::size_t classify_simd_bytes(const HwInfo& hw) {
  if (hw.avx512f) return 64;
  if (hw.avx || hw.avx2) return 32;
  if (hw.sse2) return 16;
  return 0;
}

}  // namespace

HwInfo probe_hwinfo() {
  HwInfo hw;
#ifdef HODLRX_HAVE_CPUID
  if (probe_cpuid(hw)) {
    hw.source = "cpuid";
  }
#endif
#ifdef HODLRX_HAVE_SYSCONF
  if (std::strcmp(hw.source, "default") == 0 && probe_sysconf(hw))
    hw.source = "sysconf";
#endif
  if (std::strcmp(hw.source, "default") == 0 && probe_sysfs(hw))
    hw.source = "sysfs";
  if (std::strcmp(hw.source, "default") == 0) {
    // Nothing worked: conservative laptop-class defaults so the blocking
    // model still produces sane (if untuned) values.
    hw.l1d_bytes = std::size_t{32} << 10;
    hw.l2_bytes = std::size_t{512} << 10;
    hw.l3_bytes = std::size_t{8} << 20;
  }
  if (hw.line_bytes == 0) hw.line_bytes = 64;
  if (!plausible(hw.l2_bytes) || hw.l2_bytes < hw.l1d_bytes)
    hw.l2_bytes = std::max(hw.l1d_bytes * 8, std::size_t{256} << 10);
  // A missing L3 stays 0 — the model treats that as "no shared level".
#ifdef HODLRX_HAVE_SYSCONF
  {
    const long n = sysconf(_SC_NPROCESSORS_ONLN);
    if (n > 0) hw.logical_cpus = static_cast<int>(n);
  }
#endif
  hw.family = classify_family(hw);
  hw.simd_bytes = classify_simd_bytes(hw);
  return hw;
}

const HwInfo& hwinfo() {
  static const HwInfo hw = probe_hwinfo();
  return hw;
}

}  // namespace hodlrx
