#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// \file error.hpp
/// Error handling: a project exception type plus checked preconditions.
///
/// `HODLRX_REQUIRE` is always on (API misuse must not silently corrupt);
/// `HODLRX_DBG_ASSERT` compiles away in release hot paths.

namespace hodlrx {

/// Exception thrown on precondition violations and numerical failures
/// (e.g. an exactly singular pivot in an LU factorization).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << "hodlrx: requirement `" << cond << "` failed at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace hodlrx

#define HODLRX_REQUIRE(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::hodlrx::detail::raise(#cond, __FILE__, __LINE__,                  \
                              (std::ostringstream{} << msg).str());       \
    }                                                                     \
  } while (false)

#ifndef NDEBUG
#define HODLRX_DBG_ASSERT(cond) HODLRX_REQUIRE(cond, "debug assertion")
#else
#define HODLRX_DBG_ASSERT(cond) ((void)0)
#endif
