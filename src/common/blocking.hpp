#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/hwinfo.hpp"

/// \file blocking.hpp
/// The single source of truth for every runtime blocking parameter: the
/// GEMM cache blocking (MC/KC/NC), the register-tile shape (MR/NR, which
/// selects the micro-kernel variant in gemm_kernel.cpp), the TRSM
/// diagonal-block size and the QR panel width — resolved once per scalar
/// type and consumed by every engine (gemm_kernel, trsm_kernel, lapack,
/// batched_blas).
///
/// Resolution precedence, per field:
///   1. Environment override (HODLRX_GEMM_{MC,KC,NC}, HODLRX_TRSM_NB,
///      HODLRX_QR_NB, HODLRX_GEMM_TILE) — always wins.
///   2. The analytical model over the probed cache topology (hwinfo.hpp),
///      when HODLRX_AUTOTUNE is not "off" and the probe succeeded.
///   3. The static per-scalar-type defaults (GemmBlocking<T> and the
///      historical TRSM NB = 64 / QR NB = 16) — also what
///      HODLRX_AUTOTUNE=off selects, bit-for-bit.
///
/// The model follows the GotoBLAS/BLIS analytical rules: KC sized so one
/// MR x KC A micro-panel plus one KC x NR B micro-panel stream from L1,
/// MC so the MC x KC packed A block holds half of L2, NC so the KC x NC
/// packed B block holds half of L3 (capped — a server-class shared L3 must
/// not inflate per-thread pack buffers). Every value is clamped so packing
/// stays well formed (mc >= mr, nc >= nr, kc >= 1) regardless of how
/// hostile the override is.

namespace hodlrx {

/// Where a resolved field came from (reported in the bench JSON so the perf
/// trajectory records what each run actually used). kMicrobench is specific
/// to the register tile: both compiled variants were timed on one synthetic
/// macro tile at first resolution and the faster one won.
enum class BlockingSource : std::uint8_t { kStatic, kProbe, kEnv,
                                           kMicrobench };
const char* blocking_source_name(BlockingSource s);

struct ResolvedBlocking {
  index_t mr = 0, nr = 0;  ///< register tile (micro-kernel variant)
  index_t mc = 0, kc = 0, nc = 0;  ///< GEMM cache blocking
  index_t trsm_nb = 0;     ///< TRSM diagonal-block size
  index_t qr_nb = 0;       ///< QR panel width
  /// Problems per SIMD lane-group in the across-batch kernels
  /// (batch_kernels.hpp): HODLRX_BATCH_SIMD override > hwinfo().simd_bytes /
  /// sizeof(T) > 1. Width 1 disables interleaving — every batched launch
  /// takes the per-problem reference path, bit-for-bit.
  index_t batch_simd_width = 1;
  BlockingSource tile_src = BlockingSource::kStatic;
  BlockingSource mc_src = BlockingSource::kStatic;
  BlockingSource kc_src = BlockingSource::kStatic;
  BlockingSource nc_src = BlockingSource::kStatic;
  BlockingSource trsm_src = BlockingSource::kStatic;
  BlockingSource qr_src = BlockingSource::kStatic;
  BlockingSource batch_src = BlockingSource::kStatic;
  /// Seconds per synthetic macro-tile multiply measured by the first-use
  /// tile tie-breaker; both stay 0 when it did not run (autotune off, no
  /// probe, or HODLRX_GEMM_TILE forced). Recorded with tile_src ==
  /// kMicrobench so bench JSON shows what the measurement saw.
  double tile_bench_wide_s = 0, tile_bench_compact_s = 0;
};

/// The resolved blocking for scalar type T (float, double, complex<float>,
/// complex<double>). Resolved once per process on first use (thread-safe);
/// the reference stays valid for the process lifetime. Tests may re-resolve
/// via blocking_detail::refresh_for_testing().
template <typename T>
const ResolvedBlocking& resolved_blocking();

/// The static pre-probe defaults (rung 3 above): exactly what every engine
/// used before the adaptive resolver existed, and what HODLRX_AUTOTUNE=off
/// reproduces bit-for-bit.
template <typename T>
ResolvedBlocking static_blocking();

/// The pure analytical model over an explicit topology (no environment, no
/// globals) — unit-testable against synthetic cache configurations. The
/// returned tile is the model's choice for `hw.family`; cache fields are
/// tagged kProbe.
template <typename T>
ResolvedBlocking model_blocking(const HwInfo& hw);

/// False iff HODLRX_AUTOTUNE is "off"/"0"/"false"/"no" (case-insensitive).
bool autotune_enabled();

namespace blocking_stats {
/// Number of per-type resolutions performed (relaxed atomic). Stable-
/// dispatch tests assert this does not grow across repeated launches: the
/// blocking — and therefore the selected micro-kernel variant — is resolved
/// at most once per scalar type per process.
std::uint64_t resolutions();
}  // namespace blocking_stats

namespace blocking_detail {
/// Drop every cached resolution (all four scalar types and the autotune
/// flag) so the next resolved_blocking() re-reads the environment. TEST
/// ONLY: not thread-safe against concurrent kernel launches, and any
/// PackedMatrix built before the refresh is invalidated by it.
void refresh_for_testing();
}  // namespace blocking_detail

}  // namespace hodlrx
