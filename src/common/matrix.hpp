#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/aligned.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/scalar.hpp"

/// \file matrix.hpp
/// Column-major dense matrices and non-owning views.
///
/// `Matrix<T>` owns storage (leading dimension == rows). `MatrixView<T>` and
/// `ConstMatrixView<T>` are cheap trivially-copyable (data, rows, cols, ld)
/// descriptors used by every BLAS-like routine in the project; a `Matrix`
/// converts implicitly to either view. Views allow sub-block addressing
/// without copies, which is the backbone of the packed HODLR layout.

namespace hodlrx {

/// Marks a function parameter as a non-deduced context so that implicit
/// conversions (Matrix -> view, MatrixView -> ConstMatrixView) apply at call
/// sites; the template argument is deduced from the other parameters.
template <typename T>
using NoDeduce = std::type_identity_t<T>;

template <typename T>
struct ConstMatrixView;

/// Non-owning mutable view of a column-major block.
template <typename T>
struct MatrixView {
  T* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;  ///< leading dimension (stride between columns)

  T& operator()(index_t i, index_t j) const {
    HODLRX_DBG_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[i + j * ld];
  }

  /// Sub-block [i0, i0+nr) x [j0, j0+nc).
  MatrixView block(index_t i0, index_t j0, index_t nr, index_t nc) const {
    HODLRX_DBG_ASSERT(i0 >= 0 && j0 >= 0 && i0 + nr <= rows && j0 + nc <= cols);
    return {data + i0 + j0 * ld, nr, nc, ld};
  }
  MatrixView col(index_t j) const { return block(0, j, rows, 1); }
  MatrixView cols_range(index_t j0, index_t nc) const {
    return block(0, j0, rows, nc);
  }
  MatrixView rows_range(index_t i0, index_t nr) const {
    return block(i0, 0, nr, cols);
  }
  bool empty() const { return rows == 0 || cols == 0; }
  /// True when the block is contiguous in memory (ld == rows or single col).
  bool contiguous() const { return ld == rows || cols <= 1; }
};

/// Non-owning read-only view of a column-major block.
template <typename T>
struct ConstMatrixView {
  const T* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const T* d, index_t r, index_t c, index_t l)
      : data(d), rows(r), cols(c), ld(l) {}
  ConstMatrixView(MatrixView<T> v)  // NOLINT: implicit by design
      : data(v.data), rows(v.rows), cols(v.cols), ld(v.ld) {}

  const T& operator()(index_t i, index_t j) const {
    HODLRX_DBG_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[i + j * ld];
  }
  ConstMatrixView block(index_t i0, index_t j0, index_t nr, index_t nc) const {
    HODLRX_DBG_ASSERT(i0 >= 0 && j0 >= 0 && i0 + nr <= rows && j0 + nc <= cols);
    return {data + i0 + j0 * ld, nr, nc, ld};
  }
  ConstMatrixView col(index_t j) const { return block(0, j, rows, 1); }
  ConstMatrixView cols_range(index_t j0, index_t nc) const {
    return block(0, j0, rows, nc);
  }
  ConstMatrixView rows_range(index_t i0, index_t nr) const {
    return block(i0, 0, nr, cols);
  }
  bool empty() const { return rows == 0 || cols == 0; }
  bool contiguous() const { return ld == rows || cols <= 1; }
};

/// Owning column-major dense matrix, 64-byte aligned, ld == rows.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    HODLRX_REQUIRE(rows >= 0 && cols >= 0, "negative dimension");
    data_.assign(static_cast<std::size_t>(rows) * cols, T{});
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator()(index_t i, index_t j) {
    HODLRX_DBG_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }
  const T& operator()(index_t i, index_t j) const {
    HODLRX_DBG_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }

  operator MatrixView<T>() {  // NOLINT: implicit by design
    return {data_.data(), rows_, cols_, rows_};
  }
  operator ConstMatrixView<T>() const {  // NOLINT: implicit by design
    return {data_.data(), rows_, cols_, rows_};
  }
  MatrixView<T> view() { return *this; }
  ConstMatrixView<T> view() const { return *this; }
  MatrixView<T> block(index_t i0, index_t j0, index_t nr, index_t nc) {
    return view().block(i0, j0, nr, nc);
  }
  ConstMatrixView<T> block(index_t i0, index_t j0, index_t nr,
                           index_t nc) const {
    return view().block(i0, j0, nr, nc);
  }

  void set_zero() { std::fill(data_.begin(), data_.end(), T{}); }

  /// Reallocate to new shape; contents become zero.
  void resize(index_t rows, index_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows) * cols, T{});
  }

  static Matrix identity(index_t n) {
    Matrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t bytes() const { return data_.size() * sizeof(T); }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

/// Copy `src` into `dst` (shapes must match; either may be strided).
template <typename T>
void copy(NoDeduce<ConstMatrixView<T>> src, MatrixView<T> dst) {
  HODLRX_REQUIRE(src.rows == dst.rows && src.cols == dst.cols,
                 "copy: shape mismatch " << src.rows << "x" << src.cols
                                         << " vs " << dst.rows << "x"
                                         << dst.cols);
  for (index_t j = 0; j < src.cols; ++j)
    std::copy_n(src.data + j * src.ld, src.rows, dst.data + j * dst.ld);
}

/// Deep copy of a view into a fresh owning matrix.
template <typename T>
Matrix<T> to_matrix(ConstMatrixView<T> v) {
  Matrix<T> m(v.rows, v.cols);
  copy<T>(v, m.view());
  return m;
}
template <typename T>
Matrix<T> to_matrix(MatrixView<T> v) {
  return to_matrix(ConstMatrixView<T>(v));
}

/// Out-of-place (conjugate) transpose.
template <typename T>
Matrix<T> transpose(ConstMatrixView<T> a, bool conjugate = false) {
  Matrix<T> t(a.cols, a.rows);
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i)
      t(j, i) = conjugate ? conj_s(a(i, j)) : a(i, j);
  return t;
}
template <typename T>
Matrix<T> transpose(MatrixView<T> a, bool conjugate = false) {
  return transpose(ConstMatrixView<T>(a), conjugate);
}
template <typename T>
Matrix<T> transpose(const Matrix<T>& a, bool conjugate = false) {
  return transpose(a.view(), conjugate);
}

}  // namespace hodlrx
