#pragma once

#include <omp.h>

#include <exception>

#include "common/config.hpp"

/// \file parallel.hpp
/// Thin OpenMP wrappers. Thinking in tasks rather than threads (CP.4):
/// callers express "run f over [0, n)" and the runtime schedules it.
/// Exceptions thrown by workers are captured and rethrown on the calling
/// thread (an exception escaping an OpenMP region would terminate).

namespace hodlrx {

inline int max_threads() { return omp_get_max_threads(); }

namespace detail {

template <typename F>
void parallel_for_impl(index_t n, F&& f, bool dynamic_schedule) {
  std::exception_ptr error = nullptr;
  if (dynamic_schedule) {
#pragma omp parallel for schedule(dynamic, 1) shared(error)
    for (index_t i = 0; i < n; ++i) {
      try {
        f(i);
      } catch (...) {
#pragma omp critical(hodlrx_parallel_for_error)
        if (!error) error = std::current_exception();
      }
    }
  } else {
#pragma omp parallel for schedule(static) shared(error)
    for (index_t i = 0; i < n; ++i) {
      try {
        f(i);
      } catch (...) {
#pragma omp critical(hodlrx_parallel_for_error)
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace detail

/// Run `f(i)` for i in [0, n) with dynamic scheduling (irregular work, e.g.
/// per-block compression). `f` must be safe to run concurrently.
template <typename F>
void parallel_for(index_t n, F&& f) {
  if (n <= 0) return;
  if (n == 1) {
    f(index_t{0});
    return;
  }
  detail::parallel_for_impl(n, std::forward<F>(f), /*dynamic=*/true);
}

/// Static-scheduled variant for uniform, fine-grained work (e.g. a level of
/// equally sized batched problems).
template <typename F>
void parallel_for_static(index_t n, F&& f) {
  if (n <= 0) return;
  if (n == 1) {
    f(index_t{0});
    return;
  }
  detail::parallel_for_impl(n, std::forward<F>(f), /*dynamic=*/false);
}

/// True when called from inside an OpenMP parallel region.
inline bool in_parallel() { return omp_in_parallel() != 0; }

}  // namespace hodlrx
