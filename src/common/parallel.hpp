#pragma once

#include <omp.h>

#include <utility>

#include "common/config.hpp"
#include "common/thread_pool.hpp"

/// \file parallel.hpp
/// Task-parallel wrappers (CP.4: think in tasks, not threads): callers
/// express "run f over [0, n)" and the persistent ThreadPool schedules it.
/// Until PR 2 these forked an OpenMP team per call; they now dispatch onto
/// long-lived pool workers, so a parallel launch costs a condition-variable
/// wake instead of thread churn, and per-thread state (packing arenas)
/// persists across launches. Exceptions thrown by workers are captured and
/// rethrown on the calling thread.

namespace hodlrx {

/// Total threads a parallel construct may use (pool workers + caller).
inline int max_threads() { return ThreadPool::instance().threads(); }

/// Run `f(i)` for i in [0, n) with dynamic scheduling (irregular work, e.g.
/// per-block compression). `f` must be safe to run concurrently.
template <typename F>
void parallel_for(index_t n, F&& f) {
  ThreadPool::instance().parallel_for(n, /*dynamic=*/true,
                                      std::forward<F>(f));
}

/// Static-scheduled variant for uniform, fine-grained work (e.g. a level of
/// equally sized batched problems): each participant takes one contiguous
/// slice of [0, n).
template <typename F>
void parallel_for_static(index_t n, F&& f) {
  ThreadPool::instance().parallel_for(n, /*dynamic=*/false,
                                      std::forward<F>(f));
}

/// True when called from inside a parallel region — the pool's, or a raw
/// OpenMP region (the baseline recursive solver still uses OpenMP tasks).
/// Nested parallel constructs observe this and run inline/serial instead of
/// dispatching pool launches from every worker at once.
inline bool in_parallel() {
  return ThreadPool::in_parallel_region() || omp_in_parallel() != 0;
}

/// Split [0, n) into min(max_threads(), n) contiguous chunks and run
/// f(begin, count) per non-empty chunk (static schedule). The shared
/// column-partition used by every "independent columns" parallelization:
/// gemm_parallel's fallback, the pool-shared-A path, and the stream-mode
/// triangular solves.
template <typename F>
void parallel_chunks(index_t n, F&& f) {
  const index_t nchunks =
      std::min<index_t>(max_threads(), std::max<index_t>(n, index_t{1}));
  parallel_for_static(nchunks, [&](index_t t) {
    const index_t j0 = t * n / nchunks;
    const index_t j1 = (t + 1) * n / nchunks;
    if (j1 > j0) f(j0, j1 - j0);
  });
}

}  // namespace hodlrx
