#pragma once

#include <cstdint>

/// \file fault.hpp
/// Deterministic numerical-fault injection and the breakdown policy knob.
///
/// Every recovery path in the library (the "recovery ladder": ACA stall ->
/// batched rsvd retry, batched-SVD sweep exhaustion -> serial re-run with a
/// larger budget, zero pivot in getrf_nopivot -> pivoted refactor, workspace
/// growth failure -> drop-and-retry) guards a numerical event that healthy
/// inputs never trigger. This registry makes those events reproducible:
/// `HODLRX_FAULT=site[:nth]` (comma-separated) arms a named injection site,
/// and the site fires on exactly the nth occurrence check (default: the
/// first). The environment is reread on every check — the same convention as
/// HODLRX_SVD_SWEEPS — so tests can arm and disarm sites at runtime, and
/// `fault_stats` counts injected vs recovered so tests can assert that every
/// injected fault was actually healed (injected == recovered).

namespace hodlrx {

/// What to do when a numerical breakdown is detected (zero pivot, SVD sweep
/// exhaustion, ACA stall, failed post-solve residual check).
enum class OnBreakdown {
  kThrow,    ///< raise hodlrx::Error exactly as the pre-resilience code did
  kRecover,  ///< run the recovery ladder; record the action in the report
  kReport,   ///< record the breakdown and keep the degraded result where one
             ///< exists (achieved-rank ACA factor, unconverged SVD factors,
             ///< unrefined solution); breakdowns that leave NO usable state
             ///< (a half-factored LU block) still throw
};

namespace fault {

/// Named injection sites. The string forms (site_name) are what
/// HODLRX_FAULT matches against.
enum class Site : int {
  kGetrfPivot = 0,  ///< "getrf.pivot": getrf_nopivot hits a zero pivot
  kSvdSweeps,       ///< "svd.sweeps": batched Jacobi sweep budget forced to 1
  kAcaStall,        ///< "aca.stall": aca() stalls after two crosses
  kWorkspaceAlloc,  ///< "workspace.alloc": WorkspaceArena growth throws once
  kDeviceAlloc,     ///< "device.alloc": Backend::allocate throws once
  kNumSites,
};

const char* site_name(Site site);

/// True when HODLRX_FAULT arms `site` and this is the armed occurrence.
/// Each call while the site is armed advances a per-site occurrence counter
/// (atomic — sites are checked from pool tasks); the spec `site:nth` fires
/// on occurrence == nth only, so exactly ONE check fires per
/// fault_stats::reset(). A firing check is counted in
/// fault_stats::injected(). Unarmed sites are free: one getenv, no counter
/// traffic.
bool should_fire(Site site);

}  // namespace fault

/// Process-wide injection/recovery counters (relaxed atomics, same pattern
/// as svd_stats). `recovered` counts successful recovery-ladder engagements
/// regardless of cause; in a fault-injection run with no organic breakdowns
/// the invariant injected == recovered must hold, and tests assert it.
namespace fault_stats {
std::uint64_t injected();
std::uint64_t recovered();
std::uint64_t injected(fault::Site site);
std::uint64_t recovered(fault::Site site);
/// Zero all counters AND the per-site occurrence counts, re-arming every
/// `site[:nth]` spec in HODLRX_FAULT.
void reset();
namespace detail {  // increment hook for the recovery paths
void add_recovered(fault::Site site);
}  // namespace detail
}  // namespace fault_stats

/// True when HODLRX_CHECK_FINITE asks for NaN/Inf scans at stage boundaries
/// (build, factor, solve). Any value other than "" / "0" / "off" enables;
/// reread per call like the other env knobs.
bool check_finite_enabled();

}  // namespace hodlrx
