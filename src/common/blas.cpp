#include "common/blas.hpp"

#include <complex>

#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/gemm_kernel.hpp"
#include "common/parallel.hpp"

namespace hodlrx {

namespace {

/// C = alpha*A*B + beta*C with A (m x k), B (k x n), all column-major.
/// Blocked over rows of C so the active panel of A stays cache-resident;
/// the inner axpy runs down contiguous columns and vectorizes.
template <typename T>
void gemm_nn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
             MatrixView<T> c) {
  const index_t m = c.rows, n = c.cols, k = a.cols;
  constexpr index_t kRowBlock = 768;
  for (index_t ii = 0; ii < m; ii += kRowBlock) {
    const index_t mb = std::min(kRowBlock, m - ii);
    for (index_t j = 0; j < n; ++j) {
      T* __restrict__ cj = c.data + ii + j * c.ld;
      if (beta == T{}) {
        for (index_t i = 0; i < mb; ++i) cj[i] = T{};
      } else if (beta != T{1}) {
        for (index_t i = 0; i < mb; ++i) cj[i] *= beta;
      }
      for (index_t l = 0; l < k; ++l) {
        const T blj = alpha * b.data[l + j * b.ld];
        if (blj == T{}) continue;
        const T* __restrict__ al = a.data + ii + l * a.ld;
        for (index_t i = 0; i < mb; ++i) cj[i] += al[i] * blj;
      }
    }
  }
}

/// C = alpha*op(A)*B + beta*C with op in {T, C}: inner products down
/// contiguous columns of A and B. Partial sums break the dependence chain.
template <typename T>
void gemm_tn(bool conjugate, T alpha, ConstMatrixView<T> a,
             ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  const index_t m = c.rows, n = c.cols, k = a.rows;
  for (index_t j = 0; j < n; ++j) {
    const T* __restrict__ bj = b.data + j * b.ld;
    for (index_t i = 0; i < m; ++i) {
      const T* __restrict__ ai = a.data + i * a.ld;
      T s0{}, s1{}, s2{}, s3{};
      index_t l = 0;
      for (; l + 4 <= k; l += 4) {
        if (conjugate) {
          s0 += conj_s(ai[l]) * bj[l];
          s1 += conj_s(ai[l + 1]) * bj[l + 1];
          s2 += conj_s(ai[l + 2]) * bj[l + 2];
          s3 += conj_s(ai[l + 3]) * bj[l + 3];
        } else {
          s0 += ai[l] * bj[l];
          s1 += ai[l + 1] * bj[l + 1];
          s2 += ai[l + 2] * bj[l + 2];
          s3 += ai[l + 3] * bj[l + 3];
        }
      }
      for (; l < k; ++l) s0 += (conjugate ? conj_s(ai[l]) : ai[l]) * bj[l];
      const T dot = (s0 + s1) + (s2 + s3);
      T& cij = c.data[i + j * c.ld];
      cij = (beta == T{}) ? alpha * dot : alpha * dot + beta * cij;
    }
  }
}

/// Generic fallback for the remaining op combinations (rare paths: tests,
/// low-rank reconstruction U*V^C). Element accessor indirection is fine
/// there.
template <typename T>
void gemm_generic(Op opa, Op opb, T alpha, ConstMatrixView<T> a,
                  ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  const index_t m = c.rows, n = c.cols, k = op_cols(opa, a);
  auto at = [&](index_t i, index_t l) -> T {
    switch (opa) {
      case Op::N: return a(i, l);
      case Op::T: return a(l, i);
      default: return conj_s(a(l, i));
    }
  };
  auto bt = [&](index_t l, index_t j) -> T {
    switch (opb) {
      case Op::N: return b(l, j);
      case Op::T: return b(j, l);
      default: return conj_s(b(j, l));
    }
  };
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T s{};
      for (index_t l = 0; l < k; ++l) s += at(i, l) * bt(l, j);
      T& cij = c(i, j);
      cij = (beta == T{}) ? alpha * s : alpha * s + beta * cij;
    }
}

template <typename T>
void gemm_dispatch(Op opa, Op opb, T alpha, ConstMatrixView<T> a,
                   ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  // Above a small-size cutoff every op combination routes into the packed,
  // register-tiled engine; the naive kernels below only serve problems too
  // small to amortize packing.
  if (use_packed_gemm(opa, opb, c.rows, c.cols, op_cols(opa, a))) {
    gemm_packed(opa, opb, alpha, a, b, beta, c);
    return;
  }
  if (opa == Op::N && opb == Op::N) {
    gemm_nn(alpha, a, b, beta, c);
  } else if (opa != Op::N && opb == Op::N) {
    const bool conjugate = (opa == Op::C) && is_complex_v<T>;
    gemm_tn(conjugate, alpha, a, b, beta, c);
  } else {
    gemm_generic(opa, opb, alpha, a, b, beta, c);
  }
}

template <typename T>
void check_gemm_shapes(Op opa, Op opb, ConstMatrixView<T> a,
                       ConstMatrixView<T> b, MatrixView<T> c) {
  HODLRX_REQUIRE(op_rows(opa, a) == c.rows && op_cols(opb, b) == c.cols &&
                     op_cols(opa, a) == op_rows(opb, b),
                 "gemm: shape mismatch op(A)=" << op_rows(opa, a) << "x"
                                               << op_cols(opa, a) << " op(B)="
                                               << op_rows(opb, b) << "x"
                                               << op_cols(opb, b) << " C="
                                               << c.rows << "x" << c.cols);
}

}  // namespace

template <typename T>
void gemm(Op opa, Op opb, T alpha, NoDeduce<ConstMatrixView<T>> a,
          NoDeduce<ConstMatrixView<T>> b, T beta, MatrixView<T> c) {
  check_gemm_shapes(opa, opb, a, b, c);
  if (c.rows == 0 || c.cols == 0) return;
  const index_t k = op_cols(opa, a);
  if (k == 0) {
    if (beta == T{}) {
      for (index_t j = 0; j < c.cols; ++j)
        for (index_t i = 0; i < c.rows; ++i) c(i, j) = T{};
    } else if (beta != T{1}) {
      scale_inplace(beta, c);
    }
    return;
  }
  gemm_dispatch(opa, opb, alpha, a, b, beta, c);
  FlopCounter::instance().add(FlopCounter::kGemm,
                              FlopCounter::gemm_flops<T>(c.rows, c.cols, k));
}

template <typename T>
void gemm_parallel(Op opa, Op opb, T alpha, NoDeduce<ConstMatrixView<T>> a,
                   NoDeduce<ConstMatrixView<T>> b, T beta, MatrixView<T> c) {
  check_gemm_shapes(opa, opb, a, b, c);
  if (c.rows == 0 || c.cols == 0) return;
  const int nt = max_threads();
  if (nt <= 1 || c.cols == 1 || in_parallel()) {
    gemm(opa, opb, alpha, a, b, beta, c);
    return;
  }
  const index_t k = op_cols(opa, a);
  // Preferred path: pack op(A) ONCE into the pool's persistent shared slot
  // and split the columns of C across the pool (each chunk reads the shared
  // tiles instead of re-packing A). Falls through when the shape doesn't
  // qualify or the slot is busy.
  if (gemm_parallel_shared_a(opa, opb, alpha, a, b, beta, c)) {
    FlopCounter::instance().add(
        FlopCounter::kGemm, FlopCounter::gemm_flops<T>(c.rows, c.cols, k));
    return;
  }
  // Fallback: split columns of C (and the matching columns/rows of op(B))
  // into one chunk per thread; each chunk is an independent gemm.
  parallel_chunks(c.cols, [&](index_t j0, index_t nc) {
    ConstMatrixView<T> bs =
        (opb == Op::N) ? b.cols_range(j0, nc) : b.rows_range(j0, nc);
    gemm(opa, opb, alpha, a, bs, beta, c.cols_range(j0, nc));
  });
}

template <typename T>
void gemv(Op opa, T alpha, NoDeduce<ConstMatrixView<T>> a, const T* x,
          T beta, T* y) {
  const index_t m = op_rows(opa, a);
  const index_t k = op_cols(opa, a);
  ConstMatrixView<T> xv(x, k, 1, k);
  MatrixView<T> yv(const_cast<T*>(y), m, 1, m);
  gemm(opa, Op::N, alpha, a, xv, beta, yv);
}

template <typename T>
void scale_inplace(T alpha, MatrixView<T> x) {
  for (index_t j = 0; j < x.cols; ++j) {
    T* __restrict__ xj = x.data + j * x.ld;
    for (index_t i = 0; i < x.rows; ++i) xj[i] *= alpha;
  }
}

template <typename T>
void axpy(T alpha, NoDeduce<ConstMatrixView<T>> x, MatrixView<T> y) {
  HODLRX_REQUIRE(x.rows == y.rows && x.cols == y.cols, "axpy: shape mismatch");
  for (index_t j = 0; j < x.cols; ++j) {
    const T* __restrict__ xj = x.data + j * x.ld;
    T* __restrict__ yj = y.data + j * y.ld;
    for (index_t i = 0; i < x.rows; ++i) yj[i] += alpha * xj[i];
  }
}

template <typename T>
real_t<T> norm_fro(ConstMatrixView<T> a) {
  real_t<T> s{};
  for (index_t j = 0; j < a.cols; ++j) {
    const T* __restrict__ aj = a.data + j * a.ld;
    for (index_t i = 0; i < a.rows; ++i) s += abs2_s(aj[i]);
  }
  return std::sqrt(s);
}

template <typename T>
real_t<T> norm_max(ConstMatrixView<T> a) {
  real_t<T> s{};
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) s = std::max(s, abs_s(a(i, j)));
  return s;
}

template <typename T>
real_t<T> norm2(const T* x, index_t n) {
  real_t<T> s{};
  for (index_t i = 0; i < n; ++i) s += abs2_s(x[i]);
  return std::sqrt(s);
}

template <typename T>
T dotc(const T* x, const T* y, index_t n) {
  T s{};
  for (index_t i = 0; i < n; ++i) s += conj_s(x[i]) * y[i];
  return s;
}

#define HODLRX_INSTANTIATE_BLAS(T)                                           \
  template void gemm<T>(Op, Op, T, NoDeduce<ConstMatrixView<T>>,            \
                        NoDeduce<ConstMatrixView<T>>, T, MatrixView<T>);     \
  template void gemm_parallel<T>(Op, Op, T, NoDeduce<ConstMatrixView<T>>,    \
                                 NoDeduce<ConstMatrixView<T>>, T,            \
                                 MatrixView<T>);                             \
  template void gemv<T>(Op, T, NoDeduce<ConstMatrixView<T>>, const T*, T,    \
                        T*);                                                 \
  template void scale_inplace<T>(T, MatrixView<T>);                          \
  template void axpy<T>(T, NoDeduce<ConstMatrixView<T>>, MatrixView<T>);    \
  template real_t<T> norm_fro<T>(ConstMatrixView<T>);                        \
  template real_t<T> norm_max<T>(ConstMatrixView<T>);                        \
  template real_t<T> norm2<T>(const T*, index_t);                            \
  template T dotc<T>(const T*, const T*, index_t);

HODLRX_INSTANTIATE_BLAS(float)
HODLRX_INSTANTIATE_BLAS(double)
HODLRX_INSTANTIATE_BLAS(std::complex<float>)
HODLRX_INSTANTIATE_BLAS(std::complex<double>)

#undef HODLRX_INSTANTIATE_BLAS

}  // namespace hodlrx
