#include "common/thread_pool.hpp"

#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/env.hpp"

namespace hodlrx {

namespace {

/// Set while a thread is executing pool work: permanently on workers, during
/// a launch on the launching thread. Nested constructs check this and run
/// inline.
thread_local bool t_in_pool_region = false;

int pool_threads_from_env() {
  const unsigned hw = std::thread::hardware_concurrency();
  const index_t fallback = hw > 0 ? static_cast<index_t>(hw) : 1;
  const index_t ours = env_positive("HODLRX_NUM_THREADS", 0);
  if (ours > 0) return static_cast<int>(ours);
  return static_cast<int>(env_positive("OMP_NUM_THREADS", fallback));
}

}  // namespace

/// One launch. Heap-allocated and shared with the workers so a worker that
/// wakes late (after the launch already completed) dereferences a live
/// object, finds no slot left, and goes back to sleep.
struct ThreadPool::Job {
  void (*body)(void*, index_t) = nullptr;
  void* ctx = nullptr;
  index_t n = 0;
  bool dynamic = false;
  int participants = 0;               ///< min(threads, n): slots that do work
  std::atomic<index_t> next{0};       ///< dynamic-mode index counter
  std::atomic<int> worker_slots{0};   ///< claimed worker slots (caller is 0)
  std::atomic<int> remaining{0};      ///< worker participants still running
  std::atomic<bool> failed{false};    ///< set on first exception: drain early
  Mutex error_mu;
  std::exception_ptr error HODLRX_GUARDED_BY(error_mu);

  void work(int slot) {
    try {
      if (dynamic) {
        for (;;) {
          const index_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n || failed.load(std::memory_order_relaxed)) break;
          body(ctx, i);
        }
      } else {
        const index_t i0 = slot * n / participants;
        const index_t i1 = (slot + 1) * n / participants;
        for (index_t i = i0; i < i1; ++i) {
          if (failed.load(std::memory_order_relaxed)) break;
          body(ctx, i);
        }
      }
    } catch (...) {
      MutexLock lk(error_mu);
      if (!error) error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  }

  /// First captured exception, read by the launcher after the job drained.
  std::exception_ptr take_error() {
    MutexLock lk(error_mu);
    return error;
  }
};

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  Mutex mu;
  CondVar cv;       ///< wakes workers on a new launch
  CondVar done_cv;  ///< wakes the caller on completion
  std::shared_ptr<Job> job HODLRX_GUARDED_BY(mu);
  std::uint64_t job_seq HODLRX_GUARDED_BY(mu) = 0;
  bool stop HODLRX_GUARDED_BY(mu) = false;
  Mutex launch_mu;  ///< serializes launches from distinct user threads
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::in_parallel_region() { return t_in_pool_region; }

ThreadPool::ThreadPool() : impl_(new Impl) {
  num_threads_ = pool_threads_from_env();
  const int workers = num_threads_ - 1;
  impl_->workers.reserve(workers);
  for (int w = 0; w < workers; ++w)
    impl_->workers.emplace_back([this] { worker_main(); });
  threads_created_ = static_cast<std::uint64_t>(workers);
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::worker_main() {
  t_in_pool_region = true;  // workers only ever execute pool work
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lk(impl_->mu);
      while (!impl_->stop && impl_->job_seq == seen) impl_->cv.wait(impl_->mu);
      if (impl_->stop) return;
      seen = impl_->job_seq;
      job = impl_->job;
    }
    if (!job) continue;
    // Claim a slot; the launching thread holds slot 0. Workers beyond
    // `participants` (more threads than work, or a stale wake) do nothing.
    const int slot = job->worker_slots.fetch_add(1) + 1;
    if (slot >= job->participants) continue;
    job->work(slot);
    if (job->remaining.fetch_sub(1) == 1) {
      MutexLock lk(impl_->mu);
      impl_->done_cv.notify_all();
    }
  }
}

void ThreadPool::run(index_t n, bool dynamic, void (*body)(void*, index_t),
                     void* ctx) {
  if (n <= 0) return;
  // Inline when there is nobody to share with or we are already inside a
  // pool region (nested construct).
  if (impl_->workers.empty() || t_in_pool_region) {
    for (index_t i = 0; i < n; ++i) body(ctx, i);
    return;
  }
  const int participants = static_cast<int>(std::min<index_t>(num_threads_, n));
  // A single-participant launch would publish a job, bump job_seq, and
  // notify_all every worker just so they can claim a dead slot and go back
  // to sleep. Run it inline instead: no job, no wake, and `launches_` keeps
  // counting only launches that actually reached the workers.
  if (participants <= 1) {
    for (index_t i = 0; i < n; ++i) body(ctx, i);
    return;
  }
  launches_.fetch_add(1, std::memory_order_relaxed);
  MutexLock launch_lk(impl_->launch_mu);
  auto job = std::make_shared<Job>();
  job->body = body;
  job->ctx = ctx;
  job->n = n;
  job->dynamic = dynamic;
  job->participants = participants;
  job->remaining.store(job->participants - 1, std::memory_order_relaxed);
  {
    MutexLock lk(impl_->mu);
    impl_->job = job;
    ++impl_->job_seq;
  }
  impl_->cv.notify_all();
  t_in_pool_region = true;
  job->work(/*slot=*/0);
  t_in_pool_region = false;
  if (job->participants > 1) {
    MutexLock lk(impl_->mu);
    while (job->remaining.load(std::memory_order_acquire) != 0)
      impl_->done_cv.wait(impl_->mu);
  }
  if (auto err = job->take_error()) std::rethrow_exception(err);
}

}  // namespace hodlrx
