#include "common/flops.hpp"

#include <complex>

#include "common/scalar.hpp"

namespace hodlrx {

FlopCounter& FlopCounter::instance() {
  static FlopCounter counter;
  return counter;
}

namespace {
template <typename T>
constexpr std::uint64_t scale() {
  // One complex multiply-add = 4 real multiplies + 4 real adds ~ 4x a real
  // multiply-add pair; we count a real fused pair as 2 flops.
  return is_complex_v<T> ? 4 : 1;
}
}  // namespace

template <typename T>
std::uint64_t FlopCounter::gemm_flops(index_t m, index_t n, index_t k) {
  return scale<T>() * 2ull * static_cast<std::uint64_t>(m) *
         static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(k);
}

template <typename T>
std::uint64_t FlopCounter::getrf_flops(index_t n) {
  const auto nn = static_cast<std::uint64_t>(n);
  return scale<T>() * 2ull * nn * nn * nn / 3ull;
}

template <typename T>
std::uint64_t FlopCounter::getrs_flops(index_t n, index_t nrhs) {
  return scale<T>() * 2ull * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(nrhs);
}

#define HODLRX_INSTANTIATE_FLOPS(T)                                        \
  template std::uint64_t FlopCounter::gemm_flops<T>(index_t, index_t,      \
                                                    index_t);              \
  template std::uint64_t FlopCounter::getrf_flops<T>(index_t);             \
  template std::uint64_t FlopCounter::getrs_flops<T>(index_t, index_t);

HODLRX_INSTANTIATE_FLOPS(float)
HODLRX_INSTANTIATE_FLOPS(double)
HODLRX_INSTANTIATE_FLOPS(std::complex<float>)
HODLRX_INSTANTIATE_FLOPS(std::complex<double>)

#undef HODLRX_INSTANTIATE_FLOPS

}  // namespace hodlrx
