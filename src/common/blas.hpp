#pragma once

#include "common/matrix.hpp"
#include "common/scalar.hpp"

/// \file blas.hpp
/// Dense BLAS-like kernels on column-major views. No external BLAS is used
/// anywhere in the project; these routines are the single source of dense
/// arithmetic (and of flop accounting) for both the "CPU" reference solvers
/// and the batched "device" engine.

namespace hodlrx {

/// Transposition operator, as in BLAS: N = none, T = transpose,
/// C = conjugate transpose (same as T for real scalars).
enum class Op : char { N = 'N', T = 'T', C = 'C' };

/// Effective number of rows of op(A).
template <typename T>
index_t op_rows(Op op, ConstMatrixView<T> a) {
  return op == Op::N ? a.rows : a.cols;
}
/// Effective number of columns of op(A).
template <typename T>
index_t op_cols(Op op, ConstMatrixView<T> a) {
  return op == Op::N ? a.cols : a.rows;
}

/// General matrix-matrix multiply: C = alpha * op(A) * op(B) + beta * C.
/// Single-threaded; see gemm_parallel for the intra-op parallel variant.
template <typename T>
void gemm(Op opa, Op opb, T alpha, NoDeduce<ConstMatrixView<T>> a,
          NoDeduce<ConstMatrixView<T>> b, T beta, MatrixView<T> c);

/// Same contract as gemm, but splits the columns of C across OpenMP threads.
/// Used by the batched engine's "stream mode" when a level has few, large
/// blocks (the paper's CUDA-streams remark in Sec. III-C).
template <typename T>
void gemm_parallel(Op opa, Op opb, T alpha, NoDeduce<ConstMatrixView<T>> a,
                   NoDeduce<ConstMatrixView<T>> b, T beta, MatrixView<T> c);

/// Matrix-vector multiply: y = alpha * op(A) * x + beta * y.
template <typename T>
void gemv(Op opa, T alpha, NoDeduce<ConstMatrixView<T>> a, const T* x, T beta,
          T* y);

/// X *= alpha (element-wise, in place).
template <typename T>
void scale_inplace(T alpha, MatrixView<T> x);

/// Y += alpha * X (element-wise).
template <typename T>
void axpy(T alpha, NoDeduce<ConstMatrixView<T>> x, MatrixView<T> y);

/// Frobenius norm.
template <typename T>
real_t<T> norm_fro(ConstMatrixView<T> a);
template <typename T>
real_t<T> norm_fro(MatrixView<T> a) {
  return norm_fro(ConstMatrixView<T>(a));
}
template <typename T>
real_t<T> norm_fro(const Matrix<T>& a) {
  return norm_fro(a.view());
}

/// Entry-wise maximum absolute value.
template <typename T>
real_t<T> norm_max(ConstMatrixView<T> a);
template <typename T>
real_t<T> norm_max(MatrixView<T> a) {
  return norm_max(ConstMatrixView<T>(a));
}
template <typename T>
real_t<T> norm_max(const Matrix<T>& a) {
  return norm_max(a.view());
}

/// Euclidean norm of a contiguous vector.
template <typename T>
real_t<T> norm2(const T* x, index_t n);

/// conj(x) . y for contiguous vectors.
template <typename T>
T dotc(const T* x, const T* y, index_t n);

}  // namespace hodlrx
