#pragma once

#include <chrono>

/// \file timer.hpp
/// Wall-clock timing for the benchmark harness.

namespace hodlrx {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hodlrx
