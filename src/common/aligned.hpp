#pragma once

#include <cstdlib>
#include <new>

#include "common/config.hpp"

/// \file aligned.hpp
/// A minimal 64-byte-aligned allocator so matrix columns start on cache-line
/// boundaries (predictable memory access; SIMD-friendly loads).

namespace hodlrx {

template <typename T, std::size_t Align = kAlignment>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new[](n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete[](p, std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace hodlrx
