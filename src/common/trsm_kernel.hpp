#pragma once

#include "common/lapack.hpp"
#include "common/matrix.hpp"

/// \file trsm_kernel.hpp
/// The blocked triangular-solve engine behind `trsm_left`/`getrs` — the
/// solve-stage counterpart of the packed GEMM engine (gemm_kernel.hpp).
///
/// The seed solved B <- op(A)^{-1} B one RHS column at a time with an axpy
/// sweep over the whole triangle, so every column re-streamed all of A from
/// memory: exactly the memory-bound behavior the paper's Fig. 9 shows for
/// the solution stage. The blocked solver partitions A into NB x NB diagonal
/// blocks and runs right-looking:
///
///   for each diagonal block k (top-down for Lower, bottom-up for Upper):
///     B_k   <- A_kk^{-1} B_k        (register-tiled small solve, below)
///     B_rest -= A_rest,k * B_k      (rank-NB update through the packed GEMM
///                                    engine: O(n^2 nrhs) flops at GEMM speed)
///
/// which turns all but an O(n * NB * nrhs) sliver of the work into packed
/// GEMM. The diagonal-block solve itself processes four RHS columns per pass
/// with the four running values held in registers, so the NB x NB triangle
/// is streamed once per four columns instead of once per column, and
/// divisions are hoisted into a reciprocal table computed once per block.
///
/// Accounting contract: the kernels here do NOT touch the flop counters —
/// the public entry points (`trsm_left`, `trsm_left_parallel`, `getrs*`)
/// account, exactly as gemm_packed leaves accounting to gemm().

namespace hodlrx {

/// The diagonal-block size comes from the shared blocking resolver
/// (resolved_blocking<T>().trsm_nb, blocking.hpp): HODLRX_TRSM_NB override >
/// probed cache model > the static 64 (clamped to >= 8). Problems with
/// n <= nb run the reference kernel unchanged.

/// The seed's unblocked column-at-a-time solve. Kept verbatim as the
/// small-problem kernel, the cross-check oracle in tests, and the baseline
/// in bench_trsm.
template <typename T>
void trsm_left_reference(Uplo uplo, Diag diag, NoDeduce<ConstMatrixView<T>> a,
                         MatrixView<T> b);

/// Blocked right-looking solve (see file comment). Falls back to the
/// reference kernel when n <= nb.
template <typename T>
void trsm_left_blocked(Uplo uplo, Diag diag, NoDeduce<ConstMatrixView<T>> a,
                       MatrixView<T> b);

/// Stream-mode solve: the RHS columns are split into one chunk per pool
/// thread (columns are independent given A), each chunk running the blocked
/// solver. This IS a public entry point and accounts trsm flops. Used by the
/// batched layer when a level has few, large problems.
template <typename T>
void trsm_left_parallel(Uplo uplo, Diag diag, NoDeduce<ConstMatrixView<T>> a,
                        MatrixView<T> b);

}  // namespace hodlrx
