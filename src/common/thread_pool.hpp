#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "common/config.hpp"

/// \file thread_pool.hpp
/// The persistent thread pool behind every parallel construct in the project.
///
/// The seed paid an OpenMP fork/join on every batched "kernel launch" and
/// every parallel GEMM. This pool spawns its workers exactly once (the count
/// is read from HODLRX_NUM_THREADS, then OMP_NUM_THREADS, then the hardware
/// concurrency) and keeps them parked on a condition variable between
/// launches, so a launch costs one broadcast wake instead of thread churn.
/// Because the workers are long-lived, everything keyed by `thread_local` —
/// most importantly the packing arenas of `WorkspaceArena::local()` — stays
/// warm across launches: steady-state batched sweeps allocate nothing.
///
/// Scheduling: `parallel_for(n, dynamic, f)` runs f(i) for i in [0, n).
/// Static mode hands each participant one contiguous slice (uniform batched
/// problems); dynamic mode pulls indices from a shared atomic counter
/// (irregular per-block work). The calling thread always participates, so a
/// pool of size P uses P threads total, not P+1. Nested calls from inside a
/// pool region run inline on the calling thread (same behavior the OpenMP
/// wrappers had for nested regions). Exceptions thrown by the body are
/// captured, the launch drains early, and the first exception is rethrown on
/// the calling thread.
///
/// The pool's internal shared state (job slot, sequence counter, stop flag,
/// captured exception) is declared with the clang thread-safety annotations
/// from common/annotations.hpp and checked by the -Wthread-safety CI build
/// (docs/static-analysis.md).

namespace hodlrx {

class ThreadPool {
 public:
  /// The process-wide pool (workers spawned on first use).
  static ThreadPool& instance();

  /// Total participants of a launch: worker threads + the caller.
  int threads() const { return num_threads_; }

  /// True on a thread currently executing pool work (workers always; the
  /// launching thread while its launch is in flight). Nested parallel
  /// constructs observe this and run inline.
  static bool in_parallel_region();

  /// Number of launches actually dispatched to the workers so far. Inline
  /// executions (n <= 1, nested regions, zero-worker pools) are not counted
  /// — they pay no wake. Monotonic; used by tests and benches.
  std::uint64_t launches() const {
    return launches_.load(std::memory_order_relaxed);
  }

  /// Number of threads ever created by the pool. Constant after
  /// construction — the "no per-launch thread re-creation" invariant that
  /// tests assert.
  std::uint64_t threads_created() const { return threads_created_; }

  /// Run f(i) for i in [0, n). `dynamic` selects work-stealing off a shared
  /// counter; otherwise each participant takes one contiguous slice.
  template <typename F>
  void parallel_for(index_t n, bool dynamic, F&& f) {
    if (n <= 0) return;
    if (n == 1) {
      f(index_t{0});
      return;
    }
    using Fn = std::remove_reference_t<F>;
    Fn& fn = f;
    run(n, dynamic,
        [](void* ctx, index_t i) { (*static_cast<Fn*>(ctx))(i); },
        const_cast<void*>(static_cast<const void*>(&fn)));
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  struct Job;  // internal launch descriptor (thread_pool.cpp)

 private:
  ThreadPool();
  ~ThreadPool();

  /// Type-erased launch: body(ctx, i) for i in [0, n).
  void run(index_t n, bool dynamic, void (*body)(void*, index_t), void* ctx);
  void worker_main();

  struct Impl;
  Impl* impl_;  // pimpl so <thread>/<mutex> stay out of this hot header
  int num_threads_ = 1;
  std::uint64_t threads_created_ = 0;
  std::atomic<std::uint64_t> launches_{0};
};

}  // namespace hodlrx
