#include "common/lapack.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <complex>

#include "common/blocking.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/flops.hpp"
#include "common/parallel.hpp"
#include "common/task_graph.hpp"
#include "common/trsm_kernel.hpp"

namespace hodlrx {

namespace {

/// Unblocked right-looking LU with partial pivoting on an m x n panel
/// (pivot search over the full column height).
template <typename T>
void getrf_unblocked(MatrixView<T> a, index_t* ipiv) {
  const index_t m = a.rows, n = a.cols;
  const index_t kmax = std::min(m, n);
  for (index_t k = 0; k < kmax; ++k) {
    // Pivot: largest |a(i,k)| for i >= k.
    index_t p = k;
    real_t<T> best = abs_s(a(k, k));
    for (index_t i = k + 1; i < m; ++i) {
      const real_t<T> v = abs_s(a(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    ipiv[k] = p;
    HODLRX_REQUIRE(best > real_t<T>{0}, "getrf: exact zero pivot at column "
                                            << k << " of " << n);
    if (p != k)
      for (index_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
    // Scale the subdiagonal of column k, then rank-1 update the trailing
    // block; both loops run down contiguous columns.
    const T pivot = a(k, k);
    T* __restrict__ ck = a.data + k * a.ld;
    for (index_t i = k + 1; i < m; ++i) ck[i] /= pivot;
    for (index_t j = k + 1; j < n; ++j) {
      const T akj = a(k, j);
      if (akj == T{}) continue;
      T* __restrict__ cj = a.data + j * a.ld;
      for (index_t i = k + 1; i < m; ++i) cj[i] -= ck[i] * akj;
    }
  }
}

template <typename T>
void getrf_nopivot_unblocked(MatrixView<T> a) {
  const index_t m = a.rows, n = a.cols;
  const index_t kmax = std::min(m, n);
  for (index_t k = 0; k < kmax; ++k) {
    const T pivot = a(k, k);
    HODLRX_REQUIRE(abs_s(pivot) > real_t<T>{0},
                   "getrf_nopivot: zero pivot at column " << k);
    T* __restrict__ ck = a.data + k * a.ld;
    for (index_t i = k + 1; i < m; ++i) ck[i] /= pivot;
    for (index_t j = k + 1; j < n; ++j) {
      const T akj = a(k, j);
      if (akj == T{}) continue;
      T* __restrict__ cj = a.data + j * a.ld;
      for (index_t i = k + 1; i < m; ++i) cj[i] -= ck[i] * akj;
    }
  }
}

/// Blocked right-looking pivoted LU. When Parallel, the trailing update —
/// which carries almost all of the flops — runs through gemm_parallel so a
/// single large problem can use the whole thread pool (stream-mode LU).
template <typename T, bool Parallel>
void getrf_blocked(MatrixView<T> a, index_t* ipiv) {
  const index_t m = a.rows, n = a.cols;
  const index_t kmax = std::min(m, n);
  constexpr index_t kBlock = 64;
  if (kmax <= kBlock) {
    getrf_unblocked(a, ipiv);
    return;
  }
  // Blocked right-looking: panel LU, row swaps, triangular update, GEMM.
  for (index_t k = 0; k < kmax; k += kBlock) {
    const index_t nb = std::min(kBlock, kmax - k);
    MatrixView<T> panel = a.block(k, k, m - k, nb);
    getrf_unblocked(panel, ipiv + k);
    for (index_t i = 0; i < nb; ++i) ipiv[k + i] += k;  // global row index
    // Apply the panel's interchanges to the columns outside it.
    if (k > 0) {
      MatrixView<T> left = a.block(0, 0, m, k);
      for (index_t i = 0; i < nb; ++i) {
        const index_t p = ipiv[k + i];
        if (p != k + i)
          for (index_t j = 0; j < k; ++j)
            std::swap(left(k + i, j), left(p, j));
      }
    }
    if (k + nb < n) {
      MatrixView<T> right = a.block(0, k + nb, m, n - (k + nb));
      for (index_t i = 0; i < nb; ++i) {
        const index_t p = ipiv[k + i];
        if (p != k + i)
          for (index_t j = 0; j < right.cols; ++j)
            std::swap(right(k + i, j), right(p, j));
      }
      // A12 <- L11^{-1} A12
      trsm_left(Uplo::Lower, Diag::Unit, a.block(k, k, nb, nb),
                a.block(k, k + nb, nb, n - (k + nb)));
      // A22 <- A22 - A21 * A12
      if (k + nb < m) {
        ConstMatrixView<T> a21(a.block(k + nb, k, m - (k + nb), nb));
        ConstMatrixView<T> a12(a.block(k, k + nb, nb, n - (k + nb)));
        MatrixView<T> a22 = a.block(k + nb, k + nb, m - (k + nb), n - (k + nb));
        if constexpr (Parallel) {
          gemm_parallel(Op::N, Op::N, T{-1}, a21, a12, T{1}, a22);
        } else {
          gemm(Op::N, Op::N, T{-1}, a21, a12, T{1}, a22);
        }
      }
    }
  }
}

/// Blocked right-looking LU without pivoting (same structure, no swaps).
template <typename T, bool Parallel>
void getrf_nopivot_blocked(MatrixView<T> a) {
  const index_t m = a.rows, n = a.cols;
  const index_t kmax = std::min(m, n);
  constexpr index_t kBlock = 64;
  if (kmax <= kBlock) {
    getrf_nopivot_unblocked(a);
    return;
  }
  for (index_t k = 0; k < kmax; k += kBlock) {
    const index_t nb = std::min(kBlock, kmax - k);
    getrf_nopivot_unblocked(a.block(k, k, m - k, nb));
    if (k + nb < n) {
      trsm_left(Uplo::Lower, Diag::Unit, a.block(k, k, nb, nb),
                a.block(k, k + nb, nb, n - (k + nb)));
      if (k + nb < m) {
        ConstMatrixView<T> a21(a.block(k + nb, k, m - (k + nb), nb));
        ConstMatrixView<T> a12(a.block(k, k + nb, nb, n - (k + nb)));
        MatrixView<T> a22 = a.block(k + nb, k + nb, m - (k + nb), n - (k + nb));
        if constexpr (Parallel) {
          gemm_parallel(Op::N, Op::N, T{-1}, a21, a12, T{1}, a22);
        } else {
          gemm(Op::N, Op::N, T{-1}, a21, a12, T{1}, a22);
        }
      }
    }
  }
}

/// Whether the stream-mode LU drivers should use the dependency-graph
/// lookahead path: HODLRX_SCHED=graph, a matrix big enough to have panels
/// worth overlapping, a pool to overlap them on, and not already inside a
/// parallel region (graph workers need the pool's launch slot). Restricted
/// to n <= m so the kBlock column grid covers exactly the panels — every
/// square LU in the library qualifies.
inline bool lu_graph_eligible(index_t m, index_t n) {
  constexpr index_t kBlock = 64;
  if (n > m || n <= 2 * kBlock) return false;
  if (sched_mode() != SchedMode::kGraph) return false;
  return max_threads() > 1 && !in_parallel();
}

/// Dependency-graph lookahead LU (the classical right-looking DAG):
///   P(p)   = unblocked LU of panel p (+ global pivot indices)
///   U(p,j) = panel p's row swaps on column block j > p, then the L11^{-1}
///            TRSM and the trailing GEMM of that block
///   S(p,j) = panel p's row swaps on an already-factored block j < p
/// with edges P(p) <- U(p-1,p) and U/S(p,j) <- {P(p), last writer of block
/// j}. The critical-path edge P(p) -> U(p,p+1) is added LAST so the LIFO
/// ready stack schedules the next panel's prerequisite first (lookahead):
/// panel p+1 factors while panel p's remaining trailing blocks update. The
/// arithmetic per block is identical to getrf_blocked — only the
/// interleaving changes.
///
/// Every U(p,j) also READS panel p's columns (the TRSM triangle and the
/// GEMM's A21 operand), and later left-swap nodes S(p',p) WRITE rows of
/// those same columns. The tail[] chains only order writers, so the first
/// S(p',p) additionally takes fan-in edges from every U(p,·) reader
/// (readers[p], cleared once consumed; subsequent S nodes are ordered
/// through the tail[p] chain). The access auditor found this pair
/// unordered when the declarations below were first added.
template <typename T>
void getrf_graph(MatrixView<T> a, index_t* ipiv) {
  const index_t m = a.rows, n = a.cols;
  constexpr index_t kBlock = 64;
  const index_t np = (n + kBlock - 1) / kBlock;  // panels == column blocks
  TaskGraph gph;
  std::vector<TaskGraph::NodeId> tail(static_cast<std::size_t>(np),
                                      TaskGraph::NodeId{-1});
  // readers[j] = U(j,·) nodes that read panel j's columns and are not yet
  // ordered against a later swap of those columns.
  std::vector<std::vector<TaskGraph::NodeId>> readers(
      static_cast<std::size_t>(np));
  for (index_t p = 0; p < np; ++p) {
    const index_t k = p * kBlock;
    const index_t nb = std::min(kBlock, n - k);
    const TaskGraph::NodeId pn = gph.add(
        [=] {
          MatrixView<T> panel = a.block(k, k, m - k, nb);
          getrf_unblocked(panel, ipiv + k);
          for (index_t i = 0; i < nb; ++i) ipiv[k + i] += k;
        },
        "P", p);
    gph.writes(pn, a.data, k, m, k, k + nb);
    gph.writes(pn, ipiv, k, k + nb);
    if (tail[static_cast<std::size_t>(p)] >= 0)
      gph.add_edge(tail[static_cast<std::size_t>(p)], pn);
    tail[static_cast<std::size_t>(p)] = pn;
    for (index_t j = 0; j < p; ++j) {  // S(p,j): left swap-only nodes
      const index_t j0 = j * kBlock;
      const index_t jn = std::min(kBlock, n - j0);
      const TaskGraph::NodeId s = gph.add(
          [=] {
            MatrixView<T> left = a.block(0, j0, m, jn);
            for (index_t i = 0; i < nb; ++i) {
              const index_t piv = ipiv[k + i];
              if (piv != k + i)
                for (index_t jj = 0; jj < jn; ++jj)
                  std::swap(left(k + i, jj), left(piv, jj));
            }
          },
          "S", p, j);
      gph.writes(s, a.data, k, m, j0, j0 + jn);
      gph.reads(s, ipiv, k, k + nb);
      for (const TaskGraph::NodeId r : readers[static_cast<std::size_t>(j)])
        gph.add_edge(r, s);
      readers[static_cast<std::size_t>(j)].clear();
      gph.add_edge(tail[static_cast<std::size_t>(j)], s);
      gph.add_edge(pn, s);
      tail[static_cast<std::size_t>(j)] = s;
    }
    for (index_t j = np - 1; j > p; --j) {  // U(p,j), critical block last
      const index_t j0 = j * kBlock;
      const index_t jn = std::min(kBlock, n - j0);
      const TaskGraph::NodeId u = gph.add(
          [=] {
            MatrixView<T> blk = a.block(0, j0, m, jn);
            for (index_t i = 0; i < nb; ++i) {
              const index_t piv = ipiv[k + i];
              if (piv != k + i)
                for (index_t jj = 0; jj < jn; ++jj)
                  std::swap(blk(k + i, jj), blk(piv, jj));
            }
            trsm_left(Uplo::Lower, Diag::Unit, a.block(k, k, nb, nb),
                      a.block(k, j0, nb, jn));
            if (k + nb < m) {
              ConstMatrixView<T> a21(a.block(k + nb, k, m - (k + nb), nb));
              ConstMatrixView<T> a12(a.block(k, j0, nb, jn));
              MatrixView<T> a22 =
                  a.block(k + nb, j0, m - (k + nb), jn);
              gemm(Op::N, Op::N, T{-1}, a21, a12, T{1}, a22);
            }
          },
          "U", p, j);
      gph.reads(u, a.data, k, m, k, k + nb);  // panel p: TRSM tri + A21
      gph.reads(u, ipiv, k, k + nb);
      gph.writes(u, a.data, k, m, j0, j0 + jn);
      readers[static_cast<std::size_t>(p)].push_back(u);
      if (tail[static_cast<std::size_t>(j)] >= 0)
        gph.add_edge(tail[static_cast<std::size_t>(j)], u);
      gph.add_edge(pn, u);
      tail[static_cast<std::size_t>(j)] = u;
    }
  }
  gph.run();
}

/// Pivot-free variant of getrf_graph: no swap work, so only P(p) and the
/// TRSM+GEMM update nodes U(p,j) remain.
template <typename T>
void getrf_nopivot_graph(MatrixView<T> a) {
  const index_t m = a.rows, n = a.cols;
  constexpr index_t kBlock = 64;
  const index_t np = (n + kBlock - 1) / kBlock;
  TaskGraph gph;
  std::vector<TaskGraph::NodeId> tail(static_cast<std::size_t>(np),
                                      TaskGraph::NodeId{-1});
  for (index_t p = 0; p < np; ++p) {
    const index_t k = p * kBlock;
    const index_t nb = std::min(kBlock, n - k);
    const TaskGraph::NodeId pn = gph.add(
        [=] { getrf_nopivot_unblocked(a.block(k, k, m - k, nb)); }, "P", p);
    gph.writes(pn, a.data, k, m, k, k + nb);
    if (tail[static_cast<std::size_t>(p)] >= 0)
      gph.add_edge(tail[static_cast<std::size_t>(p)], pn);
    tail[static_cast<std::size_t>(p)] = pn;
    for (index_t j = np - 1; j > p; --j) {
      const index_t j0 = j * kBlock;
      const index_t jn = std::min(kBlock, n - j0);
      const TaskGraph::NodeId u = gph.add(
          [=] {
            trsm_left(Uplo::Lower, Diag::Unit, a.block(k, k, nb, nb),
                      a.block(k, j0, nb, jn));
            if (k + nb < m) {
              ConstMatrixView<T> a21(a.block(k + nb, k, m - (k + nb), nb));
              ConstMatrixView<T> a12(a.block(k, j0, nb, jn));
              MatrixView<T> a22 =
                  a.block(k + nb, j0, m - (k + nb), jn);
              gemm(Op::N, Op::N, T{-1}, a21, a12, T{1}, a22);
            }
          },
          "U", p, j);
      gph.reads(u, a.data, k, m, k, k + nb);  // panel p, never re-swapped
      gph.writes(u, a.data, k, m, j0, j0 + jn);
      if (tail[static_cast<std::size_t>(j)] >= 0)
        gph.add_edge(tail[static_cast<std::size_t>(j)], u);
      gph.add_edge(pn, u);
      tail[static_cast<std::size_t>(j)] = u;
    }
  }
  gph.run();
}

/// Flops the blocked drivers' internal trsm_left/gemm calls will record on
/// their own (mirrors the block loop exactly). Subtracted from the getrf
/// total so an LU is not double-counted; computed analytically so the
/// accounting stays exact under concurrent batched calls.
template <typename T>
std::uint64_t blocked_lu_internal_flops(index_t m, index_t n) {
  const index_t kmax = std::min(m, n);
  constexpr index_t kBlock = 64;
  if (kmax <= kBlock) return 0;
  const std::uint64_t scale = is_complex_v<T> ? 4ull : 1ull;
  std::uint64_t total = 0;
  for (index_t k = 0; k < kmax; k += kBlock) {
    const index_t nb = std::min(kBlock, kmax - k);
    if (k + nb < n) {
      const auto nbu = static_cast<std::uint64_t>(nb);
      const auto nc = static_cast<std::uint64_t>(n - k - nb);
      total += scale * nbu * nbu * nc;  // trsm_left on the A12 panel
      if (k + nb < m)
        total += scale * 2ull * static_cast<std::uint64_t>(m - k - nb) * nc *
                 nbu;  // trailing gemm update
    }
  }
  return total;
}

/// Book the non-internal remainder of an LU under kLu.
template <typename T>
void add_getrf_flops(index_t m, index_t n) {
  const std::uint64_t lu =
      FlopCounter::getrf_flops<T>(std::min(m, n));
  const std::uint64_t internal = blocked_lu_internal_flops<T>(m, n);
  if (lu > internal)
    FlopCounter::instance().add(FlopCounter::kLu, lu - internal);
}

/// Largest |entry| of a view (the lu_stats growth scan).
template <typename T>
double max_abs_entry(MatrixView<T> a) {
  double mx = 0;
  for (index_t j = 0; j < a.cols; ++j) {
    const T* col = a.data + j * a.ld;
    for (index_t i = 0; i < a.rows; ++i)
      mx = std::max(mx, static_cast<double>(abs_s(col[i])));
  }
  return mx;
}

/// RAII growth measurement around one LU: records max|LU| / max|A| when
/// tracking is on, costs a single branch otherwise.
template <typename T>
class GrowthScan {
 public:
  explicit GrowthScan(MatrixView<T> a) : a_(a) {
    if (lu_stats::detail::tracking()) before_ = max_abs_entry(a_);
  }
  ~GrowthScan() {
    if (before_ > 0) lu_stats::detail::record_growth(max_abs_entry(a_) / before_);
  }

 private:
  MatrixView<T> a_;
  double before_ = 0;
};

}  // namespace

template <typename T>
void getrf(MatrixView<T> a, index_t* ipiv) {
  if (std::min(a.rows, a.cols) == 0) return;
  GrowthScan<T> growth(a);
  getrf_blocked<T, false>(a, ipiv);
  add_getrf_flops<T>(a.rows, a.cols);
}

template <typename T>
void getrf_parallel(MatrixView<T> a, index_t* ipiv) {
  if (std::min(a.rows, a.cols) == 0) return;
  GrowthScan<T> growth(a);
  if (lu_graph_eligible(a.rows, a.cols))
    getrf_graph<T>(a, ipiv);
  else
    getrf_blocked<T, true>(a, ipiv);
  add_getrf_flops<T>(a.rows, a.cols);
}

template <typename T>
void getrf_nopivot(MatrixView<T> a) {
  if (std::min(a.rows, a.cols) == 0) return;
  HODLRX_REQUIRE(!fault::should_fire(fault::Site::kGetrfPivot),
                 "getrf_nopivot: zero pivot at column 0 (injected fault)");
  GrowthScan<T> growth(a);
  getrf_nopivot_blocked<T, false>(a);
  add_getrf_flops<T>(a.rows, a.cols);
}

template <typename T>
void getrf_nopivot_parallel(MatrixView<T> a) {
  if (std::min(a.rows, a.cols) == 0) return;
  HODLRX_REQUIRE(!fault::should_fire(fault::Site::kGetrfPivot),
                 "getrf_nopivot: zero pivot at column 0 (injected fault)");
  GrowthScan<T> growth(a);
  if (lu_graph_eligible(a.rows, a.cols))
    getrf_nopivot_graph<T>(a);
  else
    getrf_nopivot_blocked<T, true>(a);
  add_getrf_flops<T>(a.rows, a.cols);
}

template <typename T>
void laswp(MatrixView<T> b, const index_t* ipiv, index_t npiv, bool forward) {
  if (forward) {
    for (index_t k = 0; k < npiv; ++k) {
      const index_t p = ipiv[k];
      if (p != k)
        for (index_t j = 0; j < b.cols; ++j) std::swap(b(k, j), b(p, j));
    }
  } else {
    for (index_t k = npiv - 1; k >= 0; --k) {
      const index_t p = ipiv[k];
      if (p != k)
        for (index_t j = 0; j < b.cols; ++j) std::swap(b(k, j), b(p, j));
    }
  }
}

template <typename T>
void trsm_left(Uplo uplo, Diag diag, NoDeduce<ConstMatrixView<T>> a,
               MatrixView<T> b) {
  const index_t n = a.rows;
  HODLRX_REQUIRE(a.cols == n && b.rows == n, "trsm_left: shape mismatch");
  // The engine falls back to the reference kernel below the diagonal-block
  // size, so this single call covers both regimes.
  trsm_left_blocked<T>(uplo, diag, a, b);
  FlopCounter::instance().add(
      FlopCounter::kTrsm,
      (is_complex_v<T> ? 4ull : 1ull) * static_cast<std::uint64_t>(n) *
          static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(b.cols));
}

template <typename T>
void getrs(NoDeduce<ConstMatrixView<T>> lu, const index_t* ipiv,
           MatrixView<T> b) {
  HODLRX_REQUIRE(lu.rows == lu.cols && lu.rows == b.rows,
                 "getrs: shape mismatch");
  laswp(b, ipiv, lu.rows, /*forward=*/true);
  trsm_left(Uplo::Lower, Diag::Unit, lu, b);
  trsm_left(Uplo::Upper, Diag::NonUnit, lu, b);
}

template <typename T>
void getrs_nopivot(NoDeduce<ConstMatrixView<T>> lu, MatrixView<T> b) {
  HODLRX_REQUIRE(lu.rows == lu.cols && lu.rows == b.rows,
                 "getrs_nopivot: shape mismatch");
  trsm_left(Uplo::Lower, Diag::Unit, lu, b);
  trsm_left(Uplo::Upper, Diag::NonUnit, lu, b);
}

template <typename T>
void getrs_parallel(NoDeduce<ConstMatrixView<T>> lu, const index_t* ipiv,
                    MatrixView<T> b) {
  HODLRX_REQUIRE(lu.rows == lu.cols && lu.rows == b.rows,
                 "getrs_parallel: shape mismatch");
  laswp(b, ipiv, lu.rows, /*forward=*/true);
  trsm_left_parallel<T>(Uplo::Lower, Diag::Unit, lu, b);
  trsm_left_parallel<T>(Uplo::Upper, Diag::NonUnit, lu, b);
}

template <typename T>
void getrs_nopivot_parallel(NoDeduce<ConstMatrixView<T>> lu, MatrixView<T> b) {
  HODLRX_REQUIRE(lu.rows == lu.cols && lu.rows == b.rows,
                 "getrs_nopivot_parallel: shape mismatch");
  trsm_left_parallel<T>(Uplo::Lower, Diag::Unit, lu, b);
  trsm_left_parallel<T>(Uplo::Upper, Diag::NonUnit, lu, b);
}

namespace {

/// Compute a Householder reflector H = I - tau * v v^H annihilating
/// x[1..n) into x[0]; v[0] = 1 implied, v stored in x[1..n). Returns tau and
/// replaces x[0] with the resulting "beta" value (the new diagonal of R).
template <typename T>
T make_householder(T* x, index_t n) {
  if (n <= 1) {
    return T{};
  }
  // The branchy parameter math is shared with the across-batch SIMD panel
  // (lapack.hpp::householder_params), so both paths produce the same
  // tau/scale/beta bit-for-bit.
  const HouseholderParams<T> p =
      householder_params<T>(x[0], norm2(x + 1, n - 1));
  if (!p.apply) return T{};
  for (index_t i = 1; i < n; ++i) x[i] *= p.scale;
  x[0] = p.beta;
  return p.tau;
}

/// Apply H = I - tau v v^H (v from column `k` of `factors`, v[0]=1 implied)
/// to C (rows k..m).
template <typename T>
void apply_householder(ConstMatrixView<T> factors, index_t k, T tau,
                       MatrixView<T> c) {
  if (tau == T{}) return;
  const index_t m = factors.rows;
  const T* __restrict__ v = factors.data + k + k * factors.ld;  // v[0] = beta slot
  for (index_t j = 0; j < c.cols; ++j) {
    T* __restrict__ cj = c.data + k + j * c.ld;
    // w = v^H * c(k:m, j), with v[0] treated as 1.
    T w = cj[0];
    for (index_t i = 1; i < m - k; ++i) w += conj_s(v[i]) * cj[i];
    w *= tau;
    cj[0] -= w;
    for (index_t i = 1; i < m - k; ++i) cj[i] -= v[i] * w;
  }
}

/// Book the non-GEMM remainder of a QR under kOther (the panel reflections
/// and larft recurrence). Mirrors add_getrf_flops.
template <typename T>
void add_geqrf_flops(index_t m, index_t n, std::uint64_t internal) {
  const std::uint64_t total = (is_complex_v<T> ? 4ull : 1ull) * 2ull *
                              static_cast<std::uint64_t>(m) *
                              static_cast<std::uint64_t>(n) *
                              static_cast<std::uint64_t>(std::min(m, n));
  if (total > internal)
    FlopCounter::instance().add(FlopCounter::kOther, total - internal);
}

}  // namespace

template <typename T>
std::uint64_t blocked_qr_internal_flops(index_t m, index_t kmax,
                                        index_t ntotal, index_t nb) {
  std::uint64_t total = 0;
  for (index_t k = 0; k < kmax; k += nb) {
    const index_t ib = std::min(nb, kmax - k);
    const index_t mr = m - k;
    const index_t nc = ntotal - k - ib;
    if (nc <= 0) continue;
    total += FlopCounter::gemm_flops<T>(ib, ib, mr);  // Gram G = V^H V
    total += FlopCounter::gemm_flops<T>(ib, nc, mr);  // W  = V^H C
    total += FlopCounter::gemm_flops<T>(ib, nc, ib);  // W2 = T^H W
    total += FlopCounter::gemm_flops<T>(mr, nc, ib);  // C -= V W2
  }
  return total;
}

template <typename T>
void geqrf_panel(MatrixView<T> a, T* tau) {
  const index_t m = a.rows, n = a.cols;
  const index_t kmax = std::min(m, n);
  for (index_t k = 0; k < kmax; ++k) {
    tau[k] = make_householder(a.data + k + k * a.ld, m - k);
    if (k + 1 < n)
      apply_householder<T>(a, k, conj_s(tau[k]),
                           a.block(0, k + 1, m, n - k - 1));
  }
}

template <typename T>
void thin_q_panel(MatrixView<T> a, const T* tau) {
  const index_t m = a.rows, k = a.cols;
  HODLRX_REQUIRE(k <= m, "thin_q_panel: need cols <= rows");
  // Backward over reflectors: apply H_j to the already-formed columns to the
  // right, then overwrite column j with H_j e_j = e_j - tau_j v_j.
  for (index_t j = k - 1; j >= 0; --j) {
    if (j + 1 < k)
      apply_householder<T>(a, j, tau[j], a.block(0, j + 1, m, k - j - 1));
    T* __restrict__ cj = a.data + j * a.ld;
    const T tj = tau[j];
    for (index_t i = j + 1; i < m; ++i) cj[i] *= -tj;
    cj[j] = T{1} - tj;
    for (index_t i = 0; i < j; ++i) cj[i] = T{};
  }
}

template <typename T>
void copy_reflectors(NoDeduce<ConstMatrixView<T>> panel, MatrixView<T> v) {
  HODLRX_REQUIRE(panel.rows == v.rows && panel.cols == v.cols,
                 "copy_reflectors: shape mismatch");
  for (index_t j = 0; j < panel.cols; ++j) {
    T* __restrict__ vj = v.data + j * v.ld;
    const T* __restrict__ pj = panel.data + j * panel.ld;
    for (index_t i = 0; i < j && i < panel.rows; ++i) vj[i] = T{};
    if (j < panel.rows) vj[j] = T{1};
    for (index_t i = j + 1; i < panel.rows; ++i) vj[i] = pj[i];
  }
}

template <typename T>
void larft_forward(NoDeduce<ConstMatrixView<T>> v, const T* tau,
                   MatrixView<T> t) {
  const index_t ib = v.cols;
  HODLRX_REQUIRE(t.rows >= ib && t.cols >= ib, "larft_forward: t too small");
  // One Gram GEMM supplies every V(:,0:j)^H v_j column at engine speed.
  Matrix<T> g(ib, ib);
  gemm(Op::C, Op::N, T{1}, v, v, T{0}, g.view());
  // The block-reflector GEMMs read t as a FULL ib x ib operand (possibly
  // from uninitialized workspace), so every entry must be written: zeros
  // below the diagonal too.
  for (index_t j = 0; j < ib; ++j) {
    for (index_t i = 0; i < j; ++i) t(i, j) = T{};
    for (index_t i = j + 1; i < ib; ++i) t(i, j) = T{};
    t(j, j) = tau[j];
    if (tau[j] == T{}) continue;
    // t(0:j, j) = -tau_j * T(0:j, 0:j) * G(0:j, j), T upper triangular.
    for (index_t i = j - 1; i >= 0; --i) {
      T sum = T{};
      for (index_t c = i; c < j; ++c) sum += t(i, c) * g(c, j);
      t(i, j) = -tau[j] * sum;
    }
  }
}

namespace {

/// Shared trailing-window update of both blocked drivers:
///   geqrf (adjoint=true):  C -= V (T^H (V^H C))   — applies Q_panel^H
///   thin_q (adjoint=false): C -= V (T   (V^H C))  — applies Q_panel
/// `parallel_update` routes the flop-carrying final multiply through
/// gemm_parallel (the stream-mode drivers for few, large problems).
template <typename T>
void apply_block_reflector(ConstMatrixView<T> v, ConstMatrixView<T> t,
                           bool adjoint, bool parallel_update, MatrixView<T> c,
                           MatrixView<T> w, MatrixView<T> w2) {
  gemm(Op::C, Op::N, T{1}, v, ConstMatrixView<T>(c), T{0}, w);
  gemm(adjoint ? Op::C : Op::N, Op::N, T{1}, t, ConstMatrixView<T>(w), T{0},
       w2);
  if (parallel_update)
    gemm_parallel(Op::N, Op::N, T{-1}, v, ConstMatrixView<T>(w2), T{1}, c);
  else
    gemm(Op::N, Op::N, T{-1}, v, ConstMatrixView<T>(w2), T{1}, c);
}

/// Book the non-GEMM remainder of an explicit thin-Q formation (model:
/// 2 m k^2) under kOther, mirroring add_geqrf_flops so FlopCounter totals
/// agree between the in-place and strided-batched paths.
template <typename T>
void add_thin_q_flops(index_t m, index_t k, std::uint64_t internal) {
  const std::uint64_t total = (is_complex_v<T> ? 4ull : 1ull) * 2ull *
                              static_cast<std::uint64_t>(m) *
                              static_cast<std::uint64_t>(k) *
                              static_cast<std::uint64_t>(k);
  if (total > internal)
    FlopCounter::instance().add(FlopCounter::kOther, total - internal);
}

template <typename T>
void geqrf_inplace_impl(MatrixView<T> a, T* tau, bool parallel_update) {
  const index_t m = a.rows, n = a.cols;
  const index_t kmax = std::min(m, n);
  if (kmax == 0) return;
  const index_t nb = resolved_blocking<T>().qr_nb;
  if (kmax <= nb) {
    geqrf_panel(a, tau);
    add_geqrf_flops<T>(m, n, 0);
    return;
  }
  Matrix<T> v(m, nb), t(nb, nb), w(nb, n), w2(nb, n);
  for (index_t k = 0; k < kmax; k += nb) {
    const index_t ib = std::min(nb, kmax - k);
    const index_t mr = m - k, nc = n - k - ib;
    MatrixView<T> panel = a.block(k, k, mr, ib);
    geqrf_panel(panel, tau + k);
    if (nc > 0) {
      MatrixView<T> vk = v.block(0, 0, mr, ib);
      copy_reflectors<T>(panel, vk);
      larft_forward<T>(vk, tau + k, t.view());
      apply_block_reflector<T>(
          vk, t.block(0, 0, ib, ib), /*adjoint=*/true, parallel_update,
          a.block(k, k + ib, mr, nc), w.block(0, 0, ib, nc),
          w2.block(0, 0, ib, nc));
    }
  }
  add_geqrf_flops<T>(m, n, blocked_qr_internal_flops<T>(m, kmax, n, nb));
}

template <typename T>
void thin_q_inplace_impl(MatrixView<T> a, const T* tau, bool parallel_update) {
  const index_t m = a.rows, k = a.cols;
  HODLRX_REQUIRE(k <= m, "thin_q_inplace: need cols <= rows");
  if (k == 0) return;
  const index_t nb = resolved_blocking<T>().qr_nb;
  if (k <= nb) {
    thin_q_panel(a, tau);
    add_thin_q_flops<T>(m, k, 0);
    return;
  }
  Matrix<T> v(m, nb), t(nb, nb), w(nb, k), w2(nb, k);
  for (index_t kk = ((k - 1) / nb) * nb; kk >= 0; kk -= nb) {
    const index_t ib = std::min(nb, k - kk);
    const index_t mr = m - kk, nc = k - kk - ib;
    MatrixView<T> panel = a.block(kk, kk, mr, ib);
    if (nc > 0) {
      MatrixView<T> vk = v.block(0, 0, mr, ib);
      copy_reflectors<T>(panel, vk);
      larft_forward<T>(vk, tau + kk, t.view());
      apply_block_reflector<T>(
          vk, t.block(0, 0, ib, ib), /*adjoint=*/false, parallel_update,
          a.block(kk, kk + ib, mr, nc), w.block(0, 0, ib, nc),
          w2.block(0, 0, ib, nc));
    }
    // The block's own columns: org2r on the panel, zeros above it.
    thin_q_panel(panel, tau + kk);
    if (kk > 0)
      for (index_t j = 0; j < ib; ++j)
        std::fill_n(a.data + (kk + j) * a.ld, kk, T{});
  }
  add_thin_q_flops<T>(m, k, blocked_qr_internal_flops<T>(m, k, k, nb));
}

}  // namespace

template <typename T>
void geqrf_inplace(MatrixView<T> a, T* tau) {
  geqrf_inplace_impl<T>(a, tau, /*parallel_update=*/false);
}

template <typename T>
void geqrf_inplace_parallel(MatrixView<T> a, T* tau) {
  geqrf_inplace_impl<T>(a, tau, /*parallel_update=*/true);
}

template <typename T>
void thin_q_inplace(MatrixView<T> a, const T* tau) {
  thin_q_inplace_impl<T>(a, tau, /*parallel_update=*/false);
}

template <typename T>
void thin_q_inplace_parallel(MatrixView<T> a, const T* tau) {
  thin_q_inplace_impl<T>(a, tau, /*parallel_update=*/true);
}

template <typename T>
QRFactors<T> geqrf(ConstMatrixView<T> a) {
  QRFactors<T> qr;
  qr.factors = to_matrix(a);
  qr.tau.assign(std::min(a.rows, a.cols), T{});
  geqrf_inplace<T>(qr.factors, qr.tau.data());
  return qr;
}

template <typename T>
Matrix<T> thin_q(const QRFactors<T>& qr) {
  const index_t m = qr.factors.rows();
  const index_t k = static_cast<index_t>(qr.tau.size());
  Matrix<T> q = to_matrix(qr.factors.block(0, 0, m, k));
  thin_q_inplace<T>(q.view(), qr.tau.data());
  return q;
}

template <typename T>
QRFactors<T> geqrf_reference(ConstMatrixView<T> a) {
  QRFactors<T> qr;
  qr.factors = to_matrix(a);
  const index_t m = a.rows, n = a.cols;
  const index_t kmax = std::min(m, n);
  qr.tau.assign(kmax, T{});
  geqrf_panel<T>(qr.factors, qr.tau.data());
  add_geqrf_flops<T>(m, n, 0);
  return qr;
}

template <typename T>
Matrix<T> thin_q_reference(const QRFactors<T>& qr) {
  const index_t m = qr.factors.rows();
  const index_t k = static_cast<index_t>(qr.tau.size());
  Matrix<T> q(m, k);
  for (index_t j = 0; j < k; ++j) q(j, j) = T{1};
  ConstMatrixView<T> f = qr.factors;
  for (index_t j = k - 1; j >= 0; --j)
    apply_householder<T>(f, j, qr.tau[j], q.block(0, 0, m, k));
  return q;
}

template <typename T>
Matrix<T> r_factor(const QRFactors<T>& qr) {
  const index_t n = qr.factors.cols();
  const index_t k = static_cast<index_t>(qr.tau.size());
  Matrix<T> r(k, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= std::min(j, k - 1); ++i)
      r(i, j) = qr.factors(i, j);
  return r;
}

template <typename T>
CPQRFactors<T> geqp3(ConstMatrixView<T> a, NoDeduce<real_t<T>> tol,
                     index_t max_rank) {
  using R = real_t<T>;
  CPQRFactors<T> out;
  out.factors = to_matrix(a);
  const index_t m = a.rows, n = a.cols;
  const index_t kmax = std::min({m, n, max_rank < 0 ? n : max_rank});
  out.tau.assign(std::min(m, n), T{});
  out.jpvt.resize(n);
  for (index_t j = 0; j < n; ++j) out.jpvt[j] = j;

  MatrixView<T> f = out.factors;
  std::vector<R> colnorm(n), colnorm0(n);
  for (index_t j = 0; j < n; ++j)
    colnorm[j] = colnorm0[j] = norm2(f.data + j * f.ld, m);
  const R nrm_max0 = *std::max_element(colnorm.begin(), colnorm.end());
  if (nrm_max0 == R{0}) return out;  // zero matrix: rank 0

  index_t k = 0;
  for (; k < kmax; ++k) {
    // Select the column with the largest remaining norm.
    index_t p = k;
    for (index_t j = k + 1; j < n; ++j)
      if (colnorm[j] > colnorm[p]) p = j;
    if (colnorm[p] <= tol * nrm_max0) break;
    if (p != k) {
      for (index_t i = 0; i < m; ++i) std::swap(f(i, k), f(i, p));
      std::swap(colnorm[k], colnorm[p]);
      std::swap(colnorm0[k], colnorm0[p]);
      std::swap(out.jpvt[k], out.jpvt[p]);
    }
    out.tau[k] = make_householder(f.data + k + k * f.ld, m - k);
    if (k + 1 < n)
      apply_householder<T>(f, k, conj_s(out.tau[k]),
                           f.block(0, k + 1, m, n - k - 1));
    // Downdate remaining column norms; recompute when cancellation bites.
    for (index_t j = k + 1; j < n; ++j) {
      if (colnorm[j] == R{0}) continue;
      R t = abs_s(f(k, j)) / colnorm[j];
      t = std::max(R{0}, (R{1} + t) * (R{1} - t));
      const R ratio = colnorm[j] / colnorm0[j];
      if (t * ratio * ratio <= R{100} * eps_v<T>) {
        colnorm[j] = (k + 1 < m)
                         ? norm2(f.data + (k + 1) + j * f.ld, m - k - 1)
                         : R{0};
        colnorm0[j] = colnorm[j];
      } else {
        colnorm[j] *= std::sqrt(t);
      }
    }
  }
  out.rank = k;
  return out;
}

namespace svd_stats {
namespace {
std::atomic<std::uint64_t> g_serial{0}, g_nonconverged{0}, g_batched{0},
    g_sweep_launches{0};
}  // namespace
std::uint64_t serial_svds() {
  return g_serial.load(std::memory_order_relaxed);
}
std::uint64_t nonconverged() {
  return g_nonconverged.load(std::memory_order_relaxed);
}
std::uint64_t batched_sweeps() {
  return g_batched.load(std::memory_order_relaxed);
}
std::uint64_t sweep_launches() {
  return g_sweep_launches.load(std::memory_order_relaxed);
}
void reset() {
  g_serial.store(0, std::memory_order_relaxed);
  g_nonconverged.store(0, std::memory_order_relaxed);
  g_batched.store(0, std::memory_order_relaxed);
  g_sweep_launches.store(0, std::memory_order_relaxed);
}
namespace detail {
void add_serial() { g_serial.fetch_add(1, std::memory_order_relaxed); }
void add_nonconverged(std::uint64_t n) {
  g_nonconverged.fetch_add(n, std::memory_order_relaxed);
}
void add_batched_sweep() { g_batched.fetch_add(1, std::memory_order_relaxed); }
void add_sweep_launch() {
  g_sweep_launches.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail
}  // namespace svd_stats

namespace lu_stats {
namespace {
std::atomic<int> g_tracking{0};
std::atomic<double> g_max_growth{0.0};
}  // namespace
double max_pivot_growth() {
  return g_max_growth.load(std::memory_order_relaxed);
}
void reset() { g_max_growth.store(0.0, std::memory_order_relaxed); }
ScopedTracking::ScopedTracking(bool enable) : enabled_(enable) {
  if (enabled_) g_tracking.fetch_add(1, std::memory_order_relaxed);
}
ScopedTracking::~ScopedTracking() {
  if (enabled_) g_tracking.fetch_sub(1, std::memory_order_relaxed);
}
namespace detail {
bool tracking() { return g_tracking.load(std::memory_order_relaxed) > 0; }
void record_growth(double ratio) {
  double cur = g_max_growth.load(std::memory_order_relaxed);
  while (ratio > cur && !g_max_growth.compare_exchange_weak(
                            cur, ratio, std::memory_order_relaxed)) {
  }
}
}  // namespace detail
}  // namespace lu_stats

int svd_max_sweeps() {
  // Deliberately NOT cached in a static: one getenv per SVD call is noise,
  // and rereading lets tests drive the non-convergence path at runtime.
  return static_cast<int>(env_positive("HODLRX_SVD_SWEEPS", 42, 1));
}

template <typename T>
bool jacobi_sweep_gram(MatrixView<T> w, MatrixView<T> v, MatrixView<T> g,
                       NoDeduce<real_t<T>> tol) {
  using R = real_t<T>;
  const index_t m = w.rows, n = w.cols;
  // Deflation scale: the largest Gram diagonal at sweep start (rotations
  // only shuffle mass between diagonal entries, so this is stable to O(1)
  // within the sweep). See jacobi_rotation_params.
  R gmax = R{0};
  for (index_t j = 0; j < n; ++j)
    gmax = std::max(gmax, ScalarTraits<T>::real(g(j, j)));
  bool rotated = false;
  for (index_t p = 0; p < n - 1; ++p) {
    for (index_t q = p + 1; q < n; ++q) {
      // The rotated diagonal entries can round to tiny negatives; clamp so
      // the convergence test never feeds sqrt a negative.
      const R alpha = std::max(R{0}, ScalarTraits<T>::real(g(p, p)));
      const R beta = std::max(R{0}, ScalarTraits<T>::real(g(q, q)));
      // Rotation parameters shared with the across-batch sweep
      // (lapack.hpp::jacobi_rotation_params) — same formulas bit-for-bit.
      const JacobiRotation<T> rot =
          jacobi_rotation_params<T>(alpha, beta, g(p, q), tol, gmax);
      if (!rot.rotate) continue;
      rotated = true;
      const R c = rot.c;
      const T s = rot.s;
      T* __restrict__ wp = w.data + p * w.ld;
      T* __restrict__ wq = w.data + q * w.ld;
      for (index_t i = 0; i < m; ++i) {
        const T xp = wp[i], xq = wq[i];
        wp[i] = T{c} * xp - conj_s(s) * xq;
        wq[i] = s * xp + T{c} * xq;
      }
      T* __restrict__ vp = v.data + p * v.ld;
      T* __restrict__ vq = v.data + q * v.ld;
      for (index_t i = 0; i < n; ++i) {
        const T xp = vp[i], xq = vq[i];
        vp[i] = T{c} * xp - conj_s(s) * xq;
        vq[i] = s * xp + T{c} * xq;
      }
      // G <- M^H G M for the 2-column rotation M, O(n) instead of the O(m)
      // dot products: columns p,q then rows p,q.
      for (index_t j = 0; j < n; ++j) {
        const T xp = g(j, p), xq = g(j, q);
        g(j, p) = T{c} * xp - conj_s(s) * xq;
        g(j, q) = s * xp + T{c} * xq;
      }
      for (index_t j = 0; j < n; ++j) {
        const T xp = g(p, j), xq = g(q, j);
        g(p, j) = T{c} * xp - s * xq;
        g(q, j) = conj_s(s) * xp + T{c} * xq;
      }
    }
  }
  return rotated;
}

template <typename T>
void jacobi_finalize(MatrixView<T> w, MatrixView<T> v, real_t<T>* s) {
  using R = real_t<T>;
  const index_t m = w.rows, n = w.cols;
  std::vector<index_t> order(n);
  std::vector<R> nrm(n);
  for (index_t j = 0; j < n; ++j) {
    nrm[j] = norm2(w.data + j * w.ld, m);
    order[j] = j;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](index_t x, index_t y) { return nrm[x] > nrm[y]; });
  for (index_t j = 0; j < n; ++j) s[j] = nrm[order[j]];
  // Permute the columns of w and v in place by cycle-following (destination
  // j receives source order[j]) — two column buffers of scratch instead of
  // full-matrix copies, since this runs once per problem inside the batched
  // finalize pool launch.
  std::vector<T> colw(static_cast<std::size_t>(m)), colv(static_cast<std::size_t>(n));
  std::vector<char> placed(static_cast<std::size_t>(n), 0);
  for (index_t j0 = 0; j0 < n; ++j0) {
    if (placed[j0]) continue;
    std::copy_n(w.data + j0 * w.ld, m, colw.data());
    std::copy_n(v.data + j0 * v.ld, n, colv.data());
    index_t dst = j0;
    while (true) {
      const index_t src = order[dst];
      placed[dst] = 1;
      if (src == j0) {
        std::copy_n(colw.data(), m, w.data + dst * w.ld);
        std::copy_n(colv.data(), n, v.data + dst * v.ld);
        break;
      }
      std::copy_n(w.data + src * w.ld, m, w.data + dst * w.ld);
      std::copy_n(v.data + src * v.ld, n, v.data + dst * v.ld);
      dst = src;
    }
  }
  // Normalize the ordered columns of w into U (zero columns where s = 0).
  for (index_t j = 0; j < n; ++j) {
    const T inv = T{s[j] > R{0} ? R{1} / s[j] : R{0}};
    T* __restrict__ wj = w.data + j * w.ld;
    for (index_t i = 0; i < m; ++i) wj[i] *= inv;
  }
}

template <typename T>
SvdInfo jacobi_svd_inplace(MatrixView<T> w, MatrixView<T> v, real_t<T>* s) {
  using R = real_t<T>;
  const index_t m = w.rows, n = w.cols;
  HODLRX_REQUIRE(n <= m, "jacobi_svd_inplace: need cols <= rows ("
                             << m << "x" << n
                             << "); pass a^H for wide blocks");
  HODLRX_REQUIRE(v.rows == n && v.cols == n,
                 "jacobi_svd_inplace: v must be " << n << "x" << n);
  for (index_t j = 0; j < n; ++j) {
    std::fill_n(v.data + j * v.ld, n, T{});
    v(j, j) = T{1};
  }
  SvdInfo info;
  if (n > 1) {
    const R tol = R{32} * eps_v<T>;
    const int max_sweeps = svd_max_sweeps();
    Matrix<T> g(n, n);
    bool rotated = true;
    while (rotated && info.sweeps < max_sweeps) {
      gemm(Op::C, Op::N, T{1}, ConstMatrixView<T>(w), ConstMatrixView<T>(w),
           T{0}, g.view());
      rotated = jacobi_sweep_gram<T>(w, v, g.view(), tol);
      ++info.sweeps;
    }
    info.converged = !rotated;
    if (!info.converged) {
      svd_stats::detail::add_nonconverged(1);
#ifndef NDEBUG
      HODLRX_REQUIRE(false, "jacobi_svd: not converged after "
                                << info.sweeps
                                << " sweeps (raise HODLRX_SVD_SWEEPS)");
#endif
    }
  }
  jacobi_finalize<T>(w, v, s);
  return info;
}

template <typename T>
SVDResult<T> jacobi_svd(ConstMatrixView<T> a) {
  svd_stats::detail::add_serial();
  if (a.rows == 0 || a.cols == 0) return {};
  // Work on a tall copy: if a is wide, factor a^H and swap U <-> V.
  const bool flip = a.rows < a.cols;
  Matrix<T> w = flip ? transpose(a, /*conjugate=*/true) : to_matrix(a);
  const index_t n = w.cols();
  Matrix<T> v(n, n);
  SVDResult<T> out;
  out.s.resize(n);
  const SvdInfo info = jacobi_svd_inplace<T>(w.view(), v.view(), out.s.data());
  out.sweeps = info.sweeps;
  out.converged = info.converged;
  if (flip) {
    out.u = std::move(v);
    out.v = std::move(w);
  } else {
    out.u = std::move(w);
    out.v = std::move(v);
  }
  return out;
}

template <typename T>
SVDResult<T> jacobi_svd_reference(ConstMatrixView<T> a) {
  using R = real_t<T>;
  if (a.rows == 0 || a.cols == 0) return {};
  // Work on a tall copy: if a is wide, factor a^H and swap U <-> V.
  const bool flip = a.rows < a.cols;
  Matrix<T> w = flip ? transpose(a, /*conjugate=*/true) : to_matrix(a);
  const index_t m = w.rows(), n = w.cols();
  Matrix<T> v = Matrix<T>::identity(n);

  SVDResult<T> out;
  const R tol = R{32} * eps_v<T>;
  const int max_sweeps = svd_max_sweeps();
  bool rotated = n > 1;
  while (rotated && out.sweeps < max_sweeps) {
    rotated = false;
    ++out.sweeps;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        T* __restrict__ wp = w.data() + p * m;
        T* __restrict__ wq = w.data() + q * m;
        R alpha{}, beta{};
        T gamma{};
        for (index_t i = 0; i < m; ++i) {
          alpha += abs2_s(wp[i]);
          beta += abs2_s(wq[i]);
          gamma += conj_s(wp[i]) * wq[i];
        }
        const R g = abs_s(gamma);
        if (g <= tol * std::sqrt(alpha * beta) || g == R{0}) continue;
        rotated = true;
        // Phase so that the rotated off-diagonal is real, then a real
        // Jacobi rotation (c, s_r).
        const T phase = gamma / T{g};
        const R zeta = (beta - alpha) / (R{2} * g);
        const R t = (zeta >= R{0} ? R{1} : R{-1}) /
                    (std::abs(zeta) + std::sqrt(R{1} + zeta * zeta));
        const R c = R{1} / std::sqrt(R{1} + t * t);
        const R sr = c * t;
        const T s = phase * T{sr};
        for (index_t i = 0; i < m; ++i) {
          const T xp = wp[i], xq = wq[i];
          wp[i] = T{c} * xp - conj_s(s) * xq;
          wq[i] = s * xp + T{c} * xq;
        }
        T* __restrict__ vp = v.data() + p * n;
        T* __restrict__ vq = v.data() + q * n;
        for (index_t i = 0; i < n; ++i) {
          const T xp = vp[i], xq = vq[i];
          vp[i] = T{c} * xp - conj_s(s) * xq;
          vq[i] = s * xp + T{c} * xq;
        }
      }
    }
  }
  out.converged = !rotated;
  if (!out.converged) svd_stats::detail::add_nonconverged(1);

  out.s.resize(n);
  jacobi_finalize<T>(w.view(), v.view(), out.s.data());
  if (flip) {
    out.u = std::move(v);
    out.v = std::move(w);
  } else {
    out.u = std::move(w);
    out.v = std::move(v);
  }
  return out;
}

template <typename T>
Matrix<T> dense_solve(ConstMatrixView<T> a, NoDeduce<ConstMatrixView<T>> b) {
  Matrix<T> lu = to_matrix(a);
  std::vector<index_t> ipiv(a.rows);
  getrf(lu.view(), ipiv.data());
  Matrix<T> x = to_matrix(b);
  getrs(ConstMatrixView<T>(lu), ipiv.data(), x.view());
  return x;
}

#define HODLRX_INSTANTIATE_LAPACK(T)                                        \
  template void getrf<T>(MatrixView<T>, index_t*);                          \
  template void getrf_parallel<T>(MatrixView<T>, index_t*);                 \
  template void getrf_nopivot<T>(MatrixView<T>);                            \
  template void getrf_nopivot_parallel<T>(MatrixView<T>);                   \
  template void laswp<T>(MatrixView<T>, const index_t*, index_t, bool);     \
  template void getrs<T>(NoDeduce<ConstMatrixView<T>>, const index_t*,     \
                         MatrixView<T>);                                    \
  template void getrs_nopivot<T>(NoDeduce<ConstMatrixView<T>>,              \
                                 MatrixView<T>);                            \
  template void getrs_parallel<T>(NoDeduce<ConstMatrixView<T>>,             \
                                  const index_t*, MatrixView<T>);           \
  template void getrs_nopivot_parallel<T>(NoDeduce<ConstMatrixView<T>>,     \
                                          MatrixView<T>);                   \
  template void trsm_left<T>(Uplo, Diag, NoDeduce<ConstMatrixView<T>>,      \
                             MatrixView<T>);                                \
  template void geqrf_panel<T>(MatrixView<T>, T*);                          \
  template void thin_q_panel<T>(MatrixView<T>, const T*);                   \
  template void copy_reflectors<T>(NoDeduce<ConstMatrixView<T>>,            \
                                   MatrixView<T>);                          \
  template void larft_forward<T>(NoDeduce<ConstMatrixView<T>>, const T*,    \
                                 MatrixView<T>);                            \
  template void geqrf_inplace<T>(MatrixView<T>, T*);                        \
  template void geqrf_inplace_parallel<T>(MatrixView<T>, T*);               \
  template void thin_q_inplace<T>(MatrixView<T>, const T*);                 \
  template void thin_q_inplace_parallel<T>(MatrixView<T>, const T*);        \
  template QRFactors<T> geqrf<T>(ConstMatrixView<T>);                       \
  template Matrix<T> thin_q<T>(const QRFactors<T>&);                        \
  template QRFactors<T> geqrf_reference<T>(ConstMatrixView<T>);             \
  template Matrix<T> thin_q_reference<T>(const QRFactors<T>&);              \
  template std::uint64_t blocked_qr_internal_flops<T>(index_t, index_t,     \
                                                      index_t, index_t);    \
  template Matrix<T> r_factor<T>(const QRFactors<T>&);                      \
  template CPQRFactors<T> geqp3<T>(ConstMatrixView<T>, NoDeduce<real_t<T>>,  \
                                   index_t);                                \
  template bool jacobi_sweep_gram<T>(MatrixView<T>, MatrixView<T>,          \
                                     MatrixView<T>, NoDeduce<real_t<T>>);   \
  template void jacobi_finalize<T>(MatrixView<T>, MatrixView<T>,            \
                                   real_t<T>*);                             \
  template SvdInfo jacobi_svd_inplace<T>(MatrixView<T>, MatrixView<T>,      \
                                         real_t<T>*);                       \
  template SVDResult<T> jacobi_svd<T>(ConstMatrixView<T>);                  \
  template SVDResult<T> jacobi_svd_reference<T>(ConstMatrixView<T>);        \
  template Matrix<T> dense_solve<T>(ConstMatrixView<T>,                    \
                                    NoDeduce<ConstMatrixView<T>>);

HODLRX_INSTANTIATE_LAPACK(float)
HODLRX_INSTANTIATE_LAPACK(double)
HODLRX_INSTANTIATE_LAPACK(std::complex<float>)
HODLRX_INSTANTIATE_LAPACK(std::complex<double>)

#undef HODLRX_INSTANTIATE_LAPACK

}  // namespace hodlrx
