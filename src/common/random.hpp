#pragma once

#include <random>

#include "common/matrix.hpp"
#include "common/scalar.hpp"

/// \file random.hpp
/// Seeded random number generation for reproducible experiments.

namespace hodlrx {

/// A thin, deterministic RNG wrapper (mt19937_64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : eng_(seed) {}

  /// Uniform real in [lo, hi).
  template <typename R>
  R uniform(R lo, R hi) {
    std::uniform_real_distribution<R> d(lo, hi);
    return d(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  index_t uniform_int(index_t lo, index_t hi) {
    std::uniform_int_distribution<index_t> d(lo, hi);
    return d(eng_);
  }

  /// Standard normal.
  template <typename R>
  R gaussian() {
    std::normal_distribution<R> d(R(0), R(1));
    return d(eng_);
  }

  /// Fill a view with uniform [-1, 1) entries (both parts for complex).
  template <typename T>
  void fill_uniform(MatrixView<T> a) {
    using R = real_t<T>;
    for (index_t j = 0; j < a.cols; ++j)
      for (index_t i = 0; i < a.rows; ++i) {
        if constexpr (is_complex_v<T>) {
          a(i, j) = T(uniform<R>(R(-1), R(1)), uniform<R>(R(-1), R(1)));
        } else {
          a(i, j) = uniform<R>(R(-1), R(1));
        }
      }
  }

  /// Fill a view with standard Gaussian entries (both parts for complex).
  template <typename T>
  void fill_gaussian(MatrixView<T> a) {
    using R = real_t<T>;
    for (index_t j = 0; j < a.cols; ++j)
      for (index_t i = 0; i < a.rows; ++i) {
        if constexpr (is_complex_v<T>) {
          a(i, j) = T(gaussian<R>(), gaussian<R>());
        } else {
          a(i, j) = gaussian<R>();
        }
      }
  }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

/// Convenience: a fresh random matrix with uniform [-1,1) entries.
template <typename T>
Matrix<T> random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Matrix<T> m(rows, cols);
  Rng rng(seed);
  rng.fill_uniform<T>(m);
  return m;
}

/// A well-conditioned random triangular matrix (shared by the TRSM tests and
/// benches so they exercise the same problem class): off-diagonal entries
/// scaled by 1/n so solutions don't blow up, strong diagonal, and the unused
/// triangle zeroed so reading it would be caught. `lower` selects the
/// nonzero triangle.
template <typename T>
Matrix<T> random_triangular_matrix(index_t n, bool lower,
                                   std::uint64_t seed) {
  Matrix<T> a = random_matrix<T>(n, n, seed);
  const T scale = T{static_cast<real_t<T>>(1.0 / std::max<index_t>(n, 1))};
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool keep = lower ? i > j : i < j;
      if (i == j)
        a(i, j) = T{2} + a(i, j);
      else if (keep)
        a(i, j) *= scale;
      else
        a(i, j) = T{};
    }
  return a;
}

}  // namespace hodlrx
