#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"

/// \file access_audit.hpp
/// Declared-access race auditor for TaskGraph (HODLRX_AUDIT=on).
///
/// The graph scheduler's correctness rests on humans wiring every
/// cross-level edge by row overlap — an invariant TSan can only falsify when
/// a schedule happens to interleave badly. The auditor checks it for EVERY
/// schedule: graph-building code declares, per node, which rectangles of
/// which address spaces the node reads and writes; at run() a happens-before
/// checker verifies that every conflicting pair of accesses is ordered by
/// the declared edge set, and reports the first unordered pair (both node
/// labels, the space, the overlapping rectangle) as a structured Error
/// BEFORE any node executes. docs/static-analysis.md describes the model and
/// how to read a report.
///
/// Model:
///  - A *space* is an opaque identity pointer (a buffer base, or the address
///    of an owning object for storage that may reallocate). Rectangles in
///    different spaces never conflict.
///  - An *access* is a half-open rectangle [row0,row1) x [col0,col1) in that
///    space, in whatever units the site finds natural (matrix rows/cols,
///    flattened element offsets with cols [0,1), block indices).
///  - Two accesses from different nodes *conflict* when the space matches,
///    both intervals overlap, and at least one is a write — except that two
///    kGuardedWrite accesses never conflict with each other: that mode
///    models mutations serialized by a common mutex (the pivot-storage
///    ensure path), which still require edges against unguarded readers.
///  - The checker computes ancestor bitsets in topological order (a dense
///    vector clock) and requires, for each conflicting pair, a directed path
///    one way or the other.
///
/// Audit mode is captured per graph at TaskGraph construction; when off (the
/// default) no auditor is allocated and every declaration is a null-pointer
/// test — counter-asserted in test_scheduler to add zero overhead.

namespace hodlrx {

/// Reread from HODLRX_AUDIT per call ("on"/"1" enable), same convention as
/// HODLRX_FAULT / HODLRX_SCHED.
bool audit_enabled();

/// Process-wide auditor counters (relaxed atomics, mirroring sched_stats).
namespace audit_stats {
/// Graphs whose declared accesses were verified at run().
std::uint64_t graphs_audited();
/// Access rectangles declared across all audited graphs.
std::uint64_t accesses();
/// Conflicting pairs tested for a happens-before path.
std::uint64_t checks();
/// Conflicting pairs found unordered (each also threw an Error).
std::uint64_t violations();
void reset();
}  // namespace audit_stats

/// One declared access rectangle. `space` is identity only — it is never
/// dereferenced.
struct AuditAccess {
  enum class Mode { kRead, kWrite, kGuardedWrite };
  const void* space;
  index_t row0, row1;  ///< half-open row interval
  index_t col0, col1;  ///< half-open column interval
  Mode mode;
};

/// Collects labels, accesses, and edges for one TaskGraph, then verifies the
/// declared-dependency closure. Owned by TaskGraph when HODLRX_AUDIT was on
/// at graph construction; build-threaded like the graph itself.
class AccessAuditor {
 public:
  /// Register node `id` (ids are dense, in add() order). `stage` is a
  /// static-storage label; i/j are optional indices formatted as
  /// "stage(i,j)" in reports (pass -1 to omit).
  void add_node(index_t id, const char* stage, index_t i, index_t j);
  void declare(index_t node, const AuditAccess& a);
  void add_edge(index_t before, index_t after);

  /// Verify every conflicting access pair is ordered by the declared edges;
  /// throws Error naming both nodes on the first unordered pair. Graphs with
  /// a cycle are left for the scheduler's own cycle detection.
  void verify() const;

  std::string label(index_t node) const;

 private:
  struct NodeTag {
    const char* stage;
    index_t i, j;
  };
  std::vector<NodeTag> tags_;
  std::vector<AuditAccess> accesses_;
  std::vector<index_t> access_node_;
  std::vector<std::pair<index_t, index_t>> edges_;
};

}  // namespace hodlrx
