#include "common/access_audit.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace hodlrx {

bool audit_enabled() {
  const char* s = std::getenv("HODLRX_AUDIT");
  return s != nullptr &&
         (std::strcmp(s, "on") == 0 || std::strcmp(s, "1") == 0);
}

namespace audit_stats {
namespace {
std::atomic<std::uint64_t> g_graphs{0}, g_accesses{0}, g_checks{0},
    g_violations{0};
}  // namespace
std::uint64_t graphs_audited() {
  return g_graphs.load(std::memory_order_relaxed);
}
std::uint64_t accesses() { return g_accesses.load(std::memory_order_relaxed); }
std::uint64_t checks() { return g_checks.load(std::memory_order_relaxed); }
std::uint64_t violations() {
  return g_violations.load(std::memory_order_relaxed);
}
void reset() {
  g_graphs.store(0, std::memory_order_relaxed);
  g_accesses.store(0, std::memory_order_relaxed);
  g_checks.store(0, std::memory_order_relaxed);
  g_violations.store(0, std::memory_order_relaxed);
}
}  // namespace audit_stats

void AccessAuditor::add_node(index_t id, const char* stage, index_t i,
                             index_t j) {
  if (id != static_cast<index_t>(tags_.size()))
    throw Error("AccessAuditor: non-dense node id " + std::to_string(id));
  tags_.push_back(NodeTag{stage, i, j});
}

void AccessAuditor::declare(index_t node, const AuditAccess& a) {
  HODLRX_REQUIRE(node >= 0 && node < static_cast<index_t>(tags_.size()),
                 "AccessAuditor: declaration for unknown node " << node);
  HODLRX_REQUIRE(a.row0 <= a.row1 && a.col0 <= a.col1,
                 "AccessAuditor: inverted rectangle on node " << node);
  if (a.row0 == a.row1 || a.col0 == a.col1) return;  // empty: nothing to order
  accesses_.push_back(a);
  access_node_.push_back(node);
  audit_stats::g_accesses.fetch_add(1, std::memory_order_relaxed);
}

void AccessAuditor::add_edge(index_t before, index_t after) {
  edges_.emplace_back(before, after);
}

std::string AccessAuditor::label(index_t node) const {
  const NodeTag& t = tags_[static_cast<std::size_t>(node)];
  std::ostringstream os;
  os << (t.stage != nullptr ? t.stage : "node");
  if (t.i >= 0) {
    os << '(' << t.i;
    if (t.j >= 0) os << ',' << t.j;
    os << ')';
  }
  return os.str();
}

namespace {

bool conflicting(const AuditAccess& a, const AuditAccess& b) {
  using Mode = AuditAccess::Mode;
  if (a.space != b.space) return false;
  if (a.mode == Mode::kRead && b.mode == Mode::kRead) return false;
  if (a.mode == Mode::kGuardedWrite && b.mode == Mode::kGuardedWrite)
    return false;  // serialized by a common mutex at the declaring site
  return a.row0 < b.row1 && b.row0 < a.row1 &&  // row intervals overlap
         a.col0 < b.col1 && b.col0 < a.col1;    // col intervals overlap
}

const char* mode_name(AuditAccess::Mode m) {
  switch (m) {
    case AuditAccess::Mode::kRead:
      return "reads";
    case AuditAccess::Mode::kWrite:
      return "writes";
    case AuditAccess::Mode::kGuardedWrite:
      return "guard-writes";
  }
  return "?";
}

}  // namespace

void AccessAuditor::verify() const {
  const index_t n = static_cast<index_t>(tags_.size());
  if (n == 0 || accesses_.empty()) {
    audit_stats::g_graphs.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Ancestor bitsets in topological (Kahn) order: when node u is popped its
  // set is final, so each successor inherits anc(u) | {u}. One dense vector
  // clock per node — n^2/8 bytes, fine at the few-hundred-node graphs the
  // ported sites build.
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> anc(static_cast<std::size_t>(n) * words, 0);
  std::vector<std::vector<index_t>> out(static_cast<std::size_t>(n));
  std::vector<index_t> indeg(static_cast<std::size_t>(n), 0);
  for (const auto& e : edges_) {
    out[static_cast<std::size_t>(e.first)].push_back(e.second);
    ++indeg[static_cast<std::size_t>(e.second)];
  }
  std::vector<index_t> stack;
  for (index_t v = 0; v < n; ++v)
    if (indeg[static_cast<std::size_t>(v)] == 0) stack.push_back(v);
  index_t popped = 0;
  while (!stack.empty()) {
    const index_t u = stack.back();
    stack.pop_back();
    ++popped;
    const std::uint64_t* au = anc.data() + static_cast<std::size_t>(u) * words;
    for (const index_t v : out[static_cast<std::size_t>(u)]) {
      std::uint64_t* av = anc.data() + static_cast<std::size_t>(v) * words;
      for (std::size_t w = 0; w < words; ++w) av[w] |= au[w];
      av[static_cast<std::size_t>(u) / 64] |= 1ull
                                              << (static_cast<std::size_t>(u) %
                                                  64);
      if (--indeg[static_cast<std::size_t>(v)] == 0) stack.push_back(v);
    }
  }
  // A cycle leaves nodes unpopped; the scheduler reports it with better
  // context (unreachable-node count) so defer instead of double-reporting.
  if (popped != n) return;

  const auto is_ancestor = [&](index_t a, index_t b) {  // a before b?
    return (anc[static_cast<std::size_t>(b) * words +
                static_cast<std::size_t>(a) / 64] >>
            (static_cast<std::size_t>(a) % 64)) &
           1ull;
  };

  // Group accesses by space, then test each cross-node conflicting pair for
  // a path. Throw on the first unordered pair: one actionable report beats a
  // flood, and the counters still record how much was checked.
  std::vector<index_t> order(accesses_.size());
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return accesses_[static_cast<std::size_t>(x)].space <
           accesses_[static_cast<std::size_t>(y)].space;
  });
  for (std::size_t lo = 0; lo < order.size();) {
    std::size_t hi = lo + 1;
    while (hi < order.size() &&
           accesses_[static_cast<std::size_t>(order[hi])].space ==
               accesses_[static_cast<std::size_t>(order[lo])].space)
      ++hi;
    for (std::size_t x = lo; x < hi; ++x) {
      for (std::size_t y = x + 1; y < hi; ++y) {
        const AuditAccess& a = accesses_[static_cast<std::size_t>(order[x])];
        const AuditAccess& b = accesses_[static_cast<std::size_t>(order[y])];
        const index_t na = access_node_[static_cast<std::size_t>(order[x])];
        const index_t nb = access_node_[static_cast<std::size_t>(order[y])];
        if (na == nb || !conflicting(a, b)) continue;
        audit_stats::g_checks.fetch_add(1, std::memory_order_relaxed);
        if (is_ancestor(na, nb) || is_ancestor(nb, na)) continue;
        audit_stats::g_violations.fetch_add(1, std::memory_order_relaxed);
        std::ostringstream os;
        os << "hodlrx: access audit: unordered conflicting accesses on "
              "space "
           << a.space << ": node #" << na << " '" << label(na) << "' "
           << mode_name(a.mode) << " [" << a.row0 << ',' << a.row1 << ")x["
           << a.col0 << ',' << a.col1 << ") vs node #" << nb << " '"
           << label(nb) << "' " << mode_name(b.mode) << " [" << b.row0 << ','
           << b.row1 << ")x[" << b.col0 << ',' << b.col1
           << ") — no dependency path orders them; a graph edge is missing";
        throw Error(os.str());
      }
    }
    lo = hi;
  }
  audit_stats::g_graphs.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace hodlrx
