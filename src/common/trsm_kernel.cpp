#include "common/trsm_kernel.hpp"

#include <algorithm>
#include <complex>

#include "common/blocking.hpp"
#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/gemm_kernel.hpp"
#include "common/parallel.hpp"
#include "common/workspace.hpp"

namespace hodlrx {

namespace {

/// Solve A_kk^{-1} B for one NB x NB LOWER diagonal block, four RHS columns
/// per pass: the four running values stay in registers and the triangle is
/// streamed once per four columns. `inv` is the reciprocal table for
/// NonUnit diagonals (null for Unit).
template <typename T>
void solve_diag_lower(ConstMatrixView<T> a, MatrixView<T> b,
                      const T* __restrict__ inv) {
  const index_t n = a.rows;
  index_t j = 0;
  for (; j + 4 <= b.cols; j += 4) {
    T* __restrict__ x0 = b.data + j * b.ld;
    T* __restrict__ x1 = b.data + (j + 1) * b.ld;
    T* __restrict__ x2 = b.data + (j + 2) * b.ld;
    T* __restrict__ x3 = b.data + (j + 3) * b.ld;
    for (index_t k = 0; k < n; ++k) {
      const T* __restrict__ lk = a.data + k * a.ld;
      if (inv) {
        const T ik = inv[k];
        x0[k] *= ik;
        x1[k] *= ik;
        x2[k] *= ik;
        x3[k] *= ik;
      }
      const T v0 = x0[k], v1 = x1[k], v2 = x2[k], v3 = x3[k];
      for (index_t i = k + 1; i < n; ++i) {
        const T lik = lk[i];
        x0[i] -= lik * v0;
        x1[i] -= lik * v1;
        x2[i] -= lik * v2;
        x3[i] -= lik * v3;
      }
    }
  }
  for (; j < b.cols; ++j) {
    T* __restrict__ x = b.data + j * b.ld;
    for (index_t k = 0; k < n; ++k) {
      if (inv) x[k] *= inv[k];
      const T xk = x[k];
      const T* __restrict__ lk = a.data + k * a.ld;
      for (index_t i = k + 1; i < n; ++i) x[i] -= lk[i] * xk;
    }
  }
}

/// UPPER counterpart of solve_diag_lower (bottom-up over the block).
template <typename T>
void solve_diag_upper(ConstMatrixView<T> a, MatrixView<T> b,
                      const T* __restrict__ inv) {
  const index_t n = a.rows;
  index_t j = 0;
  for (; j + 4 <= b.cols; j += 4) {
    T* __restrict__ x0 = b.data + j * b.ld;
    T* __restrict__ x1 = b.data + (j + 1) * b.ld;
    T* __restrict__ x2 = b.data + (j + 2) * b.ld;
    T* __restrict__ x3 = b.data + (j + 3) * b.ld;
    for (index_t k = n - 1; k >= 0; --k) {
      const T* __restrict__ uk = a.data + k * a.ld;
      if (inv) {
        const T ik = inv[k];
        x0[k] *= ik;
        x1[k] *= ik;
        x2[k] *= ik;
        x3[k] *= ik;
      }
      const T v0 = x0[k], v1 = x1[k], v2 = x2[k], v3 = x3[k];
      for (index_t i = 0; i < k; ++i) {
        const T uik = uk[i];
        x0[i] -= uik * v0;
        x1[i] -= uik * v1;
        x2[i] -= uik * v2;
        x3[i] -= uik * v3;
      }
    }
  }
  for (; j < b.cols; ++j) {
    T* __restrict__ x = b.data + j * b.ld;
    for (index_t k = n - 1; k >= 0; --k) {
      if (inv) x[k] *= inv[k];
      const T xk = x[k];
      const T* __restrict__ uk = a.data + k * a.ld;
      for (index_t i = 0; i < k; ++i) x[i] -= uk[i] * xk;
    }
  }
}

/// Trailing update C -= A * X without flop accounting: the packed engine
/// above its cutoff, a compact axpy update below it (the rank-NB updates of
/// small solves don't amortize packing).
template <typename T>
void update_nn(ConstMatrixView<T> a, ConstMatrixView<T> x, MatrixView<T> c) {
  if (use_packed_gemm(Op::N, Op::N, c.rows, c.cols, a.cols)) {
    gemm_packed<T>(Op::N, Op::N, T{-1}, a, x, T{1}, c);
    return;
  }
  for (index_t j = 0; j < c.cols; ++j) {
    T* __restrict__ cj = c.data + j * c.ld;
    for (index_t l = 0; l < a.cols; ++l) {
      const T xlj = x(l, j);
      if (xlj == T{}) continue;
      const T* __restrict__ al = a.data + l * a.ld;
      for (index_t i = 0; i < c.rows; ++i) cj[i] -= al[i] * xlj;
    }
  }
}

template <typename T>
void add_trsm_flops(index_t n, index_t nrhs) {
  FlopCounter::instance().add(
      FlopCounter::kTrsm,
      (is_complex_v<T> ? 4ull : 1ull) * static_cast<std::uint64_t>(n) *
          static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(nrhs));
}

}  // namespace

template <typename T>
void trsm_left_reference(Uplo uplo, Diag diag,
                         NoDeduce<ConstMatrixView<T>> a, MatrixView<T> b) {
  const index_t n = a.rows;
  if (uplo == Uplo::Lower) {
    for (index_t j = 0; j < b.cols; ++j) {
      T* __restrict__ x = b.data + j * b.ld;
      for (index_t k = 0; k < n; ++k) {
        if (diag == Diag::NonUnit) x[k] /= a(k, k);
        const T xk = x[k];
        if (xk == T{}) continue;
        const T* __restrict__ lk = a.data + k * a.ld;
        for (index_t i = k + 1; i < n; ++i) x[i] -= lk[i] * xk;
      }
    }
  } else {
    for (index_t j = 0; j < b.cols; ++j) {
      T* __restrict__ x = b.data + j * b.ld;
      for (index_t k = n - 1; k >= 0; --k) {
        if (diag == Diag::NonUnit) x[k] /= a(k, k);
        const T xk = x[k];
        if (xk == T{}) continue;
        const T* __restrict__ uk = a.data + k * a.ld;
        for (index_t i = 0; i < k; ++i) x[i] -= uk[i] * xk;
      }
    }
  }
}

template <typename T>
void trsm_left_blocked(Uplo uplo, Diag diag, NoDeduce<ConstMatrixView<T>> a,
                       MatrixView<T> b) {
  const index_t n = a.rows;
  const index_t nb = resolved_blocking<T>().trsm_nb;
  if (n <= nb) {
    trsm_left_reference<T>(uplo, diag, a, b);
    return;
  }
  if (b.cols == 0) return;
  // Reciprocal table for NonUnit diagonals, computed once per solve so the
  // inner kernels multiply instead of divide.
  T* inv = nullptr;
  if (diag == Diag::NonUnit) {
    inv = WorkspaceArena::local().get<T>(static_cast<std::size_t>(n),
                                         WorkspaceArena::kScratch);
    for (index_t k = 0; k < n; ++k) inv[k] = T{1} / a(k, k);
  }
  if (uplo == Uplo::Lower) {
    for (index_t k0 = 0; k0 < n; k0 += nb) {
      const index_t kb = std::min(nb, n - k0);
      solve_diag_lower<T>(a.block(k0, k0, kb, kb), b.rows_range(k0, kb),
                          inv ? inv + k0 : nullptr);
      const index_t rem = n - k0 - kb;
      if (rem > 0)
        update_nn<T>(a.block(k0 + kb, k0, rem, kb),
                     ConstMatrixView<T>(b.rows_range(k0, kb)),
                     b.rows_range(k0 + kb, rem));
    }
  } else {
    for (index_t k0 = ((n - 1) / nb) * nb;; k0 -= nb) {
      const index_t kb = std::min(nb, n - k0);
      solve_diag_upper<T>(a.block(k0, k0, kb, kb), b.rows_range(k0, kb),
                          inv ? inv + k0 : nullptr);
      if (k0 == 0) break;
      update_nn<T>(a.block(0, k0, k0, kb),
                   ConstMatrixView<T>(b.rows_range(k0, kb)),
                   b.rows_range(0, k0));
    }
  }
}

template <typename T>
void trsm_left_parallel(Uplo uplo, Diag diag, NoDeduce<ConstMatrixView<T>> a,
                        MatrixView<T> b) {
  const index_t n = a.rows;
  HODLRX_REQUIRE(a.cols == n && b.rows == n,
                 "trsm_left_parallel: shape mismatch");
  if (max_threads() <= 1 || b.cols <= 1 || in_parallel()) {
    trsm_left_blocked<T>(uplo, diag, a, b);
  } else {
    parallel_chunks(b.cols, [&](index_t j0, index_t nc) {
      trsm_left_blocked<T>(uplo, diag, a, b.cols_range(j0, nc));
    });
  }
  add_trsm_flops<T>(n, b.cols);
}

#define HODLRX_INSTANTIATE_TRSM_KERNEL(T)                                    \
  template void trsm_left_reference<T>(Uplo, Diag,                           \
                                       NoDeduce<ConstMatrixView<T>>,         \
                                       MatrixView<T>);                       \
  template void trsm_left_blocked<T>(Uplo, Diag,                             \
                                     NoDeduce<ConstMatrixView<T>>,           \
                                     MatrixView<T>);                         \
  template void trsm_left_parallel<T>(Uplo, Diag,                            \
                                      NoDeduce<ConstMatrixView<T>>,          \
                                      MatrixView<T>);

HODLRX_INSTANTIATE_TRSM_KERNEL(float)
HODLRX_INSTANTIATE_TRSM_KERNEL(double)
HODLRX_INSTANTIATE_TRSM_KERNEL(std::complex<float>)
HODLRX_INSTANTIATE_TRSM_KERNEL(std::complex<double>)

#undef HODLRX_INSTANTIATE_TRSM_KERNEL

}  // namespace hodlrx
