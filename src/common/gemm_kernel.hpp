#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/blas.hpp"
#include "common/matrix.hpp"

/// \file gemm_kernel.hpp
/// The packed, register-tiled GEMM engine (GotoBLAS-style).
///
/// Layout of one multiply C = alpha * op(A) * op(B) + beta * C:
///
///   for jc in steps of NC:                 (columns of C / op(B))
///     for pc in steps of KC:               (the shared k dimension)
///       pack op(B)(pc:pc+KC, jc:jc+NC)  -> Bp   [KC x NC, NR-wide panels]
///       for ic in steps of MC:             (rows of C / op(A))
///         pack op(A)(ic:ic+MC, pc:pc+KC) -> Ap  [MC x KC, MR-wide panels]
///         macro-kernel: MR x NR register-tiled micro-kernels over Ap x Bp
///
/// Packing linearizes the operands so the micro-kernel streams both with
/// unit stride, and it absorbs Op::T / Op::C: transposition and conjugation
/// happen while copying, so every op combination runs through the same fast
/// micro-kernel (no slow generic path for transposed cases). Packing buffers
/// come from the thread-local WorkspaceArena, so steady state allocates
/// nothing.
///
/// The batch layer additionally uses "full" packs (PackedMatrix): when every
/// problem in a strided batch reads the same operand (stride 0), that operand
/// is packed once per launch and reused by all problems.

namespace hodlrx {

/// STATIC per-scalar-type blocking defaults: the AVX2-class set every engine
/// used before the hardware-adaptive resolver (blocking.hpp) existed. These
/// are rung 3 of the resolution ladder (env override > probed model > static)
/// and exactly what HODLRX_AUTOTUNE=off selects. MC/KC size the A-pack for
/// L2, KC*NC sizes the B-pack for L3; MR x NR is the "wide" register tile.
/// Runtime code reads resolved_blocking<T>() instead of these constants.
template <typename T>
struct GemmBlocking;

template <>
struct GemmBlocking<float> {
  static constexpr index_t MR = 16, NR = 6, MC = 256, KC = 384, NC = 3072;
};
template <>
struct GemmBlocking<double> {
  static constexpr index_t MR = 8, NR = 6, MC = 256, KC = 256, NC = 3072;
};
template <>
struct GemmBlocking<std::complex<float>> {
  static constexpr index_t MR = 8, NR = 4, MC = 128, KC = 256, NC = 2048;
};
template <>
struct GemmBlocking<std::complex<double>> {
  static constexpr index_t MR = 4, NR = 4, MC = 128, KC = 192, NC = 2048;
};

/// A register-tile shape. The engine compiles one micro-kernel (and one
/// pack-layout pair) per shape and selects between them at first use via
/// function-pointer dispatch — see gemm_kernel.cpp and the tile-selection
/// rule in blocking.cpp.
struct TileDims {
  index_t mr, nr;
};
constexpr bool operator==(TileDims a, TileDims b) {
  return a.mr == b.mr && a.nr == b.nr;
}

/// The two compiled register-tile variants per scalar type. kWide is the
/// historical shape (GemmBlocking<T>::MR x NR): tall tiles that keep 12+
/// vector accumulators live, right for 256-bit+ SIMD with 16+ registers.
/// kCompact halves MR and widens NR to 8: fewer, narrower accumulator
/// columns for SSE-class machines (8/16 xmm registers) where the wide tile
/// spills. Selection: HODLRX_GEMM_TILE=wide|compact wins; otherwise the
/// probe picks kWide on AVX2/AVX-512 hosts and kCompact on narrower ones;
/// HODLRX_AUTOTUNE=off pins kWide (the pre-adaptive behavior).
template <typename T>
struct GemmTiles {
  static constexpr TileDims kWide{GemmBlocking<T>::MR, GemmBlocking<T>::NR};
  static constexpr TileDims kCompact{GemmBlocking<T>::MR / 2, 8};
};

/// The tile the dispatcher resolved for T (== {resolved mr, nr}).
template <typename T>
TileDims gemm_selected_tile();

/// "wide" or "compact" for the resolved tile (benches embed it in JSON).
template <typename T>
const char* gemm_selected_tile_name();

/// Pack-event counters (relaxed atomics, process-wide). Used by tests to
/// assert that batch-shared operands are packed exactly once per launch, and
/// by benches to report packing overhead.
namespace gemm_stats {
/// Per-block A packs performed inside gemm calls.
std::uint64_t a_packs();
/// Per-block B packs performed inside gemm calls.
std::uint64_t b_packs();
/// Full-operand packs shared across a BATCH (one per pack_a_full /
/// pack_b_full call) — the stride-0 batched fast path. Pool-shared packs are
/// counted separately so exact-count assertions stay machine-independent.
std::uint64_t shared_packs();
/// Full A-packs into the pool's persistent slot (one per qualifying
/// gemm_parallel launch; see gemm_parallel_shared_a).
std::uint64_t pool_packs();
void reset();
}  // namespace gemm_stats

/// Best-of-N seconds for one synthetic macro-tile multiply through each
/// compiled register-tile variant — the input of the blocking resolver's
/// first-use tie-breaker (blocking.cpp). Measured once per scalar type per
/// process (cached), on identical work for both variants, WITHOUT consulting
/// resolved_blocking (the resolver calls this while holding its own lock).
struct TileBench {
  double wide_s = 0;
  double compact_s = 0;
};
template <typename T>
TileBench tile_microbench();

/// True when the packed engine is expected to beat the naive kernels for
/// this problem. Combinations with opb != N have no tuned naive fallback
/// (they previously ran the element-accessor generic loop), so the packed
/// engine takes over at a much smaller size.
bool use_packed_gemm(Op opa, Op opb, index_t m, index_t n, index_t k);

/// C = alpha * op(A) * op(B) + beta * C through the packed engine.
/// Shapes must already be consistent (callers go through gemm()'s checks).
/// Does not touch the flop counters; public entry points account.
template <typename T>
void gemm_packed(Op opa, Op opb, T alpha, NoDeduce<ConstMatrixView<T>> a,
                 NoDeduce<ConstMatrixView<T>> b, T beta, MatrixView<T> c);

/// A whole operand packed into panel layout, reusable across many multiplies
/// (the batch layer's shared-operand fast path). `rows x cols` is the shape
/// of op(X); the op (including conjugation) is absorbed at pack time.
template <typename T>
class PackedMatrix {
 public:
  enum class Kind { kA, kB };

  Kind kind() const { return kind_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  std::size_t bytes() const { return buf_.size() * sizeof(T); }

  /// Packed tile for cache-block indices (it = row block, pt = k block) of
  /// an A-pack, or (pt = k block, jt = column block) of a B-pack.
  const T* tile(index_t first, index_t second) const {
    return buf_.data() + offsets_[first * grid_cols_ + second];
  }

 private:
  template <typename U>
  friend PackedMatrix<U> pack_a_full(Op opa, ConstMatrixView<U> a);
  template <typename U>
  friend PackedMatrix<U> pack_b_full(Op opb, ConstMatrixView<U> b);
  template <typename U>
  friend void pack_a_full_into(Op opa, ConstMatrixView<U> a,
                               PackedMatrix<U>& out);

  Kind kind_ = Kind::kA;
  index_t rows_ = 0, cols_ = 0;
  index_t grid_rows_ = 0, grid_cols_ = 0;
  std::vector<index_t> offsets_;  ///< grid_rows_ * grid_cols_ tile offsets
  std::vector<T, AlignedAllocator<T>> buf_;
};

/// Pack all of op(A) (shape m x k) into MR-panel layout, one tile per
/// (MC, KC) cache block. Counts one shared pack.
template <typename T>
PackedMatrix<T> pack_a_full(Op opa, ConstMatrixView<T> a);

/// As pack_a_full, but reuses `out`'s existing storage (no allocation once
/// the buffer has grown to steady state) and does NOT touch the pack
/// counters (call sites account under the stat that fits their role). This
/// is the pool's persistent shared A-pack slot: gemm_parallel packs op(A)
/// once per launch into it and every column chunk reads the shared tiles.
template <typename T>
void pack_a_full_into(Op opa, ConstMatrixView<T> a, PackedMatrix<T>& out);

/// Pack all of op(B) (shape k x n) into NR-panel layout, one tile per
/// (KC, NC) cache block. Counts one shared pack.
template <typename T>
PackedMatrix<T> pack_b_full(Op opb, ConstMatrixView<T> b);

/// C = alpha * packed_A * op(B) + beta * C where `ap` came from pack_a_full.
template <typename T>
void gemm_prepacked_a(const PackedMatrix<T>& ap, T alpha, Op opb,
                      NoDeduce<ConstMatrixView<T>> b, T beta, MatrixView<T> c);

/// C = alpha * op(A) * packed_B + beta * C where `bp` came from pack_b_full.
template <typename T>
void gemm_prepacked_b(Op opa, T alpha, NoDeduce<ConstMatrixView<T>> a,
                      const PackedMatrix<T>& bp, T beta, MatrixView<T> c);

/// Pool-parallel multiply with a SHARED A-pack: op(A) is packed once into a
/// persistent per-type slot and the columns of C are split across the
/// persistent thread pool, each chunk multiplying against the shared tiles
/// (no duplicate per-chunk A packing). Returns false — caller must fall back
/// to the column-split path — when the shape would not amortize packing, the
/// pack would exceed the slot budget, or the slot is held by a concurrent
/// launch. Does not touch the flop counters.
template <typename T>
bool gemm_parallel_shared_a(Op opa, Op opb, T alpha,
                            NoDeduce<ConstMatrixView<T>> a,
                            NoDeduce<ConstMatrixView<T>> b, T beta,
                            MatrixView<T> c);

}  // namespace hodlrx
