#pragma once

#include <algorithm>
#include <cstdlib>

#include "common/config.hpp"

/// \file env.hpp
/// One parser for every runtime-tunable knob (pool size, cache blockings,
/// TRSM block size), so parsing and clamping behavior can't drift between
/// subsystems.

namespace hodlrx {

/// Positive integer from the environment: `fallback` when the variable is
/// unset, empty, non-numeric, or <= 0; otherwise the leading number (text
/// after the digits is ignored, so OMP-style lists like "4,2" read their
/// first entry), clamped to at least `min_v`.
inline index_t env_positive(const char* name, index_t fallback,
                            index_t min_v = 1) {
  const char* s = std::getenv(name);
  if (!s || !*s) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || v <= 0) return fallback;
  return std::max<index_t>(min_v, static_cast<index_t>(v));
}

}  // namespace hodlrx
