#pragma once

#include <cmath>
#include <complex>
#include <limits>
#include <type_traits>

/// \file scalar.hpp
/// Traits unifying real and complex scalars (float, double,
/// std::complex<float>, std::complex<double>) so numerical code can be
/// written once.

namespace hodlrx {

template <typename T>
struct ScalarTraits {
  using real_type = T;
  static constexpr bool is_complex = false;
  static T conj(T x) { return x; }
  static real_type real(T x) { return x; }
  static real_type abs(T x) { return std::abs(x); }
  static real_type abs2(T x) { return x * x; }
};

template <typename R>
struct ScalarTraits<std::complex<R>> {
  using real_type = R;
  static constexpr bool is_complex = true;
  static std::complex<R> conj(std::complex<R> x) { return std::conj(x); }
  static real_type real(std::complex<R> x) { return x.real(); }
  static real_type abs(std::complex<R> x) { return std::abs(x); }
  static real_type abs2(std::complex<R> x) {
    return x.real() * x.real() + x.imag() * x.imag();
  }
};

/// The underlying real type of a (possibly complex) scalar.
template <typename T>
using real_t = typename ScalarTraits<T>::real_type;

template <typename T>
inline constexpr bool is_complex_v = ScalarTraits<T>::is_complex;

/// Complex conjugate for any scalar (identity for real types).
template <typename T>
inline T conj_s(T x) {
  return ScalarTraits<T>::conj(x);
}

/// |x| as the underlying real type.
template <typename T>
inline real_t<T> abs_s(T x) {
  return ScalarTraits<T>::abs(x);
}

/// |x|^2 without the square root.
template <typename T>
inline real_t<T> abs2_s(T x) {
  return ScalarTraits<T>::abs2(x);
}

/// Machine epsilon of the underlying real type.
template <typename T>
inline constexpr real_t<T> eps_v = std::numeric_limits<real_t<T>>::epsilon();

/// Names for diagnostics ("d", "s", "z", "c" as in LAPACK).
template <typename T>
constexpr const char* scalar_name() {
  if constexpr (std::is_same_v<T, float>) return "s";
  if constexpr (std::is_same_v<T, double>) return "d";
  if constexpr (std::is_same_v<T, std::complex<float>>) return "c";
  if constexpr (std::is_same_v<T, std::complex<double>>) return "z";
  return "?";
}

}  // namespace hodlrx
