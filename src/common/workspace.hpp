#pragma once

#include <cstddef>
#include <new>
#include <vector>

#include "common/aligned.hpp"
#include "common/config.hpp"
#include "common/fault.hpp"

/// \file workspace.hpp
/// Per-thread scratch memory for the packed GEMM engine.
///
/// Packing buffers are needed on every macro-kernel iteration; allocating
/// them per call would put an allocator round-trip on the hot path and (under
/// OpenMP) contend on the heap lock. `WorkspaceArena::local()` hands each
/// thread a small set of reusable 64-byte-aligned buffers that only ever
/// grow, so steady-state packing performs zero allocations.
///
/// Concurrency discipline: the arena is strictly THREAD-CONFINED — local()
/// is the only way to reach one, and the slot table has no mutex on purpose,
/// so there is nothing for the clang thread-safety annotations
/// (common/annotations.hpp) to guard. Never stash a slot pointer where
/// another thread (a pool worker, a TaskGraph node body) can see it: a
/// get() on the owning thread may reallocate or drop the buffer under the
/// borrower. Cross-node workspace handoffs in graph-scheduled sweeps use
/// dedicated buffers instead and declare them to the access auditor
/// (common/access_audit.hpp), which verifies the graph edges order every
/// reader against the slot's refill.

namespace hodlrx {

class WorkspaceArena {
 public:
  /// Buffer roles. Each slot is an independent buffer so a kernel can hold
  /// an A-pack and a B-pack simultaneously. kInterleave is the lane-major
  /// staging buffer of the across-batch SIMD kernels (batched/interleave.hpp)
  /// — a separate slot because batched launches park live QR/Gram workspace
  /// in the OWNER's kScratch while worker tasks (including the owner thread
  /// itself, which participates in the pool) interleave their lane groups.
  enum Slot : std::size_t {
    kPackA = 0,
    kPackB = 1,
    kScratch = 2,
    kInterleave = 3,
    kNumSlots
  };

  /// The calling thread's arena (created on first use, lives for the
  /// thread's lifetime).
  static WorkspaceArena& local() {
    static thread_local WorkspaceArena arena;
    return arena;
  }

  /// A buffer of at least `count` elements of T, aligned to kAlignment.
  /// Contents are unspecified; the buffer stays valid until the next get()
  /// on the same slot with a larger size.
  ///
  /// Growth is allocation-failure resilient: if the resize throws (real
  /// memory pressure, or the HODLRX_FAULT=workspace.alloc injection site),
  /// the arena releases EVERY slot it holds and retries once — packing
  /// buffers hold no live data between calls, so dropping them is free and
  /// usually returns enough memory for the retry to succeed.
  template <typename T>
  T* get(std::size_t count, Slot slot) {
    auto& buf = slots_[slot];
    const std::size_t bytes = count * sizeof(T);
    if (buf.size() < bytes) {
      buf.clear();  // don't copy old contents on growth
      try {
        if (fault::should_fire(fault::Site::kWorkspaceAlloc))
          throw std::bad_alloc();
        buf.resize(bytes);
      } catch (const std::bad_alloc&) {
        for (auto& b : slots_) {
          b.clear();
          b.shrink_to_fit();
        }
        buf.resize(bytes);  // retry once; a second failure propagates
        fault_stats::detail::add_recovered(fault::Site::kWorkspaceAlloc);
      }
      ++grow_events_;
    }
    return reinterpret_cast<T*>(buf.data());
  }

  /// Total bytes currently held by this thread's arena.
  std::size_t bytes() const {
    std::size_t total = 0;
    for (const auto& b : slots_) total += b.size();
    return total;
  }

  /// Number of times any slot had to (re)allocate; a steady-state kernel
  /// loop should leave this constant.
  std::size_t grow_events() const { return grow_events_; }

 private:
  WorkspaceArena() = default;
  std::vector<std::byte, AlignedAllocator<std::byte>> slots_[kNumSlots];
  std::size_t grow_events_ = 0;
};

}  // namespace hodlrx
