#pragma once

#include <map>
#include <vector>

#include "common/matrix.hpp"

/// \file block_matrix.hpp
/// A block-sparse matrix over a fixed block partition: the container behind
/// the extended sparsification solver of Ho and Greengard (paper Sec.
/// III-E b and the comparator of Sec. IV-B/IV-C). Blocks are stored in an
/// ordered map keyed by (row, col) so the elimination can iterate a row or
/// column without a separate symbolic structure.

namespace hodlrx {

template <typename T>
class BlockSparseMatrix {
 public:
  explicit BlockSparseMatrix(std::vector<index_t> block_sizes)
      : sizes_(std::move(block_sizes)) {
    offsets_.resize(sizes_.size() + 1, 0);
    for (std::size_t i = 0; i < sizes_.size(); ++i)
      offsets_[i + 1] = offsets_[i] + sizes_[i];
    col_ids_.resize(sizes_.size());
  }

  index_t num_blocks() const { return static_cast<index_t>(sizes_.size()); }
  index_t block_size(index_t b) const { return sizes_[b]; }
  index_t block_offset(index_t b) const { return offsets_[b]; }
  index_t n() const { return offsets_.back(); }

  bool has(index_t r, index_t c) const { return blocks_.count({r, c}) > 0; }

  /// Block (r, c); created zero-initialized on first access.
  Matrix<T>& block(index_t r, index_t c) {
    auto it = blocks_.find({r, c});
    if (it == blocks_.end()) {
      it = blocks_.emplace(std::pair<index_t, index_t>{r, c},
                           Matrix<T>(sizes_[r], sizes_[c]))
               .first;
      col_ids_[c].push_back(r);
    }
    return it->second;
  }
  const Matrix<T>* find(index_t r, index_t c) const {
    auto it = blocks_.find({r, c});
    return it == blocks_.end() ? nullptr : &it->second;
  }

  /// All column ids with a block in row r (sorted).
  std::vector<index_t> row_pattern(index_t r) const {
    std::vector<index_t> out;
    for (auto it = blocks_.lower_bound({r, -1});
         it != blocks_.end() && it->first.first == r; ++it)
      out.push_back(it->first.second);
    return out;
  }
  /// All row ids with a block in column c (insertion order; O(k)).
  const std::vector<index_t>& col_pattern(index_t c) const {
    return col_ids_[c];
  }

  std::size_t num_stored_blocks() const { return blocks_.size(); }
  std::size_t bytes() const {
    std::size_t s = 0;
    for (const auto& [key, blk] : blocks_) s += blk.bytes();
    return s;
  }

  /// Dense materialization (validation only).
  Matrix<T> to_dense() const {
    Matrix<T> a(n(), n());
    for (const auto& [key, blk] : blocks_)
      copy(blk.view(), a.block(offsets_[key.first], offsets_[key.second],
                               sizes_[key.first], sizes_[key.second]));
    return a;
  }

  auto begin() const { return blocks_.begin(); }
  auto end() const { return blocks_.end(); }

 private:
  std::vector<index_t> sizes_, offsets_;
  std::map<std::pair<index_t, index_t>, Matrix<T>> blocks_;
  std::vector<std::vector<index_t>> col_ids_;  ///< rows present per column
};

}  // namespace hodlrx
