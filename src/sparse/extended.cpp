#include "sparse/extended.hpp"

#include <complex>

#include "common/error.hpp"

namespace hodlrx {

template <typename T>
Matrix<T> ExtendedSystem<T>::extend_rhs(ConstMatrixView<T> b) const {
  HODLRX_REQUIRE(b.rows == n_original, "extend_rhs: wrong size");
  Matrix<T> be(matrix.n(), b.cols);
  copy(b, be.block(0, 0, n_original, b.cols));
  return be;
}

template <typename T>
Matrix<T> ExtendedSystem<T>::restrict_solution(ConstMatrixView<T> xe) const {
  return to_matrix(xe.block(0, 0, n_original, xe.cols));
}

template <typename T>
ExtendedSystem<T> build_extended_system(const HodlrMatrix<T>& h) {
  const ClusterTree& tree = h.tree();
  const index_t L = tree.depth();
  ExtendedLayout layout;
  layout.num_leaves = tree.num_leaves();
  layout.num_nodes = tree.num_nodes();

  // Block sizes: leaf sizes, then rank(nu) for every non-root node.
  std::vector<index_t> sizes(layout.num_blocks());
  for (index_t j = 0; j < layout.num_leaves; ++j)
    sizes[layout.leaf_block(j)] = tree.node(tree.leaf(j)).size();
  for (index_t nu = 1; nu < layout.num_nodes; ++nu)
    sizes[layout.w_block(nu)] = h.rank(nu);

  ExtendedSystem<T> sys{layout, BlockSparseMatrix<T>(std::move(sizes)), {},
                        h.n()};
  BlockSparseMatrix<T>& m = sys.matrix;

  for (index_t j = 0; j < layout.num_leaves; ++j) {
    const index_t leaf_nu = tree.leaf(j);
    const ClusterNode& c = tree.node(leaf_nu);
    // Leaf equation: D_j x_j + sum_{nu on path} U_nu(I_leaf rows) w_nu = b_j.
    m.block(layout.leaf_block(j), layout.leaf_block(j)) = h.leaf_block(j);
    for (index_t nu = leaf_nu; nu != 0; nu = ClusterTree::parent(nu)) {
      if (h.rank(nu) == 0) continue;
      const ClusterNode& cn = tree.node(nu);
      Matrix<T>& blk = m.block(layout.leaf_block(j), layout.w_block(nu));
      copy(h.u(nu).block(c.begin - cn.begin, 0, c.size(), h.rank(nu)),
           blk.view());
      // Constraint row of w_nu picks up V_mu^H restricted to this leaf when
      // the leaf lies under mu = sibling(nu): handled below from mu's side.
    }
  }

  // Constraint equations: for every non-root nu with sibling mu:
  //   sum_{leaves l under mu} V_mu(I_l rows)^H x_l - w_nu = 0.
  for (index_t nu = 1; nu < layout.num_nodes; ++nu) {
    const index_t r = h.rank(nu);
    if (r == 0) continue;
    const index_t mu = ClusterTree::sibling(nu);
    const ClusterNode& cmu = tree.node(mu);
    // -I on the diagonal of the w block.
    Matrix<T>& diag = m.block(layout.w_block(nu), layout.w_block(nu));
    for (index_t i = 0; i < r; ++i) diag(i, i) = T{-1};
    // V_mu^H spread over the leaves below mu.
    for (index_t j = 0; j < layout.num_leaves; ++j) {
      const ClusterNode& cl = tree.node(tree.leaf(j));
      if (cl.begin < cmu.begin || cl.end > cmu.end) continue;
      Matrix<T>& blk = m.block(layout.w_block(nu), layout.leaf_block(j));
      // blk = V_mu(rows of this leaf)^H  (r x leaf_size).
      ConstMatrixView<T> vpart =
          h.v(mu).block(cl.begin - cmu.begin, 0, cl.size(), r);
      for (index_t jj = 0; jj < cl.size(); ++jj)
        for (index_t ii = 0; ii < r; ++ii)
          blk(ii, jj) = conj_s(vpart(jj, ii));
    }
  }

  // Natural elimination order: leaves left-to-right, then w levels bottom-up.
  sys.elimination_order.reserve(layout.num_blocks());
  for (index_t j = 0; j < layout.num_leaves; ++j)
    sys.elimination_order.push_back(layout.leaf_block(j));
  for (index_t level = L; level >= 1; --level)
    for (index_t nu = ClusterTree::level_begin(level);
         nu < ClusterTree::level_begin(level + 1); ++nu)
      if (h.rank(nu) > 0) sys.elimination_order.push_back(layout.w_block(nu));
  // Zero-rank w blocks are excluded from elimination entirely: their rows
  // and columns are empty.
  return sys;
}

#define HODLRX_INSTANTIATE_EXT(T)                                       \
  template struct ExtendedSystem<T>;                                    \
  template ExtendedSystem<T> build_extended_system<T>(const HodlrMatrix<T>&);

HODLRX_INSTANTIATE_EXT(float)
HODLRX_INSTANTIATE_EXT(double)
HODLRX_INSTANTIATE_EXT(std::complex<float>)
HODLRX_INSTANTIATE_EXT(std::complex<double>)

#undef HODLRX_INSTANTIATE_EXT

}  // namespace hodlrx
