#pragma once

#include "core/hodlr.hpp"
#include "sparse/block_matrix.hpp"

/// \file extended.hpp
/// Extended sparsification of a HODLR matrix (paper Sec. III-E b, Example 3
/// generalized to L levels): the dense system A x = b is embedded into a
/// larger block-sparse system in the unknowns
///   [ x_leaf blocks ; w_nu for every non-root node nu ],
/// where w_nu = V_mu^H x(I_mu) with mu = sibling(nu). Solving the extended
/// system by block Gaussian elimination in the natural order (leaves first,
/// then w levels bottom-up) introduces no fill outside per-leaf path
/// cliques; this is the Ho-Greengard block-sparse solver the paper compares
/// against.

namespace hodlrx {

/// Block numbering inside the extended system.
struct ExtendedLayout {
  index_t num_leaves = 0;
  index_t num_nodes = 0;  ///< cluster-tree nodes
  index_t leaf_block(index_t j) const { return j; }
  index_t w_block(index_t nu) const { return num_leaves + (nu - 1); }
  index_t num_blocks() const { return num_leaves + num_nodes - 1; }
};

/// The assembled extended system plus the elimination order.
template <typename T>
struct ExtendedSystem {
  ExtendedLayout layout;
  BlockSparseMatrix<T> matrix;
  std::vector<index_t> elimination_order;  ///< natural order (paper IV-B)
  index_t n_original = 0;                  ///< N of the HODLR matrix

  /// Scatter an N x nrhs right-hand side into the extended length
  /// (w equations have zero RHS).
  Matrix<T> extend_rhs(ConstMatrixView<T> b) const;
  /// Gather the leading N rows (the x unknowns) of an extended vector.
  Matrix<T> restrict_solution(ConstMatrixView<T> xe) const;
};

/// Assemble the extended block-sparse system from a HODLR matrix.
template <typename T>
ExtendedSystem<T> build_extended_system(const HodlrMatrix<T>& h);

}  // namespace hodlrx
