#include "sparse/block_lu.hpp"

#include <complex>

#include "common/error.hpp"
#include "common/lapack.hpp"
#include "common/parallel.hpp"

namespace hodlrx {

template <typename T>
BlockSparseLU<T> BlockSparseLU<T>::factor(ExtendedSystem<T> sys,
                                          const Options& opt) {
  BlockSparseLU<T> f;
  f.sys_ = std::move(sys);
  f.opt_ = opt;
  BlockSparseMatrix<T>& m = f.sys_.matrix;
  const auto& order = f.sys_.elimination_order;

  f.position_.assign(m.num_blocks(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) f.position_[order[i]] = i;
  f.pivots_.resize(m.num_blocks());
  const std::size_t blocks_before = m.num_stored_blocks();

  for (index_t p : order) {
    // Factor the pivot block.
    Matrix<T>& app = m.block(p, p);
    f.pivots_[p].assign(app.rows(), 0);
    getrf(app.view(), f.pivots_[p].data());

    // Later rows in column p and later columns in row p.
    std::vector<index_t> rows, cols;
    for (index_t r : m.col_pattern(p))
      if (f.position_[r] > f.position_[p]) rows.push_back(r);
    for (index_t c : m.row_pattern(p))
      if (f.position_[c] > f.position_[p]) cols.push_back(c);

    // U-part: S_pc = A_pp^{-1} A_pc (in place).
    for (index_t c : cols)
      getrs<T>(app, f.pivots_[p].data(), m.block(p, c).view());

    // Schur updates A_rc -= A_rp * S_pc. Fill blocks are materialized on
    // demand; the (r, c) pairs are independent given pre-created storage.
    if (opt.parallel && rows.size() * cols.size() > 1) {
      std::vector<MatrixView<T>> targets(rows.size() * cols.size());
      for (std::size_t ri = 0; ri < rows.size(); ++ri)
        for (std::size_t ci = 0; ci < cols.size(); ++ci)
          targets[ri * cols.size() + ci] =
              m.block(rows[ri], cols[ci]);  // serial structural phase
      parallel_for(static_cast<index_t>(targets.size()), [&](index_t t) {
        const index_t r = rows[t / cols.size()];
        const index_t c = cols[t % cols.size()];
        gemm(Op::N, Op::N, T{-1}, *m.find(r, p), *m.find(p, c), T{1},
             targets[t]);
      });
    } else {
      for (index_t r : rows)
        for (index_t c : cols)
          gemm(Op::N, Op::N, T{-1}, *m.find(r, p), *m.find(p, c), T{1},
               m.block(r, c).view());
    }
  }
  f.fill_blocks_ = m.num_stored_blocks() - blocks_before;
  return f;
}

template <typename T>
Matrix<T> BlockSparseLU<T>::solve(ConstMatrixView<T> b) const {
  const BlockSparseMatrix<T>& m = sys_.matrix;
  const auto& order = sys_.elimination_order;
  Matrix<T> xe = sys_.extend_rhs(b);
  const index_t nrhs = xe.cols();

  // Forward: y_p = A_pp^{-1} b_p; b_r -= A_rp y_p for later rows r.
  for (index_t p : order) {
    MatrixView<T> xp =
        xe.block(m.block_offset(p), 0, m.block_size(p), nrhs);
    getrs<T>(*m.find(p, p), pivots_[p].data(), xp);
    for (index_t r : m.col_pattern(p)) {
      if (position_[r] <= position_[p]) continue;
      gemm(Op::N, Op::N, T{-1}, *m.find(r, p), ConstMatrixView<T>(xp), T{1},
           xe.block(m.block_offset(r), 0, m.block_size(r), nrhs));
    }
  }
  // Backward: x_p = y_p - sum_{later c} S_pc x_c.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const index_t p = *it;
    MatrixView<T> xp =
        xe.block(m.block_offset(p), 0, m.block_size(p), nrhs);
    for (index_t c : m.row_pattern(p)) {
      if (position_[c] <= position_[p]) continue;
      gemm(Op::N, Op::N, T{-1}, *m.find(p, c),
           ConstMatrixView<T>(
               xe.block(m.block_offset(c), 0, m.block_size(c), nrhs)),
           T{1}, xp);
    }
  }
  return sys_.restrict_solution(xe);
}

template <typename T>
std::size_t BlockSparseLU<T>::bytes() const {
  std::size_t s = sys_.matrix.bytes();
  for (const auto& p : pivots_) s += p.size() * sizeof(index_t);
  return s;
}

template class BlockSparseLU<float>;
template class BlockSparseLU<double>;
template class BlockSparseLU<std::complex<float>>;
template class BlockSparseLU<std::complex<double>>;

}  // namespace hodlrx
