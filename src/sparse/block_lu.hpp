#pragma once

#include "sparse/extended.hpp"

/// \file block_lu.hpp
/// Block-sparse LU in a prescribed elimination order, with sequential and
/// OpenMP-parallel Schur updates — the stand-in for UMFPACK / PARDISO in
/// the paper's block-sparse comparator (Sec. IV-B/IV-C). The natural order
/// produced by build_extended_system keeps fill inside per-leaf path
/// cliques, which is why the paper found no fill-reducing ordering was
/// needed.

namespace hodlrx {

template <typename T>
class BlockSparseLU {
 public:
  struct Options {
    bool parallel = false;  ///< parallelize the Schur updates per pivot
  };

  /// Factor the extended system in its elimination order. The system's
  /// matrix is consumed (factored in place).
  static BlockSparseLU factor(ExtendedSystem<T> sys, const Options& opt = {});

  /// Solve the ORIGINAL dense system A x = b: extends the RHS, runs block
  /// forward/backward substitution, restricts back to the x unknowns.
  Matrix<T> solve(ConstMatrixView<T> b) const;

  std::size_t bytes() const;
  std::size_t num_fill_blocks() const { return fill_blocks_; }

 private:
  BlockSparseLU() : sys_{ {}, BlockSparseMatrix<T>({}), {}, 0 } {}

  ExtendedSystem<T> sys_;
  Options opt_;
  std::vector<std::vector<index_t>> pivots_;  ///< per block id (diag LU)
  std::vector<index_t> position_;             ///< block id -> elim position
  std::size_t fill_blocks_ = 0;
};

}  // namespace hodlrx
