#include "bie/contour.hpp"

namespace hodlrx::bie {

ContourDiscretization discretize(const Contour& contour, index_t n) {
  ContourDiscretization d;
  d.n = n;
  d.h = 2.0 * 3.14159265358979323846 / static_cast<double>(n);
  d.t.resize(n);
  d.x.resize(n);
  d.nrm.resize(n);
  d.speed.resize(n);
  d.kappa.resize(n);
  d.weight.resize(n);
  for (index_t i = 0; i < n; ++i) {
    const double t = d.h * static_cast<double>(i);
    d.t[i] = t;
    d.x[i] = contour.point(t);
    d.nrm[i] = contour.normal(t);
    d.speed[i] = contour.speed(t);
    d.kappa[i] = contour.curvature(t);
    d.weight[i] = d.h * d.speed[i];
  }
  return d;
}

}  // namespace hodlrx::bie
