#include "bie/laplace.hpp"

#include <cmath>

namespace hodlrx::bie {

namespace {
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
}

double laplace_greens(Point2 x, Point2 x0) {
  return -std::log(dist(x, x0)) / kTwoPi;
}

template <typename T>
std::vector<T> laplace_exterior_potential(const ContourDiscretization& disc,
                                          Point2 z, const T* sigma,
                                          const std::vector<Point2>& targets) {
  std::vector<T> u(targets.size(), T{});
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const Point2 x = targets[t];
    double acc = 0;
    const double completion = -std::log(dist(x, z)) / kTwoPi;
    for (index_t j = 0; j < disc.n; ++j) {
      const double dx = x.x - disc.x[j].x;
      const double dy = x.y - disc.x[j].y;
      const double r2 = dx * dx + dy * dy;
      const double d = (disc.nrm[j].x * dx + disc.nrm[j].y * dy) /
                       (kTwoPi * r2);
      acc += disc.weight[j] * (d + completion) *
             static_cast<double>(sigma[j]);
    }
    u[t] = static_cast<T>(acc);
  }
  return u;
}

template class LaplaceExteriorBIE<float>;
template class LaplaceExteriorBIE<double>;

template std::vector<float> laplace_exterior_potential<float>(
    const ContourDiscretization&, Point2, const float*,
    const std::vector<Point2>&);
template std::vector<double> laplace_exterior_potential<double>(
    const ContourDiscretization&, Point2, const double*,
    const std::vector<Point2>&);

}  // namespace hodlrx::bie
