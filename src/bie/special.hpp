#pragma once

#include <complex>

/// \file special.hpp
/// Bessel and Hankel functions for the Helmholtz kernels.
///
/// J0/J1 use fast Cephes-style rational + asymptotic approximations
/// (validated against libstdc++'s std::cyl_bessel_j in the test suite);
/// Y0/Y1 delegate to std::cyl_neumann, which is fully accurate. The
/// asymptotic branches share the amplitude/phase expansions, so the Hankel
/// combinations used by the BIE kernels stay consistent.

namespace hodlrx::bie {

double bessel_j0(double x);
double bessel_j1(double x);
double bessel_y0(double x);  ///< x > 0
double bessel_y1(double x);  ///< x > 0

/// Hankel functions of the first kind, H_n^(1)(x) = J_n(x) + i Y_n(x).
std::complex<double> hankel1_0(double x);
std::complex<double> hankel1_1(double x);

}  // namespace hodlrx::bie
