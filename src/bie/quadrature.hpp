#pragma once

#include <array>
#include <vector>

#include "common/config.hpp"

/// \file quadrature.hpp
/// Quadrature rules for periodic boundary integrals:
///   - the plain periodic trapezoidal rule (spectrally accurate for smooth
///     integrands; the paper's "2nd-order" Laplace discretization uses it
///     on the completed double-layer kernel, which is smooth);
///   - Kapur-Rokhlin corrected trapezoidal rules of order 2, 6, and 10 for
///     integrands with a logarithmic singularity at the target node (the
///     paper's Sec. IV-C uses the 6th-order rule for the Helmholtz BIE).
///
/// The K-R rule of order m replaces the weights of the `k(m)` neighbors on
/// each side of the singular node by h*(1 + gamma_j) and EXCLUDES the
/// singular node itself:
///   int f ~= h * sum_{j != i} f(t_j) + h * sum_{j=1..k} gamma_j
///            (f(t_{i+j}) + f(t_{i-j})).

namespace hodlrx::bie {

/// Correction weights gamma_1..gamma_k for the given order (2, 6, or 10),
/// from Kapur & Rokhlin, SIAM J. Numer. Anal. 34 (1997), Table 6.
const std::vector<double>& kapur_rokhlin_weights(int order);

/// Full weight multiplier for matrix entry (target i, source j) on an
/// n-periodic grid: 0 at j == i, 1 + gamma_{|d|} within the correction
/// stencil (|d| = periodic distance), 1 elsewhere. The arc-length factor
/// h * |gamma'(t_j)| is applied separately by the caller.
class KapurRokhlinRule {
 public:
  KapurRokhlinRule(int order, index_t n);

  double multiplier(index_t i, index_t j) const {
    if (i == j) return 0.0;
    index_t d = i > j ? i - j : j - i;
    d = std::min(d, n_ - d);  // periodic distance
    return d <= stencil_ ? 1.0 + gamma_[d - 1] : 1.0;
  }
  index_t stencil() const { return stencil_; }
  int order() const { return order_; }

 private:
  int order_;
  index_t n_;
  index_t stencil_;
  std::vector<double> gamma_;
};

}  // namespace hodlrx::bie
