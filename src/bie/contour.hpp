#pragma once

#include <cmath>
#include <vector>

#include "common/config.hpp"
#include "tree/points.hpp"

/// \file contour.hpp
/// Smooth closed contours in the plane and their periodic discretizations.
/// The paper's Fig. 6 shows a smooth wavy blob spanning about
/// [-2, 2] x [-1.5, 1.5]; the exact parametrization is not given, so we use
/// an analytic trigonometric blob with the same extents (documented in
/// DESIGN.md). All geometric quantities (tangent, normal, speed, curvature)
/// are analytic — no finite differences.

namespace hodlrx::bie {

struct Point2 {
  double x = 0, y = 0;
};

inline double dist(Point2 a, Point2 b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// A smooth closed curve gamma(t), t in [0, 2pi), traversed
/// counterclockwise, with analytic first and second derivatives.
class Contour {
 public:
  virtual ~Contour() = default;
  virtual Point2 point(double t) const = 0;
  virtual Point2 dpoint(double t) const = 0;   ///< gamma'(t)
  virtual Point2 ddpoint(double t) const = 0;  ///< gamma''(t)

  double speed(double t) const {
    const Point2 d = dpoint(t);
    return std::hypot(d.x, d.y);
  }
  /// Outward unit normal (CCW traversal: n = (y', -x') / |gamma'|).
  Point2 normal(double t) const {
    const Point2 d = dpoint(t);
    const double s = std::hypot(d.x, d.y);
    return {d.y / s, -d.x / s};
  }
  /// Signed curvature (positive for a convex CCW curve).
  double curvature(double t) const {
    const Point2 d = dpoint(t), dd = ddpoint(t);
    const double s = std::hypot(d.x, d.y);
    return (d.x * dd.y - d.y * dd.x) / (s * s * s);
  }
};

/// r(t) = (1 + amp*cos(lobes*t)) scaled onto an (a x b) ellipse — the
/// Fig. 6 analogue. Defaults span [-2.3, 2.3] x [-1.7, 1.7].
class BlobContour final : public Contour {
 public:
  explicit BlobContour(double a = 2.0, double b = 1.5, double amp = 0.15,
                       int lobes = 5)
      : a_(a), b_(b), amp_(amp), lobes_(lobes) {}

  Point2 point(double t) const override {
    const double r = rho(t);
    return {a_ * r * std::cos(t), b_ * r * std::sin(t)};
  }
  Point2 dpoint(double t) const override {
    const double r = rho(t), dr = drho(t);
    return {a_ * (dr * std::cos(t) - r * std::sin(t)),
            b_ * (dr * std::sin(t) + r * std::cos(t))};
  }
  Point2 ddpoint(double t) const override {
    const double r = rho(t), dr = drho(t), ddr = ddrho(t);
    return {a_ * (ddr * std::cos(t) - 2 * dr * std::sin(t) - r * std::cos(t)),
            b_ * (ddr * std::sin(t) + 2 * dr * std::cos(t) - r * std::sin(t))};
  }

 private:
  double rho(double t) const { return 1.0 + amp_ * std::cos(lobes_ * t); }
  double drho(double t) const { return -amp_ * lobes_ * std::sin(lobes_ * t); }
  double ddrho(double t) const {
    return -amp_ * lobes_ * lobes_ * std::cos(lobes_ * t);
  }
  double a_, b_, amp_;
  int lobes_;
};

/// A circle of radius R (analytic solutions exist: used heavily by tests).
class CircleContour final : public Contour {
 public:
  explicit CircleContour(double radius = 1.0) : r_(radius) {}
  Point2 point(double t) const override {
    return {r_ * std::cos(t), r_ * std::sin(t)};
  }
  Point2 dpoint(double t) const override {
    return {-r_ * std::sin(t), r_ * std::cos(t)};
  }
  Point2 ddpoint(double t) const override {
    return {-r_ * std::cos(t), -r_ * std::sin(t)};
  }

 private:
  double r_;
};

/// Equispaced-parameter discretization of a contour: nodes, derivatives,
/// normals, speeds, curvatures, and the trapezoidal arc-length weights
/// h * |gamma'(t_j)| (h = 2pi/N).
struct ContourDiscretization {
  index_t n = 0;
  double h = 0;  ///< parameter spacing 2pi/N
  std::vector<double> t;
  std::vector<Point2> x;       ///< node positions
  std::vector<Point2> nrm;     ///< outward unit normals
  std::vector<double> speed;   ///< |gamma'(t_j)|
  std::vector<double> kappa;   ///< signed curvature
  std::vector<double> weight;  ///< h * speed (trapezoid arc-length weight)

  /// PointSet over the node coordinates (for cluster-tree construction;
  /// parameter order already gives 1-D locality along the curve).
  PointSet points() const {
    PointSet p(2, n);
    for (index_t i = 0; i < n; ++i) {
      p.coord(i, 0) = x[i].x;
      p.coord(i, 1) = x[i].y;
    }
    return p;
  }
};

ContourDiscretization discretize(const Contour& contour, index_t n);

}  // namespace hodlrx::bie
