#include "bie/helmholtz.hpp"

namespace hodlrx::bie {

std::complex<double> helmholtz_fundamental(double kappa, Point2 x, Point2 x0) {
  return 0.25 * std::complex<double>(0.0, 1.0) *
         hankel1_0(kappa * dist(x, x0));
}

template <typename T>
std::vector<T> helmholtz_potential(const ContourDiscretization& disc,
                                   double kappa, double eta, const T* sigma,
                                   const std::vector<Point2>& targets) {
  const std::complex<double> ii(0.0, 1.0);
  std::vector<T> u(targets.size(), T{});
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const Point2 x = targets[t];
    std::complex<double> acc = 0;
    for (index_t j = 0; j < disc.n; ++j) {
      const double dx = x.x - disc.x[j].x;
      const double dy = x.y - disc.x[j].y;
      const double r = std::hypot(dx, dy);
      const std::complex<double> s = 0.25 * ii * hankel1_0(kappa * r);
      const double ndotr = disc.nrm[j].x * dx + disc.nrm[j].y * dy;
      const std::complex<double> d =
          0.25 * ii * kappa * hankel1_1(kappa * r) * (ndotr / r);
      acc += disc.weight[j] * (d + ii * eta * s) *
             static_cast<std::complex<double>>(sigma[j]);
    }
    u[t] = static_cast<T>(acc);
  }
  return u;
}

template class HelmholtzCombinedBIE<std::complex<float>>;
template class HelmholtzCombinedBIE<std::complex<double>>;

template std::vector<std::complex<float>> helmholtz_potential(
    const ContourDiscretization&, double, double, const std::complex<float>*,
    const std::vector<Point2>&);
template std::vector<std::complex<double>> helmholtz_potential(
    const ContourDiscretization&, double, double, const std::complex<double>*,
    const std::vector<Point2>&);

}  // namespace hodlrx::bie
