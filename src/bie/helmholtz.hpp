#pragma once

#include <complex>

#include "bie/contour.hpp"
#include "bie/quadrature.hpp"
#include "bie/special.hpp"
#include "lowrank/generator.hpp"

/// \file helmholtz.hpp
/// The combined-field BIE for the exterior Helmholtz Dirichlet problem
/// (paper eq. 24, Sec. IV-C):
///
///   (1/2) sigma(x) + int_Gamma ( d_k(x,y) + i eta s_k(x,y) ) sigma(y) ds
///     = f(x),
///   s_k(x,y) = (i/4) H0^(1)(k |x-y|),
///   d_k(x,y) = (i k/4) H1^(1)(k |x-y|) (n(y).(x-y)) / |x-y|,
///
/// discretized with the Kapur-Rokhlin corrected trapezoidal rule (the
/// paper uses the 6th-order rule); the rule excludes the singular diagonal
/// node, so A(i,i) = 1/2 exactly. As in the Laplace module, n points away
/// from the bounded interior, giving the +1/2 exterior jump.

namespace hodlrx::bie {

/// Generator of the discretized combined-field operator; T is a complex
/// scalar (std::complex<float> or std::complex<double>).
template <typename T>
class HelmholtzCombinedBIE final : public MatrixGenerator<T> {
 public:
  HelmholtzCombinedBIE(ContourDiscretization disc, double kappa, double eta,
                       int quadrature_order = 6)
      : disc_(std::move(disc)),
        kappa_(kappa),
        eta_(eta),
        rule_(quadrature_order, disc_.n) {}

  index_t rows() const override { return disc_.n; }
  index_t cols() const override { return disc_.n; }

  T entry(index_t i, index_t j) const override {
    if (i == j) return T(0.5);
    const std::complex<double> k = kernel(disc_.x[i], j);
    const double w = disc_.weight[j] * rule_.multiplier(i, j);
    return static_cast<T>(w * k);
  }

  /// The combined kernel d_k + i eta s_k at (x, y_j) for x off the node j.
  std::complex<double> kernel(Point2 x, index_t j) const {
    const double dx = x.x - disc_.x[j].x;
    const double dy = x.y - disc_.x[j].y;
    const double r = std::hypot(dx, dy);
    const std::complex<double> ii(0.0, 1.0);
    const std::complex<double> s = 0.25 * ii * hankel1_0(kappa_ * r);
    const double ndotr = disc_.nrm[j].x * dx + disc_.nrm[j].y * dy;
    const std::complex<double> d =
        0.25 * ii * kappa_ * hankel1_1(kappa_ * r) * (ndotr / r);
    return d + ii * eta_ * s;
  }

  const ContourDiscretization& discretization() const { return disc_; }
  double kappa() const { return kappa_; }
  double eta() const { return eta_; }

 private:
  ContourDiscretization disc_;
  double kappa_, eta_;
  KapurRokhlinRule rule_;
};

/// Evaluate u(x) = int (d_k + i eta s_k) sigma ds at off-surface targets.
template <typename T>
std::vector<T> helmholtz_potential(const ContourDiscretization& disc,
                                   double kappa, double eta, const T* sigma,
                                   const std::vector<Point2>& targets);

/// Fundamental solution Phi_k(x - x0) = (i/4) H0^(1)(k |x - x0|) — the
/// exact radiating exterior field of a point source at x0.
std::complex<double> helmholtz_fundamental(double kappa, Point2 x, Point2 x0);

}  // namespace hodlrx::bie
