#include "bie/special.hpp"

#include <array>
#include <cmath>
#include <vector>

/// Fast Bessel functions for the Helmholtz kernels.
///
/// libstdc++'s std::cyl_bessel_j / std::cyl_neumann are machine-accurate
/// but cost ~3 us per call, which dominates BIE compression (every kernel
/// entry needs J0, J1, Y0, Y1). We use a three-regime scheme:
///
///   x <= 8        ascending power series for J0/J1 (cancellation
///                 amplification < 1e3 there, so ~1e-13 accuracy);
///   8 < x <= 40   piecewise Chebyshev interpolants, degree 28 on
///                 3.2-wide intervals, BOOTSTRAPPED from the libstdc++
///                 implementations at first use (a one-time ~1400 slow
///                 evaluations); Y0/Y1 additionally cover [0.75, 8];
///   x > 40        the Hankel asymptotic amplitude/phase expansion with 12
///                 terms (truncation < 1e-13 for x > 40).
///
/// Small-argument Y (x < 0.75, i.e. targets within a fraction of a
/// wavelength) falls through to std::cyl_neumann; those calls are rare.
/// The test suite validates everything against libstdc++ on a dense grid
/// and via the Wronskian identity.

namespace hodlrx::bie {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kSeriesCut = 8.0;
constexpr double kChebCutHi = 40.0;
constexpr double kYSmallCut = 0.75;

/// Ascending series J_n(x) = sum_k (-1)^k (x/2)^{n+2k} / (k! (n+k)!).
double j_series(int n, double x) {
  const double half = 0.5 * x;
  double term = 1.0;
  for (int k = 1; k <= n; ++k) term *= half / k;
  double sum = term;
  const double h2 = half * half;
  for (int k = 1; k < 40; ++k) {
    term *= -h2 / (static_cast<double>(k) * (k + n));
    sum += term;
    if (std::abs(term) < 1e-18 * std::abs(sum)) break;
  }
  return sum;
}

/// Hankel asymptotic P/Q series (A&S 9.2.9-10), 12 terms.
void pq_asymptotic(int n, double x, double& p, double& q) {
  const double mu = 4.0 * n * n;
  const double inv8x = 1.0 / (8.0 * x);
  double c = 1.0;
  p = 1.0;
  q = 0.0;
  for (int k = 1; k <= 12; ++k) {
    const double odd = 2.0 * k - 1.0;
    c *= (mu - odd * odd) * inv8x / k;
    if (k % 2 == 1) {
      q += ((k % 4 == 1) ? c : -c);  // Q = c1 - c3 + c5 - ...
    } else {
      p += ((k % 4 == 0) ? c : -c);  // P = 1 - c2 + c4 - ...
    }
  }
}

double j_asymptotic(int n, double x) {
  double p, q;
  pq_asymptotic(n, x, p, q);
  const double chi = x - (2 * n + 1) * kPi / 4.0;
  return std::sqrt(2.0 / (kPi * x)) * (p * std::cos(chi) - q * std::sin(chi));
}

double y_asymptotic(int n, double x) {
  double p, q;
  pq_asymptotic(n, x, p, q);
  const double chi = x - (2 * n + 1) * kPi / 4.0;
  return std::sqrt(2.0 / (kPi * x)) * (p * std::sin(chi) + q * std::cos(chi));
}

/// Piecewise Chebyshev interpolant on [lo, hi] with fixed-width intervals;
/// node values are taken from a reference function at construction.
class PiecewiseChebyshev {
 public:
  static constexpr int kDegree = 28;

  template <typename Ref>
  PiecewiseChebyshev(double lo, double hi, double width, Ref&& ref)
      : lo_(lo) {
    const int pieces = static_cast<int>(std::ceil((hi - lo) / width));
    inv_width_ = pieces / (hi - lo);
    coef_.resize(pieces);
    std::array<double, kDegree> values;
    for (int piece = 0; piece < pieces; ++piece) {
      const double a = lo + piece / inv_width_;
      const double b = lo + (piece + 1) / inv_width_;
      const double mid = 0.5 * (a + b), half = 0.5 * (b - a);
      for (int j = 0; j < kDegree; ++j)
        values[j] = ref(mid + half * std::cos(kPi * (j + 0.5) / kDegree));
      for (int k = 0; k < kDegree; ++k) {
        double s = 0;
        for (int j = 0; j < kDegree; ++j)
          s += values[j] * std::cos(kPi * k * (j + 0.5) / kDegree);
        coef_[piece][k] = 2.0 * s / kDegree;
      }
      coef_[piece][0] *= 0.5;
    }
  }

  double eval(double x) const {
    int piece = static_cast<int>((x - lo_) * inv_width_);
    piece = std::min(std::max(piece, 0), static_cast<int>(coef_.size()) - 1);
    const double a = lo_ + piece / inv_width_;
    const double b = lo_ + (piece + 1) / inv_width_;
    const double t = (2.0 * x - a - b) / (b - a);  // [-1, 1]
    // Clenshaw recurrence.
    const auto& c = coef_[piece];
    double b1 = 0, b2 = 0;
    for (int k = kDegree - 1; k >= 1; --k) {
      const double b0 = 2.0 * t * b1 - b2 + c[k];
      b2 = b1;
      b1 = b0;
    }
    return t * b1 - b2 + c[0];
  }

 private:
  double lo_, inv_width_;
  std::vector<std::array<double, kDegree>> coef_;
};

/// One-time bootstrapped tables (thread-safe magic static).
struct BesselTables {
  PiecewiseChebyshev j0_mid, j1_mid, y0_low, y1_low, y0_mid, y1_mid;

  BesselTables()
      : j0_mid(kSeriesCut, kChebCutHi, 3.2,
               [](double x) { return std::cyl_bessel_j(0.0, x); }),
        j1_mid(kSeriesCut, kChebCutHi, 3.2,
               [](double x) { return std::cyl_bessel_j(1.0, x); }),
        y0_low(kYSmallCut, kSeriesCut, 1.85,
               [](double x) { return std::cyl_neumann(0.0, x); }),
        y1_low(kYSmallCut, kSeriesCut, 1.85,
               [](double x) { return std::cyl_neumann(1.0, x); }),
        y0_mid(kSeriesCut, kChebCutHi, 3.2,
               [](double x) { return std::cyl_neumann(0.0, x); }),
        y1_mid(kSeriesCut, kChebCutHi, 3.2,
               [](double x) { return std::cyl_neumann(1.0, x); }) {}

  static const BesselTables& get() {
    static const BesselTables tables;
    return tables;
  }
};

}  // namespace

double bessel_j0(double x) {
  x = std::abs(x);
  if (x <= kSeriesCut) return j_series(0, x);
  if (x <= kChebCutHi) return BesselTables::get().j0_mid.eval(x);
  return j_asymptotic(0, x);
}

double bessel_j1(double x) {
  const double ax = std::abs(x);
  double v;
  if (ax <= kSeriesCut)
    v = j_series(1, ax);
  else if (ax <= kChebCutHi)
    v = BesselTables::get().j1_mid.eval(ax);
  else
    v = j_asymptotic(1, ax);
  return x < 0 ? -v : v;
}

double bessel_y0(double x) {
  if (x < kYSmallCut) return std::cyl_neumann(0.0, x);
  if (x <= kSeriesCut) return BesselTables::get().y0_low.eval(x);
  if (x <= kChebCutHi) return BesselTables::get().y0_mid.eval(x);
  return y_asymptotic(0, x);
}

double bessel_y1(double x) {
  if (x < kYSmallCut) return std::cyl_neumann(1.0, x);
  if (x <= kSeriesCut) return BesselTables::get().y1_low.eval(x);
  if (x <= kChebCutHi) return BesselTables::get().y1_mid.eval(x);
  return y_asymptotic(1, x);
}

std::complex<double> hankel1_0(double x) {
  return {bessel_j0(x), bessel_y0(x)};
}

std::complex<double> hankel1_1(double x) {
  return {bessel_j1(x), bessel_y1(x)};
}

}  // namespace hodlrx::bie
