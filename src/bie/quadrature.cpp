#include "bie/quadrature.hpp"

#include "common/error.hpp"

namespace hodlrx::bie {

const std::vector<double>& kapur_rokhlin_weights(int order) {
  // Kapur & Rokhlin (1997), corrected trapezoidal rules for integrands with
  // a log singularity at the excluded node; the same tables appear in Hao,
  // Barnett, Martinsson & Young (Adv. Comput. Math. 2014) and in Alex
  // Barnett's BIE2D (quadr.m).
  static const std::vector<double> g2 = {
      1.825748064736159e0,
      -1.325748064736159e0,
  };
  static const std::vector<double> g6 = {
      4.967362978287758e0,
      -1.620501504859126e1,
      2.585153761832639e1,
      -2.222599466791883e1,
      9.930104998037539e0,
      -1.817995878141594e0,
  };
  static const std::vector<double> g10 = {
      7.832432020568779e0,
      -4.565161670374749e1,
      1.452168846354677e2,
      -2.901348302886379e2,
      3.870862162579900e2,
      -3.523821383570681e2,
      2.172421547519342e2,
      -8.707796087382991e1,
      2.053584266072635e1,
      -2.166984103403823e0,
  };
  switch (order) {
    case 2: return g2;
    case 6: return g6;
    case 10: return g10;
    default:
      HODLRX_REQUIRE(false, "Kapur-Rokhlin weights available for orders "
                            "2, 6, 10; got " << order);
  }
  return g2;  // unreachable
}

KapurRokhlinRule::KapurRokhlinRule(int order, index_t n)
    : order_(order), n_(n), gamma_(kapur_rokhlin_weights(order)) {
  stencil_ = static_cast<index_t>(gamma_.size());
  HODLRX_REQUIRE(n > 2 * stencil_,
                 "KapurRokhlinRule: grid too coarse (n=" << n << ", stencil="
                                                         << stencil_ << ")");
}

}  // namespace hodlrx::bie
