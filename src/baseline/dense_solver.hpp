#pragma once

#include <vector>

#include "common/lapack.hpp"
#include "lowrank/generator.hpp"

/// \file dense_solver.hpp
/// Classical dense LU solver (the O(N^3) baseline the paper's Sec. I-A
/// dismisses for large N). Used to validate every fast solver at small N
/// and to demonstrate the asymptotic crossover in the ablation bench.

namespace hodlrx {

template <typename T>
class DenseSolver {
 public:
  /// Factor a dense matrix copy with partially pivoted LU.
  static DenseSolver factor(ConstMatrixView<T> a) {
    DenseSolver s;
    s.lu_ = to_matrix(a);
    s.ipiv_.assign(s.lu_.rows(), 0);
    getrf(s.lu_.view(), s.ipiv_.data());
    return s;
  }
  static DenseSolver factor_generator(const MatrixGenerator<T>& g) {
    Matrix<T> a = materialize(g);
    return factor(ConstMatrixView<T>(a));
  }

  void solve_inplace(MatrixView<T> b) const {
    getrs<T>(lu_, ipiv_.data(), b);
  }
  Matrix<T> solve(ConstMatrixView<T> b) const {
    Matrix<T> x = to_matrix(b);
    solve_inplace(x);
    return x;
  }

  index_t n() const { return lu_.rows(); }
  std::size_t bytes() const {
    return lu_.bytes() + ipiv_.size() * sizeof(index_t);
  }

 private:
  Matrix<T> lu_;
  std::vector<index_t> ipiv_;
};

}  // namespace hodlrx
