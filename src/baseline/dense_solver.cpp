#include "baseline/dense_solver.hpp"

// DenseSolver is header-only; this TU pins the library archive and provides
// explicit instantiations so downstream link units stay lean.

#include <complex>

namespace hodlrx {

template class DenseSolver<float>;
template class DenseSolver<double>;
template class DenseSolver<std::complex<float>>;
template class DenseSolver<std::complex<double>>;

}  // namespace hodlrx
