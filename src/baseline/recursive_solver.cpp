#include "baseline/recursive_solver.hpp"

#include <complex>

#include "common/error.hpp"
#include "common/lapack.hpp"
#include "common/parallel.hpp"

namespace hodlrx {

template <typename T>
RecursiveSolver<T> RecursiveSolver<T>::factor(const HodlrMatrix<T>& h,
                                              const Options& opt) {
  RecursiveSolver<T> s;
  s.h_ = &h;
  s.opt_ = opt;
  const ClusterTree& tree = h.tree();
  s.y_.resize(tree.num_nodes());
  s.leaf_lu_.resize(tree.num_leaves());
  s.leaf_piv_.resize(tree.num_leaves());
  s.k_.resize(tree.num_nodes());
  s.k_piv_.resize(tree.num_nodes());

  if (opt.parallel) {
#pragma omp parallel
#pragma omp single nowait
    s.factor_node(0);
  } else {
    s.factor_node(0);
  }
  return s;
}

template <typename T>
void RecursiveSolver<T>::factor_node(index_t nu) {
  const ClusterTree& tree = h_->tree();
  if (tree.is_leaf(nu)) {
    const index_t j = nu - ClusterTree::level_begin(tree.depth());
    leaf_lu_[j] = h_->leaf_block(j);  // copy, then factor in place
    leaf_piv_[j].assign(leaf_lu_[j].rows(), 0);
    getrf(leaf_lu_[j].view(), leaf_piv_[j].data());
    return;
  }
  const index_t a = ClusterTree::left_child(nu);
  const index_t b = ClusterTree::right_child(nu);
  const bool spawn =
      opt_.parallel && tree.node(nu).size() >= opt_.task_cutoff;

  // Factor the two independent subproblems of eq. (7).
#pragma omp task if (spawn) default(shared)
  factor_node(a);
  factor_node(b);
#pragma omp taskwait

  // Y_a = A_a^{-1} U_a, Y_b = A_b^{-1} U_b via recursive solves.
  y_[a] = h_->u(a);
  y_[b] = h_->u(b);
  // Within-node work is serial (tasks=false): this is HODLRlib's model.
  if (y_[a].cols() > 0) solve_node(a, y_[a].view(), /*tasks=*/false);
  if (y_[b].cols() > 0) solve_node(b, y_[b].view(), /*tasks=*/false);

  // K_gamma of eq. (11) with exact ranks: blocks are
  // [[V_a^H Y_a, I_{rb}], [I_{ra}, V_b^H Y_b]] of size (ra + rb).
  const index_t ra = h_->rank(a);  // cols of U_a / rows of w_a
  const index_t rb = h_->rank(b);
  const index_t m = ra + rb;
  k_[nu] = Matrix<T>(m, m);
  if (m == 0) return;
  MatrixView<T> kk = k_[nu];
  if (ra > 0 && rb > 0) {
    gemm(Op::C, Op::N, T{1}, h_->v(a), y_[a], T{0}, kk.block(0, 0, rb, ra));
    gemm(Op::C, Op::N, T{1}, h_->v(b), y_[b], T{0}, kk.block(rb, ra, ra, rb));
  }
  for (index_t i = 0; i < rb; ++i) kk(i, ra + i) = T{1};
  for (index_t i = 0; i < ra; ++i) kk(rb + i, i) = T{1};
  k_piv_[nu].assign(m, 0);
  getrf(kk, k_piv_[nu].data());
}

template <typename T>
void RecursiveSolver<T>::solve_node(index_t nu, MatrixView<T> x,
                                    bool tasks) const {
  const ClusterTree& tree = h_->tree();
  if (tree.is_leaf(nu)) {
    const index_t j = nu - ClusterTree::level_begin(tree.depth());
    getrs(ConstMatrixView<T>(leaf_lu_[j]), leaf_piv_[j].data(), x);
    return;
  }
  const index_t a = ClusterTree::left_child(nu);
  const index_t b = ClusterTree::right_child(nu);
  const index_t na = tree.node(a).size();
  const index_t nb = tree.node(b).size();
  MatrixView<T> xa = x.block(0, 0, na, x.cols);
  MatrixView<T> xb = x.block(na, 0, nb, x.cols);
  const bool spawn =
      tasks && opt_.parallel && tree.node(nu).size() >= opt_.task_cutoff;

#pragma omp task if (spawn) default(shared)
  solve_node(a, xa, tasks);
  solve_node(b, xb, tasks);
#pragma omp taskwait

  const index_t ra = h_->rank(a);
  const index_t rb = h_->rank(b);
  const index_t m = ra + rb;
  if (m == 0) return;

  // Woodbury correction: K w = [V_a^H z_a; V_b^H z_b]; x -= [Y_a w_a; Y_b w_b].
  Matrix<T> w(m, x.cols);
  if (rb > 0)
    gemm(Op::C, Op::N, T{1}, h_->v(a), ConstMatrixView<T>(xa), T{0},
         w.block(0, 0, rb, x.cols));
  if (ra > 0)
    gemm(Op::C, Op::N, T{1}, h_->v(b), ConstMatrixView<T>(xb), T{0},
         w.block(rb, 0, ra, x.cols));
  getrs(ConstMatrixView<T>(k_[nu]), k_piv_[nu].data(), w.view());
  if (ra > 0)
    gemm(Op::N, Op::N, T{-1}, y_[a], ConstMatrixView<T>(w.block(0, 0, ra, x.cols)),
         T{1}, xa);
  if (rb > 0)
    gemm(Op::N, Op::N, T{-1}, y_[b],
         ConstMatrixView<T>(w.block(ra, 0, rb, x.cols)), T{1}, xb);
}

template <typename T>
void RecursiveSolver<T>::solve_inplace(MatrixView<T> b) const {
  HODLRX_REQUIRE(b.rows == h_->n(), "solve: wrong rhs size");
  if (opt_.parallel) {
#pragma omp parallel
#pragma omp single nowait
    solve_node(0, b, /*tasks=*/true);
  } else {
    solve_node(0, b, /*tasks=*/false);
  }
}

template <typename T>
std::size_t RecursiveSolver<T>::bytes() const {
  std::size_t bytes = 0;
  for (const auto& m : y_) bytes += m.bytes();
  for (const auto& m : leaf_lu_) bytes += m.bytes();
  for (const auto& m : k_) bytes += m.bytes();
  for (const auto& p : leaf_piv_) bytes += p.size() * sizeof(index_t);
  for (const auto& p : k_piv_) bytes += p.size() * sizeof(index_t);
  return bytes;
}

template class RecursiveSolver<float>;
template class RecursiveSolver<double>;
template class RecursiveSolver<std::complex<float>>;
template class RecursiveSolver<std::complex<double>>;

}  // namespace hodlrx
