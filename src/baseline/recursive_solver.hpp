#pragma once

#include <vector>

#include "core/hodlr.hpp"

/// \file recursive_solver.hpp
/// The HODLRlib-style comparator of paper Sec. IV-A: the recursive
/// factorization of Sec. III-A executed per node with exact (unpadded)
/// ranks, parallelized only ACROSS nodes (OpenMP tasks over the two
/// independent subproblems of eq. 7) — no intra-node parallelism and no
/// batching. Comparing this against the batched engine isolates the paper's
/// contribution, which is the point of Table III / Fig. 5.
///
/// It is also an algorithmically independent implementation of the same
/// factorization, so the test suite uses it to cross-validate the packed
/// engines.

namespace hodlrx {

template <typename T>
class RecursiveSolver {
 public:
  struct Options {
    bool parallel = true;        ///< OpenMP tasks across sibling subtrees
    index_t task_cutoff = 256;   ///< serialize below this node size
  };

  /// Factor the HODLR matrix. `h` must outlive the solver (its V bases are
  /// used during solves; they are not modified).
  static RecursiveSolver factor(const HodlrMatrix<T>& h,
                                const Options& opt = {});

  /// Solve A x = b in place (b: n x nrhs).
  void solve_inplace(MatrixView<T> b) const;

  Matrix<T> solve(ConstMatrixView<T> b) const {
    Matrix<T> x = to_matrix(b);
    solve_inplace(x);
    return x;
  }

  std::size_t bytes() const;

 private:
  RecursiveSolver() = default;

  void factor_node(index_t nu);
  /// `tasks` enables OpenMP tasks across the two child subproblems. During
  /// factorization the Y-solves run with tasks OFF: HODLRlib parallelizes
  /// only ACROSS same-level nodes, never inside a node's work (paper Sec.
  /// IV-A) — each node's task does its subtree solves serially.
  void solve_node(index_t nu, MatrixView<T> b, bool tasks) const;

  const HodlrMatrix<T>* h_ = nullptr;
  Options opt_;
  std::vector<Matrix<T>> y_;              ///< per node: Y_nu = A_nu^{-1} U_nu
  std::vector<Matrix<T>> leaf_lu_;        ///< per leaf
  std::vector<std::vector<index_t>> leaf_piv_;
  std::vector<Matrix<T>> k_;              ///< per internal node gamma
  std::vector<std::vector<index_t>> k_piv_;
};

}  // namespace hodlrx
