#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/config.hpp"

/// \file device.hpp
/// Simulated accelerator context.
///
/// The paper runs on an NVIDIA V100 (32 GB, PCIe 3.0 x16 at ~12 GB/s
/// measured) and launches cuBLAS batched kernels. This environment has no
/// GPU, so the "device" is the host's OpenMP thread pool; this context keeps
/// the *accounting* a GPU imposes so the experiments remain meaningful:
///
///  - device-memory accounting (live/peak bytes against a capacity), so
///    benches can report the paper's `mem` column and check the 32 GB fit;
///  - host-to-device / device-to-host transfer byte counters plus a
///    bandwidth model, so copy overheads are reported the way the paper
///    discusses them;
///  - a kernel-launch counter with optional injected per-launch latency, so
///    the launch-amortization claim of batching (Sec. III-C) is measurable.
///
/// All counters are thread-safe.

namespace hodlrx {

class DeviceContext {
 public:
  /// The process-wide default device.
  static DeviceContext& global();

  // --- memory accounting -------------------------------------------------
  void alloc_bytes(std::size_t n);
  void free_bytes(std::size_t n);
  std::size_t live_bytes() const { return live_.load(); }
  std::size_t peak_bytes() const { return peak_.load(); }
  std::size_t capacity_bytes() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  void set_capacity_bytes(std::size_t c) {
    capacity_.store(c, std::memory_order_relaxed);
  }

  // --- transfers ----------------------------------------------------------
  /// Record (and perform, trivially: the memory is shared) a host-to-device
  /// copy of n bytes.
  void record_h2d(std::size_t n) { h2d_.fetch_add(n); }
  void record_d2h(std::size_t n) { d2h_.fetch_add(n); }
  std::size_t h2d_bytes() const { return h2d_.load(); }
  std::size_t d2h_bytes() const { return d2h_.load(); }
  /// Modeled seconds to move n bytes over the link. A non-positive
  /// bandwidth (set_bandwidth_gbs(0) is the documented way to disable the
  /// transfer model) means "free", not a division by zero.
  double modeled_transfer_seconds(std::size_t n) const {
    const double gbs = bandwidth_gbs();
    if (gbs <= 0.0) return 0.0;
    return static_cast<double>(n) / (gbs * 1e9);
  }
  void set_bandwidth_gbs(double gbs) {
    bandwidth_gbs_.store(gbs, std::memory_order_relaxed);
  }
  double bandwidth_gbs() const {
    return bandwidth_gbs_.load(std::memory_order_relaxed);
  }

  // --- kernel launches ----------------------------------------------------
  /// Record one batched-kernel launch; optionally injects the configured
  /// per-launch latency (busy wait) to emulate GPU launch overhead.
  void record_launch();
  std::uint64_t launches() const { return launches_.load(); }
  void set_launch_latency_us(double us) {
    launch_latency_us_.store(us, std::memory_order_relaxed);
  }
  double launch_latency_us() const {
    return launch_latency_us_.load(std::memory_order_relaxed);
  }

  /// Reset the transfer/launch counters and rebase the peak to the current
  /// live bytes. `live_` itself is NOT reset: it is owned by the
  /// outstanding DeviceAllocation handles, whose later destructors would
  /// underflow a zeroed live count (the configuration is untouched too).
  void reset_counters();

 private:
  std::atomic<std::size_t> live_{0}, peak_{0}, h2d_{0}, d2h_{0};
  std::atomic<std::uint64_t> launches_{0};
  // Configuration knobs are atomics too: tests and a future serving layer
  // tune them while launches are in flight on other threads, and a torn
  // double read under the capacity check would be a real (if benign-looking)
  // race. Relaxed ordering — each knob is an independent scalar.
  std::atomic<std::size_t> capacity_{32ull << 30};  // V100: 32 GB
  std::atomic<double> bandwidth_gbs_{12.0};  // paper: ~12 GB/s achieved
  std::atomic<double> launch_latency_us_{0.0};
};

/// RAII registration of a device-memory allocation (move-only).
class DeviceAllocation {
 public:
  DeviceAllocation() = default;
  explicit DeviceAllocation(std::size_t bytes) : bytes_(bytes) {
    DeviceContext::global().alloc_bytes(bytes_);
  }
  ~DeviceAllocation() { release(); }
  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;
  DeviceAllocation(DeviceAllocation&& o) noexcept : bytes_(o.bytes_) {
    o.bytes_ = 0;
  }
  DeviceAllocation& operator=(DeviceAllocation&& o) noexcept {
    if (this != &o) {
      release();
      bytes_ = o.bytes_;
      o.bytes_ = 0;
    }
    return *this;
  }
  std::size_t bytes() const { return bytes_; }

 private:
  void release() {
    if (bytes_ > 0) DeviceContext::global().free_bytes(bytes_);
    bytes_ = 0;
  }
  std::size_t bytes_ = 0;
};

}  // namespace hodlrx
