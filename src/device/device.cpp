#include "device/device.hpp"

#include <chrono>

#include "common/error.hpp"

namespace hodlrx {

DeviceContext& DeviceContext::global() {
  static DeviceContext ctx;
  return ctx;
}

void DeviceContext::alloc_bytes(std::size_t n) {
  // Check-then-add under CAS: a failed (over-capacity) allocation must leave
  // `live_` untouched. The old fetch_add-then-check leaked the increment on
  // the throw path — the throwing DeviceAllocation constructor never runs
  // its destructor — so every failed allocation permanently inflated the
  // live count and poisoned later capacity checks.
  std::size_t cur = live_.load();
  std::size_t now;
  const std::size_t cap = capacity_bytes();
  do {
    now = cur + n;
    HODLRX_REQUIRE(now <= cap,
                   "device out of memory: " << now << " bytes live exceeds "
                                            << cap << " capacity");
  } while (!live_.compare_exchange_weak(cur, now));
  // Monotone peak update.
  std::size_t prev = peak_.load();
  while (prev < now && !peak_.compare_exchange_weak(prev, now)) {
  }
}

void DeviceContext::free_bytes(std::size_t n) {
  // Saturating: never let `live_` wrap below zero. An unmatched free can
  // only come from an accounting bug elsewhere; wrapping to a huge value
  // would spuriously trip every later capacity check, which is worse than
  // clamping (debug builds assert instead).
  std::size_t cur = live_.load();
  do {
    HODLRX_DBG_ASSERT(cur >= n);
    if (cur < n) n = cur;
  } while (!live_.compare_exchange_weak(cur, cur - n));
}

void DeviceContext::record_launch() {
  launches_.fetch_add(1);
  const double latency_us = launch_latency_us();
  if (latency_us > 0.0) {
    // Busy-wait: sleep granularity is far coarser than a GPU launch.
    const auto t0 = std::chrono::steady_clock::now();
    const auto dt = std::chrono::duration<double, std::micro>(latency_us);
    while (std::chrono::steady_clock::now() - t0 < dt) {
    }
  }
}

void DeviceContext::reset_counters() {
  // `live_` is deliberately NOT reset: outstanding DeviceAllocation objects
  // will still run free_bytes() later, and zeroing the live count under them
  // would underflow it (see free_bytes). Live bytes are owned by RAII
  // handles, not by the counters.
  peak_ = live_.load();
  h2d_ = 0;
  d2h_ = 0;
  launches_ = 0;
}

}  // namespace hodlrx
