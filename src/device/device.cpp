#include "device/device.hpp"

#include <chrono>

#include "common/error.hpp"

namespace hodlrx {

DeviceContext& DeviceContext::global() {
  static DeviceContext ctx;
  return ctx;
}

void DeviceContext::alloc_bytes(std::size_t n) {
  const std::size_t now = live_.fetch_add(n) + n;
  HODLRX_REQUIRE(now <= capacity_,
                 "device out of memory: " << now << " bytes live exceeds "
                                          << capacity_ << " capacity");
  // Monotone peak update.
  std::size_t prev = peak_.load();
  while (prev < now && !peak_.compare_exchange_weak(prev, now)) {
  }
}

void DeviceContext::free_bytes(std::size_t n) { live_.fetch_sub(n); }

void DeviceContext::record_launch() {
  launches_.fetch_add(1);
  if (launch_latency_us_ > 0.0) {
    // Busy-wait: sleep granularity is far coarser than a GPU launch.
    const auto t0 = std::chrono::steady_clock::now();
    const auto dt = std::chrono::duration<double, std::micro>(
        launch_latency_us_);
    while (std::chrono::steady_clock::now() - t0 < dt) {
    }
  }
}

void DeviceContext::reset_counters() {
  live_ = 0;
  peak_ = 0;
  h2d_ = 0;
  d2h_ = 0;
  launches_ = 0;
}

}  // namespace hodlrx
