#include "device/backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <new>
#include <utility>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "device/device.hpp"

namespace hodlrx {

// ---------------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------------

namespace backend_stats {
namespace {
std::atomic<std::uint64_t> deferred_{0}, drained_{0}, events_{0}, drains_{0};
std::atomic<std::uint64_t> max_depth_{0};

void note_depth(std::uint64_t depth) {
  std::uint64_t cur = max_depth_.load(std::memory_order_relaxed);
  while (cur < depth && !max_depth_.compare_exchange_weak(
                            cur, depth, std::memory_order_relaxed)) {
  }
}
}  // namespace

std::uint64_t deferred() { return deferred_.load(std::memory_order_relaxed); }
std::uint64_t drained() { return drained_.load(std::memory_order_relaxed); }
std::uint64_t events_recorded() {
  return events_.load(std::memory_order_relaxed);
}
std::uint64_t drains() { return drains_.load(std::memory_order_relaxed); }
std::uint64_t max_queue_depth() {
  return max_depth_.load(std::memory_order_relaxed);
}
void reset() {
  deferred_.store(0, std::memory_order_relaxed);
  drained_.store(0, std::memory_order_relaxed);
  events_.store(0, std::memory_order_relaxed);
  drains_.store(0, std::memory_order_relaxed);
  max_depth_.store(0, std::memory_order_relaxed);
}
}  // namespace backend_stats

// ---------------------------------------------------------------------------
// Thread-local stream binding.
// ---------------------------------------------------------------------------

namespace {
thread_local Stream* tls_current_stream = nullptr;
thread_local bool tls_in_stream_task = false;

/// Marks the scope of a deferred launch body on the executing thread, so a
/// body calling back into the batched drivers dispatches inline instead of
/// re-enqueueing onto the queue it is draining.
class InStreamTaskScope {
 public:
  InStreamTaskScope() : prev_(tls_in_stream_task) { tls_in_stream_task = true; }
  ~InStreamTaskScope() { tls_in_stream_task = prev_; }
  InStreamTaskScope(const InStreamTaskScope&) = delete;
  InStreamTaskScope& operator=(const InStreamTaskScope&) = delete;

 private:
  bool prev_;
};
}  // namespace

Stream* current_stream() { return tls_current_stream; }
bool in_stream_task() { return tls_in_stream_task; }

StreamScope::StreamScope(Stream& s) : prev_(tls_current_stream) {
  tls_current_stream = &s;
}
StreamScope::~StreamScope() { tls_current_stream = prev_; }

// ---------------------------------------------------------------------------
// The async queue engine.
// ---------------------------------------------------------------------------

namespace detail {

/// Completion state behind an Event handle. `recorded` counts record calls,
/// `completed` counts executed record items; the event is complete when they
/// match. Atomics so query() never needs the engine lock (monotone counters:
/// a stale read only under-reports completion, which query is allowed to
/// do); compound transitions happen with the engine lock held.
struct EventState {
  std::atomic<AsyncEngine*> engine{nullptr};  // set on first async record
  std::atomic<std::uint64_t> recorded{0};
  std::atomic<std::uint64_t> completed{0};

  bool complete() const {
    return completed.load(std::memory_order_acquire) >=
           recorded.load(std::memory_order_acquire);
  }
};

/// One queued stream item. `gen` is the recorded-count a kRecord fulfills or
/// a kWait requires to be completed before it may retire.
struct Item {
  enum class Kind { kLaunch, kRecord, kWait };
  Kind kind;
  std::function<void()> body;        // kLaunch
  std::shared_ptr<EventState> ev;    // kRecord / kWait
  std::uint64_t gen = 0;
  const char* label = "";
};

/// Queue of one stream. Fields are guarded by the owning engine's mutex;
/// they are not annotated because the struct has no handle on that mutex —
/// every access site lives inside AsyncEngine methods that are.
struct StreamState {
  std::deque<Item> q;
  bool busy = false;  // a drain worker is executing this stream's head
};

/// FIFO queues drained by the persistent ThreadPool. All state sits behind
/// one mutex; launch bodies run with the lock dropped. One drain dispatches
/// exactly one pool launch (or none when the target is already met), so a
/// TaskGraph run lowered onto streams keeps the one-launch-per-run warm-pool
/// invariant that test_scheduler pins.
class AsyncEngine {
 public:
  std::shared_ptr<StreamState> create_stream() {
    auto s = std::make_shared<StreamState>();
    MutexLock lk(mu_);
    streams_.push_back(s);
    return s;
  }

  void destroy_stream(const std::shared_ptr<StreamState>& s) {
    MutexLock lk(mu_);
    streams_.erase(std::remove(streams_.begin(), streams_.end(), s),
                   streams_.end());
  }

  void enqueue_launch(StreamState& s, const char* label,
                      std::function<void()> body) {
    MutexLock lk(mu_);
    s.q.push_back(Item{Item::Kind::kLaunch, std::move(body), nullptr, 0,
                       label});
    backend_stats::deferred_.fetch_add(1, std::memory_order_relaxed);
    backend_stats::note_depth(s.q.size());
    cv_.notify_all();
  }

  void enqueue_record(StreamState& s, const std::shared_ptr<EventState>& ev) {
    MutexLock lk(mu_);
    ev->engine.store(this, std::memory_order_relaxed);
    const std::uint64_t gen =
        ev->recorded.fetch_add(1, std::memory_order_acq_rel) + 1;
    s.q.push_back(Item{Item::Kind::kRecord, nullptr, ev, gen, "record"});
    backend_stats::events_.fetch_add(1, std::memory_order_relaxed);
    backend_stats::note_depth(s.q.size());
    cv_.notify_all();
  }

  void enqueue_wait(StreamState& s, const std::shared_ptr<EventState>& ev) {
    MutexLock lk(mu_);
    const std::uint64_t gen = ev->recorded.load(std::memory_order_acquire);
    s.q.push_back(Item{Item::Kind::kWait, nullptr, ev, gen, "wait"});
    backend_stats::note_depth(s.q.size());
    cv_.notify_all();
  }

  void synchronize_stream(StreamState& s) {
    drain(Target{Target::Kind::kStream, &s, nullptr, 0});
  }

  void synchronize_all() {
    drain(Target{Target::Kind::kAll, nullptr, nullptr, 0});
  }

  void event_synchronize(const std::shared_ptr<EventState>& ev) {
    const std::uint64_t gen = ev->recorded.load(std::memory_order_acquire);
    drain(Target{Target::Kind::kEvent, nullptr, ev, gen});
  }

  void event_reset(EventState& ev) {
    MutexLock lk(mu_);
    ev.completed.store(ev.recorded.load(std::memory_order_acquire),
                       std::memory_order_release);
    cv_.notify_all();
  }

  std::size_t pending(const StreamState& s) {
    MutexLock lk(mu_);
    return s.q.size();
  }

 private:
  /// What a drain pass must make true before it returns.
  struct Target {
    enum class Kind { kAll, kStream, kEvent };
    Kind kind;
    StreamState* stream;
    std::shared_ptr<EventState> ev;
    std::uint64_t gen;
  };

  bool target_done(const Target& t) const HODLRX_REQUIRES(mu_) {
    switch (t.kind) {
      case Target::Kind::kStream:
        return t.stream->q.empty() && !t.stream->busy;
      case Target::Kind::kEvent:
        return t.ev->completed.load(std::memory_order_acquire) >= t.gen;
      case Target::Kind::kAll:
        break;
    }
    if (inflight_ > 0) return false;
    for (const auto& s : streams_)
      if (!s->q.empty() || s->busy) return false;
    return true;
  }

  bool all_idle() const HODLRX_REQUIRES(mu_) {
    if (inflight_ > 0) return false;
    for (const auto& s : streams_)
      if (!s->q.empty() || s->busy) return false;
    return true;
  }

  /// A stream head may retire when it is a launch/record, or a wait whose
  /// event has completed; under failure everything retires (launch bodies
  /// are skipped) so the queues always drain to empty.
  bool head_runnable(const StreamState& s) const HODLRX_REQUIRES(mu_) {
    if (s.busy || s.q.empty()) return false;
    if (failed_) return true;
    const Item& it = s.q.front();
    return it.kind != Item::Kind::kWait ||
           it.ev->completed.load(std::memory_order_acquire) >= it.gen;
  }

  StreamState* pick_runnable() HODLRX_REQUIRES(mu_) {
    for (const auto& s : streams_)
      if (head_runnable(*s)) return s.get();
    return nullptr;
  }

  bool any_pending() const HODLRX_REQUIRES(mu_) {
    for (const auto& s : streams_)
      if (!s->q.empty()) return true;
    return false;
  }

  void record_failure_locked() HODLRX_REQUIRES(mu_) {
    if (!failed_) {
      failed_ = true;
      error_ = std::current_exception();
    }
    cv_.notify_all();
  }

  /// One drain participant: claim a runnable stream, retire consecutive
  /// runnable head items in FIFO order (lock dropped around launch bodies),
  /// release the stream, repeat until the target holds — or, once a body
  /// has failed, until every queue is empty.
  void worker(const Target& t) {
    MutexLock lk(mu_);
    for (;;) {
      if (failed_ ? all_idle() : target_done(t)) {
        cv_.notify_all();  // wake peers blocked on the now-met target
        return;
      }
      StreamState* st = pick_runnable();
      if (st == nullptr) {
        if (all_idle()) {
          // Quiescent with the target unmet: every remaining head is a
          // wait whose record sits behind it — a cross-stream wait cycle.
          // Fail the drain instead of deadlocking (TaskGraph contract).
          if (!failed_ && any_pending()) {
            std::size_t stuck = 0;
            for (const auto& s : streams_) stuck += s->q.size();
            try {
              throw Error("Stream wait cycle — " + std::to_string(stuck) +
                          " queued item(s) unreachable");
            } catch (...) {
              record_failure_locked();
            }
            continue;
          }
          cv_.notify_all();
          return;  // nothing left anywhere; unmet kEvent target is moot
        }
        cv_.wait(mu_);
        continue;
      }
      st->busy = true;
      while (!st->q.empty() && (failed_ || head_runnable_unclaimed(*st))) {
        Item it = std::move(st->q.front());
        st->q.pop_front();
        switch (it.kind) {
          case Item::Kind::kLaunch: {
            if (failed_) break;  // skip the body, retire the item
            ++inflight_;
            lk.unlock();
            {
              InStreamTaskScope in_task;
              try {
                it.body();
                backend_stats::drained_.fetch_add(1,
                                                  std::memory_order_relaxed);
              } catch (...) {
                lk.lock();
                --inflight_;
                record_failure_locked();
                goto stream_done;
              }
            }
            lk.lock();
            --inflight_;
            break;
          }
          case Item::Kind::kRecord: {
            std::uint64_t cur =
                it.ev->completed.load(std::memory_order_relaxed);
            while (cur < it.gen &&
                   !it.ev->completed.compare_exchange_weak(
                       cur, it.gen, std::memory_order_release)) {
            }
            cv_.notify_all();
            break;
          }
          case Item::Kind::kWait:
            break;  // runnable check already held (or draining a failure)
        }
      }
    stream_done:
      st->busy = false;
      cv_.notify_all();
    }
  }

  /// head_runnable minus the busy check — the claiming worker itself holds
  /// the busy flag while it inspects the next head.
  bool head_runnable_unclaimed(const StreamState& s) const
      HODLRX_REQUIRES(mu_) {
    if (s.q.empty()) return false;
    const Item& it = s.q.front();
    return it.kind != Item::Kind::kWait ||
           it.ev->completed.load(std::memory_order_acquire) >= it.gen;
  }

  void drain(const Target& t) {
    int participants = 0;
    {
      MutexLock lk(mu_);
      if (!failed_ && target_done(t)) return;  // fast path: no pool launch
      int active = 0;
      for (const auto& s : streams_)
        if (!s->q.empty()) ++active;
      // At least two participants so the pool counts exactly one dispatched
      // launch per drain (n <= 1 runs inline and uncounted); no more than
      // one per pending stream beyond that buys nothing.
      participants = std::min<int>(max_threads(), std::max(active, 2));
    }
    backend_stats::drains_.fetch_add(1, std::memory_order_relaxed);
    ThreadPool::instance().parallel_for(static_cast<index_t>(participants),
                                        /*dynamic=*/false,
                                        [&](index_t) { worker(t); });
    MutexLock lk(mu_);
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      failed_ = false;
      std::rethrow_exception(e);
    }
  }

  mutable Mutex mu_;
  CondVar cv_;
  std::vector<std::shared_ptr<StreamState>> streams_ HODLRX_GUARDED_BY(mu_);
  int inflight_ HODLRX_GUARDED_BY(mu_) = 0;
  bool failed_ HODLRX_GUARDED_BY(mu_) = false;
  std::exception_ptr error_ HODLRX_GUARDED_BY(mu_);
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Backend base: accounting-wrapped memory.
// ---------------------------------------------------------------------------

void* Backend::allocate(std::size_t bytes) {
  if (fault::should_fire(fault::Site::kDeviceAlloc))
    throw Error("injected device allocator failure (device.alloc)");
  DeviceContext::global().alloc_bytes(bytes);
  try {
    return raw_allocate(bytes);
  } catch (...) {
    DeviceContext::global().free_bytes(bytes);
    throw;
  }
}

void Backend::deallocate(void* p, std::size_t bytes) noexcept {
  if (p != nullptr) raw_deallocate(p, bytes);
  if (bytes > 0) DeviceContext::global().free_bytes(bytes);
}

void* Backend::raw_allocate(std::size_t bytes) {
  return ::operator new(std::max<std::size_t>(bytes, 1));
}

void Backend::raw_deallocate(void* p, std::size_t) noexcept {
  ::operator delete(p);
}

// ---------------------------------------------------------------------------
// The two shipped backends.
// ---------------------------------------------------------------------------

namespace {

class HostBackend final : public Backend {
 public:
  const char* name() const override { return "host"; }
  bool asynchronous() const override { return false; }
};

class HostAsyncBackend final : public Backend {
 public:
  const char* name() const override { return "host-async"; }
  bool asynchronous() const override { return true; }
  void synchronize() override { engine_.synchronize_all(); }

 private:
  detail::AsyncEngine* engine() override { return &engine_; }
  detail::AsyncEngine engine_;
};

// Singletons: "host" and the unset-env default resolve to the SAME object,
// so tests may pointer-compare backend() against find_backend("host").
HostBackend& host_backend_singleton() {
  static HostBackend b;
  return b;
}
HostAsyncBackend& host_async_backend_singleton() {
  static HostAsyncBackend b;
  return b;
}

}  // namespace

Backend& backend() {
  const char* e = std::getenv("HODLRX_BACKEND");
  if (e != nullptr && *e != '\0') {
    if (Backend* b = find_backend(e)) return *b;
  }
  return host_backend_singleton();
}

Backend* find_backend(const std::string& name) {
  // The registry is a static list today; a CUDA/HIP backend registers by
  // adding its singleton here (and nowhere else — dispatch, tests, and docs
  // key off backend_names()).
  if (name == "host") return &host_backend_singleton();
  if (name == "host-async") return &host_async_backend_singleton();
  return nullptr;
}

std::vector<std::string> backend_names() { return {"host", "host-async"}; }

// ---------------------------------------------------------------------------
// Event.
// ---------------------------------------------------------------------------

Event::Event() : state_(std::make_shared<detail::EventState>()) {}

bool Event::query() const { return state_->complete(); }

void Event::synchronize() const {
  if (state_->complete()) return;
  if (detail::AsyncEngine* eng =
          state_->engine.load(std::memory_order_acquire))
    eng->event_synchronize(state_);
}

void Event::reset() {
  if (detail::AsyncEngine* eng =
          state_->engine.load(std::memory_order_acquire)) {
    eng->event_reset(*state_);
    return;
  }
  state_->completed.store(state_->recorded.load(std::memory_order_acquire),
                          std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Stream.
// ---------------------------------------------------------------------------

Stream::Stream() : Stream(backend()) {}

Stream::Stream(Backend& b) : owner_(&b) {
  if (detail::AsyncEngine* eng = owner_->engine())
    state_ = eng->create_stream();
}

Stream::~Stream() {
  if (state_) {
    detail::AsyncEngine* eng = owner_->engine();
    try {
      eng->synchronize_stream(*state_);
    } catch (...) {
      // A destructor cannot rethrow a deferred launch failure; the queues
      // are drained (failure mode skips bodies), which is all teardown
      // needs. Callers that care synchronize explicitly first.
    }
    eng->destroy_stream(state_);
  }
}

void Stream::launch(const char* label, std::function<void()> body) {
  if (detail::AsyncEngine* eng = owner_->engine()) {
    eng->enqueue_launch(*state_, label, std::move(body));
    return;
  }
  body();  // synchronous backend: a launch IS its execution
}

void Stream::record(Event& ev) {
  if (detail::AsyncEngine* eng = owner_->engine()) {
    eng->enqueue_record(*state_, ev.state_);
    return;
  }
  // Synchronous backend: everything "on the stream" has already run.
  ev.state_->recorded.fetch_add(1, std::memory_order_acq_rel);
  ev.state_->completed.fetch_add(1, std::memory_order_acq_rel);
}

void Stream::wait(const Event& ev) {
  if (detail::AsyncEngine* eng = owner_->engine()) {
    eng->enqueue_wait(*state_, ev.state_);
    return;
  }
  // Synchronous backend: block the caller (the event may live on an async
  // backend's stream — cross-backend edges still order correctly).
  ev.synchronize();
}

void Stream::synchronize() {
  if (detail::AsyncEngine* eng = owner_->engine())
    eng->synchronize_stream(*state_);
}

std::size_t Stream::pending() const {
  if (detail::AsyncEngine* eng = owner_->engine())
    return eng->pending(*state_);
  return 0;
}

// ---------------------------------------------------------------------------
// DeviceBuffer: the device.alloc recovery rung.
// ---------------------------------------------------------------------------

DeviceBuffer::DeviceBuffer(std::size_t bytes) : bytes_(bytes) {
  Backend& b = backend();
  owner_ = &b;
  try {
    data_ = b.allocate(bytes_);
  } catch (const std::exception&) {
    // Drain queued launches (completed work may release memory and, for the
    // injected site, advances past the armed occurrence), then retry once
    // synchronously; a second failure propagates.
    b.synchronize();
    data_ = b.allocate(bytes_);
    fault_stats::detail::add_recovered(fault::Site::kDeviceAlloc);
  }
}

}  // namespace hodlrx
