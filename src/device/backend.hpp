#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"

/// \file backend.hpp
/// The pluggable device backend: memory ownership, streams, events, and the
/// registry the batched drivers dispatch through.
///
/// The paper's engine is a stream of cuBLAS-style strided-batched launches
/// against device-resident memory. `DeviceContext` (device.hpp) keeps the
/// *accounting* of that model; this layer adds the *execution* contract a
/// real accelerator imposes, so the rest of the library programs against the
/// CUDA shape even though this environment has no GPU:
///
///  - `Backend` owns device memory (`allocate`/`deallocate`, routed through
///    the DeviceContext live/peak accounting and the `device.alloc`
///    HODLRX_FAULT site) and drains outstanding work (`synchronize`).
///  - `Stream` is an ordered work queue: `launch` enqueues a kernel body,
///    launches on ONE stream execute in FIFO order, and launches on
///    different streams are unordered unless an `Event` edge orders them
///    (`record` on the producing stream, `wait` on the consuming one) —
///    exactly the cudaStream/cudaEvent contract.
///  - The registry (`backend()`, selected by `HODLRX_BACKEND`, reread per
///    call like HODLRX_SCHED/HODLRX_FAULT) ships two backends:
///      * `host`       — inline-synchronous; every launch runs immediately
///                       on the calling thread. Bit-for-bit the pre-backend
///                       behavior; the default.
///      * `host-async` — launches enqueue onto per-stream FIFO queues and
///                       are drained by the persistent ThreadPool at
///                       synchronization points, so independent streams
///                       genuinely overlap (compression of level L+1 runs
///                       while level L's queue drains).
///
/// A future CUDA/HIP backend implements the same five virtuals and must pass
/// tests/test_backend_conformance.cpp unchanged — that suite, not this
/// header, is the real interface contract (docs/device-backend.md).

namespace hodlrx {

namespace detail {
class AsyncEngine;
struct EventState;
struct StreamState;
}  // namespace detail

class Stream;

/// One device backend. Subclasses provide raw memory and (optionally) an
/// async queue engine; the non-virtual allocate/deallocate wrappers keep the
/// DeviceContext accounting and fault injection uniform across backends.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry name ("host", "host-async", later "cuda"/"hip").
  virtual const char* name() const = 0;

  /// True when `Stream::launch` defers execution (so callers needing results
  /// on the host must synchronize first).
  virtual bool asynchronous() const = 0;

  /// Block until every launch enqueued on every stream of this backend has
  /// executed. Rethrows the first captured launch failure. No-op for
  /// synchronous backends.
  virtual void synchronize() {}

  /// Allocate device memory: checks the `device.alloc` fault site, registers
  /// the bytes with DeviceContext (live/peak/capacity), then calls
  /// raw_allocate. On a raw failure the accounting is rolled back before the
  /// exception propagates. Throws hodlrx::Error (injected fault or over
  /// capacity) or std::bad_alloc (real exhaustion).
  void* allocate(std::size_t bytes);

  /// Release memory obtained from allocate() and retire its accounting.
  void deallocate(void* p, std::size_t bytes) noexcept;

 protected:
  /// Raw memory hooks; the host backends use ::operator new/delete. A CUDA
  /// backend would call cudaMalloc/cudaFree here and keep the accounting
  /// wrappers above untouched.
  virtual void* raw_allocate(std::size_t bytes);
  virtual void raw_deallocate(void* p, std::size_t bytes) noexcept;

 private:
  friend class Stream;
  friend class Event;
  /// Queue engine for asynchronous backends; null for synchronous ones.
  virtual detail::AsyncEngine* engine() { return nullptr; }
};

/// The active backend: `HODLRX_BACKEND` if set and registered, else `host`.
/// The environment is reread on every call (the HODLRX_SCHED convention), so
/// tests flip backends with setenv at runtime; unknown names fall back to
/// `host` rather than failing, matching the other env knobs.
Backend& backend();

/// Look up a registered backend by name (null when unknown).
Backend* find_backend(const std::string& name);

/// Names of every registered backend, in registry order. The conformance
/// suite parameterizes over this list.
std::vector<std::string> backend_names();

/// A completion marker recorded on a stream. Default-constructed events are
/// complete; `Stream::record` makes the event pending until the queue
/// position it marks has executed. Events are copyable handles to shared
/// state (so they can sit in std::vector and outlive the recording scope)
/// and reusable: re-recording an already-complete event makes it pending
/// again, and `reset()` force-completes it.
class Event {
 public:
  Event();
  /// True when every recorded position has executed (never blocks).
  bool query() const;
  /// Block until complete; on an async backend this drains queued work (the
  /// calling thread helps execute, it does not just spin).
  void synchronize() const;
  /// Force-complete: outstanding recordings (and stream waits on them) are
  /// satisfied immediately.
  void reset();

 private:
  friend class Stream;
  std::shared_ptr<detail::EventState> state_;
};

/// An ordered launch queue on one backend. Non-copyable and non-movable
/// (queued work holds a pointer to the stream's state); place streams in
/// fixed arrays or behind unique_ptr. The destructor synchronizes, so a
/// stream can never outlive its pending work.
class Stream {
 public:
  /// Create on the active backend() (captured at construction — a later env
  /// flip does not migrate an existing stream).
  Stream();
  explicit Stream(Backend& b);
  ~Stream();
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  Backend& owner() const { return *owner_; }

  /// Enqueue `body` after everything already on this stream. Synchronous
  /// backends run it inline before returning. `label` names the launch in
  /// diagnostics. Exceptions from deferred bodies are captured and rethrown
  /// at the next synchronization point; once one launch fails, the rest of
  /// the queued bodies are skipped (their events still complete) so the
  /// queues always drain.
  void launch(const char* label, std::function<void()> body);

  /// Mark `ev` pending until everything currently on this stream executes.
  void record(Event& ev);

  /// Order later work on THIS stream after `ev`: nothing enqueued after the
  /// wait runs until the event completes. This is the only cross-stream
  /// ordering primitive, exactly like cudaStreamWaitEvent.
  void wait(const Event& ev);

  /// Block until this stream's queue is empty (helping to drain it).
  void synchronize();

  /// Queued-but-unexecuted item count (0 on synchronous backends).
  std::size_t pending() const;

 private:
  Backend* owner_;
  std::shared_ptr<detail::StreamState> state_;  // null on sync backends
};

/// Binds `s` as the calling thread's current stream for its scope; the
/// batched drivers (batched_blas.cpp) defer onto the bound stream when its
/// backend is asynchronous. Scopes nest (the previous binding is restored).
class StreamScope {
 public:
  explicit StreamScope(Stream& s);
  ~StreamScope();
  StreamScope(const StreamScope&) = delete;
  StreamScope& operator=(const StreamScope&) = delete;

 private:
  Stream* prev_;
};

/// The calling thread's bound stream (null when none).
Stream* current_stream();

/// True while the calling thread is executing a deferred launch body; the
/// drivers then run inline even with a stream bound, so a kernel body that
/// calls back into the batched layer cannot re-enqueue onto the queue it is
/// draining.
bool in_stream_task();

/// The stream a batched driver should defer onto, or null to run inline:
/// the bound stream, when it exists, its backend defers launches, and the
/// caller is not already inside a launch body.
inline Stream* deferring_stream() {
  Stream* s = current_stream();
  if (s == nullptr || in_stream_task()) return nullptr;
  return s->owner().asynchronous() ? s : nullptr;
}

/// Move-only device allocation owning real memory through the active
/// backend (DeviceAllocation in device.hpp registers bytes only). This is
/// the `device.alloc` recovery rung: if allocation fails — the injected
/// fault site, over-capacity, or real exhaustion — the constructor drains
/// the backend's streams (completed launches may release workspace) and
/// retries once synchronously; a second failure propagates.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t bytes);
  ~DeviceBuffer() { release(); }
  DeviceBuffer(DeviceBuffer&& o) noexcept
      : owner_(o.owner_), data_(o.data_), bytes_(o.bytes_) {
    o.owner_ = nullptr;
    o.data_ = nullptr;
    o.bytes_ = 0;
  }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      owner_ = o.owner_;
      data_ = o.data_;
      bytes_ = o.bytes_;
      o.owner_ = nullptr;
      o.data_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  void* data() const { return data_; }
  std::size_t bytes() const { return bytes_; }
  template <typename U>
  U* as() const {
    return static_cast<U*>(data_);
  }

 private:
  void release() {
    if (owner_ != nullptr && data_ != nullptr)
      owner_->deallocate(data_, bytes_);
    owner_ = nullptr;
    data_ = nullptr;
    bytes_ = 0;
  }
  Backend* owner_ = nullptr;
  void* data_ = nullptr;
  std::size_t bytes_ = 0;
};

/// Process-wide stream/queue counters (relaxed atomics, the sched_stats
/// pattern): tests assert which dispatch path ran and the bench JSON reports
/// queue behavior. `deferred` counts launches enqueued onto async streams,
/// `drained` counts deferred bodies actually executed, `events_recorded`
/// counts Stream::record calls on async streams, `drains` counts pool-backed
/// drain passes, and `max_queue_depth` high-watermarks any single stream's
/// queue length.
namespace backend_stats {
std::uint64_t deferred();
std::uint64_t drained();
std::uint64_t events_recorded();
std::uint64_t drains();
std::uint64_t max_queue_depth();
void reset();
}  // namespace backend_stats

}  // namespace hodlrx
