#include "precond/gmres.hpp"

#include <cmath>
#include <complex>
#include <limits>

#include "common/blas.hpp"
#include "common/error.hpp"

namespace hodlrx {

namespace {

/// Givens rotation zeroing h1: returns (c, s) with c real.
template <typename T>
void make_givens(T h0, T h1, real_t<T>& c, T& s) {
  using R = real_t<T>;
  const R n = std::sqrt(abs2_s(h0) + abs2_s(h1));
  if (n == R{0}) {
    c = R{1};
    s = T{};
    return;
  }
  c = abs_s(h0) / n;
  if (c == R{0}) {
    s = conj_s(h1) / T{abs_s(h1)};  // h0 == 0
  } else {
    s = conj_s(h1) * (h0 / T{abs_s(h0)}) / T{n};
  }
}

}  // namespace

template <typename T>
GmresResult<T> gmres(index_t n, const LinearOp<T>& apply_a,
                     const LinearOp<T>& precond, const T* b, T* x,
                     const GmresOptions& opt) {
  using R = real_t<T>;
  GmresResult<T> out;
  const index_t m = std::min(opt.restart, opt.max_iterations);
  HODLRX_REQUIRE(m > 0 && n > 0, "gmres: bad sizes");

  std::vector<T> r(n), w(n), tmp(n);
  auto apply_m = [&](const T* in, T* outv) {
    if (precond) {
      precond(in, outv);
    } else {
      std::copy_n(in, n, outv);
    }
  };

  // Preconditioned RHS norm for the relative criterion.
  apply_m(b, r.data());
  const R bnorm = norm2(r.data(), n);
  if (bnorm == R{0}) {
    std::fill_n(x, n, T{});
    out.converged = true;
    return out;
  }

  Matrix<T> v(n, m + 1);          // Krylov basis
  Matrix<T> h(m + 1, m);          // Hessenberg
  std::vector<R> cs(m);
  std::vector<T> sn(m), g(m + 1);

  index_t total_it = 0;
  R prev_cycle = R{-1};  // true residual at the previous cycle start
  while (total_it < opt.max_iterations) {
    // r = M^{-1} (b - A x).
    apply_a(x, tmp.data());
    for (index_t i = 0; i < n; ++i) tmp[i] = b[i] - tmp[i];
    apply_m(tmp.data(), r.data());
    R beta = norm2(r.data(), n);
    out.relres = beta / bnorm;
    out.history.push_back(out.relres);
    if (out.relres <= static_cast<R>(opt.tol)) {
      out.converged = true;
      out.iterations = total_it;
      return out;
    }
    // Stagnation: a whole restart cycle bought essentially nothing. Return
    // the best iterate instead of spinning to max_iterations.
    if (prev_cycle >= R{0} && !(out.relres < prev_cycle * R{0.9999})) {
      out.stagnated = true;
      out.iterations = total_it;
      return out;
    }
    prev_cycle = out.relres;

    for (index_t i = 0; i < n; ++i) v(i, 0) = r[i] / T{beta};
    std::fill(g.begin(), g.end(), T{});
    g[0] = T{beta};

    index_t j = 0;
    for (; j < m && total_it < opt.max_iterations; ++j, ++total_it) {
      // w = M^{-1} A v_j, modified Gram-Schmidt.
      apply_a(v.data() + j * n, tmp.data());
      apply_m(tmp.data(), w.data());
      const R wnorm = norm2(w.data(), n);
      for (index_t i = 0; i <= j; ++i) {
        const T hij = dotc(v.data() + i * n, w.data(), n);
        h(i, j) = hij;
        for (index_t l = 0; l < n; ++l) w[l] -= hij * v(l, i);
      }
      const R hnext = norm2(w.data(), n);
      // Happy breakdown: M^{-1} A v_j lies (to rounding) in the spanned
      // Krylov space. An exact-zero test never fires in floating point, so
      // compare against the pre-orthogonalization norm.
      if (hnext <= wnorm * std::numeric_limits<R>::epsilon() * R{64})
        out.breakdown = true;
      h(j + 1, j) = T{hnext};
      if (hnext > R{0})
        for (index_t l = 0; l < n; ++l) v(l, j + 1) = w[l] / T{hnext};

      // Apply accumulated rotations, then a new one to zero h(j+1, j).
      for (index_t i = 0; i < j; ++i) {
        const T t0 = h(i, j), t1 = h(i + 1, j);
        h(i, j) = T{cs[i]} * t0 + sn[i] * t1;
        h(i + 1, j) = -conj_s(sn[i]) * t0 + T{cs[i]} * t1;
      }
      make_givens(h(j, j), h(j + 1, j), cs[j], sn[j]);
      h(j, j) = T{cs[j]} * h(j, j) + sn[j] * h(j + 1, j);
      h(j + 1, j) = T{};
      g[j + 1] = -conj_s(sn[j]) * g[j];
      g[j] = T{cs[j]} * g[j];

      out.relres = abs_s(g[j + 1]) / bnorm;
      out.history.push_back(out.relres);
      if (out.relres <= static_cast<R>(opt.tol)) {
        ++j;
        break;
      }
      if (out.breakdown) {  // the spanned space is invariant: stop here
        ++j;
        break;
      }
    }

    // Back-substitute y from the j x j triangular system, update x.
    std::vector<T> y(j);
    for (index_t i = j - 1; i >= 0; --i) {
      T s = g[i];
      for (index_t l = i + 1; l < j; ++l) s -= h(i, l) * y[l];
      y[i] = s / h(i, i);
    }
    for (index_t i = 0; i < j; ++i)
      for (index_t l = 0; l < n; ++l) x[l] += y[i] * v(l, i);

    if (out.relres <= static_cast<R>(opt.tol)) {
      out.converged = true;
      break;
    }
  }
  out.iterations = total_it;
  return out;
}

#define HODLRX_INSTANTIATE_GMRES(T)                                      \
  template GmresResult<T> gmres<T>(index_t, const LinearOp<T>&,          \
                                   const LinearOp<T>&, const T*, T*,     \
                                   const GmresOptions&);

HODLRX_INSTANTIATE_GMRES(float)
HODLRX_INSTANTIATE_GMRES(double)
HODLRX_INSTANTIATE_GMRES(std::complex<float>)
HODLRX_INSTANTIATE_GMRES(std::complex<double>)

#undef HODLRX_INSTANTIATE_GMRES

}  // namespace hodlrx
