#pragma once

#include <functional>
#include <vector>

#include "common/matrix.hpp"

/// \file gmres.hpp
/// Restarted GMRES with optional left preconditioning. The paper positions
/// low-accuracy HODLR factorizations as "robust preconditioners" (Secs. I
/// and IV-C); this module demonstrates that claim: an eps=1e-4 HODLR
/// factorization typically takes GMRES to 1e-12 residuals in a handful of
/// iterations on systems that plain GMRES cannot touch.

namespace hodlrx {

/// y <- op(x) for a single column vector of length n.
template <typename T>
using LinearOp = std::function<void(const T* x, T* y)>;

struct GmresOptions {
  index_t max_iterations = 500;
  index_t restart = 50;
  double tol = 1e-12;  ///< relative (preconditioned) residual target
};

template <typename T>
struct GmresResult {
  bool converged = false;
  index_t iterations = 0;
  real_t<T> relres = 0;                  ///< final relative residual
  /// True when a restart cycle failed to improve the residual of the
  /// previous cycle: the restarted Krylov space is not making progress and
  /// further iterations would only burn time. The solver returns early with
  /// the best iterate so callers can escalate (tighter preconditioner,
  /// larger restart) instead of spinning to max_iterations.
  bool stagnated = false;
  /// True when the Arnoldi process hit a negligible subdiagonal — the new
  /// direction vanished under orthogonalization to rounding, i.e. a "happy"
  /// breakdown: the Krylov space became invariant. Usually accompanied by
  /// converged = true — the solution is exact in the spanned space.
  bool breakdown = false;
  std::vector<real_t<T>> history;        ///< residual per iteration
};

/// Solve A x = b; `precond` may be empty (no preconditioning). `x` holds the
/// initial guess on entry and the solution on exit.
template <typename T>
GmresResult<T> gmres(index_t n, const LinearOp<T>& apply_a,
                     const LinearOp<T>& precond, const T* b, T* x,
                     const GmresOptions& opt = {});

}  // namespace hodlrx
