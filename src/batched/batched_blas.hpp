#pragma once

#include <span>
#include <vector>

#include "common/blas.hpp"
#include "common/lapack.hpp"

/// \file batched_blas.hpp
/// Batched dense linear algebra — the project's stand-in for the cuBLAS
/// routines the paper builds on (`gemmBatched`, `gemmStridedBatched`,
/// `getrfBatched`, `getrsBatched`).
///
/// Semantics mirror cuBLAS: every call is ONE device "kernel launch"
/// (recorded on the DeviceContext) that processes `batch` independent
/// problems. Execution is an OpenMP thread pool:
///   - large batches -> one thread per problem ("batched kernel");
///   - small batches of large problems -> problems run with intra-problem
///     parallelism ("stream mode", the paper's CUDA-streams optimization for
///     the top tree levels).
/// The pointer-array interface generalizes cuBLAS slightly by allowing
/// per-problem shapes; the strided interface requires uniform shapes, like
/// the real `gemmStridedBatched`.

namespace hodlrx {

/// How a batched call maps onto the thread pool.
enum class BatchPolicy {
  kAuto,          ///< decide on total work (batch x per-problem flops): few
                  ///< LARGE problems stream, everything else runs batched
  kForceBatched,  ///< always one-thread-per-problem
  kForceStream,   ///< always sequential problems with intra-problem threads
};

/// C_i = alpha * op(A_i) * op(B_i) + beta * C_i for each problem i.
template <typename T>
void gemm_batched(Op opa, Op opb, T alpha,
                  std::span<const ConstMatrixView<T>> a,
                  std::span<const ConstMatrixView<T>> b, T beta,
                  std::span<const MatrixView<T>> c,
                  BatchPolicy policy = BatchPolicy::kAuto);

/// Uniform-shape strided batch: problem i uses a + i*stride_a etc.
/// This is the fast path enabled by the paper's constant-rank padding.
/// A zero stride marks an operand shared by the whole batch (as in cuBLAS);
/// under BatchPolicy::kAuto the shared operand is packed ONCE per launch and
/// reused by every problem (see gemm_kernel.hpp). The production caller is
/// the batched randomized-compression sweep (`rsvd_strided_batched` in
/// lowrank/rsvd.cpp, driven by HodlrMatrix::build_from_dense with
/// Compressor::kRsvdBatched): every block of a uniform tree level multiplies
/// ONE shared Gaussian test matrix, passed here with stride_b == 0.
template <typename T>
void gemm_strided_batched(Op opa, Op opb, index_t m, index_t n, index_t k,
                          T alpha, const T* a, index_t lda, index_t stride_a,
                          const T* b, index_t ldb, index_t stride_b, T beta,
                          T* c, index_t ldc, index_t stride_c, index_t batch,
                          BatchPolicy policy = BatchPolicy::kAuto);

/// In-place batched LU with partial pivoting; `ipiv[i]` must point at
/// storage for a.size() pivots of problem i (length = a_i.rows).
template <typename T>
void getrf_batched(std::span<const MatrixView<T>> a,
                   std::span<index_t* const> ipiv,
                   BatchPolicy policy = BatchPolicy::kAuto);

/// In-place batched LU without pivoting (identity-diagonal K variant).
template <typename T>
void getrf_nopivot_batched(std::span<const MatrixView<T>> a,
                           BatchPolicy policy = BatchPolicy::kAuto);

/// Batched triangular solve B_i <- A_i^{-1} B_i (left side, no transpose),
/// all problems sharing uplo/diag — the stand-in for cuBLAS `trsmBatched`.
/// Batched mode runs one blocked solve per pool slot (per-thread workspaces
/// reused across problems); stream mode runs the problems sequentially with
/// the RHS columns of each split across the pool.
template <typename T>
void trsm_batched(Uplo uplo, Diag diag, std::span<const ConstMatrixView<T>> a,
                  std::span<const MatrixView<T>> b,
                  BatchPolicy policy = BatchPolicy::kAuto);

/// Batched LU solve from getrf output: B_i <- A_i^{-1} B_i. Pivots are
/// applied once per problem, then the L/U solves run through the blocked
/// TRSM engine (stream mode: getrs_parallel with intra-problem parallelism).
template <typename T>
void getrs_batched(std::span<const ConstMatrixView<T>> lu,
                   std::span<const index_t* const> ipiv,
                   std::span<const MatrixView<T>> b,
                   BatchPolicy policy = BatchPolicy::kAuto);

/// Batched LU solve without pivoting.
template <typename T>
void getrs_nopivot_batched(std::span<const ConstMatrixView<T>> lu,
                           std::span<const MatrixView<T>> b,
                           BatchPolicy policy = BatchPolicy::kAuto);

/// Launch counters of the batched QR engine (relaxed atomics, process-wide).
/// Tests use these to assert that the compression sweep's orthonormalization
/// tail actually runs as synchronized batched launches rather than as
/// independent per-block pool tasks.
namespace qr_stats {
/// geqrf_strided_batched calls that took the panel-synchronized batched path.
std::uint64_t geqrf_batched_sweeps();
/// thin_q_strided_batched calls that took the batched path.
std::uint64_t thin_q_batched_sweeps();
/// Cross-batch panel launches (one pool dispatch factoring / forming the
/// same panel index of EVERY problem).
std::uint64_t panel_launches();
void reset();
}  // namespace qr_stats

/// Batched in-place Householder QR of `batch` uniform m x n problems at a
/// constant stride (problem i starts at a + i*stride_a, leading dimension
/// lda) — the stand-in for cuSOLVER's `geqrfBatched`. On return each problem
/// holds R in its upper triangle and the reflectors below; the min(m,n)
/// Householder scalars of problem i land at tau + i*stride_tau
/// (stride_tau >= min(m,n)).
///
/// Batched mode runs the blocked algorithm LEVEL-SYNCHRONIZED across the
/// whole batch: one pool launch factors panel k of every problem (and builds
/// its compact-WY T factor), then the trailing updates of ALL problems run
/// as three strided-batched GEMM launches through the packed engine. Stream
/// mode (few large problems) runs the problems sequentially through the
/// blocked single-problem driver.
template <typename T>
void geqrf_strided_batched(T* a, index_t lda, index_t stride_a, index_t m,
                           index_t n, T* tau, index_t stride_tau,
                           index_t batch,
                           BatchPolicy policy = BatchPolicy::kAuto);

/// Overwrite the first min(m,n) columns of every problem (geqrf_strided_-
/// batched output) with the explicit thin Q — the stand-in for a batched
/// `orgqr`. Batched mode applies the compact-WY block reflectors
/// back-to-front, each as one panel launch plus three strided-batched GEMM
/// launches, so the whole batch is orthonormalized in O(n/nb) launches.
template <typename T>
void thin_q_strided_batched(T* a, index_t lda, index_t stride_a, index_t m,
                            index_t n, const T* tau, index_t stride_tau,
                            index_t batch,
                            BatchPolicy policy = BatchPolicy::kAuto);

/// Result of one batched Jacobi run: sweeps executed (shared across the
/// batch — the drivers are sweep-synchronized) and the number of problems
/// that exhausted the sweep budget (also counted in svd_stats and
/// HODLRX_REQUIREd in debug, like the serial driver).
struct SvdBatchInfo {
  int sweeps = 0;
  index_t nonconverged = 0;  ///< problems still unconverged on return
  index_t recovered = 0;     ///< problems healed by the recovery re-run
};

/// Batched one-sided Jacobi SVD of `batch` uniform TALL problems — the
/// stand-in for cuSOLVER's gesvdjBatched. Problem i occupies
/// a + i*stride_a (m x n, m >= n, lda >= m; callers pass A^H for wide
/// blocks) and is overwritten with its left singular vectors U_i (m x n,
/// orthonormal columns where s > 0, descending); the singular values land
/// at s + i*stride_s (stride_s >= n) and the right singular vectors V_i
/// (n x n) at v + i*stride_v (ldv >= n), so A_i = U_i diag(s_i) V_i^H.
///
/// Batched mode is SWEEP-synchronized (the model of the batched QR engine):
/// each cyclic Jacobi sweep is (a) ONE batched GEMM launch refreshing the
/// Gram matrices G_i = W_i^H W_i of the still-active problems in a
/// per-launch strided workspace and (b) ONE pool launch applying the cyclic
/// column-pair rotations of those problems (jacobi_sweep_gram). Converged
/// problems are compacted out of the active set, and the loop exits early
/// once the whole batch has converged. A final pool launch sorts and
/// normalizes every problem. Stream mode (few large problems) runs the
/// problems sequentially through the blocked serial driver
/// jacobi_svd_inplace.
///
/// With `recover = true` (the recovery ladder; rsvd_strided_batched under
/// OnBreakdown::kRecover passes it) problems that exhaust the synchronized
/// sweep budget are compacted out and re-run one by one through the
/// reference serial sweep loop with a 4x budget BEFORE the finalize pass;
/// healed problems are counted in SvdBatchInfo::recovered (and
/// fault_stats::recovered). Only problems still unconverged after the
/// re-run count as nonconverged / trip the debug assert.
template <typename T>
SvdBatchInfo jacobi_svd_strided_batched(T* a, index_t lda, index_t stride_a,
                                        index_t m, index_t n, real_t<T>* s,
                                        index_t stride_s, T* v, index_t ldv,
                                        index_t stride_v, index_t batch,
                                        BatchPolicy policy = BatchPolicy::kAuto,
                                        bool recover = false);

}  // namespace hodlrx
