#include "batched/batch_kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <complex>

#include "batched/interleave.hpp"
#include "common/error.hpp"
#include "common/lapack.hpp"

// GCC will not vectorize the accumulate loops of gemm_right_inplace on its
// own (the accumulator arrays defeat its cost model); the explicit simd
// pragma is worth ~5x there. Spelled with _Pragma so it can sit inside the
// loop nest macros-free.
#if defined(_OPENMP)
#define HODLRX_OMP_SIMD _Pragma("omp simd")
#else
#define HODLRX_OMP_SIMD
#endif

namespace hodlrx {

namespace batch_simd_stats {
namespace {
std::atomic<std::uint64_t> g_qr_groups{0}, g_jacobi_groups{0},
    g_gemm_groups{0};
}  // namespace
std::uint64_t qr_panel_groups() {
  return g_qr_groups.load(std::memory_order_relaxed);
}
std::uint64_t jacobi_sweep_groups() {
  return g_jacobi_groups.load(std::memory_order_relaxed);
}
std::uint64_t gemm_groups() {
  return g_gemm_groups.load(std::memory_order_relaxed);
}
void reset() {
  g_qr_groups.store(0, std::memory_order_relaxed);
  g_jacobi_groups.store(0, std::memory_order_relaxed);
  g_gemm_groups.store(0, std::memory_order_relaxed);
}
namespace detail {
void add_qr_groups(std::uint64_t n) {
  g_qr_groups.fetch_add(n, std::memory_order_relaxed);
}
void add_jacobi_groups(std::uint64_t n) {
  g_jacobi_groups.fetch_add(n, std::memory_order_relaxed);
}
void add_gemm_groups(std::uint64_t n) {
  g_gemm_groups.fetch_add(n, std::memory_order_relaxed);
}
}  // namespace detail
}  // namespace batch_simd_stats

namespace {

/// One compiled body per width: W is a compile-time constant so every
/// `for (int l = 0; l < W; ++l)` lane loop below fully unrolls into one or
/// two vector ops. The i/j loops carry the per-lane accumulations in the
/// same order as the scalar kernels (lapack.cpp), so each lane reproduces
/// the scalar arithmetic exactly.

template <typename T, int W>
void geqrf_panel_batch_impl(index_t m, index_t n, T* __restrict__ a,
                            T* __restrict__ tau) {
  using R = real_t<T>;
  const index_t kmax = std::min(m, n);
  for (index_t k = 0; k < kmax; ++k) {
    // Column k, rows k..m: the make_householder step. The reduction and the
    // reflector scaling are full-width; the branchy parameter math in
    // between is O(W) scalar work per column. Skipping lanes fold into the
    // vector ops as exact no-ops: scale 1 for the column scaling, tau 0 for
    // the trailing update.
    T* __restrict__ colk = a + (static_cast<std::size_t>(k) * m + k) * W;
    R sums[W] = {};
    for (index_t i = 1; i < m - k; ++i) {
      const T* __restrict__ xi = colk + static_cast<std::size_t>(i) * W;
      for (int l = 0; l < W; ++l) sums[l] += abs2_s(xi[l]);
    }
    T taus[W], scales[W];
    for (int l = 0; l < W; ++l) {
      taus[l] = T{};
      scales[l] = T{1};
      if (m - k <= 1) continue;
      const HouseholderParams<T> p =
          householder_params<T>(colk[l], std::sqrt(sums[l]));
      taus[l] = p.tau;
      scales[l] = p.scale;
      if (p.apply) colk[l] = p.beta;
    }
    for (index_t i = 1; i < m - k; ++i) {
      T* __restrict__ xi = colk + static_cast<std::size_t>(i) * W;
      for (int l = 0; l < W; ++l) xi[l] *= scales[l];
    }
    T taucs[W];
    for (int l = 0; l < W; ++l) {
      tau[k * W + l] = taus[l];
      taucs[l] = conj_s(taus[l]);  // geqrf applies H with conj(tau)
    }
    // Trailing update: C(k:m, j) -= v * (conj(tau) * (v^H C(k:m, j))) for
    // every j > k, v[0] = 1 implied (apply_householder, all lanes at once).
    for (index_t j = k + 1; j < n; ++j) {
      T* __restrict__ cj = a + (static_cast<std::size_t>(j) * m + k) * W;
      T wv[W];
      for (int l = 0; l < W; ++l) wv[l] = cj[l];
      for (index_t i = 1; i < m - k; ++i) {
        const T* __restrict__ vi = colk + static_cast<std::size_t>(i) * W;
        const T* __restrict__ ci = cj + static_cast<std::size_t>(i) * W;
        for (int l = 0; l < W; ++l) wv[l] += conj_s(vi[l]) * ci[l];
      }
      for (int l = 0; l < W; ++l) wv[l] *= taucs[l];
      for (int l = 0; l < W; ++l) cj[l] -= wv[l];
      for (index_t i = 1; i < m - k; ++i) {
        const T* __restrict__ vi = colk + static_cast<std::size_t>(i) * W;
        T* __restrict__ ci = cj + static_cast<std::size_t>(i) * W;
        for (int l = 0; l < W; ++l) ci[l] -= vi[l] * wv[l];
      }
    }
  }
}

template <typename T, int W>
void jacobi_sweep_batch_impl(index_t n, T* __restrict__ gm, T* __restrict__ rm,
                             real_t<T> tol, bool* __restrict__ rotated) {
  using R = real_t<T>;
  // R <- I per lane (dead lanes too — their identity is never scattered).
  std::fill_n(rm, static_cast<std::size_t>(n) * n * W, T{});
  for (index_t j = 0; j < n; ++j) {
    T* __restrict__ rjj = rm + (static_cast<std::size_t>(j) * n + j) * W;
    for (int l = 0; l < W; ++l) rjj[l] = T{1};
  }
  // Per-lane deflation scale: the largest Gram diagonal at sweep start
  // (same sampling point as jacobi_sweep_gram; dead lanes get 0, which
  // deflates every pair — their zero Gram never rotates anyway).
  R gmax[W];
  for (int l = 0; l < W; ++l) gmax[l] = R{0};
  for (index_t j = 0; j < n; ++j) {
    const T* __restrict__ gjj = gm + (static_cast<std::size_t>(j) * n + j) * W;
    for (int l = 0; l < W; ++l)
      gmax[l] = std::max(gmax[l], ScalarTraits<T>::real(gjj[l]));
  }
  for (index_t p = 0; p < n - 1; ++p) {
    for (index_t q = p + 1; q < n; ++q) {
      // Per-lane rotation parameters from the Gram matrix — scalar O(W)
      // work per pair, identical formulas to jacobi_sweep_gram. Converged
      // lanes get the identity rotation (c = 1, s = 0): exact no-ops in the
      // full-width column rotations below.
      T cv[W], sv[W];
      bool any = false;
      const T* __restrict__ gpp = gm + (static_cast<std::size_t>(p) * n + p) * W;
      const T* __restrict__ gqq = gm + (static_cast<std::size_t>(q) * n + q) * W;
      const T* __restrict__ gpq = gm + (static_cast<std::size_t>(q) * n + p) * W;
      for (int l = 0; l < W; ++l) {
        // The rotated diagonal entries can round to tiny negatives; clamp
        // so the convergence test never feeds sqrt a negative (same clamp
        // as jacobi_sweep_gram).
        const R alpha = std::max(R{0}, ScalarTraits<T>::real(gpp[l]));
        const R beta = std::max(R{0}, ScalarTraits<T>::real(gqq[l]));
        const JacobiRotation<T> r =
            jacobi_rotation_params<T>(alpha, beta, gpq[l], tol, gmax[l]);
        cv[l] = T{r.c};
        sv[l] = r.s;
        if (r.rotate) {
          rotated[l] = true;
          any = true;
        }
      }
      if (!any) continue;
      T scv[W];
      for (int l = 0; l < W; ++l) scv[l] = conj_s(sv[l]);
      // Accumulate the rotation into R (columns p, q — the same update the
      // scalar kernel applies to v; w and v pick it up through the caller's
      // per-sweep w*R / v*R GEMMs) ...
      T* __restrict__ rp = rm + static_cast<std::size_t>(p) * n * W;
      T* __restrict__ rq = rm + static_cast<std::size_t>(q) * n * W;
      for (index_t i = 0; i < n; ++i) {
        T* __restrict__ xp = rp + static_cast<std::size_t>(i) * W;
        T* __restrict__ xq = rq + static_cast<std::size_t>(i) * W;
        for (int l = 0; l < W; ++l) {
          const T p0 = xp[l], q0 = xq[l];
          xp[l] = cv[l] * p0 - scv[l] * q0;
          xq[l] = sv[l] * p0 + cv[l] * q0;
        }
      }
      // ... and G <- M^H G M, maintained on the UPPER triangle only: the
      // pair scan reads nothing but G(p,p), G(q,q) and G(p,q) with p < q,
      // and the caller never scatters G back (the next sweep's batched GEMM
      // refreshes it from the rotated factor; finalize reads the refreshed
      // copy) — so the Hermitian mirror of every update is skipped and a
      // fired pair moves ~4n lane-vectors (R + G) instead of 6n. The three
      // row ranges below are the upper-triangle images of the full
      // column-pair rotation; the stale lower triangle is never read.
      T* __restrict__ gcp = gm + static_cast<std::size_t>(p) * n * W;
      T* __restrict__ gcq = gm + static_cast<std::size_t>(q) * n * W;
      // Rows i < p: (i,p) and (i,q) both live in the upper triangle — plain
      // column update.
      for (index_t i = 0; i < p; ++i) {
        T* __restrict__ xp = gcp + static_cast<std::size_t>(i) * W;
        T* __restrict__ xq = gcq + static_cast<std::size_t>(i) * W;
        for (int l = 0; l < W; ++l) {
          const T p0 = xp[l], q0 = xq[l];
          xp[l] = cv[l] * p0 - scv[l] * q0;
          xq[l] = sv[l] * p0 + cv[l] * q0;
        }
      }
      // Rows p < i < q: the column-p image is the stored row entry
      // G(p,i) = conj(G(i,p)), so the update is the conjugated pair
      // rotation of a = G(p,i) against b = G(i,q).
      for (index_t i = p + 1; i < q; ++i) {
        T* __restrict__ xa = gm + (static_cast<std::size_t>(i) * n + p) * W;
        T* __restrict__ xb = gcq + static_cast<std::size_t>(i) * W;
        for (int l = 0; l < W; ++l) {
          const T a0 = xa[l], b0 = xb[l];
          xa[l] = cv[l] * a0 - sv[l] * conj_s(b0);
          xb[l] = sv[l] * conj_s(a0) + cv[l] * b0;
        }
      }
      // Rows i > q: both images are stored row entries G(p,i), G(q,i) —
      // the conjugate (row-side) rotation.
      for (index_t i = q + 1; i < n; ++i) {
        T* __restrict__ xp = gm + (static_cast<std::size_t>(i) * n + p) * W;
        T* __restrict__ xq = gm + (static_cast<std::size_t>(i) * n + q) * W;
        for (int l = 0; l < W; ++l) {
          const T p0 = xp[l], q0 = xq[l];
          xp[l] = cv[l] * p0 - sv[l] * q0;
          xq[l] = scv[l] * p0 + cv[l] * q0;
        }
      }
      // Pivot block (p,p), (p,q), (q,q): both half-updates folded into the
      // closed-form 2x2 congruence (c is real, alpha/beta real diagonals).
      {
        T* __restrict__ xpp = gcp + static_cast<std::size_t>(p) * W;
        T* __restrict__ xpq = gcq + static_cast<std::size_t>(p) * W;
        T* __restrict__ xqq = gcq + static_cast<std::size_t>(q) * W;
        for (int l = 0; l < W; ++l) {
          const R al = ScalarTraits<T>::real(xpp[l]);
          const R be = ScalarTraits<T>::real(xqq[l]);
          const T ga = xpq[l];
          const R c = ScalarTraits<T>::real(cv[l]);
          const T s = sv[l];
          const R s2 = ScalarTraits<T>::real(scv[l] * s);
          const R cross =
              R{2} * c * ScalarTraits<T>::real(scv[l] * ga);
          xpp[l] = T{c * c * al + s2 * be - cross};
          xqq[l] = T{s2 * al + c * c * be + cross};
          xpq[l] = (c * s) * T{al - be} + (c * c) * ga - s * (s * conj_s(ga));
        }
      }
    }
  }
}

template <typename T, int W>
void small_gemm_batch_impl(index_t m, index_t n, index_t k,
                           const T* __restrict__ a, const T* __restrict__ b,
                           T* __restrict__ c) {
  for (index_t j = 0; j < n; ++j) {
    const T* __restrict__ bj = b + static_cast<std::size_t>(j) * k * W;
    for (index_t i = 0; i < m; ++i) {
      T acc[W] = {};
      for (index_t kk = 0; kk < k; ++kk) {
        const T* __restrict__ ai = a + (static_cast<std::size_t>(kk) * m + i) * W;
        const T* __restrict__ bk = bj + static_cast<std::size_t>(kk) * W;
        for (int l = 0; l < W; ++l) acc[l] += ai[l] * bk[l];
      }
      T* __restrict__ cij = c + (static_cast<std::size_t>(j) * m + i) * W;
      for (int l = 0; l < W; ++l) cij[l] = acc[l];
    }
  }
}

/// Rows staged per pass of gemm_right_inplace: two AVX-512 registers of
/// doubles — small enough that the per-column accumulator arrays stay in
/// registers across the k loop, large enough to amortize the R broadcasts.
constexpr index_t kInplaceChunk = 16;
/// Output columns accumulated per pass over the staged chunk: each staged
/// column load feeds kInplaceJB fused multiply-adds, so the kernel is
/// FMA-bound instead of load-bound (single-column accumulation tops out at
/// well under half the FMA rate because every k step is two loads per two
/// FMAs). 6 x 2 accumulator registers plus the staged column and broadcasts
/// still fit the 32-register AVX-512 file.
constexpr index_t kInplaceJB = 6;

}  // namespace

template <typename T>
void gemm_right_inplace(index_t m, index_t n, T* a, index_t lda, const T* r,
                        index_t ldr) {
  if (m == 0 || n == 0) return;
  T* stage = interleave_workspace<T>(static_cast<std::size_t>(kInplaceChunk) *
                                     static_cast<std::size_t>(n));
  for (index_t i0 = 0; i0 < m; i0 += kInplaceChunk) {
    const index_t mc = std::min(kInplaceChunk, m - i0);
    // Stage the chunk's rows of every column (zero-padding the tail chunk so
    // the accumulation below always runs the full register-width chunk).
    for (index_t k = 0; k < n; ++k) {
      T* __restrict__ sk = stage + static_cast<std::size_t>(k) * kInplaceChunk;
      std::copy_n(a + k * lda + i0, mc, sk);
      std::fill(sk + mc, sk + kInplaceChunk, T{});
    }
    index_t j = 0;
    for (; j + kInplaceJB <= n; j += kInplaceJB) {
      T acc[kInplaceJB][kInplaceChunk] = {};
      const T* rj[kInplaceJB];
      for (index_t jj = 0; jj < kInplaceJB; ++jj)
        rj[jj] = r + static_cast<std::size_t>(j + jj) * ldr;
      for (index_t k = 0; k < n; ++k) {
        const T* __restrict__ sk =
            stage + static_cast<std::size_t>(k) * kInplaceChunk;
        T b[kInplaceJB];
        for (index_t jj = 0; jj < kInplaceJB; ++jj) b[jj] = rj[jj][k];
        for (index_t jj = 0; jj < kInplaceJB; ++jj) {
          HODLRX_OMP_SIMD
          for (index_t i = 0; i < kInplaceChunk; ++i)
            acc[jj][i] += sk[i] * b[jj];
        }
      }
      for (index_t jj = 0; jj < kInplaceJB; ++jj) {
        T* __restrict__ cj = a + (j + jj) * lda + i0;
        for (index_t i = 0; i < mc; ++i) cj[i] = acc[jj][i];
      }
    }
    for (; j < n; ++j) {
      const T* __restrict__ rj = r + static_cast<std::size_t>(j) * ldr;
      T acc[kInplaceChunk] = {};
      for (index_t k = 0; k < n; ++k) {
        const T b = rj[k];
        const T* __restrict__ sk =
            stage + static_cast<std::size_t>(k) * kInplaceChunk;
        HODLRX_OMP_SIMD
        for (index_t i = 0; i < kInplaceChunk; ++i) acc[i] += sk[i] * b;
      }
      T* __restrict__ cj = a + j * lda + i0;
      for (index_t i = 0; i < mc; ++i) cj[i] = acc[i];
    }
  }
}

template <typename T>
void geqrf_panel_batch(index_t m, index_t n, T* a, T* tau, index_t w) {
  switch (w) {
    case 2: return geqrf_panel_batch_impl<T, 2>(m, n, a, tau);
    case 4: return geqrf_panel_batch_impl<T, 4>(m, n, a, tau);
    case 8: return geqrf_panel_batch_impl<T, 8>(m, n, a, tau);
    case 16: return geqrf_panel_batch_impl<T, 16>(m, n, a, tau);
  }
  HODLRX_REQUIRE(false, "geqrf_panel_batch: unsupported lane width " << w);
}

template <typename T>
void jacobi_sweep_batch(index_t n, T* gm, T* rm, real_t<T> tol, index_t w,
                        bool* rotated) {
  switch (w) {
    case 2: return jacobi_sweep_batch_impl<T, 2>(n, gm, rm, tol, rotated);
    case 4: return jacobi_sweep_batch_impl<T, 4>(n, gm, rm, tol, rotated);
    case 8: return jacobi_sweep_batch_impl<T, 8>(n, gm, rm, tol, rotated);
    case 16: return jacobi_sweep_batch_impl<T, 16>(n, gm, rm, tol, rotated);
  }
  HODLRX_REQUIRE(false, "jacobi_sweep_batch: unsupported lane width " << w);
}

template <typename T>
void small_gemm_batch(index_t m, index_t n, index_t k, const T* a, const T* b,
                      T* c, index_t w) {
  switch (w) {
    case 2: return small_gemm_batch_impl<T, 2>(m, n, k, a, b, c);
    case 4: return small_gemm_batch_impl<T, 4>(m, n, k, a, b, c);
    case 8: return small_gemm_batch_impl<T, 8>(m, n, k, a, b, c);
    case 16: return small_gemm_batch_impl<T, 16>(m, n, k, a, b, c);
  }
  HODLRX_REQUIRE(false, "small_gemm_batch: unsupported lane width " << w);
}

#define HODLRX_INSTANTIATE_BATCH_KERNELS(T)                                  \
  template void geqrf_panel_batch<T>(index_t, index_t, T*, T*, index_t);     \
  template void jacobi_sweep_batch<T>(index_t, T*, T*, real_t<T>, index_t,   \
                                      bool*);                                \
  template void small_gemm_batch<T>(index_t, index_t, index_t, const T*,     \
                                    const T*, T*, index_t);                  \
  template void gemm_right_inplace<T>(index_t, index_t, T*, index_t,         \
                                      const T*, index_t);

HODLRX_INSTANTIATE_BATCH_KERNELS(float)
HODLRX_INSTANTIATE_BATCH_KERNELS(double)
HODLRX_INSTANTIATE_BATCH_KERNELS(std::complex<float>)
HODLRX_INSTANTIATE_BATCH_KERNELS(std::complex<double>)

#undef HODLRX_INSTANTIATE_BATCH_KERNELS

}  // namespace hodlrx
