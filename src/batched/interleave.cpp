#include "batched/interleave.hpp"

#include <complex>

#include "common/error.hpp"
#include "common/scalar.hpp"

namespace hodlrx {

template <typename T>
void batch_interleave(index_t rows, index_t cols, const T* const* src,
                      index_t ld, index_t nlanes, index_t w, T* dst) {
  HODLRX_REQUIRE(nlanes <= w, "batch_interleave: nlanes > w");
  for (index_t j = 0; j < cols; ++j) {
    T* __restrict__ d = dst + static_cast<std::size_t>(j) * rows * w;
    for (index_t i = 0; i < rows; ++i) {
      for (index_t l = 0; l < nlanes; ++l) d[i * w + l] = src[l][i + j * ld];
      for (index_t l = nlanes; l < w; ++l) d[i * w + l] = T{};
    }
  }
}

template <typename T>
void batch_interleave_op(Op op, index_t rows, index_t cols,
                         const T* const* src, index_t ld, index_t nlanes,
                         index_t w, T* dst) {
  if (op == Op::N) {
    batch_interleave(rows, cols, src, ld, nlanes, w, dst);
    return;
  }
  HODLRX_REQUIRE(nlanes <= w, "batch_interleave_op: nlanes > w");
  const bool conj = (op == Op::C) && is_complex_v<T>;
  for (index_t j = 0; j < cols; ++j) {
    T* __restrict__ d = dst + static_cast<std::size_t>(j) * rows * w;
    for (index_t i = 0; i < rows; ++i) {
      for (index_t l = 0; l < nlanes; ++l) {
        const T x = src[l][j + i * ld];  // op(X)(i, j) = X(j, i)
        d[i * w + l] = conj ? conj_s(x) : x;
      }
      for (index_t l = nlanes; l < w; ++l) d[i * w + l] = T{};
    }
  }
}

template <typename T>
void batch_deinterleave(index_t rows, index_t cols, const T* src, index_t w,
                        index_t nlanes, T* const* dst, index_t ld) {
  HODLRX_REQUIRE(nlanes <= w, "batch_deinterleave: nlanes > w");
  for (index_t j = 0; j < cols; ++j) {
    const T* __restrict__ s = src + static_cast<std::size_t>(j) * rows * w;
    for (index_t l = 0; l < nlanes; ++l) {
      T* __restrict__ d = dst[l] + j * ld;
      for (index_t i = 0; i < rows; ++i) d[i] = s[i * w + l];
    }
  }
}

template <typename T>
void batch_deinterleave_axpby(T alpha, index_t rows, index_t cols,
                              const T* src, index_t w, index_t nlanes, T beta,
                              T* const* dst, index_t ld) {
  HODLRX_REQUIRE(nlanes <= w, "batch_deinterleave_axpby: nlanes > w");
  for (index_t j = 0; j < cols; ++j) {
    const T* __restrict__ s = src + static_cast<std::size_t>(j) * rows * w;
    for (index_t l = 0; l < nlanes; ++l) {
      T* __restrict__ d = dst[l] + j * ld;
      if (beta == T{}) {
        for (index_t i = 0; i < rows; ++i) d[i] = alpha * s[i * w + l];
      } else {
        for (index_t i = 0; i < rows; ++i)
          d[i] = alpha * s[i * w + l] + beta * d[i];
      }
    }
  }
}

#define HODLRX_INSTANTIATE_INTERLEAVE(T)                                      \
  template void batch_interleave<T>(index_t, index_t, const T* const*,        \
                                    index_t, index_t, index_t, T*);           \
  template void batch_interleave_op<T>(Op, index_t, index_t, const T* const*, \
                                       index_t, index_t, index_t, T*);        \
  template void batch_deinterleave<T>(index_t, index_t, const T*, index_t,    \
                                      index_t, T* const*, index_t);           \
  template void batch_deinterleave_axpby<T>(T, index_t, index_t, const T*,    \
                                            index_t, index_t, T, T* const*,   \
                                            index_t);

HODLRX_INSTANTIATE_INTERLEAVE(float)
HODLRX_INSTANTIATE_INTERLEAVE(double)
HODLRX_INSTANTIATE_INTERLEAVE(std::complex<float>)
HODLRX_INSTANTIATE_INTERLEAVE(std::complex<double>)

#undef HODLRX_INSTANTIATE_INTERLEAVE

}  // namespace hodlrx
