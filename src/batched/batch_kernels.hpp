#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/scalar.hpp"

/// \file batch_kernels.hpp
/// Across-batch SIMD kernels over the lane-major layout (interleave.hpp):
/// the vector lanes of one register hold the SAME element of `w` DIFFERENT
/// problems, so the scalar tails of the batched drivers — the Householder
/// panel inside geqrf_strided_batched, the rotation scan inside
/// jacobi_svd_strided_batched, and sub-register-tile GEMMs — run as
/// full-width vector arithmetic instead of per-problem scalar loops.
///
/// Each kernel is compiled once per supported width (2, 4, 8, 16 — powers of
/// two up to a 64-byte register of floats) with the width as a template
/// constant, so the per-element lane loops fully unroll and vectorize; the
/// public entry points dispatch on the runtime width from
/// resolved_blocking<T>().batch_simd_width. Per-lane CONTROL decisions
/// (Householder early-outs, the Jacobi pair-convergence test) stay scalar —
/// they are O(w) per column/pair — and are folded back into the vector
/// arithmetic as exact no-op multipliers (scale 1, tau 0, identity
/// rotation), so each lane performs the same operations in the same order as
/// the scalar reference kernel in lapack.cpp.
///
/// Zero-filled dead lanes (partial last group) are benign everywhere: a zero
/// Householder column early-outs, a zero Gram matrix never passes the pair
/// test, and a zero GEMM lane computes zeros that are never scattered back.

namespace hodlrx {

/// Lane-major unblocked Householder QR: the panel (m x n, lane-major, `w`
/// problems) is factored exactly like geqrf_panel — R in the upper triangle,
/// reflectors below, tau lane-major at tau[k * w + lane]. Dead (zero) lanes
/// produce tau = 0.
template <typename T>
void geqrf_panel_batch(index_t m, index_t n, T* a, T* tau, index_t w);

/// Lane-major cyclic one-sided Jacobi sweep over the Gram matrix only:
/// mirrors jacobi_sweep_gram's pair scan over `w` problems at once, but in
/// ACCUMULATED-ROTATION form (the blocked-Jacobi idea): `gm` is the n x n
/// Gram matrix (lane-major), rotated in place as G <- M^H G M per fired
/// pair — on the UPPER triangle only. The scan reads nothing below the
/// diagonal and callers must treat gm's lower triangle as garbage on return
/// (the drivers refresh G from the rotated factor each sweep and never
/// scatter it back); skipping the Hermitian mirror updates cuts a fired
/// pair's traffic from 6n to ~4n lane-vectors. `rm` (n x n lane-major) is
/// overwritten with the per-lane identity
/// and accumulates every fired rotation as a column update — exactly the
/// update the scalar kernel applies to its `v` factor. The caller then
/// applies `w_i <- w_i * R_i` and `v_i <- v_i * R_i` ONCE per sweep as
/// batched GEMMs at engine speed, instead of rotating the tall m-row factor
/// O(n^2) times per sweep inside the scan (where the per-problem scalar loop
/// over a contiguous column already vectorizes, so lane-major staging of w
/// was pure traffic). `rotated[l]` is OR-ed with "any rotation fired in lane
/// l" — callers clear it first; lanes where it stays false hold R = I, so
/// the caller can skip their GEMMs. Pairs where no lane rotates are skipped
/// whole; pairs where some lanes converged use identity coefficients
/// (c = 1, s = 0) on those lanes.
template <typename T>
void jacobi_sweep_batch(index_t n, T* gm, T* rm, real_t<T> tol, index_t w,
                        bool* rotated);

/// Lane-major C = A * B for sub-register-tile shapes (the batched small-GEMM
/// tail): all three operands lane-major, no alpha/beta — the caller fuses
/// the update into the scatter (batch_deinterleave_axpby).
template <typename T>
void small_gemm_batch(index_t m, index_t n, index_t k, const T* a,
                      const T* b, T* c, index_t w);

/// In-place narrow right product A <- A * R (A is m x n, R is n x n,
/// problem-major): the accumulated-rotation apply of the batched Jacobi
/// driver. Row chunks of A are staged through a small buffer, so the product
/// overwrites A directly — the packed GEMM engine would need a separate C
/// plus a copy-back pass (gemm cannot alias A and C), doubling the tall
/// factor's traffic, and its packing does not amortize at k = n narrow
/// shapes anyway. The staged chunk keeps the k-accumulation in registers and
/// reads R straight from L1.
template <typename T>
void gemm_right_inplace(index_t m, index_t n, T* a, index_t lda, const T* r,
                        index_t ldr);

/// Counters of the across-batch SIMD dispatch (relaxed atomics,
/// process-wide). Tests assert the vectorized paths actually ran when the
/// resolved width is > 1, and that HODLRX_BATCH_SIMD=1 keeps every one of
/// them at zero (the bit-for-bit scalar fallback).
namespace batch_simd_stats {
/// Lane-group tasks executed by the across-batch QR panel path.
std::uint64_t qr_panel_groups();
/// Lane-group tasks executed by the across-batch Jacobi sweep path.
std::uint64_t jacobi_sweep_groups();
/// Lane-group tasks executed by the across-batch small-GEMM path.
std::uint64_t gemm_groups();
void reset();
namespace detail {  // increment hooks for the batched drivers
void add_qr_groups(std::uint64_t n);
void add_jacobi_groups(std::uint64_t n);
void add_gemm_groups(std::uint64_t n);
}  // namespace detail
}  // namespace batch_simd_stats

}  // namespace hodlrx
