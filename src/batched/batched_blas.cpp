#include "batched/batched_blas.hpp"

#include <algorithm>
#include <atomic>
#include <complex>

#include "common/blocking.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/flops.hpp"
#include "common/gemm_kernel.hpp"
#include "common/parallel.hpp"
#include "common/trsm_kernel.hpp"
#include "common/workspace.hpp"
#include "device/device.hpp"

namespace hodlrx {

namespace {

/// Below this per-problem work (~32^3 multiply-adds) intra-problem threading
/// costs more in fork/join than it recovers; such problems always run one
/// thread per problem.
constexpr index_t kStreamMinWorkPerProblem = 32 * 32 * 32;

/// Stream mode = sequential problems, each using the whole thread pool.
/// kAuto decides on total work (batch x per-problem work), not batch count
/// alone: a level with few LARGE problems streams (so its kernels stop
/// running single-threaded), while few SMALL problems stay batched (the
/// per-problem fork/join would dominate).
bool use_stream_mode(BatchPolicy policy, index_t batch, index_t total_work) {
  switch (policy) {
    case BatchPolicy::kForceBatched: return false;
    case BatchPolicy::kForceStream: return true;
    case BatchPolicy::kAuto: {
      const index_t nt = max_threads();
      if (nt <= 1) return false;  // nothing to win from intra-problem threads
      if (batch >= nt) return false;  // enough problems to fill the pool
      return total_work / batch >= kStreamMinWorkPerProblem;
    }
  }
  return false;
}

}  // namespace

template <typename T>
void gemm_batched(Op opa, Op opb, T alpha,
                  std::span<const ConstMatrixView<T>> a,
                  std::span<const ConstMatrixView<T>> b, T beta,
                  std::span<const MatrixView<T>> c, BatchPolicy policy) {
  const index_t batch = static_cast<index_t>(c.size());
  HODLRX_REQUIRE(a.size() == c.size() && b.size() == c.size(),
                 "gemm_batched: inconsistent batch sizes");
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += c[i].rows * c[i].cols * op_cols(opa, a[i]);
  if (use_stream_mode(policy, batch, total_work)) {
    for (index_t i = 0; i < batch; ++i)
      gemm_parallel(opa, opb, alpha, a[i], b[i], beta, c[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) {
      gemm(opa, opb, alpha, a[i], b[i], beta, c[i]);
    });
  }
}

template <typename T>
void gemm_strided_batched(Op opa, Op opb, index_t m, index_t n, index_t k,
                          T alpha, const T* a, index_t lda, index_t stride_a,
                          const T* b, index_t ldb, index_t stride_b, T beta,
                          T* c, index_t ldc, index_t stride_c, index_t batch,
                          BatchPolicy policy) {
  if (batch == 0 || m == 0 || n == 0) return;
  DeviceContext::global().record_launch();
  const index_t ar = (opa == Op::N) ? m : k, ac = (opa == Op::N) ? k : m;
  const index_t br = (opb == Op::N) ? k : n, bc = (opb == Op::N) ? n : k;
  // Shared-operand fast path: a zero stride means every problem in the batch
  // reads the same operand (the paper's constant-rank padding makes this the
  // dominant shape). Pack that operand ONCE per launch and let every problem
  // multiply against the shared pack; only the per-problem operand is packed
  // per problem (into thread-local workspace).
  if (policy == BatchPolicy::kAuto && batch > 1 && k > 0 &&
      (stride_a == 0) != (stride_b == 0) &&
      use_packed_gemm(opa, opb, m, n, k)) {
    if (stride_b == 0) {
      const PackedMatrix<T> bp =
          pack_b_full<T>(opb, ConstMatrixView<T>(b, br, bc, ldb));
      parallel_for_static(batch, [&](index_t i) {
        ConstMatrixView<T> ai(a + i * stride_a, ar, ac, lda);
        MatrixView<T> ci{c + i * stride_c, m, n, ldc};
        gemm_prepacked_b<T>(opa, alpha, ai, bp, beta, ci);
      });
    } else {
      const PackedMatrix<T> ap =
          pack_a_full<T>(opa, ConstMatrixView<T>(a, ar, ac, lda));
      parallel_for_static(batch, [&](index_t i) {
        ConstMatrixView<T> bi(b + i * stride_b, br, bc, ldb);
        MatrixView<T> ci{c + i * stride_c, m, n, ldc};
        gemm_prepacked_a<T>(ap, alpha, opb, bi, beta, ci);
      });
    }
    FlopCounter::instance().add(
        FlopCounter::kGemm,
        static_cast<std::uint64_t>(batch) *
            FlopCounter::gemm_flops<T>(m, n, k));
    return;
  }
  auto run = [&](index_t i, bool threaded) {
    ConstMatrixView<T> ai(a + i * stride_a, ar, ac, lda);
    ConstMatrixView<T> bi(b + i * stride_b, br, bc, ldb);
    MatrixView<T> ci{c + i * stride_c, m, n, ldc};
    if (threaded)
      gemm_parallel(opa, opb, alpha, ai, bi, beta, ci);
    else
      gemm(opa, opb, alpha, ai, bi, beta, ci);
  };
  if (use_stream_mode(policy, batch, batch * m * n * k)) {
    for (index_t i = 0; i < batch; ++i) run(i, true);
  } else {
    parallel_for_static(batch, [&](index_t i) { run(i, false); });
  }
}

template <typename T>
void getrf_batched(std::span<const MatrixView<T>> a,
                   std::span<index_t* const> ipiv, BatchPolicy policy) {
  HODLRX_REQUIRE(a.size() == ipiv.size(), "getrf_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(a.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i) {
    const index_t p = std::min(a[i].rows, a[i].cols);
    total_work += p * p * p / 3;  // ~getrf multiply-adds
  }
  if (use_stream_mode(policy, batch, total_work)) {
    // Few large problems: run them one after another, each with a blocked
    // right-looking LU whose trailing GEMM update uses the whole pool.
    for (index_t i = 0; i < batch; ++i) getrf_parallel(a[i], ipiv[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) { getrf(a[i], ipiv[i]); });
  }
}

template <typename T>
void getrf_nopivot_batched(std::span<const MatrixView<T>> a,
                           BatchPolicy policy) {
  const index_t batch = static_cast<index_t>(a.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i) {
    const index_t p = std::min(a[i].rows, a[i].cols);
    total_work += p * p * p / 3;
  }
  if (use_stream_mode(policy, batch, total_work)) {
    for (index_t i = 0; i < batch; ++i) getrf_nopivot_parallel(a[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) { getrf_nopivot(a[i]); });
  }
}

template <typename T>
void trsm_batched(Uplo uplo, Diag diag, std::span<const ConstMatrixView<T>> a,
                  std::span<const MatrixView<T>> b, BatchPolicy policy) {
  HODLRX_REQUIRE(a.size() == b.size(), "trsm_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += a[i].rows * a[i].rows * b[i].cols;
  if (use_stream_mode(policy, batch, total_work)) {
    // Few large problems: sequential problems, RHS columns of each split
    // across the pool (trsm_left_parallel accounts the flops).
    for (index_t i = 0; i < batch; ++i)
      trsm_left_parallel<T>(uplo, diag, a[i], b[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) {
      trsm_left(uplo, diag, a[i], b[i]);
    });
  }
}

template <typename T>
void getrs_batched(std::span<const ConstMatrixView<T>> lu,
                   std::span<const index_t* const> ipiv,
                   std::span<const MatrixView<T>> b, BatchPolicy policy) {
  HODLRX_REQUIRE(lu.size() == b.size() && ipiv.size() == b.size(),
                 "getrs_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += lu[i].rows * lu[i].rows * b[i].cols;
  if (use_stream_mode(policy, batch, total_work)) {
    // Pivots applied once per problem, then blocked L/U solves with the RHS
    // columns split across the pool.
    for (index_t i = 0; i < batch; ++i) getrs_parallel(lu[i], ipiv[i], b[i]);
  } else {
    parallel_for_static(batch,
                        [&](index_t i) { getrs(lu[i], ipiv[i], b[i]); });
  }
}

template <typename T>
void getrs_nopivot_batched(std::span<const ConstMatrixView<T>> lu,
                           std::span<const MatrixView<T>> b,
                           BatchPolicy policy) {
  HODLRX_REQUIRE(lu.size() == b.size(), "getrs_nopivot_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += lu[i].rows * lu[i].rows * b[i].cols;
  if (use_stream_mode(policy, batch, total_work)) {
    for (index_t i = 0; i < batch; ++i) getrs_nopivot_parallel(lu[i], b[i]);
  } else {
    parallel_for_static(batch,
                        [&](index_t i) { getrs_nopivot(lu[i], b[i]); });
  }
}

namespace qr_stats {
namespace {
std::atomic<std::uint64_t> g_geqrf_sweeps{0}, g_thin_q_sweeps{0},
    g_panel_launches{0};
}  // namespace
std::uint64_t geqrf_batched_sweeps() {
  return g_geqrf_sweeps.load(std::memory_order_relaxed);
}
std::uint64_t thin_q_batched_sweeps() {
  return g_thin_q_sweeps.load(std::memory_order_relaxed);
}
std::uint64_t panel_launches() {
  return g_panel_launches.load(std::memory_order_relaxed);
}
void reset() {
  g_geqrf_sweeps.store(0, std::memory_order_relaxed);
  g_thin_q_sweeps.store(0, std::memory_order_relaxed);
  g_panel_launches.store(0, std::memory_order_relaxed);
}
}  // namespace qr_stats

namespace {

/// Per-launch scratch of the batched QR engine: every problem's explicit
/// reflector panel V, compact-WY T factor, and the two trailing-update
/// intermediates, at uniform strides so the updates can run as strided
/// GEMM launches. Carved out of the calling thread's workspace arena
/// (grow-only, so steady-state sweeps — e.g. the 5 QR rounds of one
/// power-iterated rsvd — allocate nothing), registered as device memory for
/// the accounting. Pool workers WRITE disjoint per-problem slices during
/// the panel launch (synchronized by the parallel_for join) and the strided
/// trailing updates then read them; nothing else inside the launch touches
/// the owner's kScratch slot (the internal GEMMs use kPackA/kPackB), so the
/// buffer stays intact for the whole sweep.
template <typename T>
struct QrBatchWorkspace {
  QrBatchWorkspace(index_t m, index_t n, index_t nb, index_t batch)
      : v_stride(m * nb), t_stride(nb * nb), w_stride(nb * n) {
    const std::size_t count = static_cast<std::size_t>(batch) *
                              (v_stride + t_stride + 2 * w_stride);
    v = WorkspaceArena::local().get<T>(count, WorkspaceArena::kScratch);
    t = v + batch * v_stride;
    w = t + batch * t_stride;
    w2 = w + batch * w_stride;
    da = DeviceAllocation(count * sizeof(T));
  }
  index_t v_stride, t_stride, w_stride;
  DeviceAllocation da;
  T* v;
  T* t;
  T* w;
  T* w2;
};

/// One cross-batch panel step of the batched QR drivers: the three
/// strided-batched trailing-update GEMMs of the compact-WY reflector,
///   W = V^H C;  W2 = op(T) W;  C -= V W2
/// with op = T^H when factoring (applying Q^H) and op = T when forming Q.
template <typename T>
void batched_block_reflector(const QrBatchWorkspace<T>& ws, index_t ib,
                             index_t mr, index_t nc, bool adjoint, T* c,
                             index_t ldc, index_t stride_c, index_t batch) {
  gemm_strided_batched<T>(Op::C, Op::N, ib, nc, mr, T{1}, ws.v, mr,
                          ws.v_stride, c, ldc, stride_c, T{0}, ws.w, ib,
                          ws.w_stride, batch);
  gemm_strided_batched<T>(adjoint ? Op::C : Op::N, Op::N, ib, nc, ib, T{1},
                          ws.t, ib, ws.t_stride, ws.w, ib, ws.w_stride, T{0},
                          ws.w2, ib, ws.w_stride, batch);
  gemm_strided_batched<T>(Op::N, Op::N, mr, nc, ib, T{-1}, ws.v, mr,
                          ws.v_stride, ws.w2, ib, ws.w_stride, T{1}, c, ldc,
                          stride_c, batch);
}

/// kOther remainder of one problem's QR after its internal GEMMs (Gram +
/// three trailing multiplies per panel) booked themselves under kGemm; the
/// internal part comes from the shared panel-loop mirror in lapack.hpp.
/// `ntotal` is n for geqrf and min(m,n) for thin_q.
template <typename T>
void add_batched_qr_flops(index_t m, index_t kmax, index_t ntotal, index_t nb,
                          index_t batch) {
  const std::uint64_t internal =
      blocked_qr_internal_flops<T>(m, kmax, ntotal, nb);
  const std::uint64_t total = (is_complex_v<T> ? 4ull : 1ull) * 2ull *
                              static_cast<std::uint64_t>(m) *
                              static_cast<std::uint64_t>(ntotal) *
                              static_cast<std::uint64_t>(kmax);
  if (total > internal)
    FlopCounter::instance().add(FlopCounter::kOther,
                                static_cast<std::uint64_t>(batch) *
                                    (total - internal));
}

}  // namespace

template <typename T>
void geqrf_strided_batched(T* a, index_t lda, index_t stride_a, index_t m,
                           index_t n, T* tau, index_t stride_tau,
                           index_t batch, BatchPolicy policy) {
  const index_t kmax = std::min(m, n);
  if (batch == 0 || kmax == 0) return;
  HODLRX_REQUIRE(lda >= m && stride_tau >= kmax &&
                     (batch == 1 || stride_a > 0),
                 "geqrf_strided_batched: bad layout");
  DeviceContext::global().record_launch();
  const index_t work = 2 * m * n * kmax;
  if (use_stream_mode(policy, batch, batch * work)) {
    // Few large problems: sequential blocked QRs, each block reflector's
    // trailing multiply using the whole pool (mirrors getrf_parallel).
    for (index_t i = 0; i < batch; ++i)
      geqrf_inplace_parallel<T>(MatrixView<T>{a + i * stride_a, m, n, lda},
                                tau + i * stride_tau);
    return;
  }
  qr_stats::g_geqrf_sweeps.fetch_add(1, std::memory_order_relaxed);
  const index_t nb = resolved_blocking<T>().qr_nb;
  QrBatchWorkspace<T> ws(m, n, nb, batch);
  for (index_t k = 0; k < kmax; k += nb) {
    const index_t ib = std::min(nb, kmax - k);
    const index_t mr = m - k;
    const index_t nc = n - k - ib;
    // Panel launch: factor panel k of EVERY problem and stage its reflector
    // block (explicit V, compact-WY T) for the strided trailing updates.
    qr_stats::g_panel_launches.fetch_add(1, std::memory_order_relaxed);
    DeviceContext::global().record_launch();
    parallel_for_static(batch, [&](index_t i) {
      MatrixView<T> ai{a + i * stride_a, m, n, lda};
      MatrixView<T> panel = ai.block(k, k, mr, ib);
      geqrf_panel<T>(panel, tau + i * stride_tau + k);
      if (nc > 0) {
        MatrixView<T> vi{ws.v + i * ws.v_stride, mr, ib, mr};
        copy_reflectors<T>(ConstMatrixView<T>(panel), vi);
        larft_forward<T>(vi, tau + i * stride_tau + k,
                         MatrixView<T>{ws.t + i * ws.t_stride, ib, ib, ib});
      }
    });
    if (nc > 0)
      batched_block_reflector<T>(ws, ib, mr, nc, /*adjoint=*/true,
                                 a + k + (k + ib) * lda, lda, stride_a,
                                 batch);
  }
  add_batched_qr_flops<T>(m, kmax, n, nb, batch);
}

template <typename T>
void thin_q_strided_batched(T* a, index_t lda, index_t stride_a, index_t m,
                            index_t n, const T* tau, index_t stride_tau,
                            index_t batch, BatchPolicy policy) {
  const index_t kq = std::min(m, n);
  if (batch == 0 || kq == 0) return;
  HODLRX_REQUIRE(lda >= m && stride_tau >= kq &&
                     (batch == 1 || stride_a > 0),
                 "thin_q_strided_batched: bad layout");
  DeviceContext::global().record_launch();
  const index_t work = 2 * m * kq * kq;
  if (use_stream_mode(policy, batch, batch * work)) {
    for (index_t i = 0; i < batch; ++i)
      thin_q_inplace_parallel<T>(MatrixView<T>{a + i * stride_a, m, kq, lda},
                                 tau + i * stride_tau);
    return;
  }
  qr_stats::g_thin_q_sweeps.fetch_add(1, std::memory_order_relaxed);
  const index_t nb = resolved_blocking<T>().qr_nb;
  QrBatchWorkspace<T> ws(m, kq, nb, batch);
  for (index_t kk = ((kq - 1) / nb) * nb; kk >= 0; kk -= nb) {
    const index_t ib = std::min(nb, kq - kk);
    const index_t mr = m - kk;
    const index_t nc = kq - kk - ib;
    // Panel launch: stage the block reflector of panel kk, then overwrite
    // the panel with its own Q columns (org2r) — the staged copies, not the
    // panel, feed the strided trailing updates below.
    qr_stats::g_panel_launches.fetch_add(1, std::memory_order_relaxed);
    DeviceContext::global().record_launch();
    parallel_for_static(batch, [&](index_t i) {
      MatrixView<T> ai{a + i * stride_a, m, kq, lda};
      MatrixView<T> panel = ai.block(kk, kk, mr, ib);
      if (nc > 0) {
        MatrixView<T> vi{ws.v + i * ws.v_stride, mr, ib, mr};
        copy_reflectors<T>(ConstMatrixView<T>(panel), vi);
        larft_forward<T>(vi, tau + i * stride_tau + kk,
                         MatrixView<T>{ws.t + i * ws.t_stride, ib, ib, ib});
      }
      thin_q_panel<T>(panel, tau + i * stride_tau + kk);
      for (index_t j = 0; j < ib; ++j)
        std::fill_n(ai.data + (kk + j) * lda, kk, T{});
    });
    if (nc > 0)
      batched_block_reflector<T>(ws, ib, mr, nc, /*adjoint=*/false,
                                 a + kk + (kk + ib) * lda, lda, stride_a,
                                 batch);
  }
  add_batched_qr_flops<T>(m, kq, kq, nb, batch);
}

template <typename T>
SvdBatchInfo jacobi_svd_strided_batched(T* a, index_t lda, index_t stride_a,
                                        index_t m, index_t n, real_t<T>* s,
                                        index_t stride_s, T* v, index_t ldv,
                                        index_t stride_v, index_t batch,
                                        BatchPolicy policy, bool recover) {
  using R = real_t<T>;
  SvdBatchInfo info;
  if (batch == 0 || n == 0) return info;
  HODLRX_REQUIRE(n <= m && lda >= m && ldv >= n && stride_s >= n &&
                     (batch == 1 || (stride_a > 0 && stride_v > 0)),
                 "jacobi_svd_strided_batched: bad layout (need tall m >= n;"
                 " pass a^H for wide blocks)");
  DeviceContext::global().record_launch();
  const index_t work = 2 * m * n * n;
  if (use_stream_mode(policy, batch, batch * work)) {
    // Few large problems: sequential blocked serial driver per problem (it
    // counts its own non-convergence in svd_stats).
    for (index_t i = 0; i < batch; ++i) {
      MatrixView<T> wi{a + i * stride_a, m, n, lda};
      MatrixView<T> vi{v + i * stride_v, n, n, ldv};
      const SvdInfo r = jacobi_svd_inplace<T>(wi, vi, s + i * stride_s);
      info.sweeps = std::max(info.sweeps, r.sweeps);
      if (!r.converged) ++info.nonconverged;
    }
    return info;
  }
  svd_stats::detail::add_batched_sweep();
  const R tol = R{32} * eps_v<T>;
  int max_sweeps = svd_max_sweeps();
  // "svd.sweeps" fault: starve the synchronized loop so the batch cannot
  // converge and the recovery re-run below must carry it.
  if (fault::should_fire(fault::Site::kSvdSweeps)) max_sweeps = 1;
  // Per-launch Gram workspace (n x n per problem) carved from the calling
  // thread's arena and registered as device memory, like QrBatchWorkspace.
  // Only the sweep launches below touch it; it is dead by finalize time.
  const std::size_t gcount =
      static_cast<std::size_t>(batch) * static_cast<std::size_t>(n) * n;
  T* g = WorkspaceArena::local().get<T>(gcount, WorkspaceArena::kScratch);
  DeviceAllocation da(gcount * sizeof(T));
  // V_i <- I in one pool launch.
  DeviceContext::global().record_launch();
  parallel_for_static(batch, [&](index_t i) {
    MatrixView<T> vi{v + i * stride_v, n, n, ldv};
    for (index_t j = 0; j < n; ++j) {
      std::fill_n(vi.data + j * vi.ld, n, T{});
      vi(j, j) = T{1};
    }
  });
  // Active set: converged problems are compacted out, so late sweeps (the
  // convergence tail is uneven across a batch) spend neither Gram flops nor
  // rotation scans on problems that are already done.
  std::vector<index_t> active;
  if (n > 1) {
    active.resize(static_cast<std::size_t>(batch));
    for (index_t i = 0; i < batch; ++i)
      active[static_cast<std::size_t>(i)] = i;
  }
  std::vector<char> rotated(static_cast<std::size_t>(batch));
  std::vector<ConstMatrixView<T>> gav, gbv;
  std::vector<MatrixView<T>> gcv;
  while (!active.empty() && info.sweeps < max_sweeps) {
    const index_t nact = static_cast<index_t>(active.size());
    // (a) Refresh the active problems' Gram matrices in ONE batched GEMM
    // launch (the pair dot products of the whole batch at engine speed) ...
    gav.resize(static_cast<std::size_t>(nact));
    gbv.resize(static_cast<std::size_t>(nact));
    gcv.resize(static_cast<std::size_t>(nact));
    for (index_t j = 0; j < nact; ++j) {
      const index_t i = active[static_cast<std::size_t>(j)];
      gav[static_cast<std::size_t>(j)] =
          ConstMatrixView<T>(a + i * stride_a, m, n, lda);
      gbv[static_cast<std::size_t>(j)] = gav[static_cast<std::size_t>(j)];
      gcv[static_cast<std::size_t>(j)] = MatrixView<T>{g + i * n * n, n, n, n};
    }
    gemm_batched<T>(Op::C, Op::N, T{1}, gav, gbv, T{0}, gcv,
                    BatchPolicy::kForceBatched);
    // ... then (b) ONE pool launch rotates every active problem once.
    svd_stats::detail::add_sweep_launch();
    DeviceContext::global().record_launch();
    parallel_for_static(nact, [&](index_t j) {
      const index_t i = active[static_cast<std::size_t>(j)];
      MatrixView<T> wi{a + i * stride_a, m, n, lda};
      MatrixView<T> vi{v + i * stride_v, n, n, ldv};
      MatrixView<T> gi{g + i * n * n, n, n, n};
      rotated[static_cast<std::size_t>(i)] =
          jacobi_sweep_gram<T>(wi, vi, gi, tol) ? 1 : 0;
    });
    ++info.sweeps;
    std::erase_if(active,
                  [&](index_t i) { return !rotated[static_cast<std::size_t>(i)]; });
  }
  if (!active.empty() && recover) {
    // Recovery ladder: the stragglers are compacted out of the batch and
    // finished one at a time through the reference serial sweep loop with a
    // 4x budget, BEFORE the shared finalize pass below (finalize must see
    // fully rotated factors). Healing happens in place, so the batch
    // epilogue and the caller's layout are untouched.
    const int budget = std::max(4 * svd_max_sweeps(), 64);
    std::vector<index_t> still;
    Matrix<T> gram(n, n);
    for (const index_t i : active) {
      MatrixView<T> wi{a + i * stride_a, m, n, lda};
      MatrixView<T> vi{v + i * stride_v, n, n, ldv};
      bool rot = true;
      int sweeps = 0;
      while (rot && sweeps < budget) {
        gemm(Op::C, Op::N, T{1}, ConstMatrixView<T>(wi),
             ConstMatrixView<T>(wi), T{0}, gram.view());
        rot = jacobi_sweep_gram<T>(wi, vi, gram.view(), tol);
        ++sweeps;
      }
      info.sweeps = std::max(info.sweeps, sweeps);
      if (rot) {
        still.push_back(i);
      } else {
        ++info.recovered;
      }
    }
    // One recovery engagement per call (not per problem), so a single
    // injected fault that starves the whole batch still balances to
    // injected == recovered.
    if (info.recovered > 0)
      fault_stats::detail::add_recovered(fault::Site::kSvdSweeps);
    active = std::move(still);
  }
  if (!active.empty()) {
    info.nonconverged = static_cast<index_t>(active.size());
    svd_stats::detail::add_nonconverged(
        static_cast<std::uint64_t>(active.size()));
#ifndef NDEBUG
    HODLRX_REQUIRE(false, "jacobi_svd_strided_batched: "
                              << info.nonconverged << " of " << batch
                              << " problem(s) not converged after "
                              << info.sweeps
                              << " sweeps (raise HODLRX_SVD_SWEEPS)");
#endif
  }
  // Finalize launch: sort by descending singular value and normalize U.
  DeviceContext::global().record_launch();
  parallel_for_static(batch, [&](index_t i) {
    MatrixView<T> wi{a + i * stride_a, m, n, lda};
    MatrixView<T> vi{v + i * stride_v, n, n, ldv};
    jacobi_finalize<T>(wi, vi, s + i * stride_s);
  });
  return info;
}

#define HODLRX_INSTANTIATE_BATCHED(T)                                        \
  template void gemm_batched<T>(Op, Op, T,                                   \
                                std::span<const ConstMatrixView<T>>,         \
                                std::span<const ConstMatrixView<T>>, T,      \
                                std::span<const MatrixView<T>>, BatchPolicy);\
  template void gemm_strided_batched<T>(                                     \
      Op, Op, index_t, index_t, index_t, T, const T*, index_t, index_t,      \
      const T*, index_t, index_t, T, T*, index_t, index_t, index_t,          \
      BatchPolicy);                                                          \
  template void getrf_batched<T>(std::span<const MatrixView<T>>,             \
                                 std::span<index_t* const>, BatchPolicy);    \
  template void getrf_nopivot_batched<T>(std::span<const MatrixView<T>>,     \
                                         BatchPolicy);                       \
  template void trsm_batched<T>(Uplo, Diag,                                  \
                                std::span<const ConstMatrixView<T>>,         \
                                std::span<const MatrixView<T>>, BatchPolicy);\
  template void getrs_batched<T>(std::span<const ConstMatrixView<T>>,        \
                                 std::span<const index_t* const>,            \
                                 std::span<const MatrixView<T>>,             \
                                 BatchPolicy);                               \
  template void getrs_nopivot_batched<T>(std::span<const ConstMatrixView<T>>,\
                                         std::span<const MatrixView<T>>,     \
                                         BatchPolicy);                       \
  template void geqrf_strided_batched<T>(T*, index_t, index_t, index_t,      \
                                         index_t, T*, index_t, index_t,      \
                                         BatchPolicy);                       \
  template void thin_q_strided_batched<T>(T*, index_t, index_t, index_t,     \
                                          index_t, const T*, index_t,        \
                                          index_t, BatchPolicy);             \
  template SvdBatchInfo jacobi_svd_strided_batched<T>(                       \
      T*, index_t, index_t, index_t, index_t, real_t<T>*, index_t, T*,       \
      index_t, index_t, index_t, BatchPolicy, bool);

HODLRX_INSTANTIATE_BATCHED(float)
HODLRX_INSTANTIATE_BATCHED(double)
HODLRX_INSTANTIATE_BATCHED(std::complex<float>)
HODLRX_INSTANTIATE_BATCHED(std::complex<double>)

#undef HODLRX_INSTANTIATE_BATCHED

}  // namespace hodlrx
