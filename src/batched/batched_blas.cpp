#include "batched/batched_blas.hpp"

#include <complex>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "device/device.hpp"

namespace hodlrx {

namespace {

bool use_stream_mode(BatchPolicy policy, index_t batch) {
  switch (policy) {
    case BatchPolicy::kForceBatched: return false;
    case BatchPolicy::kForceStream: return true;
    case BatchPolicy::kAuto: return batch < static_cast<index_t>(max_threads());
  }
  return false;
}

/// Parallel triangular solve for one problem: split the RHS columns into one
/// chunk per thread (columns are independent given the LU factors).
template <typename T, typename Solve1>
void solve_columns_parallel(MatrixView<T> b, Solve1&& solve_chunk) {
  const index_t nchunks =
      std::min<index_t>(max_threads(), std::max<index_t>(b.cols, 1));
  parallel_for_static(nchunks, [&](index_t t) {
    const index_t j0 = t * b.cols / nchunks;
    const index_t j1 = (t + 1) * b.cols / nchunks;
    if (j1 > j0) solve_chunk(b.cols_range(j0, j1 - j0));
  });
}

}  // namespace

template <typename T>
void gemm_batched(Op opa, Op opb, T alpha,
                  std::span<const ConstMatrixView<T>> a,
                  std::span<const ConstMatrixView<T>> b, T beta,
                  std::span<const MatrixView<T>> c, BatchPolicy policy) {
  const index_t batch = static_cast<index_t>(c.size());
  HODLRX_REQUIRE(a.size() == c.size() && b.size() == c.size(),
                 "gemm_batched: inconsistent batch sizes");
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  if (use_stream_mode(policy, batch)) {
    for (index_t i = 0; i < batch; ++i)
      gemm_parallel(opa, opb, alpha, a[i], b[i], beta, c[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) {
      gemm(opa, opb, alpha, a[i], b[i], beta, c[i]);
    });
  }
}

template <typename T>
void gemm_strided_batched(Op opa, Op opb, index_t m, index_t n, index_t k,
                          T alpha, const T* a, index_t lda, index_t stride_a,
                          const T* b, index_t ldb, index_t stride_b, T beta,
                          T* c, index_t ldc, index_t stride_c, index_t batch,
                          BatchPolicy policy) {
  if (batch == 0 || m == 0 || n == 0) return;
  DeviceContext::global().record_launch();
  const index_t ar = (opa == Op::N) ? m : k, ac = (opa == Op::N) ? k : m;
  const index_t br = (opb == Op::N) ? k : n, bc = (opb == Op::N) ? n : k;
  auto run = [&](index_t i, bool threaded) {
    ConstMatrixView<T> ai(a + i * stride_a, ar, ac, lda);
    ConstMatrixView<T> bi(b + i * stride_b, br, bc, ldb);
    MatrixView<T> ci{c + i * stride_c, m, n, ldc};
    if (threaded)
      gemm_parallel(opa, opb, alpha, ai, bi, beta, ci);
    else
      gemm(opa, opb, alpha, ai, bi, beta, ci);
  };
  if (use_stream_mode(policy, batch)) {
    for (index_t i = 0; i < batch; ++i) run(i, true);
  } else {
    parallel_for_static(batch, [&](index_t i) { run(i, false); });
  }
}

template <typename T>
void getrf_batched(std::span<const MatrixView<T>> a,
                   std::span<index_t* const> ipiv, BatchPolicy policy) {
  HODLRX_REQUIRE(a.size() == ipiv.size(), "getrf_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(a.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  (void)policy;  // LU panels are processed per-problem in either mode.
  parallel_for_static(batch, [&](index_t i) { getrf(a[i], ipiv[i]); });
}

template <typename T>
void getrf_nopivot_batched(std::span<const MatrixView<T>> a,
                           BatchPolicy policy) {
  const index_t batch = static_cast<index_t>(a.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  (void)policy;
  parallel_for_static(batch, [&](index_t i) { getrf_nopivot(a[i]); });
}

template <typename T>
void getrs_batched(std::span<const ConstMatrixView<T>> lu,
                   std::span<const index_t* const> ipiv,
                   std::span<const MatrixView<T>> b, BatchPolicy policy) {
  HODLRX_REQUIRE(lu.size() == b.size() && ipiv.size() == b.size(),
                 "getrs_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  if (use_stream_mode(policy, batch)) {
    for (index_t i = 0; i < batch; ++i) {
      solve_columns_parallel<T>(b[i], [&](MatrixView<T> chunk) {
        getrs(lu[i], ipiv[i], chunk);
      });
    }
  } else {
    parallel_for_static(batch,
                        [&](index_t i) { getrs(lu[i], ipiv[i], b[i]); });
  }
}

template <typename T>
void getrs_nopivot_batched(std::span<const ConstMatrixView<T>> lu,
                           std::span<const MatrixView<T>> b,
                           BatchPolicy policy) {
  HODLRX_REQUIRE(lu.size() == b.size(), "getrs_nopivot_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  if (use_stream_mode(policy, batch)) {
    for (index_t i = 0; i < batch; ++i) {
      solve_columns_parallel<T>(b[i], [&](MatrixView<T> chunk) {
        getrs_nopivot(lu[i], chunk);
      });
    }
  } else {
    parallel_for_static(batch,
                        [&](index_t i) { getrs_nopivot(lu[i], b[i]); });
  }
}

#define HODLRX_INSTANTIATE_BATCHED(T)                                        \
  template void gemm_batched<T>(Op, Op, T,                                   \
                                std::span<const ConstMatrixView<T>>,         \
                                std::span<const ConstMatrixView<T>>, T,      \
                                std::span<const MatrixView<T>>, BatchPolicy);\
  template void gemm_strided_batched<T>(                                     \
      Op, Op, index_t, index_t, index_t, T, const T*, index_t, index_t,      \
      const T*, index_t, index_t, T, T*, index_t, index_t, index_t,          \
      BatchPolicy);                                                          \
  template void getrf_batched<T>(std::span<const MatrixView<T>>,             \
                                 std::span<index_t* const>, BatchPolicy);    \
  template void getrf_nopivot_batched<T>(std::span<const MatrixView<T>>,     \
                                         BatchPolicy);                       \
  template void getrs_batched<T>(std::span<const ConstMatrixView<T>>,        \
                                 std::span<const index_t* const>,            \
                                 std::span<const MatrixView<T>>,             \
                                 BatchPolicy);                               \
  template void getrs_nopivot_batched<T>(std::span<const ConstMatrixView<T>>,\
                                         std::span<const MatrixView<T>>,     \
                                         BatchPolicy);

HODLRX_INSTANTIATE_BATCHED(float)
HODLRX_INSTANTIATE_BATCHED(double)
HODLRX_INSTANTIATE_BATCHED(std::complex<float>)
HODLRX_INSTANTIATE_BATCHED(std::complex<double>)

#undef HODLRX_INSTANTIATE_BATCHED

}  // namespace hodlrx
