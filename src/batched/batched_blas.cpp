#include "batched/batched_blas.hpp"

#include <algorithm>
#include <atomic>
#include <complex>

#include "batched/batch_kernels.hpp"
#include "batched/interleave.hpp"
#include "common/blocking.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/flops.hpp"
#include "common/gemm_kernel.hpp"
#include "common/parallel.hpp"
#include "common/trsm_kernel.hpp"
#include "common/workspace.hpp"
#include "device/backend.hpp"
#include "device/device.hpp"

namespace hodlrx {

namespace {

/// The widest compiled lane width (batch_kernels.cpp dispatch table).
constexpr index_t kMaxBatchLanes = 16;

/// Across-batch SIMD eligibility of one batched launch: the resolved width
/// (1 = disabled, the bit-for-bit scalar rung) and enough problems to fill
/// at least one full lane group. Uniform shape is structural for the strided
/// entry points (one m/n/k for the whole batch).
template <typename T>
index_t batch_lanes(index_t batch) {
  const index_t w = resolved_blocking<T>().batch_simd_width;
  return (w > 1 && batch >= w) ? w : 1;
}

/// Below this per-problem work (~32^3 multiply-adds) intra-problem threading
/// costs more in fork/join than it recovers; such problems always run one
/// thread per problem.
constexpr index_t kStreamMinWorkPerProblem = 32 * 32 * 32;

/// Stream mode = sequential problems, each using the whole thread pool.
/// kAuto decides on total work (batch x per-problem work), not batch count
/// alone: a level with few LARGE problems streams (so its kernels stop
/// running single-threaded), while few SMALL problems stay batched (the
/// per-problem fork/join would dominate).
bool use_stream_mode(BatchPolicy policy, index_t batch, index_t total_work) {
  switch (policy) {
    case BatchPolicy::kForceBatched: return false;
    case BatchPolicy::kForceStream: return true;
    case BatchPolicy::kAuto: {
      const index_t nt = max_threads();
      if (nt <= 1) return false;  // nothing to win from intra-problem threads
      if (batch >= nt) return false;  // enough problems to fill the pool
      return total_work / batch >= kStreamMinWorkPerProblem;
    }
  }
  return false;
}

}  // namespace

template <typename T>
void gemm_batched(Op opa, Op opb, T alpha,
                  std::span<const ConstMatrixView<T>> a,
                  std::span<const ConstMatrixView<T>> b, T beta,
                  std::span<const MatrixView<T>> c, BatchPolicy policy) {
  const index_t batch = static_cast<index_t>(c.size());
  HODLRX_REQUIRE(a.size() == c.size() && b.size() == c.size(),
                 "gemm_batched: inconsistent batch sizes");
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += c[i].rows * c[i].cols * op_cols(opa, a[i]);
  if (use_stream_mode(policy, batch, total_work)) {
    for (index_t i = 0; i < batch; ++i)
      gemm_parallel(opa, opb, alpha, a[i], b[i], beta, c[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) {
      gemm(opa, opb, alpha, a[i], b[i], beta, c[i]);
    });
  }
}

template <typename T>
void gemm_strided_batched(Op opa, Op opb, index_t m, index_t n, index_t k,
                          T alpha, const T* a, index_t lda, index_t stride_a,
                          const T* b, index_t ldb, index_t stride_b, T beta,
                          T* c, index_t ldc, index_t stride_c, index_t batch,
                          BatchPolicy policy) {
  if (batch == 0 || m == 0 || n == 0) return;
  // Backend dispatch: with an async stream bound, the launch enqueues and
  // returns; the body re-enters this function on a drain worker (where the
  // in-stream-task flag forces the inline path below). Pointer+stride
  // arguments are PODs, so a by-value capture snapshots the launch.
  if (Stream* strm = deferring_stream()) {
    strm->launch("gemm_strided_batched", [=] {
      gemm_strided_batched<T>(opa, opb, m, n, k, alpha, a, lda, stride_a, b,
                              ldb, stride_b, beta, c, ldc, stride_c, batch,
                              policy);
    });
    return;
  }
  DeviceContext::global().record_launch();
  const index_t ar = (opa == Op::N) ? m : k, ac = (opa == Op::N) ? k : m;
  const index_t br = (opb == Op::N) ? k : n, bc = (opb == Op::N) ? n : k;
  // Shared-operand fast path: a zero stride means every problem in the batch
  // reads the same operand (the paper's constant-rank padding makes this the
  // dominant shape). Pack that operand ONCE per launch and let every problem
  // multiply against the shared pack; only the per-problem operand is packed
  // per problem (into thread-local workspace).
  if (policy == BatchPolicy::kAuto && batch > 1 && k > 0 &&
      (stride_a == 0) != (stride_b == 0) &&
      use_packed_gemm(opa, opb, m, n, k)) {
    if (stride_b == 0) {
      const PackedMatrix<T> bp =
          pack_b_full<T>(opb, ConstMatrixView<T>(b, br, bc, ldb));
      parallel_for_static(batch, [&](index_t i) {
        ConstMatrixView<T> ai(a + i * stride_a, ar, ac, lda);
        MatrixView<T> ci{c + i * stride_c, m, n, ldc};
        gemm_prepacked_b<T>(opa, alpha, ai, bp, beta, ci);
      });
    } else {
      const PackedMatrix<T> ap =
          pack_a_full<T>(opa, ConstMatrixView<T>(a, ar, ac, lda));
      parallel_for_static(batch, [&](index_t i) {
        ConstMatrixView<T> bi(b + i * stride_b, br, bc, ldb);
        MatrixView<T> ci{c + i * stride_c, m, n, ldc};
        gemm_prepacked_a<T>(ap, alpha, opb, bi, beta, ci);
      });
    }
    FlopCounter::instance().add(
        FlopCounter::kGemm,
        static_cast<std::uint64_t>(batch) *
            FlopCounter::gemm_flops<T>(m, n, k));
    return;
  }
  // Across-batch small-GEMM tail: problems at or below one register tile
  // (m <= MR, n <= NR) never fill the packed engine's micro-kernel and run
  // as scalar naive loops per problem. Interleave lane groups of W problems
  // into lane-major layout instead, so every multiply-add advances W
  // problems at full vector width. op/conj and stride-0 broadcast operands
  // are absorbed by the gather; alpha/beta are fused into the scatter, so C
  // is never staged in.
  {
    const ResolvedBlocking& rb = resolved_blocking<T>();
    const index_t w = batch_lanes<T>(batch);
    if (w > 1 && policy != BatchPolicy::kForceStream && k > 0 &&
        m <= rb.mr && n <= rb.nr && k <= rb.kc) {
      const index_t ngroups = (batch + w - 1) / w;
      batch_simd_stats::detail::add_gemm_groups(
          static_cast<std::uint64_t>(ngroups));
      parallel_for_static(ngroups, [&](index_t gi) {
        const index_t i0 = gi * w;
        const index_t nl = std::min(w, batch - i0);
        T* buf = interleave_workspace<T>(
            static_cast<std::size_t>(m * k + k * n + m * n) * w);
        T* a_il = buf;
        T* b_il = a_il + static_cast<std::size_t>(m) * k * w;
        T* c_il = b_il + static_cast<std::size_t>(k) * n * w;
        const T* asrc[kMaxBatchLanes];
        const T* bsrc[kMaxBatchLanes];
        T* cdst[kMaxBatchLanes];
        for (index_t l = 0; l < nl; ++l) {
          asrc[l] = a + (i0 + l) * stride_a;
          bsrc[l] = b + (i0 + l) * stride_b;
          cdst[l] = c + (i0 + l) * stride_c;
        }
        batch_interleave_op<T>(opa, m, k, asrc, lda, nl, w, a_il);
        batch_interleave_op<T>(opb, k, n, bsrc, ldb, nl, w, b_il);
        small_gemm_batch<T>(m, n, k, a_il, b_il, c_il, w);
        batch_deinterleave_axpby<T>(alpha, m, n, c_il, w, nl, beta, cdst,
                                    ldc);
      });
      FlopCounter::instance().add(
          FlopCounter::kGemm,
          static_cast<std::uint64_t>(batch) *
              FlopCounter::gemm_flops<T>(m, n, k));
      return;
    }
  }
  auto run = [&](index_t i, bool threaded) {
    ConstMatrixView<T> ai(a + i * stride_a, ar, ac, lda);
    ConstMatrixView<T> bi(b + i * stride_b, br, bc, ldb);
    MatrixView<T> ci{c + i * stride_c, m, n, ldc};
    if (threaded)
      gemm_parallel(opa, opb, alpha, ai, bi, beta, ci);
    else
      gemm(opa, opb, alpha, ai, bi, beta, ci);
  };
  if (use_stream_mode(policy, batch, batch * m * n * k)) {
    for (index_t i = 0; i < batch; ++i) run(i, true);
  } else {
    parallel_for_static(batch, [&](index_t i) { run(i, false); });
  }
}

template <typename T>
void getrf_batched(std::span<const MatrixView<T>> a,
                   std::span<index_t* const> ipiv, BatchPolicy policy) {
  HODLRX_REQUIRE(a.size() == ipiv.size(), "getrf_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(a.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i) {
    const index_t p = std::min(a[i].rows, a[i].cols);
    total_work += p * p * p / 3;  // ~getrf multiply-adds
  }
  if (use_stream_mode(policy, batch, total_work)) {
    // Few large problems: run them one after another, each with a blocked
    // right-looking LU whose trailing GEMM update uses the whole pool.
    for (index_t i = 0; i < batch; ++i) getrf_parallel(a[i], ipiv[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) { getrf(a[i], ipiv[i]); });
  }
}

template <typename T>
void getrf_nopivot_batched(std::span<const MatrixView<T>> a,
                           BatchPolicy policy) {
  const index_t batch = static_cast<index_t>(a.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i) {
    const index_t p = std::min(a[i].rows, a[i].cols);
    total_work += p * p * p / 3;
  }
  if (use_stream_mode(policy, batch, total_work)) {
    for (index_t i = 0; i < batch; ++i) getrf_nopivot_parallel(a[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) { getrf_nopivot(a[i]); });
  }
}

template <typename T>
void trsm_batched(Uplo uplo, Diag diag, std::span<const ConstMatrixView<T>> a,
                  std::span<const MatrixView<T>> b, BatchPolicy policy) {
  HODLRX_REQUIRE(a.size() == b.size(), "trsm_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  // Backend dispatch: the span storage may not outlive the call, so the
  // deferred launch owns copies of the views (the coefficient memory they
  // point at is the caller's device memory, live until synchronization).
  if (Stream* strm = deferring_stream()) {
    std::vector<ConstMatrixView<T>> av(a.begin(), a.end());
    std::vector<MatrixView<T>> bv(b.begin(), b.end());
    strm->launch("trsm_batched", [uplo, diag, av = std::move(av),
                                  bv = std::move(bv), policy] {
      trsm_batched<T>(uplo, diag, std::span<const ConstMatrixView<T>>(av),
                      std::span<const MatrixView<T>>(bv), policy);
    });
    return;
  }
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += a[i].rows * a[i].rows * b[i].cols;
  if (use_stream_mode(policy, batch, total_work)) {
    // Few large problems: sequential problems, RHS columns of each split
    // across the pool (trsm_left_parallel accounts the flops).
    for (index_t i = 0; i < batch; ++i)
      trsm_left_parallel<T>(uplo, diag, a[i], b[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) {
      trsm_left(uplo, diag, a[i], b[i]);
    });
  }
}

template <typename T>
void getrs_batched(std::span<const ConstMatrixView<T>> lu,
                   std::span<const index_t* const> ipiv,
                   std::span<const MatrixView<T>> b, BatchPolicy policy) {
  HODLRX_REQUIRE(lu.size() == b.size() && ipiv.size() == b.size(),
                 "getrs_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += lu[i].rows * lu[i].rows * b[i].cols;
  if (use_stream_mode(policy, batch, total_work)) {
    // Pivots applied once per problem, then blocked L/U solves with the RHS
    // columns split across the pool.
    for (index_t i = 0; i < batch; ++i) getrs_parallel(lu[i], ipiv[i], b[i]);
  } else {
    parallel_for_static(batch,
                        [&](index_t i) { getrs(lu[i], ipiv[i], b[i]); });
  }
}

template <typename T>
void getrs_nopivot_batched(std::span<const ConstMatrixView<T>> lu,
                           std::span<const MatrixView<T>> b,
                           BatchPolicy policy) {
  HODLRX_REQUIRE(lu.size() == b.size(), "getrs_nopivot_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += lu[i].rows * lu[i].rows * b[i].cols;
  if (use_stream_mode(policy, batch, total_work)) {
    for (index_t i = 0; i < batch; ++i) getrs_nopivot_parallel(lu[i], b[i]);
  } else {
    parallel_for_static(batch,
                        [&](index_t i) { getrs_nopivot(lu[i], b[i]); });
  }
}

namespace qr_stats {
namespace {
std::atomic<std::uint64_t> g_geqrf_sweeps{0}, g_thin_q_sweeps{0},
    g_panel_launches{0};
}  // namespace
std::uint64_t geqrf_batched_sweeps() {
  return g_geqrf_sweeps.load(std::memory_order_relaxed);
}
std::uint64_t thin_q_batched_sweeps() {
  return g_thin_q_sweeps.load(std::memory_order_relaxed);
}
std::uint64_t panel_launches() {
  return g_panel_launches.load(std::memory_order_relaxed);
}
void reset() {
  g_geqrf_sweeps.store(0, std::memory_order_relaxed);
  g_thin_q_sweeps.store(0, std::memory_order_relaxed);
  g_panel_launches.store(0, std::memory_order_relaxed);
}
}  // namespace qr_stats

namespace {

/// Per-launch scratch of the batched QR engine: every problem's explicit
/// reflector panel V, compact-WY T factor, and the two trailing-update
/// intermediates, at uniform strides so the updates can run as strided
/// GEMM launches. Carved out of the calling thread's workspace arena
/// (grow-only, so steady-state sweeps — e.g. the 5 QR rounds of one
/// power-iterated rsvd — allocate nothing), registered as device memory for
/// the accounting. Pool workers WRITE disjoint per-problem slices during
/// the panel launch (synchronized by the parallel_for join) and the strided
/// trailing updates then read them; nothing else inside the launch touches
/// the owner's kScratch slot (the internal GEMMs use kPackA/kPackB), so the
/// buffer stays intact for the whole sweep.
template <typename T>
struct QrBatchWorkspace {
  QrBatchWorkspace(index_t m, index_t n, index_t nb, index_t batch)
      : v_stride(m * nb), t_stride(nb * nb), w_stride(nb * n) {
    const std::size_t count = static_cast<std::size_t>(batch) *
                              (v_stride + t_stride + 2 * w_stride);
    v = WorkspaceArena::local().get<T>(count, WorkspaceArena::kScratch);
    t = v + batch * v_stride;
    w = t + batch * t_stride;
    w2 = w + batch * w_stride;
    da = DeviceAllocation(count * sizeof(T));
  }
  index_t v_stride, t_stride, w_stride;
  DeviceAllocation da;
  T* v;
  T* t;
  T* w;
  T* w2;
};

/// One cross-batch panel step of the batched QR drivers: the three
/// strided-batched trailing-update GEMMs of the compact-WY reflector,
///   W = V^H C;  W2 = op(T) W;  C -= V W2
/// with op = T^H when factoring (applying Q^H) and op = T when forming Q.
template <typename T>
void batched_block_reflector(const QrBatchWorkspace<T>& ws, index_t ib,
                             index_t mr, index_t nc, bool adjoint, T* c,
                             index_t ldc, index_t stride_c, index_t batch) {
  gemm_strided_batched<T>(Op::C, Op::N, ib, nc, mr, T{1}, ws.v, mr,
                          ws.v_stride, c, ldc, stride_c, T{0}, ws.w, ib,
                          ws.w_stride, batch);
  gemm_strided_batched<T>(adjoint ? Op::C : Op::N, Op::N, ib, nc, ib, T{1},
                          ws.t, ib, ws.t_stride, ws.w, ib, ws.w_stride, T{0},
                          ws.w2, ib, ws.w_stride, batch);
  gemm_strided_batched<T>(Op::N, Op::N, mr, nc, ib, T{-1}, ws.v, mr,
                          ws.v_stride, ws.w2, ib, ws.w_stride, T{1}, c, ldc,
                          stride_c, batch);
}

/// kOther remainder of one problem's QR after its internal GEMMs (Gram +
/// three trailing multiplies per panel) booked themselves under kGemm; the
/// internal part comes from the shared panel-loop mirror in lapack.hpp.
/// `ntotal` is n for geqrf and min(m,n) for thin_q.
template <typename T>
void add_batched_qr_flops(index_t m, index_t kmax, index_t ntotal, index_t nb,
                          index_t batch) {
  const std::uint64_t internal =
      blocked_qr_internal_flops<T>(m, kmax, ntotal, nb);
  const std::uint64_t total = (is_complex_v<T> ? 4ull : 1ull) * 2ull *
                              static_cast<std::uint64_t>(m) *
                              static_cast<std::uint64_t>(ntotal) *
                              static_cast<std::uint64_t>(kmax);
  if (total > internal)
    FlopCounter::instance().add(FlopCounter::kOther,
                                static_cast<std::uint64_t>(batch) *
                                    (total - internal));
}

}  // namespace

template <typename T>
void geqrf_strided_batched(T* a, index_t lda, index_t stride_a, index_t m,
                           index_t n, T* tau, index_t stride_tau,
                           index_t batch, BatchPolicy policy) {
  const index_t kmax = std::min(m, n);
  if (batch == 0 || kmax == 0) return;
  HODLRX_REQUIRE(lda >= m && stride_tau >= kmax &&
                     (batch == 1 || stride_a > 0),
                 "geqrf_strided_batched: bad layout");
  if (Stream* strm = deferring_stream()) {
    strm->launch("geqrf_strided_batched", [=] {
      geqrf_strided_batched<T>(a, lda, stride_a, m, n, tau, stride_tau, batch,
                               policy);
    });
    return;
  }
  DeviceContext::global().record_launch();
  const index_t work = 2 * m * n * kmax;
  if (use_stream_mode(policy, batch, batch * work)) {
    // Few large problems: sequential blocked QRs, each block reflector's
    // trailing multiply using the whole pool (mirrors getrf_parallel).
    for (index_t i = 0; i < batch; ++i)
      geqrf_inplace_parallel<T>(MatrixView<T>{a + i * stride_a, m, n, lda},
                                tau + i * stride_tau);
    return;
  }
  qr_stats::g_geqrf_sweeps.fetch_add(1, std::memory_order_relaxed);
  const index_t nb = resolved_blocking<T>().qr_nb;
  const index_t lanes = batch_lanes<T>(batch);
  QrBatchWorkspace<T> ws(m, n, nb, batch);
  for (index_t k = 0; k < kmax; k += nb) {
    const index_t ib = std::min(nb, kmax - k);
    const index_t mr = m - k;
    const index_t nc = n - k - ib;
    // Panel launch: factor panel k of EVERY problem and stage its reflector
    // block (explicit V, compact-WY T) for the strided trailing updates.
    qr_stats::g_panel_launches.fetch_add(1, std::memory_order_relaxed);
    DeviceContext::global().record_launch();
    auto stage_reflectors = [&](index_t i) {
      MatrixView<T> ai{a + i * stride_a, m, n, lda};
      MatrixView<T> panel = ai.block(k, k, mr, ib);
      MatrixView<T> vi{ws.v + i * ws.v_stride, mr, ib, mr};
      copy_reflectors<T>(ConstMatrixView<T>(panel), vi);
      larft_forward<T>(vi, tau + i * stride_tau + k,
                       MatrixView<T>{ws.t + i * ws.t_stride, ib, ib, ib});
    };
    if (lanes > 1) {
      // Across-batch panel: each lane group gathers `lanes` problems'
      // panels into the lane-major layout and factors them as ONE SIMD QR
      // (geqrf_panel_batch); the compact-WY staging stays per lane, feeding
      // the same strided trailing GEMMs. Same launch and counter shape as
      // the per-problem path — only the task granularity changes.
      const index_t ngroups = (batch + lanes - 1) / lanes;
      batch_simd_stats::detail::add_qr_groups(
          static_cast<std::uint64_t>(ngroups));
      parallel_for_static(ngroups, [&](index_t gi) {
        const index_t i0 = gi * lanes;
        const index_t nl = std::min(lanes, batch - i0);
        T* buf = interleave_workspace<T>(
            static_cast<std::size_t>(mr * ib + ib) * lanes);
        T* panel_il = buf;
        T* tau_il = buf + static_cast<std::size_t>(mr) * ib * lanes;
        T* ptrs[kMaxBatchLanes];
        for (index_t l = 0; l < nl; ++l)
          ptrs[l] = a + (i0 + l) * stride_a + k + k * lda;
        batch_interleave<T>(mr, ib, ptrs, lda, nl, lanes, panel_il);
        geqrf_panel_batch<T>(mr, ib, panel_il, tau_il, lanes);
        batch_deinterleave<T>(mr, ib, panel_il, lanes, nl, ptrs, lda);
        for (index_t l = 0; l < nl; ++l) {
          T* ti = tau + (i0 + l) * stride_tau + k;
          for (index_t jj = 0; jj < ib; ++jj)
            ti[jj] = tau_il[jj * lanes + l];
        }
        if (nc > 0)
          for (index_t l = 0; l < nl; ++l) stage_reflectors(i0 + l);
      });
    } else {
      parallel_for_static(batch, [&](index_t i) {
        MatrixView<T> ai{a + i * stride_a, m, n, lda};
        MatrixView<T> panel = ai.block(k, k, mr, ib);
        geqrf_panel<T>(panel, tau + i * stride_tau + k);
        if (nc > 0) stage_reflectors(i);
      });
    }
    if (nc > 0)
      batched_block_reflector<T>(ws, ib, mr, nc, /*adjoint=*/true,
                                 a + k + (k + ib) * lda, lda, stride_a,
                                 batch);
  }
  add_batched_qr_flops<T>(m, kmax, n, nb, batch);
}

template <typename T>
void thin_q_strided_batched(T* a, index_t lda, index_t stride_a, index_t m,
                            index_t n, const T* tau, index_t stride_tau,
                            index_t batch, BatchPolicy policy) {
  const index_t kq = std::min(m, n);
  if (batch == 0 || kq == 0) return;
  HODLRX_REQUIRE(lda >= m && stride_tau >= kq &&
                     (batch == 1 || stride_a > 0),
                 "thin_q_strided_batched: bad layout");
  if (Stream* strm = deferring_stream()) {
    strm->launch("thin_q_strided_batched", [=] {
      thin_q_strided_batched<T>(a, lda, stride_a, m, n, tau, stride_tau,
                                batch, policy);
    });
    return;
  }
  DeviceContext::global().record_launch();
  const index_t work = 2 * m * kq * kq;
  if (use_stream_mode(policy, batch, batch * work)) {
    for (index_t i = 0; i < batch; ++i)
      thin_q_inplace_parallel<T>(MatrixView<T>{a + i * stride_a, m, kq, lda},
                                 tau + i * stride_tau);
    return;
  }
  qr_stats::g_thin_q_sweeps.fetch_add(1, std::memory_order_relaxed);
  const index_t nb = resolved_blocking<T>().qr_nb;
  QrBatchWorkspace<T> ws(m, kq, nb, batch);
  for (index_t kk = ((kq - 1) / nb) * nb; kk >= 0; kk -= nb) {
    const index_t ib = std::min(nb, kq - kk);
    const index_t mr = m - kk;
    const index_t nc = kq - kk - ib;
    // Panel launch: stage the block reflector of panel kk, then overwrite
    // the panel with its own Q columns (org2r) — the staged copies, not the
    // panel, feed the strided trailing updates below.
    qr_stats::g_panel_launches.fetch_add(1, std::memory_order_relaxed);
    DeviceContext::global().record_launch();
    parallel_for_static(batch, [&](index_t i) {
      MatrixView<T> ai{a + i * stride_a, m, kq, lda};
      MatrixView<T> panel = ai.block(kk, kk, mr, ib);
      if (nc > 0) {
        MatrixView<T> vi{ws.v + i * ws.v_stride, mr, ib, mr};
        copy_reflectors<T>(ConstMatrixView<T>(panel), vi);
        larft_forward<T>(vi, tau + i * stride_tau + kk,
                         MatrixView<T>{ws.t + i * ws.t_stride, ib, ib, ib});
      }
      thin_q_panel<T>(panel, tau + i * stride_tau + kk);
      for (index_t j = 0; j < ib; ++j)
        std::fill_n(ai.data + (kk + j) * lda, kk, T{});
    });
    if (nc > 0)
      batched_block_reflector<T>(ws, ib, mr, nc, /*adjoint=*/false,
                                 a + kk + (kk + ib) * lda, lda, stride_a,
                                 batch);
  }
  add_batched_qr_flops<T>(m, kq, kq, nb, batch);
}

template <typename T>
SvdBatchInfo jacobi_svd_strided_batched(T* a, index_t lda, index_t stride_a,
                                        index_t m, index_t n, real_t<T>* s,
                                        index_t stride_s, T* v, index_t ldv,
                                        index_t stride_v, index_t batch,
                                        BatchPolicy policy, bool recover) {
  using R = real_t<T>;
  SvdBatchInfo info;
  if (batch == 0 || n == 0) return info;
  HODLRX_REQUIRE(n <= m && lda >= m && ldv >= n && stride_s >= n &&
                     (batch == 1 || (stride_a > 0 && stride_v > 0)),
                 "jacobi_svd_strided_batched: bad layout (need tall m >= n;"
                 " pass a^H for wide blocks)");
  // The SVD returns host-readable convergence info, so it is a
  // stream-SYNCHRONIZING operation (the cusolver info-query shape): work
  // queued ahead of it on the bound stream completes first, then the
  // decomposition itself runs inline on the caller.
  if (Stream* strm = deferring_stream()) strm->synchronize();
  DeviceContext::global().record_launch();
  const index_t work = 2 * m * n * n;
  if (use_stream_mode(policy, batch, batch * work)) {
    // Few large problems: sequential blocked serial driver per problem (it
    // counts its own non-convergence in svd_stats).
    for (index_t i = 0; i < batch; ++i) {
      MatrixView<T> wi{a + i * stride_a, m, n, lda};
      MatrixView<T> vi{v + i * stride_v, n, n, ldv};
      const SvdInfo r = jacobi_svd_inplace<T>(wi, vi, s + i * stride_s);
      info.sweeps = std::max(info.sweeps, r.sweeps);
      if (!r.converged) ++info.nonconverged;
    }
    return info;
  }
  svd_stats::detail::add_batched_sweep();
  const R tol = R{32} * eps_v<T>;
  int max_sweeps = svd_max_sweeps();
  // "svd.sweeps" fault: starve the synchronized loop so the batch cannot
  // converge and the recovery re-run below must carry it.
  if (fault::should_fire(fault::Site::kSvdSweeps)) max_sweeps = 1;
  // Per-launch Gram workspace (n x n per problem) carved from the calling
  // thread's arena and registered as device memory, like QrBatchWorkspace.
  // Only the sweep launches below touch it; it is dead by finalize time.
  // When the across-batch sweep can engage (batch_lanes > 1 for the full
  // batch), the same carve also holds the accumulated-rotation scratch: one
  // n x n R per problem. One get() call — a second get() on the same slot
  // would invalidate the first pointer.
  const std::size_t gcount =
      static_cast<std::size_t>(batch) * static_cast<std::size_t>(n) * n;
  const std::size_t rcount = batch_lanes<T>(batch) > 1 ? gcount : 0;
  T* g = WorkspaceArena::local().get<T>(gcount + rcount,
                                        WorkspaceArena::kScratch);
  T* r = g + gcount;
  DeviceAllocation da((gcount + rcount) * sizeof(T));
  // V_i <- I in one pool launch.
  DeviceContext::global().record_launch();
  parallel_for_static(batch, [&](index_t i) {
    MatrixView<T> vi{v + i * stride_v, n, n, ldv};
    for (index_t j = 0; j < n; ++j) {
      std::fill_n(vi.data + j * vi.ld, n, T{});
      vi(j, j) = T{1};
    }
  });
  // Active set: converged problems are compacted out, so late sweeps (the
  // convergence tail is uneven across a batch) spend neither Gram flops nor
  // rotation scans on problems that are already done.
  std::vector<index_t> active;
  if (n > 1) {
    active.resize(static_cast<std::size_t>(batch));
    for (index_t i = 0; i < batch; ++i)
      active[static_cast<std::size_t>(i)] = i;
  }
  std::vector<char> rotated(static_cast<std::size_t>(batch));
  std::vector<ConstMatrixView<T>> gav, gbv;
  std::vector<MatrixView<T>> gcv;
  // Accumulated-rotation apply step (across-batch sweeps only): the
  // problems whose R must be applied this sweep.
  std::vector<index_t> rlist;
  while (!active.empty() && info.sweeps < max_sweeps) {
    const index_t nact = static_cast<index_t>(active.size());
    // (a) Refresh the active problems' Gram matrices in ONE batched GEMM
    // launch (the pair dot products of the whole batch at engine speed) ...
    gav.resize(static_cast<std::size_t>(nact));
    gbv.resize(static_cast<std::size_t>(nact));
    gcv.resize(static_cast<std::size_t>(nact));
    for (index_t j = 0; j < nact; ++j) {
      const index_t i = active[static_cast<std::size_t>(j)];
      gav[static_cast<std::size_t>(j)] =
          ConstMatrixView<T>(a + i * stride_a, m, n, lda);
      gbv[static_cast<std::size_t>(j)] = gav[static_cast<std::size_t>(j)];
      gcv[static_cast<std::size_t>(j)] = MatrixView<T>{g + i * n * n, n, n, n};
    }
    gemm_batched<T>(Op::C, Op::N, T{1}, gav, gbv, T{0}, gcv,
                    BatchPolicy::kForceBatched);
    // ... then (b) ONE pool launch rotates every active problem once.
    svd_stats::detail::add_sweep_launch();
    DeviceContext::global().record_launch();
    const index_t lanes = batch_lanes<T>(nact);
    if (lanes > 1) {
      // Across-batch sweep in accumulated-rotation form: lane groups are
      // re-formed from the COMPACTED active set each sweep (the gather
      // pointers index through `active`), so convergence compaction and
      // SIMD lanes compose. Only the small n x n Gram matrix is interleaved
      // — the pair scan rotates it lane-major while accumulating every
      // rotation into a per-lane R, and the tall factor is updated ONCE per
      // sweep as w <- w*R below, at engine speed, instead of being staged
      // through the lane-major layout (where the scalar per-problem column
      // rotation already vectorizes and the staging is pure traffic). The
      // Gram matrix is not scattered back — the next sweep's batched GEMM
      // refreshes it from the rotated factor, and finalize never reads it.
      const index_t ngroups = (nact + lanes - 1) / lanes;
      batch_simd_stats::detail::add_jacobi_groups(
          static_cast<std::uint64_t>(ngroups));
      parallel_for_static(ngroups, [&](index_t gj) {
        const index_t j0 = gj * lanes;
        const index_t nl = std::min(lanes, nact - j0);
        const std::size_t ncnt =
            static_cast<std::size_t>(n) * n * static_cast<std::size_t>(lanes);
        T* buf = interleave_workspace<T>(2 * ncnt);
        T* g_il = buf;
        T* r_il = g_il + ncnt;
        T* gp[kMaxBatchLanes];
        T* rp[kMaxBatchLanes];
        for (index_t l = 0; l < nl; ++l) {
          const index_t i = active[static_cast<std::size_t>(j0 + l)];
          gp[l] = g + i * n * n;
          rp[l] = r + i * n * n;
        }
        batch_interleave<T>(n, n, gp, n, nl, lanes, g_il);
        bool rot[kMaxBatchLanes] = {};
        jacobi_sweep_batch<T>(n, g_il, r_il, tol, lanes, rot);
        batch_deinterleave<T>(n, n, r_il, lanes, nl, rp, n);
        for (index_t l = 0; l < nl; ++l)
          rotated[static_cast<std::size_t>(
              active[static_cast<std::size_t>(j0 + l)])] = rot[l] ? 1 : 0;
      });
      // Apply the accumulated rotations: w_i <- w_i * R_i and v_i <- v_i *
      // R_i for every problem that rotated (R_i = I elsewhere — skipping is
      // exact), in ONE pool launch of the in-place narrow-product kernel
      // (the packed engine would need a separate C plus a copy-back pass,
      // doubling the tall factor's per-sweep traffic).
      rlist.clear();
      for (const index_t i : active)
        if (rotated[static_cast<std::size_t>(i)]) rlist.push_back(i);
      const index_t nrot = static_cast<index_t>(rlist.size());
      if (nrot > 0) {
        DeviceContext::global().record_launch();
        parallel_for_static(nrot, [&](index_t j) {
          const index_t i = rlist[static_cast<std::size_t>(j)];
          const T* ri = r + i * n * n;
          gemm_right_inplace<T>(m, n, a + i * stride_a, lda, ri, n);
          gemm_right_inplace<T>(n, n, v + i * stride_v, ldv, ri, n);
        });
        FlopCounter::instance().add(
            FlopCounter::kGemm,
            static_cast<std::uint64_t>(nrot) *
                (FlopCounter::gemm_flops<T>(m, n, n) +
                 FlopCounter::gemm_flops<T>(n, n, n)));
      }
    } else {
      parallel_for_static(nact, [&](index_t j) {
        const index_t i = active[static_cast<std::size_t>(j)];
        MatrixView<T> wi{a + i * stride_a, m, n, lda};
        MatrixView<T> vi{v + i * stride_v, n, n, ldv};
        MatrixView<T> gi{g + i * n * n, n, n, n};
        rotated[static_cast<std::size_t>(i)] =
            jacobi_sweep_gram<T>(wi, vi, gi, tol) ? 1 : 0;
      });
    }
    ++info.sweeps;
    std::erase_if(active,
                  [&](index_t i) { return !rotated[static_cast<std::size_t>(i)]; });
  }
  if (!active.empty() && recover) {
    // Recovery ladder: the stragglers are compacted out of the batch and
    // finished one at a time through the reference serial sweep loop with a
    // 4x budget, BEFORE the shared finalize pass below (finalize must see
    // fully rotated factors). Healing happens in place, so the batch
    // epilogue and the caller's layout are untouched.
    const int budget = std::max(4 * svd_max_sweeps(), 64);
    std::vector<index_t> still;
    Matrix<T> gram(n, n);
    for (const index_t i : active) {
      MatrixView<T> wi{a + i * stride_a, m, n, lda};
      MatrixView<T> vi{v + i * stride_v, n, n, ldv};
      bool rot = true;
      int sweeps = 0;
      while (rot && sweeps < budget) {
        gemm(Op::C, Op::N, T{1}, ConstMatrixView<T>(wi),
             ConstMatrixView<T>(wi), T{0}, gram.view());
        rot = jacobi_sweep_gram<T>(wi, vi, gram.view(), tol);
        ++sweeps;
      }
      info.sweeps = std::max(info.sweeps, sweeps);
      if (rot) {
        still.push_back(i);
      } else {
        ++info.recovered;
      }
    }
    // One recovery engagement per call (not per problem), so a single
    // injected fault that starves the whole batch still balances to
    // injected == recovered.
    if (info.recovered > 0)
      fault_stats::detail::add_recovered(fault::Site::kSvdSweeps);
    active = std::move(still);
  }
  if (!active.empty()) {
    info.nonconverged = static_cast<index_t>(active.size());
    svd_stats::detail::add_nonconverged(
        static_cast<std::uint64_t>(active.size()));
#ifndef NDEBUG
    HODLRX_REQUIRE(false, "jacobi_svd_strided_batched: "
                              << info.nonconverged << " of " << batch
                              << " problem(s) not converged after "
                              << info.sweeps
                              << " sweeps (raise HODLRX_SVD_SWEEPS)");
#endif
  }
  // Finalize launch: sort by descending singular value and normalize U.
  DeviceContext::global().record_launch();
  parallel_for_static(batch, [&](index_t i) {
    MatrixView<T> wi{a + i * stride_a, m, n, lda};
    MatrixView<T> vi{v + i * stride_v, n, n, ldv};
    jacobi_finalize<T>(wi, vi, s + i * stride_s);
  });
  return info;
}

#define HODLRX_INSTANTIATE_BATCHED(T)                                        \
  template void gemm_batched<T>(Op, Op, T,                                   \
                                std::span<const ConstMatrixView<T>>,         \
                                std::span<const ConstMatrixView<T>>, T,      \
                                std::span<const MatrixView<T>>, BatchPolicy);\
  template void gemm_strided_batched<T>(                                     \
      Op, Op, index_t, index_t, index_t, T, const T*, index_t, index_t,      \
      const T*, index_t, index_t, T, T*, index_t, index_t, index_t,          \
      BatchPolicy);                                                          \
  template void getrf_batched<T>(std::span<const MatrixView<T>>,             \
                                 std::span<index_t* const>, BatchPolicy);    \
  template void getrf_nopivot_batched<T>(std::span<const MatrixView<T>>,     \
                                         BatchPolicy);                       \
  template void trsm_batched<T>(Uplo, Diag,                                  \
                                std::span<const ConstMatrixView<T>>,         \
                                std::span<const MatrixView<T>>, BatchPolicy);\
  template void getrs_batched<T>(std::span<const ConstMatrixView<T>>,        \
                                 std::span<const index_t* const>,            \
                                 std::span<const MatrixView<T>>,             \
                                 BatchPolicy);                               \
  template void getrs_nopivot_batched<T>(std::span<const ConstMatrixView<T>>,\
                                         std::span<const MatrixView<T>>,     \
                                         BatchPolicy);                       \
  template void geqrf_strided_batched<T>(T*, index_t, index_t, index_t,      \
                                         index_t, T*, index_t, index_t,      \
                                         BatchPolicy);                       \
  template void thin_q_strided_batched<T>(T*, index_t, index_t, index_t,     \
                                          index_t, const T*, index_t,        \
                                          index_t, BatchPolicy);             \
  template SvdBatchInfo jacobi_svd_strided_batched<T>(                       \
      T*, index_t, index_t, index_t, index_t, real_t<T>*, index_t, T*,       \
      index_t, index_t, index_t, BatchPolicy, bool);

HODLRX_INSTANTIATE_BATCHED(float)
HODLRX_INSTANTIATE_BATCHED(double)
HODLRX_INSTANTIATE_BATCHED(std::complex<float>)
HODLRX_INSTANTIATE_BATCHED(std::complex<double>)

#undef HODLRX_INSTANTIATE_BATCHED

}  // namespace hodlrx
