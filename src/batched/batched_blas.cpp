#include "batched/batched_blas.hpp"

#include <complex>

#include "common/error.hpp"
#include "common/flops.hpp"
#include "common/gemm_kernel.hpp"
#include "common/parallel.hpp"
#include "common/trsm_kernel.hpp"
#include "device/device.hpp"

namespace hodlrx {

namespace {

/// Below this per-problem work (~32^3 multiply-adds) intra-problem threading
/// costs more in fork/join than it recovers; such problems always run one
/// thread per problem.
constexpr index_t kStreamMinWorkPerProblem = 32 * 32 * 32;

/// Stream mode = sequential problems, each using the whole thread pool.
/// kAuto decides on total work (batch x per-problem work), not batch count
/// alone: a level with few LARGE problems streams (so its kernels stop
/// running single-threaded), while few SMALL problems stay batched (the
/// per-problem fork/join would dominate).
bool use_stream_mode(BatchPolicy policy, index_t batch, index_t total_work) {
  switch (policy) {
    case BatchPolicy::kForceBatched: return false;
    case BatchPolicy::kForceStream: return true;
    case BatchPolicy::kAuto: {
      const index_t nt = max_threads();
      if (nt <= 1) return false;  // nothing to win from intra-problem threads
      if (batch >= nt) return false;  // enough problems to fill the pool
      return total_work / batch >= kStreamMinWorkPerProblem;
    }
  }
  return false;
}

}  // namespace

template <typename T>
void gemm_batched(Op opa, Op opb, T alpha,
                  std::span<const ConstMatrixView<T>> a,
                  std::span<const ConstMatrixView<T>> b, T beta,
                  std::span<const MatrixView<T>> c, BatchPolicy policy) {
  const index_t batch = static_cast<index_t>(c.size());
  HODLRX_REQUIRE(a.size() == c.size() && b.size() == c.size(),
                 "gemm_batched: inconsistent batch sizes");
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += c[i].rows * c[i].cols * op_cols(opa, a[i]);
  if (use_stream_mode(policy, batch, total_work)) {
    for (index_t i = 0; i < batch; ++i)
      gemm_parallel(opa, opb, alpha, a[i], b[i], beta, c[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) {
      gemm(opa, opb, alpha, a[i], b[i], beta, c[i]);
    });
  }
}

template <typename T>
void gemm_strided_batched(Op opa, Op opb, index_t m, index_t n, index_t k,
                          T alpha, const T* a, index_t lda, index_t stride_a,
                          const T* b, index_t ldb, index_t stride_b, T beta,
                          T* c, index_t ldc, index_t stride_c, index_t batch,
                          BatchPolicy policy) {
  if (batch == 0 || m == 0 || n == 0) return;
  DeviceContext::global().record_launch();
  const index_t ar = (opa == Op::N) ? m : k, ac = (opa == Op::N) ? k : m;
  const index_t br = (opb == Op::N) ? k : n, bc = (opb == Op::N) ? n : k;
  // Shared-operand fast path: a zero stride means every problem in the batch
  // reads the same operand (the paper's constant-rank padding makes this the
  // dominant shape). Pack that operand ONCE per launch and let every problem
  // multiply against the shared pack; only the per-problem operand is packed
  // per problem (into thread-local workspace).
  if (policy == BatchPolicy::kAuto && batch > 1 && k > 0 &&
      (stride_a == 0) != (stride_b == 0) &&
      use_packed_gemm(opa, opb, m, n, k)) {
    if (stride_b == 0) {
      const PackedMatrix<T> bp =
          pack_b_full<T>(opb, ConstMatrixView<T>(b, br, bc, ldb));
      parallel_for_static(batch, [&](index_t i) {
        ConstMatrixView<T> ai(a + i * stride_a, ar, ac, lda);
        MatrixView<T> ci{c + i * stride_c, m, n, ldc};
        gemm_prepacked_b<T>(opa, alpha, ai, bp, beta, ci);
      });
    } else {
      const PackedMatrix<T> ap =
          pack_a_full<T>(opa, ConstMatrixView<T>(a, ar, ac, lda));
      parallel_for_static(batch, [&](index_t i) {
        ConstMatrixView<T> bi(b + i * stride_b, br, bc, ldb);
        MatrixView<T> ci{c + i * stride_c, m, n, ldc};
        gemm_prepacked_a<T>(ap, alpha, opb, bi, beta, ci);
      });
    }
    FlopCounter::instance().add(
        FlopCounter::kGemm,
        static_cast<std::uint64_t>(batch) *
            FlopCounter::gemm_flops<T>(m, n, k));
    return;
  }
  auto run = [&](index_t i, bool threaded) {
    ConstMatrixView<T> ai(a + i * stride_a, ar, ac, lda);
    ConstMatrixView<T> bi(b + i * stride_b, br, bc, ldb);
    MatrixView<T> ci{c + i * stride_c, m, n, ldc};
    if (threaded)
      gemm_parallel(opa, opb, alpha, ai, bi, beta, ci);
    else
      gemm(opa, opb, alpha, ai, bi, beta, ci);
  };
  if (use_stream_mode(policy, batch, batch * m * n * k)) {
    for (index_t i = 0; i < batch; ++i) run(i, true);
  } else {
    parallel_for_static(batch, [&](index_t i) { run(i, false); });
  }
}

template <typename T>
void getrf_batched(std::span<const MatrixView<T>> a,
                   std::span<index_t* const> ipiv, BatchPolicy policy) {
  HODLRX_REQUIRE(a.size() == ipiv.size(), "getrf_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(a.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i) {
    const index_t p = std::min(a[i].rows, a[i].cols);
    total_work += p * p * p / 3;  // ~getrf multiply-adds
  }
  if (use_stream_mode(policy, batch, total_work)) {
    // Few large problems: run them one after another, each with a blocked
    // right-looking LU whose trailing GEMM update uses the whole pool.
    for (index_t i = 0; i < batch; ++i) getrf_parallel(a[i], ipiv[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) { getrf(a[i], ipiv[i]); });
  }
}

template <typename T>
void getrf_nopivot_batched(std::span<const MatrixView<T>> a,
                           BatchPolicy policy) {
  const index_t batch = static_cast<index_t>(a.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i) {
    const index_t p = std::min(a[i].rows, a[i].cols);
    total_work += p * p * p / 3;
  }
  if (use_stream_mode(policy, batch, total_work)) {
    for (index_t i = 0; i < batch; ++i) getrf_nopivot_parallel(a[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) { getrf_nopivot(a[i]); });
  }
}

template <typename T>
void trsm_batched(Uplo uplo, Diag diag, std::span<const ConstMatrixView<T>> a,
                  std::span<const MatrixView<T>> b, BatchPolicy policy) {
  HODLRX_REQUIRE(a.size() == b.size(), "trsm_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += a[i].rows * a[i].rows * b[i].cols;
  if (use_stream_mode(policy, batch, total_work)) {
    // Few large problems: sequential problems, RHS columns of each split
    // across the pool (trsm_left_parallel accounts the flops).
    for (index_t i = 0; i < batch; ++i)
      trsm_left_parallel<T>(uplo, diag, a[i], b[i]);
  } else {
    parallel_for_static(batch, [&](index_t i) {
      trsm_left(uplo, diag, a[i], b[i]);
    });
  }
}

template <typename T>
void getrs_batched(std::span<const ConstMatrixView<T>> lu,
                   std::span<const index_t* const> ipiv,
                   std::span<const MatrixView<T>> b, BatchPolicy policy) {
  HODLRX_REQUIRE(lu.size() == b.size() && ipiv.size() == b.size(),
                 "getrs_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += lu[i].rows * lu[i].rows * b[i].cols;
  if (use_stream_mode(policy, batch, total_work)) {
    // Pivots applied once per problem, then blocked L/U solves with the RHS
    // columns split across the pool.
    for (index_t i = 0; i < batch; ++i) getrs_parallel(lu[i], ipiv[i], b[i]);
  } else {
    parallel_for_static(batch,
                        [&](index_t i) { getrs(lu[i], ipiv[i], b[i]); });
  }
}

template <typename T>
void getrs_nopivot_batched(std::span<const ConstMatrixView<T>> lu,
                           std::span<const MatrixView<T>> b,
                           BatchPolicy policy) {
  HODLRX_REQUIRE(lu.size() == b.size(), "getrs_nopivot_batched: batch mismatch");
  const index_t batch = static_cast<index_t>(b.size());
  if (batch == 0) return;
  DeviceContext::global().record_launch();
  index_t total_work = 0;
  for (index_t i = 0; i < batch; ++i)
    total_work += lu[i].rows * lu[i].rows * b[i].cols;
  if (use_stream_mode(policy, batch, total_work)) {
    for (index_t i = 0; i < batch; ++i) getrs_nopivot_parallel(lu[i], b[i]);
  } else {
    parallel_for_static(batch,
                        [&](index_t i) { getrs_nopivot(lu[i], b[i]); });
  }
}

#define HODLRX_INSTANTIATE_BATCHED(T)                                        \
  template void gemm_batched<T>(Op, Op, T,                                   \
                                std::span<const ConstMatrixView<T>>,         \
                                std::span<const ConstMatrixView<T>>, T,      \
                                std::span<const MatrixView<T>>, BatchPolicy);\
  template void gemm_strided_batched<T>(                                     \
      Op, Op, index_t, index_t, index_t, T, const T*, index_t, index_t,      \
      const T*, index_t, index_t, T, T*, index_t, index_t, index_t,          \
      BatchPolicy);                                                          \
  template void getrf_batched<T>(std::span<const MatrixView<T>>,             \
                                 std::span<index_t* const>, BatchPolicy);    \
  template void getrf_nopivot_batched<T>(std::span<const MatrixView<T>>,     \
                                         BatchPolicy);                       \
  template void trsm_batched<T>(Uplo, Diag,                                  \
                                std::span<const ConstMatrixView<T>>,         \
                                std::span<const MatrixView<T>>, BatchPolicy);\
  template void getrs_batched<T>(std::span<const ConstMatrixView<T>>,        \
                                 std::span<const index_t* const>,            \
                                 std::span<const MatrixView<T>>,             \
                                 BatchPolicy);                               \
  template void getrs_nopivot_batched<T>(std::span<const ConstMatrixView<T>>,\
                                         std::span<const MatrixView<T>>,     \
                                         BatchPolicy);

HODLRX_INSTANTIATE_BATCHED(float)
HODLRX_INSTANTIATE_BATCHED(double)
HODLRX_INSTANTIATE_BATCHED(std::complex<float>)
HODLRX_INSTANTIATE_BATCHED(std::complex<double>)

#undef HODLRX_INSTANTIATE_BATCHED

}  // namespace hodlrx
