#pragma once

#include "common/blas.hpp"
#include "common/matrix.hpp"
#include "common/workspace.hpp"

/// \file interleave.hpp
/// The problem-major <-> lane-major transpose pair behind the across-batch
/// SIMD kernels (batch_kernels.hpp).
///
/// Lane-major layout: element (i, j) of the `w` problems of one lane group
/// is stored contiguously,
///
///     buf[(i + j * rows) * w + lane],   lane = 0 .. w-1,
///
/// i.e. the batch index becomes the fastest-varying (vector) dimension, so a
/// kernel loop over `lane` touches `w` problems with one unit-stride vector
/// op — the CPU analogue of the warp-per-problem batched GPU kernels.
///
/// Groups are formed from `w` consecutive (or gathered — the Jacobi active
/// set compacts) problems; a partial last group zero-fills its dead lanes.
/// All-zero lanes are benign in every consumer: Householder generation
/// early-outs on a zero column, the Jacobi pair test skips on a zero Gram
/// entry, and a zero GEMM lane just computes zeros nobody reads back.
///
/// Staging buffers come from the thread-local WorkspaceArena through a
/// DEDICATED slot (kInterleave): batched launches park live per-launch
/// workspace in the owner thread's kScratch while that same thread also
/// executes group tasks, so interleave staging must not grow kScratch from
/// under it. Growth still runs through WorkspaceArena::get — the
/// fault-injected, drop-all-slots-and-retry allocation path — so the
/// breakdown-recovery coverage of workspace.alloc extends to this slot.

namespace hodlrx {

/// Lane-group staging buffer of at least `count` elements of T, from the
/// calling thread's arena (kInterleave slot). Same lifetime rules as every
/// arena buffer: valid until the next larger interleave_workspace call on
/// this thread. One call per group task — carve sub-buffers by offset.
template <typename T>
inline T* interleave_workspace(std::size_t count) {
  return WorkspaceArena::local().get<T>(count, WorkspaceArena::kInterleave);
}

/// Gather `nlanes` problem matrices (rows x cols each, column stride `ld`,
/// lane l at src[l]) into the lane-major buffer `dst` (capacity
/// rows * cols * w). Lanes nlanes..w-1 are zero-filled.
template <typename T>
void batch_interleave(index_t rows, index_t cols, const T* const* src,
                      index_t ld, index_t nlanes, index_t w, T* dst);

/// As batch_interleave, but reading op(X): `rows x cols` is the shape of
/// op(X) and the transpose/conjugation is absorbed during the gather (the
/// same trick the GEMM packing routines use), so the lane kernels only ever
/// see the Op::N layout.
template <typename T>
void batch_interleave_op(Op op, index_t rows, index_t cols,
                         const T* const* src, index_t ld, index_t nlanes,
                         index_t w, T* dst);

/// Scatter the first `nlanes` lanes of the lane-major buffer `src` back to
/// the problem matrices dst[l] (rows x cols, column stride ld). Dead lanes
/// are simply not read.
template <typename T>
void batch_deinterleave(index_t rows, index_t cols, const T* src, index_t w,
                        index_t nlanes, T* const* dst, index_t ld);

/// Scatter with the BLAS update fused in: dst[l] = alpha * lane_l(src) +
/// beta * dst[l] (beta == 0 overwrites without reading, matching gemm's
/// beta semantics on uninitialized C). This is how the across-batch
/// small-GEMM path applies alpha/beta — C is never interleaved in.
template <typename T>
void batch_deinterleave_axpby(T alpha, index_t rows, index_t cols,
                              const T* src, index_t w, index_t nlanes, T beta,
                              T* const* dst, index_t ld);

}  // namespace hodlrx
