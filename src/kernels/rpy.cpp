#include "kernels/rpy.hpp"

#include <complex>

namespace hodlrx {

template <typename T>
RpyKernel3D<T>::RpyKernel3D(PointSet pts, RpyParams params)
    : pts_(std::move(pts)), p_(params) {
  HODLRX_REQUIRE(pts_.dim == 3, "RpyKernel3D needs 3-D points");
  if (p_.a <= 0) p_.a = 0.5 * min_pairwise_distance(pts_);
  HODLRX_REQUIRE(p_.a > 0, "RpyKernel3D: coincident points");
  far_coef_ = p_.kT / (8 * kPi * p_.eta);
  near_coef_ = p_.kT / (6 * kPi * p_.eta * p_.a);
}

template <typename T>
T RpyKernel3D<T>::entry(index_t i, index_t j) const {
  const index_t pi = i / 3, di = i % 3;
  const index_t pj = j / 3, dj = j % 3;
  const double delta = (di == dj) ? 1.0 : 0.0;
  if (pi == pj) return static_cast<T>(near_coef_ * delta);

  double rv[3];
  for (int d = 0; d < 3; ++d) rv[d] = pts_.coord(pi, d) - pts_.coord(pj, d);
  const double r2 = rv[0] * rv[0] + rv[1] * rv[1] + rv[2] * rv[2];
  const double r = std::sqrt(r2);
  const double rr = rv[di] * rv[dj];  // r (x) r component

  if (r >= 2 * p_.a) {
    const double hat = rr / r2;
    const double c = 2 * p_.a * p_.a / (3 * r2);
    return static_cast<T>(far_coef_ / r * (delta + hat + c * (delta - 3 * hat)));
  }
  return static_cast<T>(near_coef_ * ((1.0 - 9.0 * r / (32.0 * p_.a)) * delta +
                                      3.0 / (32.0 * p_.a) * rr / r));
}

Rpy3DTree build_rpy3d_tree(const PointSet& pts, index_t leaf_particles) {
  GeometricTree g = build_kd_tree(pts, leaf_particles);
  Rpy3DTree out;
  out.perm = std::move(g.perm);
  out.points = std::move(g.points);
  // Scale every node range by the 3 DOFs per particle.
  std::vector<ClusterNode> nodes(g.tree.num_nodes());
  for (index_t i = 0; i < g.tree.num_nodes(); ++i)
    nodes[i] = {3 * g.tree.node(i).begin, 3 * g.tree.node(i).end};
  out.tree = ClusterTree::from_ranges(std::move(nodes), g.tree.depth());
  return out;
}

template class RpyKernel3D<float>;
template class RpyKernel3D<double>;

}  // namespace hodlrx
