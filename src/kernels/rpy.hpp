#pragma once

#include "kernels/kernels.hpp"
#include "tree/cluster_tree.hpp"

/// \file rpy.hpp
/// The Rotne-Prager-Yamakawa (RPY) tensor kernel of paper eq. (18), used in
/// Brownian-dynamics simulations (Sec. IV-A). Two variants:
///
///  - `RpyKernel1D`: the paper's benchmark configuration — points drawn
///    uniformly from [-1, 1] (so r is a scalar and the tensor collapses to a
///    scalar kernel), k = T = eta = 1, a = |r|_min / 2;
///  - `RpyKernel3D`: the full 3x3 tensor over points in R^3, giving a
///    3N x 3N block matrix (three degrees of freedom per particle).

namespace hodlrx {

struct RpyParams {
  double kT = 1.0;   ///< k * T
  double eta = 1.0;  ///< viscosity
  double a = 0.0;    ///< bead radius (0: derive as |r|_min / 2)
};

/// Scalar RPY kernel on 1-D points (the tensor collapses: r^ (x) r^ = 1).
template <typename T>
class RpyKernel1D final : public PointKernelBase<T, RpyKernel1D<T>> {
 public:
  RpyKernel1D(PointSet pts, RpyParams params = {})
      : PointKernelBase<T, RpyKernel1D<T>>(std::move(pts)), p_(params) {
    HODLRX_REQUIRE(this->pts_.dim == 1, "RpyKernel1D needs 1-D points");
    if (p_.a <= 0) p_.a = 0.5 * min_pairwise_distance(this->pts_);
    HODLRX_REQUIRE(p_.a > 0, "RpyKernel1D: coincident points");
    far_coef_ = p_.kT / (8 * kPi * p_.eta);
    near_coef_ = p_.kT / (6 * kPi * p_.eta * p_.a);
  }

  T eval(index_t i, index_t j) const {
    const double r = std::abs(this->pts_.coord(i, 0) - this->pts_.coord(j, 0));
    if (r >= 2 * p_.a)
      return static_cast<T>(far_coef_ / r *
                            (2.0 - 4.0 * p_.a * p_.a / (3.0 * r * r)));
    return static_cast<T>(near_coef_ * (1.0 - 3.0 * r / (16.0 * p_.a)));
  }

  const RpyParams& params() const { return p_; }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  RpyParams p_;
  double far_coef_ = 0, near_coef_ = 0;
};

/// Full 3x3 RPY tensor over 3-D points: a 3N x 3N generator; index i maps
/// to particle i/3, Cartesian component i%3.
template <typename T>
class RpyKernel3D final : public MatrixGenerator<T> {
 public:
  explicit RpyKernel3D(PointSet pts, RpyParams params = {});

  index_t rows() const override { return 3 * pts_.size(); }
  index_t cols() const override { return 3 * pts_.size(); }
  T entry(index_t i, index_t j) const override;

  const RpyParams& params() const { return p_; }
  const PointSet& points() const { return pts_; }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  PointSet pts_;
  RpyParams p_;
  double far_coef_ = 0, near_coef_ = 0;
};

/// Build a geometric cluster tree over particles and scale the index ranges
/// by 3 so sibling blocks respect particle boundaries (3 DOFs per point).
struct Rpy3DTree {
  ClusterTree tree;           ///< over the 3N matrix indices
  std::vector<index_t> perm;  ///< particle permutation (length N)
  PointSet points;            ///< permuted particles
};
Rpy3DTree build_rpy3d_tree(const PointSet& pts, index_t leaf_particles);

}  // namespace hodlrx
