#include "kernels/kernels.hpp"

#include <algorithm>
#include <limits>
#include <random>

namespace hodlrx {

PointSet uniform_random_points(index_t n, index_t dim, double lo, double hi,
                               std::uint64_t seed) {
  PointSet pts(dim, n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (index_t i = 0; i < n; ++i)
    for (index_t d = 0; d < dim; ++d) pts.coord(i, d) = dist(rng);
  return pts;
}

double min_pairwise_distance(const PointSet& pts) {
  const index_t n = pts.size();
  if (n < 2) return 0;
  if (pts.dim == 1) {
    std::vector<double> x(pts.xyz);
    std::sort(x.begin(), x.end());
    double best = std::numeric_limits<double>::infinity();
    for (index_t i = 1; i < n; ++i) best = std::min(best, x[i] - x[i - 1]);
    return best;
  }
  // Higher dimensions: nearest neighbor among a bounded window after sorting
  // along the first coordinate (adequate for the regularization use case).
  std::vector<index_t> order(n);
  for (index_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return pts.coord(a, 0) < pts.coord(b, 0);
  });
  double best2 = std::numeric_limits<double>::infinity();
  const index_t window = std::min<index_t>(n - 1, 32);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j <= std::min(n - 1, i + window); ++j)
      best2 = std::min(best2, pts.dist2(order[i], order[j]));
  return std::sqrt(best2);
}

}  // namespace hodlrx
