#pragma once

#include <cmath>

#include "lowrank/generator.hpp"
#include "tree/points.hpp"

/// \file kernels.hpp
/// Kernel-matrix generators K(i, j) = k(y_i, y_j) over a point set — the
/// machine-learning / data-assimilation matrices of paper Sec. I(a).
/// A CRTP base devirtualizes the per-entry call inside the bulk fills.

namespace hodlrx {

/// CRTP base: Derived must provide `T eval(index_t i, index_t j) const`.
template <typename T, typename Derived>
class PointKernelBase : public MatrixGenerator<T> {
 public:
  explicit PointKernelBase(PointSet pts) : pts_(std::move(pts)) {}

  index_t rows() const final { return pts_.size(); }
  index_t cols() const final { return pts_.size(); }
  T entry(index_t i, index_t j) const final { return derived().eval(i, j); }
  void fill_row(index_t i, index_t j0, index_t j1, T* out) const final {
    for (index_t j = j0; j < j1; ++j) out[j - j0] = derived().eval(i, j);
  }
  void fill_col(index_t j, index_t i0, index_t i1, T* out) const final {
    for (index_t i = i0; i < i1; ++i) out[i - i0] = derived().eval(i, j);
  }

  const PointSet& points() const { return pts_; }

 protected:
  const Derived& derived() const { return static_cast<const Derived&>(*this); }
  PointSet pts_;
};

/// Gaussian kernel exp(-|r|^2 / (2 s^2)) with a diagonal shift (ridge).
template <typename T>
class GaussianKernel final : public PointKernelBase<T, GaussianKernel<T>> {
 public:
  GaussianKernel(PointSet pts, double scale, double diag_shift = 0)
      : PointKernelBase<T, GaussianKernel<T>>(std::move(pts)),
        inv2s2_(1.0 / (2 * scale * scale)),
        shift_(diag_shift) {}
  T eval(index_t i, index_t j) const {
    const double d2 = this->pts_.dist2(i, j);
    const double v = std::exp(-d2 * inv2s2_);
    return static_cast<T>(i == j ? v + shift_ : v);
  }

 private:
  double inv2s2_, shift_;
};

/// Exponential kernel exp(-|r| / s) (Matern nu=1/2).
template <typename T>
class ExponentialKernel final
    : public PointKernelBase<T, ExponentialKernel<T>> {
 public:
  ExponentialKernel(PointSet pts, double scale, double diag_shift = 0)
      : PointKernelBase<T, ExponentialKernel<T>>(std::move(pts)),
        inv_s_(1.0 / scale),
        shift_(diag_shift) {}
  T eval(index_t i, index_t j) const {
    const double r = std::sqrt(this->pts_.dist2(i, j));
    const double v = std::exp(-r * inv_s_);
    return static_cast<T>(i == j ? v + shift_ : v);
  }

 private:
  double inv_s_, shift_;
};

/// Matern nu=3/2 kernel (1 + sqrt(3) r/s) exp(-sqrt(3) r/s).
template <typename T>
class Matern32Kernel final : public PointKernelBase<T, Matern32Kernel<T>> {
 public:
  Matern32Kernel(PointSet pts, double scale, double diag_shift = 0)
      : PointKernelBase<T, Matern32Kernel<T>>(std::move(pts)),
        inv_s_(std::sqrt(3.0) / scale),
        shift_(diag_shift) {}
  T eval(index_t i, index_t j) const {
    const double t = std::sqrt(this->pts_.dist2(i, j)) * inv_s_;
    const double v = (1 + t) * std::exp(-t);
    return static_cast<T>(i == j ? v + shift_ : v);
  }

 private:
  double inv_s_, shift_;
};

/// Matern nu=5/2 kernel (1 + t + t^2/3) exp(-t), t = sqrt(5) r/s.
template <typename T>
class Matern52Kernel final : public PointKernelBase<T, Matern52Kernel<T>> {
 public:
  Matern52Kernel(PointSet pts, double scale, double diag_shift = 0)
      : PointKernelBase<T, Matern52Kernel<T>>(std::move(pts)),
        inv_s_(std::sqrt(5.0) / scale),
        shift_(diag_shift) {}
  T eval(index_t i, index_t j) const {
    const double t = std::sqrt(this->pts_.dist2(i, j)) * inv_s_;
    const double v = (1 + t + t * t / 3.0) * std::exp(-t);
    return static_cast<T>(i == j ? v + shift_ : v);
  }

 private:
  double inv_s_, shift_;
};

/// Inverse multiquadric 1 / sqrt(1 + (r/s)^2).
template <typename T>
class InverseMultiquadricKernel final
    : public PointKernelBase<T, InverseMultiquadricKernel<T>> {
 public:
  InverseMultiquadricKernel(PointSet pts, double scale, double diag_shift = 0)
      : PointKernelBase<T, InverseMultiquadricKernel<T>>(std::move(pts)),
        inv_s2_(1.0 / (scale * scale)),
        shift_(diag_shift) {}
  T eval(index_t i, index_t j) const {
    const double v = 1.0 / std::sqrt(1.0 + this->pts_.dist2(i, j) * inv_s2_);
    return static_cast<T>(i == j ? v + shift_ : v);
  }

 private:
  double inv_s2_, shift_;
};

/// Uniform random points in [lo, hi]^dim (the paper's Sec. IV-A setup is
/// dim=1, lo=-1, hi=1).
PointSet uniform_random_points(index_t n, index_t dim, double lo, double hi,
                               std::uint64_t seed);

/// Minimum pairwise distance |r|_min; exact O(n log n) for dim=1, sampled
/// for higher dimensions (used for the RPY regularization a = |r|_min / 2).
double min_pairwise_distance(const PointSet& pts);

}  // namespace hodlrx
