#pragma once

#include <algorithm>
#include <span>

#include "common/blas.hpp"
#include "common/matrix.hpp"

/// \file lowrank.hpp
/// The low-rank factor pair `A ~= U V^H` used for every HODLR off-diagonal
/// block (paper eq. 5: A(I_a, I_b) = U_a V_b^*).

namespace hodlrx {

template <typename T>
struct LowRankFactor {
  Matrix<T> u;  ///< m x r
  Matrix<T> v;  ///< n x r (the block is u * v^H)

  index_t rank() const { return u.cols(); }
  index_t rows() const { return u.rows(); }
  index_t cols() const { return v.rows(); }

  /// Dense reconstruction u * v^H (validation helper).
  Matrix<T> reconstruct() const {
    Matrix<T> a(rows(), cols());
    if (rank() > 0) gemm(Op::N, Op::C, T{1}, u, v, T{0}, a.view());
    return a;
  }

  std::size_t bytes() const { return u.bytes() + v.bytes(); }
};

/// The ONE truncation rule shared by every compressor (rsvd single-block,
/// the batched compression sweep, recompress): cap the rank at `max_rank`
/// first (< 0 means uncapped), then keep the leading singular values
/// STRICTLY above `tol * s[0]` — the tolerance is RELATIVE to the largest
/// singular value of this block, so a zero block truncates to rank 0 and
/// `tol <= 0` keeps everything up to the cap. `s[0..count)` must be
/// descending. Extracted because rsvd and recompress had drifted (recompress
/// ignored the rank cap entirely).
template <typename R>
index_t truncate_rank(const R* s, index_t count, index_t max_rank, R tol) {
  index_t k = max_rank >= 0 ? std::min(count, max_rank) : count;
  if (tol > R{0} && count > 0) {
    const R cut = tol * s[0];
    index_t kk = 0;
    while (kk < k && s[kk] > cut) ++kk;
    k = kk;
  }
  return k;
}

/// Shared truncation epilogue of the batched compressors (the rsvd sweep
/// and recompress_batched): per problem apply truncate_rank to
/// `sig + i*width`, fold S_ik into the first k_i columns of the width x
/// width rotation factors `w` (one elementwise pool launch), run the
/// truncated left products U_i = Q_i (W_i S_i) for the WHOLE batch as ONE
/// strided GEMM launch at the uniform width, and gather
/// `out[i] = (U_i[:, :k_i], vsrc_i[:, :k_i])` in one batched copy-out
/// launch. `q` holds the m x width left bases and `vsrc` the n x width
/// right-vector sources, both at their natural contiguous strides.
/// Implemented in rsvd.cpp.
template <typename T>
void truncated_products_batched(const T* q, index_t m, const T* vsrc,
                                index_t n, T* w, index_t width,
                                const real_t<T>* sig, index_t batch,
                                index_t max_rank, real_t<T> tol,
                                std::span<LowRankFactor<T>> out);

}  // namespace hodlrx
