#pragma once

#include "common/blas.hpp"
#include "common/matrix.hpp"

/// \file lowrank.hpp
/// The low-rank factor pair `A ~= U V^H` used for every HODLR off-diagonal
/// block (paper eq. 5: A(I_a, I_b) = U_a V_b^*).

namespace hodlrx {

template <typename T>
struct LowRankFactor {
  Matrix<T> u;  ///< m x r
  Matrix<T> v;  ///< n x r (the block is u * v^H)

  index_t rank() const { return u.cols(); }
  index_t rows() const { return u.rows(); }
  index_t cols() const { return v.rows(); }

  /// Dense reconstruction u * v^H (validation helper).
  Matrix<T> reconstruct() const {
    Matrix<T> a(rows(), cols());
    if (rank() > 0) gemm(Op::N, Op::C, T{1}, u, v, T{0}, a.view());
    return a;
  }

  std::size_t bytes() const { return u.bytes() + v.bytes(); }
};

}  // namespace hodlrx
