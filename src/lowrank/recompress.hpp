#pragma once

#include "lowrank/lowrank.hpp"

/// \file recompress.hpp
/// Rank re-truncation of a low-rank pair: QR both factors, SVD the small
/// core, keep singular values above `tol` relative to the largest. ACA
/// over-estimates ranks slightly; recompression restores near-optimal ones
/// (this is what keeps the paper's per-level rank ladders tight).

namespace hodlrx {

/// In-place: factor <- truncated factor with V orthonormal.
/// Returns the new rank.
template <typename T>
index_t recompress(LowRankFactor<T>& factor, real_t<T> tol);

}  // namespace hodlrx
