#pragma once

#include <span>

#include "lowrank/lowrank.hpp"

/// \file recompress.hpp
/// Rank re-truncation of a low-rank pair: QR both factors, SVD the small
/// core, truncate with the shared truncate_rank rule (rank cap first, then
/// singular values relative to the block's largest). ACA over-estimates
/// ranks slightly; recompression restores near-optimal ones (this is what
/// keeps the paper's per-level rank ladders tight).

namespace hodlrx {

/// In-place: factor <- truncated factor. `tol` is relative to the largest
/// singular value of the CORE (truncate_rank semantics); `max_rank < 0`
/// means uncapped. Returns the new rank.
template <typename T>
index_t recompress(LowRankFactor<T>& factor, real_t<T> tol,
                   index_t max_rank = -1);

/// Batched recompression of factors with UNIFORM outer shape (equal
/// rows/cols; ranks may differ — every factor is zero-padded to the batch's
/// max rank, which leaves the nonzero singular values of its core
/// untouched). The whole batch runs on the device model: strided-batched QR
/// of all U and V panels, cores via one strided GEMM launch, the
/// sweep-synchronized batched Jacobi SVD, the shared truncate_rank rule,
/// and the truncated products Qu (W S) / Qv V as two more strided GEMM
/// launches — this is how the construction stage recompresses a uniform
/// tree level without per-block pool tasks.
template <typename T>
void recompress_batched(std::span<LowRankFactor<T>> factors, real_t<T> tol,
                        index_t max_rank = -1);

}  // namespace hodlrx
