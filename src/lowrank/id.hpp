#pragma once

#include <vector>

#include "common/lapack.hpp"
#include "common/matrix.hpp"

/// \file id.hpp
/// Interpolative decompositions via column-pivoted QR. The row ID is the
/// primitive behind the proxy-surface compression used for the BIE
/// experiments (paper Sec. IV-B/IV-C, citing Martinsson's book ch. 17).

namespace hodlrx {

/// Column ID: A ~= A(:, skeleton) * interp, where interp is rank x n with
/// an identity on the skeleton columns.
template <typename T>
struct ColumnID {
  std::vector<index_t> skeleton;  ///< `rank` column indices into A
  Matrix<T> interp;               ///< rank x cols(A)
};

template <typename T>
ColumnID<T> column_id(ConstMatrixView<T> a, real_t<T> tol, index_t max_rank);

/// Row ID: A ~= interp * A(skeleton, :), interp is m x rank with an
/// identity on the skeleton rows.
template <typename T>
struct RowID {
  std::vector<index_t> skeleton;  ///< `rank` row indices into A
  Matrix<T> interp;               ///< rows(A) x rank
};

template <typename T>
RowID<T> row_id(ConstMatrixView<T> a, real_t<T> tol, index_t max_rank);

}  // namespace hodlrx
