#pragma once

#include "common/matrix.hpp"

/// \file generator.hpp
/// Entry-evaluator interface for implicitly defined matrices. HODLR
/// construction never materializes the full N x N matrix: compressors pull
/// individual rows/columns of off-diagonal blocks through this interface.

namespace hodlrx {

/// Counters over generator usage (relaxed atomics, process-wide). The
/// batched generator-backed HODLR build materializes off-diagonal blocks
/// tile-by-tile and must never fall back to a full dense materialization;
/// tests pin that contract by asserting full_materializations() stays flat
/// across a build.
namespace generator_stats {
/// Whole-matrix materializations (calls to materialize(g)).
std::uint64_t full_materializations();
void reset();
namespace detail {
void record_full_materialization();
}  // namespace detail
}  // namespace generator_stats

/// An implicitly defined `rows() x cols()` matrix.
template <typename T>
class MatrixGenerator {
 public:
  virtual ~MatrixGenerator() = default;

  virtual index_t rows() const = 0;
  virtual index_t cols() const = 0;
  virtual T entry(index_t i, index_t j) const = 0;

  /// out[j - j0] = A(i, j) for j in [j0, j1). Override for speed.
  virtual void fill_row(index_t i, index_t j0, index_t j1, T* out) const {
    for (index_t j = j0; j < j1; ++j) out[j - j0] = entry(i, j);
  }
  /// out[i - i0] = A(i, j) for i in [i0, i1). Override for speed.
  virtual void fill_col(index_t j, index_t i0, index_t i1, T* out) const {
    for (index_t i = i0; i < i1; ++i) out[i - i0] = entry(i, j);
  }
  /// Materialize the sub-block [i0, i0+m) x [j0, j0+n) into `out`.
  virtual void fill_block(index_t i0, index_t j0, MatrixView<T> out) const {
    for (index_t j = 0; j < out.cols; ++j)
      fill_col(j0 + j, i0, i0 + out.rows, out.data + j * out.ld);
  }
};

/// Materialize a whole generator as a dense matrix (validation helper).
/// Counted by generator_stats: production build paths must never call this.
template <typename T>
Matrix<T> materialize(const MatrixGenerator<T>& g) {
  generator_stats::detail::record_full_materialization();
  Matrix<T> a(g.rows(), g.cols());
  g.fill_block(0, 0, a);
  return a;
}

/// A dense matrix exposed through the generator interface (tests, adapters).
template <typename T>
class DenseGenerator final : public MatrixGenerator<T> {
 public:
  explicit DenseGenerator(Matrix<T> a) : a_(std::move(a)) {}
  index_t rows() const override { return a_.rows(); }
  index_t cols() const override { return a_.cols(); }
  T entry(index_t i, index_t j) const override { return a_(i, j); }
  void fill_col(index_t j, index_t i0, index_t i1, T* out) const override {
    std::copy_n(a_.data() + i0 + j * a_.rows(), i1 - i0, out);
  }

 private:
  Matrix<T> a_;
};

}  // namespace hodlrx
