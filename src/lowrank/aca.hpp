#pragma once

#include "lowrank/generator.hpp"
#include "lowrank/lowrank.hpp"

/// \file aca.hpp
/// Adaptive Cross Approximation with partial + rook pivoting — the
/// equivalent of HODLRlib's `LowRank::rookPiv()` (an approximate
/// partially-pivoted LU), used to compress off-diagonal blocks from an
/// entry evaluator without forming them.

namespace hodlrx {

struct AcaOptions {
  double tol = 1e-12;        ///< relative Frobenius tolerance
  index_t max_rank = -1;     ///< cap (-1: min(m, n))
  int rook_iterations = 3;   ///< pivot refinement sweeps per step
  std::uint64_t seed = 7;    ///< row restarts for zero-looking blocks
};

template <typename T>
struct AcaResult {
  LowRankFactor<T> factor;
  bool converged = true;  ///< false when max_rank was hit before tol
  /// True when the cross search stagnated (the iteration guard tripped on a
  /// run of near-zero pivot rows, or the "aca.stall" fault fired) before the
  /// tolerance or the rank cap was reached. The factor still holds the
  /// achieved-rank approximation; stalled implies !converged.
  bool stalled = false;
};

/// Compress the sub-block [row0, row0+m) x [col0, col0+n) of `g`.
template <typename T>
AcaResult<T> aca(const MatrixGenerator<T>& g, index_t row0, index_t col0,
                 index_t m, index_t n, const AcaOptions& opt);

}  // namespace hodlrx
