#include "lowrank/generator.hpp"

#include <atomic>

namespace hodlrx::generator_stats {

namespace {
std::atomic<std::uint64_t> g_full{0};
}  // namespace

std::uint64_t full_materializations() {
  return g_full.load(std::memory_order_relaxed);
}

void reset() { g_full.store(0, std::memory_order_relaxed); }

namespace detail {
void record_full_materialization() {
  g_full.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace hodlrx::generator_stats
