#include "lowrank/id.hpp"

#include <complex>

#include "common/error.hpp"

namespace hodlrx {

template <typename T>
ColumnID<T> column_id(ConstMatrixView<T> a, real_t<T> tol, index_t max_rank) {
  ColumnID<T> out;
  const index_t n = a.cols;
  CPQRFactors<T> qp = geqp3(a, tol, max_rank);
  const index_t k = qp.rank;
  out.skeleton.assign(qp.jpvt.begin(), qp.jpvt.begin() + k);

  // R = [R11 R12] with R11 k x k; X = [I, R11^{-1} R12] un-permuted.
  out.interp = Matrix<T>(k, n);
  if (k == 0) return out;
  Matrix<T> r12(k, n - k);
  for (index_t j = 0; j < n - k; ++j)
    for (index_t i = 0; i < k; ++i) r12(i, j) = qp.factors(i, k + j);
  if (n - k > 0)
    trsm_left(Uplo::Upper, Diag::NonUnit, qp.factors.block(0, 0, k, k),
              r12.view());
  for (index_t i = 0; i < k; ++i) out.interp(i, qp.jpvt[i]) = T{1};
  for (index_t j = 0; j < n - k; ++j)
    for (index_t i = 0; i < k; ++i) out.interp(i, qp.jpvt[k + j]) = r12(i, j);
  return out;
}

template <typename T>
RowID<T> row_id(ConstMatrixView<T> a, real_t<T> tol, index_t max_rank) {
  // Row ID of A == column ID of A^H: A ~= (interp_c)^H * A(skel, :).
  Matrix<T> ah = transpose(a, /*conjugate=*/true);
  ColumnID<T> cid = column_id<T>(ah, tol, max_rank);
  RowID<T> out;
  out.skeleton = std::move(cid.skeleton);
  out.interp = transpose(ConstMatrixView<T>(cid.interp), /*conjugate=*/true);
  return out;
}

#define HODLRX_INSTANTIATE_ID(T)                                          \
  template ColumnID<T> column_id<T>(ConstMatrixView<T>, real_t<T>,        \
                                    index_t);                             \
  template RowID<T> row_id<T>(ConstMatrixView<T>, real_t<T>, index_t);

HODLRX_INSTANTIATE_ID(float)
HODLRX_INSTANTIATE_ID(double)
HODLRX_INSTANTIATE_ID(std::complex<float>)
HODLRX_INSTANTIATE_ID(std::complex<double>)

#undef HODLRX_INSTANTIATE_ID

}  // namespace hodlrx
