#pragma once

#include "common/fault.hpp"
#include "common/lapack.hpp"
#include "lowrank/lowrank.hpp"

/// \file rsvd.hpp
/// Randomized low-rank approximation of dense views (Halko-Martinsson-Tropp
/// style): a Gaussian range sketch, optional power iterations for spectral
/// decay, then a small deterministic SVD. Used as an alternative compressor
/// and by tests as an independent check on ACA.

namespace hodlrx {

/// Breakdown counters a batched rsvd sweep hands back to its caller (wired
/// into the FactorReport by HodlrMatrix::build).
struct RsvdBreakdowns {
  index_t svd_nonconverged = 0;  ///< problems past the budget, NOT healed
  index_t svd_recovered = 0;     ///< problems healed by the serial re-run
};

struct RsvdOptions {
  index_t rank = 0;          ///< target rank (before truncation)
  index_t oversampling = 8;  ///< extra sketch columns
  int power_iterations = 1;  ///< q in (A A^H)^q A
  std::uint64_t seed = 11;
  double tol = 0;            ///< if > 0, truncate singular values < tol*s[0]
  /// kRecover lets the batched Jacobi SVD re-run sweep-starved problems
  /// through the serial path (see jacobi_svd_strided_batched).
  OnBreakdown on_breakdown = OnBreakdown::kRecover;
  RsvdBreakdowns* breakdowns = nullptr;  ///< optional out-counters
};

/// A ~= U diag(s) V^H truncated per options; returned as a LowRankFactor
/// with the singular values folded into U.
template <typename T>
LowRankFactor<T> rsvd(ConstMatrixView<T> a, const RsvdOptions& opt);

/// Batched rsvd of `batch` uniform-shape m x n blocks laid out at a constant
/// stride (block i starts at a + i*stride_a, leading dimension lda) — the
/// production caller of the batch layer's stride-0 shared-operand fast path:
/// ALL blocks are sketched against ONE shared Gaussian test matrix G in a
/// single `gemm_strided_batched` launch (G passed with stride 0, so it is
/// packed once per launch and reused by every block). The tails are batched
/// too: orthonormalization and the power iterations run through
/// geqrf_strided_batched / thin_q_strided_batched (panel-synchronized
/// batched QR) and strided GEMM launches, the small problems form in one
/// more strided launch, their SVDs run through the sweep-synchronized
/// jacobi_svd_strided_batched, and the truncated U_i = Q_i W_ik S_ik
/// products are one strided GEMM launch — ZERO per-block pool tasks end to
/// end (svd_stats counter-asserted). Used by HodlrMatrix::build (generator
/// input, tile-by-tile materialization) and build_from_dense to compress a
/// uniform tree level in one sweep (paper Sec. III-C / ROADMAP items).
template <typename T>
std::vector<LowRankFactor<T>> rsvd_strided_batched(const T* a, index_t lda,
                                                   index_t stride_a, index_t m,
                                                   index_t n, index_t batch,
                                                   const RsvdOptions& opt);

}  // namespace hodlrx
