#pragma once

#include "common/lapack.hpp"
#include "lowrank/lowrank.hpp"

/// \file rsvd.hpp
/// Randomized low-rank approximation of dense views (Halko-Martinsson-Tropp
/// style): a Gaussian range sketch, optional power iterations for spectral
/// decay, then a small deterministic SVD. Used as an alternative compressor
/// and by tests as an independent check on ACA.

namespace hodlrx {

struct RsvdOptions {
  index_t rank = 0;          ///< target rank (before truncation)
  index_t oversampling = 8;  ///< extra sketch columns
  int power_iterations = 1;  ///< q in (A A^H)^q A
  std::uint64_t seed = 11;
  double tol = 0;            ///< if > 0, truncate singular values < tol*s[0]
};

/// A ~= U diag(s) V^H truncated per options; returned as a LowRankFactor
/// with the singular values folded into U.
template <typename T>
LowRankFactor<T> rsvd(ConstMatrixView<T> a, const RsvdOptions& opt);

}  // namespace hodlrx
