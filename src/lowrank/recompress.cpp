#include "lowrank/recompress.hpp"

#include <complex>

#include "common/lapack.hpp"

namespace hodlrx {

template <typename T>
index_t recompress(LowRankFactor<T>& factor, real_t<T> tol) {
  using R = real_t<T>;
  const index_t m = factor.rows(), n = factor.cols(), r = factor.rank();
  if (r == 0) return 0;

  QRFactors<T> qu = geqrf<T>(factor.u);
  QRFactors<T> qv = geqrf<T>(factor.v);
  Matrix<T> ru = r_factor(qu);  // ku x r
  Matrix<T> rv = r_factor(qv);  // kv x r
  Matrix<T> core(ru.rows(), rv.rows());
  gemm(Op::N, Op::C, T{1}, ConstMatrixView<T>(ru), ConstMatrixView<T>(rv),
       T{0}, core.view());
  SVDResult<T> svd = jacobi_svd<T>(core);

  index_t k = 0;
  const R cut = svd.s.empty() ? R{0} : tol * svd.s[0];
  while (k < static_cast<index_t>(svd.s.size()) && svd.s[k] > cut) ++k;

  Matrix<T> qu_full = thin_q(qu);
  Matrix<T> qv_full = thin_q(qv);
  Matrix<T> u_new(m, k), v_new(n, k);
  if (k > 0) {
    Matrix<T> wk = to_matrix(svd.u.block(0, 0, svd.u.rows(), k));
    for (index_t j = 0; j < k; ++j)
      scale_inplace(T{svd.s[j]}, wk.block(0, j, wk.rows(), 1));
    gemm(Op::N, Op::N, T{1}, ConstMatrixView<T>(qu_full),
         ConstMatrixView<T>(wk), T{0}, u_new.view());
    gemm(Op::N, Op::N, T{1}, ConstMatrixView<T>(qv_full),
         ConstMatrixView<T>(svd.v.block(0, 0, svd.v.rows(), k)), T{0},
         v_new.view());
  }
  factor.u = std::move(u_new);
  factor.v = std::move(v_new);
  return k;
}

#define HODLRX_INSTANTIATE_RECOMPRESS(T) \
  template index_t recompress<T>(LowRankFactor<T>&, real_t<T>);

HODLRX_INSTANTIATE_RECOMPRESS(float)
HODLRX_INSTANTIATE_RECOMPRESS(double)
HODLRX_INSTANTIATE_RECOMPRESS(std::complex<float>)
HODLRX_INSTANTIATE_RECOMPRESS(std::complex<double>)

#undef HODLRX_INSTANTIATE_RECOMPRESS

}  // namespace hodlrx
