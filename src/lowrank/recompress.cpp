#include "lowrank/recompress.hpp"

#include <complex>
#include <vector>

#include "batched/batched_blas.hpp"
#include "common/error.hpp"
#include "common/lapack.hpp"
#include "common/parallel.hpp"
#include "device/device.hpp"

namespace hodlrx {

template <typename T>
index_t recompress(LowRankFactor<T>& factor, real_t<T> tol,
                   index_t max_rank) {
  using R = real_t<T>;
  const index_t m = factor.rows(), n = factor.cols(), r = factor.rank();
  if (r == 0) return 0;

  QRFactors<T> qu = geqrf<T>(factor.u);
  QRFactors<T> qv = geqrf<T>(factor.v);
  Matrix<T> ru = r_factor(qu);  // ku x r
  Matrix<T> rv = r_factor(qv);  // kv x r
  Matrix<T> core(ru.rows(), rv.rows());
  gemm(Op::N, Op::C, T{1}, ConstMatrixView<T>(ru), ConstMatrixView<T>(rv),
       T{0}, core.view());
  SVDResult<T> svd = jacobi_svd<T>(core);

  const index_t k = truncate_rank<R>(
      svd.s.data(), static_cast<index_t>(svd.s.size()), max_rank, tol);

  Matrix<T> qu_full = thin_q(qu);
  Matrix<T> qv_full = thin_q(qv);
  Matrix<T> u_new(m, k), v_new(n, k);
  if (k > 0) {
    Matrix<T> wk = to_matrix(svd.u.block(0, 0, svd.u.rows(), k));
    for (index_t j = 0; j < k; ++j)
      scale_inplace(T{svd.s[j]}, wk.block(0, j, wk.rows(), 1));
    gemm(Op::N, Op::N, T{1}, ConstMatrixView<T>(qu_full),
         ConstMatrixView<T>(wk), T{0}, u_new.view());
    gemm(Op::N, Op::N, T{1}, ConstMatrixView<T>(qv_full),
         ConstMatrixView<T>(svd.v.block(0, 0, svd.v.rows(), k)), T{0},
         v_new.view());
  }
  factor.u = std::move(u_new);
  factor.v = std::move(v_new);
  return k;
}

template <typename T>
void recompress_batched(std::span<LowRankFactor<T>> factors, real_t<T> tol,
                        index_t max_rank) {
  using R = real_t<T>;
  const index_t batch = static_cast<index_t>(factors.size());
  if (batch == 0) return;
  const index_t m = factors[0].rows(), n = factors[0].cols();
  index_t rhat = 0;
  for (const LowRankFactor<T>& f : factors) {
    HODLRX_REQUIRE(f.rows() == m && f.cols() == n,
                   "recompress_batched: factors must share one outer shape");
    rhat = std::max(rhat, f.rank());
  }
  if (rhat == 0) return;
  HODLRX_REQUIRE(rhat <= std::min(m, n),
                 "recompress_batched: rank " << rhat << " exceeds block "
                                             << m << "x" << n);

  // Strided panels, every factor zero-padded to rhat columns (tau = 0
  // reflectors for the padding; the padded core gains only zero singular
  // values). One gather launch fills both sides.
  Matrix<T> ub(m, rhat * batch), vb(n, rhat * batch);
  DeviceContext::global().record_launch();
  parallel_for_static(batch, [&](index_t i) {
    const LowRankFactor<T>& f = factors[static_cast<std::size_t>(i)];
    const index_t r = f.rank();
    copy<T>(f.u.view(), MatrixView<T>{ub.data() + i * m * rhat, m, r, m});
    copy<T>(f.v.view(), MatrixView<T>{vb.data() + i * n * rhat, n, r, n});
  });

  // Batched QR of every U and V panel.
  std::vector<T> tau_u(static_cast<std::size_t>(rhat) * batch);
  std::vector<T> tau_v(static_cast<std::size_t>(rhat) * batch);
  geqrf_strided_batched<T>(ub.data(), m, m * rhat, m, rhat, tau_u.data(),
                           rhat, batch);
  geqrf_strided_batched<T>(vb.data(), n, n * rhat, n, rhat, tau_v.data(),
                           rhat, batch);

  // Stage the R factors (upper triangles; the buffers are zero-initialized),
  // then the cores C_i = Ru_i Rv_i^H in ONE strided GEMM launch.
  Matrix<T> ru(rhat, rhat * batch), rv(rhat, rhat * batch);
  DeviceContext::global().record_launch();
  parallel_for_static(batch, [&](index_t i) {
    for (index_t j = 0; j < rhat; ++j) {
      std::copy_n(ub.data() + i * m * rhat + j * m, j + 1,
                  ru.data() + i * rhat * rhat + j * rhat);
      std::copy_n(vb.data() + i * n * rhat + j * n, j + 1,
                  rv.data() + i * rhat * rhat + j * rhat);
    }
  });
  Matrix<T> core(rhat, rhat * batch);
  gemm_strided_batched<T>(Op::N, Op::C, rhat, rhat, rhat, T{1}, ru.data(),
                          rhat, rhat * rhat, rv.data(), rhat, rhat * rhat,
                          T{0}, core.data(), rhat, rhat * rhat, batch);

  // Explicit thin Qs, then the batched Jacobi SVD of all cores: core_i
  // becomes Uc_i, wv_i the right vectors.
  thin_q_strided_batched<T>(ub.data(), m, m * rhat, m, rhat, tau_u.data(),
                            rhat, batch);
  thin_q_strided_batched<T>(vb.data(), n, n * rhat, n, rhat, tau_v.data(),
                            rhat, batch);
  std::vector<R> sig(static_cast<std::size_t>(rhat) * batch);
  Matrix<T> wv(rhat, rhat * batch);
  jacobi_svd_strided_batched<T>(core.data(), rhat, rhat * rhat, rhat, rhat,
                                sig.data(), rhat, wv.data(), rhat,
                                rhat * rhat, batch);

  // The right-vector panels v_new = Qv Vc in one strided launch, then the
  // shared truncation epilogue (truncate_rank, S folded into Uc, ONE
  // strided u_new = Qu Uc_k S_k launch, batched copy-out).
  Matrix<T> vn(n, rhat * batch);
  gemm_strided_batched<T>(Op::N, Op::N, n, rhat, rhat, T{1}, vb.data(), n,
                          n * rhat, wv.data(), rhat, rhat * rhat, T{0},
                          vn.data(), n, n * rhat, batch);
  truncated_products_batched<T>(ub.data(), m, vn.data(), n, core.data(),
                                rhat, sig.data(), batch, max_rank, tol,
                                factors);
}

#define HODLRX_INSTANTIATE_RECOMPRESS(T)                                   \
  template index_t recompress<T>(LowRankFactor<T>&, real_t<T>, index_t);   \
  template void recompress_batched<T>(std::span<LowRankFactor<T>>,         \
                                      real_t<T>, index_t);

HODLRX_INSTANTIATE_RECOMPRESS(float)
HODLRX_INSTANTIATE_RECOMPRESS(double)
HODLRX_INSTANTIATE_RECOMPRESS(std::complex<float>)
HODLRX_INSTANTIATE_RECOMPRESS(std::complex<double>)

#undef HODLRX_INSTANTIATE_RECOMPRESS

}  // namespace hodlrx
