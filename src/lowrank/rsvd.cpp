#include "lowrank/rsvd.hpp"

#include <complex>

#include "batched/batched_blas.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"

namespace hodlrx {

namespace {

/// Sketch width for the options: min(m, n, rank + oversampling).
index_t sketch_width(index_t m, index_t n, const RsvdOptions& opt) {
  return std::min({m, n, opt.rank + opt.oversampling});
}

/// Finish an rsvd given the range sketch Y = A * G: orthonormalize,
/// optionally power-iterate, then solve the small problem B = Q^H A and
/// truncate. Shared by the single-block and the batched entry points.
template <typename T>
LowRankFactor<T> rsvd_finish(ConstMatrixView<T> a, Matrix<T> y,
                             const RsvdOptions& opt) {
  using R = real_t<T>;
  const index_t m = a.rows, n = a.cols;
  const index_t l = y.cols();
  Matrix<T> q = thin_q(geqrf<T>(y));
  for (int it = 0; it < opt.power_iterations; ++it) {
    Matrix<T> z(n, q.cols());
    gemm(Op::C, Op::N, T{1}, a, q, T{0}, z.view());
    Matrix<T> qz = thin_q(geqrf<T>(z));
    Matrix<T> y2(m, qz.cols());
    gemm(Op::N, Op::N, T{1}, a, qz, T{0}, y2.view());
    q = thin_q(geqrf<T>(y2));
  }

  // Small problem: B = Q^H A (l x n), SVD(B) = W S V^H, U = Q W.
  Matrix<T> b(q.cols(), n);
  gemm(Op::C, Op::N, T{1}, ConstMatrixView<T>(q), a, T{0}, b.view());
  SVDResult<T> svd = jacobi_svd<T>(b);

  index_t k = std::min<index_t>(opt.rank > 0 ? opt.rank : l,
                                static_cast<index_t>(svd.s.size()));
  if (opt.tol > 0 && !svd.s.empty()) {
    const R cut = static_cast<R>(opt.tol) * svd.s[0];
    index_t kk = 0;
    while (kk < k && svd.s[kk] > cut) ++kk;
    k = kk;
  }

  LowRankFactor<T> out;
  out.u = Matrix<T>(m, k);
  out.v = Matrix<T>(n, k);
  if (k > 0) {
    // U = Q * W_k, scaled by the singular values; V = V_k.
    Matrix<T> wk = to_matrix(svd.u.block(0, 0, svd.u.rows(), k));
    for (index_t j = 0; j < k; ++j)
      scale_inplace(T{svd.s[j]}, wk.block(0, j, wk.rows(), 1));
    gemm(Op::N, Op::N, T{1}, ConstMatrixView<T>(q), ConstMatrixView<T>(wk),
         T{0}, out.u.view());
    copy(svd.v.block(0, 0, n, k), out.v.block(0, 0, n, k));
  }
  return out;
}

}  // namespace

template <typename T>
LowRankFactor<T> rsvd(ConstMatrixView<T> a, const RsvdOptions& opt) {
  const index_t m = a.rows, n = a.cols;
  const index_t l = sketch_width(m, n, opt);
  if (l == 0) {
    LowRankFactor<T> out;
    out.u = Matrix<T>(m, 0);
    out.v = Matrix<T>(n, 0);
    return out;
  }
  // Sketch the range: Y = A * G.
  Matrix<T> g = random_matrix<T>(n, l, opt.seed);
  Matrix<T> y(m, l);
  gemm(Op::N, Op::N, T{1}, a, g, T{0}, y.view());
  return rsvd_finish<T>(a, std::move(y), opt);
}

template <typename T>
std::vector<LowRankFactor<T>> rsvd_strided_batched(const T* a, index_t lda,
                                                   index_t stride_a, index_t m,
                                                   index_t n, index_t batch,
                                                   const RsvdOptions& opt) {
  std::vector<LowRankFactor<T>> out(static_cast<std::size_t>(batch));
  if (batch == 0) return out;
  HODLRX_REQUIRE(m >= 0 && n >= 0 && lda >= m && stride_a >= 0,
                 "rsvd_strided_batched: bad layout");
  const index_t l = sketch_width(m, n, opt);
  if (l == 0) {
    for (auto& f : out) {
      f.u = Matrix<T>(m, 0);
      f.v = Matrix<T>(n, 0);
    }
    return out;
  }
  // One shared Gaussian test matrix for the WHOLE sweep: the stride-0 B
  // operand makes the batch layer pack G once per launch and reuse the pack
  // for every block (gemm_stats::shared_packs counts it).
  Matrix<T> g = random_matrix<T>(n, l, opt.seed);
  Matrix<T> y(m, l * batch);
  gemm_strided_batched<T>(Op::N, Op::N, m, l, n, T{1}, a, lda, stride_a,
                          g.data(), n, /*stride_b=*/0, T{0}, y.data(), m,
                          m * l, batch);
  // Per-block tails are independent: orthonormalize, power-iterate, small
  // SVD — one block per pool slot.
  parallel_for(batch, [&](index_t i) {
    ConstMatrixView<T> ai(a + i * stride_a, m, n, lda);
    out[static_cast<std::size_t>(i)] =
        rsvd_finish<T>(ai, to_matrix(y.block(0, i * l, m, l)), opt);
  });
  return out;
}

#define HODLRX_INSTANTIATE_RSVD(T)                                           \
  template LowRankFactor<T> rsvd<T>(ConstMatrixView<T>, const RsvdOptions&); \
  template std::vector<LowRankFactor<T>> rsvd_strided_batched<T>(            \
      const T*, index_t, index_t, index_t, index_t, index_t,                 \
      const RsvdOptions&);

HODLRX_INSTANTIATE_RSVD(float)
HODLRX_INSTANTIATE_RSVD(double)
HODLRX_INSTANTIATE_RSVD(std::complex<float>)
HODLRX_INSTANTIATE_RSVD(std::complex<double>)

#undef HODLRX_INSTANTIATE_RSVD

}  // namespace hodlrx
