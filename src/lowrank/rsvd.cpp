#include "lowrank/rsvd.hpp"

#include <complex>

#include "batched/batched_blas.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "device/device.hpp"

namespace hodlrx {

namespace {

/// Sketch width for the options: min(m, n, rank + oversampling).
index_t sketch_width(index_t m, index_t n, const RsvdOptions& opt) {
  return std::min({m, n, opt.rank + opt.oversampling});
}

/// Final step shared by the single-block and batched paths: given the
/// orthonormal range basis Q (m x l) and the small problem B = Q^H A
/// (l x n), SVD(B) = W S V^H, truncate per options and return U = Q W_k S_k,
/// V = V_k.
template <typename T>
LowRankFactor<T> rsvd_truncate(ConstMatrixView<T> q, ConstMatrixView<T> b,
                               const RsvdOptions& opt) {
  using R = real_t<T>;
  const index_t m = q.rows, n = b.cols;
  SVDResult<T> svd = jacobi_svd<T>(b);

  const index_t k =
      truncate_rank<R>(svd.s.data(), static_cast<index_t>(svd.s.size()),
                       opt.rank > 0 ? opt.rank : -1, static_cast<R>(opt.tol));

  LowRankFactor<T> out;
  out.u = Matrix<T>(m, k);
  out.v = Matrix<T>(n, k);
  if (k > 0) {
    Matrix<T> wk = to_matrix(svd.u.block(0, 0, svd.u.rows(), k));
    for (index_t j = 0; j < k; ++j)
      scale_inplace(T{svd.s[j]}, wk.block(0, j, wk.rows(), 1));
    gemm(Op::N, Op::N, T{1}, q, ConstMatrixView<T>(wk), T{0}, out.u.view());
    copy(svd.v.block(0, 0, n, k), out.v.block(0, 0, n, k));
  }
  return out;
}

/// Finish a single-block rsvd given the range sketch Y = A * G:
/// orthonormalize, optionally power-iterate, then solve the small problem
/// B = Q^H A and truncate.
template <typename T>
LowRankFactor<T> rsvd_finish(ConstMatrixView<T> a, Matrix<T> y,
                             const RsvdOptions& opt) {
  const index_t m = a.rows, n = a.cols;
  Matrix<T> q = thin_q(geqrf<T>(y));
  for (int it = 0; it < opt.power_iterations; ++it) {
    Matrix<T> z(n, q.cols());
    gemm(Op::C, Op::N, T{1}, a, q, T{0}, z.view());
    Matrix<T> qz = thin_q(geqrf<T>(z));
    Matrix<T> y2(m, qz.cols());
    gemm(Op::N, Op::N, T{1}, a, qz, T{0}, y2.view());
    q = thin_q(geqrf<T>(y2));
  }
  Matrix<T> b(q.cols(), n);
  gemm(Op::C, Op::N, T{1}, ConstMatrixView<T>(q), a, T{0}, b.view());
  return rsvd_truncate<T>(q, b, opt);
}

}  // namespace

template <typename T>
void truncated_products_batched(const T* q, index_t m, const T* vsrc,
                                index_t n, T* w, index_t width,
                                const real_t<T>* sig, index_t batch,
                                index_t max_rank, real_t<T> tol,
                                std::span<LowRankFactor<T>> out) {
  using R = real_t<T>;
  HODLRX_REQUIRE(static_cast<index_t>(out.size()) == batch,
                 "truncated_products_batched: output batch mismatch");
  // Shared truncation rule per problem (cheap host-side counting), then one
  // elementwise launch folds S_ik into W_ik.
  std::vector<index_t> k(static_cast<std::size_t>(batch));
  for (index_t i = 0; i < batch; ++i)
    k[static_cast<std::size_t>(i)] =
        truncate_rank<R>(sig + i * width, width, max_rank, tol);
  DeviceContext::global().record_launch();
  parallel_for_static(batch, [&](index_t i) {
    for (index_t j = 0; j < k[static_cast<std::size_t>(i)]; ++j)
      scale_inplace(T{sig[i * width + j]},
                    MatrixView<T>{w + i * width * width + j * width, width, 1,
                                  width});
  });
  // U_i = Q_i (W_i S_i) for the WHOLE batch in one strided GEMM launch at
  // the uniform width (columns past k_i are simply never read back),
  // instead of a per-block gemm inside a pool task.
  Matrix<T> uf(m, width * batch);
  gemm_strided_batched<T>(Op::N, Op::N, m, width, width, T{1}, q, m,
                          m * width, w, width, width * width, T{0}, uf.data(),
                          m, m * width, batch);
  // Gather the truncated factors (a batched copy-out, no per-block compute).
  DeviceContext::global().record_launch();
  parallel_for_static(batch, [&](index_t i) {
    const index_t ki = k[static_cast<std::size_t>(i)];
    LowRankFactor<T>& f = out[static_cast<std::size_t>(i)];
    f.u = to_matrix(ConstMatrixView<T>(uf.data() + i * m * width, m, ki, m));
    f.v = to_matrix(ConstMatrixView<T>(vsrc + i * n * width, n, ki, n));
  });
}

template <typename T>
LowRankFactor<T> rsvd(ConstMatrixView<T> a, const RsvdOptions& opt) {
  const index_t m = a.rows, n = a.cols;
  const index_t l = sketch_width(m, n, opt);
  if (l == 0) {
    LowRankFactor<T> out;
    out.u = Matrix<T>(m, 0);
    out.v = Matrix<T>(n, 0);
    return out;
  }
  // Sketch the range: Y = A * G.
  Matrix<T> g = random_matrix<T>(n, l, opt.seed);
  Matrix<T> y(m, l);
  gemm(Op::N, Op::N, T{1}, a, g, T{0}, y.view());
  return rsvd_finish<T>(a, std::move(y), opt);
}

template <typename T>
std::vector<LowRankFactor<T>> rsvd_strided_batched(const T* a, index_t lda,
                                                   index_t stride_a, index_t m,
                                                   index_t n, index_t batch,
                                                   const RsvdOptions& opt) {
  std::vector<LowRankFactor<T>> out(static_cast<std::size_t>(batch));
  if (batch == 0) return out;
  HODLRX_REQUIRE(m >= 0 && n >= 0 && lda >= m && stride_a >= 0,
                 "rsvd_strided_batched: bad layout");
  const index_t l = sketch_width(m, n, opt);
  if (l == 0) {
    for (auto& f : out) {
      f.u = Matrix<T>(m, 0);
      f.v = Matrix<T>(n, 0);
    }
    return out;
  }
  // One shared Gaussian test matrix for the WHOLE sweep: the stride-0 B
  // operand makes the batch layer pack G once per launch and reuse the pack
  // for every block (gemm_stats::shared_packs counts it).
  Matrix<T> g = random_matrix<T>(n, l, opt.seed);
  Matrix<T> y(m, l * batch);
  gemm_strided_batched<T>(Op::N, Op::N, m, l, n, T{1}, a, lda, stride_a,
                          g.data(), n, /*stride_b=*/0, T{0}, y.data(), m,
                          m * l, batch);
  // The tails run on the device model too: EVERY stage — orthonormalization,
  // power iterations, the small problems, their SVDs and the truncated
  // factor products — is a batched launch (panel-synchronized batched QR,
  // sweep-synchronized batched Jacobi, strided GEMM); the sweep performs
  // ZERO per-block pool tasks end to end.
  std::vector<T> tau(static_cast<std::size_t>(l) * batch);
  const auto orthonormalize = [&](Matrix<T>& x, index_t rows) {
    geqrf_strided_batched<T>(x.data(), rows, rows * l, rows, l, tau.data(), l,
                             batch, BatchPolicy::kForceBatched);
    thin_q_strided_batched<T>(x.data(), rows, rows * l, rows, l, tau.data(),
                              l, batch, BatchPolicy::kForceBatched);
  };
  orthonormalize(y, m);
  if (opt.power_iterations > 0) {
    Matrix<T> z(n, l * batch);
    for (int it = 0; it < opt.power_iterations; ++it) {
      // Z_i = A_i^H Q_i, re-orthonormalize; Y_i = A_i Q(Z_i), orthonormalize.
      gemm_strided_batched<T>(Op::C, Op::N, n, l, m, T{1}, a, lda, stride_a,
                              y.data(), m, m * l, T{0}, z.data(), n, n * l,
                              batch);
      orthonormalize(z, n);
      gemm_strided_batched<T>(Op::N, Op::N, m, l, n, T{1}, a, lda, stride_a,
                              z.data(), n, n * l, T{0}, y.data(), m, m * l,
                              batch);
      orthonormalize(y, m);
    }
  }
  // Small problems, TRANSPOSED so every one is tall: Bh_i = A_i^H Q_i
  // (n x l, l <= n) in one strided launch. Since B_i = Q_i^H A_i = Bh_i^H,
  // the SVD of Bh_i = Uh_i S_i W_i^H hands back B_i's factors with the
  // sides swapped: B_i = W_i S_i Uh_i^H, so A_i ~= Q_i B_i =
  // (Q_i W_ik S_ik) Uh_ik^H.
  using R = real_t<T>;
  Matrix<T> bh(n, l * batch);
  gemm_strided_batched<T>(Op::C, Op::N, n, l, m, T{1}, a, lda, stride_a,
                          y.data(), m, m * l, T{0}, bh.data(), n, n * l,
                          batch);
  // Sweep-synchronized batched Jacobi over the whole batch: after it, bh
  // holds Uh_i (normalized descending columns) and w the W_i rotations.
  // Zero per-block SVD pool tasks (svd_stats::serial_svds stays flat).
  std::vector<R> sig(static_cast<std::size_t>(l) * batch);
  Matrix<T> w(l, l * batch);
  const SvdBatchInfo svd_info = jacobi_svd_strided_batched<T>(
      bh.data(), n, n * l, n, l, sig.data(), l, w.data(), l, l * l, batch,
      BatchPolicy::kForceBatched,
      /*recover=*/opt.on_breakdown == OnBreakdown::kRecover);
  if (opt.breakdowns != nullptr) {
    opt.breakdowns->svd_nonconverged += svd_info.nonconverged;
    opt.breakdowns->svd_recovered += svd_info.recovered;
  }
  // Shared truncation epilogue: truncate_rank per problem, S folded into
  // W_ik, ONE strided U_i = Q_i W_ik S_ik launch, batched copy-out.
  truncated_products_batched<T>(y.data(), m, bh.data(), n, w.data(), l,
                                sig.data(), batch,
                                opt.rank > 0 ? opt.rank : -1,
                                static_cast<R>(opt.tol), out);
  return out;
}

#define HODLRX_INSTANTIATE_TRUNC(T)                                          \
  template void truncated_products_batched<T>(                               \
      const T*, index_t, const T*, index_t, T*, index_t, const real_t<T>*,   \
      index_t, index_t, real_t<T>, std::span<LowRankFactor<T>>);

HODLRX_INSTANTIATE_TRUNC(float)
HODLRX_INSTANTIATE_TRUNC(double)
HODLRX_INSTANTIATE_TRUNC(std::complex<float>)
HODLRX_INSTANTIATE_TRUNC(std::complex<double>)

#undef HODLRX_INSTANTIATE_TRUNC

#define HODLRX_INSTANTIATE_RSVD(T)                                           \
  template LowRankFactor<T> rsvd<T>(ConstMatrixView<T>, const RsvdOptions&); \
  template std::vector<LowRankFactor<T>> rsvd_strided_batched<T>(            \
      const T*, index_t, index_t, index_t, index_t, index_t,                 \
      const RsvdOptions&);

HODLRX_INSTANTIATE_RSVD(float)
HODLRX_INSTANTIATE_RSVD(double)
HODLRX_INSTANTIATE_RSVD(std::complex<float>)
HODLRX_INSTANTIATE_RSVD(std::complex<double>)

#undef HODLRX_INSTANTIATE_RSVD

}  // namespace hodlrx
