#include "lowrank/rsvd.hpp"

#include <complex>

#include "batched/batched_blas.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"

namespace hodlrx {

namespace {

/// Sketch width for the options: min(m, n, rank + oversampling).
index_t sketch_width(index_t m, index_t n, const RsvdOptions& opt) {
  return std::min({m, n, opt.rank + opt.oversampling});
}

/// Final step shared by the single-block and batched paths: given the
/// orthonormal range basis Q (m x l) and the small problem B = Q^H A
/// (l x n), SVD(B) = W S V^H, truncate per options and return U = Q W_k S_k,
/// V = V_k.
template <typename T>
LowRankFactor<T> rsvd_truncate(ConstMatrixView<T> q, ConstMatrixView<T> b,
                               const RsvdOptions& opt) {
  using R = real_t<T>;
  const index_t m = q.rows, n = b.cols, l = q.cols;
  SVDResult<T> svd = jacobi_svd<T>(b);

  index_t k = std::min<index_t>(opt.rank > 0 ? opt.rank : l,
                                static_cast<index_t>(svd.s.size()));
  if (opt.tol > 0 && !svd.s.empty()) {
    const R cut = static_cast<R>(opt.tol) * svd.s[0];
    index_t kk = 0;
    while (kk < k && svd.s[kk] > cut) ++kk;
    k = kk;
  }

  LowRankFactor<T> out;
  out.u = Matrix<T>(m, k);
  out.v = Matrix<T>(n, k);
  if (k > 0) {
    Matrix<T> wk = to_matrix(svd.u.block(0, 0, svd.u.rows(), k));
    for (index_t j = 0; j < k; ++j)
      scale_inplace(T{svd.s[j]}, wk.block(0, j, wk.rows(), 1));
    gemm(Op::N, Op::N, T{1}, q, ConstMatrixView<T>(wk), T{0}, out.u.view());
    copy(svd.v.block(0, 0, n, k), out.v.block(0, 0, n, k));
  }
  return out;
}

/// Finish a single-block rsvd given the range sketch Y = A * G:
/// orthonormalize, optionally power-iterate, then solve the small problem
/// B = Q^H A and truncate.
template <typename T>
LowRankFactor<T> rsvd_finish(ConstMatrixView<T> a, Matrix<T> y,
                             const RsvdOptions& opt) {
  const index_t m = a.rows, n = a.cols;
  Matrix<T> q = thin_q(geqrf<T>(y));
  for (int it = 0; it < opt.power_iterations; ++it) {
    Matrix<T> z(n, q.cols());
    gemm(Op::C, Op::N, T{1}, a, q, T{0}, z.view());
    Matrix<T> qz = thin_q(geqrf<T>(z));
    Matrix<T> y2(m, qz.cols());
    gemm(Op::N, Op::N, T{1}, a, qz, T{0}, y2.view());
    q = thin_q(geqrf<T>(y2));
  }
  Matrix<T> b(q.cols(), n);
  gemm(Op::C, Op::N, T{1}, ConstMatrixView<T>(q), a, T{0}, b.view());
  return rsvd_truncate<T>(q, b, opt);
}

}  // namespace

template <typename T>
LowRankFactor<T> rsvd(ConstMatrixView<T> a, const RsvdOptions& opt) {
  const index_t m = a.rows, n = a.cols;
  const index_t l = sketch_width(m, n, opt);
  if (l == 0) {
    LowRankFactor<T> out;
    out.u = Matrix<T>(m, 0);
    out.v = Matrix<T>(n, 0);
    return out;
  }
  // Sketch the range: Y = A * G.
  Matrix<T> g = random_matrix<T>(n, l, opt.seed);
  Matrix<T> y(m, l);
  gemm(Op::N, Op::N, T{1}, a, g, T{0}, y.view());
  return rsvd_finish<T>(a, std::move(y), opt);
}

template <typename T>
std::vector<LowRankFactor<T>> rsvd_strided_batched(const T* a, index_t lda,
                                                   index_t stride_a, index_t m,
                                                   index_t n, index_t batch,
                                                   const RsvdOptions& opt) {
  std::vector<LowRankFactor<T>> out(static_cast<std::size_t>(batch));
  if (batch == 0) return out;
  HODLRX_REQUIRE(m >= 0 && n >= 0 && lda >= m && stride_a >= 0,
                 "rsvd_strided_batched: bad layout");
  const index_t l = sketch_width(m, n, opt);
  if (l == 0) {
    for (auto& f : out) {
      f.u = Matrix<T>(m, 0);
      f.v = Matrix<T>(n, 0);
    }
    return out;
  }
  // One shared Gaussian test matrix for the WHOLE sweep: the stride-0 B
  // operand makes the batch layer pack G once per launch and reuse the pack
  // for every block (gemm_stats::shared_packs counts it).
  Matrix<T> g = random_matrix<T>(n, l, opt.seed);
  Matrix<T> y(m, l * batch);
  gemm_strided_batched<T>(Op::N, Op::N, m, l, n, T{1}, a, lda, stride_a,
                          g.data(), n, /*stride_b=*/0, T{0}, y.data(), m,
                          m * l, batch);
  // The tails run on the device model too: EVERY stage — orthonormalization,
  // power iterations, and the small problem B = Q^H A — is a batched launch
  // (panel-synchronized batched QR + strided GEMM), not a per-block pool
  // task. Only the tiny per-block SVD/truncation stays task-parallel.
  std::vector<T> tau(static_cast<std::size_t>(l) * batch);
  const auto orthonormalize = [&](Matrix<T>& x, index_t rows) {
    geqrf_strided_batched<T>(x.data(), rows, rows * l, rows, l, tau.data(), l,
                             batch, BatchPolicy::kForceBatched);
    thin_q_strided_batched<T>(x.data(), rows, rows * l, rows, l, tau.data(),
                              l, batch, BatchPolicy::kForceBatched);
  };
  orthonormalize(y, m);
  if (opt.power_iterations > 0) {
    Matrix<T> z(n, l * batch);
    for (int it = 0; it < opt.power_iterations; ++it) {
      // Z_i = A_i^H Q_i, re-orthonormalize; Y_i = A_i Q(Z_i), orthonormalize.
      gemm_strided_batched<T>(Op::C, Op::N, n, l, m, T{1}, a, lda, stride_a,
                              y.data(), m, m * l, T{0}, z.data(), n, n * l,
                              batch);
      orthonormalize(z, n);
      gemm_strided_batched<T>(Op::N, Op::N, m, l, n, T{1}, a, lda, stride_a,
                              z.data(), n, n * l, T{0}, y.data(), m, m * l,
                              batch);
      orthonormalize(y, m);
    }
  }
  // Small problems B_i = Q_i^H A_i in one strided launch, then the per-block
  // SVDs and truncations across the pool.
  Matrix<T> b(l, n * batch);
  gemm_strided_batched<T>(Op::C, Op::N, l, n, m, T{1}, y.data(), m, m * l, a,
                          lda, stride_a, T{0}, b.data(), l, l * n, batch);
  parallel_for(batch, [&](index_t i) {
    out[static_cast<std::size_t>(i)] = rsvd_truncate<T>(
        ConstMatrixView<T>(y.data() + i * m * l, m, l, m),
        ConstMatrixView<T>(b.data() + i * l * n, l, n, l), opt);
  });
  return out;
}

#define HODLRX_INSTANTIATE_RSVD(T)                                           \
  template LowRankFactor<T> rsvd<T>(ConstMatrixView<T>, const RsvdOptions&); \
  template std::vector<LowRankFactor<T>> rsvd_strided_batched<T>(            \
      const T*, index_t, index_t, index_t, index_t, index_t,                 \
      const RsvdOptions&);

HODLRX_INSTANTIATE_RSVD(float)
HODLRX_INSTANTIATE_RSVD(double)
HODLRX_INSTANTIATE_RSVD(std::complex<float>)
HODLRX_INSTANTIATE_RSVD(std::complex<double>)

#undef HODLRX_INSTANTIATE_RSVD

}  // namespace hodlrx
