#include "lowrank/rsvd.hpp"

#include <complex>

#include "common/error.hpp"
#include "common/random.hpp"

namespace hodlrx {

template <typename T>
LowRankFactor<T> rsvd(ConstMatrixView<T> a, const RsvdOptions& opt) {
  using R = real_t<T>;
  const index_t m = a.rows, n = a.cols;
  const index_t l = std::min({m, n, opt.rank + opt.oversampling});
  LowRankFactor<T> out;
  if (l == 0) {
    out.u = Matrix<T>(m, 0);
    out.v = Matrix<T>(n, 0);
    return out;
  }

  // Sketch the range: Y = A * G, orthonormalize, optionally power-iterate.
  Matrix<T> g = random_matrix<T>(n, l, opt.seed);
  Matrix<T> y(m, l);
  gemm(Op::N, Op::N, T{1}, a, g, T{0}, y.view());
  Matrix<T> q = thin_q(geqrf<T>(y));
  for (int it = 0; it < opt.power_iterations; ++it) {
    Matrix<T> z(n, q.cols());
    gemm(Op::C, Op::N, T{1}, a, q, T{0}, z.view());
    Matrix<T> qz = thin_q(geqrf<T>(z));
    Matrix<T> y2(m, qz.cols());
    gemm(Op::N, Op::N, T{1}, a, qz, T{0}, y2.view());
    q = thin_q(geqrf<T>(y2));
  }

  // Small problem: B = Q^H A (l x n), SVD(B) = W S V^H, U = Q W.
  Matrix<T> b(q.cols(), n);
  gemm(Op::C, Op::N, T{1}, ConstMatrixView<T>(q), a, T{0}, b.view());
  SVDResult<T> svd = jacobi_svd<T>(b);

  index_t k = std::min<index_t>(opt.rank > 0 ? opt.rank : l,
                                static_cast<index_t>(svd.s.size()));
  if (opt.tol > 0 && !svd.s.empty()) {
    const R cut = static_cast<R>(opt.tol) * svd.s[0];
    index_t kk = 0;
    while (kk < k && svd.s[kk] > cut) ++kk;
    k = kk;
  }

  out.u = Matrix<T>(m, k);
  out.v = Matrix<T>(n, k);
  if (k > 0) {
    // U = Q * W_k, scaled by the singular values; V = V_k.
    Matrix<T> wk = to_matrix(svd.u.block(0, 0, svd.u.rows(), k));
    for (index_t j = 0; j < k; ++j)
      scale_inplace(T{svd.s[j]}, wk.block(0, j, wk.rows(), 1));
    gemm(Op::N, Op::N, T{1}, ConstMatrixView<T>(q), ConstMatrixView<T>(wk),
         T{0}, out.u.view());
    copy(svd.v.block(0, 0, n, k), out.v.block(0, 0, n, k));
  }
  return out;
}

#define HODLRX_INSTANTIATE_RSVD(T) \
  template LowRankFactor<T> rsvd<T>(ConstMatrixView<T>, const RsvdOptions&);

HODLRX_INSTANTIATE_RSVD(float)
HODLRX_INSTANTIATE_RSVD(double)
HODLRX_INSTANTIATE_RSVD(std::complex<float>)
HODLRX_INSTANTIATE_RSVD(std::complex<double>)

#undef HODLRX_INSTANTIATE_RSVD

}  // namespace hodlrx
