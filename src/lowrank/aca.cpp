#include "lowrank/aca.hpp"

#include <cmath>
#include <complex>
#include <random>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace hodlrx {

namespace {

/// argmax |x[i]| over i not in `used`; returns -1 when all used or all zero.
template <typename T>
index_t argmax_unused(const std::vector<T>& x, const std::vector<char>& used) {
  index_t best = -1;
  real_t<T> best_v = 0;
  for (index_t i = 0; i < static_cast<index_t>(x.size()); ++i) {
    if (used[i]) continue;
    const real_t<T> v = abs_s(x[i]);
    if (best < 0 || v > best_v) {
      best = i;
      best_v = v;
    }
  }
  return (best >= 0 && best_v > real_t<T>{0}) ? best : -1;
}

}  // namespace

template <typename T>
AcaResult<T> aca(const MatrixGenerator<T>& g, index_t row0, index_t col0,
                 index_t m, index_t n, const AcaOptions& opt) {
  using R = real_t<T>;
  AcaResult<T> out;
  const index_t rmax =
      std::min({m, n, opt.max_rank < 0 ? std::min(m, n) : opt.max_rank});
  if (m == 0 || n == 0 || rmax == 0) {
    out.factor.u = Matrix<T>(m, 0);
    out.factor.v = Matrix<T>(n, 0);
    return out;
  }

  // Crosses accumulated column-wise; copied into the factor at the end.
  std::vector<std::vector<T>> us, vs;  // u: length m, v: length n (A=sum u v^H)
  std::vector<char> row_used(m, 0), col_used(n, 0);
  std::vector<T> row(n), col(m);
  std::mt19937_64 rng(opt.seed);

  R frob2 = 0;  // running ||A_k||_F^2 estimate
  index_t next_row = 0;
  bool converged = false;
  const bool inject_stall = fault::should_fire(fault::Site::kAcaStall);

  // Iteration guard: each pass either adds a cross or burns an unused row
  // (the zero-delta `continue` / restart paths), so a block riddled with
  // (near-)zero generator rows cannot cycle past O(min(m, n)) passes. When
  // the guard trips, the achieved-rank factor is returned with `stalled`
  // set instead of looping or throwing.
  const index_t max_passes = 2 * std::min(m, n) + 16;
  index_t passes = 0;

  while (static_cast<index_t>(us.size()) < rmax) {
    if (++passes > max_passes ||
        (inject_stall && static_cast<index_t>(us.size()) >=
                             std::min<index_t>(2, rmax - 1))) {
      out.stalled = true;
      break;
    }
    // --- residual row at next_row -----------------------------------------
    index_t i = next_row;
    if (i < 0 || i >= m || row_used[i]) {
      i = -1;
      for (index_t t = 0; t < m; ++t)
        if (!row_used[t]) {
          i = t;
          break;
        }
      if (i < 0) {  // all rows consumed: the cross interpolates every row
        converged = true;
        break;
      }
    }
    auto residual_row = [&](index_t ri) {
      g.fill_row(row0 + ri, col0, col0 + n, row.data());
      for (std::size_t k = 0; k < us.size(); ++k) {
        const T uik = us[k][ri];
        if (uik == T{}) continue;
        const T* __restrict__ vk = vs[k].data();
        for (index_t j = 0; j < n; ++j) row[j] -= uik * conj_s(vk[j]);
      }
    };
    auto residual_col = [&](index_t cj) {
      g.fill_col(col0 + cj, row0, row0 + m, col.data());
      for (std::size_t k = 0; k < us.size(); ++k) {
        const T vjk = conj_s(vs[k][cj]);
        if (vjk == T{}) continue;
        const T* __restrict__ uk = us[k].data();
        for (index_t ii = 0; ii < m; ++ii) col[ii] -= uk[ii] * vjk;
      }
    };

    residual_row(i);
    index_t j = argmax_unused(row, col_used);
    // Restart on a (near-)zero row: try a few random rows before giving up.
    int restarts = 0;
    while (j < 0 && restarts < 4) {
      row_used[i] = 1;
      index_t cand = static_cast<index_t>(rng() % m);
      for (index_t t = 0; t < m && row_used[cand]; ++t)
        cand = (cand + 1) % m;
      if (row_used[cand]) break;
      i = cand;
      residual_row(i);
      j = argmax_unused(row, col_used);
      ++restarts;
    }
    if (j < 0) {
      converged = true;  // residual looks numerically zero
      break;
    }

    // --- rook refinement: alternate row/column argmax ---------------------
    for (int rook = 0; rook < opt.rook_iterations; ++rook) {
      residual_col(j);
      const index_t i2 = argmax_unused(col, row_used);
      if (i2 < 0 || i2 == i) break;
      i = i2;
      residual_row(i);
      const index_t j2 = argmax_unused(row, col_used);
      if (j2 < 0 || j2 == j) break;
      j = j2;
    }
    residual_col(j);

    const T delta = col[i];
    if (abs_s(delta) == R{0}) {
      row_used[i] = 1;
      continue;
    }

    // New cross: u = residual column, v^H = residual row / delta.
    std::vector<T> u(col.begin(), col.end());
    std::vector<T> v(n);
    const T inv_delta = T{1} / delta;
    for (index_t t = 0; t < n; ++t) v[t] = conj_s(row[t] * inv_delta);

    // Norm bookkeeping for the stopping criterion:
    // ||A_k||^2 = ||A_{k-1}||^2 + ||u||^2||v||^2
    //             + 2 Re sum_l (u_l^H u)(v^H v_l).
    R unorm2 = 0, vnorm2 = 0;
    for (index_t t = 0; t < m; ++t) unorm2 += abs2_s(u[t]);
    for (index_t t = 0; t < n; ++t) vnorm2 += abs2_s(v[t]);
    R cross = 0;
    for (std::size_t k = 0; k < us.size(); ++k) {
      T uu{}, vv{};
      for (index_t t = 0; t < m; ++t) uu += conj_s(us[k][t]) * u[t];
      for (index_t t = 0; t < n; ++t) vv += conj_s(v[t]) * vs[k][t];
      cross += R{2} * ScalarTraits<T>::real(uu * vv);
    }
    frob2 += unorm2 * vnorm2 + cross;
    frob2 = std::max(frob2, R{0});

    us.push_back(std::move(u));
    vs.push_back(std::move(v));
    row_used[i] = 1;
    col_used[j] = 1;

    const R step = std::sqrt(unorm2 * vnorm2);
    if (step <= static_cast<R>(opt.tol) * std::sqrt(frob2)) {
      converged = true;
      break;
    }

    // Next pivot row: largest |u| entry among unused rows.
    next_row = argmax_unused(us.back(), row_used);
  }

  const index_t r = static_cast<index_t>(us.size());
  out.factor.u = Matrix<T>(m, r);
  out.factor.v = Matrix<T>(n, r);
  for (index_t k = 0; k < r; ++k) {
    std::copy(us[k].begin(), us[k].end(), out.factor.u.data() + k * m);
    std::copy(vs[k].begin(), vs[k].end(), out.factor.v.data() + k * n);
  }
  // Hitting the cap is still "converged" when the cap equals full rank.
  out.converged = !out.stalled && (converged || rmax == std::min(m, n));
  return out;
}

#define HODLRX_INSTANTIATE_ACA(T)                                      \
  template AcaResult<T> aca<T>(const MatrixGenerator<T>&, index_t,     \
                               index_t, index_t, index_t,              \
                               const AcaOptions&);

HODLRX_INSTANTIATE_ACA(float)
HODLRX_INSTANTIATE_ACA(double)
HODLRX_INSTANTIATE_ACA(std::complex<float>)
HODLRX_INSTANTIATE_ACA(std::complex<double>)

#undef HODLRX_INSTANTIATE_ACA

}  // namespace hodlrx
