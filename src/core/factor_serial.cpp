#include <algorithm>
#include <complex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "core/engine_detail.hpp"

/// \file factor_serial.cpp
/// The serial execution engine: Algorithm 1 (factorization stage) and
/// Algorithm 2 (solution stage) run as plain single-threaded loops over the
/// packed big-matrix layout. This is the "Serial HODLR Solver" column of the
/// paper's Tables IV and V, and the correctness reference for the batched
/// engine.

namespace hodlrx::detail {

template <typename T>
void FactorEngine<T>::run_factor_serial(F& f, FactorReport* report) {
  const ClusterTree& tree = f.tree_;
  const index_t L = depth(f);
  MatrixView<T> ybig = f.ybig_;
  ConstMatrixView<T> vbig = f.vbig_;
  const bool pivoted = f.opt_.kform == KForm::kPivoted;

  // --- Algorithm 1, lines 2-5: leaf LU + leaf solves against all panels ---
  for (index_t j = 0; j < tree.num_leaves(); ++j) {
    const ClusterNode& c = tree.node(tree.leaf(j));
    MatrixView<T> d = leaf_lu(f, j);
    getrf(d, leaf_pivots(f, j));
    if (f.total_cols_ > 0)
      getrs(ConstMatrixView<T>(d), leaf_pivots(f, j),
            ybig.block(c.begin, 0, c.size(), f.total_cols_));
  }

  // --- Algorithm 1, lines 6-13: level sweep ---
  for (index_t l = L - 1; l >= 0; --l) {
    const index_t r = f.level_rank_[l + 1];
    LevelK& klev = f.kfac_[l];
    if (r == 0) continue;  // rank-0 level: nothing couples the siblings
    const index_t panel = f.col_offset_[l + 1];  // prefix width AND panel col
    Matrix<T> w(klev.r2, panel);

    for (index_t k = 0; k < klev.count; ++k) {
      const index_t gamma = ClusterTree::level_begin(l) + k;
      const index_t a = ClusterTree::left_child(gamma);
      const index_t b = ClusterTree::right_child(gamma);
      const ClusterNode& ca = tree.node(a);
      const ClusterNode& cb = tree.node(b);
      ConstMatrixView<T> va = vbig.block(ca.begin, panel, ca.size(), r);
      ConstMatrixView<T> vb = vbig.block(cb.begin, panel, cb.size(), r);
      ConstMatrixView<T> ya = ybig.block(ca.begin, panel, ca.size(), r);
      ConstMatrixView<T> yb = ybig.block(cb.begin, panel, cb.size(), r);
      MatrixView<T> kk = klev.block(k);

      // Form and factor K_gamma (eq. 11 / the identity-diagonal variant).
      if (pivoted) {
        gemm(Op::C, Op::N, T{1}, va, ya, T{0}, kk.block(0, 0, r, r));
        gemm(Op::C, Op::N, T{1}, vb, yb, T{0}, kk.block(r, r, r, r));
        fill_k_identities(kk, r, KForm::kPivoted);
        getrf(kk, klev.pivots(k));
      } else {
        gemm(Op::C, Op::N, T{1}, vb, yb, T{0}, kk.block(0, r, r, r));
        gemm(Op::C, Op::N, T{1}, va, ya, T{0}, kk.block(r, 0, r, r));
        fill_k_identities(kk, r, KForm::kIdentityDiagonal);
        if (f.opt_.on_breakdown == OnBreakdown::kThrow) {
          getrf_nopivot(kk);
        } else {
          // Pivot-free LU can break down (exact zero pivot). Snapshot the
          // assembled K so the recovery ladder can re-factor it WITH
          // pivoting; under kReport a failed LU has no usable state, so the
          // breakdown is recorded and rethrown.
          const T* src = klev.data.data() + k * klev.r2 * klev.r2;
          std::vector<T> snap(src, src + klev.r2 * klev.r2);
          try {
            getrf_nopivot(kk);
          } catch (const Error& e) {
            if (report != nullptr) {
              ++report->lu_breakdowns;
              report->events.push_back(
                  "factor: pivot-free LU broke down on K block " +
                  std::to_string(k) + " of level " + std::to_string(l) +
                  " (" + e.what() + ")");
            }
            if (f.opt_.on_breakdown != OnBreakdown::kRecover) throw;
            std::copy(snap.begin(), snap.end(),
                      klev.data.data() + k * klev.r2 * klev.r2);
            ensure_pivot_storage(klev);
            getrf(kk, klev.pivots(k));
            klev.pivoted[k] = 1;
            fault_stats::detail::add_recovered(fault::Site::kGetrfPivot);
            if (report != nullptr) {
              ++report->lu_pivot_retries;
              report->events.push_back(
                  "factor: K block " + std::to_string(k) + " of level " +
                  std::to_string(l) + " re-factored with partial pivoting");
            }
          }
        }
      }

      if (panel == 0) continue;  // level 0: no prefix to update
      // Right-hand sides (13); the identity-diagonal form swaps the blocks.
      MatrixView<T> wv = w.block(0, 0, klev.r2, panel);
      MatrixView<T> ya_pre = ybig.block(ca.begin, 0, ca.size(), panel);
      MatrixView<T> yb_pre = ybig.block(cb.begin, 0, cb.size(), panel);
      if (pivoted) {
        gemm(Op::C, Op::N, T{1}, va, ConstMatrixView<T>(ya_pre), T{0},
             wv.block(0, 0, r, panel));
        gemm(Op::C, Op::N, T{1}, vb, ConstMatrixView<T>(yb_pre), T{0},
             wv.block(r, 0, r, panel));
        getrs(ConstMatrixView<T>(kk), klev.pivots(k), wv);
      } else {
        gemm(Op::C, Op::N, T{1}, vb, ConstMatrixView<T>(yb_pre), T{0},
             wv.block(0, 0, r, panel));
        gemm(Op::C, Op::N, T{1}, va, ConstMatrixView<T>(ya_pre), T{0},
             wv.block(r, 0, r, panel));
        if (block_pivoted(klev, /*pivoted=*/false, k))
          getrs(ConstMatrixView<T>(kk), klev.pivots(k), wv);
        else
          getrs_nopivot(ConstMatrixView<T>(kk), wv);
      }
      // Update (14); the solution rows are [w_a; w_b] in both forms.
      gemm(Op::N, Op::N, T{-1}, ya, ConstMatrixView<T>(wv.block(0, 0, r, panel)),
           T{1}, ya_pre);
      gemm(Op::N, Op::N, T{-1}, yb, ConstMatrixView<T>(wv.block(r, 0, r, panel)),
           T{1}, yb_pre);
    }
  }
}

template <typename T>
void FactorEngine<T>::run_solve_serial(const F& f, MatrixView<T> x) {
  const ClusterTree& tree = f.tree_;
  const index_t L = depth(f);
  ConstMatrixView<T> ybig = f.ybig_;
  ConstMatrixView<T> vbig = f.vbig_;
  const bool pivoted = f.opt_.kform == KForm::kPivoted;
  const index_t nrhs = x.cols;

  // --- Algorithm 2, lines 2-4: leaf solves ---
  for (index_t j = 0; j < tree.num_leaves(); ++j) {
    const ClusterNode& c = tree.node(tree.leaf(j));
    getrs(leaf_lu(f, j), leaf_pivots(f, j),
          x.block(c.begin, 0, c.size(), nrhs));
  }

  // --- Algorithm 2, lines 5-11: level sweep ---
  for (index_t l = L - 1; l >= 0; --l) {
    const index_t r = f.level_rank_[l + 1];
    if (r == 0) continue;
    const LevelK& klev = f.kfac_[l];
    const index_t panel = f.col_offset_[l + 1];
    Matrix<T> w(klev.r2, nrhs);

    for (index_t k = 0; k < klev.count; ++k) {
      const index_t gamma = ClusterTree::level_begin(l) + k;
      const index_t a = ClusterTree::left_child(gamma);
      const index_t b = ClusterTree::right_child(gamma);
      const ClusterNode& ca = tree.node(a);
      const ClusterNode& cb = tree.node(b);
      ConstMatrixView<T> va = vbig.block(ca.begin, panel, ca.size(), r);
      ConstMatrixView<T> vb = vbig.block(cb.begin, panel, cb.size(), r);
      ConstMatrixView<T> ya = ybig.block(ca.begin, panel, ca.size(), r);
      ConstMatrixView<T> yb = ybig.block(cb.begin, panel, cb.size(), r);
      MatrixView<T> xa = x.block(ca.begin, 0, ca.size(), nrhs);
      MatrixView<T> xb = x.block(cb.begin, 0, cb.size(), nrhs);
      MatrixView<T> wv = w;

      if (pivoted) {
        gemm(Op::C, Op::N, T{1}, va, ConstMatrixView<T>(xa), T{0},
             wv.block(0, 0, r, nrhs));
        gemm(Op::C, Op::N, T{1}, vb, ConstMatrixView<T>(xb), T{0},
             wv.block(r, 0, r, nrhs));
        getrs(klev.block(k), klev.pivots(k), wv);
      } else {
        gemm(Op::C, Op::N, T{1}, vb, ConstMatrixView<T>(xb), T{0},
             wv.block(0, 0, r, nrhs));
        gemm(Op::C, Op::N, T{1}, va, ConstMatrixView<T>(xa), T{0},
             wv.block(r, 0, r, nrhs));
        if (block_pivoted(klev, /*pivoted=*/false, k))
          getrs(klev.block(k), klev.pivots(k), wv);
        else
          getrs_nopivot(klev.block(k), wv);
      }
      gemm(Op::N, Op::N, T{-1}, ya, ConstMatrixView<T>(wv.block(0, 0, r, nrhs)),
           T{1}, xa);
      gemm(Op::N, Op::N, T{-1}, yb, ConstMatrixView<T>(wv.block(r, 0, r, nrhs)),
           T{1}, xb);
    }
  }
}

#define HODLRX_INSTANTIATE_SERIAL(T)                                     \
  template void FactorEngine<T>::run_factor_serial(                      \
      HodlrFactorization<T>&, FactorReport*);                            \
  template void FactorEngine<T>::run_solve_serial(                       \
      const HodlrFactorization<T>&, MatrixView<T>);

HODLRX_INSTANTIATE_SERIAL(float)
HODLRX_INSTANTIATE_SERIAL(double)
HODLRX_INSTANTIATE_SERIAL(std::complex<float>)
HODLRX_INSTANTIATE_SERIAL(std::complex<double>)

#undef HODLRX_INSTANTIATE_SERIAL

}  // namespace hodlrx::detail
