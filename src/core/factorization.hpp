#pragma once

#include "core/packed.hpp"
#include "device/device.hpp"

/// \file factorization.hpp
/// The two-stage HODLR factorization of the paper:
///   - factor(): Algorithm 1 (serial engine) / Algorithm 3 (batched engine);
///   - solve_inplace(): Algorithm 2 / Algorithm 4, any number of RHS.
///
/// Both engines run the SAME sweep over the packed big-matrix layout and
/// produce bit-comparable factors; they differ only in how the per-node
/// BLAS/LAPACK work is issued (plain single-thread loops vs batched device
/// kernels). The factorization owns device copies of Ybig (overwriting
/// Ubig), Vbig, the leaf LU factors, and the per-level K-matrix LU factors,
/// so the source PackedHodlr stays valid for residual checks.

namespace hodlrx {

namespace detail {
template <typename T>
struct FactorEngine;
}

template <typename T>
class HodlrFactorization {
 public:
  /// Factor the packed HODLR matrix. Simulates the paper's workflow: the
  /// packed data is "copied to the device" (transfer recorded), then
  /// factorized in place on the device.
  ///
  /// Breakdown handling follows opt.on_breakdown: a zero pivot in the
  /// pivot-free K form (KForm::kIdentityDiagonal) throws under kThrow (the
  /// pre-resilience behavior), is recovered under kRecover by re-factoring
  /// the affected K block(s) WITH partial pivoting (the solves then
  /// dispatch per block), and is recorded-then-rethrown under kReport (a
  /// failed LU leaves no usable factor). A non-null `report` additionally
  /// enables pivot-growth tracking (max_pivot_growth) and — with
  /// HODLRX_CHECK_FINITE — a NaN/Inf scan of the factors.
  static HodlrFactorization factor(const PackedHodlr<T>& packed,
                                   const FactorOptions& opt = {},
                                   FactorReport* report = nullptr);

  /// Solve A x = b in place for any number of RHS columns (b: n x nrhs).
  void solve_inplace(MatrixView<T> b) const;

  /// solve_inplace plus a true-residual check against the compressed
  /// operator `a` (the matrix this factorization came from). If the
  /// relative residual exceeds `tol`, the breakdown policy of the
  /// factorization's options applies: kThrow throws, kReport records, and
  /// kRecover runs HODLR-preconditioned GMRES refinement per column (this
  /// factorization as the left preconditioner — the paper's "robust
  /// preconditioner" role), reusing the direct solution as the initial
  /// guess. The returned report carries the final residual, whether
  /// refinement engaged, and the GMRES iteration count.
  SolveReport solve_checked(const HodlrMatrix<T>& a, MatrixView<T> b,
                            double tol = 1e-10) const;

  /// Out-of-place convenience solve.
  Matrix<T> solve(ConstMatrixView<T> b) const {
    Matrix<T> x = to_matrix(b);
    solve_inplace(x);
    return x;
  }

  /// log|det(A)| and the unit phase (sign for real T), via the telescoping
  /// factorization of Theorem 5 and Sylvester's determinant identity.
  struct LogDet {
    real_t<T> log_abs = 0;
    T phase = T{1};
  };
  LogDet logdet() const;

  const ClusterTree& tree() const { return tree_; }
  index_t n() const { return tree_.n(); }
  ExecMode mode() const { return opt_.mode; }
  const FactorOptions& options() const { return opt_; }

  /// Bytes held by the factorization (the paper's `mem` column).
  std::size_t bytes() const { return storage_bytes(); }

 private:
  HodlrFactorization() = default;
  std::size_t storage_bytes() const;
  friend struct detail::FactorEngine<T>;

  /// One level of factored K matrices (eq. 11): `count` contiguous blocks
  /// of size r2 x r2 (r2 = 2 * level_rank[l+1]).
  struct LevelK {
    index_t r2 = 0;
    index_t count = 0;
    std::vector<T> data;
    std::vector<index_t> ipiv;  ///< empty for the pivot-free K form
    /// Per-block recovery flags (kIdentityDiagonal only): 1 marks a block
    /// whose pivot-free LU broke down and was re-factored WITH pivoting;
    /// the solves dispatch getrs vs getrs_nopivot per block. Empty (the
    /// common case) means every block follows the level's K form.
    std::vector<char> pivoted;

    MatrixView<T> block(index_t k) {
      return {data.data() + k * r2 * r2, r2, r2, r2};
    }
    ConstMatrixView<T> block(index_t k) const {
      return {data.data() + k * r2 * r2, r2, r2, r2};
    }
    index_t* pivots(index_t k) { return ipiv.data() + k * r2; }
    const index_t* pivots(index_t k) const { return ipiv.data() + k * r2; }
  };

  ClusterTree tree_;
  FactorOptions opt_;
  std::vector<index_t> level_rank_, col_offset_;
  index_t total_cols_ = 0;
  std::vector<char> level_uniform_;
  bool leaves_uniform_ = false;

  Matrix<T> ybig_;               ///< factored panels (was Ubig)
  Matrix<T> vbig_;               ///< device copy of Vbig (needed by solves)
  std::vector<T> dfac_;          ///< leaf blocks, LU-factored in place
  std::vector<index_t> d_offset_;
  std::vector<index_t> d_ipiv_;  ///< leaf pivots, indexed by global row
  std::vector<LevelK> kfac_;     ///< kfac_[l] for sweep step l = 0..L-1

  DeviceAllocation device_mem_;
};

}  // namespace hodlrx
