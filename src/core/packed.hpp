#pragma once

#include "core/hodlr.hpp"

/// \file packed.hpp
/// The paper's big-matrix data structure (Figs. 3 and 4): all U bases
/// concatenated into one N x R matrix `ubig` (one column panel per tree
/// level, rows partitioned by the cluster tree), likewise `vbig`; leaf
/// diagonal blocks concatenated into `dbig`. Nodes whose actual rank is
/// below the level maximum are zero-padded to the right, which is what
/// makes the strided-batched kernels applicable (Sec. III-C).

namespace hodlrx {

template <typename T>
struct PackedHodlr {
  ClusterTree tree;
  index_t n = 0;

  /// level_rank[l] = max over nodes at level l of the block rank (l=1..L;
  /// index 0 unused).
  std::vector<index_t> level_rank;
  /// Panel l occupies columns [col_offset[l], col_offset[l] + level_rank[l]);
  /// col_offset[1] = 0 and col_offset[l+1] = col_offset[l] + level_rank[l].
  /// The "first r*l columns" of Algorithm 3 is the prefix
  /// [0, col_offset[l+1]).
  std::vector<index_t> col_offset;
  index_t total_cols = 0;  ///< R = col_offset[L+1]

  Matrix<T> ubig, vbig;  ///< N x R, zero-padded per node

  std::vector<T> dbig;          ///< leaf blocks, column-major, concatenated
  std::vector<index_t> d_offset;  ///< per-leaf offset into dbig (size leaves+1)

  std::vector<index_t> node_rank;  ///< exact per-node ranks (reporting)

  /// Per-level: true when all nodes at that level have the same size, which
  /// enables gemmStridedBatched (paper Sec. III-C). Index by level (0..L).
  std::vector<char> level_uniform;
  bool leaves_uniform = false;

  /// Build the packed form from the per-node representation.
  static PackedHodlr pack(const HodlrMatrix<T>& h);

  index_t depth() const { return tree.depth(); }
  /// Column panel of level l (l = 1..L) of `m` (ubig/vbig-shaped).
  template <typename MatLike>
  auto panel(MatLike& m, index_t level) const {
    return m.block(0, col_offset[level], n, level_rank[level]);
  }
  /// View of the j-th leaf block inside `storage` (dbig-shaped).
  MatrixView<T> leaf_view(std::vector<T>& storage, index_t j) const {
    const index_t sz = tree.node(tree.leaf(j)).size();
    return {storage.data() + d_offset[j], sz, sz, sz};
  }
  ConstMatrixView<T> leaf_view(const std::vector<T>& storage, index_t j) const {
    const index_t sz = tree.node(tree.leaf(j)).size();
    return {storage.data() + d_offset[j], sz, sz, sz};
  }

  std::size_t bytes() const {
    return ubig.bytes() + vbig.bytes() + dbig.size() * sizeof(T);
  }
};

}  // namespace hodlrx
