#include <cmath>
#include <complex>

#include "core/engine_detail.hpp"

/// \file logdet.cpp
/// Log-determinant from the stored factorization (paper Sec. III-E a):
/// det(A) = prod_leaves det(D_a) * prod_gamma det(B_gamma), where B_gamma is
/// the 2x2-block identity-plus-low-rank factor and, by Sylvester's identity,
/// det(B_gamma) = det(I - T_a T_b) = (-1)^r det(K_gamma) for the pivoted K
/// form (r = padded child rank) and det(B_gamma) = det(K'_gamma) for the
/// identity-diagonal form. All determinants come from the LU diagonals.

namespace hodlrx {

namespace {

template <typename T>
void accumulate_lu_det(ConstMatrixView<T> lu, const index_t* ipiv,
                       real_t<T>& log_abs, T& phase) {
  const index_t n = lu.rows;
  for (index_t k = 0; k < n; ++k) {
    const T ukk = lu(k, k);
    const real_t<T> a = abs_s(ukk);
    log_abs += std::log(a);
    phase *= ukk / T{a};
    if (ipiv != nullptr && ipiv[k] != k) phase = -phase;
  }
}

}  // namespace

template <typename T>
typename HodlrFactorization<T>::LogDet HodlrFactorization<T>::logdet() const {
  LogDet out;
  using Engine = detail::FactorEngine<T>;
  const bool pivoted = opt_.kform == KForm::kPivoted;

  for (index_t j = 0; j < tree_.num_leaves(); ++j)
    accumulate_lu_det<T>(Engine::leaf_lu(*this, j), Engine::leaf_pivots(*this, j),
                         out.log_abs, out.phase);

  for (index_t l = 0; l < tree_.depth(); ++l) {
    const LevelK& klev = kfac_[l];
    const index_t r = level_rank_[l + 1];
    if (r == 0) continue;
    for (index_t k = 0; k < klev.count; ++k) {
      accumulate_lu_det<T>(klev.block(k),
                           pivoted ? klev.pivots(k) : nullptr, out.log_abs,
                           out.phase);
      // det(B) = (-1)^r det(K) in the pivoted formulation.
      if (pivoted && (r % 2 == 1)) out.phase = -out.phase;
    }
  }
  return out;
}

#define HODLRX_INSTANTIATE_LOGDET(T) \
  template typename HodlrFactorization<T>::LogDet HodlrFactorization<T>::logdet() const;

HODLRX_INSTANTIATE_LOGDET(float)
HODLRX_INSTANTIATE_LOGDET(double)
HODLRX_INSTANTIATE_LOGDET(std::complex<float>)
HODLRX_INSTANTIATE_LOGDET(std::complex<double>)

#undef HODLRX_INSTANTIATE_LOGDET

}  // namespace hodlrx
