#pragma once

#include <cstdint>

#include "batched/batched_blas.hpp"
#include "common/config.hpp"

/// \file options.hpp
/// Option structs for HODLR construction and factorization.

namespace hodlrx {

/// How the K matrices of eq. (11) are formulated (paper Sec. III-C, end):
/// the pivoted form needs partially pivoted LU; the identity-diagonal
/// variants run pivot-free LU at the cost of shuffling the right-hand side.
enum class KForm {
  kPivoted,           ///< K = [[V_a* Y_a, I], [I, V_b* Y_b]] + pivoted LU
  kIdentityDiagonal,  ///< K = [[I, V_b* Y_b], [V_a* Y_a, I]] + no pivoting
};

/// Which execution engine drives the level sweep.
enum class ExecMode {
  kSerial,   ///< Algorithms 1/2: plain loops, one thread (the CPU solver)
  kBatched,  ///< Algorithms 3/4: batched kernels on the device engine
};

/// Construction (compression) options.
struct BuildOptions {
  double tol = 1e-12;        ///< relative accuracy of low-rank blocks
  index_t max_rank = -1;     ///< per-block rank cap (-1: unlimited)
  bool recompress = true;    ///< SVD re-truncation after ACA
  int rook_iterations = 3;
  std::uint64_t seed = 7;
};

/// Factorization options.
struct FactorOptions {
  ExecMode mode = ExecMode::kBatched;
  KForm kform = KForm::kPivoted;
  BatchPolicy policy = BatchPolicy::kAuto;
};

}  // namespace hodlrx
