#pragma once

#include <cstdint>

#include "batched/batched_blas.hpp"
#include "common/config.hpp"
#include "common/fault.hpp"

/// \file options.hpp
/// Option structs for HODLR construction and factorization.

namespace hodlrx {

/// How the K matrices of eq. (11) are formulated (paper Sec. III-C, end):
/// the pivoted form needs partially pivoted LU; the identity-diagonal
/// variants run pivot-free LU at the cost of shuffling the right-hand side.
enum class KForm {
  kPivoted,           ///< K = [[V_a* Y_a, I], [I, V_b* Y_b]] + pivoted LU
  kIdentityDiagonal,  ///< K = [[I, V_b* Y_b], [V_a* Y_a, I]] + no pivoting
};

/// Which execution engine drives the level sweep.
enum class ExecMode {
  kSerial,   ///< Algorithms 1/2: plain loops, one thread (the CPU solver)
  kBatched,  ///< Algorithms 3/4: batched kernels on the device engine
};

/// Which compressor builds the off-diagonal low-rank blocks.
enum class Compressor {
  kAca,          ///< rook-pivoted ACA per block (entry access; the default)
  kRsvdBatched,  ///< batched randomized SVD: every uniform tree level is
                 ///< swept in batched launches — ALL blocks multiply ONE
                 ///< shared Gaussian test matrix (the stride-0 pack-once
                 ///< fast path) and the QR/power-iteration tails run through
                 ///< the panel-synchronized batched QR engine. Works on a
                 ///< dense view (build_from_dense, zero-copy strided blocks)
                 ///< or any MatrixGenerator (build, blocks materialized
                 ///< tile-by-tile; the dense matrix is never formed);
                 ///< requires max_rank > 0 (the sketch width).
};

/// Construction (compression) options.
struct BuildOptions {
  double tol = 1e-12;        ///< relative accuracy of low-rank blocks
  index_t max_rank = -1;     ///< per-block rank cap (-1: unlimited)
  bool recompress = true;    ///< SVD re-truncation after ACA
  int rook_iterations = 3;
  std::uint64_t seed = 7;
  Compressor compressor = Compressor::kAca;
  index_t rsvd_oversampling = 8;  ///< extra sketch columns (kRsvdBatched)
  int rsvd_power_iterations = 1;  ///< subspace iterations (kRsvdBatched)
  /// Breakdown policy for the compression stage (ACA stall, batched-SVD
  /// sweep exhaustion): recover by default, see OnBreakdown (fault.hpp).
  OnBreakdown on_breakdown = OnBreakdown::kRecover;
};

/// Factorization options.
struct FactorOptions {
  ExecMode mode = ExecMode::kBatched;
  KForm kform = KForm::kPivoted;
  BatchPolicy policy = BatchPolicy::kAuto;
  /// Breakdown policy for the factorization and checked-solve stages (zero
  /// pivot in the identity-diagonal K form, failed residual check).
  OnBreakdown on_breakdown = OnBreakdown::kRecover;
};

}  // namespace hodlrx
