#pragma once

#include <vector>

#include "core/options.hpp"
#include "core/report.hpp"
#include "lowrank/generator.hpp"
#include "lowrank/lowrank.hpp"
#include "tree/cluster_tree.hpp"

/// \file hodlr.hpp
/// The HODLR matrix representation (Definition 2): per-node low-rank bases
/// for every sibling off-diagonal block plus dense leaf diagonal blocks.
///
/// Storage convention for a sibling pair (a, b) with blocks
///   A(I_a, I_b) = U_a V_b^H   and   A(I_b, I_a) = U_b V_a^H:
/// node `nu` owns U_nu (|I_nu| x rank(nu)) and V_nu
/// (|I_nu| x rank(sibling(nu))), where rank(nu) is the rank of the block
/// whose ROWS live on nu.

namespace hodlrx {

template <typename T>
class HodlrMatrix {
 public:
  /// Compress `g` (square, indexed compatibly with `tree`) into HODLR form.
  /// With the default Compressor::kAca every off-diagonal block runs
  /// rook-pivoted ACA in parallel (throws if ACA fails to reach the
  /// tolerance within the cap). With Compressor::kRsvdBatched every uniform
  /// tree level is materialized tile-by-tile into a strided workspace and
  /// compressed in one batched randomized-SVD sweep — the full matrix is
  /// NEVER formed (generator_stats counter-asserts this), so kernel-defined
  /// BIE problems get the batched device path too (requires max_rank > 0).
  ///
  /// Breakdown handling follows opt.on_breakdown: an ACA stall is retried
  /// through a (batched) rsvd of the materialized block under kRecover,
  /// kept at the achieved rank under kReport, and thrown under kThrow (the
  /// pre-resilience behavior). A non-null `report` collects per-stage
  /// breakdown counters, recovery actions and — with HODLRX_CHECK_FINITE —
  /// a NaN/Inf scan of the compressed representation.
  static HodlrMatrix build(const MatrixGenerator<T>& g, const ClusterTree& tree,
                           const BuildOptions& opt = {},
                           FactorReport* report = nullptr);

  /// Compress a dense matrix. With the default Compressor::kAca this wraps
  /// `build` over a dense generator; with Compressor::kRsvdBatched every
  /// uniform tree level is compressed in one batched randomized-SVD sweep in
  /// which all blocks multiply ONE shared Gaussian test matrix (the batch
  /// layer's stride-0 pack-once fast path; requires opt.max_rank > 0).
  static HodlrMatrix build_from_dense(ConstMatrixView<T> a,
                                      const ClusterTree& tree,
                                      const BuildOptions& opt = {},
                                      FactorReport* report = nullptr);

  const ClusterTree& tree() const { return tree_; }
  index_t n() const { return tree_.n(); }
  index_t depth() const { return tree_.depth(); }

  /// U basis of node `nu` (empty for the root).
  const Matrix<T>& u(index_t nu) const { return u_[nu]; }
  /// V basis of node `nu` (empty for the root).
  const Matrix<T>& v(index_t nu) const { return v_[nu]; }
  Matrix<T>& u(index_t nu) { return u_[nu]; }
  Matrix<T>& v(index_t nu) { return v_[nu]; }
  /// Rank of the off-diagonal block whose rows live on node `nu`.
  index_t rank(index_t nu) const { return u_[nu].cols(); }
  /// Dense diagonal block of the j-th leaf.
  const Matrix<T>& leaf_block(index_t j) const { return leaf_d_[j]; }
  Matrix<T>& leaf_block(index_t j) { return leaf_d_[j]; }

  /// Maximum off-diagonal rank per level (level 1..L; the paper's appendix
  /// rank ladders). Entry [0] corresponds to level 1.
  std::vector<index_t> rank_ladder() const;
  /// Maximum rank over all blocks (the HODLR rank of Definition 2).
  index_t max_rank() const;

  /// y = A * x for nrhs columns (used for residual checks; OpenMP inside).
  void apply(ConstMatrixView<T> x, MatrixView<T> y) const;

  /// Dense reconstruction (small-N validation only).
  Matrix<T> to_dense() const;

  /// Bytes of the representation (the paper's `mem` column counts this
  /// plus the factorization's K matrices).
  std::size_t bytes() const;

 private:
  ClusterTree tree_;
  std::vector<Matrix<T>> u_, v_;     // per node id; [0] unused
  std::vector<Matrix<T>> leaf_d_;    // per leaf index

  template <typename U>
  friend struct PackedHodlr;
};

}  // namespace hodlrx
