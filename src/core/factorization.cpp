#include "core/factorization.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <string>

#include "common/blas.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/lapack.hpp"
#include "core/engine_detail.hpp"
#include "precond/gmres.hpp"

namespace hodlrx {

namespace {

/// View a flat coefficient vector as one tall column for the finite scans.
template <typename T>
ConstMatrixView<T> flat_view(const std::vector<T>& v) {
  const index_t sz = static_cast<index_t>(v.size());
  return {v.data(), sz, 1, std::max<index_t>(sz, 1)};
}

}  // namespace

template <typename T>
HodlrFactorization<T> HodlrFactorization<T>::factor(
    const PackedHodlr<T>& packed, const FactorOptions& opt,
    FactorReport* report) {
  // Pivot-growth tracking is opt-in via the report (a per-column max scan
  // inside every LU would tax the hot path for nothing otherwise).
  lu_stats::ScopedTracking track(report != nullptr);
  if (report != nullptr) lu_stats::reset();
  HodlrFactorization<T> f = detail::FactorEngine<T>::stage(packed, opt);
  if (opt.mode == ExecMode::kSerial)
    detail::FactorEngine<T>::run_factor_serial(f, report);
  else
    detail::FactorEngine<T>::run_factor_batched(f, report);
  if (report != nullptr)
    report->max_pivot_growth =
        std::max(report->max_pivot_growth, lu_stats::max_pivot_growth());
  // The recovery ladder may have grown the factorization (pivot storage for
  // re-factored K blocks): re-register the device allocation so the memory
  // accounting keeps matching storage_bytes().
  if (opt.kform != KForm::kPivoted)
    for (const LevelK& k : f.kfac_)
      if (!k.ipiv.empty()) {
        f.device_mem_ = DeviceAllocation(f.storage_bytes());
        break;
      }
  if (check_finite_enabled()) {
    index_t bad = count_nonfinite(ConstMatrixView<T>(f.ybig_)) +
                  count_nonfinite(ConstMatrixView<T>(f.vbig_)) +
                  count_nonfinite(flat_view(f.dfac_));
    for (const LevelK& k : f.kfac_) bad += count_nonfinite(flat_view(k.data));
    if (bad > 0) {
      if (report != nullptr) {
        report->nonfinite_values += bad;
        report->events.push_back("factor: " + std::to_string(bad) +
                                 " non-finite value(s) in the factors");
      }
      HODLRX_REQUIRE(opt.on_breakdown != OnBreakdown::kThrow,
                     "factor: " << bad
                                << " non-finite value(s) in the factors");
    }
  }
  return f;
}

template <typename T>
void HodlrFactorization<T>::solve_inplace(MatrixView<T> b) const {
  HODLRX_REQUIRE(b.rows == n(), "solve: rhs has " << b.rows << " rows, need "
                                                  << n());
  if (b.cols == 0) return;
  if (opt_.mode == ExecMode::kSerial)
    detail::FactorEngine<T>::run_solve_serial(*this, b);
  else
    detail::FactorEngine<T>::run_solve_batched(*this, b);
}

template <typename T>
SolveReport HodlrFactorization<T>::solve_checked(const HodlrMatrix<T>& a,
                                                MatrixView<T> b,
                                                double tol) const {
  SolveReport rep;
  HODLRX_REQUIRE(a.n() == n() && b.rows == n(),
                 "solve_checked: operator is " << a.n() << "x" << a.n()
                                               << ", rhs has " << b.rows
                                               << " rows, need " << n());
  const index_t nrhs = b.cols;
  if (nrhs == 0) {
    rep.relres = 0;
    return rep;
  }
  Matrix<T> b0 = to_matrix(ConstMatrixView<T>(b));
  solve_inplace(b);

  // True relative residual against the COMPRESSED operator (the system the
  // factorization claims to solve): ||b0 - A x||_F / ||b0||_F.
  const auto true_relres = [&]() -> double {
    Matrix<T> r(n(), nrhs);
    a.apply(ConstMatrixView<T>(b), r.view());
    double num = 0, den = 0;
    for (index_t j = 0; j < nrhs; ++j)
      for (index_t i = 0; i < n(); ++i) {
        num += static_cast<double>(abs2_s(b0(i, j) - r(i, j)));
        den += static_cast<double>(abs2_s(b0(i, j)));
      }
    return den > 0 ? std::sqrt(num / den) : 0.0;
  };
  rep.relres = true_relres();

  if (rep.relres > tol) {
    rep.residual_ok = false;
    rep.events.push_back("solve: relative residual " +
                         std::to_string(rep.relres) + " exceeds tol " +
                         std::to_string(tol));
    HODLRX_REQUIRE(opt_.on_breakdown != OnBreakdown::kThrow,
                   "solve_checked: relative residual "
                       << rep.relres << " exceeds tol " << tol);
    if (opt_.on_breakdown == OnBreakdown::kRecover) {
      // Final rung of the ladder: HODLR-preconditioned GMRES refinement,
      // this factorization as the left preconditioner (the paper's "robust
      // preconditioner" role) and the direct solution as the initial guess.
      rep.refined = true;
      const index_t nn = n();
      GmresOptions gopt;
      // GMRES stops on the PRECONDITIONED residual; aim two digits below
      // the caller's tolerance so the unpreconditioned residual lands under
      // it even when ||M|| amplifies the gap.
      gopt.tol = tol * 1e-2;
      gopt.restart = 50;
      gopt.max_iterations = 200;
      const LinearOp<T> apply_a = [&](const T* xin, T* yout) {
        a.apply(ConstMatrixView<T>{xin, nn, 1, nn},
                MatrixView<T>{yout, nn, 1, nn});
      };
      const LinearOp<T> precond = [&](const T* xin, T* yout) {
        std::copy_n(xin, nn, yout);
        MatrixView<T> v{yout, nn, 1, nn};
        solve_inplace(v);
      };
      for (index_t j = 0; j < nrhs; ++j) {
        const GmresResult<T> gr =
            gmres<T>(nn, apply_a, precond, b0.data() + j * b0.rows(),
                     b.data + j * b.ld, gopt);
        rep.gmres_iterations += gr.iterations;
        if (gr.stagnated)
          rep.events.push_back("solve: gmres stagnated on column " +
                               std::to_string(j));
      }
      rep.relres = true_relres();
      rep.residual_ok = rep.relres <= tol;
      rep.events.push_back("solve: refined to relative residual " +
                           std::to_string(rep.relres) + " in " +
                           std::to_string(rep.gmres_iterations) +
                           " gmres iteration(s)");
    }
  }

  if (check_finite_enabled()) {
    const index_t bad = count_nonfinite(ConstMatrixView<T>(b));
    if (bad > 0) {
      rep.nonfinite_values += bad;
      rep.events.push_back("solve: " + std::to_string(bad) +
                           " non-finite value(s) in the solution");
      HODLRX_REQUIRE(opt_.on_breakdown != OnBreakdown::kThrow,
                     "solve_checked: " << bad
                                       << " non-finite value(s) in the "
                                          "solution");
    }
  }
  return rep;
}

template <typename T>
std::size_t HodlrFactorization<T>::storage_bytes() const {
  std::size_t bytes = ybig_.bytes() + vbig_.bytes() +
                      dfac_.size() * sizeof(T) +
                      d_ipiv_.size() * sizeof(index_t);
  for (const LevelK& k : kfac_)
    bytes += k.data.size() * sizeof(T) + k.ipiv.size() * sizeof(index_t);
  return bytes;
}

template class HodlrFactorization<float>;
template class HodlrFactorization<double>;
template class HodlrFactorization<std::complex<float>>;
template class HodlrFactorization<std::complex<double>>;

}  // namespace hodlrx
