#include "core/factorization.hpp"

#include <complex>

#include "common/error.hpp"
#include "core/engine_detail.hpp"

namespace hodlrx {

template <typename T>
HodlrFactorization<T> HodlrFactorization<T>::factor(
    const PackedHodlr<T>& packed, const FactorOptions& opt) {
  HodlrFactorization<T> f = detail::FactorEngine<T>::stage(packed, opt);
  if (opt.mode == ExecMode::kSerial)
    detail::FactorEngine<T>::run_factor_serial(f);
  else
    detail::FactorEngine<T>::run_factor_batched(f);
  return f;
}

template <typename T>
void HodlrFactorization<T>::solve_inplace(MatrixView<T> b) const {
  HODLRX_REQUIRE(b.rows == n(), "solve: rhs has " << b.rows << " rows, need "
                                                  << n());
  if (b.cols == 0) return;
  if (opt_.mode == ExecMode::kSerial)
    detail::FactorEngine<T>::run_solve_serial(*this, b);
  else
    detail::FactorEngine<T>::run_solve_batched(*this, b);
}

template <typename T>
std::size_t HodlrFactorization<T>::storage_bytes() const {
  std::size_t bytes = ybig_.bytes() + vbig_.bytes() +
                      dfac_.size() * sizeof(T) +
                      d_ipiv_.size() * sizeof(index_t);
  for (const LevelK& k : kfac_)
    bytes += k.data.size() * sizeof(T) + k.ipiv.size() * sizeof(index_t);
  return bytes;
}

template class HodlrFactorization<float>;
template class HodlrFactorization<double>;
template class HodlrFactorization<std::complex<float>>;
template class HodlrFactorization<std::complex<double>>;

}  // namespace hodlrx
