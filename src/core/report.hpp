#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/scalar.hpp"

/// \file report.hpp
/// Structured breakdown diagnostics threaded through build / factor / solve.
/// Each stage fills the per-stage counters of its report (and, when
/// HODLRX_CHECK_FINITE is set, the NaN/Inf scan results); `events` carries
/// one human-readable line per breakdown or recovery action, in order.

namespace hodlrx {

/// Diagnostics of HodlrMatrix::build (compression stage) and
/// HodlrFactorization::factor (factorization stage); pass one object through
/// both calls to accumulate the full picture.
struct FactorReport {
  // --- compression stage ---------------------------------------------------
  index_t aca_stalls = 0;        ///< blocks whose ACA stalled or missed tol
  index_t aca_retries = 0;       ///< of those, re-compressed through rsvd
  index_t svd_nonconverged = 0;  ///< batched-SVD problems past the budget
  index_t svd_recovered = 0;     ///< of those, finished by the serial re-run
  // --- factorization stage -------------------------------------------------
  index_t lu_breakdowns = 0;     ///< zero pivots hit in getrf_nopivot
  index_t lu_pivot_retries = 0;  ///< K blocks refactored with pivoting
  double max_pivot_growth = 0;   ///< max |entry| growth ratio across the LUs
  // --- stage-boundary scans (HODLRX_CHECK_FINITE) --------------------------
  index_t nonfinite_values = 0;  ///< NaN/Inf entries found at stage ends
  std::vector<std::string> events;  ///< one line per breakdown / recovery

  /// True when no breakdown of any kind was recorded.
  bool clean() const {
    return aca_stalls == 0 && svd_nonconverged == 0 && lu_breakdowns == 0 &&
           nonfinite_values == 0;
  }
};

/// Diagnostics of a checked solve (HodlrFactorization::solve_checked).
struct SolveReport {
  double relres = -1;        ///< ||b - A x||_F / ||b||_F (-1: not computed)
  bool residual_ok = true;   ///< relres met the requested tolerance
  bool refined = false;      ///< GMRES refinement was driven
  index_t gmres_iterations = 0;  ///< total refinement iterations (all RHS)
  index_t nonfinite_values = 0;  ///< NaN/Inf entries in the solution
  std::vector<std::string> events;
};

/// NaN/Inf count of a column-major view (the HODLRX_CHECK_FINITE scan).
template <typename T>
index_t count_nonfinite(ConstMatrixView<T> a) {
  index_t bad = 0;
  for (index_t j = 0; j < a.cols; ++j) {
    const T* col = a.data + j * a.ld;
    for (index_t i = 0; i < a.rows; ++i) {
      if constexpr (is_complex_v<T>) {
        if (!std::isfinite(col[i].real()) || !std::isfinite(col[i].imag()))
          ++bad;
      } else {
        if (!std::isfinite(static_cast<double>(col[i]))) ++bad;
      }
    }
  }
  return bad;
}

}  // namespace hodlrx
