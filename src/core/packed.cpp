#include "core/packed.hpp"

#include <complex>

#include "common/error.hpp"

namespace hodlrx {

template <typename T>
PackedHodlr<T> PackedHodlr<T>::pack(const HodlrMatrix<T>& h) {
  PackedHodlr<T> p;
  p.tree = h.tree();
  p.n = h.n();
  const index_t depth = p.tree.depth();

  // Per-level maximum ranks and panel offsets.
  p.level_rank.assign(depth + 1, 0);
  p.node_rank.assign(p.tree.num_nodes(), 0);
  for (index_t nu = 1; nu < p.tree.num_nodes(); ++nu) {
    const index_t level = ClusterTree::level_of(nu);
    p.node_rank[nu] = h.rank(nu);
    p.level_rank[level] = std::max(p.level_rank[level], h.rank(nu));
  }
  p.col_offset.assign(depth + 2, 0);
  for (index_t l = 1; l <= depth; ++l)
    p.col_offset[l + 1] = p.col_offset[l] + p.level_rank[l];
  p.total_cols = p.col_offset[depth + 1];

  // Uniformity flags (strided-batched eligibility).
  p.level_uniform.assign(depth + 1, 1);
  for (index_t l = 0; l <= depth; ++l) {
    const index_t first = ClusterTree::level_begin(l);
    for (index_t i = first; i < ClusterTree::level_begin(l + 1); ++i)
      if (p.tree.node(i).size() != p.tree.node(first).size())
        p.level_uniform[l] = 0;
  }
  p.leaves_uniform = p.level_uniform[depth] != 0;

  // Concatenate the bases; zero padding comes from zero-initialized storage.
  // U_nu has rank(nu) columns; V_nu has rank(sibling(nu)) columns; both fit
  // in the level panel because level_rank is the max over the level.
  p.ubig = Matrix<T>(p.n, p.total_cols);
  p.vbig = Matrix<T>(p.n, p.total_cols);
  for (index_t nu = 1; nu < p.tree.num_nodes(); ++nu) {
    const index_t level = ClusterTree::level_of(nu);
    const ClusterNode& c = p.tree.node(nu);
    const Matrix<T>& u = h.u(nu);
    const Matrix<T>& v = h.v(nu);
    if (u.cols() > 0)
      copy(u.view(), p.ubig.block(c.begin, p.col_offset[level], c.size(),
                                  u.cols()));
    if (v.cols() > 0)
      copy(v.view(), p.vbig.block(c.begin, p.col_offset[level], c.size(),
                                  v.cols()));
  }

  // Concatenate the leaf diagonal blocks.
  const index_t leaves = p.tree.num_leaves();
  p.d_offset.assign(leaves + 1, 0);
  for (index_t j = 0; j < leaves; ++j) {
    const index_t sz = p.tree.node(p.tree.leaf(j)).size();
    p.d_offset[j + 1] = p.d_offset[j] + sz * sz;
  }
  p.dbig.assign(p.d_offset[leaves], T{});
  for (index_t j = 0; j < leaves; ++j)
    copy(ConstMatrixView<T>(h.leaf_block(j)), p.leaf_view(p.dbig, j));
  return p;
}

template struct PackedHodlr<float>;
template struct PackedHodlr<double>;
template struct PackedHodlr<std::complex<float>>;
template struct PackedHodlr<std::complex<double>>;

}  // namespace hodlrx
