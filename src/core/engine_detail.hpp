#pragma once

#include "core/factorization.hpp"

/// \file engine_detail.hpp
/// Internal glue between HodlrFactorization and its two execution engines.
/// Not part of the public API.

namespace hodlrx::detail {

template <typename T>
struct FactorEngine {
  using F = HodlrFactorization<T>;
  using LevelK = typename F::LevelK;

  /// Copy the packed data "onto the device" and initialize metadata.
  static F stage(const PackedHodlr<T>& p, const FactorOptions& opt) {
    F f;
    f.tree_ = p.tree;
    f.opt_ = opt;
    f.level_rank_ = p.level_rank;
    f.col_offset_ = p.col_offset;
    f.total_cols_ = p.total_cols;
    f.level_uniform_ = p.level_uniform;
    f.leaves_uniform_ = p.leaves_uniform;
    f.ybig_ = to_matrix(ConstMatrixView<T>(p.ubig));  // Ybig overwrites Ubig
    f.vbig_ = to_matrix(ConstMatrixView<T>(p.vbig));
    f.dfac_ = p.dbig;
    f.d_offset_ = p.d_offset;
    f.d_ipiv_.assign(p.n, 0);

    // Pre-size the K-level containers (zeroed; engines fill them).
    const index_t depth = p.tree.depth();
    f.kfac_.resize(depth);
    for (index_t l = 0; l < depth; ++l) {
      LevelK& k = f.kfac_[l];
      k.r2 = 2 * p.level_rank[l + 1];
      k.count = index_t{1} << l;
      k.data.assign(static_cast<std::size_t>(k.count) * k.r2 * k.r2, T{});
      if (opt.kform == KForm::kPivoted)
        k.ipiv.assign(static_cast<std::size_t>(k.count) * k.r2, 0);
    }

    // Device accounting: the packed data crosses the link once; the
    // factorization storage lives on the device.
    DeviceContext::global().record_h2d(p.bytes());
    f.device_mem_ = DeviceAllocation(f.storage_bytes());
    return f;
  }

  // Engine entry points (factor_serial.cpp / factor_batched.cpp). The
  // factor stages take the (optional) report for breakdown bookkeeping.
  // run_factor_batched dispatches to the dependency-graph variant when
  // HODLRX_SCHED=graph; the level-synchronous sweep is the default.
  static void run_factor_serial(F& f, FactorReport* report);
  static void run_factor_batched(F& f, FactorReport* report);
  static void run_factor_batched_graph(F& f, FactorReport* report);
  static void run_solve_serial(const F& f, MatrixView<T> b);
  static void run_solve_batched(const F& f, MatrixView<T> b);

  /// Lazily allocate the pivot storage a K level needs when its pivot-free
  /// LU broke down and (some of) its blocks get re-factored with pivoting.
  static void ensure_pivot_storage(LevelK& k) {
    if (k.ipiv.empty())
      k.ipiv.assign(static_cast<std::size_t>(k.count) * k.r2, 0);
    if (k.pivoted.empty())
      k.pivoted.assign(static_cast<std::size_t>(k.count), 0);
  }

  /// Whether block `k` of the level must be solved with pivots (either the
  /// whole level uses the pivoted K form, or this block was individually
  /// re-factored by the recovery ladder).
  static bool block_pivoted(const LevelK& klev, bool pivoted, index_t k) {
    return pivoted || (!klev.pivoted.empty() && klev.pivoted[k] != 0);
  }

  // --- shared view helpers ------------------------------------------------
  static index_t depth(const F& f) { return f.tree_.depth(); }

  /// Panel of `m` for tree level `level` restricted to node `nu`'s rows.
  template <typename MatLike>
  static auto node_panel(const F& f, MatLike& m, index_t nu) {
    const index_t level = ClusterTree::level_of(nu);
    const ClusterNode& c = f.tree_.node(nu);
    return m.block(c.begin, f.col_offset_[level], c.size(),
                   f.level_rank_[level]);
  }
  /// Prefix columns [0, width) of `m` restricted to node `nu`'s rows.
  template <typename MatLike>
  static auto node_prefix(const F& f, MatLike& m, index_t nu, index_t width) {
    const ClusterNode& c = f.tree_.node(nu);
    return m.block(c.begin, 0, c.size(), width);
  }

  static MatrixView<T> leaf_lu(F& f, index_t j) {
    const index_t sz = f.tree_.node(f.tree_.leaf(j)).size();
    return {f.dfac_.data() + f.d_offset_[j], sz, sz, sz};
  }
  static ConstMatrixView<T> leaf_lu(const F& f, index_t j) {
    const index_t sz = f.tree_.node(f.tree_.leaf(j)).size();
    return {f.dfac_.data() + f.d_offset_[j], sz, sz, sz};
  }
  static index_t* leaf_pivots(F& f, index_t j) {
    return f.d_ipiv_.data() + f.tree_.node(f.tree_.leaf(j)).begin;
  }
  static const index_t* leaf_pivots(const F& f, index_t j) {
    return f.d_ipiv_.data() + f.tree_.node(f.tree_.leaf(j)).begin;
  }

  /// Fill the identity blocks of one K matrix (eq. 11); `r` is the padded
  /// child rank. Pivoted form: identities off-diagonal; identity-diagonal
  /// form: identities on the diagonal.
  static void fill_k_identities(MatrixView<T> kk, index_t r, KForm form) {
    if (form == KForm::kPivoted) {
      for (index_t i = 0; i < r; ++i) {
        kk(i, r + i) = T{1};
        kk(r + i, i) = T{1};
      }
    } else {
      for (index_t i = 0; i < 2 * r; ++i) kk(i, i) = T{1};
    }
  }
};

}  // namespace hodlrx::detail
